package rme

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockCtxAcquires(t *testing.T) {
	m, err := New(2, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LockCtx(context.Background(), 0); err != nil {
		t.Fatalf("LockCtx: %v", err)
	}
	m.Unlock(0)
	s, _ := m.MetricsSnapshot()
	if s.Passages != 1 || s.Aborted != 0 {
		t.Fatalf("passages=%d aborted=%d, want 1/0", s.Passages, s.Aborted)
	}
}

func TestLockCtxPreCancelled(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.LockCtx(ctx, 0); err != context.Canceled {
		t.Fatalf("LockCtx = %v, want context.Canceled", err)
	}
	// The lock was never touched: a plain acquisition must work.
	m.Lock(0)
	m.Unlock(0)
}

func TestLockCtxCancelWhileQueued(t *testing.T) {
	m, err := New(2, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	m.Lock(0)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- m.LockCtx(ctx, 1) }()
	// Give the waiter time to enqueue behind the holder, then cancel.
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("LockCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled LockCtx did not return (back-out stuck)")
	}
	m.Unlock(0)
	// The abandoned queue entry must not wedge later acquisitions by
	// either process.
	m.Lock(1)
	m.Unlock(1)
	m.Lock(0)
	m.Unlock(0)

	s, _ := m.MetricsSnapshot()
	if s.Aborted != 1 {
		t.Fatalf("aborted=%d, want 1", s.Aborted)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("attempts=%d != passages=%d + aborted=%d + crashed=%d",
			s.Attempts, s.Passages, s.Aborted, s.CrashedAttempts)
	}
	if got := s.AbortRMRHist.Total(); got != 1 {
		t.Fatalf("abort RMR histogram holds %d samples, want 1", got)
	}
}

func TestLockCtxCancelAfterAcquire(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := m.LockCtx(ctx, 0); err != nil {
		t.Fatalf("LockCtx: %v", err)
	}
	// Cancelling after acquisition must not disturb the held lock...
	cancel()
	if m.TryLockFor(1, time.Millisecond) {
		t.Fatal("TryLockFor succeeded while the lock was held")
	}
	m.Unlock(0)
	// ...and must not leave a stale abort flag that kills pid 0's next
	// plain (non-abortable) acquisition.
	m.Lock(0)
	m.Unlock(0)
}

// lateCancelCtx is cancelled between LockCtx's entry check and its
// post-acquisition check: Err() returns nil the first time it is
// consulted and context.Canceled from then on, while Done() never fires
// (a nil channel blocks forever), so the acquisition itself never spins
// out. This deterministically drives the "cancelled in the instant
// between the last spin and holding the lock" path.
type lateCancelCtx struct {
	calls int
}

func (c *lateCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *lateCancelCtx) Done() <-chan struct{}       { return nil }
func (c *lateCancelCtx) Value(any) any               { return nil }
func (c *lateCancelCtx) Err() error {
	c.calls++
	if c.calls > 1 {
		return context.Canceled
	}
	return nil
}

// TestLockCtxLateCancelAccounting is the regression test for the
// late-cancellation accounting bug: an attempt that acquires and then
// observes cancellation used to be recorded as a successful passage,
// with a phantom CS enter/exit pair in the flight recording. It must
// close as exactly one aborted attempt with no CS events, and the lock
// must actually be released.
func TestLockCtxLateCancelAccounting(t *testing.T) {
	m, err := New(2, WithMetrics(), WithTracing(TracingOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LockCtx(&lateCancelCtx{}, 0); err != context.Canceled {
		t.Fatalf("LockCtx = %v, want context.Canceled", err)
	}
	s, _ := m.MetricsSnapshot()
	if s.Attempts != 1 || s.Passages != 0 || s.Aborted != 1 {
		t.Fatalf("attempts=%d passages=%d aborted=%d, want 1/0/1",
			s.Attempts, s.Passages, s.Aborted)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: attempts=%d passages=%d aborted=%d crashed=%d",
			s.Attempts, s.Passages, s.Aborted, s.CrashedAttempts)
	}
	if got := s.AbortRMRHist.Total(); got != 1 {
		t.Fatalf("abort RMR histogram holds %d samples, want 1", got)
	}
	rec, _ := m.FlightRecording()
	sawAbort := false
	for _, events := range rec.Procs {
		for _, ev := range events {
			switch ev.Kind.String() {
			case "cs-enter", "cs-exit":
				t.Fatalf("phantom %v event in flight recording of a cancelled attempt", ev.Kind)
			case "abort":
				sawAbort = true
			}
		}
	}
	if !sawAbort {
		t.Fatal("no abort event in the flight recording")
	}
	// The back-out really released the lock: another process acquires
	// immediately, and pid 0's next plain Lock is unaffected.
	if !m.TryLockFor(1, time.Second) {
		t.Fatal("lock still held after late-cancel back-out")
	}
	m.Unlock(1)
	m.Lock(0)
	m.Unlock(0)
	s, _ = m.MetricsSnapshot()
	if s.Passages != 2 || s.Aborted != 1 {
		t.Fatalf("passages=%d aborted=%d after recovery, want 2/1", s.Passages, s.Aborted)
	}
}

// TestTryLockForNonPositive is the regression test for the
// non-positive-deadline accounting bug: TryLockFor(pid, d<=0) used to
// return false without counting an attempt at all, skewing abort-rate
// denominators relative to deadlines that expire while queued. Both
// paths must now record exactly one aborted attempt per call.
func TestTryLockForNonPositive(t *testing.T) {
	m, err := New(2, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if m.TryLockFor(0, 0) {
		t.Fatal("TryLockFor(0) acquired")
	}
	if m.TryLockFor(0, -time.Second) {
		t.Fatal("TryLockFor(-1s) acquired")
	}
	s, _ := m.MetricsSnapshot()
	if s.Attempts != 2 || s.Passages != 0 || s.Aborted != 2 {
		t.Fatalf("attempts=%d passages=%d aborted=%d, want 2/0/2",
			s.Attempts, s.Passages, s.Aborted)
	}
	if got := s.AbortRMRHist.Total(); got != 2 {
		t.Fatalf("abort RMR histogram holds %d samples, want 2", got)
	}
	// The expired-while-queued path counts identically: one attempt,
	// one abort per call, so the two paths share a denominator.
	m.Lock(0)
	if m.TryLockFor(1, 100*time.Microsecond) {
		t.Fatal("TryLockFor succeeded against a held lock")
	}
	m.Unlock(0)
	s, _ = m.MetricsSnapshot()
	if s.Attempts != 4 || s.Passages != 1 || s.Aborted != 3 {
		t.Fatalf("attempts=%d passages=%d aborted=%d, want 4/1/3",
			s.Attempts, s.Passages, s.Aborted)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: attempts=%d passages=%d aborted=%d crashed=%d",
			s.Attempts, s.Passages, s.Aborted, s.CrashedAttempts)
	}
}

func TestTryLockFor(t *testing.T) {
	m, err := New(2, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if !m.TryLockFor(0, time.Second) {
		t.Fatal("uncontended TryLockFor failed")
	}
	if m.TryLockFor(1, 100*time.Microsecond) {
		t.Fatal("TryLockFor succeeded against a held lock")
	}
	m.Unlock(0)
	if !m.TryLockFor(1, time.Second) {
		t.Fatal("TryLockFor failed after release")
	}
	m.Unlock(1)
	s, _ := m.MetricsSnapshot()
	if s.Passages != 2 || s.Aborted != 1 {
		t.Fatalf("passages=%d aborted=%d, want 2/1", s.Passages, s.Aborted)
	}
}

func TestPassageCtxCancelled(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Lock(0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	ran := false
	ok, err := m.PassageCtx(ctx, 1, func() { ran = true })
	if ok || err != context.DeadlineExceeded {
		t.Fatalf("PassageCtx = (%v, %v), want (false, DeadlineExceeded)", ok, err)
	}
	if ran {
		t.Fatal("critical section ran despite the abort")
	}
	m.Unlock(0)
}

func TestPassageCtxCrashReturnsFalseNil(t *testing.T) {
	var left atomic.Int64
	left.Store(1)
	fail := func(pid int) bool {
		return pid == 0 && left.Add(-1) == 0
	}
	m, err := New(2, WithFailures(fail), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	first := true
	for {
		ok, err := m.PassageCtx(context.Background(), 0, func() { count++ })
		if err != nil {
			t.Fatalf("PassageCtx error: %v", err)
		}
		if first && ok {
			t.Fatal("first attempt completed despite the injected crash")
		}
		first = false
		if ok {
			break
		}
	}
	s, _ := m.MetricsSnapshot()
	if s.Crashes != 1 || s.Passages != 1 {
		t.Fatalf("crashes=%d passages=%d, want 1/1", s.Crashes, s.Passages)
	}
}

// TestAbortCrashRecoverStress mixes deadline-bounded attempts, context
// cancellation and injected crashes under -race, then checks the exact
// metrics identities: every attempt is accounted for exactly once
// (completed, aborted, or crashed — never two of them), every injected
// crash is counted, and both abort histograms agree with the abort
// counter.
func TestAbortCrashRecoverStress(t *testing.T) {
	const (
		n        = 6
		passages = 120
		maxInj   = 30
	)
	var injected atomic.Int64
	// Per-process seeded RNGs keep the hook race-free (a pid is driven
	// by one goroutine at a time).
	failRngs := make([]*rand.Rand, n)
	for i := range failRngs {
		failRngs[i] = rand.New(rand.NewSource(int64(i) + 101))
	}
	fail := func(pid int) bool {
		if injected.Load() >= maxInj {
			return false
		}
		if failRngs[pid].Float64() < 0.001 {
			injected.Add(1)
			return true
		}
		return false
	}
	m, err := New(n, WithFailures(fail), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}

	var counter int // plain shared state: -race catches CS overlap
	var inCS int32
	// Caller-visible outcome counts, one per Passage/PassageCtx call:
	// together they partition the attempts the recorder saw.
	var calls, completed, deadlined, crashed atomic.Uint64
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)*7919 + 1))
			cs := func() {
				if !atomic.CompareAndSwapInt32(&inCS, 0, 1) {
					t.Error("two processes in the critical section")
				}
				counter++
				atomic.StoreInt32(&inCS, 0)
			}
			for k := 0; k < passages; k++ {
				for {
					if rng.Float64() < 0.3 {
						// Deadline-bounded attempt; expiry while queued
						// backs out and the iteration retries.
						d := time.Duration(1+rng.Intn(15)) * time.Microsecond
						ctx, cancel := context.WithTimeout(context.Background(), d)
						calls.Add(1)
						ok, err := m.PassageCtx(ctx, pid, cs)
						cancel()
						if ok {
							completed.Add(1)
							break
						}
						switch err {
						case context.DeadlineExceeded:
							deadlined.Add(1)
						case nil:
							crashed.Add(1)
						default:
							t.Errorf("pid %d: PassageCtx error %v", pid, err)
							return
						}
						continue // aborted or crashed: retry
					}
					calls.Add(1)
					if m.Passage(pid, cs) {
						completed.Add(1)
						break
					}
					crashed.Add(1)
				}
			}
		}(pid)
	}
	wg.Wait()

	if got := completed.Load(); got != n*passages {
		t.Fatalf("completed %d passages, want %d", got, n*passages)
	}
	// The CS counter may exceed the passage count by at most the injected
	// crash count (a crash after the CS but before Exit completes reruns
	// the passage), and must never fall short of it.
	inj := injected.Load()
	if int64(counter) < n*passages || int64(counter) > n*passages+inj {
		t.Fatalf("counter = %d, want in [%d, %d]", counter, n*passages, int64(n*passages)+inj)
	}

	s, ok := m.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics not enabled")
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("attempts=%d != passages=%d + aborted=%d + crashed=%d",
			s.Attempts, s.Passages, s.Aborted, s.CrashedAttempts)
	}
	// Every Passage/PassageCtx call opens exactly one attempt, and each
	// closes under exactly one outcome — including pre-expired deadlines
	// (counted as aborted without touching the lock) and cancellations
	// observed at the post-acquisition check (aborted, never a passage).
	if s.Attempts != calls.Load() {
		t.Fatalf("recorder counted %d attempts, made %d calls", s.Attempts, calls.Load())
	}
	if s.CrashedAttempts != crashed.Load() {
		t.Fatalf("recorder counted %d crashed attempts, callers saw %d", s.CrashedAttempts, crashed.Load())
	}
	// Recorder passages are exactly the caller-visible completions, and
	// every deadline failure — pre-expired, backed out mid-spin, or a
	// late cancel after winning the acquisition — is one aborted attempt.
	if s.Passages != completed.Load() {
		t.Fatalf("recorder counted %d passages, callers completed %d", s.Passages, completed.Load())
	}
	if s.Aborted != deadlined.Load() {
		t.Fatalf("aborted=%d != deadline failures %d", s.Aborted, deadlined.Load())
	}
	if s.Crashes != uint64(inj) {
		t.Fatalf("recorder counted %d crashes, injected %d", s.Crashes, inj)
	}
	if got := s.AbortRMRHist.Total(); got != s.Aborted {
		t.Fatalf("abort RMR histogram holds %d samples, aborted=%d", got, s.Aborted)
	}
	var abandoned uint64
	for _, v := range s.AbandonedHist {
		abandoned += v
	}
	if abandoned != s.Aborted {
		t.Fatalf("abandoned-level histogram sums to %d, aborted=%d", abandoned, s.Aborted)
	}
	if got := s.RMRHist.Total(); got != s.Passages {
		t.Fatalf("per-passage RMR histogram holds %d samples, passages=%d", got, s.Passages)
	}
	t.Logf("attempts=%d passages=%d aborted=%d crashed=%d crashes=%d",
		s.Attempts, s.Passages, s.Aborted, s.CrashedAttempts, s.Crashes)
}

// adaptivity demonstrates the paper's headline result end to end: the
// RMR cost of the super-adaptive BA-Lock stays constant without failures,
// grows like √F with the number of recent unsafe failures, and plateaus at
// the non-adaptive base lock's cost — which the baselines pay all the
// time. It prints the Theorem 5.17/5.18 sweeps measured on the RMR-exact
// simulator.
package main

import (
	"flag"
	"fmt"

	"rme/internal/bench"
)

func main() {
	n := flag.Int("n", 16, "number of processes")
	requests := flag.Int("requests", 4, "requests per process")
	flag.Parse()

	opts := bench.Opts{N: *n, Requests: *requests, Seeds: []int64{1, 2}}
	fmt.Println(bench.Adaptivity(opts))
	fmt.Println(bench.Escalation(opts))
}

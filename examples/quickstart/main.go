// Quickstart: eight workers share a recoverable mutex; some of them crash
// at random points while acquiring or releasing it, lose every private
// variable, and recover simply by retrying the passage. The shared counter
// never sees a lost or duplicated update from contention.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"rme"
)

func main() {
	const (
		workers  = 8
		passages = 100
	)

	// Inject a few failures into lock operations to show recovery.
	var injected atomic.Int64
	rngs := make([]*rand.Rand, workers)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i) + 1))
	}
	m, err := rme.New(workers, rme.WithFailures(func(pid int) bool {
		if injected.Load() >= 10 || rngs[pid].Float64() >= 0.001 {
			return false
		}
		injected.Add(1)
		return true
	}))
	if err != nil {
		panic(err)
	}

	counter := 0 // protected by m; deliberately not atomic
	var retries atomic.Int64
	var wg sync.WaitGroup
	for pid := 0; pid < workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < passages; k++ {
				for !m.Passage(pid, func() { counter++ }) {
					// The worker "crashed" mid-acquisition: all private
					// state is gone. Retrying the passage runs the
					// Recover segment and picks up where the shared
					// state says it left off.
					retries.Add(1)
				}
			}
		}(pid)
	}
	wg.Wait()

	fmt.Printf("workers:            %d\n", workers)
	fmt.Printf("passages completed: %d\n", workers*passages)
	fmt.Printf("injected failures:  %d (recovered with %d retries)\n", injected.Load(), retries.Load())
	fmt.Printf("counter:            %d (≥ %d expected; crashes after the CS may repeat it)\n",
		counter, workers*passages)
	fmt.Printf("lock footprint:     %d shared words (bounded by node reclamation)\n", m.Footprint())
}

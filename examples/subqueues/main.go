// subqueues reproduces Figure 1 of the paper live: eight processes append
// to the weakly recoverable MCS queue; two of them crash immediately after
// their fetch-and-store on the tail — the algorithm's single sensitive
// instruction — splitting the queue into disconnected sub-queues. The
// run then shows the two guarantees the paper proves about this state:
// every request is still satisfied (starvation freedom, Theorem 4.3), and
// the number of simultaneous critical-section occupants never exceeds the
// number of unsafe failures plus one (responsiveness, Theorem 4.2).
package main

import (
	"flag"
	"fmt"

	"rme/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 21, "scheduler seed (try a few to see different fragmentations)")
	flag.Parse()
	fmt.Print(bench.Figure1(*seed))
}

// kvstore demonstrates the pattern the paper's recoverable locks exist
// for: a store kept in non-volatile memory, updated under a recoverable
// mutex by workers that may crash at any moment — including inside the
// critical section.
//
// The store's state (table + intent record) survives crashes, while each
// worker's private variables do not. Every update is written as an intent
// first and applied idempotently, so the bounded critical-section re-entry
// property (BCSR) lets a worker that crashed mid-update re-enter before
// anyone else and finish (or re-do) its write exactly once. The sum
// invariant at the end proves no update was lost or double-applied.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"rme"
)

// Store is a tiny key-value store standing in for a structure in NVRAM:
// everything reachable from it persists across simulated crashes.
type Store struct {
	table map[string]int64

	// Intent log for idempotent updates: a worker first records what it
	// is about to do (with a unique sequence number), then applies it,
	// then marks it applied. Re-entering the CS after a crash finds the
	// intent and completes it without double-applying.
	intent  map[int]intentRec // per worker
	applied map[int]int64     // per worker: last applied sequence
}

type intentRec struct {
	seq   int64
	key   string
	delta int64
}

// NewStore returns an empty store.
func NewStore(workers int) *Store {
	return &Store{
		table:   make(map[string]int64),
		intent:  make(map[int]intentRec, workers),
		applied: make(map[int]int64, workers),
	}
}

// Prepare records worker pid's intent to add delta to key. Called inside
// the critical section, before Apply.
func (s *Store) Prepare(pid int, seq int64, key string, delta int64) {
	s.intent[pid] = intentRec{seq: seq, key: key, delta: delta}
}

// Apply idempotently applies worker pid's current intent: a repeat call
// with the same sequence number is a no-op.
func (s *Store) Apply(pid int) {
	rec, ok := s.intent[pid]
	if !ok || s.applied[pid] >= rec.seq {
		return // already applied (we crashed between Apply and exit)
	}
	s.table[rec.key] += rec.delta
	s.applied[pid] = rec.seq
}

// Sum returns the sum of all values.
func (s *Store) Sum() int64 {
	var t int64
	for _, v := range s.table {
		t += v
	}
	return t
}

func main() {
	const (
		workers = 6
		updates = 150
	)
	m, err := rme.New(workers)
	if err != nil {
		panic(err)
	}
	store := NewStore(workers)
	keys := []string{"alpha", "beta", "gamma", "delta"}

	var wantSum, crashes atomic.Int64
	var wg sync.WaitGroup
	for pid := 0; pid < workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid) + 42))
			for k := 0; k < updates; k++ {
				seq := int64(k) + 1
				key := keys[rng.Intn(len(keys))]
				delta := int64(rng.Intn(10) + 1)
				wantSum.Add(delta)

				crashOnce := rng.Float64() < 0.05 // 5% of updates crash mid-CS
				for !m.Passage(pid, func() {
					store.Prepare(pid, seq, key, delta)
					if crashOnce {
						crashOnce = false
						crashes.Add(1)
						rme.Crash(pid) // die holding the lock, intent written
					}
					store.Apply(pid)
				}) {
					// Crashed inside the critical section. BCSR guarantees
					// this retry re-enters the CS before any other worker;
					// Prepare/Apply are idempotent for the same seq.
				}
			}
		}(pid)
	}
	wg.Wait()

	fmt.Printf("workers:           %d × %d updates\n", workers, updates)
	fmt.Printf("in-CS crashes:     %d (each recovered via bounded re-entry)\n", crashes.Load())
	fmt.Printf("expected sum:      %d\n", wantSum.Load())
	fmt.Printf("store sum:         %d\n", store.Sum())
	if store.Sum() != wantSum.Load() {
		panic("update lost or double-applied — recoverability broken")
	}
	fmt.Println("invariant holds: no update lost, none double-applied")
	for _, k := range keys {
		fmt.Printf("  %-6s %d\n", k, store.table[k])
	}
}

// syswide demonstrates recovery from a system-wide failure (every process
// crashes at once — the scenario of Golab & Hendler, PODC 2018, discussed
// in the paper's related work): the mutex's entire shared state is
// persisted to "NVRAM" (a snapshot), the machine "loses power" while a
// worker holds the lock mid-update, and the next lifetime restores the
// state and recovers — the interrupted worker re-enters its critical
// section first (BCSR) and finishes its idempotent update exactly once.
package main

import (
	"bytes"
	"fmt"
	"sync"

	"rme"
)

// ledger is application state in NVRAM: balances plus a per-worker intent
// record for idempotent updates (same pattern as examples/kvstore).
type ledger struct {
	balance map[string]int
	intent  map[int]intent
	applied map[int]int
}

type intent struct {
	seq    int
	from   string
	to     string
	amount int
}

func (l *ledger) transfer(pid, seq int, from, to string, amount int, crashNow func()) {
	l.intent[pid] = intent{seq, from, to, amount}
	if crashNow != nil {
		crashNow() // the power dies here, intent written but not applied
	}
	rec := l.intent[pid]
	if l.applied[pid] >= rec.seq {
		return // already applied before an earlier crash
	}
	l.balance[rec.from] -= rec.amount
	l.balance[rec.to] += rec.amount
	l.applied[pid] = rec.seq
}

func main() {
	const workers = 3
	lg := &ledger{
		balance: map[string]int{"alice": 100, "bob": 100},
		intent:  map[int]intent{},
		applied: map[int]int{},
	}

	fmt.Println("=== first lifetime ===")
	m, err := rme.New(workers)
	if err != nil {
		panic(err)
	}
	// Two clean transfers.
	m.Passage(0, func() { lg.transfer(0, 1, "alice", "bob", 10, nil) })
	m.Passage(1, func() { lg.transfer(1, 1, "bob", "alice", 5, nil) })
	fmt.Printf("balances: %v\n", lg.balance)

	// Worker 2 begins a transfer and the whole system dies mid-critical-
	// section: the lock is held, the intent is in NVRAM, the update is not
	// applied. (rme.Crash unwinds worker 2 exactly as a power failure
	// would freeze it; the snapshot then captures the held lock.)
	m.Passage(2, func() {
		lg.transfer(2, 1, "alice", "bob", 25, func() { rme.Crash(2) })
	})
	var nvram bytes.Buffer
	if err := m.Snapshot(&nvram); err != nil {
		panic(err)
	}
	fmt.Printf("power failure! lock held by worker 2, intent=%+v, balances=%v\n",
		lg.intent[2], lg.balance)
	fmt.Printf("NVRAM snapshot: %d bytes\n", nvram.Len())

	fmt.Println("\n=== second lifetime (after reboot) ===")
	m2, err := rme.Restore(&nvram, nil)
	if err != nil {
		panic(err)
	}
	// Every worker restarts concurrently and retries its pending work —
	// workers 0 and 1 block until worker 2's recovery releases the lock;
	// worker 2's Passage re-enters its CS first (bounded re-entry) and
	// completes the idempotent transfer.
	var wg sync.WaitGroup
	for pid := 0; pid < workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for !m2.Passage(pid, func() {
				if pid == 2 {
					lg.transfer(2, 1, "alice", "bob", 25, nil) // idempotent redo
				}
			}) {
			}
		}(pid)
	}
	wg.Wait()
	fmt.Printf("balances after recovery: %v\n", lg.balance)
	if lg.balance["alice"] != 70 || lg.balance["bob"] != 130 {
		panic("transfer lost or double-applied")
	}
	fmt.Println("the interrupted transfer was applied exactly once")
}

package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"rme"
	"rme/internal/metrics"
)

// TestAbortCostSweepShape drives the experiment through the stubbed
// runner and checks the sweep structure: every native lock is measured at
// every configured rate, in order.
func TestAbortCostSweepShape(t *testing.T) {
	var rates []float64
	orig := abortRunner
	abortRunner = func(lockOpts []rme.Option, workers, passages int, rate float64) (metrics.Snapshot, error) {
		if workers != 4 || passages != 800 {
			t.Fatalf("runner called with workers=%d passages=%d", workers, passages)
		}
		rates = append(rates, rate)
		return metrics.Snapshot{
			Attempts:     101,
			Passages:     100,
			Aborted:      1,
			RMRHist:      metrics.Hist{Counts: make([]uint64, metrics.RMRBuckets)},
			AbortRMRHist: metrics.Hist{Counts: make([]uint64, metrics.RMRBuckets)},
		}, nil
	}
	defer func() { abortRunner = orig }()

	rep, err := AbortCost(AbortOpts{Workers: 4, Passages: 800, Rates: []float64{0, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 locks × 2 rates.
	if len(rates) != 4 {
		t.Fatalf("%d runner calls, want 4", len(rates))
	}
	for i, r := range rates {
		if want := []float64{0, 0.5}[i%2]; r != want {
			t.Fatalf("call %d ran rate %g, want %g", i, r, want)
		}
	}
	if len(rep.Results) != 4 {
		t.Fatalf("%d results, want 4", len(rep.Results))
	}
	if rep.Schema != "rme-bench-abort/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	for _, res := range rep.Results {
		if res.Attempts != res.Passages+res.Aborted {
			t.Fatalf("result breaks the attempts identity: %+v", res)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table().String(), "Abortable passages") {
		t.Fatal("table missing title")
	}
}

// TestAbortRunReal runs a tiny real measurement end to end: the snapshot
// must satisfy the attempts identity, complete the passage target, and at
// a high rate with contention it must deliver at least one abort.
func TestAbortRunReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real abort measurement; skipped with -short")
	}
	s, err := abortRun(nil, 4, 400, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("attempts=%d != passages=%d + aborted=%d + crashed=%d",
			s.Attempts, s.Passages, s.Aborted, s.CrashedAttempts)
	}
	if s.Passages < 400 {
		t.Fatalf("completed %d passages, want >= 400", s.Passages)
	}
	if s.CrashedAttempts != 0 {
		t.Fatalf("abort run recorded %d crashed attempts", s.CrashedAttempts)
	}

	// The JSON document round-trips.
	rep := &AbortReport{Schema: "rme-bench-abort/v1", Results: []AbortResult{{
		Lock: "ba-log", Workers: 4, Rate: 0.5,
		Attempts: s.Attempts, Passages: s.Passages, Aborted: s.Aborted,
	}}}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back AbortReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Attempts != s.Attempts {
		t.Fatal("JSON round-trip lost the attempt count")
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"rme"
)

// The tracing experiment A/B-measures the flight recorder's overhead on
// the native backend, wall clock per passage, in the three tiers the
// design promises: "none" (no recorder configured — the single nil check),
// "off" (recorder present but disabled — one atomic flag load per event
// site), and "on" (full recording into the per-process rings). Reps are
// interleaved across the modes so machine-state drift hits all three
// equally, and the median rep is kept. Results serialize as
// BENCH_tracing.json (rme-bench-tracing/v1); the CI tracing-gate job
// asserts the recorder-off median overhead stays ≤ 5%.

// TracingOpts configures the tracing-overhead experiment.
type TracingOpts struct {
	// MaxWorkers caps the worker sweep 1, 2, 4, ... (default 8).
	MaxWorkers int
	// Passages is the total passage count per measurement (default 20000).
	Passages int
	// Reps repeats each measurement, keeping the median (default 5) —
	// overhead deltas in the few-percent range need a robust statistic,
	// not the best case.
	Reps int
}

func (o *TracingOpts) fill() {
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 8
	}
	if o.Passages <= 0 {
		o.Passages = 20000
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
}

// TracingResult is one measured configuration.
type TracingResult struct {
	Mode           string  `json:"mode"`    // "none", "off", "on"
	Workers        int     `json:"workers"` // concurrent processes
	Passages       int     `json:"passages"`
	NsPerPassage   float64 `json:"ns_per_passage"` // median over reps
	PassagesPerSec float64 `json:"passages_per_sec"`
	// OverheadPct is the median-latency delta vs the "none" baseline at
	// the same worker count, in percent; 0 for the baseline itself.
	OverheadPct float64 `json:"overhead_pct"`
}

// TracingReport is the BENCH_tracing.json document.
type TracingReport struct {
	Schema     string          `json:"schema"` // "rme-bench-tracing/v1"
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Passages   int             `json:"passages_per_measurement"`
	Reps       int             `json:"reps"`
	Results    []TracingResult `json:"results"`
}

// tracingModes orders the three recorder tiers; the order is also the
// within-rep interleaving order.
var tracingModes = []string{"none", "off", "on"}

func tracingModeOpts(mode string) []rme.Option {
	switch mode {
	case "off":
		return []rme.Option{rme.WithTracing(rme.TracingOptions{Disabled: true})}
	case "on":
		return []rme.Option{rme.WithTracing(rme.TracingOptions{})}
	default:
		return nil
	}
}

// Tracing sweeps worker counts over the three recorder tiers and reports
// median wall-clock passage latency with the overhead vs no recorder.
func Tracing(o TracingOpts) (*TracingReport, error) {
	o.fill()
	rep := &TracingReport{
		Schema:     "rme-bench-tracing/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Passages:   o.Passages,
		Reps:       o.Reps,
	}
	for workers := 1; workers <= o.MaxWorkers; workers *= 2 {
		// Discarded warmup per mode, then interleaved timed reps — the
		// same drift-defeating protocol as the native layout benchmark.
		warm := o.Passages / 4
		if warm < 1 {
			warm = 1
		}
		for _, mode := range tracingModes {
			runtime.GC()
			if _, err := tracingRunner(mode, workers, warm, tracingModeOpts(mode)); err != nil {
				return nil, fmt.Errorf("bench: tracing %s workers=%d: %w", mode, workers, err)
			}
		}
		samples := map[string][]time.Duration{}
		for r := 0; r < o.Reps; r++ {
			for _, mode := range tracingModes {
				runtime.GC()
				d, err := tracingRunner(mode, workers, o.Passages, tracingModeOpts(mode))
				if err != nil {
					return nil, fmt.Errorf("bench: tracing %s workers=%d: %w", mode, workers, err)
				}
				samples[mode] = append(samples[mode], d)
			}
		}
		med := map[string]float64{}
		for _, mode := range tracingModes {
			med[mode] = medianNs(samples[mode]) / float64(o.Passages)
		}
		base := med["none"]
		for _, mode := range tracingModes {
			ns := med[mode]
			overhead := 0.0
			if mode != "none" && base > 0 {
				overhead = (ns - base) / base * 100
			}
			rep.Results = append(rep.Results, TracingResult{
				Mode:           mode,
				Workers:        workers,
				Passages:       o.Passages,
				NsPerPassage:   ns,
				PassagesPerSec: 1e9 / ns,
				OverheadPct:    overhead,
			})
		}
	}
	return rep, nil
}

// medianNs returns the median of the durations in nanoseconds (mean of
// the middle two for even counts).
func medianNs(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return float64(s[mid].Nanoseconds())
	}
	return float64(s[mid-1].Nanoseconds()+s[mid].Nanoseconds()) / 2
}

// tracingRunner is the measurement seam: tests stub it to verify the
// interleaving protocol and the statistics without running real passages.
var tracingRunner = func(mode string, workers, passages int, opts []rme.Option) (time.Duration, error) {
	return nativeRun(workers, passages, opts)
}

// Table renders the report as a bench table for the text mode.
func (r *TracingReport) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Flight-recorder overhead (wall clock, GOMAXPROCS=%d, num_cpu=%d, median of %d)",
			r.GOMAXPROCS, r.NumCPU, r.Reps),
		Columns: []string{"mode", "workers", "ns/passage", "passages/sec", "overhead %"},
		Notes: []string{
			"none: no recorder configured; off: recorder present but disabled; on: full recording",
			"overhead is vs the none baseline at the same worker count; the CI gate bounds off at 5%",
		},
	}
	for _, res := range r.Results {
		t.Add(res.Mode, res.Workers,
			fmt.Sprintf("%.0f", res.NsPerPassage), fmt.Sprintf("%.0f", res.PassagesPerSec),
			fmt.Sprintf("%+.2f", res.OverheadPct))
	}
	return t
}

// JSON serializes the report (the BENCH_tracing.json format).
func (r *TracingReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"rme"
)

// Native benchmarking measures the real sync/atomic backend — wall-clock
// passages per second on actual hardware, not simulated RMR counts. Each
// configuration is run for both arena layouts: the cache-line-padded
// default and the dense legacy layout (rme.WithUnpaddedArena), so the
// layout optimization is measured, not asserted. Results are serialized
// as BENCH_native.json to record the performance trajectory across
// commits (see EXPERIMENTS.md).

// NativeOpts configures the native throughput runner.
type NativeOpts struct {
	// MaxWorkers caps the worker sweep 1, 2, 4, ... (default 8).
	MaxWorkers int
	// Passages is the total passage count per measurement (default 20000).
	Passages int
	// Reps repeats each measurement, keeping the best (default 3) —
	// standard practice for wall-clock numbers on shared machines.
	Reps int
}

func (o *NativeOpts) fill() {
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 8
	}
	if o.Passages <= 0 {
		o.Passages = 20000
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
}

// NativeResult is one measured configuration.
type NativeResult struct {
	Lock           string  `json:"lock"`    // rme base lock ("ba-log", "ba-sublog")
	Layout         string  `json:"layout"`  // "padded" or "unpadded"
	Workers        int     `json:"workers"` // concurrent processes
	Passages       int     `json:"passages"`
	NsPerPassage   float64 `json:"ns_per_passage"`
	PassagesPerSec float64 `json:"passages_per_sec"`
}

// NativeReport is the BENCH_native.json document.
type NativeReport struct {
	Schema     string         `json:"schema"` // "rme-bench-native/v1"
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Passages   int            `json:"passages_per_measurement"`
	Reps       int            `json:"reps"`
	Results    []NativeResult `json:"results"`
}

// nativeLocks maps benchmark lock names to rme options.
var nativeLocks = []struct {
	name string
	opts []rme.Option
}{
	{"ba-log", nil},
	{"ba-sublog", []rme.Option{rme.WithBase(rme.BaseArbTree)}},
}

// Native sweeps worker counts over both arena layouts and reports
// wall-clock throughput of the real backend.
func Native(o NativeOpts) (*NativeReport, error) {
	o.fill()
	rep := &NativeReport{
		Schema:     "rme-bench-native/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Passages:   o.Passages,
		Reps:       o.Reps,
	}
	layouts := []string{"padded", "unpadded"}
	for _, lk := range nativeLocks {
		for workers := 1; workers <= o.MaxWorkers; workers *= 2 {
			layoutOpts := func(layout string) []rme.Option {
				opts := append([]rme.Option(nil), lk.opts...)
				if layout == "unpadded" {
					opts = append(opts, rme.WithUnpaddedArena())
				}
				return opts
			}
			// Each layout gets its own discarded warmup (scheduler,
			// allocator, branch caches) before any timed rep, so neither
			// layout's first measurement pays cold-start costs the other
			// didn't. The timed reps are then interleaved A/B so slow
			// machine-state drift (frequency scaling, co-tenants) hits
			// both layouts equally instead of whichever block ran second.
			warm := o.Passages / 4
			if warm < 1 {
				warm = 1
			}
			for _, layout := range layouts {
				runtime.GC() // keep collector pauses out of the timed region
				if _, err := nativeRunner(layout, workers, warm, layoutOpts(layout)); err != nil {
					return nil, fmt.Errorf("bench: native %s/%s workers=%d: %w", lk.name, layout, workers, err)
				}
			}
			best := map[string]time.Duration{}
			for rep := 0; rep < o.Reps; rep++ {
				for _, layout := range layouts {
					runtime.GC()
					d, err := nativeRunner(layout, workers, o.Passages, layoutOpts(layout))
					if err != nil {
						return nil, fmt.Errorf("bench: native %s/%s workers=%d: %w", lk.name, layout, workers, err)
					}
					if best[layout] == 0 || d < best[layout] {
						best[layout] = d
					}
				}
			}
			for _, layout := range layouts {
				ns := float64(best[layout].Nanoseconds()) / float64(o.Passages)
				rep.Results = append(rep.Results, NativeResult{
					Lock:           lk.name,
					Layout:         layout,
					Workers:        workers,
					Passages:       o.Passages,
					NsPerPassage:   ns,
					PassagesPerSec: 1e9 / ns,
				})
			}
		}
	}
	return rep, nil
}

// nativeRunner is the measurement seam: tests stub it to record the
// warmup/timed call sequence without running real passages. The layout
// argument exists purely so stubs can attribute calls.
var nativeRunner = func(layout string, workers, passages int, opts []rme.Option) (time.Duration, error) {
	return nativeRun(workers, passages, opts)
}

// nativeRun times `passages` total passages split across `workers`
// goroutines on one mutex, from a common start barrier.
func nativeRun(workers, passages int, opts []rme.Option) (time.Duration, error) {
	m, err := rme.New(workers, opts...)
	if err != nil {
		return 0, err
	}
	per := passages / workers
	if per == 0 {
		per = 1
	}
	start := make(chan struct{})
	done := make(chan struct{}, workers)
	for pid := 0; pid < workers; pid++ {
		go func(pid int) {
			<-start
			for i := 0; i < per; i++ {
				m.Lock(pid)
				m.Unlock(pid)
			}
			done <- struct{}{}
		}(pid)
	}
	t0 := time.Now()
	close(start)
	for i := 0; i < workers; i++ {
		<-done
	}
	return time.Since(t0), nil
}

// Table renders the report as a bench table for the text mode.
func (r *NativeReport) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Native backend throughput (wall clock, GOMAXPROCS=%d, num_cpu=%d, best of %d)",
			r.GOMAXPROCS, r.NumCPU, r.Reps),
		Columns: []string{"lock", "layout", "workers", "ns/passage", "passages/sec"},
		Notes: []string{
			"padded: cache-line-aware arena (home striping, cached bound); unpadded: dense legacy layout",
			"wall-clock numbers; compare layouts within a machine, not across machines",
		},
	}
	for _, res := range r.Results {
		t.Add(res.Lock, res.Layout, res.Workers,
			fmt.Sprintf("%.0f", res.NsPerPassage), fmt.Sprintf("%.0f", res.PassagesPerSec))
	}
	return t
}

// JSON serializes the report (the BENCH_native.json format).
func (r *NativeReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

package bench

import (
	"fmt"
	"strings"

	"rme/internal/core"
	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/workload"
)

// Opts sizes the experiments. Zero values select defaults tuned to finish
// in seconds on one core.
type Opts struct {
	N        int     // processes (default 16)
	Requests int     // satisfied requests per process (default 5)
	Failures int     // the "F failures" scenario budget (default N)
	Seeds    []int64 // seeds to average over (default 1..3)
}

func (o *Opts) fill() {
	if o.N == 0 {
		o.N = 16
	}
	if o.Requests == 0 {
		o.Requests = 5
	}
	if o.Failures == 0 {
		o.Failures = o.N
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
}

func checkCell(err error) string {
	if err != nil {
		return "VIOLATION: " + err.Error()
	}
	return "ok"
}

// Table1 regenerates the paper's Table 1 empirically: for every
// implemented lock, the measured RMRs per passage under the three failure
// scenarios, on both memory models.
func Table1(o Opts) []*Table {
	o.fill()
	locks := []string{"wr", "bakery", "tournament", "arbtree", "sa-bakery", "sa", "ba-log", "ba-sublog"}
	var out []*Table
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		t := &Table{
			Title:   fmt.Sprintf("Table 1 (measured, %v model, n=%d): RMRs per passage", model, o.N),
			Columns: []string{"algorithm", "scenario", "crashes", "ff-mean", "ff-max", "all-max", "properties"},
			Notes: []string{
				"ff-*: failure-free passages only; all-max: including crashed passages",
				"paper columns — wr: O(1)/O(1)/O(1) (weak); bakery: Θ(n) flat (read/write only);",
				"tournament: O(log n) flat; arbtree: O(log n/log log n) flat (CC);",
				"sa-bakery: O(1)/O(n) (the GR §4.2 row's shape); sa: O(1)/O(T(n));",
				"ba-*: O(1)/O(√F)/O(T(n)) — the paper's contribution",
			},
		}
		for _, lk := range locks {
			for _, sc := range workload.Scenarios(o.Failures) {
				pt := Point{Lock: lk, N: o.N, Model: model, Requests: o.Requests, Plan: sc.Plan}
				m, err := RunSeeds(pt, o.Seeds)
				if err != nil {
					t.Add(lk, sc.Name, "-", "-", "-", "-", "ERROR: "+err.Error())
					continue
				}
				t.Add(lk, sc.Name, m.Crashes, m.FFMean, m.FFMax, m.AllMax, checkCell(m.CheckErr))
			}
		}
		out = append(out, t)
	}
	return out
}

// Table2 regenerates the paper's Table 2: each lock's empirical
// classification against the performance measures of Section 2.5.
func Table2(o Opts) *Table {
	o.fill()
	t := &Table{
		Title: "Table 2 (measured): performance-measure classification",
		Columns: []string{"algorithm", "ff-max n=4", "ff-max n=32", "PM1 const?",
			"heavy-max n=4", "heavy-max n=32", "PM3 bounded?", "classification"},
		Notes: []string{
			"PM1: failure-free RMRs constant in n; PM3: RMRs bounded under arbitrarily many failures",
			"adaptiveness (PM2) is measured by the adaptivity sweep (√F fit)",
		},
	}
	heavy := func(n int) sim.FailurePlan {
		return &sim.RandomFailures{Rate: 0.01, MaxPerProcess: 4, DuringPassage: true}
	}
	class := map[string]string{
		"wr":         "weakly recoverable, O(1) everywhere",
		"bakery":     "non-adaptive, read/write only (Θ(n))",
		"tournament": "bounded non-adaptive",
		"arbtree":    "well-bounded non-adaptive (CC)",
		"sa-bakery":  "semi-adaptive (GR §4.2 shape)",
		"sa":         "bounded semi-adaptive",
		"ba-log":     "bounded super-adaptive",
		"ba-sublog":  "well-bounded super-adaptive",
	}
	for _, lk := range []string{"wr", "bakery", "tournament", "arbtree", "sa-bakery", "sa", "ba-log", "ba-sublog"} {
		var ff [2]int64
		var hv [2]int64
		bad := false
		for i, n := range []int{4, 32} {
			m, err := RunSeeds(Point{Lock: lk, N: n, Model: memory.CC, Requests: o.Requests}, o.Seeds)
			if err != nil {
				bad = true
				break
			}
			ff[i] = m.FFMax
			mh, err := RunSeeds(Point{Lock: lk, N: n, Model: memory.CC, Requests: o.Requests, Plan: heavy}, o.Seeds)
			if err != nil {
				bad = true
				break
			}
			hv[i] = mh.AllMax
		}
		if bad {
			t.Add(lk, "-", "-", "-", "-", "-", "-", "ERROR")
			continue
		}
		pm1 := "yes"
		if float64(ff[1]) > 1.25*float64(ff[0])+2 {
			pm1 = "no"
		}
		// PM3 is boundedness in the number of *failures*: under heavy
		// failures the worst passage must stay within a constant factor
		// of the failure-free worst passage at the same n (an unbounded
		// lock's cost keeps growing with every crash).
		pm3 := "yes"
		if float64(hv[1]) > 3*float64(ff[1])+8 {
			pm3 = "no"
		}
		t.Add(lk, ff[0], ff[1], pm1, hv[0], hv[1], pm3, class[lk])
	}
	return t
}

// Figure1 reproduces the sub-queue fragmentation diagram: eight processes
// queue on the weakly recoverable lock; two of them crash immediately
// after their sensitive FAS, splitting the queue into sub-queues.
func Figure1(seed int64) string {
	var lck *core.WRLock
	factory := func(sp memory.Space, n int) sim.Lock {
		lck = core.NewWRLock(sp, n, "wr", nil)
		return lck
	}
	plan := sim.PlanSeq{
		&sim.CrashOnLabel{PID: 3, Label: "wr:fas", After: true},
		&sim.CrashOnLabel{PID: 6, Label: "wr:fas", After: true},
	}
	var sb strings.Builder
	sb.WriteString("== Figure 1 (reproduced): queue fragmentation after unsafe failures ==\n")
	sb.WriteString("processes p0..p7 append via FAS; p3 and p6 crash immediately after their FAS\n\n")
	best := 0
	crashes := 0
	cfg := sim.Config{
		N: 8, Model: memory.CC, Requests: 2, Seed: seed, Plan: plan, CSOps: 8,
		OnEvent: func(ev sim.Event, a *memory.Arena) {
			if ev.Kind == sim.EvCrash {
				crashes++
			}
			if ev.Kind != sim.EvCrash && ev.Kind != sim.EvCSEnter {
				return
			}
			qs := lck.SubQueues(a)
			if len(qs) > best {
				best = len(qs)
				fmt.Fprintf(&sb, "t=%d (%d unsafe failures so far): %d sub-queue(s)\n", ev.Seq, crashes, len(qs))
				for _, q := range qs {
					owners := make([]string, len(q.Owners))
					for i, o := range q.Owners {
						owners[i] = fmt.Sprintf("p%d", o)
					}
					tailMark := ""
					if q.AtTail {
						tailMark = "   ← tail"
					}
					fmt.Fprintf(&sb, "    head → %s%s\n", strings.Join(owners, " → "), tailMark)
				}
			}
		},
	}
	r, err := sim.New(cfg, factory)
	if err != nil {
		return err.Error()
	}
	res, err := r.Run()
	if err != nil {
		fmt.Fprintf(&sb, "run error: %v\n", err)
		return sb.String()
	}
	fmt.Fprintf(&sb, "\nall %d requests satisfied despite fragmentation (starvation freedom, Thm 4.3)\n", len(res.Requests))
	fmt.Fprintf(&sb, "max simultaneous CS occupancy: %d with %d unsafe failures (responsiveness, Thm 4.2: occupancy ≤ failures+1)\n",
		res.MaxCSOverlap, res.CrashCount())
	return sb.String()
}

// Figure2 renders the SA-Lock composition and traces fast/slow routing
// after an unsafe failure (Figure 2 of the paper).
func Figure2(seed int64) string {
	var sb strings.Builder
	sb.WriteString("== Figure 2 (reproduced): the semi-adaptive framework ==\n\n")
	sb.WriteString("            ┌────────┐     fast path      ┌────────────┐\n")
	sb.WriteString("  ──enter──▶│ filter │──▶ splitter ──────▶│ arbitrator │──▶ CS\n")
	sb.WriteString("            │  (WR)  │        │ slow      │ (dual-port)│\n")
	sb.WriteString("            └────────┘        ▼           └────────────┘\n")
	sb.WriteString("                          core lock ─────────▶ (right port)\n\n")

	plan := &sim.CrashOnLabel{PID: 0, Label: "F1:fas", After: true}
	pt := Point{Lock: "sa", N: 8, Model: memory.CC, Requests: 3, Plan: func(int) sim.FailurePlan { return plan },
		RecordOps: true, CSOps: 4}
	pt.Seed = seed
	m, err := Run(pt)
	if err != nil {
		return sb.String() + err.Error()
	}
	fmt.Fprintf(&sb, "trace (n=8, one unsafe failure at the filter FAS):\n")
	fmt.Fprintf(&sb, "  crashes=%d  max CS occupancy=%d  escalated-to-slow-path depth=%d\n",
		m.Crashes, m.Overlap, m.MaxDepth)
	fmt.Fprintf(&sb, "  properties: %s\n", checkCell(m.CheckErr))
	return sb.String()
}

// Figure3 renders the recursive BA-Lock structure and an escalation trace
// (Figure 3 of the paper).
func Figure3(o Opts) string {
	o.fill()
	var sb strings.Builder
	sb.WriteString("== Figure 3 (reproduced): the recursive super-adaptive framework ==\n\n")
	a := memory.NewArena(memory.CC, o.N)
	b := core.NewBALock(a, o.N, core.DefaultLevels(o.N), func(sp memory.Space, n int) core.RecoverableLock {
		return coreTournament(sp, n)
	}, nil)
	sb.WriteString(b.Describe())
	sb.WriteString("\nescalation trace: x(x-1)/2 unsafe failures aimed at levels 1..x-1 (Thm 5.17's ladder)\n")
	for x := 1; x <= b.Levels()+1 && x <= 4; x++ {
		var plans sim.PlanSeq
		total := 0
		for k := 1; k < x; k++ {
			// x-k unsafe failures at level k's filter.
			k := k
			plans = append(plans, &sim.UnsafeBudget{
				Total:         x - k,
				MaxPerProcess: 1,
				Rate:          0.3,
				Match:         func(l string) bool { return l == fmt.Sprintf("F%d:fas", k) },
			})
			total += x - k
		}
		var plan func(int) sim.FailurePlan
		if len(plans) > 0 {
			plan = func(int) sim.FailurePlan { return plans }
		}
		pt := Point{Lock: "ba-log", N: o.N, Model: memory.CC, Requests: 3 + total/4, RecordOps: true,
			CSOps: 4, Plan: plan, Seed: 5}
		m, err := Run(pt)
		if err != nil {
			fmt.Fprintf(&sb, "  budget %d: error %v\n", total, err)
			continue
		}
		fmt.Fprintf(&sb, "  %d unsafe failure(s) aimed at levels 1..%d → injected %d, deepest level %d (bound %d; ME: %s)\n",
			total, x-1, m.Crashes, m.MaxDepth, x, checkCell(m.CheckErr))
	}
	return sb.String()
}

func coreTournament(sp memory.Space, n int) core.RecoverableLock {
	spec, _ := workload.Lookup("tournament")
	return spec.New(sp, n).(core.RecoverableLock)
}

// Ablation measures the price of each property the construction stacks on
// top of plain MCS: bounded exit (mcs-dt), weak recoverability (wr),
// strong recoverability + semi-adaptivity (sa), and full super-adaptivity
// (ba-log) — all in the failure-free regime the paper's O(1) claims cover.
func Ablation(o Opts) *Table {
	o.fill()
	t := &Table{
		Title:   fmt.Sprintf("Ablation: failure-free RMRs per passage as properties are added (n=%d)", o.N),
		Columns: []string{"lock", "adds", "CC mean", "CC max", "DSM mean", "DSM max"},
		Notes: []string{
			"every step keeps O(1) failure-free cost; the constant grows with each property",
		},
	}
	rows := []struct{ lock, adds string }{
		{"mcs", "(baseline queue lock)"},
		{"mcs-dt", "bounded exit"},
		{"wr", "weak recoverability"},
		{"sa", "strong recoverability, semi-adaptive"},
		{"ba-log", "super-adaptive (m levels)"},
	}
	for _, r := range rows {
		cells := []interface{}{r.lock, r.adds}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			m, err := RunSeeds(Point{Lock: r.lock, N: o.N, Model: model, Requests: o.Requests}, o.Seeds)
			if err != nil {
				cells = append(cells, "ERR", "-")
				continue
			}
			cells = append(cells, m.FFMean, m.FFMax)
		}
		t.Add(cells...)
	}
	return t
}

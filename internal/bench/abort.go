package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"rme"
	"rme/internal/metrics"
)

// The abort experiment measures what abortable passages cost: per-passage
// RMRs of the failure-free path at abort rates 0, 1% and 10%, plus the
// RMR distribution of the back-outs themselves. Aborts are injected
// through the public deadline API (TryLockFor with a microsecond-scale
// deadline), so the measurement exercises the real watcher/flag/back-out
// machinery end to end. The rate-0 row doubles as the regression anchor:
// it must match the plain metrics experiment's F=0 numbers (the abort
// support is off the failure-free path), which the CI abort-gate asserts.
// Results serialize as BENCH_abort.json (rme-bench-abort/v1).

// AbortOpts configures the abort experiment.
type AbortOpts struct {
	// Workers is the fixed worker count (default 8).
	Workers int
	// Passages is the total completed-passage target per measurement
	// (default 5000).
	Passages int
	// Rates lists the fraction of attempts made under a tight deadline
	// (default 0, 0.01, 0.10). A deadlined attempt aborts only if the
	// deadline actually expires while queued, so the delivered abort
	// count is reported separately from the rate.
	Rates []float64
}

func (o *AbortOpts) fill() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Passages <= 0 {
		o.Passages = 5000
	}
	if o.Rates == nil {
		o.Rates = []float64{0, 0.01, 0.10}
	}
}

// AbortResult is one measured configuration.
type AbortResult struct {
	Lock     string  `json:"lock"`
	Workers  int     `json:"workers"`
	Rate     float64 `json:"rate"` // fraction of attempts under a deadline
	Attempts uint64  `json:"attempts"`
	Passages uint64  `json:"passages"` // completed passages
	Aborted  uint64  `json:"aborted"`  // attempts that backed out
	// Failure-free per-passage RMRs (aborted attempts excluded).
	RMRMedian int     `json:"rmr_median"`
	RMRP99    int     `json:"rmr_p99"`
	RMRMean   float64 `json:"rmr_mean"`
	// Back-out RMRs: queue entry plus the abandon dance, per aborted
	// attempt.
	AbortRMRMedian int      `json:"abort_rmr_median"`
	AbortRMRP99    int      `json:"abort_rmr_p99"`
	AbandonedHist  []uint64 `json:"abandoned_hist,omitempty"` // aborts by deepest level
}

// AbortReport is the BENCH_abort.json document.
type AbortReport struct {
	Schema     string        `json:"schema"` // "rme-bench-abort/v1"
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Passages   int           `json:"passages_per_measurement"`
	Results    []AbortResult `json:"results"`
}

// abortRunner is the measurement seam; tests stub it to exercise the
// sweep structure without running real passages.
var abortRunner = abortRun

// AbortCost sweeps abort rates on every native lock and reports the
// failure-free and back-out RMR distributions.
func AbortCost(o AbortOpts) (*AbortReport, error) {
	o.fill()
	rep := &AbortReport{
		Schema:     "rme-bench-abort/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Passages:   o.Passages,
	}
	for _, lk := range nativeLocks {
		for _, rate := range o.Rates {
			s, err := abortRunner(lk.opts, o.Workers, o.Passages, rate)
			if err != nil {
				return nil, fmt.Errorf("bench: abort %s rate=%g: %w", lk.name, rate, err)
			}
			rep.Results = append(rep.Results, AbortResult{
				Lock:           lk.name,
				Workers:        o.Workers,
				Rate:           rate,
				Attempts:       s.Attempts,
				Passages:       s.Passages,
				Aborted:        s.Aborted,
				RMRMedian:      s.RMRHist.Quantile(0.5),
				RMRP99:         s.RMRHist.Quantile(0.99),
				RMRMean:        s.RMRHist.Mean(),
				AbortRMRMedian: s.AbortRMRHist.Quantile(0.5),
				AbortRMRP99:    s.AbortRMRHist.Quantile(0.99),
				AbandonedHist:  s.AbandonedHist,
			})
		}
	}
	return rep, nil
}

// abortRun completes `passages` total passages split across `workers`
// processes, making the configured fraction of attempts under a tight
// deadline, and returns the final snapshot. An attempt whose deadline
// expires backs out through the abort protocol and the passage is then
// completed by an ordinary re-acquisition, so every iteration ends with
// one completed passage regardless of the abort outcome.
func abortRun(lockOpts []rme.Option, workers, passages int, rate float64) (metrics.Snapshot, error) {
	opts := append([]rme.Option(nil), lockOpts...)
	opts = append(opts, rme.WithMetrics())
	m, err := rme.New(workers, opts...)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	per := passages / workers
	if per < 1 {
		per = 1
	}
	start := make(chan struct{})
	done := make(chan struct{}, workers)
	for pid := 0; pid < workers; pid++ {
		go func(pid int) {
			rng := rand.New(rand.NewSource(int64(pid)*1099511628211 + 1))
			<-start
			for i := 0; i < per; i++ {
				if rate > 0 && rng.Float64() < rate {
					d := time.Duration(1+rng.Intn(20)) * time.Microsecond
					if m.TryLockFor(pid, d) {
						m.Unlock(pid)
						continue
					}
					// Aborted out of the queue; complete the passage with
					// an ordinary re-acquisition (abort-then-reacquire).
				}
				m.Lock(pid)
				m.Unlock(pid)
			}
			done <- struct{}{}
		}(pid)
	}
	close(start)
	for i := 0; i < workers; i++ {
		<-done
	}
	s, _ := m.MetricsSnapshot()
	return s, nil
}

// Table renders the report as a bench table for the text mode.
func (r *AbortReport) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Abortable passages (exact CC RMRs, GOMAXPROCS=%d, num_cpu=%d)",
			r.GOMAXPROCS, r.NumCPU),
		Columns: []string{"lock", "workers", "rate", "attempts", "passages", "aborted", "rmr med", "rmr p99", "abort med", "abort p99"},
		Notes: []string{
			"rate: fraction of attempts made under a microsecond-scale deadline (TryLockFor)",
			"expect: rmr med identical at rate 0 to the metrics experiment's F=0 row; abort med bounded",
		},
	}
	for _, res := range r.Results {
		t.Add(res.Lock, res.Workers, res.Rate, res.Attempts, res.Passages, res.Aborted,
			res.RMRMedian, res.RMRP99, res.AbortRMRMedian, res.AbortRMRP99)
	}
	return t
}

// JSON serializes the report (the BENCH_abort.json format).
func (r *AbortReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

// assertRowArity is the table-integrity invariant: every row has exactly
// one cell per column. A short or long row silently shears the whole
// table sideways in text, CSV and JSON output.
func assertRowArity(t *testing.T, name string, tb *Table) {
	t.Helper()
	if len(tb.Columns) == 0 {
		t.Fatalf("%s: no columns", name)
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Errorf("%s row %d: %d cells for %d columns: %v", name, i, len(row), len(tb.Columns), row)
		}
	}
}

// allExperiments builds every table-producing experiment at tiny scale.
func allExperiments(o Opts) map[string]*Table {
	m := map[string]*Table{
		"adaptivity":   Adaptivity(o),
		"escalation":   Escalation(o),
		"batch":        Batch(o),
		"components":   Components(),
		"reclaim":      Reclaim(o),
		"superpassage": SuperPassage(o),
		"respons":      Responsiveness(o),
		"scale":        Scale(Opts{Requests: o.Requests, Seeds: o.Seeds}),
		"ablation":     Ablation(o),
		"table2":       Table2(Opts{Requests: o.Requests, Seeds: o.Seeds}),
	}
	for i, tb := range Table1(o) {
		m[fmt.Sprintf("table1/%d", i)] = tb
	}
	return m
}

// TestTableRowArity: on the happy path, every experiment emits full rows.
func TestTableRowArity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for name, tb := range allExperiments(tinyOpts()) {
		assertRowArity(t, name, tb)
	}
}

// TestTableRowArityOnRunFailure is the regression test for the ERR-arity
// bug: with every simulator run failing, error rows must still carry
// exactly one cell per column (ba-log spans two columns in the adaptivity
// table and used to get a single ERR cell, shearing the row).
func TestTableRowArityOnRunFailure(t *testing.T) {
	saved := runSeeds
	runSeeds = func(pt Point, seeds []int64) (Metrics, error) {
		return Metrics{}, errors.New("injected simulator failure")
	}
	defer func() { runSeeds = saved }()

	o := tinyOpts()
	for name, tb := range map[string]*Table{
		"adaptivity": Adaptivity(o),
		"escalation": Escalation(o),
		"components": Components(),
		"respons":    Responsiveness(o),
		"scale":      Scale(Opts{Requests: o.Requests, Seeds: o.Seeds}),
	} {
		assertRowArity(t, name, tb)
	}
}

func TestTableJSON(t *testing.T) {
	tb := &Table{Title: "t", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tb.Add(1, 2.5)
	raw, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string     `json:"schema"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("Table.JSON emitted invalid JSON: %v\n%s", err, raw)
	}
	if doc.Schema != "rme-bench-table/v1" || len(doc.Rows) != 1 || doc.Rows[0][1] != "2.5" {
		t.Fatalf("unexpected document: %+v", doc)
	}
}

// TestNativeSmoke runs the wall-clock benchmark at miniature scale and
// checks the report's shape and JSON validity. Relative padded/unpadded
// ordering is NOT asserted here — at this scale on a loaded CI machine
// the numbers are noise; BENCH_native.json records a real run.
func TestNativeSmoke(t *testing.T) {
	rep, err := Native(NativeOpts{MaxWorkers: 2, Passages: 64, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "rme-bench-native/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	// 2 locks × workers {1,2} × 2 layouts.
	if len(rep.Results) != 2*2*2 {
		t.Fatalf("%d results, want 8", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerPassage <= 0 || r.PassagesPerSec <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc NativeReport
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	assertRowArity(t, "native", rep.Table())
}

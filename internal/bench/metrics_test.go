package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"rme"
	"rme/internal/metrics"
)

// TestNativeWarmupPerLayout pins the warmup discipline through the
// stubbed runner: each layout gets its own discarded warmup (reduced
// passage count) before any timed rep of either layout, and the timed
// reps then interleave A/B. A shared warmup would bias whichever layout
// ran its first timed rep cold.
func TestNativeWarmupPerLayout(t *testing.T) {
	type call struct {
		layout   string
		passages int
	}
	var calls []call
	orig := nativeRunner
	nativeRunner = func(layout string, workers, passages int, opts []rme.Option) (time.Duration, error) {
		calls = append(calls, call{layout, passages})
		return time.Millisecond, nil
	}
	defer func() { nativeRunner = orig }()

	const passages, reps = 400, 3
	if _, err := Native(NativeOpts{MaxWorkers: 1, Passages: passages, Reps: reps}); err != nil {
		t.Fatal(err)
	}

	// 2 locks × 1 worker count × (2 warmups + 2 layouts × reps).
	perConfig := 2 + 2*reps
	if len(calls) != 2*perConfig {
		t.Fatalf("%d runner calls, want %d", len(calls), 2*perConfig)
	}
	for lock := 0; lock < 2; lock++ {
		seq := calls[lock*perConfig : (lock+1)*perConfig]
		// The first two calls are the warmups, one per layout, at
		// reduced scale.
		warmed := map[string]bool{}
		for _, c := range seq[:2] {
			if c.passages != passages/4 {
				t.Fatalf("warmup ran %d passages, want %d", c.passages, passages/4)
			}
			warmed[c.layout] = true
		}
		if !warmed["padded"] || !warmed["unpadded"] {
			t.Fatalf("warmups covered %v, want both layouts", warmed)
		}
		// Every timed rep runs at full scale, interleaved A/B.
		for i, c := range seq[2:] {
			if c.passages != passages {
				t.Fatalf("timed rep %d ran %d passages, want %d", i, c.passages, passages)
			}
			want := []string{"padded", "unpadded"}[i%2]
			if c.layout != want {
				t.Fatalf("timed rep %d measured %s, want %s (A/B interleaving)", i, c.layout, want)
			}
		}
	}
}

// TestPassageMetricsSweepShape drives the experiment through the stubbed
// runner and checks the sweep structure: a worker sweep at F=0 and a
// failure sweep at MaxWorkers, for each lock.
func TestPassageMetricsSweepShape(t *testing.T) {
	type call struct {
		workers  int
		failures int
	}
	var calls []call
	orig := metricsRunner
	metricsRunner = func(lockOpts []rme.Option, workers, passages, failures int) (metrics.Snapshot, error) {
		calls = append(calls, call{workers, failures})
		return metrics.Snapshot{
			Passages:  uint64(passages),
			FastPath:  uint64(passages),
			LevelHist: []uint64{uint64(passages)},
			RMRHist:   metrics.Hist{Counts: []uint64{0, 0, 0, uint64(passages)}},
		}, nil
	}
	defer func() { metricsRunner = orig }()

	rep, err := PassageMetrics(MetricsOpts{MaxWorkers: 4, Passages: 100, Failures: []int{2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Per lock: workers {1,2,4} at F=0, then F {2,8} at workers=4.
	want := []call{{1, 0}, {2, 0}, {4, 0}, {4, 2}, {4, 8}}
	if len(calls) != 2*len(want) {
		t.Fatalf("%d runner calls, want %d", len(calls), 2*len(want))
	}
	for i, c := range calls {
		if c != want[i%len(want)] {
			t.Fatalf("call %d = %+v, want %+v", i, c, want[i%len(want)])
		}
	}
	if len(rep.Results) != 2*len(want) {
		t.Fatalf("%d results, want %d", len(rep.Results), 2*len(want))
	}
	for _, r := range rep.Results {
		if r.RMRMedian != 3 || r.MaxLevel != 1 || r.Passages != 100 {
			t.Fatalf("snapshot condensation wrong: %+v", r)
		}
	}
}

// TestPassageMetricsRunnerError pins the error path's context string.
func TestPassageMetricsRunnerError(t *testing.T) {
	orig := metricsRunner
	metricsRunner = func(lockOpts []rme.Option, workers, passages, failures int) (metrics.Snapshot, error) {
		return metrics.Snapshot{}, fmt.Errorf("boom")
	}
	defer func() { metricsRunner = orig }()
	_, err := PassageMetrics(MetricsOpts{MaxWorkers: 1, Passages: 10})
	if err == nil || !strings.Contains(err.Error(), "metrics ba-log workers=1 F=0") {
		t.Fatalf("err = %v", err)
	}
}

// TestPassageMetricsSmoke runs the real experiment at miniature scale:
// schema validity, exact passage accounting, exact injected failure
// counts, and the failure-free invariants the CI gate asserts at full
// scale (bounded median RMR, no escalation above level 1 at F=0).
func TestPassageMetricsSmoke(t *testing.T) {
	rep, err := PassageMetrics(MetricsOpts{MaxWorkers: 2, Passages: 200, Failures: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "rme-bench-metrics/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	// Per lock: workers {1,2} at F=0 plus F=4 at workers=2.
	if len(rep.Results) != 2*3 {
		t.Fatalf("%d results, want 6", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Passages != 200 {
			t.Fatalf("%s w=%d F=%d: %d passages, want 200", r.Lock, r.Workers, r.Failures, r.Passages)
		}
		if r.Crashes != uint64(r.Failures) {
			t.Fatalf("%s w=%d F=%d: %d crashes injected", r.Lock, r.Workers, r.Failures, r.Crashes)
		}
		if r.Failures == 0 {
			if r.MaxLevel != 1 {
				t.Fatalf("%s w=%d: escalated to level %d with no failures", r.Lock, r.Workers, r.MaxLevel)
			}
			if r.RMRMedian <= 0 || r.RMRMedian > 100 {
				t.Fatalf("%s w=%d: failure-free median RMR %d outside sanity bounds", r.Lock, r.Workers, r.RMRMedian)
			}
		}
		if r.FastPath+r.SlowPath != r.Passages {
			t.Fatalf("fast %d + slow %d != passages %d", r.FastPath, r.SlowPath, r.Passages)
		}
		var hist uint64
		for _, v := range r.LevelHist {
			hist += v
		}
		if hist != r.Passages {
			t.Fatalf("level hist %v sums to %d, want %d", r.LevelHist, hist, r.Passages)
		}
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc MetricsReport
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	assertRowArity(t, "metrics", rep.Table())
}

// TestUnsafeInjectorBudget exercises the injector in isolation: exactly
// budget crashes, each armed by a ":fas" sighting and fired on the
// process's next instruction.
func TestUnsafeInjectorBudget(t *testing.T) {
	inj := newUnsafeInjector(2, 3, 30)
	crashes := 0
	for i := 0; i < 200; i++ {
		pid := i % 2
		if inj.hook(pid, "F1:fas") {
			t.Fatal("crash fired on the FAS itself (safe placement)")
		}
		if inj.hook(pid, "") {
			crashes++
		}
	}
	if crashes != 3 {
		t.Fatalf("%d crashes, want exactly 3", crashes)
	}
	// Exhausted budget: never fires again.
	for i := 0; i < 50; i++ {
		if inj.hook(0, "F1:fas") || inj.hook(0, "") {
			t.Fatal("injector fired past its budget")
		}
	}
}

// Package bench is the experiment harness that regenerates the paper's
// tables and figures (see DESIGN.md's experiment index). It runs the
// registered locks on the simulator under controlled failure scenarios,
// aggregates exact RMR counts, and renders plain-text tables.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/workload"
)

// Point is one measurement configuration.
type Point struct {
	Lock     string
	N        int
	Model    memory.Model
	Requests int
	Seed     int64
	Plan     func(n int) sim.FailurePlan // nil: no failures
	CSOps    int
	MaxSteps int64
	// RecordOps enables escalation-depth extraction (needed only when
	// the lock has slow labels).
	RecordOps bool
}

// Metrics aggregates one run.
type Metrics struct {
	Crashes  int
	Overlap  int
	Steps    int64
	Arena    int
	Passages int
	FFMax    int64   // max RMRs over failure-free passages
	FFMean   float64 // mean RMRs over failure-free passages
	AllMax   int64   // max RMRs over all passages
	AffMax   int64   // max RMRs over passages overlapping a failure's consequence interval
	AffMean  float64 // mean over the same set (0 when no failures)
	ReqMean  float64 // mean RMRs per super-passage
	ReqMax   int64
	MaxDepth int // deepest escalation level reached (1 = none)
	CheckErr error
}

// Run executes one measurement point and validates the lock's contract
// (ME for strong locks, responsiveness for weak ones). Validation
// failures are reported in Metrics.CheckErr, not as a run error.
func Run(pt Point) (Metrics, error) {
	spec, err := workload.Lookup(pt.Lock)
	if err != nil {
		return Metrics{}, err
	}
	cfg := sim.Config{
		N:         pt.N,
		Model:     pt.Model,
		Requests:  pt.Requests,
		Seed:      pt.Seed,
		CSOps:     pt.CSOps,
		MaxSteps:  pt.MaxSteps,
		RecordOps: pt.RecordOps,
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 20_000_000
	}
	if pt.Plan != nil {
		cfg.Plan = pt.Plan(pt.N)
	}
	r, err := sim.New(cfg, spec.New)
	if err != nil {
		return Metrics{}, err
	}
	res, err := r.Run()
	if err != nil {
		return Metrics{}, fmt.Errorf("bench: %s n=%d %v seed=%d: %w", pt.Lock, pt.N, pt.Model, pt.Seed, err)
	}

	ff := res.SummarizePassageRMRs(func(p sim.PassageStat) bool { return !p.Crashed })
	all := res.SummarizePassageRMRs(nil)
	req := res.SummarizeRequestRMRs()
	ivs := check.ConsequenceIntervals(res)
	aff := res.SummarizePassageRMRs(func(p sim.PassageStat) bool {
		for _, iv := range ivs {
			if p.StartSeq <= iv.End && p.EndSeq >= iv.Start {
				return true
			}
		}
		return false
	})
	m := Metrics{
		Crashes:  res.CrashCount(),
		Overlap:  res.MaxCSOverlap,
		Steps:    res.Steps,
		Arena:    res.ArenaWords,
		Passages: len(res.Passages),
		FFMax:    ff.Max,
		FFMean:   ff.Mean,
		AllMax:   all.Max,
		AffMax:   aff.Max,
		AffMean:  aff.Mean,
		ReqMean:  req.Mean,
		ReqMax:   req.Max,
		MaxDepth: 1,
	}
	if pt.RecordOps && spec.SlowLabels != nil {
		m.MaxDepth = check.MaxDepth(res, spec.SlowLabels(pt.N))
	}
	switch spec.Strength {
	case workload.Strong:
		m.CheckErr = check.Strong(res, 1<<20)
	case workload.Weak:
		m.CheckErr = check.Weak(res)
	case workload.NonRecoverable:
		// Ablation baselines: mutual exclusion only, and only under
		// failure-free plans.
		m.CheckErr = check.MutualExclusion(res)
	}
	return m, nil
}

// RunSeeds averages a point over several seeds (the plan is rebuilt per
// run). Max-style metrics take the maximum, mean-style metrics the mean.
func RunSeeds(pt Point, seeds []int64) (Metrics, error) {
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	var agg Metrics
	for i, s := range seeds {
		pt.Seed = s
		m, err := Run(pt)
		if err != nil {
			return Metrics{}, err
		}
		if i == 0 {
			agg = m
			continue
		}
		agg.Crashes += m.Crashes
		agg.Passages += m.Passages
		agg.Steps += m.Steps
		if m.Overlap > agg.Overlap {
			agg.Overlap = m.Overlap
		}
		if m.FFMax > agg.FFMax {
			agg.FFMax = m.FFMax
		}
		if m.AllMax > agg.AllMax {
			agg.AllMax = m.AllMax
		}
		if m.ReqMax > agg.ReqMax {
			agg.ReqMax = m.ReqMax
		}
		if m.AffMax > agg.AffMax {
			agg.AffMax = m.AffMax
		}
		agg.AffMean += m.AffMean
		if m.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = m.MaxDepth
		}
		agg.FFMean += m.FFMean
		agg.ReqMean += m.ReqMean
		if agg.CheckErr == nil {
			agg.CheckErr = m.CheckErr
		}
	}
	agg.FFMean /= float64(len(seeds))
	agg.ReqMean /= float64(len(seeds))
	agg.AffMean /= float64(len(seeds))
	agg.Crashes /= len(seeds)
	return agg, nil
}

// Table renders rows of aligned columns as plain text.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// FitSqrt reports how well ys ≈ c·√xs by least squares, returning the
// coefficient and the normalized residual (0 = perfect fit).
func FitSqrt(xs []float64, ys []float64) (c float64, resid float64) {
	var num, den float64
	for i := range xs {
		sx := math.Sqrt(xs[i])
		num += sx * ys[i]
		den += sx * sx
	}
	if den == 0 {
		return 0, 0
	}
	c = num / den
	var ss, tot float64
	for i := range xs {
		d := ys[i] - c*math.Sqrt(xs[i])
		ss += d * d
		tot += ys[i] * ys[i]
	}
	if tot == 0 {
		return c, 0
	}
	return c, math.Sqrt(ss / tot)
}

// JSON renders the table as a machine-readable object: the rmebench -json
// mode emits this for every experiment so results can be archived and
// diffed across commits (the BENCH_*.json workflow in EXPERIMENTS.md).
// Cells stay strings — they are already formatted for human-stable diffs.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Schema  string     `json:"schema"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{
		Schema:  "rme-bench-table/v1",
		Title:   t.Title,
		Columns: t.Columns,
		Rows:    t.Rows,
		Notes:   t.Notes,
	}, "", "  ")
}

// CSV renders the table as RFC-4180-style comma-separated values (header
// row first, notes omitted) for plotting pipelines.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

package bench

import (
	"strings"
	"testing"
)

// tinyOpts keeps every experiment fast enough for the unit-test suite.
func tinyOpts() Opts {
	return Opts{N: 8, Requests: 2, Failures: 4, Seeds: []int64{1}}
}

func assertClean(t *testing.T, name, s string) {
	t.Helper()
	if s == "" {
		t.Fatalf("%s: empty output", name)
	}
	for _, bad := range []string{"VIOLATION", "ERROR", "ERR\n", "ERR "} {
		if strings.Contains(s, bad) {
			t.Fatalf("%s output contains %q:\n%s", name, bad, s)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	tables := Table1(tinyOpts())
	if len(tables) != 2 {
		t.Fatalf("%d tables, want 2 (CC and DSM)", len(tables))
	}
	for _, tb := range tables {
		assertClean(t, "table1", tb.String())
		if len(tb.Rows) != 8*3 { // 8 locks × 3 scenarios
			t.Fatalf("%d rows, want 24", len(tb.Rows))
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	tb := Table2(Opts{Requests: 2, Seeds: []int64{1}})
	assertClean(t, "table2", tb.String())
	// The framework locks must classify PM1 = yes, the bases = no.
	for _, row := range tb.Rows {
		switch row[0] {
		case "sa", "ba-log", "ba-sublog", "wr":
			if row[3] != "yes" {
				t.Errorf("%s: PM1 = %q, want yes", row[0], row[3])
			}
		case "tournament", "bakery":
			if row[3] != "no" {
				t.Errorf("%s: PM1 = %q, want no", row[0], row[3])
			}
		}
		if row[6] != "yes" {
			t.Errorf("%s: PM3 = %q, want yes (all implemented locks are bounded)", row[0], row[6])
		}
	}
}

func TestFigure3Smoke(t *testing.T) {
	out := Figure3(tinyOpts())
	assertClean(t, "figure3", out)
	if !strings.Contains(out, "level 1") || !strings.Contains(out, "deepest level") {
		t.Fatalf("figure3 output incomplete:\n%s", out)
	}
}

func TestAdaptivitySmoke(t *testing.T) {
	tb := Adaptivity(tinyOpts())
	assertClean(t, "adaptivity", tb.String())
	if len(tb.Rows) != 8 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestEscalationSmoke(t *testing.T) {
	tb := Escalation(tinyOpts())
	assertClean(t, "escalation", tb.String())
	for _, row := range tb.Rows {
		if row[3] == "NO" {
			t.Fatalf("Theorem 5.17 bound violated: %v", row)
		}
	}
}

func TestBatchSmoke(t *testing.T) {
	assertClean(t, "batch", Batch(tinyOpts()).String())
}

func TestAblationSmoke(t *testing.T) {
	tb := Ablation(tinyOpts())
	assertClean(t, "ablation", tb.String())
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tb.Rows))
	}
}

func TestReclaimSmoke(t *testing.T) {
	tb := Reclaim(tinyOpts())
	assertClean(t, "reclaim", tb.String())
	// The pool column must be constant across workload growth.
	if len(tb.Rows) < 2 || tb.Rows[0][2] != tb.Rows[len(tb.Rows)-1][2] {
		t.Fatalf("reclamation footprint not constant: %v", tb.Rows)
	}
}

func TestSuperPassageSmoke(t *testing.T) {
	assertClean(t, "superpassage", SuperPassage(tinyOpts()).String())
}

func TestScaleSmoke(t *testing.T) {
	tb := Scale(Opts{Requests: 2, Seeds: []int64{1}})
	assertClean(t, "scale", tb.String())
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

package bench

import (
	"strings"
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
)

func TestRunBasics(t *testing.T) {
	m, err := Run(Point{Lock: "wr", N: 4, Model: memory.CC, Requests: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Passages != 12 || m.Crashes != 0 || m.Overlap != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.FFMax <= 0 || m.FFMean <= 0 || m.ReqMean <= 0 {
		t.Fatalf("zero RMR metrics: %+v", m)
	}
	if m.CheckErr != nil {
		t.Fatalf("weak checks failed: %v", m.CheckErr)
	}
}

func TestRunUnknownLock(t *testing.T) {
	if _, err := Run(Point{Lock: "nope", N: 2, Model: memory.CC}); err == nil {
		t.Fatal("expected error for unknown lock")
	}
}

func TestRunWithFailures(t *testing.T) {
	plan := func(n int) sim.FailurePlan {
		return &sim.FailureBudget{Total: 3, Rate: 0.05}
	}
	m, err := Run(Point{Lock: "ba-log", N: 8, Model: memory.CC, Requests: 3, Seed: 2, Plan: plan, RecordOps: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Crashes != 3 {
		t.Fatalf("crashes = %d, want 3", m.Crashes)
	}
	if m.CheckErr != nil {
		t.Fatalf("strong checks failed: %v", m.CheckErr)
	}
	if m.MaxDepth < 1 {
		t.Fatalf("depth = %d", m.MaxDepth)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	m, err := RunSeeds(Point{Lock: "tournament", N: 4, Model: memory.DSM, Requests: 2}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Passages != 3*8 {
		t.Fatalf("aggregated passages = %d, want 24", m.Passages)
	}
	if m.FFMean <= 0 {
		t.Fatalf("mean = %f", m.FFMean)
	}
	// Empty seeds default to one run.
	m2, err := RunSeeds(Point{Lock: "tournament", N: 2, Model: memory.CC, Requests: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Passages != 2 {
		t.Fatalf("default-seed passages = %d", m2.Passages)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tb.Add(1, 2.5)
	tb.Add("xyz", "w")
	s := tb.String()
	for _, want := range []string{"== demo ==", "a    bb", "xyz", "2.5", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFitSqrt(t *testing.T) {
	xs := []float64{1, 4, 9, 16}
	ys := []float64{3, 6, 9, 12} // exactly 3·√x
	c, resid := FitSqrt(xs, ys)
	if c < 2.99 || c > 3.01 {
		t.Fatalf("c = %f, want 3", c)
	}
	if resid > 0.001 {
		t.Fatalf("resid = %f, want ~0", resid)
	}
	if c, _ := FitSqrt(nil, nil); c != 0 {
		t.Fatalf("empty fit c = %f", c)
	}
	// A constant series fits √ badly.
	_, resid2 := FitSqrt([]float64{1, 4, 9, 16, 25, 36}, []float64{5, 5, 5, 5, 5, 5})
	if resid2 < 0.1 {
		t.Fatalf("constant series fit √ too well: resid %f", resid2)
	}
}

func TestFigure1Output(t *testing.T) {
	out := Figure1(21)
	for _, want := range []string{"Figure 1", "sub-queue", "head →", "starvation freedom"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	out := Figure2(11)
	for _, want := range []string{"Figure 2", "filter", "arbitrator", "properties: ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure2 output missing %q:\n%s", want, out)
		}
	}
}

func TestResponsivenessTable(t *testing.T) {
	tb := Responsiveness(Opts{N: 8, Requests: 3, Seeds: []int64{1}})
	s := tb.String()
	if strings.Contains(s, "NO") || strings.Contains(s, "VIOLATION") || strings.Contains(s, "ERR") {
		t.Fatalf("responsiveness table reports violations:\n%s", s)
	}
}

func TestComponentsTable(t *testing.T) {
	s := Components().String()
	if strings.Contains(s, "ERR") {
		t.Fatalf("components table has errors:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.Add("x,y", 3)
	tb.Add(`quote"inside`, 1.5)
	got := tb.CSV()
	want := "a,b\n\"x,y\",3\n\"quote\"\"inside\",1.5\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"runtime"

	"rme/internal/des"
)

// The des experiment runs the virtual-time discrete-event simulator over
// a fixed traffic trajectory: an arrival-rate ramp from an uncontended
// trickle up to contention collapse, a crash-storm vs uniform-crash
// comparison, a Zipf-keyed bursty regime and a straggler regime. Unlike
// the wall-clock experiments the numbers are deterministic — the same
// seed reproduces the report bit for bit — so BENCH_des.json is checked
// in and the CI des-gate asserts its invariants (schema, monotone
// percentiles, and the low-rate anchor matching the native
// BENCH_metrics.json failure-free medians).

// desLocks maps each native lock of the metrics experiment to the
// simulator spec built from the same recipe (base lock, level schedule,
// reclamation pools), so the anchor rows are directly comparable.
var desLocks = []struct {
	name string // native lock name, as in BENCH_metrics.json
	sim  string // workload-registry spec of the same recipe
}{
	{name: "ba-log", sim: "ba-pool"},
	{name: "ba-sublog", sim: "ba-sublog-pool"},
}

// DESOpts configures the des experiment.
type DESOpts struct {
	// Workers is the process count of the contended regimes (default 8).
	Workers int
	// Requests is the satisfied-request target per process (default 60).
	Requests int
	// Seed drives every run (default 1).
	Seed int64
	// Rates is the arrival-rate ramp in requests per second per process
	// (default 2k, 10k, 50k, 200k, 1M — trickle to collapse).
	Rates []float64
	// Keys is the keyspace size of the Zipf regime (default 16).
	Keys int
	// CrashBudget is the failure budget of the crash regimes (default 24).
	CrashBudget int
	// AbortDeadlineNs is the passage deadline of the abort regime in
	// virtual nanoseconds (default 30µs — shorter than p50 waiting time at
	// the collapse rate, so deadlines actually fire).
	AbortDeadlineNs int64
}

func (o *DESOpts) fill() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Requests <= 0 {
		o.Requests = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Rates == nil {
		o.Rates = []float64{2_000, 10_000, 50_000, 200_000, 1_000_000}
	}
	if o.Keys <= 0 {
		o.Keys = 16
	}
	if o.CrashBudget <= 0 {
		o.CrashBudget = 24
	}
	if o.AbortDeadlineNs <= 0 {
		o.AbortDeadlineNs = 30_000
	}
}

// DESResult is one simulated configuration.
type DESResult struct {
	Lock            string  `json:"lock"`     // native lock name ("ba-log")
	SimLock         string  `json:"sim_lock"` // simulator spec ("ba-pool")
	Regime          string  `json:"regime"`   // anchor | ramp | crash-uniform | crash-storm | zipf | abort | straggler
	Workers         int     `json:"workers"`
	Failures        int     `json:"failures"` // injected budget (0 outside crash regimes)
	RatePerSec      float64 `json:"rate_per_sec"`
	Requests        int     `json:"requests_per_proc"`
	Keys            int     `json:"keys"`
	Passages        int     `json:"passages"`
	CrashedPassages int     `json:"crashed_passages"`
	AbortedPassages int     `json:"aborted_passages"`
	Crashes         int     `json:"crashes"`
	VirtualMs       float64 `json:"virtual_ms"`
	Throughput      float64 `json:"throughput_per_sec"`
	P50Ns           int64   `json:"p50_ns"`
	P90Ns           int64   `json:"p90_ns"`
	P99Ns           int64   `json:"p99_ns"`
	MeanNs          float64 `json:"mean_ns"`
	RMRMedian       int64   `json:"rmr_median"`
	MaxLevel        int     `json:"max_level"`
	MaxKeyOverlap   int     `json:"max_key_cs_overlap"`
	TraceHash       string  `json:"trace_hash"`
}

// DESReport is the BENCH_des.json document.
type DESReport struct {
	Schema    string      `json:"schema"` // "rme-bench-des/v1"
	GoVersion string      `json:"go_version"`
	Seed      int64       `json:"seed"`
	Requests  int         `json:"requests_per_proc"`
	Results   []DESResult `json:"results"`
}

// desRunner is the measurement seam; tests stub it to exercise the sweep
// structure without running real simulations.
var desRunner = des.Run

// DESTraffic runs the full trajectory and assembles the report.
func DESTraffic(o DESOpts) (*DESReport, error) {
	o.fill()
	rep := &DESReport{
		Schema:    "rme-bench-des/v1",
		GoVersion: runtime.Version(),
		Seed:      o.Seed,
		Requests:  o.Requests,
	}
	for _, lk := range desLocks {
		base := des.Config{
			Lock:     lk.sim,
			N:        o.Workers,
			Requests: o.Requests,
			Seed:     o.Seed,
		}

		// Anchor: one process at the lowest ramp rate. Uncontended virtual
		// traffic must reproduce the native failure-free RMR median
		// (BENCH_metrics.json workers=1 F=0) — the des-gate enforces ±5%.
		anchor := base
		anchor.N = 1
		anchor.Arrival = des.Arrival{Kind: des.Poisson, Rate: o.Rates[0]}
		if err := desRow(rep, "anchor", lk.name, anchor); err != nil {
			return nil, err
		}

		// Ramp: arrival rate swept to contention collapse.
		for _, rate := range o.Rates {
			cfg := base
			cfg.Arrival = des.Arrival{Kind: des.Poisson, Rate: rate}
			if err := desRow(rep, "ramp", lk.name, cfg); err != nil {
				return nil, err
			}
		}

		// Crash regimes at a mid-ramp rate: the same budget spread
		// uniformly vs concentrated into correlated storms.
		midRate := o.Rates[len(o.Rates)/2]
		for _, regime := range []struct {
			name string
			kind des.CrashKind
		}{
			{"crash-uniform", des.Uniform},
			{"crash-storm", des.Storm},
		} {
			cfg := base
			cfg.Arrival = des.Arrival{Kind: des.Poisson, Rate: midRate}
			cfg.Crashes = des.Crashes{Kind: regime.kind, Budget: o.CrashBudget,
				MeanGapNs: 100_000, StormGapNs: 400_000}
			if err := desRow(rep, regime.name, lk.name, cfg); err != nil {
				return nil, err
			}
		}

		// Zipf-keyed bursty traffic over an rme.Map-shaped keyspace.
		keyed := base
		keyed.Keys = o.Keys
		keyed.Arrival = des.Arrival{Kind: des.Bursty, Rate: o.Rates[len(o.Rates)-1]}
		if err := desRow(rep, "zipf", lk.name, keyed); err != nil {
			return nil, err
		}

		// Deadline-abort traffic at the collapse rate: waiting long enough
		// that per-passage deadlines fire, exercising the TryLockFor shape
		// (back-out, fresh-arrival retry) under sustained contention.
		abort := base
		abort.Arrival = des.Arrival{Kind: des.Poisson, Rate: o.Rates[len(o.Rates)-1]}
		abort.Aborts = des.Aborts{DeadlineNs: o.AbortDeadlineNs}
		if err := desRow(rep, "abort", lk.name, abort); err != nil {
			return nil, err
		}

		// One straggler running 8x slow through mid-ramp traffic.
		strag := base
		strag.Arrival = des.Arrival{Kind: des.Poisson, Rate: midRate}
		strag.Stragglers = des.Stragglers{Count: 1, Factor: 8}
		if err := desRow(rep, "straggler", lk.name, strag); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// desRow runs one configuration and appends its row.
func desRow(rep *DESReport, regime, lock string, cfg des.Config) error {
	res, err := desRunner(cfg)
	if err != nil {
		return fmt.Errorf("bench: des %s %s: %w", lock, regime, err)
	}
	if res.MaxKeyCSOverlap > 1 {
		return fmt.Errorf("bench: des %s %s: per-key CS overlap %d", lock, regime, res.MaxKeyCSOverlap)
	}
	rep.Results = append(rep.Results, DESResult{
		Lock:            lock,
		SimLock:         cfg.Lock,
		Regime:          regime,
		Workers:         cfg.N,
		Failures:        cfg.Crashes.Budget,
		RatePerSec:      cfg.Arrival.Rate,
		Requests:        cfg.Requests,
		Keys:            cfg.Keys,
		Passages:        res.Passages,
		CrashedPassages: res.CrashedPassages,
		AbortedPassages: res.AbortedPassages,
		Crashes:         res.Crashes,
		VirtualMs:       float64(res.VirtualNs) / 1e6,
		Throughput:      res.ThroughputPerSec,
		P50Ns:           res.Passage.P50Ns,
		P90Ns:           res.Passage.P90Ns,
		P99Ns:           res.Passage.P99Ns,
		MeanNs:          res.Passage.MeanNs,
		RMRMedian:       res.RMRMedian,
		MaxLevel:        res.MaxLevel,
		MaxKeyOverlap:   res.MaxKeyCSOverlap,
		TraceHash:       fmt.Sprintf("%016x", res.TraceHash),
	})
	return nil
}

// Table renders the report for the text mode.
func (r *DESReport) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("DES traffic trajectory (virtual time, seed=%d, deterministic)", r.Seed),
		Columns: []string{"lock", "regime", "n", "rate/s", "thr/s", "p50 ns", "p90 ns", "p99 ns", "rmr med", "crashes", "max lvl"},
		Notes: []string{
			"virtual-time discrete-event simulation: numbers are deterministic, not wall-clock",
			"anchor rows (n=1, low rate) must match BENCH_metrics.json F=0 medians within ±5%",
			"expect: p50 flat along the low ramp, then a knee into contention collapse",
		},
	}
	for _, res := range r.Results {
		t.Add(res.Lock, res.Regime, res.Workers, res.RatePerSec,
			fmt.Sprintf("%.0f", res.Throughput), res.P50Ns, res.P90Ns, res.P99Ns,
			res.RMRMedian, res.Crashes, res.MaxLevel)
	}
	return t
}

// JSON serializes the report (the BENCH_des.json format).
func (r *DESReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

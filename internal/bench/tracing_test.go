package bench

import (
	"encoding/json"
	"testing"
	"time"

	"rme"
)

// TestTracingProtocolAndStats drives the experiment through the stubbed
// runner: per-mode warmups precede any timed rep, timed reps interleave
// none/off/on, and the reported figure is the median rep with overhead
// computed against the none baseline.
func TestTracingProtocolAndStats(t *testing.T) {
	type call struct {
		mode     string
		passages int
	}
	var calls []call
	// Deterministic per-mode latencies with one outlier rep per mode:
	// the median must shrug it off.
	perPassage := map[string]time.Duration{"none": 1000, "off": 1020, "on": 1500}
	reps := map[string]int{}
	orig := tracingRunner
	tracingRunner = func(mode string, workers, passages int, opts []rme.Option) (time.Duration, error) {
		calls = append(calls, call{mode, passages})
		d := perPassage[mode] * time.Duration(passages)
		if passages == 400 { // timed rep, not warmup
			reps[mode]++
			if reps[mode] == 1 {
				d *= 10 // outlier first rep
			}
		}
		return d, nil
	}
	defer func() { tracingRunner = orig }()

	rep, err := Tracing(TracingOpts{MaxWorkers: 1, Passages: 400, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}

	// 3 warmups + 3 reps × 3 modes.
	if len(calls) != 3+9 {
		t.Fatalf("%d runner calls, want 12", len(calls))
	}
	for i, c := range calls[:3] {
		if c.passages != 100 {
			t.Fatalf("warmup %d ran %d passages, want 100", i, c.passages)
		}
	}
	for i, c := range calls[3:] {
		want := tracingModes[i%3]
		if c.mode != want || c.passages != 400 {
			t.Fatalf("timed rep %d = %v, want mode %s at 400 passages (interleaving)", i, c, want)
		}
	}

	if len(rep.Results) != 3 {
		t.Fatalf("%d results, want 3", len(rep.Results))
	}
	byMode := map[string]TracingResult{}
	for _, r := range rep.Results {
		byMode[r.Mode] = r
	}
	// Median kills the 10× outlier: the reported ns/passage is the clean
	// per-mode latency.
	for mode, want := range perPassage {
		if got := byMode[mode].NsPerPassage; got != float64(want) {
			t.Errorf("%s ns/passage = %v, want %v (median should drop the outlier)", mode, got, want)
		}
	}
	if got := byMode["none"].OverheadPct; got != 0 {
		t.Errorf("baseline overhead = %v, want 0", got)
	}
	if got := byMode["off"].OverheadPct; got != 2.0 {
		t.Errorf("off overhead = %v%%, want 2%%", got)
	}
	if got := byMode["on"].OverheadPct; got != 50.0 {
		t.Errorf("on overhead = %v%%, want 50%%", got)
	}
}

// TestTracingSmoke runs the experiment for real at miniature scale: shape,
// JSON validity, and positive throughput. Overhead magnitudes are NOT
// asserted — at this scale the numbers are noise; BENCH_tracing.json
// records a real run and the CI gate bounds it.
func TestTracingSmoke(t *testing.T) {
	rep, err := Tracing(TracingOpts{MaxWorkers: 2, Passages: 64, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "rme-bench-tracing/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	// workers {1,2} × modes {none,off,on}.
	if len(rep.Results) != 2*3 {
		t.Fatalf("%d results, want 6", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerPassage <= 0 || r.PassagesPerSec <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
		if r.Mode == "none" && r.OverheadPct != 0 {
			t.Fatalf("baseline row has overhead: %+v", r)
		}
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc TracingReport
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	assertRowArity(t, "tracing", rep.Table())
}

func TestMedianNs(t *testing.T) {
	cases := []struct {
		ds   []time.Duration
		want float64
	}{
		{nil, 0},
		{[]time.Duration{7}, 7},
		{[]time.Duration{3, 1, 2}, 2},
		{[]time.Duration{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range cases {
		if got := medianNs(tc.ds); got != tc.want {
			t.Errorf("medianNs(%v) = %v, want %v", tc.ds, got, tc.want)
		}
	}
}

package bench

import (
	"fmt"
	"math"

	"rme/internal/core"
	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/workload"
	"rme/internal/yalock"
)

// runSeeds is RunSeeds behind a seam so tests can stub simulator failures
// and pin down the error-path cell arity of every experiment.
var runSeeds = RunSeeds

// Adaptivity regenerates the headline result (Theorems 5.18/5.19): mean
// and max RMRs per passage as the number of injected failures F grows,
// for the super-adaptive locks against the non-adaptive baselines. The
// super-adaptive curves should grow like √F and plateau at the base
// lock's T(n); the baselines stay flat at T(n).
func Adaptivity(o Opts) *Table {
	o.fill()
	failures := []int{0, 1, 2, 4, 8, 16, 32, 64}
	t := &Table{
		Title: fmt.Sprintf("Adaptivity (Thm 5.18): RMRs per passage vs unsafe failures F (CC, n=%d)", o.N),
		Columns: []string{"F", "ba-log aff-mean", "ba-log aff-max", "ba-sublog aff-max",
			"tournament mean", "wr mean", "depth(ba-log)"},
		Notes: []string{
			"failures are injected immediately after filter FAS instructions (the paper's unsafe adversary)",
			"aff-*: passages overlapping a failure's consequence interval (the passages Thm 5.18 bounds)",
			"ba-* grow ~√F then plateau at the base lock's T(n); tournament stays flat at T(n); wr stays O(1)",
		},
	}
	var xs, ys []float64
	for _, f := range failures {
		row := []interface{}{f}
		var depth int
		for _, lk := range []string{"ba-log", "ba-sublog", "tournament", "wr"} {
			pt := Point{Lock: lk, N: o.N, Model: memory.CC, Requests: o.Requests + f/8,
				Plan: unsafePlan(f, o.N), RecordOps: lk == "ba-log" || lk == "ba-sublog"}
			m, err := runSeeds(pt, o.Seeds)
			if err != nil {
				if lk == "ba-log" {
					// ba-log contributes two columns (aff-mean, aff-max);
					// a single ERR cell would misalign the rest of the row.
					row = append(row, "ERR", "ERR")
				} else {
					row = append(row, "ERR")
				}
				continue
			}
			switch lk {
			case "ba-log":
				row = append(row, m.AffMean, m.AffMax)
				depth = m.MaxDepth
				if f > 0 && m.AffMean > 0 {
					xs = append(xs, float64(f))
					ys = append(ys, m.AffMean)
				}
			case "ba-sublog":
				row = append(row, m.AffMax)
			default:
				row = append(row, m.FFMean)
			}
		}
		row = append(row, depth)
		t.Add(row...)
	}
	if len(xs) > 2 {
		c, resid := FitSqrt(xs, ys)
		t.Notes = append(t.Notes, fmt.Sprintf("ba-log aff-mean ≈ %.2f·√F fit, normalized residual %.2f", c, resid))
	}
	return t
}

// unsafePlan builds the paper's unsafe adversary: F failures immediately
// after filter FAS instructions, spread across processes so fragmentation
// compounds instead of one victim crash-looping while everyone else drains.
func unsafePlan(f, n int) func(int) sim.FailurePlan {
	if f == 0 {
		return nil
	}
	perProc := (f + n - 1) / n
	return func(n int) sim.FailurePlan {
		// Rate < 1 spreads strikes across the run; hitting every early
		// FAS would mostly crash queue heads, which is harmless.
		return &sim.UnsafeBudget{Total: f, MaxPerProcess: perProc, Rate: 0.3}
	}
}

// Escalation regenerates Theorem 5.17: the deepest level a process
// escalates to as a function of injected failures. Reaching level x
// requires at least x(x-1)/2 failures, so depth grows like O(√F).
func Escalation(o Opts) *Table {
	o.fill()
	t := &Table{
		Title:   fmt.Sprintf("Escalation (Thm 5.17): deepest level vs failures (ba-log, CC, n=%d)", o.N),
		Columns: []string{"F", "max depth", "depth bound ⌊(1+√(1+8F))/2⌋", "bound holds"},
		Notes:   []string{"Theorem 5.17: reaching level x requires ≥ x(x-1)/2 overlapping failures"},
	}
	for _, f := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		pt := Point{Lock: "ba-log", N: o.N, Model: memory.CC, Requests: o.Requests + f/8,
			Plan: unsafePlan(f, o.N), RecordOps: true}
		m, err := runSeeds(pt, o.Seeds)
		if err != nil {
			t.Add(f, "ERR", "-", "-")
			continue
		}
		// x(x-1)/2 ≤ F  ⇒  x ≤ (1+√(1+8F))/2.
		bound := int(math.Floor((1 + math.Sqrt(1+8*float64(f))) / 2))
		holds := "yes"
		if m.MaxDepth > bound {
			holds = "NO"
		}
		t.Add(f, m.MaxDepth, bound, holds)
	}
	return t
}

// Batch regenerates the Section 7.1 analysis: a single batch failure of k
// processes escalates passages by at most one level (cost O(F_b + √F)),
// unlike k independent failures which can drive escalation to depth
// Θ(√k).
func Batch(o Opts) *Table {
	o.fill()
	t := &Table{
		Title:   fmt.Sprintf("Batch failures (Thm 7.1): simultaneous batch of k vs k independent unsafe failures (ba-log, CC, n=%d)", o.N),
		Columns: []string{"k", "batch: depth", "batch: aff-mean RMRs", "independent: depth", "independent: aff-mean RMRs"},
		Notes: []string{
			"a batch of k simultaneous crashes contains at most ~1 unsafe failure, so it escalates ≤ 1 level (O(F_b) term);",
			"k independent unsafe failures can escalate up to Θ(√k) levels (the √F term)",
		},
	}
	for _, k := range []int{2, 4, 8} {
		k := k
		batchPlan := func(n int) sim.FailurePlan {
			pids := make([]int, k)
			for i := range pids {
				pids[i] = i % n
			}
			return workload.Batch(60, pids)
		}
		indepPlan := unsafePlan(k, o.N)
		mb, err1 := runSeeds(Point{Lock: "ba-log", N: o.N, Model: memory.CC, Requests: o.Requests,
			Plan: batchPlan, RecordOps: true}, o.Seeds)
		mi, err2 := runSeeds(Point{Lock: "ba-log", N: o.N, Model: memory.CC, Requests: o.Requests,
			Plan: indepPlan, RecordOps: true}, o.Seeds)
		if err1 != nil || err2 != nil {
			t.Add(k, "ERR", "-", "ERR", "-")
			continue
		}
		t.Add(k, mb.MaxDepth, mb.AffMean, mi.MaxDepth, mi.AffMean)
	}
	return t
}

// Components regenerates the O(1)-component claims (Theorems 4.7, 5.6):
// exact instruction and RMR counts of each building block, per passage.
func Components() *Table {
	t := &Table{
		Title:   "Component costs (Thm 4.7): exact per-passage RMRs of the O(1) building blocks",
		Columns: []string{"component", "model", "n", "max RMRs/passage", "mean"},
		Notes: []string{
			"wr: full Recover+Enter+CS+Exit passages under contention",
			"arbitrator: dual-port recoverable 2-party lock under contention",
			"splitter: one CAS plus one read (try) and one write (release)",
		},
	}
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{2, 8, 32} {
			m, err := runSeeds(Point{Lock: "wr", N: n, Model: model, Requests: 6}, []int64{1, 2})
			if err != nil {
				t.Add("wr (filter)", model.String(), n, "ERR", "-")
				continue
			}
			t.Add("wr (filter)", model.String(), n, m.FFMax, m.FFMean)
		}
	}
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		cfg := sim.Config{N: 2, Model: model, Requests: 15, Seed: 3}
		r, err := sim.New(cfg, func(sp memory.Space, n int) sim.Lock {
			return yalock.NewTwoProcess(sp, n)
		})
		if err != nil {
			t.Add("arbitrator", model.String(), 2, "ERR", "-")
			continue
		}
		res, err := r.Run()
		if err != nil {
			t.Add("arbitrator", model.String(), 2, "ERR", "-")
			continue
		}
		s := res.SummarizePassageRMRs(nil)
		t.Add("arbitrator", model.String(), 2, s.Max, s.Mean)
	}
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		a := memory.NewArena(model, 2)
		sp := core.NewSplitter(a)
		p := a.Port(0, nil)
		before := a.RMRs(0)
		sp.Try(p)
		_ = sp.Mine(p)
		sp.Release(p)
		t.Add("splitter", model.String(), 2, a.RMRs(0)-before, float64(a.RMRs(0)-before))
	}
	return t
}

// Reclaim regenerates the Section 7.2 space-bound comparison: arena words
// consumed with and without reclamation as the workload grows.
func Reclaim(o Opts) *Table {
	o.fill()
	t := &Table{
		Title: "Memory reclamation (§7.2): shared-memory words vs workload length (wr, CC, n=8)",
		Columns: []string{"requests/process", "wr (fresh nodes)", "wr-pool (Algorithm 4)",
			"wr-notify (DSM variant)"},
		Notes: []string{
			"with reclamation the footprint is fixed at initialization (bounded space);",
			"the notification variant adds the O(n²) registration/ack matrices",
		},
	}
	for _, reqs := range []int{5, 20, 80} {
		var cells []interface{}
		cells = append(cells, reqs)
		for _, lk := range []string{"wr", "wr-pool", "wr-notify"} {
			m, err := Run(Point{Lock: lk, N: 8, Model: memory.CC, Requests: reqs, Seed: 1})
			if err != nil {
				cells = append(cells, "ERR")
				continue
			}
			cells = append(cells, m.Arena)
		}
		t.Add(cells...)
	}
	return t
}

// victimSlowCrash crashes the victim process immediately after each of its
// slow-path commitments, up to Total times — i.e. exactly when the victim
// is escalated and a restart is most expensive. It is the adversary the
// Section 7.3 discussion contemplates.
type victimSlowCrash struct {
	PID   int
	Total int

	pending bool
	done    int
}

func (p *victimSlowCrash) Crash(ctx sim.StepCtx) bool {
	if p.pending && ctx.PID == p.PID {
		p.pending = false
		p.done++
		return true
	}
	return false
}

func (p *victimSlowCrash) Observe(ctx sim.StepCtx) {
	if p.done >= p.Total || p.pending || ctx.PID != p.PID || !ctx.IsOp {
		return
	}
	l := ctx.Op.Label
	if len(l) > 5 && l[len(l)-5:] == ":slow" {
		p.pending = true
	}
}

// SuperPassage regenerates the Section 7.3 discussion: the total RMR cost
// of one process's super-passage when that process crashes F₀ times while
// escalated (right after committing to a slow path), under concurrent
// unsafe failures that keep escalation pressure on. Without the
// optimization each restart replays every level (O(F₀·depth)); with the
// last-known-level memo each restart resumes at the deepest level
// (O(F₀ + depth)).
func SuperPassage(o Opts) *Table {
	o.fill()
	t := &Table{
		Title: fmt.Sprintf("Super-passage cost (§7.3): victim crashes right after escalating (CC, n=%d)", o.N),
		Columns: []string{"F0 (victim crashes)", "ba-log mean req RMRs", "ba-memo mean req RMRs",
			"ba-log mean req ops", "ba-memo mean req ops"},
		Notes: []string{
			"without level memoization a super-passage costs O(F0·min{√F, T(n)});",
			"with the last-known-level memo (ba-memo) it drops to O(F0 + min{√F, T(n)})",
			"at shallow depths the replayed levels are mostly cache hits, so the two variants measure",
			"within noise of each other in RMRs; op counts include busy-wait iterations and are",
			"schedule-sensitive — the memo's shorter recovery walk is structural (see the memo tests)",
		},
	}
	for _, f0 := range []int{0, 1, 2, 4} {
		f0 := f0
		plan := func(n int) sim.FailurePlan {
			ps := sim.PlanSeq{
				// Escalation pressure: unsafe failures of other processes.
				&sim.UnsafeBudget{Total: 8, Rate: 0.3, MaxPerProcess: 1},
			}
			if f0 > 0 {
				ps = append(ps, &victimSlowCrash{PID: 0, Total: f0})
			}
			return ps
		}
		row := []interface{}{f0}
		var rmrs, ops []interface{}
		for _, lk := range []string{"ba-log", "ba-memo"} {
			var sumR, sumO float64
			var cnt int
			ok := true
			for _, seed := range o.Seeds {
				rs, os, err := victimRequests(Point{Lock: lk, N: o.N, Model: memory.CC,
					Requests: o.Requests, Seed: seed, Plan: plan})
				if err != nil {
					ok = false
					break
				}
				for i := range rs {
					sumR += float64(rs[i])
					sumO += float64(os[i])
					cnt++
				}
			}
			if !ok || cnt == 0 {
				rmrs = append(rmrs, "ERR")
				ops = append(ops, "-")
				continue
			}
			rmrs = append(rmrs, sumR/float64(cnt))
			ops = append(ops, sumO/float64(cnt))
		}
		row = append(row, rmrs...)
		row = append(row, ops...)
		t.Add(row...)
	}
	return t
}

// victimRequests runs one point and returns the per-request RMR and
// instruction totals of process 0.
func victimRequests(pt Point) (rmrs, ops []int64, err error) {
	spec, err := workload.Lookup(pt.Lock)
	if err != nil {
		return nil, nil, err
	}
	cfg := sim.Config{N: pt.N, Model: pt.Model, Requests: pt.Requests, Seed: pt.Seed,
		MaxSteps: 20_000_000, RecordOps: true}
	if pt.Plan != nil {
		cfg.Plan = pt.Plan(pt.N)
	}
	r, err := sim.New(cfg, spec.New)
	if err != nil {
		return nil, nil, err
	}
	res, err := r.Run()
	if err != nil {
		return nil, nil, err
	}
	opsByReq := map[int]int64{}
	for _, p := range res.Passages {
		if p.PID == 0 {
			opsByReq[p.Request] += p.Ops
		}
	}
	for _, q := range res.Requests {
		if q.PID == 0 {
			rmrs = append(rmrs, q.RMRs)
			ops = append(ops, opsByReq[q.Index])
		}
	}
	return rmrs, ops, nil
}

// Responsiveness regenerates Theorem 4.2 empirically: the weakly
// recoverable lock's worst simultaneous CS occupancy against the number of
// injected unsafe failures.
func Responsiveness(o Opts) *Table {
	o.fill()
	t := &Table{
		Title:   "Responsiveness (Thm 4.2): WR-Lock CS occupancy vs unsafe failures (CC, n=8)",
		Columns: []string{"targeted unsafe failures", "max CS occupancy", "bound (failures+1)", "holds", "weak checks"},
	}
	for _, k := range []int{0, 1, 2, 3} {
		k := k
		plan := func(n int) sim.FailurePlan {
			var ps sim.PlanSeq
			for i := 0; i < k; i++ {
				ps = append(ps, &sim.CrashOnLabel{PID: i, Label: "wr:fas", After: true})
			}
			if len(ps) == 0 {
				return sim.NoFailures{}
			}
			return ps
		}
		pt := Point{Lock: "wr", N: 8, Model: memory.CC, Requests: o.Requests, Plan: plan, CSOps: 6}
		m, err := runSeeds(pt, o.Seeds)
		if err != nil {
			t.Add(k, "ERR", "-", "-", "-")
			continue
		}
		holds := "yes"
		if m.Overlap > k+1 {
			holds = "NO"
		}
		t.Add(k, m.Overlap, k+1, holds, checkCell(m.CheckErr))
	}
	return t
}

// Scale sweeps the failure-free cost of every lock family across n,
// exposing the complexity curves of Table 1's first column directly:
// O(1) for the framework locks, Θ(log n) for the tournament,
// Θ(log n/log log n) for the arbitration tree, Θ(n) for the bakery.
func Scale(o Opts) *Table {
	o.fill()
	t := &Table{
		Title: "Scale: failure-free mean RMRs per passage vs n (CC)",
		Columns: []string{"n", "mcs", "wr", "ba-log", "ba-sublog", "arbtree",
			"tournament", "bakery"},
		Notes: []string{
			"the framework locks (ba-*) stay constant; the bases grow with their T(n)",
		},
	}
	for _, n := range []int{4, 8, 16, 32, 64} {
		row := []interface{}{n}
		for _, lk := range []string{"mcs", "wr", "ba-log", "ba-sublog", "arbtree", "tournament", "bakery"} {
			m, err := runSeeds(Point{Lock: lk, N: n, Model: memory.CC, Requests: o.Requests}, o.Seeds)
			if err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, m.FFMean)
		}
		t.Add(row...)
	}
	return t
}

package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"rme/internal/des"
)

// TestDESTrafficStructure pins the trajectory through a stubbed runner:
// per lock one anchor (n=1, lowest rate), every ramp rate, both crash
// regimes, one zipf, one abort and one straggler run, in that order.
func TestDESTrafficStructure(t *testing.T) {
	var calls []des.Config
	orig := desRunner
	desRunner = func(cfg des.Config) (*des.Result, error) {
		calls = append(calls, cfg)
		return &des.Result{Passages: 1, VirtualNs: 1, MaxKeyCSOverlap: 1}, nil
	}
	defer func() { desRunner = orig }()

	rates := []float64{100, 200, 300}
	rep, err := DESTraffic(DESOpts{Workers: 4, Requests: 5, Rates: rates, Keys: 8, CrashBudget: 6})
	if err != nil {
		t.Fatal(err)
	}
	perLock := 1 + len(rates) + 2 + 1 + 1 + 1
	if len(calls) != 2*perLock {
		t.Fatalf("%d runner calls, want %d", len(calls), 2*perLock)
	}
	if len(rep.Results) != len(calls) {
		t.Fatalf("%d rows for %d calls", len(rep.Results), len(calls))
	}

	for lock := 0; lock < 2; lock++ {
		seq := calls[lock*perLock : (lock+1)*perLock]
		rows := rep.Results[lock*perLock : (lock+1)*perLock]
		want := desLocks[lock]
		for i, cfg := range seq {
			if cfg.Lock != want.sim {
				t.Fatalf("call %d used sim lock %q, want %q", i, cfg.Lock, want.sim)
			}
			if rows[i].Lock != want.name {
				t.Fatalf("row %d named %q, want %q", i, rows[i].Lock, want.name)
			}
		}
		if seq[0].N != 1 || seq[0].Arrival.Rate != rates[0] || rows[0].Regime != "anchor" {
			t.Fatalf("anchor misconfigured: %+v / %+v", seq[0], rows[0])
		}
		for i, rate := range rates {
			if seq[1+i].Arrival.Rate != rate || rows[1+i].Regime != "ramp" || seq[1+i].N != 4 {
				t.Fatalf("ramp %d misconfigured: %+v", i, seq[1+i])
			}
		}
		uni, storm := seq[1+len(rates)], seq[2+len(rates)]
		if uni.Crashes.Kind != des.Uniform || storm.Crashes.Kind != des.Storm {
			t.Fatalf("crash regimes misordered: %+v %+v", uni.Crashes, storm.Crashes)
		}
		if uni.Crashes.Budget != 6 || storm.Crashes.Budget != 6 {
			t.Fatal("crash budget not forwarded")
		}
		zipf := seq[3+len(rates)]
		if zipf.Keys != 8 || zipf.Arrival.Kind != des.Bursty {
			t.Fatalf("zipf regime misconfigured: %+v", zipf)
		}
		abort := seq[4+len(rates)]
		if abort.Aborts.DeadlineNs != 30_000 || abort.Arrival.Rate != rates[len(rates)-1] ||
			rows[4+len(rates)].Regime != "abort" {
			t.Fatalf("abort regime misconfigured: %+v", abort)
		}
		strag := seq[5+len(rates)]
		if strag.Stragglers.Count != 1 || strag.Stragglers.Factor != 8 {
			t.Fatalf("straggler regime misconfigured: %+v", strag)
		}
	}
}

// TestDESTrafficReal runs a miniature real trajectory end to end and
// checks the report invariants the CI des-gate asserts.
func TestDESTrafficReal(t *testing.T) {
	rep, err := DESTraffic(DESOpts{Workers: 3, Requests: 8, Rates: []float64{2_000, 500_000}, Keys: 4, CrashBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "rme-bench-des/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	for _, res := range rep.Results {
		if !(res.P50Ns <= res.P90Ns && res.P90Ns <= res.P99Ns) {
			t.Fatalf("percentiles not monotone: %+v", res)
		}
		if res.Passages == 0 || res.RMRMedian == 0 || res.Throughput == 0 {
			t.Fatalf("degenerate row: %+v", res)
		}
		if res.MaxKeyOverlap != 1 {
			t.Fatalf("per-key CS overlap %d: %+v", res.MaxKeyOverlap, res)
		}
	}

	blob, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round DESReport
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatal(err)
	}
	if len(round.Results) != len(rep.Results) {
		t.Fatal("JSON round-trip dropped rows")
	}

	table := rep.Table().String()
	for _, want := range []string{"anchor", "ramp", "crash-storm", "zipf", "straggler", "ba-sublog"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestDESTrafficDeterministic pins the checked-in-report property: two
// runs of the same options produce identical trace hashes.
func TestDESTrafficDeterministic(t *testing.T) {
	opts := DESOpts{Workers: 2, Requests: 5, Rates: []float64{10_000}, Keys: 4, CrashBudget: 2}
	a, err := DESTraffic(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DESTraffic(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i].TraceHash != b.Results[i].TraceHash {
			t.Fatalf("row %d hash diverged: %s vs %s", i, a.Results[i].TraceHash, b.Results[i].TraceHash)
		}
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"

	"rme"
)

// The map experiment measures the keyed lock manager (rme.Map) under
// three key-popularity regimes:
//
//   - hot: every worker hammers one key — pure contention on a single
//     sub-arena. The hot-key median is the regression anchor: per-key
//     passages run the same BA-Lock as a standalone Mutex, so it must
//     stay within 2x of the metrics experiment's F=0 median (the CI
//     map gate asserts this; the slack absorbs shard-map scheduling
//     noise, not algorithmic regressions).
//   - zipf: workers draw keys from a Zipf(s) distribution over a small
//     key space — the skewed-popularity case sharded maps exist for.
//   - churn: every passage touches a brand-new key through a map
//     deliberately configured with one shard and few segment slots, so
//     key lifecycle (evict, recycle, re-instantiate) dominates. The
//     footprint and recycled counters prove reclamation bounds space.
//
// Results serialize as BENCH_map.json (rme-bench-map/v1).

// MapOpts configures the map experiment.
type MapOpts struct {
	// Workers is the fixed worker count (default 8).
	Workers int
	// Keys is the zipf-mode key-space size (default 64).
	Keys int
	// ZipfS is the zipf skew parameter s > 1 (default 1.1).
	ZipfS float64
	// Passages is the total completed-passage target per measurement
	// (default 5000).
	Passages int
	// ChurnKeys is the number of distinct keys the churn mode touches,
	// one passage each (default 2048).
	ChurnKeys int
}

func (o *MapOpts) fill() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Keys <= 0 {
		o.Keys = 64
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.1
	}
	if o.Passages <= 0 {
		o.Passages = 5000
	}
	if o.ChurnKeys <= 0 {
		o.ChurnKeys = 2048
	}
}

// MapResult is one measured configuration.
type MapResult struct {
	Lock     string  `json:"lock"`
	Mode     string  `json:"mode"` // hot | zipf | churn
	Workers  int     `json:"workers"`
	Keys     int     `json:"keys"`   // key-space size offered to workers
	ZipfS    float64 `json:"zipf_s"` // 0 outside zipf mode
	Attempts uint64  `json:"attempts"`
	Passages uint64  `json:"passages"`
	// Per-passage exact CC RMRs, merged across every segment recorder.
	RMRMedian int     `json:"rmr_median"`
	RMRP99    int     `json:"rmr_p99"`
	RMRMean   float64 `json:"rmr_mean"`
	// Key lifecycle accounting at the end of the run.
	DistinctKeys   int    `json:"distinct_keys"` // keys actually touched
	SlotWords      int    `json:"slot_words"`    // deterministic per-key footprint
	FootprintWords int    `json:"footprint_words"`
	Segments       int    `json:"segments"`
	Instantiated   uint64 `json:"instantiated"`
	Recycled       uint64 `json:"recycled"`
	Evictions      uint64 `json:"evictions"`
}

// MapReport is the BENCH_map.json document.
type MapReport struct {
	Schema     string      `json:"schema"` // "rme-bench-map/v1"
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Passages   int         `json:"passages_per_measurement"`
	Results    []MapResult `json:"results"`
}

// mapRunner is the measurement seam; tests stub it to exercise the
// sweep structure without running real passages.
var mapRunner = mapRun

// MapCost runs the three key-popularity modes on every native lock and
// reports per-passage RMR distributions plus key-lifecycle accounting.
func MapCost(o MapOpts) (*MapReport, error) {
	o.fill()
	rep := &MapReport{
		Schema:     "rme-bench-map/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Passages:   o.Passages,
	}
	for _, lk := range nativeLocks {
		for _, mode := range []string{"hot", "zipf", "churn"} {
			res, err := mapRunner(lk.opts, mode, o)
			if err != nil {
				return nil, fmt.Errorf("bench: map %s mode=%s: %w", lk.name, mode, err)
			}
			res.Lock = lk.name
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// mapRun completes the configured passages across the workers under one
// key-popularity mode and returns the row: merged metrics plus the
// map's lifecycle stats.
func mapRun(lockOpts []rme.Option, mode string, o MapOpts) (MapResult, error) {
	opts := append([]rme.Option(nil), lockOpts...)
	opts = append(opts, rme.WithMetrics())
	res := MapResult{Mode: mode, Workers: o.Workers}
	passages := o.Passages
	switch mode {
	case "hot":
		res.Keys = 1
	case "zipf":
		res.Keys = o.Keys
		res.ZipfS = o.ZipfS
	case "churn":
		// One shard, few slots: every new key beyond the slot budget
		// must evict and recycle an idle region.
		opts = append(opts, rme.WithShards(1), rme.WithSegmentSlots(8))
		res.Keys = o.ChurnKeys
		passages = o.ChurnKeys
	default:
		return res, fmt.Errorf("unknown map mode %q", mode)
	}
	m, err := rme.NewMap(o.Workers, opts...)
	if err != nil {
		return res, err
	}
	per := passages / o.Workers
	if per < 1 {
		per = 1
	}
	start := make(chan struct{})
	done := make(chan struct{}, o.Workers)
	for pid := 0; pid < o.Workers; pid++ {
		go func(pid int) {
			rng := rand.New(rand.NewSource(int64(pid)*1099511628211 + 7))
			var zipf *rand.Zipf
			if mode == "zipf" {
				zipf = rand.NewZipf(rng, o.ZipfS, 1, uint64(o.Keys-1))
			}
			<-start
			for i := 0; i < per; i++ {
				var key string
				switch mode {
				case "hot":
					key = "hot"
				case "zipf":
					key = "key-" + strconv.FormatUint(zipf.Uint64(), 10)
				case "churn":
					// Globally unique: lifecycle pressure on every passage.
					key = "churn-" + strconv.Itoa(pid) + "-" + strconv.Itoa(i)
				}
				m.Lock(pid, key)
				m.Unlock(pid, key)
			}
			done <- struct{}{}
		}(pid)
	}
	close(start)
	for i := 0; i < o.Workers; i++ {
		<-done
	}
	s, _ := m.MetricsSnapshot()
	st := m.Stats()
	res.Attempts = s.Attempts
	res.Passages = s.Passages
	res.RMRMedian = s.RMRHist.Quantile(0.5)
	res.RMRP99 = s.RMRHist.Quantile(0.99)
	res.RMRMean = s.RMRHist.Mean()
	res.DistinctKeys = int(st.Instantiated)
	res.SlotWords = st.SlotWords
	res.FootprintWords = st.FootprintWords
	res.Segments = st.Segments
	res.Instantiated = st.Instantiated
	res.Recycled = st.Recycled
	res.Evictions = st.Evictions
	return res, nil
}

// Table renders the report as a bench table for the text mode.
func (r *MapReport) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Keyed lock manager (exact CC RMRs, GOMAXPROCS=%d, num_cpu=%d)",
			r.GOMAXPROCS, r.NumCPU),
		Columns: []string{"lock", "mode", "workers", "keys", "zipf s", "passages", "rmr med", "rmr p99", "slot words", "footprint", "recycled", "evictions"},
		Notes: []string{
			"hot: all workers on one key — median anchored to the metrics experiment's F=0 row (within 2x)",
			"churn: unique key per passage through 1 shard x 8 slots — footprint stays bounded, regions recycle",
		},
	}
	for _, res := range r.Results {
		t.Add(res.Lock, res.Mode, res.Workers, res.Keys, res.ZipfS, res.Passages,
			res.RMRMedian, res.RMRP99, res.SlotWords, res.FootprintWords, res.Recycled, res.Evictions)
	}
	return t
}

// JSON serializes the report (the BENCH_map.json format).
func (r *MapReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

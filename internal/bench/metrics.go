package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"rme"
	"rme/internal/metrics"
)

// The metrics experiment measures the paper's adaptivity claims in RMR
// counts rather than wall-clock: per-passage remote memory references
// under the exact CC accounting of internal/metrics, swept over worker
// counts at F=0 (the O(1) failure-free claim: median flat in n) and over
// injected failure budgets F at fixed workers (the O(√F) claim: median
// growing sublinearly, level histogram shifting upward). Failures are
// the paper's unsafe placement — a crash immediately after a filter
// lock's sensitive fetch-and-store — spread evenly through the run.
// Results serialize as BENCH_metrics.json (rme-bench-metrics/v1) and are
// what the CI metrics-gate job asserts against.

// MetricsOpts configures the metrics experiment.
type MetricsOpts struct {
	// MaxWorkers caps the F=0 worker sweep 1, 2, 4, ... and is the fixed
	// worker count of the failure sweep (default 8).
	MaxWorkers int
	// Passages is the total completed-passage target per measurement
	// (default 5000).
	Passages int
	// Failures lists the injected failure budgets F of the failure sweep
	// (default 1, 2, 4, 8, 16, 32; 0 is covered by the worker sweep).
	Failures []int
}

func (o *MetricsOpts) fill() {
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 8
	}
	if o.Passages <= 0 {
		o.Passages = 5000
	}
	if o.Failures == nil {
		o.Failures = []int{1, 2, 4, 8, 16, 32}
	}
}

// MetricsResult is one measured configuration: a metrics snapshot
// condensed to the fields the gate and the √F plot need.
type MetricsResult struct {
	Lock       string   `json:"lock"`     // "ba-log", "ba-sublog"
	Workers    int      `json:"workers"`  // concurrent processes (= n)
	Failures   int      `json:"failures"` // injected failure budget F
	Passages   uint64   `json:"passages"` // completed passages measured
	Crashes    uint64   `json:"crashes"`  // failures actually injected
	Recoveries uint64   `json:"recoveries"`
	RMRMedian  int      `json:"rmr_median"` // per-passage RMRs, CC model
	RMRP99     int      `json:"rmr_p99"`
	RMRMean    float64  `json:"rmr_mean"`
	FastPath   uint64   `json:"fast_path"` // passages resolved at level 1
	SlowPath   uint64   `json:"slow_path"`
	MaxLevel   int      `json:"max_level"`  // deepest BA-Lock level reached
	LevelHist  []uint64 `json:"level_hist"` // passages by deepest level (1-based)
	FilterFAS  uint64   `json:"filter_fas"`
	Tries      uint64   `json:"splitter_tries"`
}

// MetricsReport is the BENCH_metrics.json document.
type MetricsReport struct {
	Schema     string          `json:"schema"` // "rme-bench-metrics/v1"
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Passages   int             `json:"passages_per_measurement"`
	Results    []MetricsResult `json:"results"`
}

// metricsRunner is the measurement seam; tests stub it to exercise the
// sweep structure without running real passages.
var metricsRunner = metricsRun

// PassageMetrics sweeps worker counts at F=0 and failure budgets at
// MaxWorkers, and reports exact CC-model RMR and level distributions.
func PassageMetrics(o MetricsOpts) (*MetricsReport, error) {
	o.fill()
	rep := &MetricsReport{
		Schema:     "rme-bench-metrics/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Passages:   o.Passages,
	}
	for _, lk := range nativeLocks {
		// Failure-free worker sweep: median RMR should stay flat in n.
		for workers := 1; workers <= o.MaxWorkers; workers *= 2 {
			s, err := metricsRunner(lk.opts, workers, o.Passages, 0)
			if err != nil {
				return nil, fmt.Errorf("bench: metrics %s workers=%d F=0: %w", lk.name, workers, err)
			}
			rep.Results = append(rep.Results, metricsResult(lk.name, workers, 0, s))
		}
		// Failure sweep at full contention: median RMR should grow
		// sublinearly in F (the √F adaptivity bound).
		for _, f := range o.Failures {
			s, err := metricsRunner(lk.opts, o.MaxWorkers, o.Passages, f)
			if err != nil {
				return nil, fmt.Errorf("bench: metrics %s workers=%d F=%d: %w", lk.name, o.MaxWorkers, f, err)
			}
			rep.Results = append(rep.Results, metricsResult(lk.name, o.MaxWorkers, f, s))
		}
	}
	return rep, nil
}

func metricsResult(lock string, workers, failures int, s metrics.Snapshot) MetricsResult {
	return MetricsResult{
		Lock:       lock,
		Workers:    workers,
		Failures:   failures,
		Passages:   s.Passages,
		Crashes:    s.Crashes,
		Recoveries: s.Recoveries,
		RMRMedian:  s.RMRHist.Quantile(0.5),
		RMRP99:     s.RMRHist.Quantile(0.99),
		RMRMean:    s.RMRHist.Mean(),
		FastPath:   s.FastPath,
		SlowPath:   s.SlowPath,
		MaxLevel:   s.MaxLevel(),
		LevelHist:  s.LevelHist,
		FilterFAS:  s.FilterFAS,
		Tries:      s.SplitterTries,
	}
}

// unsafeInjector places exactly `budget` crashes at the paper's unsafe
// position — the instruction immediately after a sensitive filter
// fetch-and-store — spread evenly through the run. Each passage executes
// at least one filter FAS, so spacing the firings over `span` FAS
// sightings distributes the failures across the whole measurement
// instead of front-loading them.
type unsafeInjector struct {
	sightings atomic.Uint64 // ":fas" labels seen so far, global
	fired     atomic.Uint64 // crashes armed so far
	budget    uint64
	every     uint64 // arm on every every-th sighting
	armed     []atomic.Bool
}

func newUnsafeInjector(workers, budget, span int) *unsafeInjector {
	inj := &unsafeInjector{
		budget: uint64(budget),
		armed:  make([]atomic.Bool, workers),
	}
	if budget > 0 {
		inj.every = uint64(span / (budget + 1))
		if inj.every < 1 {
			inj.every = 1
		}
	}
	return inj
}

// hook is the rme.LabeledFailFunc. The label is observed before the
// instruction executes, so crashing on the FAS label itself would be a
// safe failure; instead the sighting arms the process and the crash
// fires at its next instruction — immediately after the FAS completed.
func (inj *unsafeInjector) hook(pid int, label string) bool {
	if inj.armed[pid].Load() {
		inj.armed[pid].Store(false)
		return true
	}
	if inj.budget == 0 || !metrics.IsFilterFAS(label) {
		return false
	}
	n := inj.sightings.Add(1)
	if n%inj.every != 0 {
		return false
	}
	for {
		f := inj.fired.Load()
		if f >= inj.budget {
			return false
		}
		if inj.fired.CompareAndSwap(f, f+1) {
			inj.armed[pid].Store(true)
			return false
		}
	}
}

// metricsRun completes `passages` total passages split across `workers`
// processes on one metrics-enabled mutex, injecting `failures` unsafe
// crashes along the way, and returns the final snapshot.
func metricsRun(lockOpts []rme.Option, workers, passages, failures int) (metrics.Snapshot, error) {
	opts := append([]rme.Option(nil), lockOpts...)
	opts = append(opts, rme.WithMetrics())
	inj := newUnsafeInjector(workers, failures, passages)
	if failures > 0 {
		opts = append(opts, rme.WithLabeledFailures(inj.hook))
	}
	m, err := rme.New(workers, opts...)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	per := passages / workers
	if per < 1 {
		per = 1
	}
	start := make(chan struct{})
	done := make(chan struct{}, workers)
	for pid := 0; pid < workers; pid++ {
		go func(pid int) {
			<-start
			for i := 0; i < per; i++ {
				for !m.Passage(pid, func() {}) {
					// Crashed. A real failed process stays down for a
					// while before restarting; without this gap the
					// recovering process races ahead and repairs the
					// broken filter state before any other process can
					// run into it, and the adaptivity machinery never
					// engages. The sleep yields the CPU so the survivors
					// actually execute during the outage.
					time.Sleep(200 * time.Microsecond)
				}
			}
			done <- struct{}{}
		}(pid)
	}
	close(start)
	for i := 0; i < workers; i++ {
		<-done
	}
	s, _ := m.MetricsSnapshot()
	return s, nil
}

// Table renders the report as a bench table for the text mode.
func (r *MetricsReport) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Passage metrics (exact CC RMRs, GOMAXPROCS=%d, num_cpu=%d)",
			r.GOMAXPROCS, r.NumCPU),
		Columns: []string{"lock", "workers", "F", "passages", "crashes", "rmr med", "rmr p99", "fast", "slow", "max lvl"},
		Notes: []string{
			"F: unsafe failures (crash immediately after a sensitive filter FAS) spread through the run",
			"expect: median flat in workers at F=0; growing sublinearly in F (the √F adaptivity bound)",
		},
	}
	for _, res := range r.Results {
		t.Add(res.Lock, res.Workers, res.Failures, res.Passages, res.Crashes,
			res.RMRMedian, res.RMRP99, res.FastPath, res.SlowPath, res.MaxLevel)
	}
	return t
}

// JSON serializes the report (the BENCH_metrics.json format).
func (r *MetricsReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

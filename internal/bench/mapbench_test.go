package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"rme"
)

// TestMapCostSweepShape drives the experiment through the stubbed runner
// and checks the sweep structure: every native lock runs all three
// key-popularity modes, in order.
func TestMapCostSweepShape(t *testing.T) {
	var modes []string
	orig := mapRunner
	mapRunner = func(lockOpts []rme.Option, mode string, o MapOpts) (MapResult, error) {
		if o.Workers != 4 || o.Passages != 800 || o.Keys != 16 || o.ZipfS != 1.5 || o.ChurnKeys != 100 {
			t.Fatalf("runner called with %+v", o)
		}
		modes = append(modes, mode)
		return MapResult{Mode: mode, Workers: o.Workers, Attempts: 100, Passages: 100}, nil
	}
	defer func() { mapRunner = orig }()

	rep, err := MapCost(MapOpts{Workers: 4, Passages: 800, Keys: 16, ZipfS: 1.5, ChurnKeys: 100})
	if err != nil {
		t.Fatal(err)
	}
	// 2 locks x 3 modes.
	if len(modes) != 6 {
		t.Fatalf("%d runner calls, want 6", len(modes))
	}
	for i, m := range modes {
		if want := []string{"hot", "zipf", "churn"}[i%3]; m != want {
			t.Fatalf("call %d ran mode %q, want %q", i, m, want)
		}
	}
	if rep.Schema != "rme-bench-map/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("%d results, want 6", len(rep.Results))
	}
	if rep.Results[0].Lock != "ba-log" || rep.Results[3].Lock != "ba-sublog" {
		t.Fatalf("lock labels wrong: %q %q", rep.Results[0].Lock, rep.Results[3].Lock)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table().String(), "Keyed lock manager") {
		t.Fatal("table missing title")
	}
}

// TestMapRunReal runs tiny real measurements end to end: the hot mode
// must satisfy the attempts identity on a single key, and the churn
// mode must recycle regions while keeping the footprint bounded.
func TestMapRunReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real map measurement; skipped with -short")
	}
	o := MapOpts{Workers: 4, Passages: 200, Keys: 8, ZipfS: 1.1, ChurnKeys: 120}
	hot, err := mapRun(nil, "hot", o)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Attempts != hot.Passages || hot.Passages < 200 {
		t.Fatalf("hot: attempts=%d passages=%d", hot.Attempts, hot.Passages)
	}
	if hot.DistinctKeys != 1 || hot.RMRMedian < 1 {
		t.Fatalf("hot: distinct=%d median=%d", hot.DistinctKeys, hot.RMRMedian)
	}

	churn, err := mapRun(nil, "churn", o)
	if err != nil {
		t.Fatal(err)
	}
	if churn.Recycled == 0 || churn.Evictions == 0 {
		t.Fatalf("churn never recycled: %+v", churn)
	}
	if churn.DistinctKeys < o.ChurnKeys {
		t.Fatalf("churn touched %d keys, want >= %d", churn.DistinctKeys, o.ChurnKeys)
	}
	if churn.FootprintWords >= churn.DistinctKeys*churn.SlotWords {
		t.Fatalf("churn footprint %d words unbounded (distinct keys would need %d)",
			churn.FootprintWords, churn.DistinctKeys*churn.SlotWords)
	}

	zipf, err := mapRun(nil, "zipf", o)
	if err != nil {
		t.Fatal(err)
	}
	if zipf.Passages < 200 || zipf.DistinctKeys < 1 || zipf.DistinctKeys > o.Keys {
		t.Fatalf("zipf: %+v", zipf)
	}

	// The JSON document round-trips.
	rep := &MapReport{Schema: "rme-bench-map/v1", Results: []MapResult{hot, churn, zipf}}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back MapReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[1].Recycled != churn.Recycled {
		t.Fatal("JSON round-trip lost the recycle count")
	}
}

// Package cfg builds intra-procedural control-flow graphs of Go function
// bodies. It is a deliberately small, stdlib-only stand-in for
// golang.org/x/tools/go/cfg, mirroring its API surface (New, CFG, Block,
// Format) so the flow-sensitive rmevet passes could be ported to the real
// package by changing imports only (README, "Stdlib only").
//
// The CFG is a list of basic blocks. Each block holds the syntax nodes
// executed in it — simple statements and the condition expressions of
// composite ones — and edges to its possible successors. Composite
// statements (if, for, switch, ...) contribute structure, not nodes: their
// bodies live in successor blocks. A block with no successors ends the
// function: a return, a call to the built-in panic (or any call the
// mayReturn hook rejects), or the natural end of the body.
//
// Deviations from x/tools/go/cfg, all on the side of coarseness:
//
//   - short-circuit conditions (&& and ||) stay a single node instead of
//     being decomposed into branch blocks, so every read a condition
//     performs is attributed to the block that evaluates it;
//   - a *ast.RangeStmt header block holds the RangeStmt itself as its one
//     node; its Body belongs to successor blocks. Use Inspect (not
//     ast.Inspect) to walk block nodes — it knows not to descend there;
//   - defer statements are recorded as ordinary nodes where they occur;
//     the execution of the deferred call at function exit is not modeled
//     (analyses that care must treat *ast.DeferStmt specially);
//   - function literals are opaque: their bodies contribute no blocks.
//     Analyze a FuncLit body as a separate function. Inspect skips them.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block.
type CFG struct {
	Blocks []*Block
}

// Block is one basic block: a maximal sequence of nodes with a single
// entry point and a single exit point.
type Block struct {
	Nodes []ast.Node // statements and condition expressions, in execution order
	Succs []*Block   // successor blocks, in branch order (then before else)
	Index int32      // index within CFG.Blocks
	Live  bool       // block is reachable from the entry block
	Kind  BlockKind  // the role this block plays in its enclosing statement
	Stmt  ast.Stmt   // the statement that gave rise to this block, if any
}

// BlockKind identifies the role of a block in its enclosing statement.
type BlockKind uint8

// Block kinds.
const (
	KindInvalid BlockKind = iota
	KindEntry             // the function's entry block
	KindBody              // a plain continuation block
	KindIfThen
	KindIfElse
	KindIfDone
	KindForLoop // loop head: evaluates the for condition
	KindForBody
	KindForPost
	KindForDone
	KindRangeLoop // loop head: the range assignment and test
	KindRangeBody
	KindRangeDone
	KindSwitchCaseBody
	KindSwitchDone
	KindSelectCaseBody
	KindSelectDone
	KindLabel       // target of a goto or labeled statement
	KindUnreachable // continuation after a jump; live only via a label
)

var kindNames = [...]string{
	KindInvalid:        "Invalid",
	KindEntry:          "Entry",
	KindBody:           "Body",
	KindIfThen:         "IfThen",
	KindIfElse:         "IfElse",
	KindIfDone:         "IfDone",
	KindForLoop:        "ForLoop",
	KindForBody:        "ForBody",
	KindForPost:        "ForPost",
	KindForDone:        "ForDone",
	KindRangeLoop:      "RangeLoop",
	KindRangeBody:      "RangeBody",
	KindRangeDone:      "RangeDone",
	KindSwitchCaseBody: "SwitchCaseBody",
	KindSwitchDone:     "SwitchDone",
	KindSelectCaseBody: "SelectCaseBody",
	KindSelectDone:     "SelectDone",
	KindLabel:          "Label",
	KindUnreachable:    "Unreachable",
}

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("BlockKind(%d)", uint8(k))
}

// Pos returns a position for the block: its originating statement's if it
// has one, otherwise its first node's, otherwise token.NoPos.
func (b *Block) Pos() token.Pos {
	if b.Stmt != nil {
		return b.Stmt.Pos()
	}
	if len(b.Nodes) > 0 {
		return b.Nodes[0].Pos()
	}
	return token.NoPos
}

// New builds the control-flow graph of body. mayReturn reports whether a
// call expression may return to its caller; a call for which it reports
// false ends its block like a panic. If mayReturn is nil, every call is
// assumed to return except a direct call to the built-in panic.
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *CFG {
	b := &builder{
		cfg:       &CFG{},
		mayReturn: mayReturn,
		labels:    map[string]*lblock{},
	}
	b.current = b.newBlock(KindEntry, nil)
	b.stmtList(body.List)
	b.markLive()
	return b.cfg
}

// Inspect walks the syntax of one block node in the manner of
// ast.Inspect, but respects the CFG's conventions: it does not descend
// into the Body of a *ast.RangeStmt header node (those statements belong
// to successor blocks) and does not descend into *ast.FuncLit bodies
// (a function literal is a separate function with its own CFG).
func Inspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !f(n) {
				return false
			}
			return false // opaque: never descend into the body
		case *ast.RangeStmt:
			if !f(n) {
				return false
			}
			// Walk the header parts only.
			for _, part := range []ast.Node{n.Key, n.Value, n.X} {
				if part != nil && !isNilExpr(part) {
					Inspect(part, f)
				}
			}
			return false
		}
		return f(n)
	})
}

func isNilExpr(n ast.Node) bool {
	e, ok := n.(ast.Expr)
	return ok && e == nil
}

// builder holds the state of one CFG construction.
type builder struct {
	cfg       *CFG
	mayReturn func(*ast.CallExpr) bool
	current   *Block
	targets   *targets           // innermost break/continue targets
	labels    map[string]*lblock // goto and labeled-statement targets
	lblock    *lblock            // pending label for the next loop/switch/select
}

// targets is one frame of the break/continue target stack.
type targets struct {
	tail         *targets
	_break       *Block
	_continue    *Block // nil inside switch/select
	_fallthrough *Block // next case body, inside a switch case only
}

// lblock records the blocks a label can transfer control to.
type lblock struct {
	_goto     *Block
	_break    *Block
	_continue *Block
}

func (b *builder) newBlock(kind BlockKind, stmt ast.Stmt) *Block {
	blk := &Block{Index: int32(len(b.cfg.Blocks)), Kind: kind, Stmt: stmt}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

// edge adds a control-flow edge from the current block to to.
func (b *builder) edge(to *Block) {
	b.current.Succs = append(b.current.Succs, to)
}

// jump ends the current block with an unconditional transfer to to and
// starts a fresh (unreachable unless labeled into) continuation block.
func (b *builder) jump(to *Block) {
	b.edge(to)
	b.current = b.newBlock(KindUnreachable, nil)
}

// terminate ends the current block with no successors (return or panic).
func (b *builder) terminate() {
	b.current = b.newBlock(KindUnreachable, nil)
}

// callTerminates reports whether the call never returns to its caller.
func (b *builder) callTerminates(call *ast.CallExpr) bool {
	if b.mayReturn != nil {
		return !b.mayReturn(call)
	}
	// Default: only a direct call to the built-in panic terminates. A
	// shadowed panic identifier would be misclassified; algorithm code
	// has no business shadowing it.
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// labeledBlock returns the lblock for the named label, creating it (and
// its goto target block) on first use so forward gotos resolve.
func (b *builder) labeledBlock(name string) *lblock {
	lb := b.labels[name]
	if lb == nil {
		lb = &lblock{_goto: b.newBlock(KindLabel, nil)}
		b.labels[name] = lb
	}
	return lb
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// A label immediately preceding a loop, switch or select attaches its
	// break/continue to that statement; any other statement consumes it.
	label := b.lblock
	b.lblock = nil

	switch s := s.(type) {
	case nil, *ast.BadStmt, *ast.EmptyStmt:
		// no flow

	case *ast.LabeledStmt:
		lb := b.labeledBlock(s.Label.Name)
		b.jump(lb._goto)
		b.current = lb._goto
		if b.current.Stmt == nil {
			b.current.Stmt = s
		}
		b.lblock = lb
		b.stmt(s.Stmt)

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.callTerminates(call) {
			b.terminate()
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, s.Body, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s, s.Body, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	default:
		panic(fmt.Sprintf("cfg: unexpected statement %T", s))
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			target = b.labeledBlock(s.Label.Name)._break
		} else {
			for t := b.targets; t != nil && target == nil; t = t.tail {
				target = t._break
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			target = b.labeledBlock(s.Label.Name)._continue
		} else {
			for t := b.targets; t != nil && target == nil; t = t.tail {
				target = t._continue
			}
		}
	case token.GOTO:
		target = b.labeledBlock(s.Label.Name)._goto
	case token.FALLTHROUGH:
		for t := b.targets; t != nil && target == nil; t = t.tail {
			target = t._fallthrough
		}
	}
	if target == nil {
		// Ill-formed input (break outside loop, fallthrough in last
		// case): treat as terminating so construction proceeds.
		b.terminate()
		return
	}
	b.jump(target)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.current
	then := b.newBlock(KindIfThen, s)
	done := b.newBlock(KindIfDone, s)
	cond.Succs = append(cond.Succs, then)

	var alt *Block
	if s.Else != nil {
		alt = b.newBlock(KindIfElse, s)
		cond.Succs = append(cond.Succs, alt)
	} else {
		cond.Succs = append(cond.Succs, done)
	}

	b.current = then
	b.stmt(s.Body)
	b.edge(done)

	if alt != nil {
		b.current = alt
		b.stmt(s.Else)
		b.edge(done)
	}
	b.current = done
}

func (b *builder) forStmt(s *ast.ForStmt, label *lblock) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	loop := b.newBlock(KindForLoop, s)
	body := b.newBlock(KindForBody, s)
	done := b.newBlock(KindForDone, s)
	cont := loop
	var post *Block
	if s.Post != nil {
		post = b.newBlock(KindForPost, s)
		cont = post
	}
	b.edge(loop)

	b.current = loop
	if s.Cond != nil {
		b.add(s.Cond)
		loop.Succs = append(loop.Succs, body, done)
	} else {
		loop.Succs = append(loop.Succs, body)
	}

	if label != nil {
		label._break = done
		label._continue = cont
	}
	b.targets = &targets{tail: b.targets, _break: done, _continue: cont}
	b.current = body
	b.stmt(s.Body)
	b.edge(cont)
	b.targets = b.targets.tail

	if post != nil {
		b.current = post
		b.stmt(s.Post)
		b.edge(loop)
	}
	b.current = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label *lblock) {
	loop := b.newBlock(KindRangeLoop, s)
	body := b.newBlock(KindRangeBody, s)
	done := b.newBlock(KindRangeDone, s)
	b.edge(loop)

	// The RangeStmt itself is the header's single node (the per-iteration
	// key/value assignment and exhaustion test). Inspect knows not to
	// descend into its Body.
	b.current = loop
	b.add(s)
	loop.Succs = append(loop.Succs, body, done)

	if label != nil {
		label._break = done
		label._continue = loop
	}
	b.targets = &targets{tail: b.targets, _break: done, _continue: loop}
	b.current = body
	b.stmt(s.Body)
	b.edge(loop)
	b.targets = b.targets.tail

	b.current = done
}

// switchBody builds the dispatch and case blocks shared by expression and
// type switches. The case expressions are evaluated in the dispatch
// block; each clause body gets its own block, with fallthrough edges
// between consecutive expression-switch clauses.
func (b *builder) switchBody(sw ast.Stmt, body *ast.BlockStmt, label *lblock) {
	head := b.current
	done := b.newBlock(KindSwitchDone, sw)
	if label != nil {
		label._break = done
	}

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}

	// Create the case body blocks first so fallthrough targets exist.
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		caseBlocks[i] = b.newBlock(KindSwitchCaseBody, c)
		if c.List == nil {
			hasDefault = true
		}
	}

	for i, c := range clauses {
		for _, e := range c.List {
			head.Nodes = append(head.Nodes, e)
		}
		head.Succs = append(head.Succs, caseBlocks[i])

		var next *Block
		if i+1 < len(clauses) {
			next = caseBlocks[i+1]
		}
		b.targets = &targets{tail: b.targets, _break: done, _fallthrough: next}
		b.current = caseBlocks[i]
		b.stmtList(c.Body)
		b.edge(done)
		b.targets = b.targets.tail
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.current = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label *lblock) {
	head := b.current
	done := b.newBlock(KindSelectDone, s)
	if label != nil {
		label._break = done
	}
	for _, c := range s.Body.List {
		comm := c.(*ast.CommClause)
		blk := b.newBlock(KindSelectCaseBody, comm)
		head.Succs = append(head.Succs, blk)
		b.targets = &targets{tail: b.targets, _break: done}
		b.current = blk
		if comm.Comm != nil {
			b.add(comm.Comm)
		}
		b.stmtList(comm.Body)
		b.edge(done)
		b.targets = b.targets.tail
	}
	b.current = done
}

// markLive flags every block reachable from the entry block.
func (b *builder) markLive() {
	if len(b.cfg.Blocks) == 0 {
		return
	}
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(b.cfg.Blocks[0])
}

// Format returns a human-readable rendering of the graph, used by the
// golden CFG tests and for debugging.
func (g *CFG) Format(fset *token.FileSet) string {
	var buf bytes.Buffer
	for _, blk := range g.Blocks {
		fmt.Fprintf(&buf, ".%d: # %s", blk.Index, blk.Kind)
		if !blk.Live {
			buf.WriteString(" (unreachable)")
		}
		buf.WriteByte('\n')
		for _, n := range blk.Nodes {
			fmt.Fprintf(&buf, "\t%s\n", formatNode(fset, n))
		}
		if len(blk.Succs) > 0 {
			buf.WriteString("\tsuccs:")
			for _, s := range blk.Succs {
				fmt.Fprintf(&buf, " %d", s.Index)
			}
			buf.WriteByte('\n')
		}
	}
	return buf.String()
}

// formatNode renders one block node on one line.
func formatNode(fset *token.FileSet, n ast.Node) string {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// Render only the header; the body belongs to other blocks.
		var parts []string
		if rs.Key != nil {
			parts = append(parts, exprString(fset, rs.Key))
		}
		if rs.Value != nil {
			parts = append(parts, exprString(fset, rs.Value))
		}
		header := "for "
		if len(parts) > 0 {
			header += strings.Join(parts, ", ") + " " + rs.Tok.String() + " "
		}
		return header + "range " + exprString(fset, rs.X)
	}
	return exprString(fset, n)
}

func exprString(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	// Collapse any multi-line rendering to a single line.
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}

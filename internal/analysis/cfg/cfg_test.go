package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"rme/internal/analysis/cfg"
)

// build parses src as the body of a function and returns its CFG and the
// FileSet. src is a sequence of statements.
func build(t *testing.T, src string) (*cfg.CFG, *token.FileSet) {
	t.Helper()
	file := "package p\n\nfunc f(p Port, a, b, c int) bool {\n" + src + "\nreturn true\n}\n" +
		"type Port interface{ Read(int) int; Write(int, int); Pause() }\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return cfg.New(fn.Body, nil), fset
}

// golden compares the CFG dump of src against want, ignoring leading and
// trailing blank lines of want so the test table stays readable.
func golden(t *testing.T, name, src, want string) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		g, fset := build(t, src)
		got := strings.TrimSpace(g.Format(fset))
		want = strings.TrimSpace(want)
		if got != want {
			t.Errorf("CFG mismatch.\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
	})
}

func TestGoldenIf(t *testing.T) {
	golden(t, "if-else", `
if a < b {
	a = 1
} else {
	a = 2
}
a = 3
`, `
.0: # Entry
	a < b
	succs: 1 3
.1: # IfThen
	a = 1
	succs: 2
.2: # IfDone
	a = 3
	return true
.3: # IfElse
	a = 2
	succs: 2
.4: # Unreachable (unreachable)
`)

	golden(t, "if-no-else", `
if a < b {
	a = 1
}
`, `
.0: # Entry
	a < b
	succs: 1 2
.1: # IfThen
	a = 1
	succs: 2
.2: # IfDone
	return true
.3: # Unreachable (unreachable)
`)
}

func TestGoldenLoops(t *testing.T) {
	golden(t, "for-full", `
for i := 0; i < a; i++ {
	b = i
}
`, `
.0: # Entry
	i := 0
	succs: 1
.1: # ForLoop
	i < a
	succs: 2 3
.2: # ForBody
	b = i
	succs: 4
.3: # ForDone
	return true
.4: # ForPost
	i++
	succs: 1
.5: # Unreachable (unreachable)
`)

	golden(t, "for-unconditional-break", `
for {
	if a == 0 {
		break
	}
	p.Pause()
}
`, `
.0: # Entry
	succs: 1
.1: # ForLoop
	succs: 2
.2: # ForBody
	a == 0
	succs: 4 5
.3: # ForDone
	return true
.4: # IfThen
	succs: 3
.5: # IfDone
	p.Pause()
	succs: 1
.6: # Unreachable (unreachable)
	succs: 5
.7: # Unreachable (unreachable)
`)

	golden(t, "range", `
for i, v := range c {
	a = i + v
}
`, `
.0: # Entry
	succs: 1
.1: # RangeLoop
	for i, v := range c
	succs: 2 3
.2: # RangeBody
	a = i + v
	succs: 1
.3: # RangeDone
	return true
.4: # Unreachable (unreachable)
`)

	golden(t, "nested-spin", `
for a < b {
	for p.Read(a) == 0 {
		p.Pause()
	}
	p.Write(a, 1)
}
`, `
.0: # Entry
	succs: 1
.1: # ForLoop
	a < b
	succs: 2 3
.2: # ForBody
	succs: 4
.3: # ForDone
	return true
.4: # ForLoop
	p.Read(a) == 0
	succs: 5 6
.5: # ForBody
	p.Pause()
	succs: 4
.6: # ForDone
	p.Write(a, 1)
	succs: 1
.7: # Unreachable (unreachable)
`)
}

func TestGoldenLabels(t *testing.T) {
	golden(t, "labeled-break", `
outer:
for a < b {
	for {
		if c == 0 {
			break outer
		}
		if c == 1 {
			continue outer
		}
		c--
	}
}
`, `
.0: # Entry
	succs: 1
.1: # Label
	succs: 3
.2: # Unreachable (unreachable)
.3: # ForLoop
	a < b
	succs: 4 5
.4: # ForBody
	succs: 6
.5: # ForDone
	return true
.6: # ForLoop
	succs: 7
.7: # ForBody
	c == 0
	succs: 9 10
.8: # ForDone (unreachable)
	succs: 3
.9: # IfThen
	succs: 5
.10: # IfDone
	c == 1
	succs: 12 13
.11: # Unreachable (unreachable)
	succs: 10
.12: # IfThen
	succs: 3
.13: # IfDone
	c--
	succs: 6
.14: # Unreachable (unreachable)
	succs: 13
.15: # Unreachable (unreachable)
`)

	golden(t, "goto-loop", `
again:
if p.Read(a) == 0 {
	goto again
}
`, `
.0: # Entry
	succs: 1
.1: # Label
	p.Read(a) == 0
	succs: 3 4
.2: # Unreachable (unreachable)
.3: # IfThen
	succs: 1
.4: # IfDone
	return true
.5: # Unreachable (unreachable)
	succs: 4
.6: # Unreachable (unreachable)
`)
}

func TestGoldenSwitch(t *testing.T) {
	golden(t, "switch-fallthrough-default", `
switch a {
case 1:
	b = 1
	fallthrough
case 2:
	b = 2
default:
	b = 3
}
`, `
.0: # Entry
	a
	1
	2
	succs: 2 3 4
.1: # SwitchDone
	return true
.2: # SwitchCaseBody
	b = 1
	succs: 3
.3: # SwitchCaseBody
	b = 2
	succs: 1
.4: # SwitchCaseBody
	b = 3
	succs: 1
.5: # Unreachable (unreachable)
	succs: 1
.6: # Unreachable (unreachable)
`)

	golden(t, "switch-no-default", `
switch {
case a < b:
	b = 1
case a > b:
	b = 2
}
`, `
.0: # Entry
	a < b
	a > b
	succs: 2 3 1
.1: # SwitchDone
	return true
.2: # SwitchCaseBody
	b = 1
	succs: 1
.3: # SwitchCaseBody
	b = 2
	succs: 1
.4: # Unreachable (unreachable)
`)
}

func TestGoldenDeferPanic(t *testing.T) {
	golden(t, "panic-edge", `
if a == 0 {
	panic("zero")
}
b = 1
`, `
.0: # Entry
	a == 0
	succs: 1 2
.1: # IfThen
	panic("zero")
.2: # IfDone
	b = 1
	return true
.3: # Unreachable (unreachable)
	succs: 2
.4: # Unreachable (unreachable)
`)

	golden(t, "defer-nodes", `
defer p.Pause()
a = 1
`, `
.0: # Entry
	defer p.Pause()
	a = 1
	return true
.1: # Unreachable (unreachable)
`)

	golden(t, "return-midway", `
if a == 0 {
	return false
}
b = 2
`, `
.0: # Entry
	a == 0
	succs: 1 2
.1: # IfThen
	return false
.2: # IfDone
	b = 2
	return true
.3: # Unreachable (unreachable)
	succs: 2
.4: # Unreachable (unreachable)
`)
}

func TestGoldenTypeSwitchSelect(t *testing.T) {
	// Type switches and selects never occur in algorithm packages
	// (portdiscipline bans select), but the builder must not choke on
	// them: the driver runs flow passes over fixtures and future
	// packages unconditionally.
	src := "package p\n\nfunc f(x interface{}, ch chan int) {\n" +
		"switch v := x.(type) {\ncase int:\n_ = v\ncase string:\n_ = v\n}\n" +
		"select {\ncase <-ch:\n\tx = 1\ndefault:\n\tx = 2\n}\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	g := cfg.New(fn.Body, nil)
	want := strings.TrimSpace(`
.0: # Entry
	v := x.(type)
	int
	string
	succs: 2 3 1
.1: # SwitchDone
	succs: 5 6
.2: # SwitchCaseBody
	_ = v
	succs: 1
.3: # SwitchCaseBody
	_ = v
	succs: 1
.4: # SelectDone
.5: # SelectCaseBody
	<-ch
	x = 1
	succs: 4
.6: # SelectCaseBody
	x = 2
	succs: 4
`)
	got := strings.TrimSpace(g.Format(fset))
	if got != want {
		t.Errorf("CFG mismatch.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestMayReturnHook(t *testing.T) {
	g, _ := build(t, `
if a == 0 {
	c = 1
}
`)
	_ = g
	// Rebuild with a hook that claims no call returns; the p.Pause()
	// statement must then terminate its block.
	file := "package p\n\nfunc f() {\n\thelper()\n\tprintln(1)\n}\nfunc helper() {}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	noReturn := func(call *ast.CallExpr) bool { return false }
	g2 := cfg.New(fn.Body, noReturn)
	entry := g2.Blocks[0]
	if len(entry.Succs) != 0 {
		t.Errorf("with mayReturn=false the first call should end the entry block; succs = %v", len(entry.Succs))
	}
	if len(entry.Nodes) != 1 {
		t.Errorf("entry block should hold only the terminating call, got %d nodes", len(entry.Nodes))
	}
}

func TestInspectConventions(t *testing.T) {
	src := `
for i, v := range c {
	a = i + v
}
f := func() { b = 99 }
_ = f
`
	g, _ := build(t, src)
	// Collect every identifier visible through cfg.Inspect across all
	// blocks; the range body's statements and the closure body must not
	// be visible from the nodes that carry them.
	seen := map[string]bool{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			cfg.Inspect(n, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					seen[id.Name] = true
				}
				return true
			})
		}
	}
	if seen["b"] {
		t.Errorf("cfg.Inspect descended into a FuncLit body (saw identifier b)")
	}
	if !seen["c"] || !seen["i"] || !seen["v"] {
		t.Errorf("cfg.Inspect should visit range header parts; saw %v", seen)
	}
	// The assignment inside the range body lives in the RangeBody block,
	// visible there (not through the header node).
	foundBody := false
	for _, blk := range g.Blocks {
		if blk.Kind == cfg.KindRangeBody && len(blk.Nodes) == 1 {
			foundBody = true
		}
	}
	if !foundBody {
		t.Errorf("range body statements should live in the RangeBody block")
	}
}

func TestBlockPos(t *testing.T) {
	g, fset := build(t, `
for a < b {
	a++
}
`)
	for _, blk := range g.Blocks {
		if blk.Kind == cfg.KindForLoop {
			if !blk.Pos().IsValid() {
				t.Errorf("loop header block has no position")
			}
			if fset.Position(blk.Pos()).Line == 0 {
				t.Errorf("loop header position does not resolve")
			}
		}
	}
	empty := &cfg.Block{}
	if empty.Pos().IsValid() {
		t.Errorf("empty block should have NoPos")
	}
}

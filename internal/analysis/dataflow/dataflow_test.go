package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"rme/internal/analysis/cfg"
	"rme/internal/analysis/dataflow"
)

func build(t *testing.T, src string) *cfg.CFG {
	t.Helper()
	file := "package p\n\nfunc f(p Port, a, b int) int {\n" + src + "\nreturn a\n}\n" +
		"type Port interface{ Read(int) int; Write(int, int); Pause() }\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body, nil)
}

func blockOfKind(t *testing.T, g *cfg.CFG, k cfg.BlockKind) *cfg.Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == k {
			return b
		}
	}
	t.Fatalf("no block of kind %v", k)
	return nil
}

// assignsX reports whether n is a statement assigning the variable named
// x (the toy "definition" both solver tests look for).
func assignsX(n ast.Node) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "x" {
			return true
		}
	}
	return false
}

// TestForwardMust solves "x has been assigned on every path" — a forward
// must-analysis whose verdict differs between a both-branches program and
// a one-branch program, which only a path-sensitive analysis can tell
// apart.
func TestForwardMust(t *testing.T) {
	analysis := dataflow.Analysis{
		Lattice: dataflow.BoolMust{},
		Dir:     dataflow.Forward,
		Boundary: func(b *cfg.Block) dataflow.Fact {
			return false // nothing assigned before the entry
		},
		Transfer: func(b *cfg.Block, in dataflow.Fact) dataflow.Fact {
			return dataflow.FoldNodes(b, dataflow.Forward, in, func(n ast.Node, fact dataflow.Fact) dataflow.Fact {
				if assignsX(n) {
					return true
				}
				return fact
			})
		},
	}

	both := build(t, `
x := 0
_ = x
if a == 0 {
	x = 1
} else {
	x = 2
}
`)
	res := dataflow.Solve(both, analysis)
	if got := res.Before[blockOfKind(t, both, cfg.KindIfDone)]; got != true {
		t.Errorf("both branches assign x: Before[IfDone] = %v, want true", got)
	}

	oneBranch := build(t, `
var x int
_ = x
if a == 0 {
	x = 1
}
`)
	res = dataflow.Solve(oneBranch, analysis)
	if got := res.Before[blockOfKind(t, oneBranch, cfg.KindIfDone)]; got != false {
		t.Errorf("one branch assigns x: Before[IfDone] = %v, want false", got)
	}

	// A loop that assigns x on its only path to the exit: the loop body
	// feeds back into the header, so the fact at the done block is still
	// false (zero-iteration path).
	loop := build(t, `
var x int
_ = x
for a == 0 {
	x = 1
}
`)
	res = dataflow.Solve(loop, analysis)
	if got := res.Before[blockOfKind(t, loop, cfg.KindForDone)]; got != false {
		t.Errorf("loop may run zero times: Before[ForDone] = %v, want false", got)
	}
}

// TestBackwardMust solves "every path from here reaches an assignment to
// x before the function returns" — the shape of the persistorder
// analysis.
func TestBackwardMust(t *testing.T) {
	analysis := dataflow.Analysis{
		Lattice: dataflow.BoolMust{},
		Dir:     dataflow.Backward,
		Boundary: func(b *cfg.Block) dataflow.Fact {
			return false // a return reached without the assignment
		},
		Transfer: func(b *cfg.Block, out dataflow.Fact) dataflow.Fact {
			return dataflow.FoldNodes(b, dataflow.Backward, out, func(n ast.Node, fact dataflow.Fact) dataflow.Fact {
				if assignsX(n) {
					return true
				}
				return fact
			})
		},
	}

	always := build(t, `
x := 0
_ = x
if a == 0 {
	x = 1
} else {
	x = 2
}
`)
	res := dataflow.Solve(always, analysis)
	entry := always.Blocks[0]
	// Before the first x assignment the fact is already true (the x := 0
	// definition counts), so probe After of the entry block's successor
	// join: the branch blocks each assign, so After[entry] must be true.
	if got := res.After[entry]; got != true {
		t.Errorf("both branches assign x: After[entry] = %v, want true", got)
	}

	oneBranch := build(t, `
b = b + 1
if a == 0 {
	x := 1
	_ = x
}
`)
	res = dataflow.Solve(oneBranch, analysis)
	if got := res.After[oneBranch.Blocks[0]]; got != false {
		t.Errorf("one branch assigns x: After[entry] = %v, want false", got)
	}
}

func TestSolveValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Solve without Transfer should panic")
		}
	}()
	dataflow.Solve(build(t, `a = 1`), dataflow.Analysis{Lattice: dataflow.BoolMay{}})
}

func TestBoolMay(t *testing.T) {
	l := dataflow.BoolMay{}
	if l.Bottom() != false {
		t.Errorf("BoolMay.Bottom() = %v", l.Bottom())
	}
	if l.Join(true, false) != true || l.Join(false, false) != false {
		t.Errorf("BoolMay.Join wrong")
	}
	if !l.Equal(true, true) || l.Equal(true, false) {
		t.Errorf("BoolMay.Equal wrong")
	}
}

func newVar(name string) *types.Var {
	return types.NewVar(token.NoPos, nil, name, types.Typ[types.Int])
}

func TestVarSet(t *testing.T) {
	v1, v2 := newVar("v1"), newVar("v2")
	var s dataflow.VarSet
	s = s.With(v1)
	if !s.Has(v1) || s.Has(v2) {
		t.Errorf("With/Has wrong: %v", s)
	}
	if s2 := s.With(v1); len(s2) != 1 {
		t.Errorf("With existing should share: %v", s2)
	}
	if s2 := s.Without(v2); len(s2) != 1 {
		t.Errorf("Without non-member should share: %v", s2)
	}
	if s2 := s.With(v2).Without(v1); len(s2) != 1 || !s2.Has(v2) {
		t.Errorf("Without wrong: %v", s2)
	}

	l := dataflow.VarSetLattice{}
	empty := l.Bottom().(dataflow.VarSet)
	if len(empty) != 0 {
		t.Errorf("Bottom not empty")
	}
	a := empty.With(v1)
	b := empty.With(v2)
	ab := l.Join(a, b).(dataflow.VarSet)
	if !ab.Has(v1) || !ab.Has(v2) || len(ab) != 2 {
		t.Errorf("Join wrong: %v", ab)
	}
	if j := l.Join(empty, a).(dataflow.VarSet); !j.Has(v1) {
		t.Errorf("Join with empty wrong: %v", j)
	}
	if j := l.Join(a, empty).(dataflow.VarSet); !j.Has(v1) {
		t.Errorf("Join with empty wrong: %v", j)
	}
	if !l.Equal(ab, l.Join(b, a)) {
		t.Errorf("Equal wrong for equal sets")
	}
	if l.Equal(a, b) || l.Equal(a, ab) {
		t.Errorf("Equal wrong for different sets")
	}
}

func TestLoopsSimple(t *testing.T) {
	g := build(t, `
for i := 0; i < a; i++ {
	b = i
}
`)
	loops := dataflow.Loops(g)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Head.Kind != cfg.KindForLoop {
		t.Errorf("head kind = %v, want ForLoop", l.Head.Kind)
	}
	// Head, body, post.
	if len(l.Body) != 3 {
		t.Errorf("body size = %d, want 3", len(l.Body))
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0] != l.Head {
		t.Errorf("exits = %v, want just the head", exits)
	}
}

func TestLoopsNested(t *testing.T) {
	g := build(t, `
for a < b {
	for p.Read(a) == 0 {
		p.Pause()
	}
	b = b - 1
}
`)
	loops := dataflow.Loops(g)
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Head.Index > inner.Head.Index {
		outer, inner = inner, outer
	}
	for b := range inner.Body {
		if !outer.Body[b] {
			t.Errorf("inner block %d not contained in outer loop", b.Index)
		}
	}
	if len(inner.Body) >= len(outer.Body) {
		t.Errorf("inner (%d blocks) should be smaller than outer (%d)", len(inner.Body), len(outer.Body))
	}
}

func TestLoopsGoto(t *testing.T) {
	g := build(t, `
again:
if p.Read(a) == 0 {
	goto again
}
`)
	loops := dataflow.Loops(g)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	if loops[0].Head.Kind != cfg.KindLabel {
		t.Errorf("goto loop head kind = %v, want Label", loops[0].Head.Kind)
	}
}

func TestLoopsInfiniteAndNone(t *testing.T) {
	// A `for {}` whose only way out is a break: the exit-governing block
	// is the if header inside the body, not the loop head.
	g := build(t, `
for {
	if p.Read(a) == 0 {
		break
	}
	p.Pause()
}
`)
	loops := dataflow.Loops(g)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	exits := loops[0].Exits()
	if len(exits) != 1 {
		t.Fatalf("exits = %d blocks, want 1", len(exits))
	}
	if exits[0].Kind != cfg.KindForBody {
		t.Errorf("exit block kind = %v, want ForBody (the break's if header)", exits[0].Kind)
	}

	if loops := dataflow.Loops(build(t, `a = b`)); len(loops) != 0 {
		t.Errorf("straight-line code: got %d loops, want 0", len(loops))
	}

	if loops := dataflow.Loops(&cfg.CFG{}); loops != nil {
		t.Errorf("empty CFG: got %v, want nil", loops)
	}
}

func TestPreds(t *testing.T) {
	g := build(t, `
if a == 0 {
	a = 1
} else {
	a = 2
}
`)
	preds := dataflow.Preds(g)
	done := blockOfKind(t, g, cfg.KindIfDone)
	if len(preds[done]) != 2 {
		t.Errorf("IfDone should have 2 preds, got %d", len(preds[done]))
	}
	if len(preds[g.Blocks[0]]) != 0 {
		t.Errorf("entry should have no preds")
	}
}

// Package dataflow is a generic intra-procedural dataflow solver over the
// control-flow graphs built by rme/internal/analysis/cfg.
//
// An analysis supplies a lattice (a join semilattice with an identity
// element and an equality test), a direction, a boundary fact, and a
// transfer function over whole basic blocks. Solve runs a standard
// worklist iteration to the least fixed point and returns, for every
// block, the fact at its entry and at its exit in *program order*
// (Before/After), regardless of direction.
//
// The package also provides the small set of lattices the rmevet flow
// passes need — boolean must/may facts and variable sets — plus natural
// loop detection, which spinrmr uses to find spin candidates. Keeping
// loop detection here (rather than in cfg) leaves cfg a strict mirror of
// golang.org/x/tools/go/cfg, so it could be swapped out by changing
// imports only.
package dataflow

import (
	"go/ast"
	"go/types"
	"sort"

	"rme/internal/analysis/cfg"
)

// Fact is an element of an analysis lattice. Facts must be treated as
// immutable: transfer functions return new facts rather than mutating
// their argument.
type Fact interface{}

// Lattice describes a join semilattice of facts.
type Lattice interface {
	// Bottom is the identity of Join — the optimistic initial value
	// every block starts from (true for a must-analysis joined with AND,
	// the empty set for a may-analysis joined with union).
	Bottom() Fact
	// Join combines the facts flowing in from two control-flow edges.
	Join(x, y Fact) Fact
	// Equal reports whether iteration has stabilized at this fact.
	Equal(x, y Fact) bool
}

// Direction selects forward (entry towards exits) or backward (exits
// towards entry) propagation.
type Direction int

// The two directions.
const (
	Forward Direction = iota
	Backward
)

// Analysis is a complete dataflow problem.
type Analysis struct {
	Lattice Lattice
	Dir     Direction

	// Boundary returns the fact entering a boundary block: for a forward
	// analysis it is consulted for blocks with no predecessors, for a
	// backward analysis for blocks with no successors (returns, panics,
	// and the fall-off-the-end block). If nil, Bottom is used.
	Boundary func(b *cfg.Block) Fact

	// Transfer propagates a fact through one block in the direction of
	// the analysis: it receives the fact at the block's entry (forward)
	// or exit (backward) and returns the fact at the other end.
	Transfer func(b *cfg.Block, in Fact) Fact
}

// Result holds the solved facts in program order: Before[b] is the fact
// at b's entry and After[b] the fact at b's exit, for both directions.
type Result struct {
	Before map[*cfg.Block]Fact
	After  map[*cfg.Block]Fact
}

// Solve runs worklist iteration to the least fixed point.
func Solve(g *cfg.CFG, a Analysis) *Result {
	if a.Lattice == nil || a.Transfer == nil {
		panic("dataflow: Solve requires a Lattice and a Transfer")
	}
	boundary := a.Boundary
	if boundary == nil {
		boundary = func(*cfg.Block) Fact { return a.Lattice.Bottom() }
	}

	preds := Preds(g)

	// in[b] is the fact flowing into b in analysis direction; out[b] the
	// fact leaving it. For Forward in = program-order entry; for
	// Backward in = program-order exit.
	in := make(map[*cfg.Block]Fact, len(g.Blocks))
	out := make(map[*cfg.Block]Fact, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = a.Lattice.Bottom()
		out[b] = a.Lattice.Bottom()
	}

	// sources(b) are the blocks whose out-facts feed b; dependents(b)
	// the blocks to reprocess when out[b] changes.
	sources := func(b *cfg.Block) []*cfg.Block {
		if a.Dir == Forward {
			return preds[b]
		}
		return b.Succs
	}
	dependents := func(b *cfg.Block) []*cfg.Block {
		if a.Dir == Forward {
			return b.Succs
		}
		return preds[b]
	}

	// Seed the worklist with every block. Order barely matters for
	// correctness; processing in index order (forward) or reverse index
	// order (backward) converges fastest on the loop shapes we build.
	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	if a.Dir == Backward {
		for i, j := 0, len(work)-1; i < j; i, j = i+1, j-1 {
			work[i], work[j] = work[j], work[i]
		}
	}
	queued := make(map[*cfg.Block]bool, len(work))
	for _, b := range work {
		queued[b] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		srcs := sources(b)
		var fact Fact
		if len(srcs) == 0 {
			fact = boundary(b)
		} else {
			fact = out[srcs[0]]
			for _, s := range srcs[1:] {
				fact = a.Lattice.Join(fact, out[s])
			}
		}
		in[b] = fact
		next := a.Transfer(b, fact)
		if a.Lattice.Equal(next, out[b]) {
			continue
		}
		out[b] = next
		for _, d := range dependents(b) {
			if !queued[d] {
				queued[d] = true
				work = append(work, d)
			}
		}
	}

	res := &Result{Before: in, After: out}
	if a.Dir == Backward {
		res.Before, res.After = out, in
	}
	return res
}

// Preds computes the predecessor lists of every block.
func Preds(g *cfg.CFG) map[*cfg.Block][]*cfg.Block {
	preds := make(map[*cfg.Block][]*cfg.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// FoldNodes folds f over a block's nodes in the given direction
// (program order for Forward, reverse for Backward) — the usual way to
// implement a block transfer from a per-node transfer.
func FoldNodes(b *cfg.Block, dir Direction, fact Fact, f func(n ast.Node, fact Fact) Fact) Fact {
	if dir == Forward {
		for _, n := range b.Nodes {
			fact = f(n, fact)
		}
		return fact
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		fact = f(b.Nodes[i], fact)
	}
	return fact
}

// BoolMust is the lattice of must-facts: Join is AND, so a property
// holds at a point only if it holds along every path. Bottom is true.
type BoolMust struct{}

// Bottom implements Lattice.
func (BoolMust) Bottom() Fact { return true }

// Join implements Lattice.
func (BoolMust) Join(x, y Fact) Fact { return x.(bool) && y.(bool) }

// Equal implements Lattice.
func (BoolMust) Equal(x, y Fact) bool { return x.(bool) == y.(bool) }

// BoolMay is the lattice of may-facts: Join is OR, so a property holds
// at a point if it holds along some path. Bottom is false.
type BoolMay struct{}

// Bottom implements Lattice.
func (BoolMay) Bottom() Fact { return false }

// Join implements Lattice.
func (BoolMay) Join(x, y Fact) Fact { return x.(bool) || y.(bool) }

// Equal implements Lattice.
func (BoolMay) Equal(x, y Fact) bool { return x.(bool) == y.(bool) }

// VarSet is a set of variables, the fact type of may-taint analyses.
// Treat values as immutable; use With/Without to derive new sets.
type VarSet map[*types.Var]bool

// Has reports membership.
func (s VarSet) Has(v *types.Var) bool { return s[v] }

// With returns s ∪ {v}, sharing s when possible.
func (s VarSet) With(v *types.Var) VarSet {
	if s[v] {
		return s
	}
	t := make(VarSet, len(s)+1)
	for k := range s {
		t[k] = true
	}
	t[v] = true
	return t
}

// Without returns s \ {v}, sharing s when possible.
func (s VarSet) Without(v *types.Var) VarSet {
	if !s[v] {
		return s
	}
	t := make(VarSet, len(s))
	for k := range s {
		if k != v {
			t[k] = true
		}
	}
	return t
}

// VarSetLattice is the powerset lattice of variables with union join.
type VarSetLattice struct{}

// Bottom implements Lattice.
func (VarSetLattice) Bottom() Fact { return VarSet(nil) }

// Join implements Lattice.
func (VarSetLattice) Join(x, y Fact) Fact {
	xs, ys := x.(VarSet), y.(VarSet)
	if len(xs) == 0 {
		return ys
	}
	if len(ys) == 0 {
		return xs
	}
	t := make(VarSet, len(xs)+len(ys))
	for k := range xs {
		t[k] = true
	}
	for k := range ys {
		t[k] = true
	}
	return t
}

// Equal implements Lattice.
func (VarSetLattice) Equal(x, y Fact) bool {
	xs, ys := x.(VarSet), y.(VarSet)
	if len(xs) != len(ys) {
		return false
	}
	for k := range xs {
		if !ys[k] {
			return false
		}
	}
	return true
}

// Loop is a natural loop: the target of one or more back edges together
// with every block that can reach a back edge source without passing
// through the head.
type Loop struct {
	Head *cfg.Block
	// Body contains every block of the loop, including the head.
	Body map[*cfg.Block]bool
}

// Exits returns the loop's exit-governing blocks: body blocks with at
// least one successor outside the loop, in index order. A loop formed
// entirely of `for {}` has none.
func (l *Loop) Exits() []*cfg.Block {
	var exits []*cfg.Block
	for b := range l.Body {
		for _, s := range b.Succs {
			if !l.Body[s] {
				exits = append(exits, b)
				break
			}
		}
	}
	sort.Slice(exits, func(i, j int) bool { return exits[i].Index < exits[j].Index })
	return exits
}

// Loops finds the natural loops of g: depth-first search from the entry
// block marks back edges (edges to a block currently on the DFS stack),
// and each back edge u→h contributes the blocks that reach u backwards
// without passing h. Loops sharing a head are merged. Blocks unreachable
// from the entry (dead code) are not explored, matching the builder's
// Live marking. Irreducible flow (overlapping goto loops) is reported as
// separate loops per back-edge head, which is a sound over-approximation
// for spin detection.
func Loops(g *cfg.CFG) []*Loop {
	if len(g.Blocks) == 0 {
		return nil
	}
	preds := Preds(g)

	const (
		white = iota // unvisited
		grey         // on the DFS stack
		black        // done
	)
	color := make(map[*cfg.Block]int, len(g.Blocks))
	type edge struct{ from, to *cfg.Block }
	var backs []edge

	// Iterative DFS to keep deeply nested fixtures off the goroutine
	// stack.
	type frame struct {
		b *cfg.Block
		i int
	}
	stack := []frame{{g.Blocks[0], 0}}
	color[g.Blocks[0]] = grey
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			s := f.b.Succs[f.i]
			f.i++
			switch color[s] {
			case white:
				color[s] = grey
				stack = append(stack, frame{s, 0})
			case grey:
				backs = append(backs, edge{f.b, s})
			}
			continue
		}
		color[f.b] = black
		stack = stack[:len(stack)-1]
	}

	byHead := make(map[*cfg.Block]*Loop)
	var heads []*cfg.Block
	for _, e := range backs {
		l := byHead[e.to]
		if l == nil {
			l = &Loop{Head: e.to, Body: map[*cfg.Block]bool{e.to: true}}
			byHead[e.to] = l
			heads = append(heads, e.to)
		}
		// Walk predecessors from the back-edge source, stopping at the
		// head.
		work := []*cfg.Block{e.from}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			if l.Body[b] {
				continue
			}
			l.Body[b] = true
			work = append(work, preds[b]...)
		}
	}

	sort.Slice(heads, func(i, j int) bool { return heads[i].Index < heads[j].Index })
	loops := make([]*Loop, len(heads))
	for i, h := range heads {
		loops[i] = byHead[h]
	}
	return loops
}

package grlock

import (
	_ "sync/atomic" // want `algorithm package imports "sync/atomic"`
	_ "unsafe"      // want `algorithm package imports "unsafe"`

	"rme/internal/memory"
)

var hits int // want `package-level mutable state "hits"`

var _ = memory.Nil // blank identifier: allowed (compile-time assertion)

func leak(p memory.Port, a memory.Addr) {
	go func() { // want `goroutine in algorithm code`
		p.Write(a, 1)
	}()
	var ch chan int // want `channel type in algorithm code`
	ch <- 1         // want `channel send in algorithm code`
	<-ch            // want `channel receive in algorithm code`
	select {}       // want `select in algorithm code`
}

func allowed(p memory.Port, a memory.Addr) {
	var ok chan int // rme:allow(portdiscipline: fixture demonstrating suppression)
	_ = ok
}

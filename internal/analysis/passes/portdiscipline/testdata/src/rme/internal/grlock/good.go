package grlock

import "rme/internal/memory"

// next is a per-node offset helper: constants and pure functions are fine.
const offNext = 1

func link(p memory.Port, node memory.Addr) {
	p.CAS(node+offNext, memory.FromAddr(memory.Nil), memory.FromAddr(node))
}

// Package outside is not an algorithm package: the discipline does not
// apply, so none of these constructs are reported.
package outside

import _ "sync/atomic"

var counter int

func spawn(done chan int) {
	go func() { done <- counter }()
}

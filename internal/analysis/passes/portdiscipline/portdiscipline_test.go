package portdiscipline_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/portdiscipline"
)

func TestPortDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), portdiscipline.Analyzer,
		"rme/internal/grlock", "rme/outside")
}

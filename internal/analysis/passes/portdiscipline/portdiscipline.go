// Package portdiscipline enforces the first invariant of the repository's
// shared-memory discipline: in algorithm packages, all shared state lives
// in the word arena and is touched only through memory.Port.
//
// Concretely, inside the algorithm packages it forbids
//
//   - importing sync, sync/atomic, unsafe, runtime or time — Go-level
//     concurrency, memory and clock primitives all bypass the arena and
//     its RMR accounting;
//   - package-level mutable state (any non-blank package-level var):
//     such state neither survives a simulated crash nor is visible to
//     the RMR models;
//   - goroutines, channels and select: process interleaving is the
//     scheduler's job, and cross-process communication must go through
//     shared words so it is charged RMRs.
//
// Test files are exempt; they are harness, not algorithm, code.
package portdiscipline

import (
	"go/ast"

	"rme/internal/analysis"
	"rme/internal/analysis/rmeutil"
)

const name = "portdiscipline"

// Analyzer is the portdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "enforce that algorithm packages touch shared state only through memory.Port\n\n" +
		"Forbids sync/sync⁄atomic/unsafe/runtime/time imports, package-level mutable state,\n" +
		"goroutines, channels and select in lock algorithm packages.",
	Run: run,
}

var bannedImports = map[string]string{
	"sync":        "Go-level locking bypasses the word arena and its RMR accounting",
	"sync/atomic": "atomics bypass memory.Port; shared words must be touched through the Port",
	"unsafe":      "unsafe defeats the arena's crash and accounting model",
	"runtime":     "scheduling belongs to the simulator/native backends, not algorithm code",
	"time":        "algorithm code must not depend on wall-clock state that vanishes on crash",
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)
		report := func(pos ast.Node, format string, args ...interface{}) {
			line := pass.Fset.Position(pos.Pos()).Line
			if rmeutil.Suppressed(pass, file, markers, line) {
				return
			}
			pass.Reportf(pos.Pos(), format, args...)
		}

		for _, imp := range file.Imports {
			path := importPath(imp)
			if why, banned := bannedImports[path]; banned {
				report(imp, "algorithm package imports %q: %s", path, why)
			}
		}

		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok.String() != "var" {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // interface assertions are compile-time only
					}
					report(name, "package-level mutable state %q: persistent state must live in the word arena, reached through memory.Port", name.Name)
				}
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				// Package-level var initializers were handled above;
				// inspect function bodies for statement-level escapes.
				return true
			case *ast.GoStmt:
				report(n, "goroutine in algorithm code: interleaving is the scheduler's job; processes share only arena words")
			case *ast.SelectStmt:
				report(n, "select in algorithm code: cross-process signalling must go through shared words so it is charged RMRs")
			case *ast.SendStmt:
				report(n, "channel send in algorithm code: communication must go through memory.Port")
			case *ast.ChanType:
				report(n, "channel type in algorithm code: communication must go through memory.Port")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					report(n, "channel receive in algorithm code: communication must go through memory.Port")
				}
			}
			return true
		})
	}
	return nil
}

func importPath(s *ast.ImportSpec) string {
	p := s.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}

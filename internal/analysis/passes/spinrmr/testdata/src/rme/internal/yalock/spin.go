package yalock

import "rme/internal/memory"

// good: cached-read spin — read-only body with a Pause backoff; O(1)
// RMRs under cache coherence.
func cachedSpin(p memory.Port, a memory.Addr) {
	for p.Read(a) == 0 {
		p.Pause()
	}
}

// good: the cached copy is re-checked through a local variable; the exit
// still depends on port state, and the body only reads and pauses.
func cachedSpinVar(p memory.Port, a memory.Addr) {
	for {
		v := p.Read(a)
		if v != 0 {
			break
		}
		p.Pause()
	}
}

// bad: a read-only spin with no backoff burns the step gate.
func noBackoff(p memory.Port, a memory.Addr) {
	for p.Read(a) == 0 { // want `cached-read spin has no Port.Pause backoff`
	}
}

// bad: an unmarked retry loop whose every iteration performs a CAS —
// each retry is a fresh remote reference, so the RMR count is unbounded
// without an external argument.
func casRetry(p memory.Port, tail memory.Addr) {
	for { // want `port-governed loop performs an RMW on every retry`
		cur := p.Read(tail)
		if p.CAS(tail, cur, cur+1) {
			return
		}
	}
}

// good: the same loop with the reviewed-bound certificate.
func casRetryMarked(p memory.Port, tail memory.Addr) {
	// rme:rmw-loop(two competitors: at most one interference per passage bounds the retries)
	for {
		cur := p.Read(tail)
		if p.CAS(tail, cur, cur+1) {
			return
		}
	}
}

// bad: writing a wake-up word on every iteration is just as unbounded as
// an RMW retry.
func writeInSpin(p memory.Port, a, w memory.Addr) {
	for p.Read(a) == 0 { // want `port-governed loop performs a Write on every retry`
		p.Write(w, 1)
		p.Pause()
	}
}

// good: a bounded scan — the exit is governed by a local counter, so the
// loop is not a spin even though the body reads ports.
func boundedScan(p memory.Port, base memory.Addr, n int) memory.Word {
	var sum memory.Word
	for j := 0; j < n; j++ {
		sum += p.Read(base + memory.Addr(j))
	}
	return sum
}

// good: a counted retry with a port-governed early exit is not a spin —
// the counter path bounds it. Only the exit-governing-block rule, not a
// per-statement scan, can tell this from casRetry.
func boundedRetry(p memory.Port, tail memory.Addr) bool {
	for j := 0; j < 8; j++ {
		if p.CAS(tail, 0, 1) {
			return true
		}
	}
	return false
}

// bad: a goto-formed retry loop — invisible to any for-statement scan;
// only the control-flow graph finds the back edge.
func gotoRetry(p memory.Port, tail memory.Addr) {
again: // want `port-governed loop performs an RMW on every retry`
	cur := p.Read(tail)
	if !p.CAS(tail, cur, cur+1) {
		goto again
	}
}

// bad: the marker must be attached to an RMW spin, or it rots.
// rme:rmw-loop(stale: nothing below is a loop) // want `stale rme:rmw-loop marker`
func notALoop(p memory.Port, a memory.Addr) {
	p.Write(a, 1)
}

// good: an acknowledged exception is suppressed.
func acknowledged(p memory.Port, a memory.Addr) {
	// rme:allow(spinrmr: fixture exercising the suppression path)
	for p.Read(a) == 0 {
	}
}

// Package spinrmr classifies every loop whose exit depends on shared
// memory and holds each class to the paper's RMR budget. Under cache
// coherence a read-only spin on a fixed location costs O(1) RMRs: the
// first read installs a cached copy and subsequent reads are local until
// the awaited write invalidates it. A loop that performs a FAS, CAS, or
// Write on every iteration has no such bound — each round trip is a
// fresh remote reference, which is exactly the unbounded-RMR hazard the
// paper's adaptive construction exists to avoid (Sections 4.3, 5.2).
//
// The pass finds natural loops on the function's control-flow graph
// (catching goto-formed loops the syntactic spinloop pass cannot see)
// and computes, per loop, the set of variables carrying values read
// through a port. A loop is a *spin* when it has exit-governing blocks
// and every one of them depends on port state — directly or through such
// a variable. Loops that also exit through local state (a bounded scan
// like the bakery doorway, a counted retry) are not spins and are not
// constrained here. For each spin:
//
//   - if its body performs a Write, FAS, or CAS, it must carry an
//     rme:rmw-loop(<why>) marker on the loop's line or the line above,
//     certifying a reviewed bound on its retry count;
//   - otherwise it is a cached-read spin and must contain a Port.Pause
//     backoff so the native backend yields while waiting.
//
// Stale rme:rmw-loop markers (attached to no RMW spin) are reported, so
// the inventory cannot rot.
//
// Applies to algorithm packages only; test files are exempt. Suppress a
// finding with rme:allow(spinrmr: <why>).
package spinrmr

import (
	"go/ast"
	"go/token"
	"go/types"

	"rme/internal/analysis"
	"rme/internal/analysis/cfg"
	"rme/internal/analysis/dataflow"
	"rme/internal/analysis/rmeutil"
)

const name = "spinrmr"

// Analyzer is the spinrmr pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "classify port-governed loops on the control-flow graph: cached-read spins\n\n" +
		"need a Port.Pause backoff, RMW retry loops need an rme:rmw-loop(<why>)\n" +
		"marker certifying a bounded retry count, and stale markers are reported.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)

		// Lines on which an RMW spin sits (marker-eligible lines), for
		// the stale-marker audit.
		rmwLoopLines := map[int]bool{}

		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, file, fn, markers, rmwLoopLines)
		}

		for _, m := range markers.All {
			if m.Kind != rmeutil.KindRMWLoop {
				continue
			}
			if !rmwLoopLines[m.Line] && !rmwLoopLines[m.Line+1] {
				pass.Reportf(m.Pos,
					"stale rme:rmw-loop marker: no RMW spin loop starts on this line or the next")
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl,
	markers *rmeutil.FileMarkers, rmwLoopLines map[int]bool) {

	info := pass.TypesInfo
	g := cfg.New(fn.Body, nil)

	for _, loop := range dataflow.Loops(g) {
		// Tally the port operations of the whole loop body.
		var ops rmeutil.PortOps
		for b := range loop.Body {
			for _, n := range b.Nodes {
				o := rmeutil.PortOpsIn(info, n)
				ops.Reads += o.Reads
				ops.Writes += o.Writes
				ops.RMWs += o.RMWs
				ops.Pauses += o.Pauses
			}
		}
		if ops.Reads == 0 && ops.Writes == 0 && ops.RMWs == 0 {
			continue // no shared memory involved; not our concern
		}

		exits := loop.Exits()
		if len(exits) == 0 {
			continue // for {} with no way out: spinloop's department
		}
		taint := loopTaint(info, loop)
		spin := true
		for _, b := range exits {
			if !portDependent(info, b, taint) {
				spin = false
				break
			}
		}
		if !spin {
			continue // also exits through local state: a bounded scan
		}

		pos := loopPos(loop)
		line := pass.Fset.Position(pos).Line
		if ops.Writes > 0 || ops.RMWs > 0 {
			rmwLoopLines[line] = true
			if markers.HasRMWLoop(line) {
				continue
			}
			if rmeutil.Suppressed(pass, file, markers, line) {
				continue
			}
			pass.Reportf(pos,
				"port-governed loop performs %s on every retry: unbounded RMRs unless the retry count is bounded; certify with rme:rmw-loop(<why>)",
				describeMutations(ops))
			continue
		}
		if ops.Pauses == 0 {
			if rmeutil.Suppressed(pass, file, markers, line) {
				continue
			}
			pass.Reportf(pos,
				"cached-read spin has no Port.Pause backoff: add the step-gate hint so the native backend yields while spinning")
		}
	}
}

// loopTaint computes, to a fixpoint, the variables that carry values read
// through a port anywhere in the loop: assigned from an expression
// containing a Port.Read/FAS/CAS or mentioning an already-tainted
// variable.
func loopTaint(info *types.Info, loop *dataflow.Loop) dataflow.VarSet {
	var nodes []ast.Node
	for b := range loop.Body {
		nodes = append(nodes, b.Nodes...)
	}
	taint := dataflow.VarSet(nil)
	for {
		changed := false
		for _, n := range nodes {
			cfg.Inspect(n, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				fromPort := false
				for _, rhs := range as.Rhs {
					if readsPort(info, rhs) || mentionsTainted(info, rhs, taint) {
						fromPort = true
					}
				}
				if !fromPort {
					return true
				}
				for _, lhs := range as.Lhs {
					if v := asVar(info, lhs); v != nil && !taint.Has(v) {
						taint = taint.With(v)
						changed = true
					}
				}
				return true
			})
		}
		if !changed {
			return taint
		}
	}
}

// portDependent reports whether the block's nodes read shared memory
// directly or mention a variable tainted by a port read.
func portDependent(info *types.Info, b *cfg.Block, taint dataflow.VarSet) bool {
	for _, n := range b.Nodes {
		if readsPort(info, n) || mentionsTainted(info, n, taint) {
			return true
		}
	}
	return false
}

// readsPort reports whether n contains a Port.Read, FAS, or CAS.
func readsPort(info *types.Info, n ast.Node) bool {
	ops := rmeutil.PortOpsIn(info, n)
	return ops.Reads > 0 || ops.RMWs > 0
}

// mentionsTainted reports whether n mentions a variable in taint.
func mentionsTainted(info *types.Info, n ast.Node, taint dataflow.VarSet) bool {
	if len(taint) == 0 {
		return false
	}
	found := false
	cfg.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := asVar(info, id); v != nil && taint.Has(v) {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopPos returns the position to report the loop at: its head's
// statement (the for or labeled statement) when there is one, otherwise
// the head block's first node.
func loopPos(loop *dataflow.Loop) token.Pos {
	if loop.Head.Stmt != nil {
		return loop.Head.Stmt.Pos()
	}
	return loop.Head.Pos()
}

func describeMutations(ops rmeutil.PortOps) string {
	switch {
	case ops.RMWs > 0 && ops.Writes > 0:
		return "RMW and Write operations"
	case ops.RMWs > 0:
		return "an RMW"
	default:
		return "a Write"
	}
}

// asVar resolves an identifier expression to its variable, or nil.
func asVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.ObjectOf(id).(*types.Var); ok {
		return v
	}
	return nil
}

package spinrmr_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/spinrmr"
)

func TestSpinRMR(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spinrmr.Analyzer,
		"rme/internal/yalock")
}

// Package sensitive enforces the paper's sensitive-instruction accounting
// (Definition 3.3). In weakly recoverable code a crash immediately after a
// read-modify-write may strand its effect where other processes can see
// it; the paper's central claim is that WR-Lock has exactly one such
// instruction (the FAS on tail, Section 4.3), and every other RMW is
// idempotent by construction. This pass makes that inventory mechanical:
//
//   - every FAS or CAS issued through a memory.Port in an algorithm
//     package must carry an rme:sensitive or rme:nonsensitive(<why>)
//     marker comment on its line or the line above;
//   - a marker must be attached to an RMW (stale markers rot);
//   - every file containing at least one RMW must declare its inventory
//     with rme:sensitive-instructions <n>, and the number of
//     rme:sensitive markers in the file must equal n (wrlock.go: 1;
//     every other algorithm file: 0).
//
// Test files are exempt.
package sensitive

import (
	"go/ast"

	"rme/internal/analysis"
	"rme/internal/analysis/rmeutil"
)

const name = "sensitive"

// Analyzer is the sensitive pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "require rme:sensitive / rme:nonsensitive markers on every RMW Port call\n\n" +
		"and check each file's rme:sensitive-instructions inventory declaration\n" +
		"against the markers it contains (Definition 3.3 of the paper).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)

		// Marker syntax is validated here (and only here, so a typo is
		// reported once across the suite).
		for _, m := range markers.All {
			if m.Kind == rmeutil.KindInvalid {
				pass.Reportf(m.Pos, "invalid rme: marker: %s", m.Err)
			}
		}

		// Collect the lines holding RMW instructions.
		rmwLines := map[int]bool{}
		var rmws []*ast.CallExpr
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && rmeutil.IsRMW(pass.TypesInfo, call) {
				rmws = append(rmws, call)
				rmwLines[pass.Fset.Position(call.Pos()).Line] = true
			}
			return true
		})

		// Every RMW carries a marker.
		sensitiveCount := 0
		counted := map[int]bool{} // marker lines already credited
		for _, call := range rmws {
			line := pass.Fset.Position(call.Pos()).Line
			m, ok := markers.AttachedTo(line, func(l int) bool { return rmwLines[l] })
			if !ok {
				if !rmeutil.Suppressed(pass, file, markers, line) {
					pass.Reportf(call.Pos(),
						"unmarked RMW through memory.Port: annotate with rme:sensitive or rme:nonsensitive(<why>) (Definition 3.3)")
				}
				continue
			}
			if m.Kind == rmeutil.KindSensitive && !counted[m.Line] {
				counted[m.Line] = true
				sensitiveCount++
			}
		}

		// Every sensitive/nonsensitive marker is attached to an RMW.
		for _, m := range markers.All {
			if m.Kind != rmeutil.KindSensitive && m.Kind != rmeutil.KindNonsensitive {
				continue
			}
			if !rmwLines[m.Line] && !rmwLines[m.Line+1] {
				pass.Reportf(m.Pos,
					"stale marker: no FAS or CAS through a memory.Port on this line or the next")
			}
		}

		// Inventory declaration.
		var decls []rmeutil.Marker
		for _, m := range markers.All {
			if m.Kind == rmeutil.KindInventory {
				decls = append(decls, m)
			}
		}
		switch {
		case len(decls) == 0:
			if len(rmws) > 0 && !rmeutil.Suppressed(pass, file, markers, pass.Fset.Position(file.Name.Pos()).Line) {
				pass.Reportf(file.Name.Pos(),
					"file contains %d RMW instruction(s) but no rme:sensitive-instructions <n> declaration", len(rmws))
			}
		case len(decls) > 1:
			pass.Reportf(decls[1].Pos, "duplicate rme:sensitive-instructions declaration")
		default:
			if decls[0].Count != sensitiveCount {
				pass.Reportf(decls[0].Pos,
					"file declares %d sensitive instruction(s) but carries %d rme:sensitive marker(s)",
					decls[0].Count, sensitiveCount)
			}
		}
	}
	return nil
}

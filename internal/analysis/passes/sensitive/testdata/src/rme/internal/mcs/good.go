// Package mcs is a clean fixture: every RMW marked, inventory correct.
//
// rme:sensitive-instructions 0
package mcs

import "rme/internal/memory"

func exit(p memory.Port, tail, node memory.Addr) {
	// rme:nonsensitive(non-recoverable baseline; outcome re-read)
	p.CAS(tail, memory.FromAddr(node), memory.FromAddr(memory.Nil))
}

// rme:sensitive-instructions 2 // want `file declares 2 sensitive instruction\(s\) but carries 1 rme:sensitive marker\(s\)`
package core

import "rme/internal/memory"

// stale marker below: no RMW on its line or the next.
// rme:sensitive // want `stale marker: no FAS or CAS`
func inventory(p memory.Port, tail memory.Addr) {
	p.FAS(tail, 1)    // rme:sensitive
	p.CAS(tail, 1, 0) // rme:nonsensitive // want `invalid rme: marker: rme:nonsensitive requires a justification` `unmarked RMW through memory.Port`
}

// rme:sensitive-instructions 1
package core

import "rme/internal/memory"

// enter mirrors WR-Lock's Enter: the FAS on tail is the one sensitive
// instruction; the link CAS is idempotent and so marked nonsensitive.
func enter(p memory.Port, tail, pred, next memory.Addr) {
	temp := p.FAS(tail, 1) // rme:sensitive
	p.Write(pred, temp)
	// rme:nonsensitive(outcome ignored; the field is re-read, Section 4.3)
	p.CAS(next, 0, 1)
}

package core // want `file contains 3 RMW instruction\(s\) but no rme:sensitive-instructions`

import "rme/internal/memory"

func unmarked(p memory.Port, tail memory.Addr) {
	p.FAS(tail, 1)    // want `unmarked RMW through memory.Port`
	p.CAS(tail, 1, 2) // want `unmarked RMW through memory.Port`
}

func suppressed(p memory.Port, tail memory.Addr) {
	p.FAS(tail, 1) // rme:allow(sensitive: fixture demonstrating suppression)
}

package sensitive_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/sensitive"
)

func TestSensitive(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sensitive.Analyzer,
		"rme/internal/core", "rme/internal/mcs")
}

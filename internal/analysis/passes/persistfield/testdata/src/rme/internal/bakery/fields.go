package bakery

import "rme/internal/memory"

// Lock holds persistent state (arena addresses), so every other field
// must be construction-time wiring.
type Lock struct {
	n     int           // immutable configuration: fine
	name  string        // fine
	state []memory.Addr // persistent state handle: fine
	sub   *Helper       // composition with another algorithm struct: fine

	cache map[int]uint64 // want `maps are volatile Go state`
	wake  chan int       // want `channels are volatile Go state`
	raw   *int           // want `raw Go pointers vanish on crash`
	addr  uintptr        // want `raw machine pointers vanish on crash`
}

// Helper is a sub-lock; a pointer to it is legitimate wiring.
type Helper struct {
	turn memory.Addr
}

// volatileOnly has no arena state at all, so its pointer field is not a
// persistence hazard (it is plain Go plumbing).
type volatileOnly struct {
	raw *int
	fn  func() int
}

// New may wire fields freely: it runs before any passage.
func New(sp memory.Space, n int) *Lock {
	l := &Lock{n: n, state: make([]memory.Addr, n)}
	for i := 0; i < n; i++ {
		l.state[i] = sp.Alloc(1, i)
	}
	return l
}

// Enter is passage code: field stores are volatile and forbidden.
func (l *Lock) Enter(p memory.Port) {
	l.n = 7        // want `store to Lock.n inside passage code`
	l.state[0] = 3 // want `store to Lock.state inside passage code`
	p.Write(l.state[0], 1)
}

// hook returns a closure that is passage code by signature.
func (l *Lock) hook() func(memory.Port) {
	return func(p memory.Port) {
		l.n++ // want `store to Lock.n inside passage code`
	}
}

// snapshot takes no Port: it is diagnostic code, free to use Go memory.
func (l *Lock) snapshot() {
	l.n = l.n + 0
}

// waived demonstrates the explicit escape hatch.
func (l *Lock) waived(p memory.Port) {
	l.n = 8 // rme:allow(persistfield: fixture demonstrating suppression)
}

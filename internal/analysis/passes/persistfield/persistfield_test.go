package persistfield_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/persistfield"
)

func TestPersistField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), persistfield.Analyzer,
		"rme/internal/bakery")
}

// Package persistfield polices the boundary between persistent and
// volatile state in lock structs. In the paper's model only shared memory
// (NVRAM, our word arena) survives a crash; whatever a lock struct holds
// in ordinary Go memory must therefore be immutable wiring fixed at
// construction time, never state a passage depends on. In algorithm
// packages (test files exempt) the pass reports:
//
//   - on any struct that holds persistent state (at least one field
//     reaching a memory.Addr): fields whose types cannot be legitimate
//     construction-time wiring — channels, maps, uintptr,
//     unsafe.Pointer, and raw Go pointers to anything other than another
//     algorithm-package lock struct. Persistent references must be
//     memory.Addr words stored in the arena;
//   - stores to fields of algorithm-package structs from inside passage
//     code (any function or closure with a memory.Port parameter):
//     such writes live in Go memory, vanish on crash, and are invisible
//     to the RMR models. Mutable per-process state belongs in the arena.
package persistfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"rme/internal/analysis"
	"rme/internal/analysis/rmeutil"
)

const name = "persistfield"

// Analyzer is the persistfield pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "require persistent lock state to live in the arena as memory.Addr words\n\n" +
		"Forbids volatile field types on persistent structs and stores to struct\n" +
		"fields from passage code.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)
		report := func(pos token.Pos, format string, args ...interface{}) {
			if rmeutil.Suppressed(pass, file, markers, pass.Fset.Position(pos).Line) {
				return
			}
			pass.Reportf(pos, format, args...)
		}
		checkStructs(pass, file, report)
		checkStores(pass, file, report)
	}
	return nil
}

type reporter func(pos token.Pos, format string, args ...interface{})

// checkStructs validates the field types of persistent structs.
func checkStructs(pass *analysis.Pass, file *ast.File, report reporter) {
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[ts.Type]
		if !ok {
			if def := pass.TypesInfo.Defs[ts.Name]; def != nil {
				tv.Type = def.Type()
			}
		}
		if tv.Type == nil || !rmeutil.IsAddrType(tv.Type) {
			return true // no persistent state in this struct
		}
		for _, field := range st.Fields.List {
			ftv, ok := pass.TypesInfo.Types[field.Type]
			if !ok || ftv.Type == nil {
				continue
			}
			if why := volatileReason(ftv.Type); why != "" {
				name := ""
				if len(field.Names) > 0 {
					name = field.Names[0].Name + " "
				}
				report(field.Pos(), "persistent struct %s holds field %sof type %s: %s",
					ts.Name.Name, name, ftv.Type.String(), why)
			}
		}
		return true
	})
}

// volatileReason explains why a field type may not appear on a struct
// holding persistent state, or returns "" if it is acceptable wiring.
// Slices and arrays are checked elementwise (they serve as fixed,
// construction-time tables of Addr words or sub-locks).
func volatileReason(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return "channels are volatile Go state; cross-process signalling must go through arena words"
	case *types.Map:
		return "maps are volatile Go state; persistent tables must be arena words indexed by process"
	case *types.Basic:
		if u.Kind() == types.Uintptr || u.Kind() == types.UnsafePointer {
			return "raw machine pointers vanish on crash; store a memory.Addr instead"
		}
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && rmeutil.IsAlgorithmPackage(pkg.Path()) {
				return "" // immutable composition: a sub-lock built at construction time
			}
		}
		return "raw Go pointers vanish on crash and are invisible to RMR accounting; persistent references must be memory.Addr words"
	case *types.Slice:
		return volatileReason(u.Elem())
	case *types.Array:
		return volatileReason(u.Elem())
	}
	return ""
}

// checkStores reports assignments to algorithm-struct fields from passage
// code: any statement lexically inside a function or closure that
// receives a memory.Port (including closures nested in one).
func checkStores(pass *analysis.Pass, file *ast.File, report reporter) {
	type span struct {
		from, to token.Pos
		port     bool
	}
	var funcs []span
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				funcs = append(funcs, span{n.Body.Pos(), n.Body.End(),
					hasPortParam(pass.TypesInfo, n.Type)})
			}
		case *ast.FuncLit:
			funcs = append(funcs, span{n.Body.Pos(), n.Body.End(),
				hasPortParam(pass.TypesInfo, n.Type)})
		}
		return true
	})
	inPassage := func(p token.Pos) bool {
		for _, s := range funcs {
			if s.port && s.from <= p && p < s.to {
				return true
			}
		}
		return false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if inPassage(n.Pos()) {
				for _, lhs := range n.Lhs {
					checkFieldStore(pass, lhs, report)
				}
			}
		case *ast.IncDecStmt:
			if inPassage(n.Pos()) {
				checkFieldStore(pass, n.X, report)
			}
		}
		return true
	})
}

// hasPortParam reports whether the function type has a memory.Port
// parameter — the signature of code executed during a passage.
func hasPortParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == rmeutil.MemoryPath && obj.Name() == "Port" {
				return true
			}
		}
	}
	return false
}

// checkFieldStore reports lhs if it stores to a field of a struct type
// declared in an algorithm package.
func checkFieldStore(pass *analysis.Pass, lhs ast.Expr, report reporter) {
	// Unwrap index expressions: l.state[i] = v stores through the field
	// l.state, which is construction-time wiring of arena addresses —
	// but storing a new slice element is still a Go-memory write, so it
	// is reported all the same.
	expr := lhs
	for {
		if idx, ok := expr.(*ast.IndexExpr); ok {
			expr = idx.X
			continue
		}
		if par, ok := expr.(*ast.ParenExpr); ok {
			expr = par.X
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	if field.Pkg() == nil || !rmeutil.IsAlgorithmPackage(field.Pkg().Path()) {
		return
	}
	report(lhs.Pos(),
		"store to %s.%s inside passage code: Go-memory writes vanish on crash and are invisible to RMR accounting; keep mutable state in the arena via the Port",
		recvTypeName(selection), field.Name())
}

func recvTypeName(selection *types.Selection) string {
	t := selection.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

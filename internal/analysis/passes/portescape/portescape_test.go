package portescape_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/portescape"
)

func TestPortEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), portescape.Analyzer,
		"rme/internal/grlock")
}

// Package portescape keeps memory.Port handles confined to the passage
// that holds them. A port is a process's private capability to shared
// memory for the duration of one passage (Section 2 of the paper): the
// framework hands it to Recover/Enter/Exit and revokes it on crash. A
// port that leaks into a package-level variable, a heap-resident struct
// field, a channel, or a closure that outlives the call can be replayed
// after the owning process has crashed and its super-passage restarted —
// exactly the stale-capability bug the simulator's crash adversary cannot
// reliably provoke.
//
// The pass runs a forward may-taint dataflow over each function's
// control-flow graph. Sources are Port-typed parameters and Port-typed
// call results; assignments propagate taint (with strong updates, so
// overwriting a variable clears it — only a flow-sensitive analysis can
// tell `q = p; q = nil; g = q` from `q = nil; q = p; g = q`). Sinks are
// stores to package-level variables, stores through selectors or
// indexing (heap-reachable memory), channel sends, and returning a
// function literal that captures a tainted variable.
//
// Soundness caveats (documented in DESIGN §14): the analysis is
// intra-procedural, so a callee that stashes its Port argument is out of
// scope (the portdiscipline pass constrains those signatures), and
// returning a bare port value is permitted — the caller is part of the
// same passage.
//
// Applies to algorithm packages only; test files are exempt. Suppress a
// finding with rme:allow(portescape: <why>).
package portescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"rme/internal/analysis"
	"rme/internal/analysis/cfg"
	"rme/internal/analysis/dataflow"
	"rme/internal/analysis/rmeutil"
)

const name = "portescape"

// Analyzer is the portescape pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid memory.Port handles from escaping the passage that holds them\n\n" +
		"(to globals, heap-reachable stores, channels, or returned closures),\n" +
		"via a forward may-taint dataflow over the control-flow graph.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, file, fn, markers)
		}
	}
	return nil
}

// checker carries the per-function analysis state.
type checker struct {
	pass    *analysis.Pass
	file    *ast.File
	markers *rmeutil.FileMarkers
	report  bool // second phase: deliver diagnostics while re-folding
}

func checkFunc(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl, markers *rmeutil.FileMarkers) {
	g := cfg.New(fn.Body, nil)
	c := &checker{pass: pass, file: file, markers: markers}

	entryTaint := dataflow.VarSet(nil)
	for _, field := range paramFields(fn) {
		for _, nm := range field.Names {
			if v, ok := pass.TypesInfo.Defs[nm].(*types.Var); ok && isPortType(v.Type()) {
				entryTaint = entryTaint.With(v)
			}
		}
	}
	if len(entryTaint) == 0 && !mentionsPortCall(pass, fn.Body) {
		return // no port can enter this function
	}

	analysisDef := dataflow.Analysis{
		Lattice: dataflow.VarSetLattice{},
		Dir:     dataflow.Forward,
		Boundary: func(b *cfg.Block) dataflow.Fact {
			return entryTaint
		},
		Transfer: func(b *cfg.Block, in dataflow.Fact) dataflow.Fact {
			return dataflow.FoldNodes(b, dataflow.Forward, in,
				func(n ast.Node, fact dataflow.Fact) dataflow.Fact {
					return c.transferNode(n, fact.(dataflow.VarSet))
				})
		},
	}
	res := dataflow.Solve(g, analysisDef)

	// Re-fold with reporting on, feeding each block its solved entry
	// fact.
	c.report = true
	for _, b := range g.Blocks {
		fact := res.Before[b].(dataflow.VarSet)
		for _, n := range b.Nodes {
			fact = c.transferNode(n, fact)
		}
	}
}

// transferNode propagates taint through one CFG node and, in the report
// phase, checks it for escape sinks.
func (c *checker) transferNode(n ast.Node, fact dataflow.VarSet) dataflow.VarSet {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fact = c.checkStores(n, fact)
		fact = c.propagate(n.Lhs, n.Rhs, fact)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, nm := range vs.Names {
						lhs[i] = nm
					}
					fact = c.propagate(lhs, vs.Values, fact)
				}
			}
		}
	case *ast.SendStmt:
		if c.report && c.tainted(n.Value, fact) {
			c.reportAt(n.Arrow, "port handle sent on a channel: it escapes the passage and can be replayed after a crash")
		}
	case *ast.ReturnStmt:
		if c.report {
			for _, r := range n.Results {
				if fl, ok := ast.Unparen(r).(*ast.FuncLit); ok && c.captures(fl, fact) {
					c.reportAt(fl.Pos(), "returned closure captures a port handle: it outlives the passage that holds the port")
				}
			}
		}
	}
	return fact
}

// propagate applies one (possibly parallel) assignment to the taint set:
// a tainted right-hand side taints its targets, an untainted one clears
// them (the strong update that makes the analysis flow-sensitive).
func (c *checker) propagate(lhs, rhs []ast.Expr, fact dataflow.VarSet) dataflow.VarSet {
	set := func(fact dataflow.VarSet, target ast.Expr, taint bool) dataflow.VarSet {
		v := asVar(c.pass.TypesInfo, target)
		if v == nil {
			return fact
		}
		if taint {
			return fact.With(v)
		}
		return fact.Without(v)
	}
	switch {
	case len(rhs) == 0:
		// var q memory.Port — zero value, untainted.
		for _, l := range lhs {
			fact = set(fact, l, false)
		}
	case len(lhs) == len(rhs):
		for i, l := range lhs {
			fact = set(fact, l, c.tainted(rhs[i], fact))
		}
	default:
		// q, ok := m[k] and friends: one rhs feeding several targets.
		taint := false
		for _, r := range rhs {
			if c.tainted(r, fact) {
				taint = true
			}
		}
		for _, l := range lhs {
			fact = set(fact, l, taint && isPortType(typeOf(c.pass.TypesInfo, l)))
		}
	}
	return fact
}

// checkStores reports assignments whose target lets a tainted value
// escape: package-level variables and heap-reachable stores (through a
// selector or an index expression).
func (c *checker) checkStores(as *ast.AssignStmt, fact dataflow.VarSet) dataflow.VarSet {
	if !c.report {
		return fact
	}
	for i, l := range as.Lhs {
		var rhs ast.Expr
		if len(as.Lhs) == len(as.Rhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) > 0 {
			rhs = as.Rhs[0]
		}
		if rhs == nil || !c.tainted(rhs, fact) {
			continue
		}
		switch target := ast.Unparen(l).(type) {
		case *ast.Ident:
			if v := asVar(c.pass.TypesInfo, target); v != nil && isPackageLevel(v) {
				c.reportAt(as.TokPos, "port handle stored in package-level variable %s: it escapes the passage and can be replayed after a crash", v.Name())
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			c.reportAt(as.TokPos, "port handle stored in heap-reachable memory: it escapes the passage and can be replayed after a crash")
		}
	}
	return fact
}

// tainted reports whether evaluating e may yield a port obtained in this
// passage: it mentions a tainted variable, calls something that returns
// a Port, or builds a closure over a tainted variable.
func (c *checker) tainted(e ast.Expr, fact dataflow.VarSet) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v := asVar(c.pass.TypesInfo, n); v != nil && fact.Has(v) {
				found = true
			}
		case *ast.CallExpr:
			if isPortType(typeOf(c.pass.TypesInfo, n)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// captures reports whether the function literal reads a variable that is
// tainted at the point the literal is built.
func (c *checker) captures(fl *ast.FuncLit, fact dataflow.VarSet) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := asVar(c.pass.TypesInfo, id); v != nil && fact.Has(v) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (c *checker) reportAt(pos token.Pos, format string, args ...interface{}) {
	line := c.pass.Fset.Position(pos).Line
	if rmeutil.Suppressed(c.pass, c.file, c.markers, line) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// mentionsPortCall reports whether the body contains any call returning a
// Port — the only way taint can arise without a Port parameter.
func mentionsPortCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPortType(typeOf(pass.TypesInfo, call)) {
			found = true
		}
		return !found
	})
	return found
}

// paramFields returns the function's receiver and parameter fields.
func paramFields(fn *ast.FuncDecl) []*ast.Field {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	return fields
}

// isPortType reports whether t is the memory.Port interface.
func isPortType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == rmeutil.MemoryPath && obj.Name() == "Port"
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// asVar resolves an identifier expression to its variable, or nil.
func asVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.ObjectOf(id).(*types.Var); ok {
		return v
	}
	return nil
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

package grlock

import "rme/internal/memory"

var leaked memory.Port

var hook func()

var sink chan memory.Port

type holder struct {
	port memory.Port
	next *holder
}

// bad: the port handle outlives the passage in a package-level variable.
func storeGlobal(p memory.Port) {
	leaked = p // want `port handle stored in package-level variable leaked`
}

// bad: stored through a field, the handle is reachable from the heap.
func storeField(h *holder, p memory.Port) {
	h.port = p // want `port handle stored in heap-reachable memory`
}

// bad: same through an index expression.
func storeSlice(hs []memory.Port, p memory.Port) {
	hs[0] = p // want `port handle stored in heap-reachable memory`
}

// bad: a channel hands the port to whoever receives it.
func sendPort(p memory.Port) {
	sink <- p // want `port handle sent on a channel`
}

// bad: the returned closure retains the port past the call.
func leakClosure(p memory.Port) func() {
	return func() { p.Pause() } // want `returned closure captures a port handle`
}

// bad: a closure over the port parked in a global.
func storeClosure(p memory.Port) {
	hook = func() { p.Pause() } // want `port handle stored in package-level variable hook`
}

// bad multi-path: the alias is tainted on one branch only; the
// may-analysis joins the branches and still reports the store.
func branchTaint(p memory.Port, cond bool) {
	var q memory.Port
	if cond {
		q = p
	}
	leaked = q // want `port handle stored in package-level variable leaked`
}

// good: the strong update clears the alias before the store — only a
// flow-sensitive analysis can accept this while rejecting branchTaint.
func killThenStore(p memory.Port) {
	q := p
	q = nil
	leaked = q
}

// good: ports may be used freely within the passage.
func localUse(p memory.Port, a memory.Addr) memory.Word {
	q := p
	return q.Read(a)
}

// good: returning the bare port stays within the passage (the caller is
// part of it).
func passThrough(p memory.Port) memory.Port {
	return p
}

// good: a call result of Port type is tainted, but local use is fine.
func obtained(h *holder, a memory.Addr) memory.Word {
	q := h.get()
	return q.Read(a)
}

// bad: a call-obtained port escapes like any other.
func obtainedEscapes(h *holder) {
	leaked = h.get() // want `port handle stored in package-level variable leaked`
}

// good: an acknowledged exception is suppressed.
func acknowledged(p memory.Port) {
	leaked = p // rme:allow(portescape: fixture exercising the suppression path)
}

func (h *holder) get() memory.Port { return h.port }

// Package flightemit keeps the flight recorder out of the sensitive
// window. A crash immediately after a sensitive fetch-and-store (an RMW
// whose effect other processes can already see, Definition 3.3) is the
// one failure the weakly recoverable algorithms must repair; the repair
// contract assumes the instruction's result is persisted — written to a
// word of the arena — as the very next shared-memory step. A
// flight-recorder emit interposed between the FAS and that persisting
// write adds instructions inside the crash window the paper's analysis
// assumes is minimal, and couples recovery correctness to observability
// code. Recording belongs before the FAS or after the persist, never
// between.
//
// In algorithm packages (test files exempt) the pass reports any call
// into rme/internal/flight — a method on one of its types or a
// package-level function — appearing between an rme:sensitive-marked RMW
// and the next Port.Write in the same function.
package flightemit

import (
	"go/ast"
	"go/types"
	"sort"

	"rme/internal/analysis"
	"rme/internal/analysis/rmeutil"
)

const name = "flightemit"

// flightPath is the flight recorder's import path.
const flightPath = "rme/internal/flight"

// Analyzer is the flightemit pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid flight-recorder emit calls between a sensitive FAS and its persist\n\n" +
		"so recording never widens the crash window the recovery procedures\n" +
		"are analyzed against (Definition 3.3).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)
		sensLines := map[int]bool{}
		for _, m := range markers.All {
			if m.Kind == rmeutil.KindSensitive {
				sensLines[m.Line] = true
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, markers, sensLines)
		}
	}
	return nil
}

// checkFunc scans the function's calls in source order: after a
// sensitive RMW, any flight call before the next Port.Write is a
// finding.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, markers *rmeutil.FileMarkers, sensLines map[int]bool) {
	var calls []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })

	inWindow := false
	for _, call := range calls {
		switch {
		case rmeutil.IsRMW(pass.TypesInfo, call):
			// A sensitive marker sits on the RMW's line or the line
			// above (the attachment rule of the sensitive pass).
			line := pass.Fset.Position(call.Pos()).Line
			if sensLines[line] || sensLines[line-1] {
				inWindow = true
			}
		case isFlightCall(pass.TypesInfo, call):
			if !inWindow {
				continue
			}
			line := pass.Fset.Position(call.Pos()).Line
			if !markers.Allowed(name, line) {
				pass.Reportf(call.Pos(),
					"flight-recorder emit between a sensitive FAS and its persisting write: recording must not widen the crash window (Definition 3.3); move it before the FAS or after the persist")
			}
		default:
			if recv, method, ok := rmeutil.PortCall(pass.TypesInfo, call); ok && recv == "Port" && method == "Write" {
				// The persisting write closes the window.
				inWindow = false
			}
		}
	}
}

// isFlightCall reports whether call invokes rme/internal/flight — a
// package-level function or a method on one of its types.
func isFlightCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		if pkg, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return pkg.Imported().Path() == flightPath
		}
	}
	tv, found := info.Types[sel.X]
	if !found || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == flightPath
}

// Package flightemit keeps the flight recorder out of the sensitive
// window. A crash immediately after a sensitive fetch-and-store (an RMW
// whose effect other processes can already see, Definition 3.3) is the
// one failure the weakly recoverable algorithms must repair; the repair
// contract assumes the instruction's result is persisted — written to a
// word of the arena — as the very next shared-memory step. A
// flight-recorder emit interposed between the FAS and that persisting
// write adds instructions inside the crash window the paper's analysis
// assumes is minimal, and couples recovery correctness to observability
// code. Recording belongs before the FAS or after the persist, never
// between.
//
// In algorithm packages (test files exempt) the pass reports any call
// into rme/internal/flight — a method on one of its types, a
// package-level function, or a call through a variable bound to a flight
// method value — appearing between an rme:sensitive-marked RMW and the
// next Port.Write in the same function. Deferred emits are exempt: a
// defer runs at return, after the persisting write has closed the
// window (though the deferred call's arguments still evaluate in place
// and are checked).
package flightemit

import (
	"go/ast"
	"go/types"
	"sort"

	"rme/internal/analysis"
	"rme/internal/analysis/rmeutil"
)

const name = "flightemit"

// flightPath is the flight recorder's import path.
const flightPath = "rme/internal/flight"

// Analyzer is the flightemit pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid flight-recorder emit calls between a sensitive FAS and its persist\n\n" +
		"so recording never widens the crash window the recovery procedures\n" +
		"are analyzed against (Definition 3.3).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)
		sensLines := map[int]bool{}
		for _, m := range markers.All {
			if m.Kind == rmeutil.KindSensitive {
				sensLines[m.Line] = true
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, file, fn, markers, sensLines)
		}
	}
	return nil
}

// checkFunc scans the function's calls in source order: after a
// sensitive RMW, any flight call before the next Port.Write is a
// finding.
func checkFunc(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl, markers *rmeutil.FileMarkers, sensLines map[int]bool) {
	var calls []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })

	deferred := deferredCalls(fn)
	flightVars := flightMethodValues(pass.TypesInfo, fn)

	inWindow := false
	for _, call := range calls {
		switch {
		case deferred[call]:
			// Runs at return, after the persist has closed the window.
			// The call's arguments still evaluate in place; nested calls
			// among them were collected separately and are checked.
		case rmeutil.IsRMW(pass.TypesInfo, call):
			// A sensitive marker sits on the RMW's line or the line
			// above (the attachment rule of the sensitive pass).
			line := pass.Fset.Position(call.Pos()).Line
			if sensLines[line] || sensLines[line-1] {
				inWindow = true
			}
		case isFlightCall(pass.TypesInfo, call) || isFlightVarCall(pass.TypesInfo, call, flightVars):
			if !inWindow {
				continue
			}
			line := pass.Fset.Position(call.Pos()).Line
			if !rmeutil.Suppressed(pass, file, markers, line) {
				pass.Reportf(call.Pos(),
					"flight-recorder emit between a sensitive FAS and its persisting write: recording must not widen the crash window (Definition 3.3); move it before the FAS or after the persist")
			}
		default:
			if recv, method, ok := rmeutil.PortCall(pass.TypesInfo, call); ok && recv == "Port" && method == "Write" {
				// The persisting write closes the window.
				inWindow = false
			}
		}
	}
}

// deferredCalls collects the calls of the function that execute at
// return rather than in source order: each DeferStmt's own call and, for
// a deferred function literal, every call inside its body. Calls nested
// in a deferred call's arguments are excluded — those evaluate at the
// defer statement.
func deferredCalls(fn *ast.FuncDecl) map[*ast.CallExpr]bool {
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		deferred[ds.Call] = true
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					deferred[call] = true
				}
				return true
			})
		}
		return true
	})
	return deferred
}

// flightMethodValues collects the variables of the function bound to a
// flight method value (f := fr.Phase), so calls through them are
// recognized as emits.
func flightMethodValues(info *types.Info, fn *ast.FuncDecl) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
			if !ok || !isFlightSelector(info, sel) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := info.ObjectOf(id).(*types.Var); ok {
					vars[v] = true
				}
			}
		}
		return true
	})
	return vars
}

// isFlightVarCall reports whether call invokes a variable bound to a
// flight method value.
func isFlightVarCall(info *types.Info, call *ast.CallExpr, flightVars map[*types.Var]bool) bool {
	if len(flightVars) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	return ok && flightVars[v]
}

// isFlightCall reports whether call invokes rme/internal/flight — a
// package-level function or a method on one of its types.
func isFlightCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isFlightSelector(info, sel)
}

// isFlightSelector reports whether sel names a flight package function or
// a method of a flight type, whether called or taken as a method value.
func isFlightSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		if pkg, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return pkg.Imported().Path() == flightPath
		}
	}
	tv, found := info.Types[sel.X]
	if !found || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == flightPath
}

// Package flight is a fixture mirror of rme/internal/flight: just enough
// surface for the flightemit type checks (a Recorder with emit methods
// and a package-level function).
package flight

// Recorder records passage events.
type Recorder struct{ enabled bool }

// Phase records a phase transition.
func (r *Recorder) Phase(pid int, kind, level int) {}

// ObserveLabel records an instruction label.
func (r *Recorder) ObserveLabel(pid int, label string) {}

// CSEnter records a critical-section entry.
func (r *Recorder) CSEnter(pid int) {}

// Note is a package-level emit helper.
func Note(pid int, msg string) {}

// Stamp returns an opaque marker for the process — a flight call usable
// in argument position.
func Stamp(pid int) string { return "" }

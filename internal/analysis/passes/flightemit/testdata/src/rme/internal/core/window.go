// rme:sensitive-instructions 11
package core

import (
	"rme/internal/flight"
	"rme/internal/memory"
)

// exitGood persists the sensitive FAS result before recording: the
// window stays minimal.
func exitGood(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1) // rme:sensitive
	p.Write(pred, temp)
	fr.Phase(p.PID(), 1, 1) // after the persist: fine
}

// exitBad emits between the FAS and its persist: the recording call
// widens the crash window the recovery analysis assumes is minimal.
func exitBad(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1)  // rme:sensitive
	fr.Phase(p.PID(), 1, 1) // want `flight-recorder emit between a sensitive FAS and its persisting write`
	p.Write(pred, temp)
}

// exitBadPkgFunc: package-level flight functions count as emits too.
func exitBadPkgFunc(p memory.Port, tail, pred memory.Addr) {
	temp := p.FAS(tail, 1)       // rme:sensitive
	flight.Note(p.PID(), "mid")  // want `flight-recorder emit between a sensitive FAS and its persisting write`
	fr := &flight.Recorder{}     // composite literal, not a call: ignored
	fr.ObserveLabel(p.PID(), "") // want `flight-recorder emit between a sensitive FAS and its persisting write`
	p.Write(pred, temp)
}

// nonsensitiveOK: an emit after an idempotent RMW is outside any window.
func nonsensitiveOK(p memory.Port, next memory.Addr, fr *flight.Recorder) {
	// rme:nonsensitive(outcome ignored; the field is re-read, Section 4.3)
	p.CAS(next, 0, 1)
	fr.CSEnter(p.PID())
}

// suppressed documents a deliberate exception with rme:allow.
func suppressed(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1) // rme:sensitive
	fr.CSEnter(p.PID())    // rme:allow(flightemit: fixture demonstrating suppression)
	p.Write(pred, temp)
}

// deferredOK: a deferred emit runs at return, after the persisting write
// has closed the window — not a finding.
func deferredOK(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1) // rme:sensitive
	defer fr.Phase(p.PID(), 1, 1)
	p.Write(pred, temp)
}

// deferredClosureOK: same through a deferred function literal.
func deferredClosureOK(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1) // rme:sensitive
	defer func() {
		fr.Phase(p.PID(), 1, 1)
		flight.Note(p.PID(), "done")
	}()
	p.Write(pred, temp)
}

// deferredArgBad: the deferred call itself runs at return, but its
// arguments evaluate at the defer statement — inside the window.
func deferredArgBad(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1)                            // rme:sensitive
	defer flight.Note(p.PID(), flight.Stamp(p.PID())) // want `flight-recorder emit between a sensitive FAS and its persisting write`
	p.Write(pred, temp)
}

// methodValueBad: an emit through a method value is still an emit.
func methodValueBad(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	emit := fr.Phase
	temp := p.FAS(tail, 1) // rme:sensitive
	emit(p.PID(), 1, 1)    // want `flight-recorder emit between a sensitive FAS and its persisting write`
	p.Write(pred, temp)
}

// methodValueOK: calling the method value after the persist is fine.
func methodValueOK(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	emit := fr.Phase
	temp := p.FAS(tail, 1) // rme:sensitive
	p.Write(pred, temp)
	emit(p.PID(), 1, 1)
}

// abortEmitOK: the back-out records its abort event only after the
// persisting write has closed the window — the rme.LockCtx shape (run
// the lock's Abort, then emit).
func abortEmitOK(p memory.Port, tail, pred, state memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1) // rme:sensitive
	p.Write(pred, temp)
	p.Write(state, 3) // persist the aborted state
	fr.Phase(p.PID(), 1, 1)
	flight.Note(p.PID(), "abort")
}

// abortEmitBad: recording the abort before the FAS result is persisted
// widens the very crash window the back-out protocol is analyzed
// against.
func abortEmitBad(p memory.Port, tail, pred, state memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1)        // rme:sensitive
	flight.Note(p.PID(), "abort") // want `flight-recorder emit between a sensitive FAS and its persisting write`
	p.Write(pred, temp)
	p.Write(state, 3)
}

// rme:sensitive-instructions 4
package core

import (
	"rme/internal/flight"
	"rme/internal/memory"
)

// exitGood persists the sensitive FAS result before recording: the
// window stays minimal.
func exitGood(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1) // rme:sensitive
	p.Write(pred, temp)
	fr.Phase(p.PID(), 1, 1) // after the persist: fine
}

// exitBad emits between the FAS and its persist: the recording call
// widens the crash window the recovery analysis assumes is minimal.
func exitBad(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1)  // rme:sensitive
	fr.Phase(p.PID(), 1, 1) // want `flight-recorder emit between a sensitive FAS and its persisting write`
	p.Write(pred, temp)
}

// exitBadPkgFunc: package-level flight functions count as emits too.
func exitBadPkgFunc(p memory.Port, tail, pred memory.Addr) {
	temp := p.FAS(tail, 1)       // rme:sensitive
	flight.Note(p.PID(), "mid")  // want `flight-recorder emit between a sensitive FAS and its persisting write`
	fr := &flight.Recorder{}     // composite literal, not a call: ignored
	fr.ObserveLabel(p.PID(), "") // want `flight-recorder emit between a sensitive FAS and its persisting write`
	p.Write(pred, temp)
}

// nonsensitiveOK: an emit after an idempotent RMW is outside any window.
func nonsensitiveOK(p memory.Port, next memory.Addr, fr *flight.Recorder) {
	// rme:nonsensitive(outcome ignored; the field is re-read, Section 4.3)
	p.CAS(next, 0, 1)
	fr.CSEnter(p.PID())
}

// suppressed documents a deliberate exception with rme:allow.
func suppressed(p memory.Port, tail, pred memory.Addr, fr *flight.Recorder) {
	temp := p.FAS(tail, 1) // rme:sensitive
	fr.CSEnter(p.PID())    // rme:allow(flightemit: fixture demonstrating suppression)
	p.Write(pred, temp)
}

package flightemit_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/flightemit"
)

func TestFlightEmit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), flightemit.Analyzer,
		"rme/internal/core")
}

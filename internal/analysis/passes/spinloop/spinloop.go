// Package spinloop keeps busy-wait loops honest about RMRs. The paper's
// complexity claims count remote memory references per passage; a spin
// loop that tests a value hoisted into a private variable instead of
// re-reading shared memory through the Port silently drops those
// references from the accounting (and, worse, can never observe the
// awaited write — private copies are exactly what a crash erases). The
// pass also requires the Port.Pause step-gate hint inside busy-wait
// loops: the native backend yields the processor there, and its presence
// marks the loop as a deliberate wait for the simulator's schedulers.
//
// In algorithm packages (test files exempt) it reports:
//
//   - a for-loop whose condition mentions a variable previously loaded
//     from the Port, when neither the condition nor the body re-reads
//     shared memory (the hoisted-spin lie);
//   - a waiting loop — a conditional loop that re-reads shared memory in
//     its condition but writes nothing, or an unconditional loop that
//     only reads — with no Port.Pause inside;
//   - an unconditional loop that pauses but never re-reads shared memory
//     (a spin that can only be left by crash).
package spinloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"rme/internal/analysis"
	"rme/internal/analysis/rmeutil"
)

const name = "spinloop"

// Analyzer is the spinloop pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag busy-wait loops that spin on hoisted private copies of shared memory\n\n" +
		"or that lack the Port.Pause step-gate hint, so CC/DSM RMR accounting\n" +
		"stays exact.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, file, fn, markers)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl, markers *rmeutil.FileMarkers) {
	info := pass.TypesInfo
	// Variables assigned (anywhere in the function) from an expression
	// that reads shared memory, with the positions of those assignments.
	loaded := map[*types.Var][]token.Pos{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fromPort := false
		for _, rhs := range as.Rhs {
			if countPortOps(info, rhs, opRead) > 0 {
				fromPort = true
			}
		}
		if !fromPort {
			return true
		}
		for _, lhs := range as.Lhs {
			if v := asVar(info, lhs); v != nil {
				loaded[v] = append(loaded[v], as.Pos())
			}
		}
		return true
	})

	report := func(pos token.Pos, format string, args ...interface{}) {
		if rmeutil.Suppressed(pass, file, markers, pass.Fset.Position(pos).Line) {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		// The loop's per-iteration extent: body plus post statement.
		iter := []ast.Node{fs.Body}
		if fs.Post != nil {
			iter = append(iter, fs.Post)
		}
		bodyReads, bodyWrites, bodyPause := 0, 0, 0
		for _, part := range iter {
			bodyReads += countPortOps(info, part, opRead)
			bodyWrites += countPortOps(info, part, opWrite)
			bodyPause += countPortOps(info, part, opPause)
		}

		if fs.Cond == nil {
			switch {
			case bodyReads > 0 && bodyWrites == 0 && bodyPause == 0:
				report(fs.For, "read-only busy-wait loop without Port.Pause: add the step-gate hint so the native backend yields while spinning")
			case bodyPause > 0 && bodyReads == 0:
				report(fs.For, "busy-wait loop never re-reads shared memory: its exit condition is a private copy a crash would erase and RMR accounting cannot see")
			}
			return true
		}

		condReads := countPortOps(info, fs.Cond, opRead)
		if condReads > 0 {
			if bodyWrites == 0 && bodyPause == 0 {
				report(fs.Cond.Pos(), "spin loop reads shared memory in its condition but has no Port.Pause: add the step-gate hint so the native backend yields while spinning")
			}
			return true
		}

		// No re-read in the condition: is it spinning on a hoisted load?
		if bodyReads > 0 {
			return true // the body re-reads shared memory; accounting is exact
		}
		for _, ident := range condIdents(fs.Cond) {
			v := asVar(info, ident)
			if v == nil {
				continue
			}
			hoisted := false
			for _, p := range loaded[v] {
				if p < fs.Pos() {
					hoisted = true
				}
			}
			if !hoisted || reassignedWithin(info, iter, v) {
				continue
			}
			report(fs.Cond.Pos(), "spin condition tests %q, a private copy of shared memory hoisted out of the loop: re-read through the Port so CC/DSM RMR accounting stays exact", ident.Name)
			break
		}
		return true
	})
}

// Port-operation classes.
type opClass int

const (
	opRead  opClass = iota // Read, FAS, CAS: operations that observe shared memory
	opWrite                // Write, FAS, CAS: operations that mutate shared memory
	opPause                // Pause: the step-gate hint
)

var opMethods = map[opClass]map[string]bool{
	opRead:  {"Read": true, "FAS": true, "CAS": true},
	opWrite: {"Write": true, "FAS": true, "CAS": true},
	opPause: {"Pause": true},
}

// countPortOps counts Port method calls of the given class under n.
func countPortOps(info *types.Info, n ast.Node, class opClass) int {
	count := 0
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := rmeutil.PortCall(info, call); ok && recv == "Port" && opMethods[class][method] {
			count++
		}
		return true
	})
	return count
}

// condIdents returns the identifiers mentioned in a loop condition.
func condIdents(cond ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(cond, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// Only the base of a selector is a candidate variable; the
			// field name itself resolves elsewhere.
			ast.Inspect(sel.X, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					out = append(out, id)
				}
				return true
			})
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// asVar resolves an expression to the variable it names, or nil.
func asVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.ObjectOf(id); obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}

// reassignedWithin reports whether v is assigned inside any of the nodes.
func reassignedWithin(info *types.Info, nodes []ast.Node, v *types.Var) bool {
	found := false
	for _, node := range nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if asVar(info, lhs) == v {
						found = true
					}
				}
			case *ast.IncDecStmt:
				if asVar(info, n.X) == v {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

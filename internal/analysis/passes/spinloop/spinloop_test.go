package spinloop_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/spinloop"
)

func TestSpinLoop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spinloop.Analyzer,
		"rme/internal/yalock")
}

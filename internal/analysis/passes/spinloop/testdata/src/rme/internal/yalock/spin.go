package yalock

import "rme/internal/memory"

// good spins: condition re-reads through the Port and the body pauses.
func waitLocked(p memory.Port, a memory.Addr) {
	for memory.AsBool(p.Read(a)) {
		p.Pause()
	}
}

// good: unconditional loop that re-reads in its body before breaking.
func waitBody(p memory.Port, a memory.Addr) {
	for {
		if p.Read(a) == 0 {
			break
		}
		p.Pause()
	}
}

// good: CAS retry loop makes progress (writes), so no Pause is required.
func casRetry(p memory.Port, tail memory.Addr) {
	for {
		cur := p.Read(tail)
		if p.CAS(tail, cur, cur+1) {
			return
		}
	}
}

// bad: the condition tests a private copy hoisted out of the loop.
func hoisted(p memory.Port, a memory.Addr) {
	v := p.Read(a)
	for memory.AsBool(v) { // want `spin condition tests "v", a private copy of shared memory`
		p.Pause()
	}
}

// bad: spin re-reads but never pauses (native backend would burn CPU).
func noPause(p memory.Port, a memory.Addr) {
	for p.Read(a) != 0 { // want `spin loop reads shared memory in its condition but has no Port.Pause`
	}
}

// bad: read-only unconditional wait without a Pause.
func noPauseBody(p memory.Port, a memory.Addr) {
	for { // want `read-only busy-wait loop without Port.Pause`
		if p.Read(a) == 0 {
			return
		}
	}
}

// bad: pauses forever on a stale private copy.
func staleForever(p memory.Port, a memory.Addr) {
	v := p.Read(a)
	for { // want `busy-wait loop never re-reads shared memory`
		if v == 0 {
			return
		}
		p.Pause()
	}
}

// good: the hoisted value is reassigned (re-read) inside the loop.
func rereads(p memory.Port, a memory.Addr) {
	v := p.Read(a)
	for memory.AsBool(v) {
		p.Pause()
		v = p.Read(a)
	}
}

// good: plain counted loop over private configuration is no spin.
func counted(p memory.Port, a memory.Addr, n int) {
	for j := 0; j < n; j++ {
		p.Write(a, memory.Word(j))
	}
}

// suppressed: explicit waiver.
func waived(p memory.Port, a memory.Addr) {
	v := p.Read(a)
	for memory.AsBool(v) { // rme:allow(spinloop: fixture demonstrating suppression)
		p.Pause()
	}
}

package core

import "rme/internal/memory"

// good: the persisting write directly follows the sensitive FAS — the
// paper's WR-Lock shape.
func swapThenPersist(p memory.Port, tail, pred memory.Addr, v memory.Word) {
	old := p.FAS(tail, v) // rme:sensitive
	p.Write(pred, old)
}

// good multi-path: every branch persists before the return.
func bothBranchesPersist(p memory.Port, tail, pred memory.Addr, v memory.Word) {
	old := p.FAS(tail, v) // rme:sensitive
	if old == 0 {
		p.Write(pred, 1)
	} else {
		p.Write(pred, old)
	}
}

// bad multi-path: the persist is present on one branch and missing on
// the other — invisible to a statement-local check, decided here by the
// backward must-reach analysis.
func oneBranchPersists(p memory.Port, tail, pred memory.Addr, v memory.Word) {
	old := p.FAS(tail, v) // rme:sensitive // want `sensitive RMW is not persisted on every path`
	if old == 0 {
		p.Write(pred, 1)
	}
}

// good: a retry loop that persists before looping back or returning.
func retryPersists(p memory.Port, tail, pred memory.Addr) {
	for {
		old := p.FAS(tail, 1) // rme:sensitive
		p.Write(pred, old)
		if old == 0 {
			return
		}
	}
}

// bad: the early return exits between the FAS and its persist.
func earlyReturnSkipsPersist(p memory.Port, tail, pred memory.Addr) {
	for {
		old := p.FAS(tail, 1) // rme:sensitive // want `sensitive RMW is not persisted on every path`
		if old == 0 {
			return
		}
		p.Write(pred, old)
	}
}

// good: a panic path is a harness-detected contract violation, not a
// recoverable crash, so it does not need the persist.
func panicPathExempt(p memory.Port, tail, pred memory.Addr, v memory.Word) {
	old := p.FAS(tail, v) // rme:sensitive
	if old > 9 {
		panic("core: tail corrupted (contract violated)")
	}
	p.Write(pred, old)
}

// bad: a second sensitive instruction executes before the first one's
// effect is persisted.
func backToBackSensitive(p memory.Port, tail, pred memory.Addr) {
	a := p.FAS(tail, 1) // rme:sensitive // want `sensitive RMW is not persisted on every path`
	b := p.FAS(tail, 2) // rme:sensitive
	p.Write(pred, a+b)
}

// good: nonsensitive RMWs are exempt from persist ordering.
func idempotentExempt(p memory.Port, a memory.Addr) {
	p.CAS(a, 0, 1) // rme:nonsensitive(idempotent: re-execution after a crash repeats the same transition)
}

// good: an acknowledged exception is suppressed.
func acknowledged(p memory.Port, tail memory.Addr) {
	// rme:allow(persistorder: fixture exercising the suppression path)
	_ = p.FAS(tail, 1) // rme:sensitive
}

// good: the abort back-out shape (DESIGN §15) — the queue-entry FAS is
// persisted before the abandon dance begins, and the dance itself uses
// only acknowledged idempotent RMWs re-used from the Exit segment.
func abortBackOut(p memory.Port, state, tail, pred, node, nxt memory.Addr) {
	old := p.FAS(tail, memory.FromAddr(node)) // rme:sensitive
	p.Write(pred, old)
	// Abort delivered here: persist the aborted state first, then run
	// the idempotent dance a crash-interrupted Recover can re-run.
	p.Write(state, 3)
	p.CAS(tail, memory.FromAddr(node), memory.FromAddr(memory.Nil)) // rme:nonsensitive(outcome ignored; repeating the detach after a crash is a no-op)
	p.CAS(nxt, memory.FromAddr(memory.Nil), memory.FromAddr(node))  // rme:nonsensitive(wait-free abandon signal; succeeds at most once and re-running it is a no-op)
	p.Write(state, 0)
}

// bad: an abort branch that bails out between the queue-entry FAS and
// its persist — the displaced predecessor is torn exactly in the window
// the back-out must not widen.
func abortSkipsPersist(p memory.Port, tail, pred, node memory.Addr, aborted bool) {
	old := p.FAS(tail, memory.FromAddr(node)) // rme:sensitive // want `sensitive RMW is not persisted on every path`
	if aborted {
		return
	}
	p.Write(pred, old)
}

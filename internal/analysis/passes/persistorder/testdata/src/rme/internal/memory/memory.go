// Package memory is a fixture mirror of rme/internal/memory: just enough
// surface for the analyzers' type checks (Port, Space, Addr, Word).
package memory

// Word is the unit of shared storage.
type Word = uint64

// Addr names one word of shared memory.
type Addr uint32

// Nil is the null address.
const Nil Addr = 0

// HomeNone marks a location remote to every process under DSM.
const HomeNone = -1

// Space allocates shared memory.
type Space interface {
	Alloc(nwords int, home int) Addr
}

// Port is one process's view of shared memory.
type Port interface {
	Space
	PID() int
	N() int
	Read(a Addr) Word
	Write(a Addr, v Word)
	FAS(a Addr, v Word) Word
	CAS(a Addr, old, new Word) bool
	Label(l string)
	Pause()
}

// Bool encodes a boolean into a word.
func Bool(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// AsBool decodes a word written by Bool.
func AsBool(w Word) bool { return w != 0 }

// FromAddr encodes an address into a word.
func FromAddr(a Addr) Word { return Word(a) }

// AsAddr decodes a word written by FromAddr.
func AsAddr(w Word) Addr { return Addr(w) }

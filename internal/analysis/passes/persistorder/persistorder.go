// Package persistorder checks, on every control-flow path, that the
// effect of a sensitive RMW is persisted before the function can expose
// it to a crash. In the paper's weakly recoverable lock the single
// sensitive instruction (the FAS on tail, Section 4.3) is immediately
// followed by the write that publishes the displaced value; the crash
// window is exactly the gap between the two, and the recovery argument
// (Lemma 4.4) needs that gap to close before the passage can return or
// execute another sensitive instruction.
//
// The statement-local passes cannot see paths, so a persisting write
// hoisted into one branch of an if would slip past them. This pass runs
// a backward must-reach dataflow over the function's control-flow graph:
// at every point immediately after a sensitive RMW, every path to a
// return must execute a Port.Write before it returns or reaches the next
// sensitive RMW. Paths that end in panic are exempt — in this codebase a
// panic is a harness-detected contract violation, not a recoverable
// crash.
//
// Applies to algorithm packages only; test files are exempt. Suppress a
// finding with rme:allow(persistorder: <why>).
package persistorder

import (
	"go/ast"

	"rme/internal/analysis"
	"rme/internal/analysis/cfg"
	"rme/internal/analysis/dataflow"
	"rme/internal/analysis/rmeutil"
)

const name = "persistorder"

// Analyzer is the persistorder pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "require every path after a sensitive RMW to reach a persisting Port.Write\n\n" +
		"before the function returns or executes the next sensitive instruction\n" +
		"(backward must-reach dataflow; closes the torn-crash window of Lemma 4.4).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !rmeutil.IsAlgorithmPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if rmeutil.IsTestFile(pass.Fset, file) {
			continue
		}
		markers := rmeutil.ParseMarkers(pass.Fset, file)

		// Lines holding RMW calls, for the marker attachment rule.
		rmwLines := map[int]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && rmeutil.IsRMW(pass.TypesInfo, call) {
				rmwLines[pass.Fset.Position(call.Pos()).Line] = true
			}
			return true
		})
		sensitive := func(call *ast.CallExpr) bool {
			if !rmeutil.IsRMW(pass.TypesInfo, call) {
				return false
			}
			line := pass.Fset.Position(call.Pos()).Line
			m, ok := markers.AttachedTo(line, func(l int) bool { return rmwLines[l] })
			return ok && m.Kind == rmeutil.KindSensitive
		}

		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, file, fn, markers, sensitive)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl,
	markers *rmeutil.FileMarkers, sensitive func(*ast.CallExpr) bool) {

	g := cfg.New(fn.Body, nil)

	// Does the function contain a sensitive RMW at all? The solve is
	// cheap, but most functions can skip it entirely.
	any := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, call := range portCalls(pass, n) {
				if sensitive(call) {
					any = true
				}
			}
		}
	}
	if !any {
		return
	}

	// Backward must-analysis. The fact at a point means: every path from
	// here executes a persisting Port.Write before it returns or reaches
	// the next sensitive RMW.
	res := dataflow.Solve(g, dataflow.Analysis{
		Lattice: dataflow.BoolMust{},
		Dir:     dataflow.Backward,
		Boundary: func(b *cfg.Block) dataflow.Fact {
			// Blocks with no successors either return/fall off the end
			// (the window stays open: false) or end in panic (a contract
			// violation aborts the run: vacuously true).
			return endsInPanic(b)
		},
		Transfer: func(b *cfg.Block, out dataflow.Fact) dataflow.Fact {
			return dataflow.FoldNodes(b, dataflow.Backward, out,
				func(n ast.Node, fact dataflow.Fact) dataflow.Fact {
					return transferNode(pass, n, fact.(bool), sensitive, nil)
				})
		},
	})

	// Re-fold each block from its solved exit fact, this time reporting
	// at every sensitive RMW whose fact is still open.
	for _, b := range g.Blocks {
		fact := res.After[b].(bool)
		report := func(call *ast.CallExpr) {
			line := pass.Fset.Position(call.Pos()).Line
			if rmeutil.Suppressed(pass, file, markers, line) {
				return
			}
			pass.Reportf(call.Pos(),
				"sensitive RMW is not persisted on every path: a return (or the next sensitive instruction) is reachable without an intervening Port.Write")
		}
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			fact = transferNode(pass, b.Nodes[i], fact, sensitive, report)
		}
	}
}

// transferNode propagates the backward must-persist fact through one CFG
// node. Port calls inside the node are processed in reverse source order:
// a Port.Write closes the window; a sensitive RMW opens it, and — when
// check is non-nil — first verifies the window after itself is closed.
func transferNode(pass *analysis.Pass, n ast.Node, fact bool,
	sensitive func(*ast.CallExpr) bool, check func(*ast.CallExpr)) bool {

	calls := portCalls(pass, n)
	for i := len(calls) - 1; i >= 0; i-- {
		call := calls[i]
		_, method, _ := rmeutil.PortCall(pass.TypesInfo, call)
		switch {
		case method == "Write":
			fact = true
		case sensitive(call):
			if !fact && check != nil {
				check(call)
			}
			fact = false
		}
	}
	return fact
}

// portCalls returns the memory.Port method calls under n in source order,
// using the cfg traversal convention (function literals and range bodies
// belong to other blocks).
func portCalls(pass *analysis.Pass, n ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	cfg.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, _, ok := rmeutil.PortCall(pass.TypesInfo, call); ok && recv == "Port" {
				calls = append(calls, call)
			}
		}
		return true
	})
	return calls
}

// endsInPanic reports whether the block's last node is a call to the
// built-in panic — the cfg builder's criterion for a terminating call.
func endsInPanic(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	es, ok := b.Nodes[len(b.Nodes)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

package persistorder_test

import (
	"testing"

	"rme/internal/analysis/analysistest"
	"rme/internal/analysis/passes/persistorder"
)

func TestPersistOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), persistorder.Analyzer,
		"rme/internal/core")
}

package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"

	"rme/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the standalone
// driver needs. Export is the package's compiled export-data file in the
// build cache (present because we pass -export).
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Standalone loads the packages matching patterns with the go command
// and runs the analyzers over each matched (non-dependency) package.
// Dependencies are typechecked from build-cache export data, so the
// repo must build (`go build ./...`) for rmevet to run standalone.
func Standalone(patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	targets, exports, err := listPackages(patterns)
	if err != nil {
		return nil, err
	}

	var all []Diagnostic
	for _, p := range targets {
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		if len(files) == 0 {
			continue
		}
		diags, err := checkPackage(p.ImportPath, files, exportLookup(nil, exports), "", analyzers)
		if err != nil {
			return all, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// listPackages shells out to `go list -e -export -deps -json` and
// splits the result into analysis targets (the packages the patterns
// matched) and an importPath→export-file map covering every dependency.
func listPackages(patterns []string) ([]listedPackage, map[string]string, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	cmd.Stderr = nil
	stderr := &prefixErr{}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v", err)
	}

	var targets []listedPackage
	exports := map[string]string{}
	dec := json.NewDecoder(out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.buf)
	}
	return targets, exports, nil
}

type prefixErr struct{ buf []byte }

func (w *prefixErr) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

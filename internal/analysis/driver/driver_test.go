package driver_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/analysis"
	"rme/internal/analysis/driver"
	"rme/internal/analysis/passes/flightemit"
	"rme/internal/analysis/passes/persistfield"
	"rme/internal/analysis/passes/persistorder"
	"rme/internal/analysis/passes/portdiscipline"
	"rme/internal/analysis/passes/portescape"
	"rme/internal/analysis/passes/sensitive"
	"rme/internal/analysis/passes/spinloop"
	"rme/internal/analysis/passes/spinrmr"
)

var suite = []*analysis.Analyzer{
	portdiscipline.Analyzer,
	sensitive.Analyzer,
	spinloop.Analyzer,
	persistfield.Analyzer,
	flightemit.Analyzer,
	persistorder.Analyzer,
	portescape.Analyzer,
	spinrmr.Analyzer,
}

func needGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go command not available: %v", err)
	}
}

// TestRepoIsClean is the self-enforcement gate: the committed algorithm
// packages must satisfy all eight invariants (and carry no stale
// rme:allow markers — the driver's allow audit runs here too). A
// regression means a new RMW lost its marker, a spin loop lost its
// Pause, a sensitive FAS lost its persisting write, or similar.
func TestRepoIsClean(t *testing.T) {
	needGo(t)
	diags, err := driver.Standalone([]string{"rme/..."}, suite)
	if err != nil {
		t.Fatalf("standalone driver: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestVettoolProtocol builds the rmevet binary and runs it the way CI
// does: go vet -vettool=rmevet. This exercises the -V=full handshake,
// the *.cfg unit-checker mode, and the .vetx facts plumbing.
func TestVettoolProtocol(t *testing.T) {
	needGo(t)
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short mode")
	}
	tool := filepath.Join(t.TempDir(), "rmevet")
	build := exec.Command("go", "build", "-o", tool, "rme/cmd/rmevet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rmevet: %v\n%s", err, out)
	}

	version := exec.Command(tool, "-V=full")
	out, err := version.Output()
	if err != nil {
		t.Fatalf("rmevet -V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "rmevet version ") {
		t.Fatalf("rmevet -V=full = %q, want 'rmevet version ...' line", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "rme/...")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=rmevet rme/...: %v\n%s", err, out)
	}
}

// TestStandaloneReportsViolations feeds the driver a package that
// breaks the discipline and checks the diagnostics surface with
// positions, analyzer names, and stable ordering.
func TestStandaloneReportsViolations(t *testing.T) {
	needGo(t)
	// The fixture must live inside an algorithm package path or every
	// pass would ignore it, so fabricate a throwaway module overlaying
	// rme/internal/grlock.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module rme\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "memory", "memory.go"), fakeMemory)
	writeFile(t, filepath.Join(dir, "internal", "grlock", "bad.go"), badGrlock)

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	diags, err := driver.Standalone([]string{"rme/internal/grlock"}, suite)
	if err != nil {
		t.Fatalf("standalone driver: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer)
	}
	want := map[string]bool{"portdiscipline": true, "sensitive": true}
	for name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s diagnostic reported; got %v", name, got)
		}
	}
}

// TestStaleAllowAudit checks the driver-level allow audit: an
// rme:allow marker that suppresses a real diagnostic passes silently,
// one that suppresses nothing is reported under the "allowaudit" name.
func TestStaleAllowAudit(t *testing.T) {
	needGo(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module rme\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "memory", "memory.go"), fakeMemory)
	writeFile(t, filepath.Join(dir, "internal", "grlock", "allows.go"), allowsGrlock)

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	diags, err := driver.Standalone([]string{"rme/internal/grlock"}, suite)
	if err != nil {
		t.Fatalf("standalone driver: %v", err)
	}
	var audits []driver.Diagnostic
	for _, d := range diags {
		if d.Analyzer == driver.AllowAuditName {
			audits = append(audits, d)
		} else {
			// The used allow must really have suppressed its diagnostic.
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if len(audits) != 1 {
		t.Fatalf("got %d allowaudit diagnostics, want 1: %v", len(audits), audits)
	}
	if !strings.Contains(audits[0].Message, "rme:allow(spinloop") {
		t.Errorf("allowaudit message = %q, want it to name the stale spinloop allow", audits[0].Message)
	}
}

// TestWriteSARIF checks the SARIF log is valid 2.1.0 JSON with one rule
// per analyzer (plus the allow audit) and location URIs relative to the
// base directory.
func TestWriteSARIF(t *testing.T) {
	diags := []driver.Diagnostic{{
		Analyzer: "portdiscipline",
		Message:  "algorithm package imports \"sync\"",
	}}
	diags[0].Pos.Filename = "/repo/internal/grlock/bad.go"
	diags[0].Pos.Line = 7
	diags[0].Pos.Column = 2

	var buf bytes.Buffer
	if err := driver.WriteSARIF(&buf, "rmevet", "/repo", suite, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct{ ID string }
				}
			}
			Results []struct {
				RuleID    string
				Level     string
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct{ URI string }
						Region           struct{ StartLine int }
					}
				}
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version = %q, $schema = %q; want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rmevet" {
		t.Errorf("tool name = %q, want rmevet", run.Tool.Driver.Name)
	}
	if want := len(suite) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d (one per analyzer plus %s)",
			len(run.Tool.Driver.Rules), want, driver.AllowAuditName)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, name := range []string{"portdiscipline", "persistorder", "portescape", "spinrmr", driver.AllowAuditName} {
		if !ruleIDs[name] {
			t.Errorf("rule %q missing from SARIF tool.driver.rules", name)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "portdiscipline" || res.Level != "error" {
		t.Errorf("result = %+v, want ruleId portdiscipline, level error", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/grlock/bad.go" {
		t.Errorf("artifact URI = %q, want path relative to the base dir", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 7 {
		t.Errorf("startLine = %d, want 7", loc.Region.StartLine)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

const fakeMemory = `package memory

type Word = uint64

type Addr int64

type Port interface {
	Read(a Addr) Word
	Write(a Addr, v Word)
	FAS(a Addr, v Word) Word
	CAS(a Addr, old, new Word) bool
	Pause()
}
`

const badGrlock = `package grlock

import (
	_ "sync/atomic"

	"rme/internal/memory"
)

var hits int

func swap(p memory.Port, a memory.Addr) memory.Word {
	hits++
	return p.FAS(a, 1)
}
`

// allowsGrlock carries one rme:allow that suppresses a real diagnostic
// (the package-level var below it) and one that suppresses nothing.
const allowsGrlock = `package grlock

// rme:allow(portdiscipline: scratch counter read only by the harness)
var scratch int

// rme:allow(spinloop: the loop this waived was deleted; marker is stale)
var _ int
`

package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/analysis"
	"rme/internal/analysis/driver"
	"rme/internal/analysis/passes/flightemit"
	"rme/internal/analysis/passes/persistfield"
	"rme/internal/analysis/passes/portdiscipline"
	"rme/internal/analysis/passes/sensitive"
	"rme/internal/analysis/passes/spinloop"
)

var suite = []*analysis.Analyzer{
	portdiscipline.Analyzer,
	sensitive.Analyzer,
	spinloop.Analyzer,
	persistfield.Analyzer,
	flightemit.Analyzer,
}

func needGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go command not available: %v", err)
	}
}

// TestRepoIsClean is the self-enforcement gate: the committed algorithm
// packages must satisfy all five invariants. A regression here means a
// new RMW lost its marker, a spin loop lost its Pause, or similar.
func TestRepoIsClean(t *testing.T) {
	needGo(t)
	diags, err := driver.Standalone([]string{"rme/..."}, suite)
	if err != nil {
		t.Fatalf("standalone driver: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestVettoolProtocol builds the rmevet binary and runs it the way CI
// does: go vet -vettool=rmevet. This exercises the -V=full handshake,
// the *.cfg unit-checker mode, and the .vetx facts plumbing.
func TestVettoolProtocol(t *testing.T) {
	needGo(t)
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short mode")
	}
	tool := filepath.Join(t.TempDir(), "rmevet")
	build := exec.Command("go", "build", "-o", tool, "rme/cmd/rmevet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rmevet: %v\n%s", err, out)
	}

	version := exec.Command(tool, "-V=full")
	out, err := version.Output()
	if err != nil {
		t.Fatalf("rmevet -V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "rmevet version ") {
		t.Fatalf("rmevet -V=full = %q, want 'rmevet version ...' line", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "rme/...")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=rmevet rme/...: %v\n%s", err, out)
	}
}

// TestStandaloneReportsViolations feeds the driver a package that
// breaks the discipline and checks the diagnostics surface with
// positions, analyzer names, and stable ordering.
func TestStandaloneReportsViolations(t *testing.T) {
	needGo(t)
	// The fixture must live inside an algorithm package path or every
	// pass would ignore it, so fabricate a throwaway module overlaying
	// rme/internal/grlock.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module rme\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "memory", "memory.go"), fakeMemory)
	writeFile(t, filepath.Join(dir, "internal", "grlock", "bad.go"), badGrlock)

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	diags, err := driver.Standalone([]string{"rme/internal/grlock"}, suite)
	if err != nil {
		t.Fatalf("standalone driver: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer)
	}
	want := map[string]bool{"portdiscipline": true, "sensitive": true}
	for name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s diagnostic reported; got %v", name, got)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

const fakeMemory = `package memory

type Word = uint64

type Addr int64

type Port interface {
	Read(a Addr) Word
	Write(a Addr, v Word)
	FAS(a Addr, v Word) Word
	CAS(a Addr, old, new Word) bool
	Pause()
}
`

const badGrlock = `package grlock

import (
	_ "sync/atomic"

	"rme/internal/memory"
)

var hits int

func swap(p memory.Port, a memory.Addr) memory.Word {
	hits++
	return p.FAS(a, 1)
}
`

package driver

import (
	"encoding/json"
	"fmt"
	"os"

	"rme/internal/analysis"
)

// vetConfig mirrors the JSON config file cmd/go writes for vet tools
// (x/tools calls the same shape unitchecker.Config). Fields we do not
// consume are still listed so the decoder accepts them by name.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker analyzes the single compilation unit described by the
// *.cfg file that `go vet -vettool=rmevet` hands us, returning the
// process exit code. Facts are not used by any rme analyzer, so the
// .vetx output demanded by cmd/go is written empty.
func Unitchecker(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmevet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rmevet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go insists the facts file exists even though we export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "rmevet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := checkPackage(cfg.ImportPath, cfg.GoFiles,
		exportLookup(cfg.ImportMap, cfg.PackageFile), cfg.GoVersion, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rmevet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

package driver

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"rme/internal/analysis"
)

// The sarif* types model the fragment of SARIF 2.1.0 (the OASIS Static
// Analysis Results Interchange Format) that code-scanning consumers —
// GitHub's upload-sarif action in particular — require: one run, one
// tool with a rule per analyzer, and results carrying a ruleId, a
// message, and a physical location with a repository-relative URI.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log. Every
// registered analyzer contributes a rule (plus the driver's own
// allow-audit), so consumers can display rule help even for analyzers
// that reported nothing this run. baseDir, when non-empty, is stripped
// from file paths to produce the repository-relative URIs code-scanning
// uploads require; pass the repo root (or the working directory the
// driver ran from).
func WriteSARIF(w io.Writer, progname, baseDir string, analyzers []*analysis.Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: firstLine(a.Doc)},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID: AllowAuditName,
		ShortDescription: sarifMessage{
			Text: "report rme:allow markers that no longer suppress any diagnostic"},
		FullDescription: sarifMessage{
			Text: "A stale rme:allow(<analyzer>: <why>) marker documents a waiver for a\n" +
				"diagnostic that no longer exists and silently swallows the next,\n" +
				"unrelated finding on its line; the driver audits markers after every\n" +
				"analyzer has run and reports the unused ones."},
	})

	// results must never be null — GitHub's SARIF ingestion rejects it.
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line := d.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relativeURI(baseDir, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: progname, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relativeURI converts a diagnostic's file path into the forward-slash
// relative URI SARIF artifact locations use. Paths outside baseDir (or
// unresolvable ones) fall back to the path as printed.
func relativeURI(baseDir, filename string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		doc = doc[:i]
	}
	if doc == "" {
		return "(undocumented)"
	}
	return doc
}

// Package driver runs the rme analyzers over typechecked packages.
//
// It supports two invocation styles, mirroring the split in
// golang.org/x/tools (which this repo deliberately does not depend on —
// see the "Stdlib only" section of README.md):
//
//   - standalone: `rmevet ./...` loads packages itself via
//     `go list -export -deps -json` and typechecks against the build
//     cache's export data;
//   - unitchecker: `go vet -vettool=$(which rmevet) ./...` invokes the
//     binary once per package with a JSON *.cfg file describing the
//     compilation unit, exactly like cmd/vet.
//
// Diagnostics are printed as "file:line:col: analyzer: message"; the
// process exits 2 if any diagnostic was reported, 1 on operational
// errors, 0 when clean.
package driver

import (
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"rme/internal/analysis"
	"rme/internal/analysis/rmeutil"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Main implements the rmevet command line. It never returns.
func Main(progname string, analyzers ...*analysis.Analyzer) {
	args := os.Args[1:]

	// `go vet` interrogates the tool before using it: -V=full must print
	// a stable identity line, -flags the JSON list of supported flags.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Println(versionLine(progname))
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			os.Exit(0)
		case arg == "help" || arg == "-help" || arg == "--help" || arg == "-h":
			printHelp(progname, analyzers)
			os.Exit(0)
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(Unitchecker(args[0], analyzers))
	}

	// -sarif (standalone mode only) writes a SARIF 2.1.0 log to stdout;
	// the human-readable diagnostics still go to stderr and the exit
	// status is unchanged, so CI can both upload the log and gate on it.
	sarif := false
	patterns := args[:0:0]
	for _, arg := range args {
		if arg == "-sarif" || arg == "--sarif" {
			sarif = true
			continue
		}
		patterns = append(patterns, arg)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Standalone(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if sarif {
		wd, _ := os.Getwd()
		if err := WriteSARIF(os.Stdout, progname, wd, analyzers, diags); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing SARIF: %v\n", progname, err)
			os.Exit(1)
		}
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func printHelp(progname string, analyzers []*analysis.Analyzer) {
	fmt.Printf("%s: static checks for the rme shared-memory discipline\n\n", progname)
	fmt.Printf("Usage: %s [package pattern ...]\n", progname)
	fmt.Printf("   or: go vet -vettool=$(which %s) ./...\n\nRegistered analyzers:\n\n", progname)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("  %-15s %s\n", a.Name, doc)
	}
}

// versionLine builds the `-V=full` identity line. cmd/go hashes this
// into its build cache key, so it must change whenever the binary does:
// we use the executable's content hash, like x/tools' unitchecker.
func versionLine(progname string) string {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel comments-go-here buildID=%s", progname, id)
}

// checkPackage parses and typechecks one compilation unit and runs every
// analyzer over it. lookup resolves an import path to its gc export
// data (see exportLookup).
func checkPackage(importPath string, filenames []string, lookup func(string) (io.ReadCloser, error), goVersion string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", build()),
		Error:    func(error) {}, // collect via returned error only
	}
	if goVersion != "" {
		conf.GoVersion = goVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}

	var diags []Diagnostic
	usedAllows := map[string]bool{} // "file:line:analyzer" keys recorded by rmeutil.Suppressed
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			UsedAllow: func(file string, line int, analyzer string) {
				usedAllows[fmt.Sprintf("%s:%d:%s", file, line, analyzer)] = true
			},
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, importPath, err)
		}
	}
	diags = append(diags, auditAllows(fset, files, importPath, usedAllows)...)
	sortDiags(diags)
	return diags, nil
}

// AllowAuditName is the analyzer name under which the driver reports
// rme:allow markers that no longer suppress any diagnostic. The audit
// runs after every registered analyzer, so it is a driver-level check
// rather than a pass: only the driver knows which markers went unused
// across the whole suite.
const AllowAuditName = "allowaudit"

// auditAllows reports every rme:allow marker in an algorithm package
// that suppressed nothing during this run. A stale allow is worse than
// noise: it documents a waiver for a diagnostic that no longer exists,
// and silently swallows the next, unrelated finding on its line.
func auditAllows(fset *token.FileSet, files []*ast.File, importPath string, used map[string]bool) []Diagnostic {
	if !rmeutil.IsAlgorithmPackage(importPath) {
		return nil
	}
	var diags []Diagnostic
	for _, file := range files {
		if rmeutil.IsTestFile(fset, file) {
			continue
		}
		name := fset.File(file.Pos()).Name()
		fm := rmeutil.ParseMarkers(fset, file)
		for _, m := range fm.All {
			if m.Kind != rmeutil.KindAllow {
				continue
			}
			if used[fmt.Sprintf("%s:%d:%s", name, m.Line, m.Allow)] {
				continue
			}
			pos := fset.Position(m.Pos)
			if pos.Line != m.Line { // marker inside a multi-line comment
				pos.Line, pos.Column = m.Line, 1
			}
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: AllowAuditName,
				Message: fmt.Sprintf(
					"stale rme:allow(%s: ...) marker: it suppresses no %s diagnostic on this line or the next; delete it",
					m.Allow, m.Allow),
			})
		}
	}
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

func build() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// exportLookup adapts an importPath→exportfile map (plus an optional
// importPath→importPath vendor map) into the lookup function consumed by
// importer.ForCompiler.
func exportLookup(importMap, packageFile map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := packageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Package analysistest runs an analyzer over GOPATH-style fixture trees
// and checks its diagnostics against // want "regexp" comments, in the
// manner of golang.org/x/tools/go/analysis/analysistest (self-contained
// here because the repository is stdlib-only).
//
// Fixtures live under <dir>/src/<importpath>/*.go and may import one
// another by import path; imports with no fixture directory resolve to an
// empty synthesized package, so a fixture can carry a banned blank import
// (e.g. _ "sync/atomic") without the loader needing a standard library.
//
// A want comment holds one or more quoted regular expressions:
//
//	p.FAS(a, v) // want "unmarked RMW" "second expectation"
//
// Each diagnostic must match an unconsumed expectation on its line, and
// every expectation must be consumed.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rme/internal/analysis"
)

// TestData returns the canonical testdata directory of the calling
// package: ./testdata.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package under dir/src, applies the analyzer, and
// reports mismatches between diagnostics and want comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgpaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture package %s: %v", path, err)
			continue
		}
		checkPackage(t, l.fset, a, pkg)
	}
}

func checkPackage(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkg *fixturePkg) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer returned error: %v", pkg.path, err)
		return
	}

	wants := collectWants(t, fset, pkg.files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants extracts the expectations of every file, keyed by
// "filename:line".
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					var unquoted string
					if q[0] == '`' {
						unquoted = q[1 : len(q)-1]
					} else {
						var err error
						unquoted, err = strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s: bad want string %s: %v", posn, q, err)
							continue
						}
					}
					re, err := regexp.Compile(unquoted)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, unquoted, err)
						continue
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
}

func newLoader(root string) *loader {
	return &loader{root: root, fset: token.NewFileSet(), pkgs: map[string]*fixturePkg{}}
}

// load parses and typechecks the fixture package at the import path,
// resolving imports recursively within the fixture tree.
func (l *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	pkg := &fixturePkg{path: path, files: files, types: tpkg, info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPkg resolves an import from within a fixture: a fixture package
// if one exists, otherwise an empty synthesized package (sufficient for
// blank imports of banned paths).
func (l *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	elems := strings.Split(path, "/")
	p := types.NewPackage(path, elems[len(elems)-1])
	p.MarkComplete()
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

var _ types.Importer = importerFunc(nil)

// Package analysis is a minimal, self-contained reimplementation of the
// core of golang.org/x/tools/go/analysis, shaped so that the rmevet
// analyzers could be ported to the real framework by changing imports
// only. The repository is stdlib-only by design (see README, "Stdlib
// only"), so the x/tools module is deliberately not vendored; everything
// the five rmevet analyzers need — a typed syntax view of one package and
// a diagnostic sink — fits in this file.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects a single package via
// the Pass and reports findings through pass.Report; it returns an error
// only for internal failures (a bad finding is a Diagnostic, not an
// error).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags
	// and rme:allow() suppression markers. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one package to an analyzer: its parsed files (with
// comments), type information, and a diagnostic sink. A Pass is valid
// only for the duration of the Run call it is passed to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)

	// UsedAllow, if non-nil, records that an rme:allow(<analyzer>: ...)
	// marker at file:line suppressed a diagnostic of the named analyzer.
	// The driver uses the record to report allow markers that no longer
	// suppress anything (see rmeutil.Suppressed).
	UsedAllow func(file string, line int, analyzer string)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

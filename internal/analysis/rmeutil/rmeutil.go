// Package rmeutil holds the pieces shared by the rmevet analyzers: the
// inventory of algorithm packages the shared-memory discipline applies to,
// detection of calls through the memory.Port interface, and the parser for
// the rme: marker-comment language (see DESIGN.md, "Static analysis").
package rmeutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"rme/internal/analysis"
	"rme/internal/analysis/cfg"
)

// MemoryPath is the import path of the shared-memory substrate. The
// analysistest fixtures mirror the real layout, so a single exact path
// serves both.
const MemoryPath = "rme/internal/memory"

// algorithmPackages lists the packages that contain lock algorithm code —
// code that executes during passages, must keep all persistent state in
// the word arena, and touches shared memory only through memory.Port.
var algorithmPackages = map[string]bool{
	"rme/internal/core":    true,
	"rme/internal/arbtree": true,
	"rme/internal/grlock":  true,
	"rme/internal/mcs":     true,
	"rme/internal/yalock":  true,
	"rme/internal/bakery":  true,
	"rme/internal/reclaim": true,
}

// IsAlgorithmPackage reports whether the import path names a lock
// algorithm package subject to the shared-memory discipline.
func IsAlgorithmPackage(path string) bool { return algorithmPackages[path] }

// IsTestFile reports whether the file was compiled from a _test.go source.
// Test harnesses legitimately use goroutines, channels and sync/atomic, so
// every analyzer skips them.
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.File(file.Pos()).Name(), "_test.go")
}

// PortCall reports whether call is a method call whose receiver's static
// type is the memory.Port or memory.Space interface, returning the
// receiver interface name ("Port" or "Space") and the method name.
func PortCall(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	tv, found := info.Types[sel.X]
	if !found || tv.Type == nil {
		return "", "", false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != MemoryPath {
		return "", "", false
	}
	if name := obj.Name(); name == "Port" || name == "Space" {
		return name, sel.Sel.Name, true
	}
	return "", "", false
}

// IsRMW reports whether call is a read-modify-write instruction (FAS or
// CAS) issued through a memory.Port.
func IsRMW(info *types.Info, call *ast.CallExpr) bool {
	recv, method, ok := PortCall(info, call)
	return ok && recv == "Port" && (method == "FAS" || method == "CAS")
}

// IsAddrType reports whether t is (or contains, through slices, arrays,
// maps or pointers) the memory.Addr type — the signature of persistent
// state held by a struct.
func IsAddrType(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == MemoryPath && obj.Name() == "Addr" {
				return true
			}
			return walk(named.Underlying())
		}
		switch u := t.(type) {
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Pointer:
			return walk(u.Elem())
		case *types.Map:
			return walk(u.Key()) || walk(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		}
		return false
	}
	return walk(t)
}

// Marker kinds.
type MarkerKind int

const (
	// KindSensitive marks an RMW instruction as sensitive
	// (Definition 3.3): a crash immediately after it can leave shared
	// memory in a state another process may observe as inconsistent.
	KindSensitive MarkerKind = iota + 1
	// KindNonsensitive marks an RMW instruction as not sensitive and
	// carries the required justification.
	KindNonsensitive
	// KindInventory declares how many sensitive instructions the file
	// contains ("rme:sensitive-instructions <n>").
	KindInventory
	// KindAllow suppresses a named analyzer on the next line
	// ("rme:allow(analyzer: reason)").
	KindAllow
	// KindRMWLoop marks a loop whose body performs an RMW as a reviewed,
	// bounded-RMR retry loop ("rme:rmw-loop(<why>)"); the spinrmr
	// analyzer requires it on every such loop.
	KindRMWLoop
	// KindInvalid is a marker that failed to parse; Err explains why.
	KindInvalid
)

// Marker is one parsed rme: marker comment.
type Marker struct {
	Kind   MarkerKind
	Line   int       // line the marker comment starts on
	Pos    token.Pos // position of the comment
	Reason string    // KindNonsensitive justification
	Count  int       // KindInventory declared count
	Allow  string    // KindAllow analyzer name
	Err    string    // KindInvalid explanation
}

// FileMarkers indexes the markers of one file by line.
type FileMarkers struct {
	ByLine map[int][]Marker
	All    []Marker
}

var markerRe = regexp.MustCompile(`rme:([a-zA-Z][a-zA-Z-]*)(\(([^)]*)\))?`)

// wantTailRe matches the analysistest expectation tail of a fixture
// comment; markers are only parsed from the text before it, so a want
// regexp may mention marker names without being mistaken for one.
var wantTailRe = regexp.MustCompile(`//\s*want\s`)

// ParseMarkers extracts every rme: marker from the file's comments.
func ParseMarkers(fset *token.FileSet, file *ast.File) *FileMarkers {
	fm := &FileMarkers{ByLine: map[int][]Marker{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if loc := wantTailRe.FindStringIndex(text); loc != nil {
				text = text[:loc[0]]
			}
			for _, idx := range markerRe.FindAllStringSubmatchIndex(text, -1) {
				m := parseOne(text, idx)
				m.Line = fset.Position(c.Pos()).Line +
					strings.Count(text[:idx[0]], "\n")
				m.Pos = c.Pos()
				fm.ByLine[m.Line] = append(fm.ByLine[m.Line], m)
				fm.All = append(fm.All, m)
			}
		}
	}
	return fm
}

// parseOne interprets one regexp match (submatch index pairs idx) inside
// comment text.
func parseOne(text string, idx []int) Marker {
	name := text[idx[2]:idx[3]]
	hasParens := idx[4] >= 0
	args := ""
	if hasParens {
		args = strings.TrimSpace(text[idx[6]:idx[7]])
	}
	switch name {
	case "sensitive":
		if hasParens {
			return Marker{Kind: KindInvalid, Err: "rme:sensitive takes no argument"}
		}
		return Marker{Kind: KindSensitive}
	case "nonsensitive":
		if !hasParens || args == "" {
			return Marker{Kind: KindInvalid,
				Err: "rme:nonsensitive requires a justification: rme:nonsensitive(<why>)"}
		}
		return Marker{Kind: KindNonsensitive, Reason: args}
	case "sensitive-instructions":
		// The count follows the keyword: rme:sensitive-instructions <n>.
		rest := text[idx[1]:]
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return Marker{Kind: KindInvalid,
				Err: "rme:sensitive-instructions requires a count: rme:sensitive-instructions <n>"}
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n < 0 {
			return Marker{Kind: KindInvalid,
				Err: "rme:sensitive-instructions requires a non-negative count, got " +
					strconv.Quote(fields[0])}
		}
		return Marker{Kind: KindInventory, Count: n}
	case "rmw-loop":
		if !hasParens || args == "" {
			return Marker{Kind: KindInvalid,
				Err: "rme:rmw-loop requires a justification: rme:rmw-loop(<why>)"}
		}
		return Marker{Kind: KindRMWLoop, Reason: args}
	case "allow":
		analyzer, reason, found := strings.Cut(args, ":")
		analyzer = strings.TrimSpace(analyzer)
		if !hasParens || analyzer == "" || !found || strings.TrimSpace(reason) == "" {
			return Marker{Kind: KindInvalid,
				Err: "rme:allow requires an analyzer and reason: rme:allow(<analyzer>: <why>)"}
		}
		return Marker{Kind: KindAllow, Allow: analyzer, Reason: strings.TrimSpace(reason)}
	default:
		return Marker{Kind: KindInvalid, Err: "unknown marker rme:" + name}
	}
}

// Allowed reports whether an rme:allow(<analyzer>: ...) marker on the
// diagnostic's line or the line above suppresses it.
func (fm *FileMarkers) Allowed(analyzer string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, m := range fm.ByLine[l] {
			if m.Kind == KindAllow && m.Allow == analyzer {
				return true
			}
		}
	}
	return false
}

// Suppressed reports whether an rme:allow marker on the diagnostic's line
// or the line above suppresses a diagnostic of pass.Analyzer, and records
// the use through pass.UsedAllow so the driver can audit markers that no
// longer suppress anything. Analyzers should call this instead of Allowed.
func Suppressed(pass *analysis.Pass, file *ast.File, fm *FileMarkers, line int) bool {
	name := pass.Analyzer.Name
	for _, l := range []int{line, line - 1} {
		for _, m := range fm.ByLine[l] {
			if m.Kind == KindAllow && m.Allow == name {
				if pass.UsedAllow != nil {
					pass.UsedAllow(pass.Fset.File(file.Pos()).Name(), l, name)
				}
				return true
			}
		}
	}
	return false
}

// PortOps tallies the memory.Port calls syntactically contained in a
// node, using cfg.Inspect's traversal convention (function literal bodies
// and range bodies excluded), so it composes with CFG block nodes.
type PortOps struct {
	Reads  int
	Writes int
	RMWs   int
	Pauses int
}

// PortOpsIn classifies every Port call under n.
func PortOpsIn(info *types.Info, n ast.Node) PortOps {
	var ops PortOps
	cfg.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := PortCall(info, call); ok && recv == "Port" {
			switch method {
			case "Read":
				ops.Reads++
			case "Write":
				ops.Writes++
			case "FAS", "CAS":
				ops.RMWs++
			case "Pause":
				ops.Pauses++
			}
		}
		return true
	})
	return ops
}

// HasRMWLoop reports whether an rme:rmw-loop(<why>) marker sits on the
// given line or the line above (the same attachment rule as rme:allow).
func (fm *FileMarkers) HasRMWLoop(line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, m := range fm.ByLine[l] {
			if m.Kind == KindRMWLoop {
				return true
			}
		}
	}
	return false
}

// AttachedTo reports the marker of kind KindSensitive or KindNonsensitive
// attached to the given line: on the line itself, or — unless the line
// above holds its own RMW, to which an inline marker there belongs — on
// the line above. lineTaken reports whether a line holds an RMW.
func (fm *FileMarkers) AttachedTo(line int, lineTaken func(int) bool) (Marker, bool) {
	for _, m := range fm.ByLine[line] {
		if m.Kind == KindSensitive || m.Kind == KindNonsensitive {
			return m, true
		}
	}
	if !lineTaken(line - 1) {
		for _, m := range fm.ByLine[line-1] {
			if m.Kind == KindSensitive || m.Kind == KindNonsensitive {
				return m, true
			}
		}
	}
	return Marker{}, false
}

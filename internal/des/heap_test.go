package des

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapOrder pushes a random permutation of timestamps and checks pops
// come out sorted.
func TestHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q eventQueue
	var want []int64
	for i := 0; i < 500; i++ {
		at := rng.Int63n(1_000_000)
		q.push(at, evCrash, i)
		want = append(want, at)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		ev := q.pop()
		if ev.at != w {
			t.Fatalf("pop %d: at=%d, want %d", i, ev.at, w)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not drained: %d left", q.len())
	}
}

// TestHeapFIFOTies checks equal timestamps pop in insertion order.
func TestHeapFIFOTies(t *testing.T) {
	var q eventQueue
	for pid := 0; pid < 20; pid++ {
		q.push(100, evSlowOn, pid)
	}
	for pid := 0; pid < 20; pid++ {
		if ev := q.pop(); ev.pid != pid {
			t.Fatalf("tie order broken: got pid %d, want %d", ev.pid, pid)
		}
	}
}

func TestHeapPeek(t *testing.T) {
	var q eventQueue
	if _, ok := q.peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
	q.push(5, evCrash, -1)
	q.push(3, evCrash, -1)
	if ev, ok := q.peek(); !ok || ev.at != 3 {
		t.Fatalf("peek = %+v, %v", ev, ok)
	}
	if q.len() != 2 {
		t.Fatalf("peek consumed an event: len=%d", q.len())
	}
}

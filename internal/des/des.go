// Package des is a virtual-time discrete-event traffic simulator layered
// on the lockstep runner of internal/sim.
//
// The lockstep simulator certifies correctness: it counts RMRs exactly and
// can place a crash at any instruction boundary, but it has no notion of
// time — every instruction is one logical tick, so it cannot answer the
// production questions ("what is p99 passage latency at this request rate
// with bursty arrivals?"). This package adds the time domain without
// giving up determinism:
//
//   - Every process carries a virtual clock (nanoseconds). The engine is a
//     sim.Scheduler: because the lockstep runner parks every live process
//     before each grant, picking the minimum-clock process is an exact
//     discrete-event simulation — virtual time never runs backwards.
//   - A LatencyModel charges each executed shared-memory instruction to
//     the clock of the process that ran it, using the arena's exact RMR
//     accounting (CC or DSM): local/cached operations are cheap, remote
//     memory references are expensive, and each RMR pays an additional
//     contention penalty per concurrent in-passage process.
//   - Environment events — crash storms, uniform crash schedules,
//     straggler on/off phases — live on a binary-heap event queue ordered
//     by virtual time and fire when the clock passes them. (Process wakes
//     do not use the heap: all live processes are parked at every grant,
//     so a linear arg-min over n is exactly equivalent and cheaper than
//     rebuilding a heap whose keys all change each round.)
//   - Workload generators shape traffic: Poisson arrivals, MMPP-style
//     on/off bursty arrivals, Zipf-distributed key access over an
//     rme.Map-shaped keyspace of locks, think-time phases, correlated
//     crash storms and slow-process stragglers.
//
// Everything is driven by seeded deterministic RNGs that are consumed in
// scheduler order, so the same Config produces a bit-identical event
// trace — the determinism the repro subsystem relies on elsewhere holds
// here too, and is pinned by tests.
package des

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/workload"
)

// Config parameterizes one virtual-time run.
type Config struct {
	// Lock is the workload-registry name of the lock under test.
	Lock string
	// N is the number of processes.
	N int
	// Model selects CC or DSM accounting (default CC).
	Model memory.Model
	// Requests is the number of satisfied requests per process.
	Requests int
	// Seed drives every random stream of the run.
	Seed int64
	// Keys selects the keyspace shape: values > 1 interpose a Zipf-keyed
	// composite of Keys independent lock instances (the rme.Map shape);
	// 0 or 1 runs a single lock with no keyspace overhead.
	Keys int
	// ZipfS is the Zipf skew parameter s > 1 for keyed runs (default 1.1).
	ZipfS float64
	// Arrival shapes request arrivals (think times). The zero value is a
	// Poisson process at DefaultArrivalRate.
	Arrival Arrival
	// Latency maps operations to virtual nanoseconds. Zero fields take
	// DefaultLatency values.
	Latency LatencyModel
	// Crashes schedules failures in virtual time (default none).
	Crashes Crashes
	// Aborts arms a per-passage deadline after which the waiter backs out
	// via the lock's abort protocol (default none). Requires a lock whose
	// recipe supports abortable passages.
	Aborts Aborts
	// Stragglers slows a subset of processes (default none).
	Stragglers Stragglers
	// HoldNs is virtual work performed inside the critical section, on top
	// of the instruction costs (default 500ns).
	HoldNs int64
	// CSOps is the number of (local) scratch reads in the CS (default 1).
	CSOps int
	// MaxSteps bounds the underlying lockstep run (default 50M grants).
	MaxSteps int64
	// RecordTrace keeps the full event trace in the result (tests only;
	// the rolling TraceHash is always computed).
	RecordTrace bool
}

func (c *Config) fill() error {
	if c.Lock == "" {
		c.Lock = "ba-pool"
	}
	if c.N < 1 {
		return fmt.Errorf("des: N = %d, want ≥ 1", c.N)
	}
	if c.Model == 0 {
		c.Model = memory.CC
	}
	if c.Requests < 1 {
		return fmt.Errorf("des: Requests = %d, want ≥ 1", c.Requests)
	}
	if c.Keys < 0 {
		return fmt.Errorf("des: Keys = %d, want ≥ 0", c.Keys)
	}
	if c.Keys > 1 && c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.Keys > 1 && c.ZipfS <= 1 {
		return fmt.Errorf("des: ZipfS = %v, want > 1", c.ZipfS)
	}
	c.Arrival.fill()
	c.Latency.fill()
	if err := c.Crashes.fill(); err != nil {
		return err
	}
	if err := c.Aborts.check(); err != nil {
		return err
	}
	if err := c.Stragglers.check(c.N); err != nil {
		return err
	}
	if c.HoldNs == 0 {
		c.HoldNs = 500
	}
	if c.HoldNs < 0 {
		return fmt.Errorf("des: HoldNs = %d, want ≥ 0", c.HoldNs)
	}
	if c.CSOps == 0 {
		c.CSOps = 1
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 50_000_000
	}
	return nil
}

// Run executes one virtual-time simulation to completion and returns the
// collected traffic statistics. The underlying lockstep result is
// embedded so callers can run the usual property checks against it.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	spec, err := workload.Lookup(cfg.Lock)
	if err != nil {
		return nil, err
	}

	eng := newEngine(cfg)
	factory := spec.New
	var ks *Keyspace
	if cfg.Keys > 1 {
		factory = func(sp memory.Space, n int) sim.Lock {
			ks = NewKeyspace(sp, n, cfg.Keys, cfg.ZipfS, cfg.Seed, spec.New)
			return ks
		}
	}

	simCfg := sim.Config{
		N:        cfg.N,
		Model:    cfg.Model,
		Requests: cfg.Requests,
		Seed:     cfg.Seed,
		Sched:    eng,
		Plan:     eng,
		CSOps:    cfg.CSOps,
		MaxSteps: cfg.MaxSteps,
		OnEvent:  eng.onEvent,
	}
	r, err := sim.New(simCfg, factory)
	if err != nil {
		return nil, err
	}
	if cfg.Aborts.DeadlineNs > 0 && ks != nil && !ks.Abortable() {
		// The Keyspace facade always satisfies sim.Aborter, so the runner
		// would deliver aborts that the inner recipe cannot back out of.
		return nil, fmt.Errorf("des: %s does not support abortable passages", cfg.Lock)
	}
	eng.attach(r.Arena(), ks)
	res, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("des: %s n=%d seed=%d: %w", cfg.Lock, cfg.N, cfg.Seed, err)
	}
	return eng.finish(res), nil
}

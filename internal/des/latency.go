package des

// LatencyModel maps the simulator's exact operation accounting onto
// virtual nanoseconds. The arena already decides, per instruction and
// per memory model (CC/DSM), whether the operation was a remote memory
// reference; the model only prices the two classes and adds a contention
// penalty — under real cache coherence an RMR gets more expensive as more
// processors fight over the same lines (bus arbitration, invalidation
// storms), which is exactly the effect that bends a latency-vs-load curve
// into its knee.
type LatencyModel struct {
	// LocalNs is the cost of a local operation: a cached read under CC, a
	// home-module access under DSM, or any private-state instruction.
	LocalNs int64
	// RemoteNs is the base cost of one remote memory reference.
	RemoteNs int64
	// ContentionNs is the additional cost per RMR per *other* process
	// concurrently inside a passage (the coherence-traffic penalty).
	ContentionNs int64
}

// Default virtual-time prices. The absolute values are loosely modeled on
// a contemporary multi-socket cache hierarchy (a handful of ns for a hit,
// tens of ns for a coherence miss); only their ratios matter for the
// shape of the latency trajectory.
const (
	DefaultLocalNs      = 2
	DefaultRemoteNs     = 60
	DefaultContentionNs = 20
)

func (m *LatencyModel) fill() {
	if m.LocalNs == 0 {
		m.LocalNs = DefaultLocalNs
	}
	if m.RemoteNs == 0 {
		m.RemoteNs = DefaultRemoteNs
	}
	if m.ContentionNs == 0 {
		m.ContentionNs = DefaultContentionNs
	}
}

// cost prices a batch of executed instructions: rmrs of them were remote
// memory references, ops-rmrs were local, and contenders processes
// (including the one being charged) were inside a passage at charge time.
// slow is the straggler multiplier (1 for healthy processes).
func (m LatencyModel) cost(rmrs, ops int64, contenders int, slow int64) int64 {
	local := ops - rmrs
	if local < 0 {
		local = 0
	}
	c := rmrs*m.RemoteNs + local*m.LocalNs
	if extra := int64(contenders - 1); extra > 0 {
		c += rmrs * m.ContentionNs * extra
	}
	return c * slow
}

package des

import (
	"math/rand"

	"rme/internal/memory"
	"rme/internal/metrics"
	"rme/internal/sim"
)

// engine is the discrete-event core: it is both the sim.Scheduler (grant
// the minimum-virtual-clock process) and the sim.FailurePlan (fire the
// crashes the event queue scheduled) of one run, and it observes every
// lifecycle event to charge think times, critical-section hold times and
// crash outages to the per-process clocks.
type engine struct {
	cfg   Config
	arena *memory.Arena
	ks    *Keyspace
	rng   *rand.Rand
	burst *burstClock
	queue eventQueue

	now  int64
	wake []int64
	// lastRMR/lastOps are the arena counters at each process's previous
	// grant; the deltas observed at the next grant are the instructions
	// the process executed in between, priced by the latency model.
	lastRMR []int64
	lastOps []int64
	slow    []int64

	inPassage    []bool
	retryPending []bool
	pendingCrash []bool
	// abortAt[pid] is the virtual deadline of the passage in flight
	// (0 = unarmed); armed at passage start when Config.Aborts is set,
	// disarmed once the CS is reached (the lock is held — deadlines only
	// cancel waiting).
	abortAt      []int64
	level        []int
	passStart    []int64
	reqStart     []int64
	contenders   int
	crashesFired int

	// Per-key critical-section occupancy. The lockstep runner's global
	// MaxCSOverlap is the wrong invariant for a keyed run — passages on
	// distinct keys overlap by design — so the engine re-derives mutual
	// exclusion per key from lifecycle events and the routing mirror.
	inCS     []bool
	csKey    []int
	keyCS    []int
	maxKeyCS int

	stats collector
}

func newEngine(cfg Config) *engine {
	e := &engine{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed ^ 0x6d657267)),
		wake:         make([]int64, cfg.N),
		lastRMR:      make([]int64, cfg.N),
		lastOps:      make([]int64, cfg.N),
		slow:         make([]int64, cfg.N),
		inPassage:    make([]bool, cfg.N),
		retryPending: make([]bool, cfg.N),
		pendingCrash: make([]bool, cfg.N),
		abortAt:      make([]int64, cfg.N),
		level:        make([]int, cfg.N),
		passStart:    make([]int64, cfg.N),
		reqStart:     make([]int64, cfg.N),
		inCS:         make([]bool, cfg.N),
		csKey:        make([]int, cfg.N),
	}
	keys := cfg.Keys
	if keys < 1 {
		keys = 1
	}
	e.keyCS = make([]int, keys)
	for pid := range e.slow {
		e.slow[pid] = 1
	}
	if cfg.Arrival.Kind == Bursty {
		e.burst = newBurstClock(cfg.Arrival, e.rng)
	}
	cfg.Crashes.schedule(&e.queue, e.rng)
	cfg.Stragglers.schedule(&e.queue, cfg.N)
	e.stats.init(cfg)
	return e
}

// attach wires the engine to the run's arena (for exact RMR deltas) and
// keyspace (for per-key accounting). Must be called before Run.
func (e *engine) attach(a *memory.Arena, ks *Keyspace) {
	e.arena = a
	e.ks = ks
}

// charge prices every instruction executed since each ready process's
// previous grant. All live processes are parked at every grant, so no
// executed instruction is ever missed — the lag is at most one grant.
func (e *engine) charge(ready []int) {
	for _, pid := range ready {
		dR := e.arena.RMRs(pid) - e.lastRMR[pid]
		dO := e.arena.Ops(pid) - e.lastOps[pid]
		if dO == 0 && dR == 0 {
			continue
		}
		e.lastRMR[pid] += dR
		e.lastOps[pid] += dO
		e.wake[pid] += e.cfg.Latency.cost(dR, dO, e.contenders, e.slow[pid])
	}
}

// environment fires every scheduled event whose time has been reached by
// the earliest ready clock — the point virtual time is about to advance
// to.
func (e *engine) environment(t int64) {
	for {
		ev, ok := e.queue.peek()
		if !ok || ev.at > t {
			return
		}
		e.queue.pop()
		switch ev.kind {
		case evCrash:
			e.fireCrash()
		case evSlowOn:
			e.slow[ev.pid] = e.cfg.Stragglers.Factor
			if e.cfg.Stragglers.OnNs > 0 {
				e.queue.push(ev.at+expNs(e.rng, float64(e.cfg.Stragglers.OnNs)), evSlowOff, ev.pid)
			}
		case evSlowOff:
			e.slow[ev.pid] = 1
			e.queue.push(ev.at+expNs(e.rng, float64(e.cfg.Stragglers.OffNs)), evSlowOn, ev.pid)
		}
	}
}

// fireCrash picks a victim — preferring processes inside a passage, where
// a failure actually damages shared state — and arms it to crash at its
// next instruction boundary.
func (e *engine) fireCrash() {
	candidates := make([]int, 0, e.cfg.N)
	for pid := 0; pid < e.cfg.N; pid++ {
		if e.inPassage[pid] && !e.pendingCrash[pid] {
			candidates = append(candidates, pid)
		}
	}
	if len(candidates) == 0 {
		for pid := 0; pid < e.cfg.N; pid++ {
			if !e.pendingCrash[pid] {
				candidates = append(candidates, pid)
			}
		}
	}
	if len(candidates) == 0 {
		return
	}
	e.pendingCrash[candidates[e.rng.Intn(len(candidates))]] = true
}

// Pick implements sim.Scheduler: price executed work, fire due
// environment events, then grant the process with the smallest virtual
// clock (ties to the lowest pid). Because the granted clock is the
// minimum and clocks only grow, virtual time is monotone.
func (e *engine) Pick(_ *rand.Rand, ready []int) int {
	e.charge(ready)
	best := ready[0]
	for _, pid := range ready[1:] {
		if e.wake[pid] < e.wake[best] {
			best = pid
		}
	}
	e.environment(e.wake[best])
	// Environment events never move clocks, so best still holds the
	// minimum; pendingCrash decisions made above apply from this grant on.
	if e.wake[best] > e.now {
		e.now = e.wake[best]
	}
	return best
}

// Crash implements sim.FailurePlan: a process armed by the event queue
// fails at its next instruction boundary.
func (e *engine) Crash(ctx sim.StepCtx) bool {
	if !ctx.IsOp || !e.pendingCrash[ctx.PID] {
		return false
	}
	e.pendingCrash[ctx.PID] = false
	e.crashesFired++
	return true
}

// Abort implements sim.AbortPlanner: a waiter whose virtual clock has
// passed its passage deadline backs out at its next instruction boundary.
// The runner's own gating (waiting inside Recover/Enter of an abortable
// lock, not in the CS, not exiting, not already backing out) handles the
// rest; the back-out protocol's instructions are priced like any others.
func (e *engine) Abort(ctx sim.StepCtx) bool {
	if !ctx.IsOp {
		return false
	}
	at := e.abortAt[ctx.PID]
	return at != 0 && e.wake[ctx.PID] >= at
}

// Observe implements sim.FailurePlan: it folds every executed instruction
// into the determinism trace hash and reconstructs the BA-Lock level the
// passage is committed to, exactly as the native metrics recorder does
// from the same labels.
func (e *engine) Observe(ctx sim.StepCtx) {
	if !ctx.IsOp {
		return
	}
	e.stats.hashOp(ctx.PID, ctx.OpIndex, byte(ctx.Op.Kind), uint32(ctx.Op.Addr), e.wake[ctx.PID])
	if lvl := metrics.SlowLevel(ctx.Op.Label); lvl > e.level[ctx.PID] {
		e.level[ctx.PID] = lvl
	}
}

// key returns pid's current key (0 on single-lock runs).
func (e *engine) key(pid int) int {
	if e.ks == nil {
		return 0
	}
	return e.ks.LastKey(pid)
}

// onEvent is the sim.Config.OnEvent hook: lifecycle boundaries are where
// workload time (arrivals, holds, outages) enters the clocks and where
// the collector closes latency samples. The event is stamped with the
// clock as granted — additions the event itself causes (think time, CS
// hold, crash outage) take effect after it, keeping the trace
// time-ordered.
func (e *engine) onEvent(ev sim.Event, _ *memory.Arena) {
	pid := ev.PID
	at := e.wake[pid]
	e.stats.event(ev.Kind, pid, at, e.cfg.RecordTrace)
	switch ev.Kind {
	case sim.EvNCS:
		if e.retryPending[pid] {
			// The pending request survived the crash; the process retries
			// as soon as it is back up — no new arrival is drawn.
			e.retryPending[pid] = false
		} else {
			e.wake[pid] += e.cfg.Arrival.thinkNs(at, e.rng, e.burst)
		}
	case sim.EvRequest:
		e.reqStart[pid] = at
	case sim.EvPassageStart:
		e.inPassage[pid] = true
		e.contenders++
		e.level[pid] = 1
		e.passStart[pid] = at
		if e.cfg.Aborts.DeadlineNs > 0 {
			e.abortAt[pid] = at + e.cfg.Aborts.DeadlineNs
		}
	case sim.EvCSEnter:
		e.abortAt[pid] = 0
		k := e.key(pid)
		e.inCS[pid] = true
		e.csKey[pid] = k
		e.keyCS[k]++
		if e.keyCS[k] > e.maxKeyCS {
			e.maxKeyCS = e.keyCS[k]
		}
		e.wake[pid] += e.cfg.HoldNs
	case sim.EvCSExit:
		e.inCS[pid] = false
		e.keyCS[e.csKey[pid]]--
	case sim.EvPassageEnd:
		e.contenders--
		e.inPassage[pid] = false
		e.abortAt[pid] = 0
		e.stats.passage(at-e.passStart[pid], e.level[pid], e.key(pid))
	case sim.EvAborted:
		// Back-out complete: the deadline fired, the waiter left its queue
		// position crash-safely and returns to NCS. The retried request is
		// a fresh arrival (no retryPending), modelling timeout + backoff.
		e.contenders--
		e.inPassage[pid] = false
		e.abortAt[pid] = 0
		e.stats.abortedPassages++
	case sim.EvCrash:
		e.abortAt[pid] = 0
		if e.inPassage[pid] {
			e.contenders--
			e.inPassage[pid] = false
		}
		if e.inCS[pid] {
			// The victim died inside its CS; the key is free again once
			// recovery repairs it.
			e.inCS[pid] = false
			e.keyCS[e.csKey[pid]]--
		}
		e.stats.crashedPassages++
		e.wake[pid] += e.cfg.Crashes.DownNs
		e.retryPending[pid] = true
	case sim.EvSatisfied:
		e.stats.request(at - e.reqStart[pid])
	}
}

// finish assembles the Result once the lockstep run has returned.
func (e *engine) finish(res *sim.Result) *Result {
	r := e.stats.result(e.cfg, res, e.now)
	r.MaxKeyCSOverlap = e.maxKeyCS
	return r
}

package des

// evKind identifies an environment event on the virtual-time queue.
type evKind uint8

const (
	// evCrash schedules one failure: the victim (chosen at fire time when
	// PID < 0) crashes at its next instruction boundary.
	evCrash evKind = iota + 1
	// evSlowOn / evSlowOff toggle a straggler's slow phase.
	evSlowOn
	evSlowOff
)

// envEvent is one scheduled environment event. Seq breaks ties between
// equal timestamps in FIFO order so the queue is fully deterministic.
type envEvent struct {
	at   int64
	seq  uint64
	kind evKind
	pid  int
}

// eventQueue is a binary min-heap of environment events ordered by
// (virtual time, insertion order). It is the event queue of the
// discrete-event engine; process wake-ups deliberately do not live here
// (see the package comment).
type eventQueue struct {
	items []envEvent
	seq   uint64
}

func (q *eventQueue) less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

// push schedules an event at virtual time `at`.
func (q *eventQueue) push(at int64, kind evKind, pid int) {
	q.items = append(q.items, envEvent{at: at, seq: q.seq, kind: kind, pid: pid})
	q.seq++
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// peek returns the earliest event without removing it.
func (q *eventQueue) peek() (envEvent, bool) {
	if len(q.items) == 0 {
		return envEvent{}, false
	}
	return q.items[0], true
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() envEvent {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.items) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}

// len reports the number of pending events.
func (q *eventQueue) len() int { return len(q.items) }

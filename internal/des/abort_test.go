package des

import (
	"strings"
	"testing"

	"rme/internal/check"
	"rme/internal/workload"
)

// TestAbortIdentity drives deadline-abort traffic through the engine and
// asserts the accounting identity the abort CI gate pins on the native
// path — Attempts == Passages + Aborted + CrashedAttempts — holds under
// virtual time too, with aborts actually delivered.
func TestAbortIdentity(t *testing.T) {
	cfg := Config{
		Lock:     "ba-pool",
		N:        6,
		Requests: 30,
		Seed:     7,
		Arrival:  Arrival{Kind: Poisson, Rate: 1_000_000},
		Aborts:   Aborts{DeadlineNs: 20_000},
	}
	res := mustRun(t, cfg)
	if err := check.Strong(res.Sim, 1<<20); err != nil {
		t.Fatalf("property check under abort traffic: %v", err)
	}
	if res.AbortedPassages == 0 {
		t.Fatal("deadline regime delivered no aborts; deadline or rate mistuned")
	}
	spec, err := workload.Lookup(cfg.Lock)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Sim.MetricsSnapshot(spec.Levels(cfg.N))
	if got := int(snap.Aborted); got != res.AbortedPassages {
		t.Fatalf("collector counted %d aborted passages, snapshot %d", res.AbortedPassages, got)
	}
	if snap.Attempts != snap.Passages+snap.Aborted+snap.CrashedAttempts {
		t.Fatalf("identity broken: attempts=%d passages=%d aborted=%d crashed=%d",
			snap.Attempts, snap.Passages, snap.Aborted, snap.CrashedAttempts)
	}
	// Every process still gets every request satisfied: aborts retry.
	if want := cfg.N * cfg.Requests; res.Request.Count != want {
		t.Fatalf("%d satisfied requests, want %d", res.Request.Count, want)
	}
	// Deadline-abort runs stay deterministic.
	again := mustRun(t, cfg)
	if again.TraceHash != res.TraceHash || again.AbortedPassages != res.AbortedPassages {
		t.Fatalf("abort run not deterministic: %x/%d vs %x/%d",
			res.TraceHash, res.AbortedPassages, again.TraceHash, again.AbortedPassages)
	}
}

// TestAbortWithCrashes mixes deadline aborts with a uniform crash
// schedule: the identity must still balance when both failure modes close
// attempts.
func TestAbortWithCrashes(t *testing.T) {
	cfg := Config{
		Lock:     "ba-pool",
		N:        5,
		Requests: 25,
		Seed:     11,
		Arrival:  Arrival{Kind: Poisson, Rate: 800_000},
		Aborts:   Aborts{DeadlineNs: 25_000},
		Crashes:  Crashes{Kind: Uniform, Budget: 8, MeanGapNs: 20_000},
	}
	res := mustRun(t, cfg)
	if err := check.Weak(res.Sim); err != nil {
		t.Fatalf("property check: %v", err)
	}
	spec, err := workload.Lookup(cfg.Lock)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Sim.MetricsSnapshot(spec.Levels(cfg.N))
	if snap.Attempts != snap.Passages+snap.Aborted+snap.CrashedAttempts {
		t.Fatalf("identity broken: attempts=%d passages=%d aborted=%d crashed=%d",
			snap.Attempts, snap.Passages, snap.Aborted, snap.CrashedAttempts)
	}
	if res.Crashes == 0 {
		t.Fatal("crash schedule fired nothing")
	}
}

// TestAbortKeyed runs deadline aborts over a Zipf keyspace: the Keyspace
// facade forwards the back-out to the pinned key's lock and clears the
// pin, so mutual exclusion per key survives abort traffic.
func TestAbortKeyed(t *testing.T) {
	cfg := Config{
		Lock:     "ba-pool",
		N:        6,
		Requests: 20,
		Seed:     3,
		Keys:     2,
		ZipfS:    2.5,
		Arrival:  Arrival{Kind: Poisson, Rate: 1_000_000},
		Aborts:   Aborts{DeadlineNs: 10_000},
	}
	res := mustRun(t, cfg)
	if res.MaxKeyCSOverlap > 1 {
		t.Fatalf("per-key CS overlap %d under abort traffic", res.MaxKeyCSOverlap)
	}
	if res.AbortedPassages == 0 {
		t.Fatal("keyed deadline regime delivered no aborts")
	}
	if want := cfg.N * cfg.Requests; res.Request.Count != want {
		t.Fatalf("%d satisfied requests, want %d", res.Request.Count, want)
	}
}

// TestAbortValidation: negative deadlines are rejected, and abort traffic
// over a keyspace whose recipe cannot back out is refused rather than
// silently corrupting queue state.
func TestAbortValidation(t *testing.T) {
	_, err := Run(Config{Lock: "ba-pool", N: 2, Requests: 1,
		Aborts: Aborts{DeadlineNs: -1}})
	if err == nil || !strings.Contains(err.Error(), "abort deadline") {
		t.Fatalf("negative deadline accepted: %v", err)
	}
	// mcs implements no abort protocol; a keyed run must refuse the knob.
	_, err = Run(Config{Lock: "mcs", N: 2, Requests: 1, Keys: 4,
		Arrival: Arrival{Kind: Poisson, Rate: 100_000},
		Aborts:  Aborts{DeadlineNs: 10_000}})
	if err == nil || !strings.Contains(err.Error(), "abortable") {
		t.Fatalf("non-abortable keyed run accepted: %v", err)
	}
}

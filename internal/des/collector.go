package des

import (
	"sort"

	"rme/internal/sim"
)

// LatencySummary condenses a latency distribution in virtual nanoseconds.
type LatencySummary struct {
	Count  int
	MeanNs float64
	P50Ns  int64
	P90Ns  int64
	P99Ns  int64
	MaxNs  int64
}

// KeyStats aggregates the traffic one key of a keyed run received.
type KeyStats struct {
	Key      int
	Passages int
	MeanNs   float64
}

// TraceEntry is one lifecycle event of the virtual-time trace (recorded
// only with Config.RecordTrace; the rolling TraceHash always covers the
// full trace including every instruction).
type TraceEntry struct {
	AtNs int64
	PID  int
	Kind sim.EventKind
}

// Result is the outcome of one virtual-time run.
type Result struct {
	// Sim is the underlying lockstep result; the usual property checks
	// (check.Strong, check.Weak) apply to it unchanged.
	Sim *sim.Result
	// VirtualNs is the virtual time of the last grant.
	VirtualNs int64
	// Passages counts completed (failure-free or post-crash) passages;
	// CrashedPassages counts passages cut short by a failure;
	// AbortedPassages counts passages whose deadline fired while waiting
	// (the waiter backed out and retried as a fresh arrival).
	Passages        int
	CrashedPassages int
	AbortedPassages int
	// Crashes is the number of failures actually delivered.
	Crashes int
	// ThroughputPerSec is completed passages per virtual second.
	ThroughputPerSec float64
	// Passage and Request summarize passage latency (passage-start to
	// passage-end) and request latency (request to satisfied, spanning
	// crash retries).
	Passage LatencySummary
	Request LatencySummary
	// RMRMedian is the median RMR count over failure-free passages — the
	// quantity the paper bounds and BENCH_metrics.json anchors.
	RMRMedian int64
	// LevelHist[i] counts passages that committed at BA level i+1;
	// LevelNs[i] is the virtual time those passages spent in flight
	// (per-level occupancy).
	LevelHist []int64
	LevelNs   []int64
	// MaxLevel is the deepest BA level any passage committed to.
	MaxLevel int
	// MaxKeyCSOverlap is the maximum number of processes simultaneously
	// inside the critical section of any single key. Mutual exclusion —
	// per key on keyed runs, globally otherwise — demands it stays 1.
	MaxKeyCSOverlap int
	// PerKey aggregates keyed runs (nil for single-lock runs), ordered by
	// key rank — rank 0 is the Zipf-hottest key.
	PerKey []KeyStats
	// TraceHash is an FNV-1a digest of the full event trace (every
	// lifecycle event and every instruction, with its virtual timestamp);
	// two runs of the same Config produce the same hash.
	TraceHash uint64
	// Trace holds the lifecycle trace when Config.RecordTrace is set.
	Trace []TraceEntry
}

// collector accumulates samples during the run and folds the trace hash.
type collector struct {
	passNs          []int64
	reqNs           []int64
	levelHist       []int64
	levelNs         []int64
	crashedPassages int
	abortedPassages int
	keyCount        []int
	keySumNs        []int64
	hash            uint64
	trace           []TraceEntry
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (c *collector) init(cfg Config) {
	c.hash = fnvOffset
	if cfg.Keys > 1 {
		c.keyCount = make([]int, cfg.Keys)
		c.keySumNs = make([]int64, cfg.Keys)
	}
}

func (c *collector) fold(b byte) {
	c.hash = (c.hash ^ uint64(b)) * fnvPrime
}

func (c *collector) fold64(v uint64) {
	for i := 0; i < 8; i++ {
		c.fold(byte(v >> (8 * i)))
	}
}

// hashOp folds one executed instruction into the trace hash.
func (c *collector) hashOp(pid int, opIndex int64, kind byte, addr uint32, at int64) {
	c.fold(kind)
	c.fold64(uint64(pid))
	c.fold64(uint64(opIndex))
	c.fold64(uint64(addr))
	c.fold64(uint64(at))
}

// event folds one lifecycle event into the trace hash and optionally
// records it.
func (c *collector) event(kind sim.EventKind, pid int, at int64, record bool) {
	c.fold(byte(kind))
	c.fold64(uint64(pid))
	c.fold64(uint64(at))
	if record {
		c.trace = append(c.trace, TraceEntry{AtNs: at, PID: pid, Kind: kind})
	}
}

// passage records one completed passage.
func (c *collector) passage(durNs int64, level, key int) {
	c.passNs = append(c.passNs, durNs)
	for len(c.levelHist) < level {
		c.levelHist = append(c.levelHist, 0)
		c.levelNs = append(c.levelNs, 0)
	}
	if level >= 1 {
		c.levelHist[level-1]++
		c.levelNs[level-1] += durNs
	}
	if c.keyCount != nil {
		c.keyCount[key]++
		c.keySumNs[key] += durNs
	}
}

// request records one satisfied request.
func (c *collector) request(durNs int64) {
	c.reqNs = append(c.reqNs, durNs)
}

// summarize computes nearest-rank percentiles over a sample set.
func summarize(samples []int64) LatencySummary {
	s := LatencySummary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sum := int64(0)
	for _, v := range sorted {
		sum += v
	}
	s.MeanNs = float64(sum) / float64(len(sorted))
	s.P50Ns = percentile(sorted, 50)
	s.P90Ns = percentile(sorted, 90)
	s.P99Ns = percentile(sorted, 99)
	s.MaxNs = sorted[len(sorted)-1]
	return s
}

// percentile returns the nearest-rank p-th percentile of sorted samples.
func percentile(sorted []int64, p int) int64 {
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// result assembles the final Result.
func (c *collector) result(cfg Config, res *sim.Result, virtualNs int64) *Result {
	r := &Result{
		Sim:             res,
		VirtualNs:       virtualNs,
		Passages:        len(c.passNs),
		CrashedPassages: c.crashedPassages,
		AbortedPassages: c.abortedPassages,
		Crashes:         len(res.Crashes),
		Passage:         summarize(c.passNs),
		Request:         summarize(c.reqNs),
		LevelHist:       c.levelHist,
		LevelNs:         c.levelNs,
		MaxLevel:        len(c.levelHist),
		TraceHash:       c.hash,
		Trace:           c.trace,
	}
	if virtualNs > 0 {
		r.ThroughputPerSec = float64(r.Passages) / (float64(virtualNs) / 1e9)
	}
	var ff []int64
	for _, p := range res.Passages {
		if !p.Crashed && !p.Aborted {
			ff = append(ff, p.RMRs)
		}
	}
	if len(ff) > 0 {
		sort.Slice(ff, func(i, j int) bool { return ff[i] < ff[j] })
		r.RMRMedian = percentile(ff, 50)
	}
	if c.keyCount != nil {
		for k, n := range c.keyCount {
			if n == 0 {
				continue
			}
			r.PerKey = append(r.PerKey, KeyStats{
				Key:      k,
				Passages: n,
				MeanNs:   float64(c.keySumNs[k]) / float64(n),
			})
		}
	}
	return r
}

package des

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultArrivalRate is the per-process request rate (requests per
// virtual second) used when an Arrival is left zero.
const DefaultArrivalRate = 10_000

// ArrivalKind selects the arrival process shaping think times.
type ArrivalKind uint8

const (
	// Poisson arrivals: think times between a satisfied request and the
	// next are exponential with mean 1/Rate.
	Poisson ArrivalKind = iota + 1
	// Bursty arrivals: an MMPP-style on/off modulated Poisson process.
	// The system alternates between an "on" phase (rate Rate) and an
	// "off" phase (rate OffRate), with exponentially distributed phase
	// durations of means OnNs and OffNs. Storm-shaped workloads — a
	// quiet fleet that suddenly all wants the lock — live here.
	Bursty
)

// Arrival configures the request arrival process of every process.
type Arrival struct {
	Kind ArrivalKind
	// Rate is the per-process arrival rate (requests per virtual second)
	// of the Poisson process, or of the "on" phase when bursty.
	Rate float64
	// OffRate is the "off" phase arrival rate of the bursty process
	// (default Rate/50).
	OffRate float64
	// OnNs and OffNs are the mean phase durations of the bursty process
	// (defaults 200µs on, 800µs off).
	OnNs, OffNs int64
}

func (a *Arrival) fill() {
	if a.Kind == 0 {
		a.Kind = Poisson
	}
	if a.Rate == 0 {
		a.Rate = DefaultArrivalRate
	}
	if a.Kind == Bursty {
		if a.OffRate == 0 {
			a.OffRate = a.Rate / 50
		}
		if a.OnNs == 0 {
			a.OnNs = 200_000
		}
		if a.OffNs == 0 {
			a.OffNs = 800_000
		}
	}
}

// expNs draws an exponential duration with the given mean, in whole
// nanoseconds, never zero (virtual time must advance).
func expNs(rng *rand.Rand, meanNs float64) int64 {
	d := int64(rng.ExpFloat64() * meanNs)
	if d < 1 {
		d = 1
	}
	return d
}

// rateGapNs converts a per-second rate into a mean gap in nanoseconds.
func rateGapNs(rate float64) float64 { return 1e9 / rate }

// burstClock tracks the on/off phase of a bursty arrival process lazily:
// phases are advanced only when sampled, so the clock consumes randomness
// in a deterministic order without scheduling heap events.
type burstClock struct {
	on         bool
	nextToggle int64
	onNs       float64
	offNs      float64
}

func newBurstClock(a Arrival, rng *rand.Rand) *burstClock {
	b := &burstClock{on: true, onNs: float64(a.OnNs), offNs: float64(a.OffNs)}
	b.nextToggle = expNs(rng, b.onNs)
	return b
}

// phase reports whether the process is in its "on" phase at virtual time
// t, advancing through any phase boundaries passed since the last sample.
func (b *burstClock) phase(t int64, rng *rand.Rand) bool {
	for t >= b.nextToggle {
		b.on = !b.on
		if b.on {
			b.nextToggle += expNs(rng, b.onNs)
		} else {
			b.nextToggle += expNs(rng, b.offNs)
		}
	}
	return b.on
}

// thinkNs samples the think time before the next request arrival at
// virtual time t.
func (a Arrival) thinkNs(t int64, rng *rand.Rand, burst *burstClock) int64 {
	rate := a.Rate
	if a.Kind == Bursty && !burst.phase(t, rng) {
		rate = a.OffRate
	}
	return expNs(rng, rateGapNs(rate))
}

// Zipf samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^s via an inverted
// CDF, matching the popularity skew of the rme.Map benchmarks. A
// dedicated implementation (rather than math/rand.Zipf) keeps the
// rank-frequency law directly testable and the consumed randomness to one
// Float64 per sample.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with skew s > 1.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("des: zipf over %d ranks", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("des: zipf skew %v, want > 1", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}, nil
}

// Sample draws one rank.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CrashKind selects the failure regime.
type CrashKind uint8

const (
	// NoCrashes injects nothing.
	NoCrashes CrashKind = iota
	// Uniform spreads Budget crashes over virtual time with exponential
	// gaps of mean MeanGapNs.
	Uniform
	// Storm injects correlated crash storms: storm onsets arrive with
	// exponential gaps of mean StormGapNs, and each storm fells
	// StormSize victims within a StormSpanNs window — the batch-failure
	// regime where the paper's adaptive bound is stressed hardest.
	Storm
)

// Crashes schedules failures in virtual time. Victims are chosen at fire
// time, preferring processes currently inside a passage (a crash in NCS
// is indistinguishable from no crash), and crash at their next
// instruction boundary at or after the scheduled instant.
type Crashes struct {
	Kind CrashKind
	// Budget is the total number of crashes to schedule.
	Budget int
	// MeanGapNs is the mean gap between uniform crashes (default 500µs).
	MeanGapNs int64
	// StormGapNs is the mean gap between storm onsets (default 2ms).
	StormGapNs int64
	// StormSize is the number of victims per storm (default 4).
	StormSize int
	// StormSpanNs is the window over which one storm's victims fall
	// (default 20µs).
	StormSpanNs int64
	// DownNs is the outage before a crashed process restarts (default
	// 50µs). Without it a crashed process restarts instantly and repairs
	// its own damage before any survivor runs into it.
	DownNs int64
}

func (c *Crashes) fill() error {
	if c.Kind == NoCrashes {
		if c.Budget != 0 {
			return fmt.Errorf("des: crash budget %d with no crash kind", c.Budget)
		}
		return nil
	}
	if c.Budget < 1 {
		return fmt.Errorf("des: crash kind %d with budget %d, want ≥ 1", c.Kind, c.Budget)
	}
	if c.MeanGapNs == 0 {
		c.MeanGapNs = 500_000
	}
	if c.StormGapNs == 0 {
		c.StormGapNs = 2_000_000
	}
	if c.StormSize == 0 {
		c.StormSize = 4
	}
	if c.StormSpanNs == 0 {
		c.StormSpanNs = 20_000
	}
	if c.DownNs == 0 {
		c.DownNs = 50_000
	}
	return nil
}

// schedule pushes the whole crash plan onto the event queue up front, so
// the timeline is fixed by the seed before the first grant.
func (c Crashes) schedule(q *eventQueue, rng *rand.Rand) {
	switch c.Kind {
	case Uniform:
		t := int64(0)
		for i := 0; i < c.Budget; i++ {
			t += expNs(rng, float64(c.MeanGapNs))
			q.push(t, evCrash, -1)
		}
	case Storm:
		t := int64(0)
		scheduled := 0
		for scheduled < c.Budget {
			t += expNs(rng, float64(c.StormGapNs))
			for i := 0; i < c.StormSize && scheduled < c.Budget; i++ {
				at := t + rng.Int63n(c.StormSpanNs)
				q.push(at, evCrash, -1)
				scheduled++
			}
		}
	}
}

// Stragglers marks a subset of processes as slow: every instruction they
// execute costs Factor times more virtual time. With OnNs/OffNs set the
// slowness is intermittent (alternating exponential phases); otherwise it
// is permanent. The highest-numbered Count processes are the stragglers,
// which keeps the set deterministic and disjoint from the low pids most
// tests pin.
type Stragglers struct {
	Count  int
	Factor int64
	// OnNs and OffNs are mean slow/healthy phase durations; both zero
	// means permanently slow.
	OnNs, OffNs int64
}

func (s *Stragglers) check(n int) error {
	if s.Count == 0 {
		return nil
	}
	if s.Count < 0 || s.Count > n {
		return fmt.Errorf("des: %d stragglers over %d processes", s.Count, n)
	}
	if s.Factor < 2 {
		return fmt.Errorf("des: straggler factor %d, want ≥ 2", s.Factor)
	}
	if (s.OnNs == 0) != (s.OffNs == 0) {
		return fmt.Errorf("des: intermittent stragglers need both OnNs and OffNs")
	}
	return nil
}

// schedule pushes the first slow phase (and, for intermittent stragglers,
// nothing further — toggles reschedule themselves as they fire).
func (s Stragglers) schedule(q *eventQueue, n int) {
	for i := 0; i < s.Count; i++ {
		q.push(0, evSlowOn, n-1-i)
	}
}

// Aborts gives every passage a deadline in virtual time — the TryLockFor
// shape. A process still waiting DeadlineNs after its passage started
// backs out at its next instruction boundary via the lock's abort
// protocol and re-issues the request after a fresh think time (a client
// timeout with backoff: the retried attempt is a new arrival, not an
// immediate re-queue).
type Aborts struct {
	// DeadlineNs is the per-passage deadline (0 = aborts disabled).
	DeadlineNs int64
}

func (a *Aborts) check() error {
	if a.DeadlineNs < 0 {
		return fmt.Errorf("des: abort deadline %dns, want ≥ 0", a.DeadlineNs)
	}
	return nil
}

package des

import (
	"strings"
	"testing"

	"rme/internal/check"
	"rme/internal/memory"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

// TestDeterminism pins the core guarantee: the same Config produces a
// bit-identical event trace — same hash, same latency distribution, same
// timestamps — run after run. CI runs this under -race as well.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Lock:     "ba-pool",
		N:        6,
		Requests: 40,
		Seed:     42,
		Keys:     8,
		Arrival:  Arrival{Kind: Bursty, Rate: 200_000},
		Crashes:  Crashes{Kind: Storm, Budget: 12},
		Stragglers: Stragglers{
			Count: 1, Factor: 4, OnNs: 100_000, OffNs: 100_000,
		},
		RecordTrace: true,
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hash diverged: %x vs %x", a.TraceHash, b.TraceHash)
	}
	if a.VirtualNs != b.VirtualNs || a.Passages != b.Passages || a.Crashes != b.Crashes {
		t.Fatalf("result diverged: %+v vs %+v", a, b)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace length diverged: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace[%d] diverged: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	c := mustRun(t, withSeed(cfg, 43))
	if c.TraceHash == a.TraceHash {
		t.Fatalf("different seeds produced identical traces (hash %x)", a.TraceHash)
	}
}

func withSeed(cfg Config, seed int64) Config {
	cfg.Seed = seed
	return cfg
}

// TestTraceMonotone checks virtual time never runs backwards and the
// recorded trace is time-ordered.
func TestTraceMonotone(t *testing.T) {
	res := mustRun(t, Config{
		N: 4, Requests: 30, Seed: 7, RecordTrace: true,
		Arrival: Arrival{Rate: 500_000},
	})
	last := int64(-1)
	for i, e := range res.Trace {
		if e.AtNs < last {
			t.Fatalf("trace[%d] at %d before %d", i, e.AtNs, last)
		}
		last = e.AtNs
	}
	if res.VirtualNs < last {
		t.Fatalf("VirtualNs %d before last event %d", res.VirtualNs, last)
	}
}

// TestPercentilesMonotone checks p50 ≤ p90 ≤ p99 ≤ max on both latency
// summaries — the invariant the CI des-gate asserts on BENCH_des.json.
func TestPercentilesMonotone(t *testing.T) {
	res := mustRun(t, Config{
		N: 8, Requests: 50, Seed: 3,
		Arrival: Arrival{Rate: 100_000},
	})
	for _, s := range []LatencySummary{res.Passage, res.Request} {
		if s.Count == 0 {
			t.Fatal("empty latency summary")
		}
		if !(s.P50Ns <= s.P90Ns && s.P90Ns <= s.P99Ns && s.P99Ns <= s.MaxNs) {
			t.Fatalf("percentiles not monotone: %+v", s)
		}
		if s.MeanNs <= 0 {
			t.Fatalf("non-positive mean: %+v", s)
		}
	}
}

// TestContentionKnee checks the latency model produces the qualitative
// trajectory the experiment plots: p50 passage latency under saturation
// is well above the uncontended p50, and low-rate throughput tracks the
// offered load.
func TestContentionKnee(t *testing.T) {
	low := mustRun(t, Config{N: 8, Requests: 60, Seed: 5, Arrival: Arrival{Rate: 2_000}})
	high := mustRun(t, Config{N: 8, Requests: 60, Seed: 5, Arrival: Arrival{Rate: 1_000_000}})
	if high.Passage.P50Ns < 3*low.Passage.P50Ns {
		t.Fatalf("no contention knee: low p50=%d, saturated p50=%d",
			low.Passage.P50Ns, high.Passage.P50Ns)
	}
	// 8 processes at 2k req/s each offer 16k/s; a healthy system serves
	// within 20% of that.
	offered := 8.0 * 2_000
	if low.ThroughputPerSec < 0.8*offered || low.ThroughputPerSec > 1.2*offered {
		t.Fatalf("low-rate throughput %0.f/s far from offered %0.f/s",
			low.ThroughputPerSec, offered)
	}
}

// TestCrashRegimes runs the uniform and storm failure regimes and checks
// mutual exclusion plus accounting: every delivered crash is observed,
// and crashed passages are excluded from the failure-free RMR median.
func TestCrashRegimes(t *testing.T) {
	for _, kind := range []CrashKind{Uniform, Storm} {
		res := mustRun(t, Config{
			N: 8, Requests: 40, Seed: 11,
			Arrival: Arrival{Rate: 100_000},
			Crashes: Crashes{Kind: kind, Budget: 20, MeanGapNs: 50_000, StormGapNs: 200_000},
		})
		if err := check.Strong(res.Sim, 1<<20); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if res.Crashes == 0 {
			t.Fatalf("kind %d: no crashes delivered", kind)
		}
		if res.Crashes != res.CrashedPassages {
			t.Fatalf("kind %d: %d crashes but %d crashed passages",
				kind, res.Crashes, res.CrashedPassages)
		}
		if res.RMRMedian == 0 {
			t.Fatalf("kind %d: zero RMR median", kind)
		}
	}
}

// TestKeyedRun exercises the Zipf keyspace: strong mutual exclusion per
// key must hold through crash storms, per-key stats must cover every
// completed passage, and rank 0 must be the hottest key.
func TestKeyedRun(t *testing.T) {
	res := mustRun(t, Config{
		N: 8, Requests: 60, Seed: 13, Keys: 16, ZipfS: 1.2,
		Arrival: Arrival{Rate: 200_000},
		Crashes: Crashes{Kind: Storm, Budget: 16, StormGapNs: 300_000},
	})
	// The global CS-overlap invariant does not apply — passages on
	// distinct keys overlap by design — so mutual exclusion is asserted
	// per key.
	if res.MaxKeyCSOverlap != 1 {
		t.Fatalf("per-key CS overlap = %d, want 1", res.MaxKeyCSOverlap)
	}
	total := 0
	for _, k := range res.PerKey {
		total += k.Passages
	}
	if total != res.Passages {
		t.Fatalf("per-key passages sum %d != total %d", total, res.Passages)
	}
	hot := res.PerKey[0]
	if hot.Key != 0 {
		t.Fatalf("first per-key entry is rank %d, want 0", hot.Key)
	}
	for _, k := range res.PerKey[1:] {
		if k.Passages > hot.Passages {
			t.Fatalf("rank %d saw %d passages, more than rank 0's %d",
				k.Key, k.Passages, hot.Passages)
		}
	}
}

// TestStragglers checks that slowing a process stretches its passages:
// the straggler's mean passage latency must exceed the healthy mean.
func TestStragglers(t *testing.T) {
	base := mustRun(t, Config{N: 4, Requests: 50, Seed: 17, Arrival: Arrival{Rate: 50_000}})
	slow := mustRun(t, Config{
		N: 4, Requests: 50, Seed: 17,
		Arrival:    Arrival{Rate: 50_000},
		Stragglers: Stragglers{Count: 1, Factor: 8},
	})
	if slow.Passage.MaxNs <= base.Passage.MaxNs {
		t.Fatalf("straggler max %d not above baseline max %d",
			slow.Passage.MaxNs, base.Passage.MaxNs)
	}
	if slow.VirtualNs <= base.VirtualNs {
		t.Fatalf("straggler run finished no later (%d vs %d)", slow.VirtualNs, base.VirtualNs)
	}
}

// TestDSMModel runs the DSM accounting model end to end.
func TestDSMModel(t *testing.T) {
	res := mustRun(t, Config{
		N: 4, Model: memory.DSM, Requests: 30, Seed: 19,
		Arrival: Arrival{Rate: 100_000},
	})
	if err := check.Strong(res.Sim, 1<<20); err != nil {
		t.Fatal(err)
	}
	if res.Passages != 4*30 {
		t.Fatalf("passages = %d, want %d", res.Passages, 4*30)
	}
}

// TestLevelOccupancy checks the BA-level accounting: with no failures
// every passage commits at level 1, and the occupancy integrates every
// passage's duration.
func TestLevelOccupancy(t *testing.T) {
	res := mustRun(t, Config{N: 8, Requests: 40, Seed: 23, Arrival: Arrival{Rate: 300_000}})
	if res.MaxLevel != 1 {
		t.Fatalf("failure-free max level = %d, want 1", res.MaxLevel)
	}
	if res.LevelHist[0] != int64(res.Passages) {
		t.Fatalf("level-1 passages %d != total %d", res.LevelHist[0], res.Passages)
	}
	if res.LevelNs[0] <= 0 {
		t.Fatal("zero level-1 occupancy")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero N", Config{Requests: 1}, "N ="},
		{"zero requests", Config{N: 1}, "Requests ="},
		{"negative keys", Config{N: 1, Requests: 1, Keys: -1}, "Keys ="},
		{"bad zipf", Config{N: 1, Requests: 1, Keys: 4, ZipfS: 0.5}, "ZipfS"},
		{"bad hold", Config{N: 1, Requests: 1, HoldNs: -1}, "HoldNs"},
		{"budget without kind", Config{N: 1, Requests: 1, Crashes: Crashes{Budget: 3}}, "crash budget"},
		{"kind without budget", Config{N: 1, Requests: 1, Crashes: Crashes{Kind: Uniform}}, "budget"},
		{"too many stragglers", Config{N: 2, Requests: 1, Stragglers: Stragglers{Count: 3, Factor: 2}}, "stragglers"},
		{"weak straggler", Config{N: 2, Requests: 1, Stragglers: Stragglers{Count: 1, Factor: 1}}, "factor"},
		{"one-sided phases", Config{N: 2, Requests: 1, Stragglers: Stragglers{Count: 1, Factor: 2, OnNs: 5}}, "OnNs and OffNs"},
		{"unknown lock", Config{Lock: "no-such-lock", N: 1, Requests: 1}, "no-such-lock"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestDefaults checks the zero-value Config (plus the required fields)
// fills to a runnable simulation.
func TestDefaults(t *testing.T) {
	res := mustRun(t, Config{N: 2, Requests: 5})
	if res.Passages != 10 {
		t.Fatalf("passages = %d, want 10", res.Passages)
	}
	if res.RMRMedian == 0 || res.VirtualNs == 0 || res.ThroughputPerSec == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded without RecordTrace")
	}
	if res.PerKey != nil {
		t.Fatal("per-key stats on a single-lock run")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := summarize(nil)
	if s.Count != 0 || s.P99Ns != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

package des

import (
	"math/rand"

	"rme/internal/memory"
	"rme/internal/sim"
)

// Keyspace is an rme.Map-shaped composite lock: Keys independent lock
// instances behind one sim.Lock facade, with each request routed to a
// Zipf-sampled key. The chosen key is persisted in shared memory before
// the inner lock is touched, so a process that crashes mid-passage
// recovers into the same key's lock — exactly the pinning discipline
// rme.Map applies to crashed claims — and the retried request stays on
// the key it originally drew.
//
// The routing state costs a few shared-memory operations per passage
// (persist the draw, clear it after Exit); keyed rows therefore sit
// slightly above the single-lock anchor rows by construction, which is
// the honest price of a sharded keyspace.
type Keyspace struct {
	n     int
	locks []sim.Lock
	// curKey[pid] holds the 1-based key of the passage in flight (0 =
	// none); it lives in shared memory so it survives crashes.
	curKey []memory.Addr
	zipf   *Zipf
	rng    *rand.Rand
	// lastKey[pid] mirrors the routing decision for the collector (Go
	// state, scheduler-serialized — never read concurrently with the
	// owning process's step).
	lastKey []int
}

// NewKeyspace builds keys lock instances from factory over the shared
// space. The sampler's randomness is derived from seed and consumed in
// scheduler order, preserving run determinism.
func NewKeyspace(sp memory.Space, n, keys int, zipfS float64, seed int64, factory sim.Factory) *Keyspace {
	z, err := NewZipf(keys, zipfS)
	if err != nil {
		panic(err) // Config.fill validated Keys and ZipfS already
	}
	ks := &Keyspace{
		n:       n,
		locks:   make([]sim.Lock, keys),
		curKey:  make([]memory.Addr, n),
		zipf:    z,
		rng:     rand.New(rand.NewSource(seed ^ 0x5bf03635)),
		lastKey: make([]int, n),
	}
	for k := range ks.locks {
		ks.locks[k] = factory(sp, n)
	}
	for pid := range ks.curKey {
		ks.curKey[pid] = sp.Alloc(1, pid)
	}
	return ks
}

// Keys returns the keyspace size.
func (ks *Keyspace) Keys() int { return len(ks.locks) }

// LastKey returns the 0-based key of pid's most recent routing decision.
func (ks *Keyspace) LastKey(pid int) int { return ks.lastKey[pid] }

// Recover implements sim.Lock: it pins the passage to a key — the one
// persisted by a crashed predecessor passage, or a fresh Zipf draw — and
// recovers that key's lock.
func (ks *Keyspace) Recover(p memory.Port) {
	pid := p.PID()
	k := int(p.Read(ks.curKey[pid]))
	if k == 0 {
		k = ks.zipf.Sample(ks.rng) + 1
		p.Write(ks.curKey[pid], memory.Word(k))
	}
	ks.lastKey[pid] = k - 1
	ks.locks[k-1].Recover(p)
}

// Enter implements sim.Lock.
func (ks *Keyspace) Enter(p memory.Port) {
	pid := p.PID()
	k := int(p.Read(ks.curKey[pid]))
	ks.locks[k-1].Enter(p)
}

// Abortable reports whether the inner lock recipe supports the abort
// protocol; Run refuses abort traffic over a keyspace that does not.
func (ks *Keyspace) Abortable() bool {
	_, ok := ks.locks[0].(sim.Aborter)
	return ok
}

// Abort implements sim.Aborter: back out of the pinned key's lock, then
// clear the pin so the retried request draws a fresh key. An abort
// delivered before Recover persisted the pin finds no queue position to
// abandon and clears nothing.
func (ks *Keyspace) Abort(p memory.Port) {
	pid := p.PID()
	k := int(p.Read(ks.curKey[pid]))
	if k == 0 {
		return
	}
	ks.locks[k-1].(sim.Aborter).Abort(p)
	p.Write(ks.curKey[pid], 0)
}

// Exit implements sim.Lock: it releases the key's lock and only then
// clears the pin. A crash inside Exit leaves the pin set, and the next
// passage's Recover re-enters the same lock — recoverable locks treat a
// Recover after a completed Exit as a no-op repair.
func (ks *Keyspace) Exit(p memory.Port) {
	pid := p.PID()
	k := int(p.Read(ks.curKey[pid]))
	ks.locks[k-1].Exit(p)
	p.Write(ks.curKey[pid], 0)
}

package des

import (
	"math"
	"math/rand"
	"testing"
)

// TestPoissonMoments bounds the sample mean and variance of the
// exponential inter-arrival times against their analytic values
// (mean 1/λ, variance 1/λ²). 50k samples at a fixed seed keep the
// relative error well under the 5% tolerance.
func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Arrival{Kind: Poisson, Rate: 10_000}
	a.fill()
	const samples = 50_000
	meanWant := rateGapNs(a.Rate) // 100µs
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		d := float64(a.thinkNs(0, rng, nil))
		sum += d
		sumSq += d * d
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if rel := math.Abs(mean-meanWant) / meanWant; rel > 0.05 {
		t.Fatalf("mean %0.f vs %0.f (rel err %.3f)", mean, meanWant, rel)
	}
	if rel := math.Abs(variance-meanWant*meanWant) / (meanWant * meanWant); rel > 0.1 {
		t.Fatalf("variance %0.f vs %0.f (rel err %.3f)", variance, meanWant*meanWant, rel)
	}
}

// TestZipfSlope checks the rank-frequency law: for P(k) ∝ 1/k^s the
// log-log slope between rank 1 and rank r is -s. Estimated over 200k
// samples at ranks 1 vs 8, the fitted slope must be within 10% of s.
func TestZipfSlope(t *testing.T) {
	const n, s = 64, 1.5
	z, err := NewZipf(n, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	const samples = 200_000
	for i := 0; i < samples; i++ {
		counts[z.Sample(rng)]++
	}
	if counts[0] <= counts[7] {
		t.Fatalf("rank 0 (%d) not hotter than rank 7 (%d)", counts[0], counts[7])
	}
	slope := math.Log(float64(counts[0])/float64(counts[7])) / math.Log(8)
	if math.Abs(slope-s)/s > 0.1 {
		t.Fatalf("fitted slope %.3f, want %.1f ±10%%", slope, s)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 2); err == nil {
		t.Fatal("accepted zero ranks")
	}
	if _, err := NewZipf(4, 1); err == nil {
		t.Fatal("accepted skew 1")
	}
	z, err := NewZipf(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		if k := z.Sample(rng); k != 0 {
			t.Fatalf("single-rank sampler returned %d", k)
		}
	}
}

// TestBurstDutyCycle drives the on/off clock over a long horizon and
// checks the fraction of samples drawn at the on-rate matches the
// configured duty cycle OnNs/(OnNs+OffNs) within 10 points.
func TestBurstDutyCycle(t *testing.T) {
	a := Arrival{Kind: Bursty, Rate: 1_000_000, OffRate: 1_000, OnNs: 300_000, OffNs: 700_000}
	a.fill()
	rng := rand.New(rand.NewSource(4))
	b := newBurstClock(a, rng)
	const step = 1_000 // sample every µs over 2s of virtual time
	on := 0
	const samples = 2_000_000
	for i := 0; i < samples; i++ {
		if b.phase(int64(i)*step, rng) {
			on++
		}
	}
	duty := float64(on) / samples
	want := float64(a.OnNs) / float64(a.OnNs+a.OffNs)
	if math.Abs(duty-want) > 0.10 {
		t.Fatalf("duty cycle %.3f, want %.3f ±0.10", duty, want)
	}
}

// TestBurstRates checks the two phases actually sample at their
// respective rates: think times drawn while "on" must be far shorter on
// average than those drawn while "off".
func TestBurstRates(t *testing.T) {
	a := Arrival{Kind: Bursty, Rate: 1_000_000}
	a.fill()
	if a.OffRate != a.Rate/50 {
		t.Fatalf("OffRate default = %v, want %v", a.OffRate, a.Rate/50)
	}
	rng := rand.New(rand.NewSource(5))
	b := newBurstClock(a, rng)
	var onSum, offSum float64
	var onN, offN int
	for i := 0; i < 200_000; i++ {
		t0 := int64(i) * 500
		wasOn := b.phase(t0, rng)
		d := float64(a.thinkNs(t0, rng, b))
		if wasOn {
			onSum += d
			onN++
		} else {
			offSum += d
			offN++
		}
	}
	if onN == 0 || offN == 0 {
		t.Fatalf("phase never toggled: on=%d off=%d", onN, offN)
	}
	if offSum/float64(offN) < 10*onSum/float64(onN) {
		t.Fatalf("off-phase mean %.0f not ≫ on-phase mean %.0f",
			offSum/float64(offN), onSum/float64(onN))
	}
}

// TestCrashSchedule checks the generators emit exactly Budget events and
// that storm victims cluster: every storm's events fall within the
// configured span of the storm onset.
func TestCrashSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := Crashes{Kind: Uniform, Budget: 25}
	if err := u.fill(); err != nil {
		t.Fatal(err)
	}
	var q eventQueue
	u.schedule(&q, rng)
	if q.len() != 25 {
		t.Fatalf("uniform scheduled %d events, want 25", q.len())
	}
	last := int64(-1)
	for q.len() > 0 {
		ev := q.pop()
		if ev.kind != evCrash || ev.at <= last {
			t.Fatalf("bad event %+v after t=%d", ev, last)
		}
		last = ev.at
	}

	s := Crashes{Kind: Storm, Budget: 10, StormSize: 4, StormSpanNs: 1_000, StormGapNs: 10_000_000}
	if err := s.fill(); err != nil {
		t.Fatal(err)
	}
	var sq eventQueue
	s.schedule(&sq, rng)
	if sq.len() != 10 {
		t.Fatalf("storm scheduled %d events, want 10", sq.len())
	}
	var times []int64
	for sq.len() > 0 {
		times = append(times, sq.pop().at)
	}
	// With gaps ≫ span the storms are well separated: walking the sorted
	// times, each jump > span starts a new storm of at most StormSize.
	burst := 1
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] <= s.StormSpanNs {
			burst++
			if burst > s.StormSize {
				t.Fatalf("storm of %d > size %d around t=%d", burst, s.StormSize, times[i])
			}
		} else {
			burst = 1
		}
	}
}

func TestStragglerSchedule(t *testing.T) {
	var q eventQueue
	Stragglers{Count: 2, Factor: 4}.schedule(&q, 8)
	if q.len() != 2 {
		t.Fatalf("scheduled %d events, want 2", q.len())
	}
	pids := map[int]bool{}
	for q.len() > 0 {
		ev := q.pop()
		if ev.kind != evSlowOn || ev.at != 0 {
			t.Fatalf("bad straggler event %+v", ev)
		}
		pids[ev.pid] = true
	}
	if !pids[7] || !pids[6] {
		t.Fatalf("stragglers = %v, want the highest pids {6,7}", pids)
	}
}

func TestExpNsNeverZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if d := expNs(rng, 0.001); d < 1 {
			t.Fatalf("expNs returned %d", d)
		}
	}
}

func TestLatencyCost(t *testing.T) {
	m := LatencyModel{}
	m.fill()
	if m.LocalNs != DefaultLocalNs || m.RemoteNs != DefaultRemoteNs || m.ContentionNs != DefaultContentionNs {
		t.Fatalf("defaults not filled: %+v", m)
	}
	// 3 RMRs + 2 local ops, alone: 3*60 + 2*2.
	if c := m.cost(3, 5, 1, 1); c != 3*DefaultRemoteNs+2*DefaultLocalNs {
		t.Fatalf("solo cost = %d", c)
	}
	// Same with 3 contenders: +3*20*2 contention.
	want := int64(3*DefaultRemoteNs + 2*DefaultLocalNs + 3*DefaultContentionNs*2)
	if c := m.cost(3, 5, 3, 1); c != want {
		t.Fatalf("contended cost = %d, want %d", c, want)
	}
	// Straggler multiplier scales everything.
	if c := m.cost(3, 5, 3, 5); c != 5*want {
		t.Fatalf("slow cost = %d, want %d", c, 5*want)
	}
}

package yalock

import (
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
)

// sideLock adapts the dual-port arbitrator to sim.Lock for two processes:
// pid 0 uses the Left port, pid 1 the Right port. This matches the
// framework's contract (one process per side at a time).
type sideLock struct {
	a *Arbitrator
}

func newSideLock(sp memory.Space, n int) sim.Lock {
	return &sideLock{a: New(sp, n)}
}

func (l *sideLock) side(p memory.Port) Side {
	if p.PID() == 0 {
		return Left
	}
	return Right
}

func (l *sideLock) Recover(p memory.Port) { l.a.Recover(p, l.side(p)) }
func (l *sideLock) Enter(p memory.Port)   { l.a.Enter(p, l.side(p)) }
func (l *sideLock) Exit(p memory.Port)    { l.a.Exit(p, l.side(p)) }

func mustRun(t *testing.T, cfg sim.Config, f sim.Factory) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSideString(t *testing.T) {
	if Left.String() != "left" || Right.String() != "right" {
		t.Fatal("side names broken")
	}
	if Side(3).String() != "Side(3)" {
		t.Fatal("unknown side name broken")
	}
}

func TestArbitratorMutualExclusion(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for seed := int64(0); seed < 10; seed++ {
			res := mustRun(t, sim.Config{N: 2, Model: model, Requests: 8, Seed: seed}, newSideLock)
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v seed=%d] ME violated: overlap %d", model, seed, res.MaxCSOverlap)
			}
			if got := len(res.Requests); got != 16 {
				t.Fatalf("[%v seed=%d] %d requests satisfied, want 16", model, seed, got)
			}
		}
	}
}

func TestArbitratorConstantRMRs(t *testing.T) {
	// O(1) RMRs per passage under both models, even under contention.
	const bound = 26
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		res := mustRun(t, sim.Config{N: 2, Model: model, Requests: 20, Seed: 3}, newSideLock)
		s := res.SummarizePassageRMRs(nil)
		if s.Max > bound {
			t.Fatalf("[%v] max RMRs per passage = %d, want ≤ %d", model, s.Max, bound)
		}
	}
}

func TestArbitratorCrashEverywhere(t *testing.T) {
	// Crash each side at every possible instruction offset in turn;
	// mutual exclusion and progress must always survive (strong
	// recoverability). This sweeps crashes across the doorway, the
	// waiting loop, the CS and the exit protocol.
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for pid := 0; pid < 2; pid++ {
			for at := int64(0); at < 40; at++ {
				plan := &sim.CrashAtOp{PID: pid, OpIndex: at}
				res := mustRun(t, sim.Config{N: 2, Model: model, Requests: 3, Seed: 5, Plan: plan}, newSideLock)
				if res.MaxCSOverlap != 1 {
					t.Fatalf("[%v pid=%d at=%d] ME violated: overlap %d", model, pid, at, res.MaxCSOverlap)
				}
				if got := len(res.Requests); got != 6 {
					t.Fatalf("[%v pid=%d at=%d] %d requests satisfied, want 6", model, pid, at, got)
				}
			}
		}
	}
}

func TestArbitratorRepeatedCrashes(t *testing.T) {
	plan := &sim.RandomFailures{Rate: 0.03, MaxPerProcess: 4, DuringPassage: true}
	res := mustRun(t, sim.Config{N: 2, Model: memory.CC, Requests: 6, Seed: 11, Plan: plan}, newSideLock)
	if res.MaxCSOverlap != 1 {
		t.Fatalf("ME violated under repeated crashes: overlap %d", res.MaxCSOverlap)
	}
	if got := len(res.Requests); got != 12 {
		t.Fatalf("%d requests satisfied, want 12", got)
	}
	if res.CrashCount() == 0 {
		t.Fatal("no crashes injected; test is vacuous")
	}
}

func TestArbitratorCrashInCSReentry(t *testing.T) {
	// BCSR: the occupant that crashed in its CS re-enters before the
	// rival gets in.
	plan := sim.PlanFunc(func(ctx sim.StepCtx) bool {
		return ctx.PID == 0 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := mustRun(t, sim.Config{N: 2, Model: memory.DSM, Requests: 2, Seed: 2, Plan: plan}, newSideLock)
	crashSeq := res.Crashes[0].Seq
	for _, ev := range res.Events {
		if ev.Seq > crashSeq && ev.Kind == sim.EvCSEnter {
			if ev.PID != 0 {
				t.Fatalf("rival %d entered CS before crashed process re-entered", ev.PID)
			}
			break
		}
	}
	if res.MaxCSOverlap != 1 {
		t.Fatalf("overlap %d", res.MaxCSOverlap)
	}
}

func TestArbitratorSequentialPortUse(t *testing.T) {
	// Different processes may occupy the same side across acquisitions.
	a := memory.NewArena(memory.CC, 4)
	arb := New(a, 4)
	for _, pid := range []int{0, 2, 3, 1} {
		p := a.Port(pid, nil)
		arb.Recover(p, Left)
		arb.Enter(p, Left)
		if h := arb.Holder(a); h != Left {
			t.Fatalf("holder = %v, want left", h)
		}
		arb.Exit(p, Left)
		if h := arb.Holder(a); h != Side(-1) {
			t.Fatalf("holder after exit = %v, want none", h)
		}
	}
}

func TestArbitratorExitIdempotent(t *testing.T) {
	a := memory.NewArena(memory.CC, 2)
	arb := New(a, 2)
	p := a.Port(0, nil)
	arb.Enter(p, Left)
	arb.Exit(p, Left)
	ops := a.Ops(0)
	arb.Exit(p, Left) // second exit is a guarded no-op
	if a.Ops(0) > ops+2 {
		t.Fatalf("re-exit performed %d ops, want ≤ 2", a.Ops(0)-ops)
	}
}

func TestArbitratorReentryAfterCSCrashDirect(t *testing.T) {
	a := memory.NewArena(memory.DSM, 2)
	arb := New(a, 2)
	p := a.Port(0, nil)
	arb.Enter(p, Right)
	// Simulate a crash in the CS: private state is lost, the process
	// re-runs Recover+Enter on the same side.
	before := a.Ops(0)
	arb.Recover(p, Right)
	arb.Enter(p, Right)
	if got := a.Ops(0) - before; got > 6 {
		t.Fatalf("re-entry took %d ops, want bounded fast path", got)
	}
	arb.Exit(p, Right)
}

func TestArbitratorContractViolationPanics(t *testing.T) {
	a := memory.NewArena(memory.CC, 2)
	arb := New(a, 2)
	p0 := a.Port(0, nil)
	p1 := a.Port(1, nil)
	arb.Enter(p0, Left)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when a second process enters an occupied side in CS")
		}
	}()
	arb.Enter(p1, Left)
}

func TestArbitratorConstructorValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(a, 0)
}

func TestArbitratorBothSidesSequential(t *testing.T) {
	// One process may use different sides in different passages (e.g. a
	// process that takes the fast path now and the slow path later).
	a := memory.NewArena(memory.DSM, 1)
	arb := New(a, 1)
	p := a.Port(0, nil)
	for i := 0; i < 3; i++ {
		s := Side(i % 2)
		arb.Recover(p, s)
		arb.Enter(p, s)
		arb.Exit(p, s)
	}
}

func TestTwoProcessAdapter(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for seed := int64(0); seed < 4; seed++ {
			plan := &sim.RandomFailures{Rate: 0.02, MaxPerProcess: 2, DuringPassage: true}
			res := mustRun(t, sim.Config{N: 2, Model: model, Requests: 5, Seed: seed, Plan: plan},
				func(sp memory.Space, n int) sim.Lock { return NewTwoProcess(sp, n) })
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v seed=%d] ME violated", model, seed)
			}
			if got := len(res.Requests); got != 10 {
				t.Fatalf("[%v seed=%d] %d requests, want 10", model, seed, got)
			}
		}
	}
}

func TestTwoProcessValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n != 2")
		}
	}()
	NewTwoProcess(a, 3)
}

func TestArbitratorLeavingCleanupByNextEntrant(t *testing.T) {
	// Simulate a crash between who:=0 and sstate:=idle in a previous
	// occupant's exit: the next entrant of the side finishes the repair.
	a := memory.NewArena(memory.CC, 2)
	arb := New(a, 2)
	p0 := a.Port(0, nil)
	arb.Enter(p0, Left)
	arb.Exit(p0, Left)
	// Manually wind the side back into the "leaving, occupant cleared"
	// state the crash would leave behind.
	w := a.Port(0, nil)
	w.Write(arb.sstate[Left], ssLeaving)
	p1 := a.Port(1, nil)
	arb.Enter(p1, Left) // must repair and acquire
	if got := a.Peek(arb.sstate[Left]); got != ssInCS {
		t.Fatalf("state after repair-enter = %d", got)
	}
	arb.Exit(p1, Left)
}

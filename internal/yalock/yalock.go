// rme:sensitive-instructions 0 — read/write only; no FAS or CAS in this file.
//
// Package yalock implements the dual-port strongly recoverable 2-party
// lock used as the arbitrator in the paper's framework (Section 5.1).
//
// The paper instantiates the arbitrator with Golab and Ramaraju's
// recoverable transformation of Yang and Anderson's 2-process lock. This
// implementation keeps that algorithm's shape — a Peterson/Yang–Anderson
// style doorway (intent flags and a turn word) with strictly local
// spinning — and adds recoverability with a per-side state machine, an
// occupant word used to guard idempotent re-execution, and explicit
// wake-up signalling so waiters spin only on a word in their own memory
// module (O(1) RMRs per passage under both CC and DSM, in every failure
// scenario).
//
// Contract (inherited from the framework): the lock has two ports, Left
// and Right; at most one process attempts to acquire each side at any
// time, though which process occupies a side may change between
// acquisitions. A process that crashes mid-acquisition re-attempts the
// same side until its passage completes.
package yalock

import (
	"fmt"

	"rme/internal/memory"
)

// Side selects one of the arbitrator's two ports.
type Side int

// The two ports. In the framework the fast path enters from the Left and
// the slow path (through the core lock) from the Right.
const (
	Left  Side = 0
	Right Side = 1
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

func (s Side) other() Side { return 1 - s }

// Per-side recovery states. Idle is the zero value.
const (
	ssIdle memory.Word = iota
	ssTrying
	ssInCS
	ssLeaving
)

// Arbitrator is the dual-port strongly recoverable lock.
type Arbitrator struct {
	n int

	flag   [2]memory.Addr // intent of each side
	who    [2]memory.Addr // occupant of each side (pid+1, 0 if none)
	sstate [2]memory.Addr // recovery state of each side
	turn   memory.Addr    // Peterson turn word: the side stored yields
	spin   []memory.Addr  // per-process local spin words
}

// New allocates an arbitrator for n processes in sp.
func New(sp memory.Space, n int) *Arbitrator {
	if n < 1 {
		panic(fmt.Sprintf("yalock: New n = %d", n))
	}
	a := &Arbitrator{
		n:    n,
		turn: sp.Alloc(1, memory.HomeNone),
		spin: make([]memory.Addr, n),
	}
	for s := 0; s < 2; s++ {
		a.flag[s] = sp.Alloc(1, memory.HomeNone)
		a.who[s] = sp.Alloc(1, memory.HomeNone)
		a.sstate[s] = sp.Alloc(1, memory.HomeNone)
	}
	for i := 0; i < n; i++ {
		a.spin[i] = sp.Alloc(1, i) // spin locally under DSM
	}
	return a
}

// Recover restores side s after a failure of its occupant. If the
// occupant crashed mid-Exit, the exit is completed; every other state is
// repaired by Enter's idempotent doorway. Bounded (BR).
func (a *Arbitrator) Recover(p memory.Port, s Side) {
	i := p.PID()
	if p.Read(a.sstate[s]) == ssLeaving && p.Read(a.who[s]) == memory.Word(i+1) {
		a.finishExit(p, s)
	}
}

// Enter acquires side s. At most one process may be attempting each side.
func (a *Arbitrator) Enter(p memory.Port, s Side) {
	i := p.PID()
	me := memory.Word(i + 1)
	o := s.other()

	switch p.Read(a.sstate[s]) {
	case ssInCS:
		if p.Read(a.who[s]) == me {
			return // crashed inside the CS: bounded re-entry (BCSR)
		}
		panic(fmt.Sprintf("yalock: side %v in CS is owned by %d, not %d (port contract violated)",
			s, p.Read(a.who[s]), i))
	case ssLeaving:
		// A previous exit on this side crashed after clearing the
		// occupant word; only the final state write is missing.
		if p.Read(a.who[s]) == 0 {
			p.Write(a.sstate[s], ssIdle)
		} else if p.Read(a.who[s]) == me {
			a.finishExit(p, s)
		} else {
			panic(fmt.Sprintf("yalock: side %v mid-exit by %d while %d enters (port contract violated)",
				s, p.Read(a.who[s]), i))
		}
	}

	// Doorway. Every step is idempotent: re-executing the doorway after
	// a crash is equivalent to a fresh competitor arriving, which the
	// Peterson-style argument already tolerates.
	p.Write(a.who[s], me)
	p.Write(a.sstate[s], ssTrying)
	p.Write(a.flag[s], 1)
	p.Write(a.spin[i], 0)
	p.Write(a.turn, memory.Word(s)) // yield: the side stored in turn waits

	// The turn write may have unblocked the rival; wake it so it can
	// re-evaluate its condition (it spins only on its local word).
	a.signal(p, o)

	// Wait while the rival is interested and it is our turn to yield.
	// The inner spin is on a local word; the outer re-check runs at most
	// a bounded number of times per rival passage, so the loop costs
	// O(1) RMRs overall.
	// rme:rmw-loop(the spin[i] reset re-runs only when the rival signals, at most O(1) times per rival passage, so the Write retry is bounded)
	for p.Read(a.flag[o]) != 0 && p.Read(a.turn) == memory.Word(s) {
		for p.Read(a.spin[i]) == 0 {
			p.Pause()
		}
		p.Write(a.spin[i], 0)
	}

	p.Write(a.sstate[s], ssInCS)
}

// Exit releases side s. Bounded and idempotent (BE): a crashed Exit is
// completed by Recover or by the next Enter on the side.
func (a *Arbitrator) Exit(p memory.Port, s Side) {
	if p.Read(a.who[s]) != memory.Word(p.PID()+1) {
		return // already fully released by this process
	}
	p.Write(a.sstate[s], ssLeaving)
	a.finishExit(p, s)
}

func (a *Arbitrator) finishExit(p memory.Port, s Side) {
	p.Write(a.flag[s], 0)
	a.signal(p, s.other())
	p.Write(a.who[s], 0)
	p.Write(a.sstate[s], ssIdle)
}

// signal wakes the current occupant of side o, if any. Spurious wake-ups
// are harmless: waiters always re-check their wait condition.
func (a *Arbitrator) signal(p memory.Port, o Side) {
	if p.Read(a.flag[o]) == 0 {
		return
	}
	if r := p.Read(a.who[o]); r != 0 && int(r-1) < a.n {
		p.Write(a.spin[r-1], 1)
	}
}

// Holder reports which side currently holds the lock (-1 if none), from a
// debug snapshot of shared memory.
func (a *Arbitrator) Holder(pk interface{ Peek(memory.Addr) memory.Word }) Side {
	for s := Side(0); s < 2; s++ {
		if pk.Peek(a.sstate[s]) == ssInCS {
			return s
		}
	}
	return Side(-1)
}

// TwoProcess adapts the arbitrator to a 2-process lock: process 0 enters
// through the Left port and process 1 through the Right. It satisfies the
// simulator's Lock interface for contention and RMR measurements of the
// arbitrator in isolation.
type TwoProcess struct {
	a *Arbitrator
}

// NewTwoProcess allocates a two-process arbitrator adapter in sp. n must
// be 2.
func NewTwoProcess(sp memory.Space, n int) *TwoProcess {
	if n != 2 {
		panic(fmt.Sprintf("yalock: NewTwoProcess n = %d, want 2", n))
	}
	return &TwoProcess{a: New(sp, n)}
}

func (l *TwoProcess) side(p memory.Port) Side {
	if p.PID() == 0 {
		return Left
	}
	return Right
}

// Recover implements the Recover segment.
func (l *TwoProcess) Recover(p memory.Port) { l.a.Recover(p, l.side(p)) }

// Enter implements the Enter segment.
func (l *TwoProcess) Enter(p memory.Port) { l.a.Enter(p, l.side(p)) }

// Exit implements the Exit segment.
func (l *TwoProcess) Exit(p memory.Port) { l.a.Exit(p, l.side(p)) }

// Abort backs the process out after an unwound Enter. Exit already does
// exactly this from every state: its occupant guard makes it a no-op when
// the doorway was never written, and from ssTrying it retracts the doorway
// (flag cleared, rival signalled) — the property the framework relies on
// to make the arbitrator stage abortable without waiting.
func (l *TwoProcess) Abort(p memory.Port) { l.a.Exit(p, l.side(p)) }

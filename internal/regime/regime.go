package regime

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"rme"
	"rme/internal/flight"
	"rme/internal/metrics"
	"rme/internal/workload"
)

// The native regimes drive real rme.Mutex / rme.Map passages from worker
// goroutines, continuously, until stopped:
//
//	hot    every worker contends on one rme.Mutex — pure contention; at
//	       one worker this is the uncontended failure-free anchor whose
//	       RMR median must equal the BENCH_metrics F=0 row.
//	zipf   workers draw Zipf-distributed keys over an rme.Map — the
//	       skewed-popularity case sharded maps exist for.
//	churn  every passage touches a fresh key through a deliberately tiny
//	       map (1 shard × 8 slots) — key lifecycle (evict, recycle,
//	       re-instantiate) dominates.
//	abort  workers race TryLockFor with a short deadline on one
//	       rme.Mutex — sustained deadline-abort traffic.
//	crash  a failure-injection hook crashes processes mid-passage at a
//	       small per-instruction rate; Passage retries drive recovery.
//	soak   the lockstep adversary campaign (Campaign) looped over a
//	       rotating seed window — the randomized correctness battery as
//	       a continuous background workload.
//
// Every regime is built with WithMetrics and WithTracing, so /metrics,
// /debug/flight and /debug/profile observe it live. The drivers throttle
// with a short think time per passage: the point is sustained realistic
// traffic, not a saturation benchmark.

// thinkTime paces each worker between passages.
const thinkTime = 200 * time.Microsecond

// abortDeadline is the TryLockFor deadline of the abort regime — short
// enough that contended waits abort, long enough that some succeed.
const abortDeadline = 100 * time.Microsecond

// crashRate is the per-instruction crash probability of the crash regime.
const crashRate = 0.0005

// zipfKeys and zipfS shape the zipf regime's key popularity.
const (
	zipfKeys = 64
	zipfS    = 1.1
)

// soakSpecs are the lock recipes the continuous soak regime cycles
// through: the two pool-backed BA recipes the benchmarks track.
var soakSpecs = []string{"ba-pool", "ba-sublog-pool"}

// Names lists the available regimes, in display order.
func Names() []string {
	return []string{"hot", "zipf", "churn", "abort", "crash", "soak"}
}

// Status is the /workloads JSON row for one regime.
type Status struct {
	Name    string `json:"name"`
	Running bool   `json:"running"`
	Workers int    `json:"workers"`
	// Metrics is the merged passage snapshot (absent until first start
	// for the soak regime, zero-valued for native regimes).
	Metrics metrics.Snapshot `json:"metrics"`
	// SoakRuns / SoakViolations accumulate over soak rounds (soak only).
	SoakRuns       int `json:"soak_runs,omitempty"`
	SoakViolations int `json:"soak_violations,omitempty"`
}

// Runner drives one regime. A Runner is built stopped; Start launches the
// worker goroutines and Stop drains them. Snapshot, MapStats and the
// flight accessors are safe to call at any time, running or not — scrapes
// read the same seqlock-consistent recorders the passage path writes, and
// issue no shared-memory operations of their own.
type Runner struct {
	name    string
	workers int

	mtx *rme.Mutex // hot, abort, crash (nil otherwise)
	mp  *rme.Map   // zipf, churn (nil otherwise)

	// soak state: the campaign aggregate persists across rounds.
	soak     *Campaign
	soakDir  string
	soakMu   sync.Mutex
	soakRuns int
	soakBad  int

	mu      sync.Mutex
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	running bool
}

// New builds the named regime for workers processes. OutDir receives soak
// repro artifacts (only the soak regime writes there).
func New(name string, workers int, outDir string) (*Runner, error) {
	if workers < 1 {
		return nil, fmt.Errorf("regime: %s: %d workers, want ≥ 1", name, workers)
	}
	r := &Runner{name: name, workers: workers, soakDir: outDir}
	base := []rme.Option{rme.WithMetrics(), rme.WithTracing(rme.TracingOptions{})}
	var err error
	switch name {
	case "hot", "abort":
		r.mtx, err = rme.New(workers, base...)
	case "crash":
		rngs := make([]*rand.Rand, workers)
		for pid := range rngs {
			rngs[pid] = rand.New(rand.NewSource(int64(pid)*1099511628211 + 17))
		}
		opts := append(base, rme.WithFailures(func(pid int) bool {
			// Each pid's rng is touched only from that process's own
			// instruction stream, so this is race-free.
			return rngs[pid].Float64() < crashRate
		}))
		r.mtx, err = rme.New(workers, opts...)
	case "zipf":
		r.mp, err = rme.NewMap(workers, base...)
	case "churn":
		opts := append(base, rme.WithShards(1), rme.WithSegmentSlots(8))
		r.mp, err = rme.NewMap(workers, opts...)
	case "soak":
		var specs []workload.Spec
		for _, n := range soakSpecs {
			spec, lerr := workload.Lookup(n)
			if lerr != nil {
				return nil, lerr
			}
			specs = append(specs, spec)
		}
		r.soak = &Campaign{Seeds: 2, N: min(workers, 5), Requests: 2,
			OutDir: outDir, Specs: specs, Stdout: discard{}}
	default:
		return nil, fmt.Errorf("regime: unknown regime %q (have: %v)", name, Names())
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Name returns the regime name.
func (r *Runner) Name() string { return r.name }

// Workers returns the process count.
func (r *Runner) Workers() int { return r.workers }

// Running reports whether the drivers are live.
func (r *Runner) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// Start launches the workers; it is a no-op if already running.
func (r *Runner) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.running = true
	if r.soak != nil {
		r.wg.Add(1)
		go r.driveSoak(ctx)
		return
	}
	for pid := 0; pid < r.workers; pid++ {
		r.wg.Add(1)
		go r.drive(ctx, pid)
	}
}

// Stop cancels the workers and waits for every in-flight passage to
// drain; it is a no-op if not running.
func (r *Runner) Stop() {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	r.running = false
	r.cancel()
	r.mu.Unlock()
	r.wg.Wait()
}

// drive is one native worker: a passage, then a think pause, until
// cancelled.
func (r *Runner) drive(ctx context.Context, pid int) {
	defer r.wg.Done()
	rng := rand.New(rand.NewSource(int64(pid)*1099511628211 + 7))
	var zipf *rand.Zipf
	if r.name == "zipf" {
		zipf = rand.NewZipf(rng, zipfS, 1, uint64(zipfKeys-1))
	}
	for i := 0; ctx.Err() == nil; i++ {
		switch r.name {
		case "hot":
			r.mtx.Lock(pid)
			r.mtx.Unlock(pid)
		case "abort":
			if r.mtx.TryLockFor(pid, abortDeadline) {
				r.mtx.Unlock(pid)
			}
		case "crash":
			// Passage returns false when the injected hook crashed the
			// process; the next iteration recovers.
			r.mtx.Passage(pid, func() {})
		case "zipf":
			key := "key-" + strconv.FormatUint(zipf.Uint64(), 10)
			r.mp.Lock(pid, key)
			r.mp.Unlock(pid, key)
		case "churn":
			key := "churn-" + strconv.Itoa(pid) + "-" + strconv.Itoa(i)
			r.mp.Lock(pid, key)
			r.mp.Unlock(pid, key)
		}
		time.Sleep(thinkTime)
	}
}

// driveSoak loops lockstep campaign rounds over a rotating seed window.
func (r *Runner) driveSoak(ctx context.Context) {
	defer r.wg.Done()
	for round := int64(0); ctx.Err() == nil; round++ {
		r.soak.SeedBase = round * int64(r.soak.Seeds)
		runs, bad := r.soak.Run()
		r.soakMu.Lock()
		r.soakRuns += runs
		r.soakBad += bad
		r.soakMu.Unlock()
		select {
		case <-ctx.Done():
		case <-time.After(10 * thinkTime):
		}
	}
}

// Snapshot returns the regime's merged passage metrics.
func (r *Runner) Snapshot() metrics.Snapshot {
	switch {
	case r.mtx != nil:
		s, _ := r.mtx.MetricsSnapshot()
		return s
	case r.mp != nil:
		s, _ := r.mp.MetricsSnapshot()
		return s
	default:
		var s metrics.Snapshot
		for _, v := range r.soak.Metrics() {
			s = s.Merge(v)
		}
		return s
	}
}

// MapStats returns keyed-map lifecycle stats for map-backed regimes.
func (r *Runner) MapStats() (rme.MapStats, bool) {
	if r.mp == nil {
		return rme.MapStats{}, false
	}
	return r.mp.Stats(), true
}

// FlightRecording returns the live flight-recorder dump of native
// regimes (nil, false for the soak regime).
func (r *Runner) FlightRecording() (*flight.Recording, bool) {
	switch {
	case r.mtx != nil:
		return r.mtx.FlightRecording()
	case r.mp != nil:
		return r.mp.FlightRecording()
	}
	return nil, false
}

// FlightProfile returns the live phase-latency profile of native regimes.
func (r *Runner) FlightProfile() (flight.Profile, bool) {
	switch {
	case r.mtx != nil:
		return r.mtx.FlightProfile()
	case r.mp != nil:
		return r.mp.FlightProfile()
	}
	return flight.Profile{}, false
}

// Status assembles the /workloads row.
func (r *Runner) Status() Status {
	st := Status{
		Name:    r.name,
		Running: r.Running(),
		Workers: r.workers,
		Metrics: r.Snapshot(),
	}
	if r.soak != nil {
		r.soakMu.Lock()
		st.SoakRuns, st.SoakViolations = r.soakRuns, r.soakBad
		r.soakMu.Unlock()
	}
	return st
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package regime hosts the long-running workload drivers shared by
// cmd/soak and cmd/rmeserver: the randomized lockstep soak campaign (the
// adversary battery with shrinking repro artifacts and the watchdog
// post-mortem), and the native continuous regimes (hot/Zipf/churn/abort/
// crash traffic against rme.Mutex and rme.Map) the ops plane serves
// metrics from.
package regime

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/metrics"
	"rme/internal/repro"
	"rme/internal/sim"
	"rme/internal/trace"
	"rme/internal/workload"
)

// FlightTail bounds post-mortem flight dumps to the last N events per
// process — the window around the violation, not the whole campaign.
const FlightTail = 256

// Campaign parameterizes one lockstep soak run: every spec, both memory
// models, combined random + unsafe + abort adversaries, across Seeds
// seeds. Violations are captured as shrunk, replayable repro artifacts.
type Campaign struct {
	Seeds    int
	N        int
	Requests int
	OutDir   string
	Specs    []workload.Spec
	Stdout   io.Writer
	// SeedBase offsets the seed range ([SeedBase, SeedBase+Seeds)); the
	// server's continuous soak regime advances it between rounds so every
	// round explores fresh schedules.
	SeedBase int64
	// Watch, if non-nil, shadows every run with a rolling event tail so a
	// wall-clock watchdog can write a post-mortem of a stuck run.
	Watch *Watchdog

	mu  sync.Mutex
	agg map[string]metrics.Snapshot
}

// Watchdog keeps a bounded tail of the lifecycle events of the run in
// progress, updated synchronously from the scheduler via Config.OnEvent.
// On timeout it converts the tail into a flight recording — the same
// post-mortem format the violation path dumps — without needing the stuck
// run to return a Result.
type Watchdog struct {
	mu    sync.Mutex
	lock  string
	model memory.Model
	seed  int64
	n     int
	tail  []sim.Event
}

// Begin marks the start of a shadowed run, resetting the tail.
func (w *Watchdog) Begin(lock string, model memory.Model, seed int64, n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lock, w.model, w.seed, w.n = lock, model, seed, n
	w.tail = w.tail[:0]
}

// Observe is the sim.Config.OnEvent hook of the shadowed run.
func (w *Watchdog) Observe(ev sim.Event, _ *memory.Arena) {
	if ev.Kind == sim.EvOp {
		return // lifecycle tail only; op streams are unbounded
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	limit := FlightTail * w.n
	if len(w.tail) >= limit {
		copy(w.tail, w.tail[len(w.tail)-limit/2:])
		w.tail = w.tail[:limit/2]
	}
	w.tail = append(w.tail, ev)
}

// PostMortem writes the current tail as a flight recording and returns
// the path plus a description of the interrupted run.
func (w *Watchdog) PostMortem(outDir string) (string, string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	desc := fmt.Sprintf("%s/%v seed=%d", w.lock, w.model, w.seed)
	res := &sim.Result{Config: sim.Config{N: w.n},
		Events: append([]sim.Event{}, w.tail...)}
	rec := trace.SimRecording(res).Tail(FlightTail)
	rec.Note = fmt.Sprintf("soak watchdog timeout during %s", desc)
	name := fmt.Sprintf("flight-watchdog-%s-%v-seed%d.json", w.lock, w.model, w.seed)
	path := filepath.Join(outDir, name)
	if err := rec.WriteFile(path); err != nil {
		return "", desc, err
	}
	return path, desc, nil
}

// plan builds the per-run adversary. Each run needs a fresh, identical
// plan: the plans are stateful and consume the run's random stream.
func (c *Campaign) plan() sim.FailurePlan {
	return sim.PlanSeq{
		&sim.RandomFailures{Rate: 0.008, MaxPerProcess: 3, DuringPassage: true},
		&sim.UnsafeBudget{Total: 3, Rate: 0.4, MaxPerProcess: 1},
		&sim.RandomAborts{Rate: 0.004, MaxPerProcess: 2},
	}
}

func (c *Campaign) config(model memory.Model, seed int64) sim.Config {
	cfg := sim.Config{N: c.N, Model: model, Requests: c.Requests,
		Seed: seed, Plan: c.plan(), CSOps: 3, MaxSteps: 30_000_000}
	if c.Watch != nil {
		cfg.OnEvent = c.Watch.Observe
	}
	return cfg
}

func strengthName(s workload.Strength) string {
	if s == workload.Weak {
		return repro.StrengthWeak
	}
	return repro.StrengthStrong
}

// report captures a violation as a shrunk, replayable artifact and returns
// the file it was written to.
func (c *Campaign) report(spec workload.Spec, model memory.Model, seed int64, observed error) (string, error) {
	art, _, err := repro.Record(repro.RunSpec{
		Lock:       spec.Name,
		Strength:   strengthName(spec.Strength),
		BCSRMaxOps: 1 << 20,
		Config:     c.config(model, seed),
		Note:       fmt.Sprintf("soak %s/%v seed=%d: %v", spec.Name, model, seed, observed),
	}, spec.New)
	if err != nil {
		return "", fmt.Errorf("recording repro: %w", err)
	}
	if art.Property == "" {
		return "", fmt.Errorf("violation did not reproduce under the recording scheduler (non-deterministic plan?)")
	}
	art = repro.Shrink(art, spec.New)
	name := fmt.Sprintf("repro-%s-%v-seed%d.json", spec.Name, model, seed)
	path := filepath.Join(c.OutDir, name)
	if err := art.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// dumpFlight writes a post-mortem flight recording of the violating run —
// the last FlightTail lifecycle events per process in the rme-flight/v1
// interchange format, so cmd/rmetrace can render the window around the
// violation as a Chrome trace or ASCII timeline.
func (c *Campaign) dumpFlight(spec workload.Spec, model memory.Model, seed int64,
	res *sim.Result, observed error) (string, error) {
	rec := trace.SimRecording(res).Tail(FlightTail)
	rec.Note = fmt.Sprintf("soak %s/%v seed=%d: %v", spec.Name, model, seed, observed)
	name := fmt.Sprintf("flight-%s-%v-seed%d.json", spec.Name, model, seed)
	path := filepath.Join(c.OutDir, name)
	if err := rec.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// merge folds one run's snapshot into the campaign aggregate; snapshots
// are readable mid-run via Metrics (the server scrapes while soaking).
func (c *Campaign) merge(name string, s metrics.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.agg == nil {
		c.agg = map[string]metrics.Snapshot{}
	}
	c.agg[name] = c.agg[name].Merge(s)
}

// Metrics returns the per-lock aggregate snapshots merged so far, safe to
// call concurrently with Run.
func (c *Campaign) Metrics() map[string]metrics.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]metrics.Snapshot, len(c.agg))
	for k, v := range c.agg {
		out[k] = v
	}
	return out
}

// Run executes the campaign and returns (runs, violations).
func (c *Campaign) Run() (int, int) {
	runs, failures := 0, 0
	var order []string
	for _, spec := range c.Specs {
		if spec.Strength == workload.NonRecoverable {
			continue
		}
		order = append(order, spec.Name)
		levels := 1
		if spec.Levels != nil {
			levels = spec.Levels(c.N)
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			for seed := c.SeedBase; seed < c.SeedBase+int64(c.Seeds); seed++ {
				if c.Watch != nil {
					c.Watch.Begin(spec.Name, model, seed, c.N)
				}
				r, err := sim.New(c.config(model, seed), spec.New)
				if err != nil {
					panic(err)
				}
				res, err := r.Run()
				runs++
				if err == nil {
					c.merge(spec.Name, res.MetricsSnapshot(levels))
				}
				var cerr error
				switch {
				case err != nil:
					cerr = &check.Violation{Property: check.PropStarvation, Err: err}
				case spec.Strength == workload.Strong:
					cerr = check.Strong(res, 1<<20)
				default:
					cerr = check.Weak(res)
				}
				if cerr == nil {
					continue
				}
				failures++
				fmt.Fprintf(c.Stdout, "FAIL %s/%v seed=%d (%d crashes, %d aborts): %v\n",
					spec.Name, model, seed, res.CrashCount(), res.AbortCount(), cerr)
				if fp, ferr := c.dumpFlight(spec, model, seed, res, cerr); ferr != nil {
					fmt.Fprintf(c.Stdout, "  flight: %v\n", ferr)
				} else {
					fmt.Fprintf(c.Stdout, "  flight recording → %s (render: rmetrace -timeline %s)\n", fp, fp)
				}
				path, rerr := c.report(spec, model, seed, cerr)
				if rerr != nil {
					fmt.Fprintf(c.Stdout, "  repro: %v\n", rerr)
					continue
				}
				fmt.Fprintf(c.Stdout, "  repro written to %s (replay: rmesim -repro %s)\n", path, path)
			}
		}
	}
	agg := c.Metrics()
	fmt.Fprintln(c.Stdout, "metrics (aggregated over models and seeds):")
	for _, name := range order {
		fmt.Fprintf(c.Stdout, "  %-12s %s\n", name, agg[name])
	}
	fmt.Fprintf(c.Stdout, "soak: %d runs, %d violations\n", runs, failures)
	return runs, failures
}

package regime

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/check"
	"rme/internal/flight"
	"rme/internal/memory"
	"rme/internal/repro"
	"rme/internal/sim"
	"rme/internal/workload"
)

// brokenLock performs no synchronization; a campaign over it must detect
// the mutual-exclusion violation and emit a replayable repro artifact.
type brokenLock struct{ w memory.Addr }

func newBroken(sp memory.Space, n int) sim.Lock {
	return &brokenLock{w: sp.Alloc(1, memory.HomeNone)}
}

func (l *brokenLock) Recover(p memory.Port) {}
func (l *brokenLock) Enter(p memory.Port)   { p.Read(l.w) }
func (l *brokenLock) Exit(p memory.Port)    { p.Read(l.w) }

// TestCampaignWritesShrunkReplayableRepro is the end-to-end acceptance
// path: a seeded violation found by the soak campaign is recorded, shrunk,
// written to disk, and the written artifact replays to the same verdict.
func TestCampaignWritesShrunkReplayableRepro(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	c := &Campaign{
		Seeds: 2, N: 4, Requests: 2, OutDir: dir, Stdout: &out,
		Specs: []workload.Spec{{
			Name:     "fixture-broken",
			Strength: workload.Strong,
			New:      newBroken,
		}},
	}
	runs, violations := c.Run()
	if runs != 4 { // 2 seeds × 2 models
		t.Fatalf("%d runs, want 4", runs)
	}
	if violations == 0 {
		t.Fatalf("campaign missed the seeded violation; output:\n%s", out.String())
	}

	files, err := filepath.Glob(filepath.Join(dir, "repro-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no repro artifact written; output:\n%s", out.String())
	}
	for _, path := range files {
		art, err := repro.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if art.Property != check.PropMutualExclusion {
			t.Fatalf("%s records property %q, want %q", path, art.Property, check.PropMutualExclusion)
		}
		if art.Lock != "fixture-broken" || art.Note == "" {
			t.Fatalf("%s lost provenance: %s", path, art)
		}
		rr, err := repro.Replay(art, newBroken)
		if err != nil {
			t.Fatalf("%s: replay: %v", path, err)
		}
		if !rr.Reproduced(art) {
			t.Fatalf("%s: replay observed %q, artifact records %q", path, rr.Property, art.Property)
		}
	}
	if !strings.Contains(out.String(), "repro written to") {
		t.Fatalf("campaign did not announce the artifact; output:\n%s", out.String())
	}

	// Every violation also dumps a post-mortem flight recording: a valid
	// rme-flight/v1 file whose streams are bounded by FlightTail.
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 {
		t.Fatalf("no flight dump written; output:\n%s", out.String())
	}
	for _, path := range dumps {
		rec, err := flight.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if rec.Source != flight.SourceSim || rec.Note == "" {
			t.Fatalf("%s lost provenance: source=%s note=%q", path, rec.Source, rec.Note)
		}
		for pid, events := range rec.Procs {
			if len(events) > FlightTail {
				t.Fatalf("%s p%d has %d events, tail bound is %d", path, pid, len(events), FlightTail)
			}
		}
	}
	if !strings.Contains(out.String(), "flight recording →") {
		t.Fatalf("campaign did not announce the flight dump; output:\n%s", out.String())
	}
}

// TestCampaignCleanOnCorrectLocks: a budget-sized slice of the real
// registry passes without emitting artifacts.
func TestCampaignCleanOnCorrectLocks(t *testing.T) {
	dir := t.TempDir()
	spec, err := workload.Lookup("wr")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c := &Campaign{Seeds: 3, N: 3, Requests: 2, OutDir: dir,
		Specs: []workload.Spec{spec}, Stdout: &out}
	runs, violations := c.Run()
	if runs != 6 || violations != 0 {
		t.Fatalf("runs=%d violations=%d; output:\n%s", runs, violations, out.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("clean campaign wrote %d artifacts", len(entries))
	}
}

// TestWatchdogPostMortem feeds the watchdog a shadowed run's event stream
// (the OnEvent path the campaign wires up under -timeout) and checks the
// post-mortem: a valid rme-flight/v1 file naming the interrupted run, with
// streams bounded by FlightTail.
func TestWatchdogPostMortem(t *testing.T) {
	dir := t.TempDir()
	w := &Watchdog{}
	w.Begin("fixture-stuck", memory.CC, 7, 2)

	// Simulate a run that emits far more lifecycle events than the tail
	// bound; the ring must stay bounded and keep the most recent window.
	seq := int64(0)
	for i := 0; i < FlightTail*8; i++ {
		for pid := 0; pid < 2; pid++ {
			w.Observe(sim.Event{Seq: seq, PID: pid, Kind: sim.EvPassageStart}, nil)
			seq++
			w.Observe(sim.Event{Seq: seq, PID: pid, Kind: sim.EvOp}, nil) // must be ignored
			seq++
			w.Observe(sim.Event{Seq: seq, PID: pid, Kind: sim.EvCSEnter}, nil)
			seq++
			w.Observe(sim.Event{Seq: seq, PID: pid, Kind: sim.EvCSExit}, nil)
			seq++
			w.Observe(sim.Event{Seq: seq, PID: pid, Kind: sim.EvPassageEnd}, nil)
			seq++
		}
	}

	path, desc, err := w.PostMortem(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "fixture-stuck") || !strings.Contains(desc, "seed=7") {
		t.Fatalf("post-mortem description %q lost the run identity", desc)
	}
	rec, err := flight.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if rec.Source != flight.SourceSim || !strings.Contains(rec.Note, "watchdog") {
		t.Fatalf("%s lost provenance: source=%s note=%q", path, rec.Source, rec.Note)
	}
	if len(rec.Procs) != 2 {
		t.Fatalf("%d processes in recording, want 2", len(rec.Procs))
	}
	for pid, events := range rec.Procs {
		if len(events) == 0 {
			t.Fatalf("p%d has no events", pid)
		}
		if len(events) > FlightTail {
			t.Fatalf("p%d has %d events, tail bound is %d", pid, len(events), FlightTail)
		}
	}

	// begin() for the next run resets the tail.
	w.Begin("next", memory.DSM, 8, 2)
	w.mu.Lock()
	if len(w.tail) != 0 {
		t.Fatalf("begin did not reset the tail (%d events)", len(w.tail))
	}
	w.mu.Unlock()
}

package regime

import (
	"encoding/json"
	"testing"
	"time"
)

// runBriefly starts the regime, lets it generate traffic until the
// predicate holds (or a deadline expires), and stops it.
func runBriefly(t *testing.T, r *Runner, ok func() bool) {
	t.Helper()
	r.Start()
	defer r.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !ok() {
		t.Fatalf("regime %s produced no qualifying traffic in time: %+v", r.Name(), r.Snapshot())
	}
}

func TestHotRegimeDrivesPassages(t *testing.T) {
	r, err := New("hot", 2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runBriefly(t, r, func() bool { return r.Snapshot().Passages >= 10 })
	s := r.Snapshot()
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken at quiescence: %+v", s)
	}
	if s.RMRHist.Total() == 0 {
		t.Fatalf("no RMR samples: %+v", s)
	}
	// The flight recorder is live.
	if rec, ok := r.FlightRecording(); !ok || rec == nil || len(rec.Procs) == 0 {
		t.Fatal("hot regime has no flight recording")
	}
	if _, ok := r.FlightProfile(); !ok {
		t.Fatal("hot regime has no flight profile")
	}
	// Stop drains: the snapshot is stable afterwards.
	a := r.Snapshot()
	time.Sleep(20 * time.Millisecond)
	if b := r.Snapshot(); a.Passages != b.Passages || a.Attempts != b.Attempts {
		t.Fatalf("drained regime still moving: %+v vs %+v", a, b)
	}
	// Restart works.
	before := r.Snapshot().Passages
	runBriefly(t, r, func() bool { return r.Snapshot().Passages > before })
}

func TestAbortRegimeAborts(t *testing.T) {
	// 4 workers on one lock with a 100µs deadline: contended waits abort.
	r, err := New("abort", 4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runBriefly(t, r, func() bool {
		s := r.Snapshot()
		return s.Passages > 0 && s.Aborted > 0
	})
	s := r.Snapshot()
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: %+v", s)
	}
}

func TestCrashRegimeRecovers(t *testing.T) {
	r, err := New("crash", 3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runBriefly(t, r, func() bool {
		s := r.Snapshot()
		return s.Crashes > 0 && s.Recoveries > 0 && s.Passages > 0
	})
}

func TestMapRegimes(t *testing.T) {
	for _, name := range []string{"zipf", "churn"} {
		r, err := New(name, 2, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		runBriefly(t, r, func() bool { return r.Snapshot().Passages >= 5 })
		st, ok := r.MapStats()
		if !ok || st.Instantiated == 0 {
			t.Fatalf("%s: no map lifecycle stats: %+v ok=%v", name, st, ok)
		}
		if name == "churn" {
			// 1 shard × 8 slots with unique keys: reclamation must engage.
			if st.Keys > 8 {
				t.Fatalf("churn map holds %d keys over its 8 slots", st.Keys)
			}
		}
	}
}

func TestSoakRegimeAggregates(t *testing.T) {
	r, err := New("soak", 4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runBriefly(t, r, func() bool {
		st := r.Status()
		return st.SoakRuns > 0 && st.Metrics.Passages > 0
	})
	st := r.Status()
	if st.SoakViolations != 0 {
		t.Fatalf("correct locks produced %d violations", st.SoakViolations)
	}
	if _, ok := r.FlightRecording(); ok {
		t.Fatal("soak regime should not expose a native flight recording")
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := New("nope", 2, t.TempDir()); err == nil {
		t.Fatal("unknown regime accepted")
	}
	if _, err := New("hot", 0, t.TempDir()); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestStatusJSONShape(t *testing.T) {
	r, err := New("hot", 1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(r.Status())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"name", "running", "workers", "metrics"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("Status JSON missing %q: %s", k, blob)
		}
	}
}

// rme:sensitive-instructions 0 — read/write only; no FAS or CAS in this file.
//
// Package bakery implements a strongly recoverable variant of Lamport's
// bakery lock: an n-process mutual exclusion algorithm using only read and
// write instructions, with Θ(n) RMRs per passage under the CC model.
//
// It plays two roles in the reproduction:
//
//   - A base/core lock with T(n) = Θ(n). Plugged into the semi-adaptive
//     framework it reproduces the shape of Golab and Ramaraju's Section 4.2
//     row of the paper's Table 1 — O(1) without failures, O(n) with —
//     using a read/write core like theirs.
//   - A reminder of why the paper needs FAS/CAS at all: with read/write
//     (and comparison) primitives alone, Ω(log n) RMRs per passage is a
//     lower bound (Attiya, Hendler & Woelfel 2008), and simple scan-based
//     algorithms like this one pay Θ(n).
//
// Recoverability follows the paper's discipline: every per-process
// variable is shared, segments advance a persistent state machine, and
// each block is idempotent. A crash during the doorway aborts the attempt
// (the ticket is withdrawn — equivalent to the process never having
// arrived); a crash during the scan re-runs it with the same ticket; a
// crash in the CS re-enters via a bounded fast path (BCSR); a crash during
// Exit completes it in Recover.
//
// Like all scan-based locks, waiting spins on remote words: per-passage
// RMRs are bounded under CC (each awaited word is cached until its writer
// changes it) but not under DSM.
package bakery

import (
	"fmt"

	"rme/internal/memory"
)

// Per-process states. Idle is the zero value.
const (
	bsIdle memory.Word = iota
	bsChoosing
	bsChosen
	bsInCS
	bsLeaving
)

// Lock is the recoverable bakery lock.
type Lock struct {
	n        int
	choosing []memory.Addr
	number   []memory.Addr
	state    []memory.Addr
}

// New allocates a bakery lock for n processes in sp.
func New(sp memory.Space, n int) *Lock {
	if n < 1 {
		panic(fmt.Sprintf("bakery: New n = %d", n))
	}
	l := &Lock{
		n:        n,
		choosing: make([]memory.Addr, n),
		number:   make([]memory.Addr, n),
		state:    make([]memory.Addr, n),
	}
	for i := 0; i < n; i++ {
		l.choosing[i] = sp.Alloc(1, i)
		l.number[i] = sp.Alloc(1, i)
		l.state[i] = sp.Alloc(1, i)
	}
	return l
}

// Recover repairs the lock after a failure of the calling process.
func (l *Lock) Recover(p memory.Port) {
	i := p.PID()
	switch p.Read(l.state[i]) {
	case bsChoosing:
		// Crashed mid-doorway: the ticket may be half-taken. Withdraw
		// it and retry from scratch — to every other process this is
		// indistinguishable from the ticket never having been taken.
		p.Write(l.number[i], 0)
		p.Write(l.choosing[i], 0)
		p.Write(l.state[i], bsIdle)
	case bsLeaving:
		l.finishExit(p)
	}
}

// Enter acquires the lock.
func (l *Lock) Enter(p memory.Port) {
	i := p.PID()
	if p.Read(l.state[i]) == bsInCS {
		return // crashed inside the CS: bounded re-entry (BCSR)
	}

	if p.Read(l.state[i]) == bsIdle {
		// Doorway: draw a ticket larger than every ticket in sight.
		p.Write(l.choosing[i], 1)
		p.Write(l.state[i], bsChoosing)
		var max memory.Word
		for j := 0; j < l.n; j++ {
			if v := p.Read(l.number[j]); v > max {
				max = v
			}
		}
		p.Label("bakery:ticket")
		p.Write(l.number[i], max+1)
		p.Write(l.choosing[i], 0)
		p.Write(l.state[i], bsChosen)
	}

	// Scan: wait for every smaller-ticket process. Re-running the scan
	// after a crash is harmless — the ticket is unchanged, so priority
	// is preserved.
	me := p.Read(l.number[i])
	for j := 0; j < l.n; j++ {
		if j == i {
			continue
		}
		for memory.AsBool(p.Read(l.choosing[j])) {
			p.Pause()
		}
		for {
			v := p.Read(l.number[j])
			if v == 0 || v > me || (v == me && j > i) {
				break
			}
			p.Pause()
		}
	}
	p.Write(l.state[i], bsInCS)
}

// Exit releases the lock. Bounded; a crashed Exit is completed by Recover.
func (l *Lock) Exit(p memory.Port) {
	i := p.PID()
	p.Write(l.state[i], bsLeaving)
	l.finishExit(p)
}

func (l *Lock) finishExit(p memory.Port) {
	i := p.PID()
	p.Write(l.number[i], 0)
	p.Write(l.state[i], bsIdle)
}

package bakery

import (
	"testing"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
)

func factory(sp memory.Space, n int) sim.Lock { return New(sp, n) }

func mustRun(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMutualExclusion(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{1, 2, 3, 6} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 4, Seed: int64(n) * 5})
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v n=%d] ME violated", model, n)
			}
			if err := check.Satisfaction(res); err != nil {
				t.Fatalf("[%v n=%d] %v", model, n, err)
			}
		}
	}
}

func TestLinearRMRGrowth(t *testing.T) {
	// T(n) = Θ(n): the doorway max-scan plus the wait-scan read all n
	// slots. RMRs must grow roughly linearly in n (unlike the tree locks).
	maxAt := func(n int) int64 {
		res := mustRun(t, sim.Config{N: n, Model: memory.CC, Requests: 3, Seed: 2})
		return res.SummarizePassageRMRs(nil).Max
	}
	m4, m32 := maxAt(4), maxAt(32)
	if m32 < 3*m4 {
		t.Fatalf("growth 4→32 too shallow for Θ(n): %d → %d", m4, m32)
	}
}

func TestCrashSweep(t *testing.T) {
	// Strong recoverability: crash at every instruction offset in turn —
	// doorway (ticket withdrawal), scan (re-scan), CS (BCSR) and exit.
	for at := int64(0); at < 60; at += 2 {
		plan := &sim.CrashAtOp{PID: 1, OpIndex: at}
		res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 2, Seed: 7, Plan: plan,
			MaxSteps: 5_000_000})
		if res.MaxCSOverlap != 1 {
			t.Fatalf("at=%d: ME violated", at)
		}
		if got := len(res.Requests); got != 8 {
			t.Fatalf("at=%d: %d requests, want 8", at, got)
		}
	}
}

func TestRepeatedCrashes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		plan := &sim.RandomFailures{Rate: 0.01, MaxPerProcess: 3, DuringPassage: true}
		res := mustRun(t, sim.Config{N: 5, Model: memory.CC, Requests: 3, Seed: seed, Plan: plan,
			MaxSteps: 10_000_000})
		if res.MaxCSOverlap != 1 {
			t.Fatalf("seed=%d: ME violated with %d crashes", seed, res.CrashCount())
		}
		if got := len(res.Requests); got != 15 {
			t.Fatalf("seed=%d: %d requests, want 15", seed, got)
		}
	}
}

func TestCrashInCSReentry(t *testing.T) {
	plan := sim.PlanFunc(func(ctx sim.StepCtx) bool {
		return ctx.PID == 2 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 2, Seed: 9, Plan: plan})
	if err := check.BCSR(res, 100); err != nil {
		t.Fatal(err)
	}
}

func TestTicketOrderIsFCFSish(t *testing.T) {
	// In a failure-free history, processes enter the CS in ticket order:
	// the doorway write is the serialization point.
	res := mustRun(t, sim.Config{N: 5, Model: memory.CC, Requests: 3, Seed: 11, RecordOps: true})
	if err := check.FCFS(res, "bakery:ticket"); err != nil {
		// Ticket ties are broken by pid, so strict doorway-order FCFS
		// can be violated between concurrent choosers; tolerate only
		// tie-related reorderings by checking satisfaction instead.
		t.Logf("doorway order differs (ties are pid-broken): %v", err)
	}
	if err := check.Satisfaction(res); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(a, 0)
}

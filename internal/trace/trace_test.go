package trace

import (
	"strings"
	"testing"

	"rme/internal/core"
	"rme/internal/memory"
	"rme/internal/sim"
)

func run(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, func(sp memory.Space, n int) sim.Lock {
		return core.NewWRLock(sp, n, "wr", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimelineBasics(t *testing.T) {
	res := run(t, sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 3})
	out := Timeline(res, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 process rows
		t.Fatalf("%d lines, want 4:\n%s", len(lines), out)
	}
	for pid, row := range lines[1:] {
		if !strings.HasPrefix(row, "p") {
			t.Fatalf("row %d missing prefix: %q", pid, row)
		}
		for _, sym := range []string{"█", "│"} {
			if !strings.Contains(row, sym) {
				t.Fatalf("process row missing %q:\n%s", sym, out)
			}
		}
	}
}

func TestTimelineShowsCrashes(t *testing.T) {
	plan := &sim.CrashAtOp{PID: 1, OpIndex: 4}
	res := run(t, sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 5, Plan: plan})
	out := Timeline(res, 80)
	if !strings.Contains(out, "✖") {
		t.Fatalf("crash symbol missing:\n%s", out)
	}
}

func TestTimelineEdgeCases(t *testing.T) {
	if got := Timeline(&sim.Result{}, 40); !strings.Contains(got, "empty") {
		t.Fatalf("empty history rendering: %q", got)
	}
	res := run(t, sim.Config{N: 1, Model: memory.CC, Requests: 1, Seed: 1})
	out := Timeline(res, 3) // clamped up to the minimum width
	if !strings.Contains(out, "p0") {
		t.Fatalf("narrow timeline broken:\n%s", out)
	}
}

func TestPassageTable(t *testing.T) {
	plan := &sim.CrashAtOp{PID: 0, OpIndex: 3}
	res := run(t, sim.Config{N: 2, Model: memory.CC, Requests: 2, Seed: 7, Plan: plan})
	out := PassageTable(res)
	if !strings.Contains(out, "✖") {
		t.Fatalf("crashed passage not marked:\n%s", out)
	}
	// One line per passage plus the header.
	lines := strings.Count(out, "\n")
	if lines != len(res.Passages)+1 {
		t.Fatalf("%d lines for %d passages", lines, len(res.Passages))
	}
}

func TestCrashTable(t *testing.T) {
	if got := CrashTable(&sim.Result{}); !strings.Contains(got, "no crashes") {
		t.Fatalf("empty crash table: %q", got)
	}
	plan := &sim.CrashAtOp{PID: 1, OpIndex: 4}
	res := run(t, sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 5, Plan: plan})
	if res.CrashCount() == 0 {
		t.Fatal("plan injected no crash")
	}
	out := CrashTable(res)
	if !strings.Contains(out, "op-index") || !strings.Contains(out, "p1") {
		t.Fatalf("crash table missing columns:\n%s", out)
	}
	// The crash coordinate shown is the replay coordinate: CrashPoint
	// {PID:1, OpIndex:4} reproduces it.
	if !strings.Contains(out, "4") {
		t.Fatalf("crash table missing op index 4:\n%s", out)
	}
}

package trace

import (
	"strings"
	"testing"

	"rme/internal/core"
	"rme/internal/flight"
	"rme/internal/grlock"
	"rme/internal/memory"
	"rme/internal/sim"
)

// runBA runs a BA-Lock simulation with the instruction stream recorded,
// optionally under a crash plan.
func runBA(t *testing.T, n, requests int, plan sim.FailurePlan) *sim.Result {
	t.Helper()
	r, err := sim.New(sim.Config{N: n, Model: memory.CC, Requests: requests,
		Seed: 11, Plan: plan, RecordOps: true},
		func(sp memory.Space, nn int) sim.Lock {
			return core.NewBALock(sp, nn, 2, func(sp memory.Space, nn int) core.RecoverableLock {
				return grlock.NewTournament(sp, nn)
			}, nil)
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimRecordingLifecycle(t *testing.T) {
	res := run(t, sim.Config{N: 2, Model: memory.CC, Requests: 2, Seed: 3, RecordOps: true})
	rec := SimRecording(res)
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rec.Source != flight.SourceSim || rec.Clock != flight.ClockSteps {
		t.Fatalf("header %+v", rec)
	}
	for pid, events := range rec.Procs {
		counts := map[flight.Kind]int{}
		for _, ev := range events {
			counts[ev.Kind]++
		}
		// Failure-free run: every request is one completed passage.
		if counts[flight.KindPassageBegin] != 2 || counts[flight.KindPassageEnd] != 2 ||
			counts[flight.KindCSEnter] != 2 || counts[flight.KindCSExit] != 2 {
			t.Errorf("p%d lifecycle counts %v", pid, counts)
		}
		if counts[flight.KindCrash] != 0 || counts[flight.KindRecover] != 0 {
			t.Errorf("p%d has failure events in a failure-free run", pid)
		}
		// The WR lock's sensitive FAS is labeled: phase events present.
		if counts[flight.KindPhaseFilter] == 0 {
			t.Errorf("p%d has no filter phase events despite RecordOps", pid)
		}
	}
}

func TestSimRecordingCrashAndRecover(t *testing.T) {
	plan := &sim.CrashAtOp{PID: 1, OpIndex: 4}
	res := run(t, sim.Config{N: 2, Model: memory.CC, Requests: 2, Seed: 5,
		Plan: plan, RecordOps: true})
	if res.CrashCount() == 0 {
		t.Fatal("plan injected no crash")
	}
	rec := SimRecording(res)
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var crashes, recovers int
	for _, ev := range rec.Procs[1] {
		switch ev.Kind {
		case flight.KindCrash:
			crashes++
		case flight.KindRecover:
			recovers++
		}
	}
	if crashes == 0 {
		t.Error("no crash events for the crashed process")
	}
	if recovers == 0 {
		t.Error("no recover event on the retry passage")
	}
	// A sim recording feeds the Chrome converter directly.
	tr, err := flight.Chrome(rec)
	if err != nil {
		t.Fatalf("Chrome on sim recording: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("empty Chrome trace")
	}
}

func TestSimRecordingEscalationLevels(t *testing.T) {
	// An unsafe crash right after the sensitive FAS forces the victim's
	// next passage onto the slow path: level-2 phase events must appear.
	plan := &sim.CrashOnLabel{PID: 0, Label: "F1:fas", After: true}
	res := runBA(t, 3, 3, plan)
	if res.CrashCount() == 0 {
		t.Skip("plan did not fire for this schedule")
	}
	rec := SimRecording(res)
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	maxCore := 0
	for _, events := range rec.Procs {
		for _, ev := range events {
			if ev.Kind == flight.KindPhaseCore && ev.Level > maxCore {
				maxCore = ev.Level
			}
		}
	}
	deep := res.DeepestLevels()
	if deep == nil {
		t.Fatal("DeepestLevels returned nil with RecordOps on")
	}
	wantDeep := 1
	for _, d := range deep {
		if d > wantDeep {
			wantDeep = d
		}
	}
	if wantDeep < 2 {
		t.Skip("no escalation under this schedule")
	}
	if maxCore < 1 {
		t.Errorf("escalated run has no core phase events (deepest=%d)", wantDeep)
	}
}

func TestSimRecordingWithoutOps(t *testing.T) {
	res := run(t, sim.Config{N: 2, Model: memory.CC, Requests: 1, Seed: 3})
	rec := SimRecording(res)
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for pid, events := range rec.Procs {
		for _, ev := range events {
			if ev.Kind.IsPhase() {
				t.Errorf("p%d has phase event %v without RecordOps", pid, ev.Kind)
			}
		}
		if len(events) == 0 {
			t.Errorf("p%d has no lifecycle events", pid)
		}
	}
	if res.DeepestLevels() != nil {
		t.Error("DeepestLevels non-nil without RecordOps")
	}
}

func TestLabelLevel(t *testing.T) {
	cases := []struct {
		label string
		want  int
	}{
		{"F1:fas", 1}, {"F2:try", 2}, {"F13:fas", 13},
		{"wr:fas", 1}, {"mcs:handoff", 1}, {"F:try", 1}, {"Fx:fas", 1},
	}
	for _, tc := range cases {
		if got := labelLevel(tc.label); got != tc.want {
			t.Errorf("labelLevel(%q) = %d, want %d", tc.label, got, tc.want)
		}
	}
}

func TestFlightTimelineSymbols(t *testing.T) {
	res := run(t, sim.Config{N: 2, Model: memory.CC, Requests: 2, Seed: 3, RecordOps: true})
	out := FlightTimeline(SimRecording(res), 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	// Identical symbol vocabulary to Timeline, including the legend.
	if !strings.Contains(lines[0], symLegend) {
		t.Fatalf("legend differs from Timeline's:\n%s", lines[0])
	}
	for _, sym := range []string{"█", "│", "━"} {
		if !strings.Contains(out, sym) {
			t.Fatalf("missing %q:\n%s", sym, out)
		}
	}
}

func TestFlightTimelineCrashColumn(t *testing.T) {
	plan := &sim.CrashAtOp{PID: 1, OpIndex: 4}
	res := run(t, sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 5, Plan: plan})
	out := FlightTimeline(SimRecording(res), 80)
	if !strings.Contains(out, "✖") {
		t.Fatalf("crash symbol missing:\n%s", out)
	}
}

func TestFlightTimelineNativeClock(t *testing.T) {
	r := flight.NewRecorder(2, 32)
	for pid := 0; pid < 2; pid++ {
		r.PassageBegin(pid)
		r.CSEnter(pid)
		r.CSExit(pid)
		r.PassageEnd(pid)
	}
	out := FlightTimeline(r.Snapshot(), 40)
	if !strings.Contains(out, "ns clock") {
		t.Fatalf("native clock not reported:\n%s", out)
	}
	for _, sym := range []string{"█", "│"} {
		if !strings.Contains(out, sym) {
			t.Fatalf("missing %q:\n%s", sym, out)
		}
	}
}

func TestFlightTimelineEmpty(t *testing.T) {
	rec := &flight.Recording{Schema: flight.RecordingSchema, N: 0}
	if got := FlightTimeline(rec, 40); !strings.Contains(got, "empty") {
		t.Fatalf("empty recording rendering: %q", got)
	}
}

func TestTimelineLevelsAnnotation(t *testing.T) {
	res := run(t, sim.Config{N: 2, Model: memory.CC, Requests: 1, Seed: 3, RecordOps: true})
	out := TimelineLevels(res, 40, []int{1, 2})
	if !strings.Contains(out, "deepest level 1") || !strings.Contains(out, "deepest level 2") {
		t.Fatalf("level annotations missing:\n%s", out)
	}
	// Zero entries and nil leave rows unannotated.
	plain := TimelineLevels(res, 40, []int{0, 0})
	if strings.Contains(plain, "deepest level") {
		t.Fatalf("zero levels still annotated:\n%s", plain)
	}
	if TimelineLevels(res, 40, nil) != Timeline(res, 40) {
		t.Fatal("nil levels differs from plain Timeline")
	}
}

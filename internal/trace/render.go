package trace

// The shared timeline renderer. Both the simulator's event history and a
// flight recording reduce to the same lifecycle stream — NCS, passage,
// CS enter/exit, crash, satisfied — rendered one row per process, one
// column per slice of (logical or wall-clock) time. Keeping a single
// renderer is what makes the two chart flavors identical in symbol
// vocabulary by construction.

// tlKind is a renderer-level lifecycle event kind.
type tlKind uint8

const (
	tlNCS tlKind = iota
	tlPassage
	tlCSEnter
	tlCSExit
	tlCrash
	tlSatisfied
)

// tlEvent is one lifecycle event on the shared renderer's clock. Events
// must arrive tick-ordered per process; interleaving between processes is
// irrelevant (rows are independent).
type tlEvent struct {
	pid  int
	tick int64
	kind tlKind
}

// phase is the renderer's per-process state between events.
type phase uint8

const (
	phNCS phase = iota
	phPassage
	phCS
)

// renderRows buckets ticks in [lo, hi) into width columns and renders the
// n process rows. hi must be greater than every event tick.
func renderRows(n, width int, lo, hi int64, events []tlEvent) [][]rune {
	span := hi - lo
	if span < 1 {
		span = 1
	}
	bucket := func(tick int64) int {
		b := int((tick - lo) * int64(width) / span)
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}

	rows := make([][]rune, n)
	for i := range rows {
		rows[i] = make([]rune, width)
	}
	cur := make([]phase, n)
	mark := make([]int, n) // next column to fill per process

	fill := func(pid, upto int) {
		sym := symNCS
		switch cur[pid] {
		case phPassage:
			sym = symPassage
		case phCS:
			sym = symCS
		}
		for c := mark[pid]; c <= upto && c < width; c++ {
			rows[pid][c] = sym
		}
		if upto+1 > mark[pid] {
			mark[pid] = upto + 1
		}
	}
	point := func(pid, col int, sym rune) {
		fill(pid, col-1)
		if col < width {
			rows[pid][col] = sym
			if col+1 > mark[pid] {
				mark[pid] = col + 1
			}
		}
	}

	for _, ev := range events {
		if ev.pid < 0 || ev.pid >= n {
			continue
		}
		col := bucket(ev.tick)
		switch ev.kind {
		case tlNCS:
			fill(ev.pid, col-1)
			cur[ev.pid] = phNCS
		case tlPassage:
			fill(ev.pid, col-1)
			cur[ev.pid] = phPassage
		case tlCSEnter:
			fill(ev.pid, col-1)
			cur[ev.pid] = phCS
		case tlCSExit:
			fill(ev.pid, col)
			cur[ev.pid] = phPassage
		case tlCrash:
			point(ev.pid, col, symCrash)
			cur[ev.pid] = phNCS
		case tlSatisfied:
			point(ev.pid, col, symSatisfied)
			cur[ev.pid] = phNCS
		}
	}
	for pid := 0; pid < n; pid++ {
		fill(pid, width-1)
	}
	return rows
}

// Package trace renders simulation histories as human-readable timelines.
// One row per process, one column per slice of logical time:
//
//	p0  ····━━━━████━╸···│····━━████━╸·│
//	p1  ····━━━━━━━━━━━━━━━━━✖····━━━━█
//
// where · is the non-critical section, ━ a passage outside the CS
// (Recover/Enter/Exit), █ the critical section, ✖ a crash and │ request
// satisfaction. The renderer makes fragmentation, blocking, crashes and
// recovery visually obvious, and doubles as a quick sanity check that two
// █ columns never overlap for a strongly recoverable lock.
package trace

import (
	"fmt"
	"strings"

	"rme/internal/sim"
)

// Symbols used in timelines.
const (
	symNCS       = '·'
	symPassage   = '━'
	symCS        = '█'
	symCrash     = '✖'
	symSatisfied = '│'
)

type phase uint8

const (
	phNCS phase = iota
	phPassage
	phCS
)

// Timeline renders the lifecycle events of res as an ASCII chart with at
// most width time columns (minimum 10). Events must be present (they
// always are; RecordOps is not required).
func Timeline(res *sim.Result, width int) string {
	if width < 10 {
		width = 10
	}
	n := res.Config.N
	if n == 0 || len(res.Events) == 0 {
		return "(empty history)\n"
	}
	last := res.Events[len(res.Events)-1].Seq + 1
	bucket := func(seq int64) int {
		b := int(seq * int64(width) / last)
		if b >= width {
			b = width - 1
		}
		return b
	}

	rows := make([][]rune, n)
	for i := range rows {
		rows[i] = make([]rune, width)
	}
	cur := make([]phase, n)
	mark := make([]int, n) // next column to fill per process

	fill := func(pid, upto int) {
		sym := symNCS
		switch cur[pid] {
		case phPassage:
			sym = symPassage
		case phCS:
			sym = symCS
		}
		for c := mark[pid]; c <= upto && c < width; c++ {
			rows[pid][c] = sym
		}
		if upto+1 > mark[pid] {
			mark[pid] = upto + 1
		}
	}
	point := func(pid, col int, sym rune) {
		fill(pid, col-1)
		if col < width {
			rows[pid][col] = sym
			if col+1 > mark[pid] {
				mark[pid] = col + 1
			}
		}
	}

	for _, ev := range res.Events {
		if ev.PID < 0 || ev.PID >= n {
			continue
		}
		col := bucket(ev.Seq)
		switch ev.Kind {
		case sim.EvNCS:
			fill(ev.PID, col-1)
			cur[ev.PID] = phNCS
		case sim.EvPassageStart:
			fill(ev.PID, col-1)
			cur[ev.PID] = phPassage
		case sim.EvCSEnter:
			fill(ev.PID, col-1)
			cur[ev.PID] = phCS
		case sim.EvCSExit:
			fill(ev.PID, col)
			cur[ev.PID] = phPassage
		case sim.EvCrash:
			point(ev.PID, col, symCrash)
			cur[ev.PID] = phNCS
		case sim.EvSatisfied:
			point(ev.PID, col, symSatisfied)
			cur[ev.PID] = phNCS
		}
	}
	for pid := 0; pid < n; pid++ {
		fill(pid, width-1)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline (%d steps, %d columns; · ncs  ━ passage  █ CS  ✖ crash  │ satisfied)\n",
		res.Steps, width)
	for pid := 0; pid < n; pid++ {
		fmt.Fprintf(&sb, "p%-3d %s\n", pid, string(rows[pid]))
	}
	return sb.String()
}

// CrashTable lists every injected failure with its deterministic placement
// (pid, per-process instruction index) and the instruction the process was
// parked at — the same coordinates a repro artifact's crash points use, so
// a replayed violation can be read off directly against its artifact.
func CrashTable(res *sim.Result) string {
	if len(res.Crashes) == 0 {
		return "(no crashes)\n"
	}
	var sb strings.Builder
	sb.WriteString("pid  op-index  seq      in-CS  at instruction\n")
	for _, c := range res.Crashes {
		inCS := ""
		if c.InCS {
			inCS = "✖"
		}
		at := "(lifecycle boundary)"
		if c.Op.Kind != 0 {
			at = fmt.Sprintf("%s %d", c.Op.Kind, c.Op.Addr)
			if c.Op.Label != "" {
				at += " [" + c.Op.Label + "]"
			}
		}
		fmt.Fprintf(&sb, "p%-3d %-9d %-8d %-6s %s\n", c.PID, c.OpIndex, c.Seq, inCS, at)
	}
	return sb.String()
}

// PassageTable lists every passage with its cost — a compact textual
// companion to the timeline.
func PassageTable(res *sim.Result) string {
	var sb strings.Builder
	sb.WriteString("pid  request  attempt  RMRs  ops   crashed  [start, end]\n")
	for _, p := range res.Passages {
		crashed := ""
		if p.Crashed {
			crashed = "✖"
		}
		fmt.Fprintf(&sb, "p%-3d %-8d %-8d %-5d %-5d %-8s [%d, %d]\n",
			p.PID, p.Request, p.Attempt, p.RMRs, p.Ops, crashed, p.StartSeq, p.EndSeq)
	}
	return sb.String()
}

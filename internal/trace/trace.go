// Package trace renders simulation histories as human-readable timelines.
// One row per process, one column per slice of logical time:
//
//	p0  ····━━━━████━╸···│····━━████━╸·│
//	p1  ····━━━━━━━━━━━━━━━━━✖····━━━━█
//
// where · is the non-critical section, ━ a passage outside the CS
// (Recover/Enter/Exit), █ the critical section, ✖ a crash and │ request
// satisfaction. The renderer makes fragmentation, blocking, crashes and
// recovery visually obvious, and doubles as a quick sanity check that two
// █ columns never overlap for a strongly recoverable lock.
package trace

import (
	"fmt"
	"strings"

	"rme/internal/sim"
)

// Symbols used in timelines.
const (
	symNCS       = '·'
	symPassage   = '━'
	symCS        = '█'
	symCrash     = '✖'
	symSatisfied = '│'
)

// symLegend is the shared legend text: simulation and flight-recording
// timelines use the identical symbol vocabulary.
const symLegend = "· ncs  ━ passage  █ CS  ✖ crash  │ satisfied"

// Timeline renders the lifecycle events of res as an ASCII chart with at
// most width time columns (minimum 10). Events must be present (they
// always are; RecordOps is not required).
func Timeline(res *sim.Result, width int) string {
	return TimelineLevels(res, width, nil)
}

// TimelineLevels renders the same chart as Timeline with each process
// row's legend annotated with the deepest BA-Lock level that process
// reached (levels as produced by sim.Result.DeepestLevels; nil or a zero
// entry leaves the row unannotated), making escalation visible directly
// in the chart.
func TimelineLevels(res *sim.Result, width int, levels []int) string {
	if width < 10 {
		width = 10
	}
	n := res.Config.N
	if n == 0 || len(res.Events) == 0 {
		return "(empty history)\n"
	}
	last := res.Events[len(res.Events)-1].Seq + 1
	var events []tlEvent
	for _, ev := range res.Events {
		if ev.PID < 0 || ev.PID >= n {
			continue
		}
		var k tlKind
		switch ev.Kind {
		case sim.EvNCS:
			k = tlNCS
		case sim.EvPassageStart:
			k = tlPassage
		case sim.EvCSEnter:
			k = tlCSEnter
		case sim.EvCSExit:
			k = tlCSExit
		case sim.EvCrash:
			k = tlCrash
		case sim.EvSatisfied:
			k = tlSatisfied
		default:
			continue
		}
		events = append(events, tlEvent{pid: ev.PID, tick: ev.Seq, kind: k})
	}
	rows := renderRows(n, width, 0, last, events)

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline (%d steps, %d columns; %s)\n", res.Steps, width, symLegend)
	writeRows(&sb, rows, levels)
	return sb.String()
}

// writeRows renders one "p<pid> <cells>" line per process, annotated with
// the process's deepest level when known.
func writeRows(sb *strings.Builder, rows [][]rune, levels []int) {
	for pid, row := range rows {
		if levels != nil && pid < len(levels) && levels[pid] > 0 {
			fmt.Fprintf(sb, "p%-3d %s  deepest level %d\n", pid, string(row), levels[pid])
		} else {
			fmt.Fprintf(sb, "p%-3d %s\n", pid, string(row))
		}
	}
}

// CrashTable lists every injected failure with its deterministic placement
// (pid, per-process instruction index) and the instruction the process was
// parked at — the same coordinates a repro artifact's crash points use, so
// a replayed violation can be read off directly against its artifact.
func CrashTable(res *sim.Result) string {
	if len(res.Crashes) == 0 {
		return "(no crashes)\n"
	}
	var sb strings.Builder
	sb.WriteString("pid  op-index  seq      in-CS  at instruction\n")
	for _, c := range res.Crashes {
		inCS := ""
		if c.InCS {
			inCS = "✖"
		}
		at := "(lifecycle boundary)"
		if c.Op.Kind != 0 {
			at = fmt.Sprintf("%s %d", c.Op.Kind, c.Op.Addr)
			if c.Op.Label != "" {
				at += " [" + c.Op.Label + "]"
			}
		}
		fmt.Fprintf(&sb, "p%-3d %-9d %-8d %-6s %s\n", c.PID, c.OpIndex, c.Seq, inCS, at)
	}
	return sb.String()
}

// PassageTable lists every passage with its cost — a compact textual
// companion to the timeline.
func PassageTable(res *sim.Result) string {
	var sb strings.Builder
	sb.WriteString("pid  request  attempt  RMRs  ops   crashed  [start, end]\n")
	for _, p := range res.Passages {
		crashed := ""
		if p.Crashed {
			crashed = "✖"
		}
		fmt.Fprintf(&sb, "p%-3d %-8d %-8d %-5d %-5d %-8s [%d, %d]\n",
			p.PID, p.Request, p.Attempt, p.RMRs, p.Ops, crashed, p.StartSeq, p.EndSeq)
	}
	return sb.String()
}

package trace

// Bridges between the simulator's event history, flight recordings, and
// the shared timeline renderer: SimRecording exports a sim run in the
// flight interchange format (so cmd/rmetrace and the Chrome converter
// work on simulated histories too), and FlightTimeline renders a
// recording — native or converted — as the same ASCII chart Timeline
// produces, identical in symbol vocabulary.

import (
	"fmt"
	"strconv"
	"strings"

	"rme/internal/flight"
	"rme/internal/metrics"
	"rme/internal/sim"
)

// labelLevel parses the 1-based BA-Lock level out of a "F<k>:..." label,
// defaulting to 1 for single-level locks ("wr:fas", "mcs:handoff", ...).
func labelLevel(l string) int {
	if i := strings.IndexByte(l, ':'); i > 1 && l[0] == 'F' {
		if k, err := strconv.Atoi(l[1:i]); err == nil && k >= 1 {
			return k
		}
	}
	return 1
}

// SimRecording converts a simulation history into the flight interchange
// format: per-process event streams on the logical steps clock, with the
// SALock phase trajectory reconstructed from instruction labels. Phase
// events (splitter tries, filter acquisitions, slow-path descents,
// handoffs) require the run to have been configured with
// sim.Config.RecordOps; the lifecycle events (passage begin/end, CS
// enter/exit, crash/recover) are always present.
func SimRecording(res *sim.Result) *flight.Recording {
	n := res.Config.N
	rec := &flight.Recording{
		Schema:  flight.RecordingSchema,
		N:       n,
		Source:  flight.SourceSim,
		Clock:   flight.ClockSteps,
		Dropped: make([]uint64, n),
		Procs:   make([][]flight.Event, n),
	}
	if n == 0 {
		return rec
	}
	seq := make([]uint64, n)
	lastTS := make([]int64, n)
	for i := range lastTS {
		lastTS[i] = -1
	}
	emit := func(pid int, tick int64, k flight.Kind, level int) {
		ts := tick
		if ts <= lastTS[pid] {
			ts = lastTS[pid] + 1
		}
		lastTS[pid] = ts
		rec.Procs[pid] = append(rec.Procs[pid],
			flight.Event{Seq: seq[pid], TS: ts, Kind: k, Level: level})
		seq[pid]++
	}
	for _, ev := range res.Events {
		if ev.PID < 0 || ev.PID >= n {
			continue
		}
		switch ev.Kind {
		case sim.EvPassageStart:
			emit(ev.PID, ev.Seq, flight.KindPassageBegin, 0)
			if ev.Attempt > 0 {
				// A retry of the same request: this passage recovers from
				// a crash, exactly the recorder's crashed-flag semantics.
				emit(ev.PID, ev.Seq, flight.KindRecover, 0)
			}
		case sim.EvOp:
			l := ev.Op.Label
			switch {
			case l == "":
			case metrics.IsSplitterTry(l):
				emit(ev.PID, ev.Seq, flight.KindPhaseSplitter, labelLevel(l))
			case metrics.IsFilterFAS(l):
				emit(ev.PID, ev.Seq, flight.KindPhaseFilter, labelLevel(l))
			case metrics.IsHandoff(l):
				emit(ev.PID, ev.Seq, flight.KindHandoff, 0)
			default:
				if lvl := metrics.SlowLevel(l); lvl > 1 {
					// "F<k>:slow" commits level k's slow path: the passage
					// descends into level k's core (SlowLevel reports the
					// level it escalates to, k+1).
					emit(ev.PID, ev.Seq, flight.KindPhaseCore, lvl-1)
				}
			}
		case sim.EvCSEnter:
			emit(ev.PID, ev.Seq, flight.KindCSEnter, 0)
		case sim.EvCSExit:
			emit(ev.PID, ev.Seq, flight.KindCSExit, 0)
		case sim.EvPassageEnd:
			emit(ev.PID, ev.Seq, flight.KindPassageEnd, 0)
		case sim.EvCrash:
			emit(ev.PID, ev.Seq, flight.KindCrash, 0)
		}
	}
	return rec
}

// FlightTimeline renders a flight recording as the ASCII timeline chart,
// one row per process on the recording's clock, using exactly the
// Timeline symbol set. Phase and handoff events refine the chart's
// passage segments in the Chrome view; here they are part of ━ passage.
func FlightTimeline(rec *flight.Recording, width int) string {
	if width < 10 {
		width = 10
	}
	if rec.N == 0 || rec.Events() == 0 {
		return "(empty recording)\n"
	}
	lo, hi := int64(0), int64(0)
	first := true
	var events []tlEvent
	for pid, stream := range rec.Procs {
		for _, ev := range stream {
			if first || ev.TS < lo {
				lo = ev.TS
			}
			if first || ev.TS >= hi {
				hi = ev.TS + 1
			}
			first = false
			var k tlKind
			switch ev.Kind {
			case flight.KindPassageBegin:
				k = tlPassage
			case flight.KindCSEnter:
				k = tlCSEnter
			case flight.KindCSExit:
				k = tlCSExit
			case flight.KindPassageEnd:
				k = tlSatisfied
			case flight.KindCrash:
				k = tlCrash
			default:
				continue // phases, recover, handoff: inside ━ passage
			}
			events = append(events, tlEvent{pid: pid, tick: ev.TS, kind: k})
		}
	}
	rows := renderRows(rec.N, width, lo, hi, events)

	var sb strings.Builder
	dropped := uint64(0)
	for _, d := range rec.Dropped {
		dropped += d
	}
	fmt.Fprintf(&sb, "flight timeline (%d events, %d dropped, %s clock, %d columns; %s)\n",
		rec.Events(), dropped, rec.Clock, width, symLegend)
	writeRows(&sb, rows, nil)
	return sb.String()
}

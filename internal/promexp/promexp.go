// Package promexp renders rme metrics in the Prometheus text exposition
// format (version 0.0.4), the scrape payload cmd/rmeserver serves at
// /metrics.
//
// Metric names are pinned: they are the stable external interface of the
// ops plane (dashboards and alerts key on them), so the tests in this
// package assert the exact family list and any rename is a deliberate,
// reviewed break. The mapping from metrics.Snapshot is one family per
// pinned JSON field — rme_<field>_total for the twelve counters, native
// histograms for the two RMR distributions, counters with a level label
// for the two level distributions.
//
// Encoding is pure: Write only formats values already captured in the
// caller's Snapshot/MapStats/Profile views. Consistency comes from those
// capture paths (the metrics recorder's seqlock snapshots), and the
// passage fast path performs no additional shared-memory operations on
// behalf of a scrape.
package promexp

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rme"
	"rme/internal/buildinfo"
	"rme/internal/flight"
	"rme/internal/metrics"
)

// SoakStats carries the continuous soak regime's campaign tallies.
type SoakStats struct {
	Runs       int
	Violations int
}

// Source is one workload's scrape inputs: the merged passage snapshot
// plus whatever optional views the regime exposes. Every series a Source
// produces carries a workload="<name>" label.
type Source struct {
	Workload string
	Running  bool
	Workers  int
	Snapshot metrics.Snapshot
	// Map holds keyed-map lifecycle stats (map-backed workloads only).
	Map *rme.MapStats
	// Profile holds the flight recorder's phase-latency profile.
	Profile *flight.Profile
	// Soak holds campaign tallies (the soak workload only).
	Soak *SoakStats
}

// snapshotCounters maps the pinned metrics.Snapshot scalar fields to
// their exposition families, in emission order.
var snapshotCounters = []struct {
	name, help string
	get        func(*metrics.Snapshot) uint64
}{
	{"rme_attempts_total", "Passages started; equals passages + aborted + crashed attempts at quiescence.",
		func(s *metrics.Snapshot) uint64 { return s.Attempts }},
	{"rme_passages_total", "Passages completed without a crash (Recover, Enter, CS, Exit).",
		func(s *metrics.Snapshot) uint64 { return s.Passages }},
	{"rme_crashes_total", "Failures delivered, injected or simulated.",
		func(s *metrics.Snapshot) uint64 { return s.Crashes }},
	{"rme_crashed_attempts_total", "Attempts that ended in a crash.",
		func(s *metrics.Snapshot) uint64 { return s.CrashedAttempts }},
	{"rme_aborted_total", "Attempts that backed out crash-safely after cancellation.",
		func(s *metrics.Snapshot) uint64 { return s.Aborted }},
	{"rme_recoveries_total", "Passages that began with a prior crash pending.",
		func(s *metrics.Snapshot) uint64 { return s.Recoveries }},
	{"rme_fast_path_total", "Completed passages that stayed at BA-Lock level 1.",
		func(s *metrics.Snapshot) uint64 { return s.FastPath }},
	{"rme_slow_path_total", "Completed passages that escalated past level 1.",
		func(s *metrics.Snapshot) uint64 { return s.SlowPath }},
	{"rme_splitter_tries_total", "Splitter acquisition attempts.",
		func(s *metrics.Snapshot) uint64 { return s.SplitterTries }},
	{"rme_filter_fas_total", "WR-Lock filter fetch-and-store executions.",
		func(s *metrics.Snapshot) uint64 { return s.FilterFAS }},
	{"rme_rmrs_total", "Remote memory references under the CC model, crashed fragments included.",
		func(s *metrics.Snapshot) uint64 { return s.RMRs }},
	{"rme_ops_total", "Shared-memory instructions executed.",
		func(s *metrics.Snapshot) uint64 { return s.Ops }},
}

// histBounds are the le bucket bounds of the RMR histograms: exact small
// values, then powers of two up to the 257-bucket overflow boundary.
// Samples in a Hist overflow bucket have no exact value and count only
// toward +Inf.
var histBounds = []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

type label struct{ k, v string }

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func fmtLabels(ls []label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

type writer struct {
	w   io.Writer
	err error
}

func (w *writer) printf(format string, args ...any) {
	if w.err == nil {
		_, w.err = fmt.Fprintf(w.w, format, args...)
	}
}

func (w *writer) header(name, help, typ string) {
	w.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (w *writer) sample(name string, ls []label, value float64) {
	w.printf("%s%s %s\n", name, fmtLabels(ls), strconv.FormatFloat(value, 'g', -1, 64))
}

func (w *writer) usample(name string, ls []label, value uint64) {
	w.printf("%s%s %d\n", name, fmtLabels(ls), value)
}

func wl(s Source, more ...label) []label {
	return append([]label{{"workload", s.Workload}}, more...)
}

// histogram emits one native Prometheus histogram family: cumulative
// le buckets over histBounds, +Inf = total samples, _sum a lower bound
// (overflow samples counted at the bucket's lower bound).
func (w *writer) histogram(name, help string, srcs []Source, get func(*metrics.Snapshot) metrics.Hist) {
	w.header(name, help, "histogram")
	for _, s := range srcs {
		h := get(&s.Snapshot)
		exact := len(h.Counts) - 1 // index of the overflow bucket
		var cum uint64
		next := 0
		for _, le := range histBounds {
			for next <= le && next < exact {
				cum += h.Counts[next]
				next++
			}
			w.usample(name+"_bucket", wl(s, label{"le", strconv.Itoa(le)}), cum)
		}
		w.usample(name+"_bucket", wl(s, label{"le", "+Inf"}), h.Total())
		w.usample(name+"_sum", wl(s), h.Sum())
		w.usample(name+"_count", wl(s), h.Total())
	}
}

// levelCounter emits a per-level counter family from a level histogram
// (index 0 = level 1).
func (w *writer) levelCounter(name, help string, srcs []Source, get func(*metrics.Snapshot) []uint64) {
	w.header(name, help, "counter")
	for _, s := range srcs {
		for i, c := range get(&s.Snapshot) {
			w.usample(name, wl(s, label{"level", strconv.Itoa(i + 1)}), c)
		}
	}
}

// Write renders the sources as one exposition payload. Sources are
// sorted by workload name, so successive scrapes of the same fleet are
// line-comparable. binary names the serving process for rme_build_info.
func Write(out io.Writer, binary string, sources []Source) error {
	srcs := append([]Source(nil), sources...)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Workload < srcs[j].Workload })
	w := &writer{w: out}

	w.header("rme_build_info", "Build metadata of the serving binary; value is always 1.", "gauge")
	w.sample("rme_build_info", []label{
		{"binary", binary},
		{"revision", buildinfo.Revision()},
		{"goversion", buildinfo.GoVersion()},
	}, 1)

	w.header("rme_workload_running", "1 while the workload's drivers are live, 0 when stopped.", "gauge")
	for _, s := range srcs {
		v := 0.0
		if s.Running {
			v = 1
		}
		w.sample("rme_workload_running", wl(s), v)
	}
	w.header("rme_workload_workers", "Configured worker (process) count of the workload.", "gauge")
	for _, s := range srcs {
		w.sample("rme_workload_workers", wl(s), float64(s.Workers))
	}

	for _, c := range snapshotCounters {
		w.header(c.name, c.help, "counter")
		for _, s := range srcs {
			w.usample(c.name, wl(s), c.get(&s.Snapshot))
		}
	}

	w.levelCounter("rme_level_passages_total",
		"Completed passages by deepest BA-Lock level reached (level 1 is the fast path).",
		srcs, func(s *metrics.Snapshot) []uint64 { return s.LevelHist })
	w.levelCounter("rme_abandoned_attempts_total",
		"Aborted attempts by deepest BA-Lock level at back-out.",
		srcs, func(s *metrics.Snapshot) []uint64 { return s.AbandonedHist })

	w.histogram("rme_passage_rmrs",
		"Per-passage RMR cost distribution; _sum is a lower bound (overflow samples counted at the bucket floor).",
		srcs, func(s *metrics.Snapshot) metrics.Hist { return s.RMRHist })
	w.histogram("rme_abort_rmrs",
		"Per-aborted-attempt RMR cost distribution including the back-out protocol.",
		srcs, func(s *metrics.Snapshot) metrics.Hist { return s.AbortRMRHist })

	w.header("rme_rmr_median", "Exact median per-passage RMR cost from the 257-bucket histogram.", "gauge")
	for _, s := range srcs {
		w.sample("rme_rmr_median", wl(s), float64(s.Snapshot.RMRHist.Quantile(0.5)))
	}
	w.header("rme_rmr_p99", "Exact p99 per-passage RMR cost from the 257-bucket histogram.", "gauge")
	for _, s := range srcs {
		w.sample("rme_rmr_p99", wl(s), float64(s.Snapshot.RMRHist.Quantile(0.99)))
	}

	writeMaps(w, srcs)
	writeProfiles(w, srcs)
	writeSoak(w, srcs)
	return w.err
}

// mapGauges and mapCounters map rme.MapStats totals to families.
var mapGauges = []struct {
	name, help string
	get        func(*rme.MapStats) float64
}{
	{"rme_map_keys", "Live keys across all shards.",
		func(m *rme.MapStats) float64 { return float64(m.Keys) }},
	{"rme_map_segments", "Arena segments across all shards.",
		func(m *rme.MapStats) float64 { return float64(m.Segments) }},
	{"rme_map_footprint_words", "Total shared-memory footprint in words.",
		func(m *rme.MapStats) float64 { return float64(m.FootprintWords) }},
	{"rme_map_slot_words", "Per-key slot size in words.",
		func(m *rme.MapStats) float64 { return float64(m.SlotWords) }},
}

var mapCounters = []struct {
	name, help string
	get        func(*rme.MapStats) uint64
}{
	{"rme_map_instantiated_total", "Keys built.",
		func(m *rme.MapStats) uint64 { return m.Instantiated }},
	{"rme_map_recycled_total", "Instantiations that reused a recycled region.",
		func(m *rme.MapStats) uint64 { return m.Recycled }},
	{"rme_map_evictions_total", "Idle keys evicted.",
		func(m *rme.MapStats) uint64 { return m.Evictions }},
}

var shardCounters = []struct {
	name, help string
	get        func(*rme.MapShardStats) uint64
}{
	{"rme_map_shard_keys", "Live keys in the shard.",
		func(sh *rme.MapShardStats) uint64 { return uint64(sh.Keys) }},
	{"rme_map_shard_free", "Recycled regions awaiting reuse in the shard.",
		func(sh *rme.MapShardStats) uint64 { return uint64(sh.Free) }},
	{"rme_map_shard_instantiated_total", "Keys built in the shard.",
		func(sh *rme.MapShardStats) uint64 { return sh.Instantiated }},
	{"rme_map_shard_evictions_total", "Idle keys evicted from the shard.",
		func(sh *rme.MapShardStats) uint64 { return sh.Evictions }},
}

func writeMaps(w *writer, srcs []Source) {
	var withMap []Source
	for _, s := range srcs {
		if s.Map != nil {
			withMap = append(withMap, s)
		}
	}
	if len(withMap) == 0 {
		return
	}
	for _, g := range mapGauges {
		w.header(g.name, g.help, "gauge")
		for _, s := range withMap {
			w.sample(g.name, wl(s), g.get(s.Map))
		}
	}
	for _, c := range mapCounters {
		w.header(c.name, c.help, "counter")
		for _, s := range withMap {
			w.usample(c.name, wl(s), c.get(s.Map))
		}
	}
	for _, c := range shardCounters {
		typ := "counter"
		if !strings.HasSuffix(c.name, "_total") {
			typ = "gauge"
		}
		w.header(c.name, c.help, typ)
		for _, s := range withMap {
			for i := range s.Map.Shards {
				w.usample(c.name, wl(s, label{"shard", strconv.Itoa(i)}), c.get(&s.Map.Shards[i]))
			}
		}
	}
}

// writeProfiles emits the flight phase-latency profile as one summary
// family: quantile series per (workload, phase, level), with _sum
// reconstructed from the profile's exact mean.
func writeProfiles(w *writer, srcs []Source) {
	var withProf []Source
	for _, s := range srcs {
		if s.Profile != nil && len(s.Profile.Phases) > 0 {
			withProf = append(withProf, s)
		}
	}
	if len(withProf) == 0 {
		return
	}
	w.header("rme_phase_latency_ns",
		"Passage phase wall-clock latency by BA-Lock level; quantiles are log2-bucket lower bounds.",
		"summary")
	for _, s := range withProf {
		for _, ph := range s.Profile.Phases {
			base := wl(s, label{"phase", ph.Phase}, label{"level", strconv.Itoa(ph.Level)})
			w.sample("rme_phase_latency_ns", append(append([]label(nil), base...), label{"quantile", "0.5"}), float64(ph.P50NS))
			w.sample("rme_phase_latency_ns", append(append([]label(nil), base...), label{"quantile", "0.99"}), float64(ph.P99NS))
			w.sample("rme_phase_latency_ns_sum", base, ph.MeanNS*float64(ph.Count))
			w.usample("rme_phase_latency_ns_count", base, ph.Count)
		}
	}
}

func writeSoak(w *writer, srcs []Source) {
	var withSoak []Source
	for _, s := range srcs {
		if s.Soak != nil {
			withSoak = append(withSoak, s)
		}
	}
	if len(withSoak) == 0 {
		return
	}
	w.header("rme_soak_runs_total", "Lockstep adversary campaign runs completed.", "counter")
	for _, s := range withSoak {
		w.usample("rme_soak_runs_total", wl(s), uint64(s.Soak.Runs))
	}
	w.header("rme_soak_violations_total", "Campaign runs that violated a correctness property.", "counter")
	for _, s := range withSoak {
		w.usample("rme_soak_violations_total", wl(s), uint64(s.Soak.Violations))
	}
}

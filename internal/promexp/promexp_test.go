package promexp

import (
	"bytes"
	"regexp"
	"sort"
	"strings"
	"testing"

	"rme"
	"rme/internal/flight"
	"rme/internal/metrics"
)

func sampleSnapshot() metrics.Snapshot {
	rmr := make([]uint64, metrics.RMRBuckets)
	rmr[0] = 2   // two passages at 0 RMRs
	rmr[1] = 5   // five at 1
	rmr[3] = 2   // two at 3
	rmr[256] = 1 // one in overflow (≥ 256)
	return metrics.Snapshot{
		Attempts: 12, Passages: 10, Crashes: 1, CrashedAttempts: 1,
		Aborted: 1, Recoveries: 1, FastPath: 7, SlowPath: 3,
		SplitterTries: 20, FilterFAS: 4, RMRs: 40, Ops: 200,
		LevelHist:     []uint64{7, 3},
		RMRHist:       metrics.Hist{Counts: rmr},
		AbandonedHist: []uint64{1},
		AbortRMRHist:  metrics.Hist{Counts: []uint64{0, 1}},
	}
}

func render(t *testing.T, srcs []Source) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, "rmeserver", srcs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.String()
}

func fullSources() []Source {
	return []Source{
		{Workload: "hot", Running: true, Workers: 4, Snapshot: sampleSnapshot()},
		{Workload: "churn", Workers: 2, Snapshot: metrics.Snapshot{},
			Map: &rme.MapStats{Keys: 3, Segments: 1, FootprintWords: 640, SlotWords: 64,
				Instantiated: 30, Recycled: 20, Evictions: 27,
				Shards: []rme.MapShardStats{{Keys: 3, Free: 2, Instantiated: 30, Evictions: 27}}}},
		{Workload: "soak", Workers: 5, Snapshot: metrics.Snapshot{},
			Soak: &SoakStats{Runs: 8, Violations: 0}},
		{Workload: "zipf", Running: true, Workers: 2, Snapshot: metrics.Snapshot{},
			Profile: &flight.Profile{Phases: []flight.PhaseStats{
				{Phase: "cs", Level: 1, Count: 10, P50NS: 64, P99NS: 1024, MeanNS: 120.5},
			}}},
	}
}

// TestFamilyNamesPinned is the rename tripwire: the exact set of metric
// families is the ops plane's external interface.
func TestFamilyNamesPinned(t *testing.T) {
	out := render(t, fullSources())
	re := regexp.MustCompile(`(?m)^# TYPE (\S+) (\S+)$`)
	got := map[string]string{}
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		got[m[1]] = m[2]
	}
	want := map[string]string{
		"rme_build_info":                   "gauge",
		"rme_workload_running":             "gauge",
		"rme_workload_workers":             "gauge",
		"rme_attempts_total":               "counter",
		"rme_passages_total":               "counter",
		"rme_crashes_total":                "counter",
		"rme_crashed_attempts_total":       "counter",
		"rme_aborted_total":                "counter",
		"rme_recoveries_total":             "counter",
		"rme_fast_path_total":              "counter",
		"rme_slow_path_total":              "counter",
		"rme_splitter_tries_total":         "counter",
		"rme_filter_fas_total":             "counter",
		"rme_rmrs_total":                   "counter",
		"rme_ops_total":                    "counter",
		"rme_level_passages_total":         "counter",
		"rme_abandoned_attempts_total":     "counter",
		"rme_passage_rmrs":                 "histogram",
		"rme_abort_rmrs":                   "histogram",
		"rme_rmr_median":                   "gauge",
		"rme_rmr_p99":                      "gauge",
		"rme_map_keys":                     "gauge",
		"rme_map_segments":                 "gauge",
		"rme_map_footprint_words":          "gauge",
		"rme_map_slot_words":               "gauge",
		"rme_map_instantiated_total":       "counter",
		"rme_map_recycled_total":           "counter",
		"rme_map_evictions_total":          "counter",
		"rme_map_shard_keys":               "gauge",
		"rme_map_shard_free":               "gauge",
		"rme_map_shard_instantiated_total": "counter",
		"rme_map_shard_evictions_total":    "counter",
		"rme_phase_latency_ns":             "summary",
		"rme_soak_runs_total":              "counter",
		"rme_soak_violations_total":        "counter",
	}
	var missing, extra []string
	for k := range want {
		if got[k] != want[k] {
			missing = append(missing, k+" (want "+want[k]+", got "+got[k]+")")
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 || len(extra) > 0 {
		t.Fatalf("family drift:\nmissing/mistyped: %v\nunexpected: %v", missing, extra)
	}
}

func TestWriteLintsClean(t *testing.T) {
	out := render(t, fullSources())
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("own output fails lint: %v\n%s", err, out)
	}
}

func TestCounterValues(t *testing.T) {
	out := render(t, fullSources())
	for _, line := range []string{
		`rme_attempts_total{workload="hot"} 12`,
		`rme_passages_total{workload="hot"} 10`,
		`rme_aborted_total{workload="hot"} 1`,
		`rme_ops_total{workload="hot"} 200`,
		`rme_level_passages_total{workload="hot",level="1"} 7`,
		`rme_level_passages_total{workload="hot",level="2"} 3`,
		`rme_abandoned_attempts_total{workload="hot",level="1"} 1`,
		`rme_workload_running{workload="hot"} 1`,
		`rme_workload_running{workload="churn"} 0`,
		`rme_workload_workers{workload="soak"} 5`,
		`rme_soak_runs_total{workload="soak"} 8`,
		`rme_soak_violations_total{workload="soak"} 0`,
		`rme_map_keys{workload="churn"} 3`,
		`rme_map_evictions_total{workload="churn"} 27`,
		`rme_map_shard_free{workload="churn",shard="0"} 2`,
		`rme_rmr_median{workload="hot"} 1`,
		`rme_rmr_p99{workload="hot"} 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing sample %q", line)
		}
	}
}

// TestHistogramExposition pins the cumulative-bucket semantics: exact
// small-value buckets, overflow samples only in +Inf, _sum a lower bound.
func TestHistogramExposition(t *testing.T) {
	out := render(t, fullSources())
	for _, line := range []string{
		`rme_passage_rmrs_bucket{workload="hot",le="0"} 2`,
		`rme_passage_rmrs_bucket{workload="hot",le="1"} 7`,
		`rme_passage_rmrs_bucket{workload="hot",le="2"} 7`,
		`rme_passage_rmrs_bucket{workload="hot",le="4"} 9`,
		`rme_passage_rmrs_bucket{workload="hot",le="256"} 9`, // overflow not included
		`rme_passage_rmrs_bucket{workload="hot",le="+Inf"} 10`,
		`rme_passage_rmrs_sum{workload="hot"} 267`, // 5*1 + 2*3 + 1*256
		`rme_passage_rmrs_count{workload="hot"} 10`,
		`rme_abort_rmrs_bucket{workload="hot",le="+Inf"} 1`,
		`rme_abort_rmrs_count{workload="hot"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing sample %q", line)
		}
	}
}

func TestSummaryExposition(t *testing.T) {
	out := render(t, fullSources())
	for _, line := range []string{
		`rme_phase_latency_ns{workload="zipf",phase="cs",level="1",quantile="0.5"} 64`,
		`rme_phase_latency_ns{workload="zipf",phase="cs",level="1",quantile="0.99"} 1024`,
		`rme_phase_latency_ns_sum{workload="zipf",phase="cs",level="1"} 1205`,
		`rme_phase_latency_ns_count{workload="zipf",phase="cs",level="1"} 10`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing sample %q", line)
		}
	}
}

func TestBuildInfoAndSourceOrder(t *testing.T) {
	out := render(t, fullSources())
	if !regexp.MustCompile(`(?m)^rme_build_info\{binary="rmeserver",revision="[^"]+",goversion="[^"]+"\} 1$`).
		MatchString(out) {
		t.Fatalf("no build info line in:\n%s", out[:200])
	}
	// Sources are sorted by workload name within every family.
	re := regexp.MustCompile(`(?m)^rme_attempts_total\{workload="([^"]+)"\}`)
	var order []string
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		order = append(order, m[1])
	}
	if want := []string{"churn", "hot", "soak", "zipf"}; strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("workload order %v, want %v", order, want)
	}
	// Deterministic: two renders are byte-identical.
	if out != render(t, fullSources()) {
		t.Fatal("render is not deterministic")
	}
}

func TestOptionalFamiliesOmitted(t *testing.T) {
	out := render(t, []Source{{Workload: "hot", Snapshot: sampleSnapshot()}})
	for _, absent := range []string{"rme_map_", "rme_phase_latency_ns", "rme_soak_"} {
		if strings.Contains(out, absent) {
			t.Errorf("bare-mutex scrape contains %q family", absent)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	out := render(t, []Source{{Workload: "we\"ird\\x\n", Snapshot: metrics.Snapshot{}}})
	if !strings.Contains(out, `rme_attempts_total{workload="we\"ird\\x\n"} 0`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("escaped output fails lint: %v", err)
	}
}

func TestLintRejects(t *testing.T) {
	good := render(t, fullSources())
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty", "", "empty exposition"},
		{"blank line", good + "\n", "blank line"},
		{"no type", "rme_x_total 1\n", "no TYPE"},
		{"bad type", "# HELP x h\n# TYPE x widget\n", "unknown type"},
		{"duplicate type", "# TYPE x gauge\n# TYPE x gauge\n", "duplicate TYPE"},
		{"duplicate help", "# HELP x h\n# HELP x h\n", "duplicate HELP"},
		{"empty help", "# HELP x \n", "empty HELP"},
		{"counter suffix", "# TYPE rme_x counter\n", "does not end in _total"},
		{"bad value", "# TYPE x gauge\nx nope\n", "bad value"},
		{"negative counter", "# TYPE x_total counter\nx_total -1\n", "negative counter"},
		{"duplicate sample", "# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate sample"},
		{"bad label name", "# TYPE x gauge\nx{0a=\"1\"} 1\n", "bad label name"},
		{"bad metric name", "# TYPE x gauge\n0x 1\n", "bad metric name"},
		{"unterminated label", "# TYPE x gauge\nx{a=\"1 1\n", "unterminated label value"},
		{"unknown escape", "# TYPE x gauge\nx{a=\"\\q\"} 1\n", "unknown escape"},
		{"missing value", "# TYPE x gauge\nx\n", "no value"},
		{"malformed labels", "# TYPE x gauge\nx{a} 1\n", "malformed labels"},
		{"unknown keyword", "# NOTE x h\n", "unknown comment keyword"},
		{"malformed comment", "# HELP\n", "malformed comment"},
		{"bucket no le", "# TYPE h histogram\nh_bucket 1\n", "without le"},
		{"bad le", "# TYPE h histogram\nh_bucket{le=\"x\"} 1\n", "bad le bound"},
		{"non-cumulative", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n", "not cumulative"},
		{"no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n", "missing +Inf"},
		{"no count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\n", "missing _count"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 1\n", "!= +Inf bucket"},
		{"le not increasing", "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"not increasing"},
	}
	for _, tc := range cases {
		err := Lint([]byte(tc.data))
		if err == nil {
			t.Errorf("%s: lint accepted bad input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := Lint([]byte(good)); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
}

// TestEmptyHistogramStillWellFormed: a freshly booted workload has no
// samples yet but its histogram series must already exist and lint.
func TestEmptyHistogramStillWellFormed(t *testing.T) {
	out := render(t, []Source{{Workload: "idle", Snapshot: metrics.Snapshot{}}})
	if !strings.Contains(out, `rme_passage_rmrs_bucket{workload="idle",le="+Inf"} 0`+"\n") {
		t.Fatalf("empty histogram malformed:\n%s", out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

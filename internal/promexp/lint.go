package promexp

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a text exposition payload against the subset of the
// Prometheus 0.0.4 format this package emits, plus the repo's own
// conventions. It is the gate behind `rmeserver -checkformat` and the CI
// server-smoke job. Checked:
//
//   - every line is a HELP/TYPE comment or a well-formed sample
//   - metric and label names are legal, label values parse (escapes)
//   - each family has exactly one TYPE (a known type) before its first
//     sample, and at most one HELP
//   - counter family names end in _total
//   - no duplicate (name, labels) sample
//   - histograms: per label set, le buckets are cumulative, end in
//     +Inf, and _count equals the +Inf bucket
func Lint(data []byte) error {
	l := &linter{
		types:  map[string]string{},
		helped: map[string]bool{},
		seen:   map[string]bool{},
		hists:  map[string]*histCheck{},
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if err := l.line(line); err != nil {
			return fmt.Errorf("line %d: %w (%q)", n, err, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("empty exposition")
	}
	return l.finish()
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

type histCheck struct {
	// per base-label-set state, keyed by the canonical label string
	// without le.
	buckets map[string][]bucket
	counts  map[string]float64
	hasCnt  map[string]bool
}

type bucket struct {
	le  float64
	val float64
}

type linter struct {
	types  map[string]string // family -> type
	helped map[string]bool
	seen   map[string]bool // exact sample dedup
	hists  map[string]*histCheck
}

func (l *linter) line(line string) error {
	if line == "" {
		return fmt.Errorf("blank line")
	}
	if strings.HasPrefix(line, "#") {
		return l.comment(line)
	}
	return l.sample(line)
}

func (l *linter) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment")
	}
	name := fields[2]
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	switch fields[1] {
	case "HELP":
		if l.helped[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		l.helped[name] = true
		if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
			return fmt.Errorf("empty HELP for %s", name)
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE")
		}
		typ := fields[3]
		if !validTypes[typ] {
			return fmt.Errorf("unknown type %q", typ)
		}
		if _, dup := l.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %s does not end in _total", name)
		}
		l.types[name] = typ
		if typ == "histogram" {
			l.hists[name] = &histCheck{
				buckets: map[string][]bucket{},
				counts:  map[string]float64{},
				hasCnt:  map[string]bool{},
			}
		}
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
	return nil
}

// family resolves a sample name to its TYPE family, stripping histogram
// and summary suffixes when the base family is declared with that type.
func (l *linter) family(name string) (string, string, error) {
	if typ, ok := l.types[name]; ok {
		return name, typ, nil
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		typ, ok := l.types[base]
		if !ok {
			continue
		}
		if typ == "histogram" || (typ == "summary" && suf != "_bucket") {
			return base, typ, nil
		}
	}
	return "", "", fmt.Errorf("sample %s has no TYPE", name)
}

func (l *linter) sample(line string) error {
	name, labels, valueStr, err := splitSample(line)
	if err != nil {
		return err
	}
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	value, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", valueStr)
	}
	base, typ, err := l.family(name)
	if err != nil {
		return err
	}
	var le string
	var rest []string
	for _, kv := range labels {
		k := kv[0]
		if !labelNameRe.MatchString(k) {
			return fmt.Errorf("bad label name %q", k)
		}
		if k == "le" && typ == "histogram" {
			le = kv[1]
			continue
		}
		rest = append(rest, k+"="+kv[1])
	}
	sort.Strings(rest)
	key := name + "{" + strings.Join(rest, ",") + ",le=" + le + "}"
	if l.seen[key] {
		return fmt.Errorf("duplicate sample %s", key)
	}
	l.seen[key] = true

	if typ == "counter" && value < 0 {
		return fmt.Errorf("negative counter %s", name)
	}
	if typ == "histogram" {
		hc := l.hists[base]
		bkey := strings.Join(rest, ",")
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				return fmt.Errorf("histogram bucket without le")
			}
			bound, perr := parseLE(le)
			if perr != nil {
				return perr
			}
			hc.buckets[bkey] = append(hc.buckets[bkey], bucket{bound, value})
		case strings.HasSuffix(name, "_count"):
			hc.counts[bkey] = value
			hc.hasCnt[bkey] = true
		}
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return inf, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

var inf = func() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}()

func (l *linter) finish() error {
	for fam, hc := range l.hists {
		for bkey, bks := range hc.buckets {
			for i := 1; i < len(bks); i++ {
				if bks[i].le <= bks[i-1].le {
					return fmt.Errorf("%s{%s}: le bounds not increasing", fam, bkey)
				}
				if bks[i].val < bks[i-1].val {
					return fmt.Errorf("%s{%s}: buckets not cumulative (le=%v: %v after %v)",
						fam, bkey, bks[i].le, bks[i].val, bks[i-1].val)
				}
			}
			last := bks[len(bks)-1]
			if last.le != inf {
				return fmt.Errorf("%s{%s}: missing +Inf bucket", fam, bkey)
			}
			if !hc.hasCnt[bkey] {
				return fmt.Errorf("%s{%s}: missing _count", fam, bkey)
			}
			if hc.counts[bkey] != last.val {
				return fmt.Errorf("%s{%s}: _count %v != +Inf bucket %v",
					fam, bkey, hc.counts[bkey], last.val)
			}
		}
	}
	return nil
}

// splitSample parses `name{k="v",...} value` (labels optional) into its
// parts, decoding label-value escapes.
func splitSample(line string) (name string, labels [][2]string, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace < 0 {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, "", fmt.Errorf("no value")
		}
		return rest[:sp], nil, strings.TrimSpace(rest[sp+1:]), nil
	}
	name = rest[:brace]
	rest = rest[brace+1:]
	for {
		rest = strings.TrimLeft(rest, ",")
		if strings.HasPrefix(rest, "}") {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, "", fmt.Errorf("malformed labels")
		}
		k := rest[:eq]
		rest = rest[eq+2:]
		var v strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return "", nil, "", fmt.Errorf("unterminated label value")
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", nil, "", fmt.Errorf("dangling escape")
				}
				switch rest[i+1] {
				case '\\':
					v.WriteByte('\\')
				case '"':
					v.WriteByte('"')
				case 'n':
					v.WriteByte('\n')
				default:
					return "", nil, "", fmt.Errorf("unknown escape \\%c", rest[i+1])
				}
				i += 2
				continue
			}
			v.WriteByte(c)
			i++
		}
		labels = append(labels, [2]string{k, v.String()})
		rest = rest[i:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", nil, "", fmt.Errorf("no value")
	}
	return name, labels, strings.TrimSpace(rest), nil
}

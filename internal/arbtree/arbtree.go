package arbtree

import (
	"fmt"
	"math"

	"rme/internal/memory"
)

type stage struct {
	lock *PortLock
	port int
}

// Tree is the Δ-ary arbitration tree: process i ascends from its leaf
// through ⌈log_Δ n⌉ node locks, entering each through the port of the
// child subtree it came from. With Δ = Θ(log n) the height is
// Θ(log n / log log n) — the paper's sub-logarithmic base-lock shape
// (Jayanti, Jayanti & Joshi, PODC 2019).
//
// The tree is strongly recoverable: each node lock is, and a recovering
// process replays its fixed path idempotently.
type Tree struct {
	n      int
	degree int
	nodes  int
	paths  [][]stage // per process, leaf → root
}

// DefaultDegree returns the fan-out Δ = max(2, ⌈log₂ n⌉) that yields
// height Θ(log n / log log n).
func DefaultDegree(n int) int {
	if n <= 4 {
		return 2
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// New allocates an arbitration tree for n processes with the given degree
// in sp. degree < 2 selects DefaultDegree(n).
func New(sp memory.Space, n, degree int) *Tree {
	if n < 1 {
		panic(fmt.Sprintf("arbtree: New n = %d", n))
	}
	if degree < 2 {
		degree = DefaultDegree(n)
	}
	if degree > 255 {
		degree = 255
	}
	t := &Tree{n: n, degree: degree, paths: make([][]stage, n)}
	t.build(sp, 0, n)
	return t
}

// build splits [lo, hi) into up to degree child ranges and installs a
// node lock whose port p serves child p.
func (t *Tree) build(sp memory.Space, lo, hi int) {
	width := hi - lo
	if width <= 1 {
		return
	}
	k := t.degree
	if width < k {
		k = width
	}
	// Child ranges of near-equal size.
	per := (width + k - 1) / k
	type rng struct{ lo, hi int }
	var kids []rng
	for s := lo; s < hi; s += per {
		e := s + per
		if e > hi {
			e = hi
		}
		kids = append(kids, rng{s, e})
	}
	lock := NewPortLock(sp, len(kids))
	t.nodes++
	for port, kid := range kids {
		t.build(sp, kid.lo, kid.hi)
		for pid := kid.lo; pid < kid.hi; pid++ {
			t.paths[pid] = append(t.paths[pid], stage{lock, port})
		}
	}
}

// Degree returns the fan-out.
func (t *Tree) Degree() int { return t.degree }

// Nodes returns the number of node locks.
func (t *Tree) Nodes() int { return t.nodes }

// Height returns the maximum leaf-to-root path length.
func (t *Tree) Height() int {
	h := 0
	for _, p := range t.paths {
		if len(p) > h {
			h = len(p)
		}
	}
	return h
}

// Recover is empty: each node lock recovers immediately before its Enter,
// following the composite-lock convention of Algorithm 3.
func (t *Tree) Recover(p memory.Port) {}

// Enter acquires every node lock on the process's leaf-to-root path
// (paths are stored leaf first).
func (t *Tree) Enter(p memory.Port) {
	for _, st := range t.paths[p.PID()] {
		st.lock.Recover(p, st.port)
		st.lock.Enter(p, st.port)
	}
}

// Exit releases the path in reverse (root first). Node locks released in
// an earlier attempt ignore the duplicate exit.
func (t *Tree) Exit(p memory.Port) {
	path := t.paths[p.PID()]
	for i := len(path) - 1; i >= 0; i-- {
		path[i].lock.Exit(p, path[i].port)
	}
}

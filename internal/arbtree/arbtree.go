package arbtree

import (
	"fmt"
	"math"

	"rme/internal/memory"
)

type stage struct {
	lock *PortLock
	port int
}

// Tree is the Δ-ary arbitration tree: process i ascends from its leaf
// through ⌈log_Δ n⌉ node locks, entering each through the port of the
// child subtree it came from. With Δ = Θ(log n) the height is
// Θ(log n / log log n) — the paper's sub-logarithmic base-lock shape
// (Jayanti, Jayanti & Joshi, PODC 2019).
//
// The tree is strongly recoverable: each node lock is, and a recovering
// process replays its fixed path idempotently.
type Tree struct {
	n      int
	degree int
	nodes  int
	paths  [][]stage // per process, leaf → root
}

// DefaultDegree returns the fan-out Δ = max(2, ⌈log₂ n⌉) that yields
// height Θ(log n / log log n).
func DefaultDegree(n int) int {
	if n <= 4 {
		return 2
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// New allocates an arbitration tree for n processes with the given degree
// in sp. degree < 2 selects DefaultDegree(n).
func New(sp memory.Space, n, degree int) *Tree {
	if n < 1 {
		panic(fmt.Sprintf("arbtree: New n = %d", n))
	}
	if degree < 2 {
		degree = DefaultDegree(n)
	}
	if degree > 255 {
		degree = 255
	}
	t := &Tree{n: n, degree: degree, paths: make([][]stage, n)}
	t.build(sp, 0, n)
	return t
}

// build splits [lo, hi) into up to degree child ranges and installs a
// node lock whose port p serves child p.
func (t *Tree) build(sp memory.Space, lo, hi int) {
	width := hi - lo
	if width <= 1 {
		return
	}
	k := t.degree
	if width < k {
		k = width
	}
	// Child ranges of near-equal size.
	per := (width + k - 1) / k
	type rng struct{ lo, hi int }
	var kids []rng
	for s := lo; s < hi; s += per {
		e := s + per
		if e > hi {
			e = hi
		}
		kids = append(kids, rng{s, e})
	}
	lock := NewPortLock(sp, len(kids))
	t.nodes++
	for port, kid := range kids {
		t.build(sp, kid.lo, kid.hi)
		for pid := kid.lo; pid < kid.hi; pid++ {
			t.paths[pid] = append(t.paths[pid], stage{lock, port})
		}
	}
}

// Degree returns the fan-out.
func (t *Tree) Degree() int { return t.degree }

// Nodes returns the number of node locks.
func (t *Tree) Nodes() int { return t.nodes }

// Height returns the maximum leaf-to-root path length.
func (t *Tree) Height() int {
	h := 0
	for _, p := range t.paths {
		if len(p) > h {
			h = len(p)
		}
	}
	return h
}

// Recover is empty: each node lock recovers immediately before its Enter,
// following the composite-lock convention of Algorithm 3.
func (t *Tree) Recover(p memory.Port) {}

// Enter acquires every node lock on the process's leaf-to-root path
// (paths are stored leaf first).
func (t *Tree) Enter(p memory.Port) {
	for _, st := range t.paths[p.PID()] {
		st.lock.Recover(p, st.port)
		st.lock.Enter(p, st.port)
	}
}

// Exit releases the path in reverse (root first). Node locks released in
// an earlier attempt ignore the duplicate exit.
func (t *Tree) Exit(p memory.Port) {
	path := t.paths[p.PID()]
	for i := len(path) - 1; i >= 0; i-- {
		path[i].lock.Exit(p, path[i].port)
	}
}

// Abort backs the process out after an unwound Enter. A node acquisition
// that is in flight (appending or queued) is the tree's non-abortable
// window: abandoning a queued reference mid-node would break the node
// lock's strong mutual exclusion, so the acquisition is completed — the
// wait is bounded by the node's queue, i.e. by one base-lock passage —
// and then exactly the held prefix is released in reverse. DESIGN §15
// discusses why this window is acceptable: the tree sits at the bottom of
// the BA-Lock recursion and is reached only after Ω(m²) recent failures.
//
// The walk must not touch any stage past the first one this process does
// not hold: port-state words above the held prefix belong to whichever
// sibling currently owns the port (port exclusivity is guaranteed by
// subtree mutual exclusion, which the aborting process has given up the
// moment it no longer holds the child). Reading them is safe only while
// every stage below is held; running Exit against them would replay a
// sibling's release with a stale sequence number and hand its node to
// the wrong successor — a blanket t.Exit(p) here is a mutual-exclusion
// bug, not a shortcut.
func (t *Tree) Abort(p memory.Port) {
	path := t.paths[p.PID()]
	held := 0 // stages [0, held) are ours to release
	for _, st := range path {
		ps := p.Read(st.lock.pstate[st.port])
		if ps == psAppending || ps == psQueued {
			st.lock.Enter(p, st.port) // complete the in-flight node
			held++
			break
		}
		if ps == psLeaving {
			// An exit interrupted by an earlier crash and not yet
			// repaired by an Enter: the port is still ours; Exit below
			// completes the release. Nothing above survived that exit
			// (releases run root first).
			held++
			break
		}
		if ps != psInCS {
			break // this stage was never reached, so none deeper was
		}
		held++
	}
	for i := held - 1; i >= 0; i-- {
		path[i].lock.Exit(p, path[i].port)
	}
}

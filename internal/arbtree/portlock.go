// rme:sensitive-instructions 0 — strongly recoverable: every RMW below is
// detectable or idempotent on re-execution, so none is sensitive in the
// Definition 3.3 sense.
//
// Package arbtree provides the sub-logarithmic strongly recoverable base
// lock used at the bottom of the paper's recursion: an arbitration tree of
// degree Δ whose nodes are Δ-port strongly recoverable queue locks, in the
// shape of Jayanti, Jayanti and Joshi's construction (PODC 2019).
//
// # The k-port node lock
//
// PortLock is an MCS-style queue lock over k designated ports (at most one
// process attempts each port at a time — guaranteed in the tree by subtree
// mutual exclusion). Unlike classic MCS it appends with a CAS loop whose
// observed predecessor is persisted *before* the tail swing:
//
//	cur ← read(tail); pred[s] ← cur; CAS(tail, cur, ref(s, seq))
//
// so there is no instant at which the queue position is held only in
// private registers — the paper's sensitive-FAS hazard (Section 4.3) is
// traded for bounded CAS retries. Whether an interrupted append succeeded
// is decidable from shared memory: the reference ref(s, seq) is unique per
// acquisition and can only have been observed by others if it reached the
// tail, so "appended ⇔ tail = ref ∨ ∃t: pred[t] = ref", an O(k) scan
// performed only during crash recovery.
//
// Grants are sequence-stamped to make every step idempotent across
// crashes, and the exit uses the Dvir–Taubenfeld wait-free handoff.
//
// Failure-free acquisitions cost O(1) RMRs per node under the CC model
// (the grant spin is on a per-port word, cached until written). Under DSM
// the grant word has no fixed home, so — like Golab and Hendler's
// sub-logarithmic lock (see Table 1's footnote) — the sub-logarithmic
// claim of the tree holds for the CC model.
package arbtree

import (
	"fmt"

	"rme/internal/memory"
)

// Port acquisition states. Idle is the zero value.
const (
	psIdle memory.Word = iota
	psAppending
	psQueued
	psInCS
	psLeaving
)

// selfMark is the Dvir–Taubenfeld exit marker stored in a next word to
// signal "the predecessor left without seeing a successor".
const selfMark = ^memory.Word(0)

// ref encodes an acquisition reference: port s (8 bits) and the port's
// acquisition sequence number. The zero value is the null reference.
func ref(s int, seq memory.Word) memory.Word {
	return seq<<8 | memory.Word(s+1)
}

func refPort(r memory.Word) int        { return int(r&0xff) - 1 }
func refSeq(r memory.Word) memory.Word { return r >> 8 }

// emptyOf is the era-stamped "no successor yet" value of a next word (port
// bits zero, so it collides with neither references nor selfMark). The
// stamp makes a crashed successor's late link-CAS from an earlier era fail
// instead of polluting the port's next acquisition.
func emptyOf(seq memory.Word) memory.Word { return seq << 8 }

// PortLock is a k-port strongly recoverable queue lock.
type PortLock struct {
	k    int
	tail memory.Addr

	seq    []memory.Addr // per port: acquisition sequence number
	pstate []memory.Addr // per port: acquisition state
	pred   []memory.Addr // per port: persisted predecessor reference
	next   []memory.Addr // per port: successor reference or selfMark
	grant  []memory.Addr // per port: sequence number granted the lock
}

// NewPortLock allocates a k-port lock in sp. k is limited to 255 by the
// reference encoding.
func NewPortLock(sp memory.Space, k int) *PortLock {
	if k < 1 || k > 255 {
		panic(fmt.Sprintf("arbtree: NewPortLock k = %d, want 1..255", k))
	}
	l := &PortLock{
		k:      k,
		tail:   sp.Alloc(1, memory.HomeNone),
		seq:    make([]memory.Addr, k),
		pstate: make([]memory.Addr, k),
		pred:   make([]memory.Addr, k),
		next:   make([]memory.Addr, k),
		grant:  make([]memory.Addr, k),
	}
	for s := 0; s < k; s++ {
		l.seq[s] = sp.Alloc(1, memory.HomeNone)
		l.pstate[s] = sp.Alloc(1, memory.HomeNone)
		l.pred[s] = sp.Alloc(1, memory.HomeNone)
		l.next[s] = sp.Alloc(1, memory.HomeNone)
		l.grant[s] = sp.Alloc(1, memory.HomeNone)
	}
	return l
}

// Ports returns k.
func (l *PortLock) Ports() int { return l.k }

// Recover repairs port s after a failure: an interrupted exit is
// completed. Everything else is handled idempotently by Enter.
func (l *PortLock) Recover(p memory.Port, s int) {
	if p.Read(l.pstate[s]) == psLeaving {
		l.finishExit(p, s)
	}
}

// Enter acquires the lock through port s.
func (l *PortLock) Enter(p memory.Port, s int) {
	switch p.Read(l.pstate[s]) {
	case psInCS:
		return // crashed inside the CS: bounded re-entry (BCSR)
	case psLeaving:
		// A crashed exit not yet repaired by Recover.
		l.finishExit(p, s)
	}

	st := p.Read(l.pstate[s])
	if st == psIdle {
		// Start a fresh acquisition.
		seq := p.Read(l.seq[s]) + 1
		p.Write(l.seq[s], seq)
		p.Write(l.next[s], emptyOf(seq))
		p.Write(l.grant[s], 0)
		p.Write(l.pred[s], selfMark)
		p.Write(l.pstate[s], psAppending)
		l.append(p, s)
		p.Write(l.pstate[s], psQueued)
	} else if st == psAppending {
		// Crashed mid-append: decide from shared memory whether the
		// tail swing happened (O(k) scan, recovery only).
		if !l.appended(p, s) {
			l.append(p, s)
		}
		p.Write(l.pstate[s], psQueued)
	}

	if p.Read(l.pstate[s]) == psQueued {
		l.waitTurn(p, s)
		p.Write(l.pstate[s], psInCS)
	}
}

// append pushes ref(s, seq) onto the queue, persisting the observed
// predecessor before each swing so a crash never loses the position.
func (l *PortLock) append(p memory.Port, s int) {
	me := ref(s, p.Read(l.seq[s]))
	// rme:rmw-loop(tail-swing retry: a CAS fails only when another process completed its own enqueue, so retries are bounded by point contention, the paper's O(min(k, log n)) argument)
	for {
		cur := p.Read(l.tail)
		p.Write(l.pred[s], cur)
		p.Label("portlock:cas-tail")
		if p.CAS(l.tail, cur, me) { // rme:nonsensitive(pred is persisted before the CAS, so recovery can tell whether the enqueue took effect)
			return
		}
	}
}

// appended reports whether port s's current reference made it into the
// queue. The reference is unique to this acquisition, so any occurrence —
// in the tail or in a persisted predecessor word (which is always a value
// read from the tail) — proves the swing happened; and conversely, if the
// swing happened, either no one has appended after us (tail still holds
// the reference) or our successor persisted it before its own swing and
// cannot advance past us while we are still here.
func (l *PortLock) appended(p memory.Port, s int) bool {
	me := ref(s, p.Read(l.seq[s]))
	if p.Read(l.tail) == me {
		return true
	}
	for t := 0; t < l.k; t++ {
		if t != s && p.Read(l.pred[t]) == me {
			return true
		}
	}
	return false
}

// waitTurn blocks until the lock is ours: immediately if the queue was
// empty at append time, otherwise after linking to the predecessor and
// waiting for a sequence-stamped grant (or the predecessor's wait-free
// exit marker).
func (l *PortLock) waitTurn(p memory.Port, s int) {
	mySeq := p.Read(l.seq[s])
	prd := p.Read(l.pred[s])
	if prd == 0 {
		return // the queue was empty: the lock is ours
	}
	if p.Read(l.grant[s]) == mySeq {
		return // already granted (crash-retry after the grant arrived)
	}
	pport := refPort(prd)
	me := ref(s, mySeq)
	// Create the link. The expected value is the predecessor's
	// era-stamped empty marker, so this CAS can only succeed against the
	// acquisition we actually queued behind — a late retry after the
	// predecessor's port has been reused fails harmlessly. The outcome
	// is ignored and the word re-read (Section 4.3's discipline).
	p.CAS(l.next[pport], emptyOf(refSeq(prd)), me) // rme:nonsensitive(outcome ignored and word re-read; era stamp makes stale retries fail harmlessly)
	if p.Read(l.next[pport]) == me {
		for p.Read(l.grant[s]) != mySeq {
			p.Pause()
		}
	}
	// Otherwise the predecessor performed its wait-free exit (selfMark),
	// or its acquisition is already over without a grant recorded for us
	// — which also implies the wait-free handoff: the lock is ours.
}

// Exit releases the lock held through port s. Bounded and idempotent.
func (l *PortLock) Exit(p memory.Port, s int) {
	st := p.Read(l.pstate[s])
	if st != psInCS && st != psLeaving {
		return // already fully released (e.g. re-run of a composite exit)
	}
	p.Write(l.pstate[s], psLeaving)
	l.finishExit(p, s)
}

func (l *PortLock) finishExit(p memory.Port, s int) {
	mySeq := p.Read(l.seq[s])
	me := ref(s, mySeq)
	// Detach if we are the last node; ignore the outcome (idempotent).
	p.CAS(l.tail, me, 0) // rme:nonsensitive(detach is idempotent; repeating after a crash is a no-op)
	// Wait-free exit marker: a successor that has not linked yet will
	// find it and take the lock without a grant.
	p.CAS(l.next[s], emptyOf(mySeq), selfMark) // rme:nonsensitive(succeeds at most once per sequence number; re-running it is a no-op)
	if nxt := p.Read(l.next[s]); nxt != selfMark {
		// The link exists: grant the successor by its own sequence
		// number, making duplicate grants to later acquisitions inert.
		p.Write(l.grant[refPort(nxt)], refSeq(nxt))
	}
	p.Write(l.pstate[s], psIdle)
}

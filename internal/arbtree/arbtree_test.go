package arbtree

import (
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
)

func factory(sp memory.Space, n int) sim.Lock { return New(sp, n, 0) }

func mustRun(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRefEncoding(t *testing.T) {
	for _, s := range []int{0, 7, 254} {
		for _, q := range []memory.Word{1, 2, 1 << 30} {
			r := ref(s, q)
			if refPort(r) != s || refSeq(r) != q {
				t.Fatalf("round trip (%d,%d) → %d → (%d,%d)", s, q, r, refPort(r), refSeq(r))
			}
			if r == selfMark || r == 0 || r == emptyOf(q) {
				t.Fatalf("ref collides with a marker")
			}
		}
	}
	if emptyOf(5) == selfMark {
		t.Fatal("empty marker collides with selfMark")
	}
}

func TestDefaultDegree(t *testing.T) {
	tests := []struct{ n, want int }{{1, 2}, {4, 2}, {8, 3}, {16, 4}, {64, 6}, {1000, 10}}
	for _, tt := range tests {
		if got := DefaultDegree(tt.n); got != tt.want {
			t.Errorf("DefaultDegree(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestTreeShape(t *testing.T) {
	a := memory.NewArena(memory.CC, 64)
	tr := New(a, 64, 4)
	if tr.Degree() != 4 {
		t.Fatalf("degree = %d", tr.Degree())
	}
	if tr.Height() != 3 { // 64 = 4^3
		t.Fatalf("height = %d, want 3", tr.Height())
	}
	// A binary tournament over 64 leaves would have height 6; the Δ-ary
	// tree must be strictly shallower (the sub-logarithmic shape).
	tr2 := New(a, 64, 8)
	if tr2.Height() != 2 {
		t.Fatalf("degree-8 height = %d, want 2", tr2.Height())
	}
	one := New(a, 1, 0)
	if one.Height() != 0 || one.Nodes() != 0 {
		t.Fatalf("n=1 tree: height %d nodes %d", one.Height(), one.Nodes())
	}
}

func TestPortLockSingle(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	l := NewPortLock(a, 3)
	p := a.Port(0, nil)
	for i := 0; i < 4; i++ {
		port := i % 3
		l.Recover(p, port)
		l.Enter(p, port)
		l.Exit(p, port)
	}
	if l.Ports() != 3 {
		t.Fatalf("Ports = %d", l.Ports())
	}
}

func TestPortLockReentryAfterCSCrash(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	l := NewPortLock(a, 2)
	p := a.Port(0, nil)
	l.Enter(p, 1)
	before := a.Ops(0)
	l.Recover(p, 1)
	l.Enter(p, 1) // re-entry after an in-CS crash is a bounded fast path
	if got := a.Ops(0) - before; got > 4 {
		t.Fatalf("re-entry took %d ops", got)
	}
	l.Exit(p, 1)
	l.Exit(p, 1) // duplicate exit is a no-op
}

func TestPortLockValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	for _, k := range []int{0, 256} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			NewPortLock(a, k)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0 tree")
		}
	}()
	New(a, 0, 0)
}

func TestTreeMutualExclusion(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{1, 2, 3, 5, 9, 16} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 4, Seed: int64(n)})
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v n=%d] ME violated: overlap %d", model, n, res.MaxCSOverlap)
			}
			if got := len(res.Requests); got != 4*n {
				t.Fatalf("[%v n=%d] %d requests, want %d", model, n, got, 4*n)
			}
		}
	}
}

func TestTreeSubLogRMRShape(t *testing.T) {
	// Failure-free cost grows with the tree height (log n / log log n),
	// strictly slower than the binary tournament's log n.
	maxAt := func(n int) int64 {
		res := mustRun(t, sim.Config{N: n, Model: memory.CC, Requests: 3, Seed: 2})
		return res.SummarizePassageRMRs(nil).Max
	}
	m4, m64 := maxAt(4), maxAt(64)
	if m64 < m4 {
		t.Fatalf("cost shrank with n: %d → %d", m4, m64)
	}
	// Height goes 2 → 3 from n=4 (degree 2) to n=64 (degree 6); cost
	// must stay within a small multiple, nothing like 16x linear growth.
	if m64 > 5*m4 {
		t.Fatalf("growth 4→64 too steep for sub-logarithmic shape: %d → %d", m4, m64)
	}
}

func TestTreeCrashSweepExhaustive(t *testing.T) {
	// Crash each process at every instruction offset in its first
	// passage; ME and progress must survive every placement. This is the
	// main torture test for the port lock's append-recovery scan.
	for _, pid := range []int{0, 1, 3} {
		for at := int64(0); at < 70; at++ {
			plan := &sim.CrashAtOp{PID: pid, OpIndex: at}
			res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 2, Seed: 9, Plan: plan,
				MaxSteps: 5_000_000})
			if res.MaxCSOverlap != 1 {
				t.Fatalf("pid=%d at=%d: ME violated", pid, at)
			}
			if got := len(res.Requests); got != 8 {
				t.Fatalf("pid=%d at=%d: %d requests, want 8", pid, at, got)
			}
		}
	}
}

func TestTreeRepeatedCrashes(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		plan := &sim.RandomFailures{Rate: 0.01, MaxPerProcess: 3, DuringPassage: true}
		res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 4, Seed: seed, Plan: plan,
			MaxSteps: 10_000_000})
		if res.MaxCSOverlap != 1 {
			t.Fatalf("seed=%d: ME violated with %d crashes", seed, res.CrashCount())
		}
		if got := len(res.Requests); got != 24 {
			t.Fatalf("seed=%d: %d requests, want 24", seed, got)
		}
	}
}

func TestTreeCrashAtTailCAS(t *testing.T) {
	// Target the append CAS specifically — the step whose recovery needs
	// the O(k) decision scan — both before and immediately after it.
	for _, after := range []bool{false, true} {
		for occ := 0; occ < 3; occ++ {
			plan := &sim.CrashOnLabel{PID: 1, Label: "portlock:cas-tail", Occurrence: occ, After: after}
			res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 3, Seed: 17, Plan: plan,
				MaxSteps: 5_000_000})
			if res.MaxCSOverlap != 1 {
				t.Fatalf("after=%v occ=%d: ME violated", after, occ)
			}
			if got := len(res.Requests); got != 12 {
				t.Fatalf("after=%v occ=%d: %d requests, want 12", after, occ, got)
			}
		}
	}
}

func TestTreeCrashInCS(t *testing.T) {
	plan := sim.PlanFunc(func(ctx sim.StepCtx) bool {
		return ctx.PID == 2 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := mustRun(t, sim.Config{N: 5, Model: memory.CC, Requests: 2, Seed: 21, Plan: plan})
	crashSeq := res.Crashes[0].Seq
	for _, ev := range res.Events {
		if ev.Seq > crashSeq && ev.Kind == sim.EvCSEnter {
			if ev.PID != 2 {
				t.Fatalf("BCSR violated: process %d entered first", ev.PID)
			}
			break
		}
	}
}

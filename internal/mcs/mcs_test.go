package mcs

import (
	"testing"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
)

func plain(sp memory.Space, n int) sim.Lock   { return New(sp, n) }
func bounded(sp memory.Space, n int) sim.Lock { return NewBoundedExit(sp, n) }

func mustRun(t *testing.T, cfg sim.Config, f sim.Factory) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMutualExclusion(t *testing.T) {
	for name, f := range map[string]sim.Factory{"plain": plain, "bounded-exit": bounded} {
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			for _, n := range []int{1, 2, 4, 8} {
				res := mustRun(t, sim.Config{N: n, Model: model, Requests: 5, Seed: int64(n)}, f)
				if res.MaxCSOverlap != 1 {
					t.Fatalf("[%s %v n=%d] ME violated", name, model, n)
				}
				if err := check.Satisfaction(res); err != nil {
					t.Fatalf("[%s %v n=%d] %v", name, model, n, err)
				}
			}
		}
	}
}

func TestFCFS(t *testing.T) {
	res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 3, Seed: 2, RecordOps: true}, plain)
	if err := check.FCFS(res, "mcs:fas"); err != nil {
		t.Fatal(err)
	}
	res2 := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 3, Seed: 2, RecordOps: true}, bounded)
	if err := check.FCFS(res2, "mcs-dt:fas"); err != nil {
		t.Fatal(err)
	}
}

func TestConstantRMRs(t *testing.T) {
	for name, f := range map[string]sim.Factory{"plain": plain, "bounded-exit": bounded} {
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			var prev int64
			for _, n := range []int{2, 8, 32} {
				res := mustRun(t, sim.Config{N: n, Model: model, Requests: 5, Seed: 7}, f)
				s := res.SummarizePassageRMRs(nil)
				if s.Max > 16 {
					t.Fatalf("[%s %v n=%d] max RMRs = %d, want O(1)", name, model, n, s.Max)
				}
				if prev != 0 && s.Max > prev+4 {
					t.Fatalf("[%s %v] RMRs grew with n: %d → %d", name, model, prev, s.Max)
				}
				prev = s.Max
			}
		}
	}
}

func TestBoundedExitIsBounded(t *testing.T) {
	// With the DT extension, Exit performs a bounded number of
	// instructions even when the successor has appended but not linked.
	// The plain lock's exit spins in that situation; the bounded one
	// must not. We verify the bounded variant's Exit op count directly.
	a := memory.NewArena(memory.CC, 2)
	l := NewBoundedExit(a, 2)
	p := a.Port(0, nil)
	l.Enter(p)
	before := a.Ops(0)
	l.Exit(p)
	if got := a.Ops(0) - before; got > 6 {
		t.Fatalf("bounded exit took %d ops", got)
	}
}

func TestValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	for name, f := range map[string]func(){
		"plain":   func() { New(a, 0) },
		"bounded": func() { NewBoundedExit(a, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

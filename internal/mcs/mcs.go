// rme:sensitive-instructions 0 — these locks are non-recoverable
// baselines; sensitivity (Definition 3.3) is about crash recovery, which
// they do not attempt, so every RMW is marked nonsensitive.
//
// Package mcs implements the classic Mellor-Crummey–Scott queue lock
// (Section 4.1 of the paper) and its bounded-exit extension by Dvir and
// Taubenfeld (Section 4.2) — the two *non-recoverable* locks the weakly
// recoverable WR-Lock is built from.
//
// They exist as ablation baselines: comparing their per-passage RMRs with
// WR-Lock and the framework locks measures the price of each added
// property (bounded exit, weak recoverability, strong recoverability,
// adaptivity). Neither tolerates failures — a crash while holding or
// waiting deadlocks the queue — so the harness only runs them under
// failure-free plans. For the same reason neither implements the
// Aborter interface (DESIGN §15): a mid-queue back-out needs the
// persisted state and idempotent exit instructions of the recoverable
// locks, and the abort adversary skips non-abortable locks.
package mcs

import (
	"fmt"

	"rme/internal/memory"
)

const (
	offLocked = 0
	offNext   = 1
	nodeWords = 2
)

// Lock is the original MCS queue lock. Each process owns one statically
// allocated queue node, reused across acquisitions (safe without the
// bounded-exit extension).
type Lock struct {
	tail memory.Addr
	node []memory.Addr
}

// New allocates an MCS lock for n processes in sp.
func New(sp memory.Space, n int) *Lock {
	if n < 1 {
		panic(fmt.Sprintf("mcs: New n = %d", n))
	}
	l := &Lock{tail: sp.Alloc(1, memory.HomeNone), node: make([]memory.Addr, n)}
	for i := 0; i < n; i++ {
		l.node[i] = sp.Alloc(nodeWords, i)
	}
	return l
}

// Recover is empty: the lock is not recoverable.
func (l *Lock) Recover(p memory.Port) {}

// Enter acquires the lock.
func (l *Lock) Enter(p memory.Port) {
	node := l.node[p.PID()]
	p.Write(node+offNext, memory.FromAddr(memory.Nil))
	p.Write(node+offLocked, memory.Bool(true))
	p.Label("mcs:fas")
	pred := memory.AsAddr(p.FAS(l.tail, memory.FromAddr(node))) // rme:nonsensitive(non-recoverable baseline; never run under failures)
	if pred == memory.Nil {
		return
	}
	p.Write(pred+offNext, memory.FromAddr(node))
	for memory.AsBool(p.Read(node + offLocked)) {
		p.Pause()
	}
}

// Exit releases the lock. The exit is not wait-free: if a successor has
// appended but not yet linked, the leaving process spins until the link
// appears.
func (l *Lock) Exit(p memory.Port) {
	node := l.node[p.PID()]
	if p.CAS(l.tail, memory.FromAddr(node), memory.FromAddr(memory.Nil)) { // rme:nonsensitive(non-recoverable baseline; never run under failures)
		return
	}
	var nxt memory.Addr
	for {
		nxt = memory.AsAddr(p.Read(node + offNext))
		if nxt != memory.Nil {
			break
		}
		p.Pause()
	}
	p.Label("mcs:handoff")
	p.Write(nxt+offLocked, memory.Bool(false))
}

// BoundedExit is the Dvir–Taubenfeld extension: links and the exit marker
// are installed with CAS so that Exit completes in a bounded number of
// steps, handing the lock to a late-linking successor wait-free. A node
// cannot be reused immediately after release, so each acquisition draws a
// fresh node from the space.
type BoundedExit struct {
	n    int
	tail memory.Addr
	mine []memory.Addr // per process: current node
}

// NewBoundedExit allocates a bounded-exit MCS lock for n processes in sp.
func NewBoundedExit(sp memory.Space, n int) *BoundedExit {
	if n < 1 {
		panic(fmt.Sprintf("mcs: NewBoundedExit n = %d", n))
	}
	l := &BoundedExit{n: n, tail: sp.Alloc(1, memory.HomeNone), mine: make([]memory.Addr, n)}
	for i := 0; i < n; i++ {
		l.mine[i] = sp.Alloc(1, i)
	}
	return l
}

// Recover is empty: the lock is not recoverable.
func (l *BoundedExit) Recover(p memory.Port) {}

// Enter acquires the lock.
func (l *BoundedExit) Enter(p memory.Port) {
	i := p.PID()
	node := p.Alloc(nodeWords, i)
	p.Write(l.mine[i], memory.FromAddr(node))
	p.Write(node+offNext, memory.FromAddr(memory.Nil))
	p.Write(node+offLocked, memory.Bool(true))
	p.Label("mcs-dt:fas")
	pred := memory.AsAddr(p.FAS(l.tail, memory.FromAddr(node))) // rme:nonsensitive(non-recoverable baseline; never run under failures)
	if pred == memory.Nil {
		return
	}
	p.CAS(pred+offNext, memory.FromAddr(memory.Nil), memory.FromAddr(node)) // rme:nonsensitive(non-recoverable baseline; outcome ignored and re-read)
	if memory.AsAddr(p.Read(pred+offNext)) == node {
		for memory.AsBool(p.Read(node + offLocked)) {
			p.Pause()
		}
	}
	// Otherwise the predecessor stored its own address: it exited
	// wait-free and the lock is ours.
}

// Exit releases the lock in a bounded number of steps.
func (l *BoundedExit) Exit(p memory.Port) {
	node := memory.AsAddr(p.Read(l.mine[p.PID()]))
	p.CAS(l.tail, memory.FromAddr(node), memory.FromAddr(memory.Nil))       // rme:nonsensitive(non-recoverable baseline; detach outcome ignored)
	p.CAS(node+offNext, memory.FromAddr(memory.Nil), memory.FromAddr(node)) // rme:nonsensitive(non-recoverable baseline; wait-free exit signal)
	if nxt := memory.AsAddr(p.Read(node + offNext)); nxt != node {
		p.Label("mcs-dt:handoff")
		p.Write(nxt+offLocked, memory.Bool(false))
	}
}

package sim

import (
	"math/rand"

	"rme/internal/memory"
)

// StepCtx describes the rendezvous a process is parked at, just before the
// scheduler grants it. Failure plans inspect it to decide whether the
// process crashes here instead of executing the step.
type StepCtx struct {
	// PID is the parked process.
	PID int
	// Seq is the global logical time of this grant.
	Seq int64
	// IsOp reports whether the process is about to execute a
	// shared-memory instruction (Op valid) rather than a lifecycle
	// boundary (Ev valid).
	IsOp bool
	// Op is the pending instruction when IsOp.
	Op memory.OpInfo
	// Ev is the pending lifecycle event when !IsOp.
	Ev EventKind
	// OpIndex is the number of instructions the process has executed so
	// far in the run.
	OpIndex int64
	// Request and Attempt identify the process's current request and the
	// passage attempt within it.
	Request int
	Attempt int
	// InPassage reports whether the process is between passage start and
	// passage end (i.e. not in NCS).
	InPassage bool
	// InCS reports whether the process is currently inside its critical
	// section.
	InCS bool
	// Crashes is the total number of failures injected so far in the
	// run; ProcCrashes counts only this process's failures.
	Crashes     int
	ProcCrashes int
	// Aborts is the total number of aborts delivered so far in the run;
	// ProcAborts counts only this process's aborts.
	Aborts     int
	ProcAborts int
	// Rand is the run's seeded random source, shared with the scheduler.
	Rand *rand.Rand
}

// FailurePlan decides where failures occur. Crash is consulted once per
// grant; returning true makes the process fail at this exact boundary
// (before executing the pending step). Observe is invoked after a step is
// granted and will be executed, letting stateful plans trigger on "the
// rendezvous after" some instruction — which is how a crash "immediately
// after" the sensitive FAS (Definition 3.4) is expressed.
//
// Plans may be stateful; use a fresh value per run.
type FailurePlan interface {
	Crash(ctx StepCtx) bool
	Observe(ctx StepCtx)
}

// AbortPlanner is optionally implemented by failure plans that also
// deliver aborts. Abort is consulted at instruction rendezvous of
// processes that are waiting (inside Recover or Enter, not in the CS, not
// exiting, not already backing out) on a lock implementing Aborter;
// returning true unwinds the process at this exact boundary — the pending
// instruction is never executed — after which it runs the lock's back-out
// protocol and retries the request from NCS. Plans that don't implement
// the interface never see aborts delivered.
type AbortPlanner interface {
	Abort(ctx StepCtx) bool
}

// NoFailures injects no failures.
type NoFailures struct{}

// Crash implements FailurePlan.
func (NoFailures) Crash(StepCtx) bool { return false }

// Observe implements FailurePlan.
func (NoFailures) Observe(StepCtx) {}

// CrashAtOp crashes process PID immediately before its OpIndex-th
// instruction (counting from zero), exactly once.
type CrashAtOp struct {
	PID     int
	OpIndex int64
	done    bool
}

// Crash implements FailurePlan.
func (p *CrashAtOp) Crash(ctx StepCtx) bool {
	if p.done || ctx.PID != p.PID || !ctx.IsOp || ctx.OpIndex != p.OpIndex {
		return false
	}
	p.done = true
	return true
}

// Observe implements FailurePlan.
func (p *CrashAtOp) Observe(StepCtx) {}

// CrashPoint deterministically names one crash placement: process PID
// fails at the rendezvous immediately before its OpIndex-th instruction
// (counting executed instructions from zero; a crashed instruction is never
// executed and so never counted). Because crashes are only injected at
// instruction rendezvous, every crash any plan can produce — including
// "immediately after the sensitive FAS", which is the placement before the
// next instruction — is expressible as a CrashPoint.
type CrashPoint struct {
	PID     int
	OpIndex int64
}

// CrashSet is the fully deterministic failure plan used by the crash-sweep
// planner and by repro replay: it injects exactly the given crash points,
// each once, and consumes no randomness. Points may share a PID (the
// process crashes, restarts, and crashes again when its instruction count
// reaches the later point).
type CrashSet struct {
	Points []CrashPoint

	fired []bool
}

// Crash implements FailurePlan.
func (c *CrashSet) Crash(ctx StepCtx) bool {
	if !ctx.IsOp {
		return false
	}
	if c.fired == nil {
		c.fired = make([]bool, len(c.Points))
	}
	for i, pt := range c.Points {
		if !c.fired[i] && pt.PID == ctx.PID && pt.OpIndex == ctx.OpIndex {
			c.fired[i] = true
			return true
		}
	}
	return false
}

// Observe implements FailurePlan.
func (*CrashSet) Observe(StepCtx) {}

// AbortSet is the deterministic abort plan mirroring CrashSet: it delivers
// an abort at exactly the given (PID, OpIndex) points, each once. It
// injects no crashes; combine with a CrashSet via FaultSet for abort×crash
// schedules.
type AbortSet struct {
	Points []CrashPoint

	fired []bool
}

// Crash implements FailurePlan.
func (*AbortSet) Crash(StepCtx) bool { return false }

// Observe implements FailurePlan.
func (*AbortSet) Observe(StepCtx) {}

// Abort implements AbortPlanner.
func (a *AbortSet) Abort(ctx StepCtx) bool {
	if !ctx.IsOp {
		return false
	}
	if a.fired == nil {
		a.fired = make([]bool, len(a.Points))
	}
	for i, pt := range a.Points {
		if !a.fired[i] && pt.PID == ctx.PID && pt.OpIndex == ctx.OpIndex {
			a.fired[i] = true
			return true
		}
	}
	return false
}

// FaultSet is the fully deterministic combined plan used by the sweep
// planner and repro replay when a schedule mixes crashes and aborts: both
// dimensions are named by (PID, OpIndex) points. An abort and a crash at
// the same point resolve in the crash's favor (the runner consults Crash
// first), matching the model — a machine that fails doesn't get to finish
// backing out first.
type FaultSet struct {
	Crashes CrashSet
	Aborts  AbortSet
}

// Crash implements FailurePlan.
func (f *FaultSet) Crash(ctx StepCtx) bool { return f.Crashes.Crash(ctx) }

// Observe implements FailurePlan.
func (f *FaultSet) Observe(ctx StepCtx) { f.Crashes.Observe(ctx) }

// Abort implements AbortPlanner.
func (f *FaultSet) Abort(ctx StepCtx) bool { return f.Aborts.Abort(ctx) }

// CrashOnLabel crashes process PID at the Occurrence-th (from zero)
// instruction carrying Label. With After set, the crash is deferred to the
// process's next rendezvous, i.e. the process fails immediately after
// executing the labeled instruction — the paper's unsafe-failure scenario
// for the sensitive FAS on the queue tail.
type CrashOnLabel struct {
	PID        int
	Label      string
	Occurrence int
	After      bool

	seen    int
	pending bool
	done    bool
}

// Crash implements FailurePlan.
func (p *CrashOnLabel) Crash(ctx StepCtx) bool {
	if p.done || ctx.PID != p.PID {
		return false
	}
	if p.pending {
		p.pending = false
		p.done = true
		return true
	}
	if p.After || !ctx.IsOp || ctx.Op.Label != p.Label {
		return false
	}
	if p.seen < p.Occurrence {
		return false
	}
	p.done = true
	return true
}

// Observe implements FailurePlan.
func (p *CrashOnLabel) Observe(ctx StepCtx) {
	if p.done || p.pending || ctx.PID != p.PID || !ctx.IsOp || ctx.Op.Label != p.Label {
		return
	}
	if p.seen < p.Occurrence {
		p.seen++
		return
	}
	if p.After {
		p.pending = true
	}
}

// RandomFailures crashes processes at instruction boundaries with
// probability Rate per instruction, subject to the optional caps. With
// DuringPassage set (the common case for the paper's experiments) crashes
// occur only between passage start and passage end, never in NCS.
type RandomFailures struct {
	Rate          float64
	MaxTotal      int // 0 means unlimited
	MaxPerProcess int // 0 means unlimited
	DuringPassage bool
}

// Crash implements FailurePlan.
func (p *RandomFailures) Crash(ctx StepCtx) bool {
	if !ctx.IsOp {
		return false
	}
	if p.MaxTotal > 0 && ctx.Crashes >= p.MaxTotal {
		return false
	}
	if p.MaxPerProcess > 0 && ctx.ProcCrashes >= p.MaxPerProcess {
		return false
	}
	if p.DuringPassage && !ctx.InPassage {
		return false
	}
	return ctx.Rand.Float64() < p.Rate
}

// Observe implements FailurePlan.
func (p *RandomFailures) Observe(StepCtx) {}

// RandomAborts delivers aborts at instruction boundaries with probability
// Rate per instruction, subject to the optional caps. The runner already
// restricts delivery to waiting processes (inside Recover/Enter of an
// abortable lock), so no DuringPassage knob is needed. It injects no
// crashes; compose with a crash plan via PlanSeq for mixed workloads.
type RandomAborts struct {
	Rate          float64
	MaxTotal      int // 0 means unlimited
	MaxPerProcess int // 0 means unlimited
}

// Crash implements FailurePlan.
func (*RandomAborts) Crash(StepCtx) bool { return false }

// Observe implements FailurePlan.
func (*RandomAborts) Observe(StepCtx) {}

// Abort implements AbortPlanner.
func (p *RandomAborts) Abort(ctx StepCtx) bool {
	if !ctx.IsOp {
		return false
	}
	if p.MaxTotal > 0 && ctx.Aborts >= p.MaxTotal {
		return false
	}
	if p.MaxPerProcess > 0 && ctx.ProcAborts >= p.MaxPerProcess {
		return false
	}
	return ctx.Rand.Float64() < p.Rate
}

// FailureBudget crashes processes uniformly at random instruction
// boundaries until exactly Total failures have been injected. It is the
// plan used for "F failures in the recent past" sweeps: the expected
// spacing is controlled by Rate, and injection stops once the budget is
// spent, after which the system quiesces.
type FailureBudget struct {
	Total int
	Rate  float64
}

// Crash implements FailurePlan.
func (p *FailureBudget) Crash(ctx StepCtx) bool {
	if !ctx.IsOp || ctx.Crashes >= p.Total {
		return false
	}
	rate := p.Rate
	if rate == 0 {
		rate = 0.01
	}
	return ctx.Rand.Float64() < rate
}

// Observe implements FailurePlan.
func (p *FailureBudget) Observe(StepCtx) {}

// BatchCrash injects a batch failure (Section 7.1): once the global time
// reaches AtSeq, every process in PIDs crashes at its next rendezvous.
// Each process crashes once.
type BatchCrash struct {
	AtSeq int64
	PIDs  []int

	crashed map[int]bool
}

// Crash implements FailurePlan.
func (p *BatchCrash) Crash(ctx StepCtx) bool {
	if ctx.Seq < p.AtSeq || !ctx.IsOp {
		return false
	}
	if p.crashed == nil {
		p.crashed = make(map[int]bool, len(p.PIDs))
	}
	if p.crashed[ctx.PID] {
		return false
	}
	for _, pid := range p.PIDs {
		if pid == ctx.PID {
			p.crashed[ctx.PID] = true
			return true
		}
	}
	return false
}

// Observe implements FailurePlan.
func (p *BatchCrash) Observe(StepCtx) {}

// PlanSeq composes failure plans: a step crashes if any component plan
// says so, and every component observes every granted step.
type PlanSeq []FailurePlan

// Crash implements FailurePlan.
func (ps PlanSeq) Crash(ctx StepCtx) bool {
	for _, p := range ps {
		if p.Crash(ctx) {
			return true
		}
	}
	return false
}

// Observe implements FailurePlan.
func (ps PlanSeq) Observe(ctx StepCtx) {
	for _, p := range ps {
		p.Observe(ctx)
	}
}

// Abort implements AbortPlanner: a step aborts if any component plan that
// plans aborts says so.
func (ps PlanSeq) Abort(ctx StepCtx) bool {
	for _, p := range ps {
		if ap, ok := p.(AbortPlanner); ok && ap.Abort(ctx) {
			return true
		}
	}
	return false
}

// PlanFunc adapts a function to a stateless FailurePlan.
type PlanFunc func(ctx StepCtx) bool

// Crash implements FailurePlan.
func (f PlanFunc) Crash(ctx StepCtx) bool { return f(ctx) }

// Observe implements FailurePlan.
func (PlanFunc) Observe(StepCtx) {}

// UnsafeBudget injects exactly Total failures, each immediately after an
// instruction whose label satisfies Match — by default any weakly
// recoverable filter's sensitive FAS (a label ending in ":fas"). These are
// the paper's unsafe failures (Definition 3.4), the adversary that drives
// queue fragmentation and level escalation; random placement almost never
// hits the one-instruction sensitive window.
type UnsafeBudget struct {
	Total int
	// Match selects the sensitive instructions; nil matches any label
	// with the ":fas" suffix.
	Match func(label string) bool
	// MaxPerProcess caps failures per process (0 = unlimited).
	MaxPerProcess int
	// Rate is the probability of striking each matching instruction
	// (default 1). Rates below 1 spread the failures across the run —
	// striking every early FAS tends to hit queue heads, whose failures
	// are harmless.
	Rate float64

	pending   map[int]bool
	scheduled int
}

// Crash implements FailurePlan.
func (p *UnsafeBudget) Crash(ctx StepCtx) bool {
	if p.pending[ctx.PID] {
		delete(p.pending, ctx.PID)
		return true
	}
	return false
}

// Observe implements FailurePlan.
func (p *UnsafeBudget) Observe(ctx StepCtx) {
	if !ctx.IsOp || p.scheduled >= p.Total || p.pending[ctx.PID] {
		return
	}
	if p.MaxPerProcess > 0 && ctx.ProcCrashes >= p.MaxPerProcess {
		return
	}
	match := p.Match
	if match == nil {
		match = func(l string) bool {
			return len(l) > 4 && l[len(l)-4:] == ":fas"
		}
	}
	if !match(ctx.Op.Label) {
		return
	}
	if p.Rate > 0 && p.Rate < 1 && ctx.Rand.Float64() >= p.Rate {
		return
	}
	if p.pending == nil {
		p.pending = make(map[int]bool)
	}
	p.pending[ctx.PID] = true
	p.scheduled++
}

package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"rme/internal/memory"
)

type parkKind uint8

const (
	parkOp parkKind = iota + 1
	parkEvent
	parkDone
)

type park struct {
	pid  int
	kind parkKind
	op   memory.OpInfo
	ev   EventKind
}

type action uint8

const (
	actRun action = iota + 1
	actCrash
	actAbort
	actKill // run teardown (budget exhausted): unwind the goroutine
)

type crashSignal struct{}
type abortSignal struct{}
type killSignal struct{}

// procState is the scheduler-side view of one process.
type procState struct {
	request     int // current request index, -1 before the first
	attempt     int // passage attempt within the current request
	inPassage   bool
	inCS        bool
	inExit      bool // between CS exit and passage end
	aborting    bool // back-out protocol in progress
	opIndex     int64
	crashes     int
	aborts      int
	reqGenSeq   int64
	reqRMRs     int64
	reqPassages int
	reqCrashes  int
	passStart   int64 // seq of current passage start
	rmrMark     int64 // arena RMR counter at passage start
	opsMark     int64 // arena op counter at passage start
}

// Runner executes one simulation. Create it with New, run it once with
// Run; a Runner is not reusable.
type Runner struct {
	cfg     Config
	arena   *memory.Arena
	lock    Lock
	rng     *rand.Rand
	parkCh  chan park
	resume  []chan action
	scratch []memory.Addr // per-process CS scratch words

	seq       int64
	procs     []procState
	occupancy int
	result    *Result
	abortable bool // lock implements Aborter
}

// New prepares a simulation of the lock produced by factory under cfg.
func New(cfg Config, factory Factory) (*Runner, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("sim: nil lock factory")
	}
	arena := memory.NewArena(cfg.Model, cfg.N)
	r := &Runner{
		cfg:     cfg,
		arena:   arena,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		parkCh:  make(chan park, cfg.N),
		resume:  make([]chan action, cfg.N),
		scratch: make([]memory.Addr, cfg.N),
		procs:   make([]procState, cfg.N),
	}
	r.lock = factory(arena, cfg.N)
	if r.lock == nil {
		return nil, fmt.Errorf("sim: factory returned nil lock")
	}
	_, r.abortable = r.lock.(Aborter)
	for i := range r.resume {
		r.resume[i] = make(chan action, 1)
		r.scratch[i] = arena.Alloc(1, i)
		r.procs[i].request = -1
	}
	r.result = &Result{Config: cfg}
	return r, nil
}

// Arena exposes the simulated memory for debugging hooks (Peek only).
func (r *Runner) Arena() *memory.Arena { return r.arena }

// Lock returns the lock instance under test.
func (r *Runner) Lock() Lock { return r.lock }

// Run executes the simulation to completion: every process has Requests
// requests satisfied, or the step budget is exhausted (starvation /
// livelock), in which case an error is returned alongside the partial
// result.
func (r *Runner) Run() (*Result, error) {
	live := r.cfg.N
	for pid := 0; pid < r.cfg.N; pid++ {
		go r.process(pid)
	}

	parked := make([]park, r.cfg.N)
	isParked := make([]bool, r.cfg.N)
	nparked := 0
	var abort error

	for live > 0 {
		for nparked < live {
			pk := <-r.parkCh
			if pk.kind == parkDone {
				live--
				continue
			}
			parked[pk.pid] = pk
			isParked[pk.pid] = true
			nparked++
		}
		if live == 0 {
			break
		}
		if abort == nil && r.seq >= r.cfg.MaxSteps {
			abort = fmt.Errorf("sim: step budget %d exhausted (possible starvation or livelock); %d requests satisfied",
				r.cfg.MaxSteps, len(r.result.Requests))
		}
		if abort != nil {
			for pid := 0; pid < r.cfg.N; pid++ {
				if isParked[pid] {
					isParked[pid] = false
					nparked--
					r.resume[pid] <- actKill
				}
			}
			continue
		}

		ready := make([]int, 0, nparked)
		for pid := 0; pid < r.cfg.N; pid++ {
			if isParked[pid] {
				ready = append(ready, pid)
			}
		}
		sort.Ints(ready)
		pid := r.cfg.Sched.Pick(r.rng, ready)
		if !isParked[pid] {
			abort = fmt.Errorf("sim: scheduler picked non-ready process %d", pid)
			continue
		}
		pk := parked[pid]
		isParked[pid] = false
		nparked--
		r.grant(pk)
	}

	r.result.Steps = r.seq
	r.result.TotalRMRs = r.arena.TotalRMRs()
	r.result.ArenaWords = r.arena.Size()
	return r.result, abort
}

// grant advances one parked process by one step, consulting the failure
// plan and updating history and statistics.
func (r *Runner) grant(pk park) {
	seq := r.seq
	r.seq++
	st := &r.procs[pk.pid]

	ctx := StepCtx{
		PID:         pk.pid,
		Seq:         seq,
		IsOp:        pk.kind == parkOp,
		Op:          pk.op,
		Ev:          pk.ev,
		OpIndex:     st.opIndex,
		Request:     st.request,
		Attempt:     st.attempt,
		InPassage:   st.inPassage,
		InCS:        st.inCS,
		Crashes:     len(r.result.Crashes),
		ProcCrashes: st.crashes,
		Aborts:      len(r.result.Aborts),
		ProcAborts:  st.aborts,
		Rand:        r.rng,
	}

	// Failures are injected only at instruction boundaries: every step of
	// Recover, Enter, CS and Exit is an instruction, and a crash in NCS
	// is indistinguishable from no crash (the process restarts in NCS
	// holding nothing).
	if pk.kind == parkOp && r.cfg.Plan.Crash(ctx) {
		r.crash(pk, seq)
		r.resume[pk.pid] <- actCrash
		return
	}

	// Aborts are likewise delivered only at instruction boundaries, and
	// only while the process is waiting: inside Recover or Enter of an
	// abortable lock, never in the CS (the lock is held — callers release
	// normally), never during Exit, and never while a back-out is already
	// running. Delivery unwinds the process exactly like a crash (the
	// pending instruction is not executed), after which it runs the lock's
	// Abort protocol instead of restarting cold.
	if pk.kind == parkOp && r.abortable && st.inPassage && !st.inCS && !st.inExit && !st.aborting {
		if ap, ok := r.cfg.Plan.(AbortPlanner); ok && ap.Abort(ctx) {
			r.abortBegin(pk, seq)
			r.resume[pk.pid] <- actAbort
			return
		}
	}

	switch pk.kind {
	case parkOp:
		st.opIndex++
		r.cfg.Plan.Observe(ctx)
		if r.cfg.RecordOps {
			r.record(Event{Seq: seq, PID: pk.pid, Kind: EvOp, Op: pk.op, Request: st.request, Attempt: st.attempt})
		}
	case parkEvent:
		r.lifecycle(pk, seq)
	}
	r.resume[pk.pid] <- actRun
}

func (r *Runner) lifecycle(pk park, seq int64) {
	st := &r.procs[pk.pid]
	switch pk.ev {
	case EvRequest:
		st.request++
		st.attempt = 0
		st.reqGenSeq = seq
		st.reqRMRs = 0
		st.reqPassages = 0
		st.reqCrashes = 0
	case EvPassageStart:
		st.inPassage = true
		st.passStart = seq
		st.rmrMark = r.arena.RMRs(pk.pid)
		st.opsMark = r.arena.Ops(pk.pid)
	case EvCSEnter:
		st.inCS = true
		r.occupancy++
		if r.occupancy > r.result.MaxCSOverlap {
			r.result.MaxCSOverlap = r.occupancy
		}
	case EvCSExit:
		st.inCS = false
		st.inExit = true
		r.occupancy--
	case EvPassageEnd:
		r.closePassage(pk.pid, seq, false, false)
	case EvAborted:
		r.closePassage(pk.pid, seq, false, true)
	case EvSatisfied:
		r.result.Requests = append(r.result.Requests, RequestStat{
			PID:      pk.pid,
			Index:    st.request,
			GenSeq:   st.reqGenSeq,
			SatSeq:   seq,
			Passages: st.reqPassages,
			Crashes:  st.reqCrashes,
			RMRs:     st.reqRMRs,
		})
	}
	r.record(Event{Seq: seq, PID: pk.pid, Kind: pk.ev, Request: st.request, Attempt: st.attempt})
}

func (r *Runner) crash(pk park, seq int64) {
	st := &r.procs[pk.pid]
	r.result.Crashes = append(r.result.Crashes, CrashStat{PID: pk.pid, Seq: seq, OpIndex: st.opIndex, InCS: st.inCS, Op: pk.op})
	r.record(Event{Seq: seq, PID: pk.pid, Kind: EvCrash, Op: pk.op, Request: st.request, Attempt: st.attempt})
	if st.inCS {
		st.inCS = false
		r.occupancy--
	}
	if st.inPassage {
		r.closePassage(pk.pid, seq, true, false)
	}
	st.crashes++
	st.reqCrashes++
	// Private state — including cache contents — does not survive.
	r.arena.InvalidateCache(pk.pid)
}

// abortBegin records the delivery of an abort. Like a crash, the pending
// instruction is never executed (the process unwinds at this boundary);
// the passage stays open until the back-out completes and EvAborted
// closes it, so the back-out's own RMRs are charged to the aborted
// passage.
func (r *Runner) abortBegin(pk park, seq int64) {
	st := &r.procs[pk.pid]
	st.aborting = true
	st.aborts++
	r.result.Aborts = append(r.result.Aborts, AbortStat{
		PID: pk.pid, Seq: seq, OpIndex: st.opIndex,
		Request: st.request, Attempt: st.attempt, Op: pk.op,
	})
	r.record(Event{Seq: seq, PID: pk.pid, Kind: EvAbort, Op: pk.op, Request: st.request, Attempt: st.attempt})
}

func (r *Runner) closePassage(pid int, seq int64, crashed, aborted bool) {
	st := &r.procs[pid]
	rmrs := r.arena.RMRs(pid) - st.rmrMark
	ps := PassageStat{
		PID:      pid,
		Request:  st.request,
		Attempt:  st.attempt,
		RMRs:     rmrs,
		Ops:      r.arena.Ops(pid) - st.opsMark,
		Crashed:  crashed,
		Aborted:  aborted,
		StartSeq: st.passStart,
		EndSeq:   seq,
	}
	r.result.Passages = append(r.result.Passages, ps)
	st.reqRMRs += rmrs
	st.reqPassages++
	st.inPassage = false
	st.inExit = false
	st.aborting = false
	st.attempt++
}

func (r *Runner) record(ev Event) {
	if ev.Kind != EvOp || r.cfg.RecordOps {
		r.result.Events = append(r.result.Events, ev)
	}
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(ev, r.arena)
	}
}

// Step implements memory.Gate: it is invoked on the process goroutine
// before each shared-memory instruction.
func (r *Runner) Step(pid int, op memory.OpInfo) {
	r.rendezvous(park{pid: pid, kind: parkOp, op: op})
}

func (r *Runner) rendezvous(pk park) {
	r.parkCh <- pk
	switch <-r.resume[pk.pid] {
	case actRun:
	case actCrash:
		panic(crashSignal{})
	case actAbort:
		panic(abortSignal{})
	case actKill:
		panic(killSignal{})
	}
}

func (r *Runner) event(pid int, ev EventKind) {
	r.rendezvous(park{pid: pid, kind: parkEvent, ev: ev})
}

// process is the goroutine body of one simulated process, following the
// execution model of Algorithm 1.
func (r *Runner) process(pid int) {
	defer func() {
		if e := recover(); e != nil {
			if _, ok := e.(killSignal); !ok {
				panic(e)
			}
		}
		r.parkCh <- park{pid: pid, kind: parkDone}
	}()

	port := r.arena.Port(pid, r)
	for req := 0; req < r.cfg.Requests; req++ {
		r.event(pid, EvNCS)
		r.event(pid, EvRequest) // the process leaves NCS wanting the CS
		for !r.attempt(pid, port) {
			// Crashed: the process restarts from NCS (Section 2.3)
			// and retries the same request.
			r.event(pid, EvNCS)
		}
		r.event(pid, EvSatisfied)
	}
}

// attempt executes one passage. It reports false if the process crashed
// or was aborted, in which case all private state of the passage has been
// discarded by unwinding and the process retries the request from NCS.
func (r *Runner) attempt(pid int, port *memory.ArenaPort) (ok bool) {
	defer func() {
		switch e := recover(); e.(type) {
		case nil:
		case crashSignal:
			// The crash may have landed during the back-out protocol; the
			// lock persists enough (e.g. WRLock's aborted state) for the
			// next passage's Recover to repair it either way.
			ok = false
		default:
			panic(e)
		}
	}()
	r.event(pid, EvPassageStart)
	if !r.acquire(pid, port) {
		// Aborted while waiting: run the crash-safe back-out, then close
		// the passage. Delivery is gated on the lock implementing Aborter.
		r.lock.(Aborter).Abort(port)
		r.event(pid, EvAborted)
		return false
	}
	r.event(pid, EvCSEnter)
	for i := 0; i < r.cfg.CSOps; i++ {
		port.Read(r.scratch[pid])
	}
	r.event(pid, EvCSExit)
	r.lock.Exit(port)
	r.event(pid, EvPassageEnd)
	return true
}

// acquire runs the Recover and Enter segments, reporting false when an
// abort delivery unwound them.
func (r *Runner) acquire(pid int, port *memory.ArenaPort) (ok bool) {
	defer func() {
		switch e := recover(); e.(type) {
		case nil:
		case abortSignal:
			ok = false
		default:
			panic(e)
		}
	}()
	r.lock.Recover(port)
	r.event(pid, EvEnterStart)
	r.lock.Enter(port)
	return true
}

// Package sim executes recoverable mutual exclusion algorithms on the
// simulated shared memory of internal/memory under the paper's system model
// (Dhoked & Mittal, PODC 2020, Section 2):
//
//   - n asynchronous processes repeatedly execute
//     NCS → Recover → Enter → CS → Exit (Algorithm 1);
//   - a process may crash at any instruction boundary, losing all private
//     variables while shared memory persists;
//   - a crashed process eventually restarts from the beginning of NCS.
//
// The simulator runs each process as a goroutine but serializes execution:
// before every shared-memory instruction (and at every segment boundary)
// the process parks at a rendezvous, and a seeded scheduler picks which
// parked process advances. Crashes are injected by failure plans at these
// rendezvous points, so every adversarial interleaving and crash placement
// expressible in the paper's model — including "immediately after the FAS
// instruction" — is reachable deterministically from a seed.
//
// The runner records a history of lifecycle events (request generation and
// satisfaction, segment transitions, crashes, optionally every instruction)
// plus per-passage RMR counts, which internal/check and internal/bench
// consume to validate the paper's properties and regenerate its tables.
package sim

import (
	"fmt"

	"rme/internal/memory"
)

// Lock is a (weakly or strongly) recoverable mutual exclusion algorithm as
// defined by the paper's execution model: Recover performs post-failure
// cleanup, Enter acquires the lock, Exit releases it. Implementations keep
// all per-process mutable state in shared memory (it must survive crashes);
// any Go-level fields must be immutable after construction.
type Lock interface {
	Recover(p memory.Port)
	Enter(p memory.Port)
	Exit(p memory.Port)
}

// Factory constructs a lock instance over the given shared memory space
// for n processes. It is invoked once per run before any process starts.
type Factory func(sp memory.Space, n int) Lock

// Aborter is implemented by locks that support abortable passages: Abort
// backs the process out of however much of the acquisition it holds after
// its Enter was unwound at an instruction boundary, leaving shared state
// consistent (DESIGN §15). It is structurally identical to core.Aborter.
// The simulator delivers plan-driven aborts only to locks implementing it.
type Aborter interface {
	Abort(p memory.Port)
}

// EventKind identifies a lifecycle event in a simulation history.
type EventKind uint8

// Lifecycle events. EvOp is only recorded when Config.RecordOps is set.
const (
	// EvRequest marks the generation of a new critical-section request
	// (the process leaves NCS for the first time in a super-passage).
	EvRequest EventKind = iota + 1
	// EvNCS marks the process executing its non-critical section.
	EvNCS
	// EvPassageStart marks the beginning of a passage: the process is
	// about to execute the Recover segment (Definition 2.1).
	EvPassageStart
	// EvEnterStart marks the boundary between Recover and Enter.
	EvEnterStart
	// EvCSEnter marks completion of Enter: the process is in its CS.
	EvCSEnter
	// EvCSExit marks the process leaving its CS to execute Exit.
	EvCSExit
	// EvPassageEnd marks completion of Exit: a failure-free passage.
	EvPassageEnd
	// EvSatisfied marks satisfaction of the process's current request
	// (end of its super-passage, Definition 2.3).
	EvSatisfied
	// EvCrash marks a failure of the process (Section 2.2).
	EvCrash
	// EvAbort marks delivery of an abort to a waiting process: like a
	// crash, it lands at the rendezvous immediately before the process's
	// next instruction (which is never executed); unlike a crash, the
	// process then runs the lock's crash-safe back-out protocol.
	EvAbort
	// EvAborted marks completion of the back-out: the passage is closed
	// as aborted and the process returns to NCS, later retrying the same
	// request (abort-then-reacquire).
	EvAborted
	// EvOp records a single shared-memory instruction.
	EvOp
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvRequest:
		return "request"
	case EvNCS:
		return "ncs"
	case EvPassageStart:
		return "passage-start"
	case EvEnterStart:
		return "enter-start"
	case EvCSEnter:
		return "cs-enter"
	case EvCSExit:
		return "cs-exit"
	case EvPassageEnd:
		return "passage-end"
	case EvSatisfied:
		return "satisfied"
	case EvCrash:
		return "crash"
	case EvAbort:
		return "abort"
	case EvAborted:
		return "aborted"
	case EvOp:
		return "op"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry of a simulation history. Seq is the global logical
// time (one tick per scheduler grant); Request counts the process's
// requests from zero; Attempt counts passages within the current request.
type Event struct {
	Seq     int64
	PID     int
	Kind    EventKind
	Op      memory.OpInfo // valid for EvOp and EvCrash at an instruction
	Request int
	Attempt int
}

// Config parameterizes a simulation run.
type Config struct {
	// N is the number of processes (required, ≥ 1).
	N int
	// Model selects CC or DSM RMR accounting (required).
	Model memory.Model
	// Requests is the number of critical-section requests each process
	// must have satisfied before the run ends. Defaults to 1.
	Requests int
	// Seed drives the scheduler and randomized failure plans.
	Seed int64
	// Sched picks the next process to advance. Defaults to a uniformly
	// random choice.
	Sched Scheduler
	// Plan injects failures. Defaults to NoFailures.
	Plan FailurePlan
	// CSOps is the number of shared-memory reads each process performs
	// inside its critical section (on a per-lock scratch word). These
	// rendezvous give failure plans the opportunity to crash a process
	// inside its CS. Defaults to 1.
	CSOps int
	// MaxSteps aborts the run (with an error) if the scheduler grants
	// more than this many rendezvous; it guards against livelock and
	// starvation bugs. Defaults to 2,000,000.
	MaxSteps int64
	// RecordOps includes every shared-memory instruction in the history.
	// Lifecycle events are always recorded.
	RecordOps bool
	// OnEvent, if non-nil, is invoked synchronously by the scheduler for
	// every recorded event. The callback may inspect the arena (Peek)
	// but must not mutate it.
	OnEvent func(ev Event, a *memory.Arena)
}

func (c *Config) fill() error {
	if c.N < 1 {
		return fmt.Errorf("sim: N = %d, want ≥ 1", c.N)
	}
	if c.Model != memory.CC && c.Model != memory.DSM {
		return fmt.Errorf("sim: invalid memory model %d", c.Model)
	}
	if c.Requests == 0 {
		c.Requests = 1
	}
	if c.Requests < 0 {
		return fmt.Errorf("sim: Requests = %d, want ≥ 0", c.Requests)
	}
	if c.Sched == nil {
		c.Sched = RandomSched{}
	}
	if c.Plan == nil {
		c.Plan = NoFailures{}
	}
	if c.CSOps == 0 {
		c.CSOps = 1
	}
	if c.CSOps < 0 {
		return fmt.Errorf("sim: CSOps = %d, want ≥ 0", c.CSOps)
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000
	}
	return nil
}

package sim

import (
	"reflect"
	"testing"

	"rme/internal/memory"
)

// tasLock is a minimal strongly recoverable test-and-set lock used to
// exercise the harness. It is unfair but correct: the flag word holds
// pid+1 while process pid owns the lock, so recovery after a crash inside
// the CS re-enters immediately (BCSR) and Exit is idempotent.
type tasLock struct {
	flag memory.Addr
}

func newTAS(sp memory.Space, n int) Lock {
	return &tasLock{flag: sp.Alloc(1, memory.HomeNone)}
}

func (l *tasLock) Recover(p memory.Port) {}

func (l *tasLock) Enter(p memory.Port) {
	me := uint64(p.PID()) + 1
	if p.Read(l.flag) == me {
		return // crashed while holding the lock; re-enter
	}
	for !p.CAS(l.flag, 0, me) {
		p.Pause()
	}
}

func (l *tasLock) Exit(p memory.Port) {
	p.CAS(l.flag, uint64(p.PID())+1, 0)
}

// brokenLock performs no synchronization at all; it exists to prove the
// harness detects mutual exclusion violations.
type brokenLock struct{ w memory.Addr }

func newBroken(sp memory.Space, n int) Lock {
	return &brokenLock{w: sp.Alloc(1, memory.HomeNone)}
}

func (l *brokenLock) Recover(p memory.Port) {}
func (l *brokenLock) Enter(p memory.Port)   { p.Read(l.w) }
func (l *brokenLock) Exit(p memory.Port)    { p.Read(l.w) }

// stuckLock deadlocks every process, to exercise the step-budget abort.
type stuckLock struct{ w memory.Addr }

func newStuck(sp memory.Space, n int) Lock {
	return &stuckLock{w: sp.Alloc(1, memory.HomeNone)}
}

func (l *stuckLock) Recover(p memory.Port) {}
func (l *stuckLock) Enter(p memory.Port) {
	for p.Read(l.w) == 0 {
		p.Pause()
	}
}
func (l *stuckLock) Exit(p memory.Port) {}

func run(t *testing.T, cfg Config, f Factory) *Result {
	t.Helper()
	r, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, Model: memory.CC},
		{N: 2, Model: memory.Model(0)},
		{N: 2, Model: memory.CC, Requests: -1},
		{N: 2, Model: memory.CC, CSOps: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, newTAS); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
	if _, err := New(Config{N: 1, Model: memory.CC}, nil); err == nil {
		t.Error("nil factory: expected error")
	}
}

func TestFailureFreeRun(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		res := run(t, Config{N: 4, Model: model, Requests: 3, Seed: 1}, newTAS)
		if got := len(res.Requests); got != 12 {
			t.Fatalf("[%v] %d requests satisfied, want 12", model, got)
		}
		if got := len(res.Passages); got != 12 {
			t.Fatalf("[%v] %d passages, want 12", model, got)
		}
		if res.MaxCSOverlap != 1 {
			t.Fatalf("[%v] MaxCSOverlap = %d, want 1", model, res.MaxCSOverlap)
		}
		if res.CrashCount() != 0 {
			t.Fatalf("[%v] %d crashes, want 0", model, res.CrashCount())
		}
		for _, p := range res.Passages {
			if p.Crashed {
				t.Fatalf("[%v] passage %+v marked crashed", model, p)
			}
			if p.Ops <= 0 {
				t.Fatalf("[%v] passage with %d ops", model, p.Ops)
			}
		}
		for _, q := range res.Requests {
			if q.Passages != 1 || q.Crashes != 0 {
				t.Fatalf("[%v] request %+v, want 1 failure-free passage", model, q)
			}
			if q.SatSeq <= q.GenSeq {
				t.Fatalf("[%v] request satisfied before generated: %+v", model, q)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 3, Model: memory.CC, Requests: 4, Seed: 42, RecordOps: true,
		Plan: &RandomFailures{Rate: 0.01, MaxTotal: 5, DuringPassage: true}}
	r1, err := New(cfg, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := r1.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Plan = &RandomFailures{Rate: 0.01, MaxTotal: 5, DuringPassage: true}
	r2, err := New(cfg, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Events, res2.Events) {
		t.Fatal("same seed produced different histories")
	}
	if res1.Steps != res2.Steps || res1.TotalRMRs != res2.TotalRMRs {
		t.Fatal("same seed produced different statistics")
	}
}

func TestSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *Result {
		return run(t, Config{N: 3, Model: memory.CC, Requests: 5, Seed: seed, RecordOps: true}, newTAS)
	}
	if reflect.DeepEqual(mk(1).Events, mk(2).Events) {
		t.Fatal("different seeds produced identical histories (scheduler ignores seed?)")
	}
}

func TestCrashAtOp(t *testing.T) {
	plan := &CrashAtOp{PID: 0, OpIndex: 2}
	res := run(t, Config{N: 2, Model: memory.CC, Requests: 2, Seed: 7, Plan: plan}, newTAS)
	if res.CrashCount() != 1 {
		t.Fatalf("%d crashes, want 1", res.CrashCount())
	}
	c := res.Crashes[0]
	if c.PID != 0 {
		t.Fatalf("crashed pid = %d, want 0", c.PID)
	}
	// All requests still satisfied despite the failure.
	if got := len(res.Requests); got != 4 {
		t.Fatalf("%d requests satisfied, want 4", got)
	}
	// Process 0's crashed request took more than one passage.
	var crashedPassages int
	for _, p := range res.Passages {
		if p.Crashed {
			crashedPassages++
		}
	}
	if crashedPassages != 1 {
		t.Fatalf("%d crashed passages, want 1", crashedPassages)
	}
}

func TestCrashInCSAndReentry(t *testing.T) {
	// Crash process 0 inside its critical section (the CS scratch read),
	// then verify the request completes with a second passage.
	plan := PlanFunc(func(ctx StepCtx) bool {
		return ctx.PID == 0 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := run(t, Config{N: 2, Model: memory.DSM, Requests: 1, Seed: 3, Plan: plan}, newTAS)
	if res.CrashCount() != 1 {
		t.Fatalf("%d crashes, want 1", res.CrashCount())
	}
	if !res.Crashes[0].InCS {
		t.Fatal("crash not recorded as in-CS")
	}
	if got := len(res.Requests); got != 2 {
		t.Fatalf("%d requests satisfied, want 2", got)
	}
	for _, q := range res.Requests {
		if q.PID == 0 && (q.Passages != 2 || q.Crashes != 1) {
			t.Fatalf("request of crashed process: %+v, want 2 passages 1 crash", q)
		}
	}
	// Occupancy bookkeeping survived the in-CS crash.
	if res.MaxCSOverlap != 1 {
		t.Fatalf("MaxCSOverlap = %d, want 1", res.MaxCSOverlap)
	}
}

func TestMEViolationDetected(t *testing.T) {
	res := run(t, Config{N: 4, Model: memory.CC, Requests: 20, Seed: 5, CSOps: 4}, newBroken)
	if res.MaxCSOverlap < 2 {
		t.Fatalf("broken lock produced MaxCSOverlap = %d, want ≥ 2", res.MaxCSOverlap)
	}
}

func TestStepBudgetAbort(t *testing.T) {
	r, err := New(Config{N: 2, Model: memory.CC, Requests: 1, Seed: 1, MaxSteps: 500}, newStuck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("expected step-budget error for deadlocked lock")
	}
}

func TestRecordOps(t *testing.T) {
	res := run(t, Config{N: 1, Model: memory.CC, Requests: 1, Seed: 1, RecordOps: true}, newTAS)
	var ops, lifecycle int
	for _, ev := range res.Events {
		if ev.Kind == EvOp {
			ops++
		} else {
			lifecycle++
		}
	}
	if ops == 0 {
		t.Fatal("RecordOps recorded no instructions")
	}
	if lifecycle == 0 {
		t.Fatal("no lifecycle events recorded")
	}
	// Without RecordOps, instruction events are suppressed.
	res2 := run(t, Config{N: 1, Model: memory.CC, Requests: 1, Seed: 1}, newTAS)
	for _, ev := range res2.Events {
		if ev.Kind == EvOp {
			t.Fatal("EvOp recorded without RecordOps")
		}
	}
}

func TestEventOrderingPerProcess(t *testing.T) {
	res := run(t, Config{N: 3, Model: memory.CC, Requests: 2, Seed: 9}, newTAS)
	// Per process, lifecycle events must follow the execution model:
	// ncs (request ncs*) passage-start enter-start cs-enter cs-exit passage-end satisfied ...
	next := map[EventKind][]EventKind{
		EvNCS:          {EvRequest, EvPassageStart},
		EvRequest:      {EvPassageStart},
		EvPassageStart: {EvEnterStart},
		EvEnterStart:   {EvCSEnter},
		EvCSEnter:      {EvCSExit},
		EvCSExit:       {EvPassageEnd},
		EvPassageEnd:   {EvSatisfied},
		EvSatisfied:    {EvNCS},
	}
	last := map[int]EventKind{}
	for _, ev := range res.Events {
		if ev.Kind == EvOp || ev.Kind == EvCrash {
			continue
		}
		if prev, ok := last[ev.PID]; ok {
			allowed := next[prev]
			found := false
			for _, k := range allowed {
				if k == ev.Kind {
					found = true
				}
			}
			if !found {
				t.Fatalf("process %d: %v followed by %v", ev.PID, prev, ev.Kind)
			}
		} else if ev.Kind != EvNCS {
			t.Fatalf("process %d: first event %v, want ncs", ev.PID, ev.Kind)
		}
		last[ev.PID] = ev.Kind
	}
}

func TestSeqStrictlyIncreasing(t *testing.T) {
	res := run(t, Config{N: 3, Model: memory.CC, Requests: 2, Seed: 11, RecordOps: true}, newTAS)
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Seq <= res.Events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, res.Events[i-1].Seq, res.Events[i].Seq)
		}
	}
}

func TestRoundRobinScheduler(t *testing.T) {
	res := run(t, Config{N: 3, Model: memory.CC, Requests: 2, Seed: 1, Sched: &RoundRobin{last: -1}}, newTAS)
	if got := len(res.Requests); got != 6 {
		t.Fatalf("%d requests satisfied, want 6", got)
	}
}

func TestPriorityScheduler(t *testing.T) {
	// Always prefer higher pids: lower pids only run when higher are done.
	res := run(t, Config{N: 3, Model: memory.CC, Requests: 1, Seed: 1,
		Sched: PrioritySched{Less: func(a, b int) bool { return a > b }}}, newTAS)
	order := make([]int, 0, 3)
	for _, ev := range res.Events {
		if ev.Kind == EvSatisfied {
			order = append(order, ev.PID)
		}
	}
	want := []int{2, 1, 0}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("satisfaction order = %v, want %v", order, want)
	}
}

func TestZeroRequests(t *testing.T) {
	res := run(t, Config{N: 2, Model: memory.CC, Requests: 0, Seed: 1}, newTAS)
	_ = res
	// Requests defaults to 1 when zero.
	if len(res.Requests) != 2 {
		t.Fatalf("%d requests, want 2 (default Requests=1)", len(res.Requests))
	}
}

func TestOnEventCallback(t *testing.T) {
	var crashes int
	plan := &CrashAtOp{PID: 0, OpIndex: 1}
	cfg := Config{N: 1, Model: memory.CC, Requests: 1, Seed: 1, Plan: plan,
		OnEvent: func(ev Event, a *memory.Arena) {
			if ev.Kind == EvCrash {
				crashes++
			}
		}}
	r, err := New(cfg, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if crashes != 1 {
		t.Fatalf("callback saw %d crashes, want 1", crashes)
	}
}

func TestSummaries(t *testing.T) {
	res := run(t, Config{N: 2, Model: memory.DSM, Requests: 5, Seed: 2}, newTAS)
	s := res.SummarizePassageRMRs(nil)
	if s.Count != 10 || s.Max <= 0 || s.Mean <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	ff := res.SummarizePassageRMRs(func(p PassageStat) bool { return !p.Crashed })
	if ff.Count != 10 {
		t.Fatalf("failure-free count = %d, want 10", ff.Count)
	}
	rq := res.SummarizeRequestRMRs()
	if rq.Count != 10 {
		t.Fatalf("request summary count = %d, want 10", rq.Count)
	}
	if (Summary{}) != summarizeEmpty() {
		t.Fatal("empty summarize not zero")
	}
}

func summarizeEmpty() Summary { return summarize(nil) }

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvRequest, EvNCS, EvPassageStart, EvEnterStart, EvCSEnter,
		EvCSExit, EvPassageEnd, EvSatisfied, EvCrash, EvOp, EventKind(77)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", uint8(k))
		}
	}
}

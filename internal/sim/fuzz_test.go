package sim

import (
	"reflect"
	"testing"

	"rme/internal/memory"
)

// FuzzRunnerDeterminism drives the simulator with fuzzed configurations and
// failure placements, asserting the two properties everything else builds
// on: identical seeds replay identical histories, and the execution model's
// bookkeeping (request/passage/crash counts) stays consistent.
func FuzzRunnerDeterminism(f *testing.F) {
	f.Add(uint8(3), int64(1), uint8(2), uint8(10), false)
	f.Add(uint8(1), int64(7), uint8(1), uint8(0), true)
	f.Add(uint8(6), int64(42), uint8(3), uint8(33), true)

	f.Fuzz(func(t *testing.T, nproc uint8, seed int64, reqs uint8, crashAt uint8, dsm bool) {
		n := int(nproc%6) + 1
		requests := int(reqs%3) + 1
		model := memory.CC
		if dsm {
			model = memory.DSM
		}
		mk := func() *Result {
			var plan FailurePlan
			if crashAt > 0 {
				plan = &CrashAtOp{PID: int(crashAt) % n, OpIndex: int64(crashAt % 40)}
			}
			r, err := New(Config{N: n, Model: model, Requests: requests, Seed: seed,
				Plan: plan, RecordOps: true, MaxSteps: 2_000_000}, newTAS)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := mk(), mk()
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatal("same configuration replayed differently")
		}
		if len(a.Requests) != n*requests {
			t.Fatalf("%d requests satisfied, want %d", len(a.Requests), n*requests)
		}
		// Passages = requests + one failed passage per crash.
		if len(a.Passages) != len(a.Requests)+len(a.Crashes) {
			t.Fatalf("passages %d ≠ requests %d + crashes %d",
				len(a.Passages), len(a.Requests), len(a.Crashes))
		}
		for _, p := range a.Passages {
			if p.RMRs < 0 || p.Ops < p.RMRs || p.EndSeq < p.StartSeq {
				t.Fatalf("inconsistent passage %+v", p)
			}
		}
	})
}

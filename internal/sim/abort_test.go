package sim

import (
	"strings"
	"testing"

	"rme/internal/memory"
)

// abortTAS extends tasLock with a crash-idempotent back-out, making it the
// minimal Aborter fixture: releasing means clearing the flag word iff it
// still holds our pid, which is safe to re-run from any point.
type abortTAS struct {
	tasLock
}

func newAbortTAS(sp memory.Space, n int) Lock {
	return &abortTAS{tasLock{flag: sp.Alloc(1, memory.HomeNone)}}
}

func (l *abortTAS) Abort(p memory.Port) {
	p.CAS(l.flag, uint64(p.PID())+1, 0)
}

func TestAbortSetDeliversAtExactPoint(t *testing.T) {
	pt := CrashPoint{PID: 1, OpIndex: 0}
	res := run(t, Config{
		N: 2, Model: memory.CC, Requests: 2, Seed: 11,
		Plan: &AbortSet{Points: []CrashPoint{pt}},
	}, newAbortTAS)

	if res.AbortCount() != 1 {
		t.Fatalf("AbortCount = %d, want 1", res.AbortCount())
	}
	ab := res.Aborts[0]
	if ab.PID != pt.PID || ab.OpIndex != pt.OpIndex {
		t.Fatalf("abort delivered at p%d@%d, want p%d@%d", ab.PID, ab.OpIndex, pt.PID, pt.OpIndex)
	}

	// The delivery must be visible in the event stream as EvAbort followed
	// (same pid, later seq) by EvAborted once the back-out finishes.
	abortSeq, abortedSeq := int64(-1), int64(-1)
	for _, ev := range res.Events {
		if ev.PID != pt.PID {
			continue
		}
		switch ev.Kind {
		case EvAbort:
			if abortSeq < 0 {
				abortSeq = ev.Seq
			}
		case EvAborted:
			if abortedSeq < 0 {
				abortedSeq = ev.Seq
			}
		}
	}
	if abortSeq < 0 || abortedSeq < 0 || abortedSeq <= abortSeq {
		t.Fatalf("event order EvAbort(%d) < EvAborted(%d) violated", abortSeq, abortedSeq)
	}

	// Exactly one passage is marked aborted, and the aborted attempt is
	// retried: every process still completes all its requests.
	aborted, completed := 0, map[int]int{}
	for _, ps := range res.Passages {
		switch {
		case ps.Aborted:
			aborted++
			if ps.PID != pt.PID {
				t.Fatalf("aborted passage on pid %d, want %d", ps.PID, pt.PID)
			}
		case !ps.Crashed:
			completed[ps.PID]++
		}
	}
	if aborted != 1 {
		t.Fatalf("%d aborted passages, want 1", aborted)
	}
	for pid := 0; pid < 2; pid++ {
		if completed[pid] != 2 {
			t.Fatalf("pid %d completed %d passages, want 2 (aborted attempt must retry)", pid, completed[pid])
		}
	}
}

// Aborts are only deliverable to locks that implement Aborter; the plain
// tasLock must run the same plan abort-free.
func TestAbortRequiresAborter(t *testing.T) {
	res := run(t, Config{
		N: 2, Model: memory.CC, Requests: 2, Seed: 11,
		Plan: &AbortSet{Points: []CrashPoint{{PID: 1, OpIndex: 0}}},
	}, newTAS)
	if res.AbortCount() != 0 {
		t.Fatalf("non-Aborter lock received %d aborts", res.AbortCount())
	}
	for _, ps := range res.Passages {
		if ps.Aborted {
			t.Fatal("non-Aborter lock has an aborted passage")
		}
	}
}

// When a FaultSet names the same (pid, op-index) boundary for both a crash
// and an abort, the crash is delivered first; the abort point then fires at
// the same boundary of the recovery attempt (op indexes are cumulative and
// the crashed instruction was never executed).
func TestFaultSetCrashWinsTie(t *testing.T) {
	pt := CrashPoint{PID: 0, OpIndex: 1}
	res := run(t, Config{
		N: 2, Model: memory.CC, Requests: 2, Seed: 3,
		Plan: &FaultSet{
			Crashes: CrashSet{Points: []CrashPoint{pt}},
			Aborts:  AbortSet{Points: []CrashPoint{pt}},
		},
	}, newAbortTAS)

	if res.CrashCount() != 1 || res.AbortCount() != 1 {
		t.Fatalf("crashes=%d aborts=%d, want 1 and 1", res.CrashCount(), res.AbortCount())
	}
	if got := res.Aborts[0]; got.PID != pt.PID || got.OpIndex != pt.OpIndex {
		t.Fatalf("abort at p%d@%d, want p%d@%d", got.PID, got.OpIndex, pt.PID, pt.OpIndex)
	}
	var crashSeq, abortSeq int64 = -1, -1
	for _, ev := range res.Events {
		if ev.PID != pt.PID {
			continue
		}
		if ev.Kind == EvCrash && crashSeq < 0 {
			crashSeq = ev.Seq
		}
		if ev.Kind == EvAbort && abortSeq < 0 {
			abortSeq = ev.Seq
		}
	}
	if crashSeq < 0 || abortSeq < 0 || crashSeq >= abortSeq {
		t.Fatalf("crash (seq %d) must be delivered before the tied abort (seq %d)", crashSeq, abortSeq)
	}
}

func TestRandomAbortsAccounting(t *testing.T) {
	res := run(t, Config{
		N: 3, Model: memory.CC, Requests: 6, Seed: 42,
		Plan: &RandomAborts{Rate: 0.2, MaxTotal: 8},
	}, newAbortTAS)

	if res.AbortCount() == 0 {
		t.Fatal("RandomAborts delivered no aborts; pick a hotter seed or rate")
	}
	if res.AbortCount() > 8 {
		t.Fatalf("%d aborts exceed MaxTotal=8", res.AbortCount())
	}

	// The metrics identity the CI gate enforces: every attempt either
	// completes, aborts, or crashes.
	s := res.MetricsSnapshot(1)
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("attempts=%d != passages=%d + aborted=%d + crashed=%d",
			s.Attempts, s.Passages, s.Aborted, s.CrashedAttempts)
	}
	if s.Aborted != uint64(res.AbortCount()) {
		t.Fatalf("snapshot aborted=%d, result aborts=%d", s.Aborted, res.AbortCount())
	}
	var abortHist uint64
	for _, c := range s.AbortRMRHist.Counts {
		abortHist += c
	}
	if abortHist != s.Aborted {
		t.Fatalf("abort RMR histogram holds %d entries, want %d", abortHist, s.Aborted)
	}

	// Aborted attempts retry: satisfaction is unchanged.
	completed := map[int]int{}
	for _, ps := range res.Passages {
		if !ps.Crashed && !ps.Aborted {
			completed[ps.PID]++
		}
	}
	for pid := 0; pid < 3; pid++ {
		if completed[pid] != 6 {
			t.Fatalf("pid %d completed %d passages, want 6", pid, completed[pid])
		}
	}
}

func TestRandomAbortsPerProcessCap(t *testing.T) {
	res := run(t, Config{
		N: 2, Model: memory.CC, Requests: 8, Seed: 9,
		Plan: &RandomAborts{Rate: 0.2, MaxPerProcess: 1},
	}, newAbortTAS)
	per := map[int]int{}
	for _, ab := range res.Aborts {
		per[ab.PID]++
	}
	for pid, n := range per {
		if n > 1 {
			t.Fatalf("pid %d received %d aborts, cap is 1", pid, n)
		}
	}
}

func TestPlanSweepAbortPlacements(t *testing.T) {
	sp, err := PlanSweep(SweepConfig{
		Config:        Config{N: 2, Model: memory.CC, Requests: 1, Seed: 7},
		Aborts:        true,
		MaxAbortPairs: 8,
	}, newAbortTAS)
	if err != nil {
		t.Fatal(err)
	}

	// Every (pid, op-index) boundary of the recorded streams gets a
	// single-abort placement (horizon 0 = full stream).
	want := map[CrashPoint]bool{}
	for pid, stream := range sp.Streams {
		for k := range stream {
			want[CrashPoint{PID: pid, OpIndex: int64(k)}] = true
		}
	}
	single := map[CrashPoint]bool{}
	var pairs int
	for _, pl := range sp.Placements {
		if !pl.HasAborts() {
			continue
		}
		if len(pl.Points) > 0 {
			pairs++
			// Abort×crash pairs are same-pid with the crash landing
			// strictly after the abort — inside the back-out window.
			if pl.Points[0].PID != pl.Aborts[0].PID {
				t.Fatalf("abort×crash pair crosses pids: %s", pl)
			}
			if pl.Points[0].OpIndex <= pl.Aborts[0].OpIndex {
				t.Fatalf("pair crash does not land after the abort: %s", pl)
			}
			continue
		}
		if len(pl.Aborts) == 1 {
			single[pl.Aborts[0]] = true
		}
		if !strings.Contains(pl.String(), "abort") {
			t.Fatalf("abort placement renders without 'abort': %q", pl.String())
		}
	}
	for pt := range want {
		if !single[pt] {
			t.Fatalf("boundary %+v has no single-abort placement", pt)
		}
	}
	if pairs == 0 {
		t.Fatal("sweep generated no abort×crash pairs")
	}
	if pairs > 8 {
		t.Fatalf("%d abort×crash pairs exceed MaxAbortPairs=8", pairs)
	}
}

// Running every abort placement of a small sweep must terminate cleanly
// with the abort actually delivered (when its boundary is reached) and all
// requests eventually satisfied.
func TestSweepRunsAbortPlacements(t *testing.T) {
	sp, err := PlanSweep(SweepConfig{
		Config:  Config{N: 2, Model: memory.CC, Requests: 1, Seed: 7},
		Horizon: 3,
		Aborts:  true,
	}, newAbortTAS)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for i, pl := range sp.Placements {
		if !pl.HasAborts() {
			continue
		}
		res, err := sp.Run(i, newAbortTAS)
		if err != nil {
			t.Fatalf("placement %s: %v", pl, err)
		}
		completed := map[int]int{}
		for _, ps := range res.Passages {
			if !ps.Crashed && !ps.Aborted {
				completed[ps.PID]++
			}
		}
		for pid := 0; pid < 2; pid++ {
			if completed[pid] != 1 {
				t.Fatalf("placement %s: pid %d completed %d passages, want 1", pl, pid, completed[pid])
			}
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no abort placements were run")
	}
}

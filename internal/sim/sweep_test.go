package sim

import (
	"strings"
	"testing"

	"rme/internal/memory"
)

// fasLock is a tiny lock whose Enter performs a labeled FAS, so sweep
// tests can verify RMW-after placements and sensitive-label prioritization
// without dragging in the real algorithms (which live above this package).
type fasLock struct {
	flag memory.Addr
}

func newFASLock(sp memory.Space, n int) Lock {
	return &fasLock{flag: sp.Alloc(1, memory.HomeNone)}
}

func (l *fasLock) Recover(p memory.Port) {}

func (l *fasLock) Enter(p memory.Port) {
	me := memory.Word(p.PID()) + 1
	if p.Read(l.flag) == me {
		return
	}
	for {
		p.Label("test:fas")
		if p.FAS(l.flag, me) == 0 {
			return
		}
		p.FAS(l.flag, 0) // not ours: put it back and retry (unfair but fine)
		p.Pause()
	}
}

func (l *fasLock) Exit(p memory.Port) {
	p.CAS(l.flag, memory.Word(p.PID())+1, 0)
}

func TestPlanSweepRejectsCustomPlanAndSched(t *testing.T) {
	if _, err := PlanSweep(SweepConfig{Config: Config{N: 2, Model: memory.CC, Plan: NoFailures{}}}, newTAS); err == nil {
		t.Fatal("accepted a SweepConfig with a Plan")
	}
	if _, err := PlanSweep(SweepConfig{Config: Config{N: 2, Model: memory.CC, Sched: &RoundRobin{}}}, newTAS); err == nil {
		t.Fatal("accepted a SweepConfig with a Sched")
	}
}

func TestPlanSweepEnumeratesBoundaries(t *testing.T) {
	sp, err := PlanSweep(SweepConfig{Config: Config{N: 2, Model: memory.CC, Requests: 1, Seed: 7}}, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Streams) != 2 {
		t.Fatalf("%d streams, want 2", len(sp.Streams))
	}
	// Every instruction boundary of every process gets a single-crash
	// placement (horizon 0 = full stream).
	want := map[CrashPoint]bool{}
	for pid, stream := range sp.Streams {
		if len(stream) == 0 {
			t.Fatalf("process %d executed no instructions", pid)
		}
		for k := range stream {
			want[CrashPoint{PID: pid, OpIndex: int64(k)}] = true
		}
	}
	got := map[CrashPoint]bool{}
	for _, pl := range sp.Placements {
		if len(pl.Points) == 1 {
			got[pl.Points[0]] = true
		}
	}
	for pt := range want {
		if !got[pt] {
			t.Fatalf("boundary %+v has no placement", pt)
		}
	}
}

func TestPlanSweepHorizonKeepsRMWAfters(t *testing.T) {
	full, err := PlanSweep(SweepConfig{Config: Config{N: 2, Model: memory.CC, Requests: 2, Seed: 7}}, newFASLock)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := PlanSweep(SweepConfig{Config: Config{N: 2, Model: memory.CC, Requests: 2, Seed: 7}, Horizon: 1}, newFASLock)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Placements) >= len(full.Placements) {
		t.Fatalf("horizon did not reduce placements (%d vs %d)", len(capped.Placements), len(full.Placements))
	}
	// Sensitive coverage must be horizon-independent: every executed RMW
	// still has an after-placement.
	for pid, stream := range capped.Streams {
		for k, op := range stream {
			if op.Kind != memory.OpFAS && op.Kind != memory.OpCAS {
				continue
			}
			if !capped.CoversAfter(pid, int64(k)) {
				t.Fatalf("capped sweep lost after-RMW coverage of p%d@%d (%v %s)", pid, k, op.Kind, op.Label)
			}
		}
	}
}

func TestPlanSweepPairs(t *testing.T) {
	sp, err := PlanSweep(SweepConfig{
		Config:   Config{N: 3, Model: memory.CC, Requests: 1, Seed: 7},
		Pairs:    true,
		MaxPairs: 10,
	}, newFASLock)
	if err != nil {
		t.Fatal(err)
	}
	var pairs []Placement
	for _, pl := range sp.Placements {
		if len(pl.Points) == 2 {
			pairs = append(pairs, pl)
		}
	}
	if len(pairs) == 0 {
		t.Fatal("Pairs produced no two-crash placements")
	}
	if len(pairs) > 10 {
		t.Fatalf("%d pairs exceed MaxPairs", len(pairs))
	}
	for _, pl := range pairs {
		a, b := pl.Points[0], pl.Points[1]
		if a == b {
			t.Fatalf("degenerate pair %v", pl)
		}
		if a.PID == b.PID && a.OpIndex >= b.OpIndex {
			t.Fatalf("same-pid pair not ordered: %v", pl)
		}
	}
	// The labeled FAS is sensitive; pairs are prioritized from it, so the
	// first pair must involve the sensitive label.
	if !strings.Contains(pairs[0].String(), "test:fas") {
		t.Fatalf("first pair %s does not target the sensitive FAS", pairs[0])
	}
}

func TestSweepRunPlacements(t *testing.T) {
	sp, err := PlanSweep(SweepConfig{Config: Config{N: 2, Model: memory.DSM, Requests: 1, Seed: 3}}, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for i := range sp.Placements {
		res, err := sp.Run(i, newTAS)
		if err != nil {
			t.Fatalf("placement %d (%s): %v", i, sp.Placements[i], err)
		}
		// The TAS lock is strongly recoverable: every placement run must
		// satisfy all requests with at most one process in its CS.
		if got := len(res.Requests); got != 2 {
			t.Fatalf("placement %d: %d requests satisfied, want 2", i, got)
		}
		if res.MaxCSOverlap > 1 {
			t.Fatalf("placement %d: CS overlap %d", i, res.MaxCSOverlap)
		}
		crashed += res.CrashCount()
	}
	if crashed == 0 {
		t.Fatal("no placement actually injected a crash")
	}
	// Re-running a placement is deterministic and independent.
	r1, err := sp.Run(0, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sp.Run(0, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || r1.CrashCount() != r2.CrashCount() {
		t.Fatal("re-running a placement diverged")
	}
	if _, err := sp.Run(len(sp.Placements), newTAS); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
}

// TestSweepPlacementCrashesWhereTold: each single placement that fires does
// so at exactly the planned (pid, opIndex).
func TestSweepPlacementCrashesWhereTold(t *testing.T) {
	sp, err := PlanSweep(SweepConfig{Config: Config{N: 2, Model: memory.CC, Requests: 1, Seed: 11}}, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i, pl := range sp.Placements {
		res, err := sp.Run(i, newTAS)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Crashes {
			if c.PID != pl.Points[0].PID || c.OpIndex != pl.Points[0].OpIndex {
				t.Fatalf("placement %s crashed at (p%d, op %d)", pl, c.PID, c.OpIndex)
			}
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no crashes fired")
	}
}

package sim

import "rme/internal/metrics"

// MetricsSnapshot exports the run's logical-step statistics through the
// same snapshot type the native backend's metrics layer produces, so
// simulated and measured numbers are directly comparable.
//
// Passage counts, crash counts, the RMR totals and the RMR-per-passage
// histogram come from the per-passage statistics and are always
// populated. The label-derived fields — level distribution, fast/slow
// split, splitter tries, filter acquisitions — require the instruction
// stream and are only populated when the run was configured with
// Config.RecordOps; otherwise they are zero and LevelHist is empty.
//
// levels sets the level-histogram depth (the lock's BA-Lock level count
// including the base; use 1 for single-level locks). Values < 1 are
// treated as 1.
// DeepestLevels returns, per process, the deepest BA-Lock level the
// process reached anywhere in the run, reconstructed from slow-path
// commitment labels (every process that exists starts at level 1). Like
// the label-derived MetricsSnapshot fields it needs the instruction
// stream: without Config.RecordOps it returns nil.
func (r *Result) DeepestLevels() []int {
	hasOps := false
	for _, ev := range r.Events {
		if ev.Kind == EvOp {
			hasOps = true
			break
		}
	}
	if !hasOps || r.Config.N == 0 {
		return nil
	}
	deep := make([]int, r.Config.N)
	for i := range deep {
		deep[i] = 1
	}
	for _, ev := range r.Events {
		if ev.Kind != EvOp || ev.PID < 0 || ev.PID >= len(deep) {
			continue
		}
		if lvl := metrics.SlowLevel(ev.Op.Label); lvl > deep[ev.PID] {
			deep[ev.PID] = lvl
		}
	}
	return deep
}

func (r *Result) MetricsSnapshot(levels int) metrics.Snapshot {
	if levels < 1 {
		levels = 1
	}
	if levels > metrics.MaxLevels {
		levels = metrics.MaxLevels
	}
	s := metrics.Snapshot{
		Crashes:      uint64(len(r.Crashes)),
		RMRHist:      metrics.Hist{Counts: make([]uint64, metrics.RMRBuckets)},
		AbortRMRHist: metrics.Hist{Counts: make([]uint64, metrics.RMRBuckets)},
	}

	for _, ps := range r.Passages {
		s.Attempts++
		s.Ops += uint64(ps.Ops)
		s.RMRs += uint64(ps.RMRs)
		if ps.Crashed {
			s.CrashedAttempts++
			continue
		}
		if ps.Aborted {
			s.Aborted++
			b := ps.RMRs
			if b >= metrics.RMRBuckets-1 {
				b = metrics.RMRBuckets - 1
			}
			s.AbortRMRHist.Counts[b]++
			continue
		}
		s.Passages++
		if ps.Attempt > 0 {
			// A later attempt within the same request: the passage began
			// with a prior crash to recover from.
			s.Recoveries++
		}
		b := ps.RMRs
		if b >= metrics.RMRBuckets-1 {
			b = metrics.RMRBuckets - 1
		}
		s.RMRHist.Counts[b]++
	}

	// Reconstruct per-passage levels from the instruction labels, exactly
	// as the native recorder observes them, when the history has them.
	hasOps := false
	for _, ev := range r.Events {
		if ev.Kind == EvOp {
			hasOps = true
			break
		}
	}
	if !hasOps {
		return s
	}

	s.LevelHist = make([]uint64, levels)
	level := make([]int, r.Config.N)
	for _, ev := range r.Events {
		switch ev.Kind {
		case EvPassageStart:
			level[ev.PID] = 1
		case EvOp:
			l := ev.Op.Label
			switch {
			case metrics.IsFilterFAS(l):
				s.FilterFAS++
			case metrics.IsSplitterTry(l):
				s.SplitterTries++
			default:
				if lvl := metrics.SlowLevel(l); lvl > level[ev.PID] {
					level[ev.PID] = lvl
				}
			}
		case EvPassageEnd:
			lvl := level[ev.PID]
			if lvl < 1 {
				lvl = 1
			}
			for len(s.LevelHist) < lvl {
				s.LevelHist = append(s.LevelHist, 0)
			}
			s.LevelHist[lvl-1]++
			if lvl == 1 {
				s.FastPath++
			} else {
				s.SlowPath++
			}
		case EvAborted:
			lvl := level[ev.PID]
			if lvl < 1 {
				lvl = 1
			}
			for len(s.AbandonedHist) < lvl {
				s.AbandonedHist = append(s.AbandonedHist, 0)
			}
			s.AbandonedHist[lvl-1]++
		}
	}
	return s
}

package sim

import (
	"testing"

	"rme/internal/memory"
)

// labeledLock is a test-and-set lock that issues the core package's
// label vocabulary so MetricsSnapshot's label reconstruction can be
// checked deterministically: every Enter emits a splitter try and a
// filter FAS, and odd pids commit to level 1's slow path.
type labeledLock struct{ flag memory.Addr }

func newLabeled(sp memory.Space, n int) Lock {
	return &labeledLock{flag: sp.Alloc(1, memory.HomeNone)}
}

func (l *labeledLock) Recover(p memory.Port) {}

func (l *labeledLock) Enter(p memory.Port) {
	p.Label("F1:try")
	p.CAS(l.flag, 0, 0) // labelled no-op attempt
	p.Label("F1:fas")
	p.FAS(l.flag, uint64(p.PID())+1) // rme:nonsensitive(test lock; overwritten below)
	if p.PID()%2 == 1 {
		p.Label("F1:slow")
		p.Write(l.flag, uint64(p.PID())+1)
	}
	for {
		p.CAS(l.flag, 0, uint64(p.PID())+1)
		if p.Read(l.flag) == uint64(p.PID())+1 {
			return
		}
		p.Pause()
	}
}

func (l *labeledLock) Exit(p memory.Port) {
	p.CAS(l.flag, uint64(p.PID())+1, 0)
}

func TestMetricsSnapshotFromOps(t *testing.T) {
	res := run(t, Config{N: 2, Model: memory.CC, Requests: 3, Seed: 7, RecordOps: true}, newLabeled)
	s := res.MetricsSnapshot(2)

	if s.Passages != 6 {
		t.Fatalf("passages = %d, want 6", s.Passages)
	}
	if s.Crashes != 0 || s.Recoveries != 0 {
		t.Fatalf("unexpected failures: %+v", s)
	}
	// pid 0's 3 passages stay level 1; pid 1's 3 escalate to level 2.
	if s.FastPath != 3 || s.SlowPath != 3 {
		t.Fatalf("fast=%d slow=%d, want 3/3", s.FastPath, s.SlowPath)
	}
	if s.LevelHist[0] != 3 || s.LevelHist[1] != 3 {
		t.Fatalf("level hist %v, want [3 3]", s.LevelHist)
	}
	if s.MaxLevel() != 2 {
		t.Fatalf("MaxLevel = %d, want 2", s.MaxLevel())
	}
	if s.SplitterTries != 6 || s.FilterFAS != 6 {
		t.Fatalf("tries=%d fas=%d, want 6/6", s.SplitterTries, s.FilterFAS)
	}
	if uint64(res.TotalRMRs) != s.RMRs {
		t.Fatalf("RMRs = %d, want TotalRMRs %d", s.RMRs, res.TotalRMRs)
	}
	if s.RMRHist.Total() != s.Passages {
		t.Fatalf("hist holds %d passages, want %d", s.RMRHist.Total(), s.Passages)
	}
}

func TestMetricsSnapshotWithoutOps(t *testing.T) {
	res := run(t, Config{N: 2, Model: memory.CC, Requests: 2, Seed: 7}, newLabeled)
	s := res.MetricsSnapshot(2)

	if s.Passages != 4 {
		t.Fatalf("passages = %d, want 4", s.Passages)
	}
	// Label-derived fields degrade to zero without the instruction stream.
	if s.FastPath != 0 || s.SlowPath != 0 || len(s.LevelHist) != 0 {
		t.Fatalf("label-derived fields populated without RecordOps: %+v", s)
	}
	if s.RMRs == 0 || s.Ops == 0 {
		t.Fatalf("totals missing: %+v", s)
	}
}

func TestMetricsSnapshotCrashes(t *testing.T) {
	cfg := Config{
		N: 2, Model: memory.CC, Requests: 2, Seed: 11, RecordOps: true,
		Plan: &RandomFailures{Rate: 0.05, MaxTotal: 3, DuringPassage: true},
	}
	res := run(t, cfg, newLabeled)
	s := res.MetricsSnapshot(2)

	if s.Crashes == 0 {
		t.Fatalf("plan injected no crashes")
	}
	if s.Crashes != uint64(len(res.Crashes)) {
		t.Fatalf("crashes = %d, want %d", s.Crashes, len(res.Crashes))
	}
	if s.Recoveries == 0 {
		t.Fatalf("no recovery passages despite crashes")
	}
	if s.Passages != 4 {
		t.Fatalf("completed passages = %d, want 4", s.Passages)
	}
	// Totals include crashed fragments; the histogram does not.
	if s.RMRHist.Total() != s.Passages {
		t.Fatalf("hist holds %d, want %d", s.RMRHist.Total(), s.Passages)
	}
	if uint64(res.TotalRMRs) != s.RMRs {
		t.Fatalf("RMRs = %d, want %d", s.RMRs, res.TotalRMRs)
	}
}

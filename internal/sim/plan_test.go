package sim

import (
	"math/rand"
	"testing"

	"rme/internal/memory"
)

func opCtx(pid int, idx int64, label string) StepCtx {
	return StepCtx{
		PID:     pid,
		IsOp:    true,
		Op:      memory.OpInfo{Kind: memory.OpFAS, Label: label},
		OpIndex: idx,
		Rand:    rand.New(rand.NewSource(1)),
	}
}

func TestNoFailures(t *testing.T) {
	var p NoFailures
	if p.Crash(opCtx(0, 0, "")) {
		t.Fatal("NoFailures crashed")
	}
	p.Observe(opCtx(0, 0, ""))
}

func TestCrashAtOpPlan(t *testing.T) {
	p := &CrashAtOp{PID: 1, OpIndex: 3}
	if p.Crash(opCtx(0, 3, "")) {
		t.Fatal("wrong pid crashed")
	}
	if p.Crash(opCtx(1, 2, "")) {
		t.Fatal("wrong index crashed")
	}
	if !p.Crash(opCtx(1, 3, "")) {
		t.Fatal("did not crash at target")
	}
	if p.Crash(opCtx(1, 3, "")) {
		t.Fatal("crashed twice")
	}
	ctx := opCtx(1, 3, "")
	ctx.IsOp = false
	p2 := &CrashAtOp{PID: 1, OpIndex: 3}
	if p2.Crash(ctx) {
		t.Fatal("crashed at lifecycle rendezvous")
	}
}

func TestCrashOnLabelBefore(t *testing.T) {
	p := &CrashOnLabel{PID: 0, Label: "fas:tail", Occurrence: 1}
	// First occurrence: not yet (Occurrence is 1, counting from zero).
	if p.Crash(opCtx(0, 0, "fas:tail")) {
		t.Fatal("crashed at occurrence 0")
	}
	p.Observe(opCtx(0, 0, "fas:tail"))
	if p.Crash(opCtx(0, 1, "other")) {
		t.Fatal("crashed on wrong label")
	}
	if !p.Crash(opCtx(0, 2, "fas:tail")) {
		t.Fatal("did not crash at occurrence 1")
	}
	if p.Crash(opCtx(0, 3, "fas:tail")) {
		t.Fatal("crashed twice")
	}
}

func TestCrashOnLabelAfter(t *testing.T) {
	p := &CrashOnLabel{PID: 2, Label: "fas:tail", After: true}
	if p.Crash(opCtx(2, 0, "fas:tail")) {
		t.Fatal("After plan crashed before the labeled op")
	}
	p.Observe(opCtx(2, 0, "fas:tail")) // labeled op executes
	// The next rendezvous of pid 2, whatever it is, crashes.
	if p.Crash(opCtx(1, 1, "")) {
		t.Fatal("wrong pid crashed")
	}
	if !p.Crash(opCtx(2, 1, "unrelated")) {
		t.Fatal("did not crash immediately after labeled op")
	}
	if p.Crash(opCtx(2, 2, "fas:tail")) {
		t.Fatal("crashed twice")
	}
}

func TestRandomFailuresCaps(t *testing.T) {
	p := &RandomFailures{Rate: 1.0, MaxTotal: 2}
	ctx := opCtx(0, 0, "")
	ctx.InPassage = true
	if !p.Crash(ctx) {
		t.Fatal("rate-1.0 plan did not crash")
	}
	ctx.Crashes = 2
	if p.Crash(ctx) {
		t.Fatal("MaxTotal not honored")
	}
	p2 := &RandomFailures{Rate: 1.0, MaxPerProcess: 1}
	ctx2 := opCtx(0, 0, "")
	ctx2.ProcCrashes = 1
	if p2.Crash(ctx2) {
		t.Fatal("MaxPerProcess not honored")
	}
	p3 := &RandomFailures{Rate: 1.0, DuringPassage: true}
	ctx3 := opCtx(0, 0, "")
	ctx3.InPassage = false
	if p3.Crash(ctx3) {
		t.Fatal("DuringPassage not honored")
	}
}

func TestFailureBudget(t *testing.T) {
	p := &FailureBudget{Total: 3, Rate: 1.0}
	ctx := opCtx(0, 0, "")
	for i := 0; i < 3; i++ {
		ctx.Crashes = i
		if !p.Crash(ctx) {
			t.Fatalf("budget crash %d refused", i)
		}
	}
	ctx.Crashes = 3
	if p.Crash(ctx) {
		t.Fatal("budget exceeded")
	}
	// Default rate kicks in when Rate is zero.
	p2 := &FailureBudget{Total: 1}
	rng := rand.New(rand.NewSource(7))
	found := false
	for i := 0; i < 10000 && !found; i++ {
		c := opCtx(0, int64(i), "")
		c.Rand = rng
		found = p2.Crash(c)
	}
	if !found {
		t.Fatal("default-rate budget never crashed in 10000 steps")
	}
}

func TestBatchCrash(t *testing.T) {
	p := &BatchCrash{AtSeq: 100, PIDs: []int{0, 2}}
	early := opCtx(0, 0, "")
	early.Seq = 50
	if p.Crash(early) {
		t.Fatal("batch fired early")
	}
	late := opCtx(0, 0, "")
	late.Seq = 100
	if !p.Crash(late) {
		t.Fatal("batch did not fire for pid 0")
	}
	if p.Crash(late) {
		t.Fatal("pid 0 crashed twice")
	}
	other := opCtx(1, 0, "")
	other.Seq = 120
	if p.Crash(other) {
		t.Fatal("pid outside batch crashed")
	}
	two := opCtx(2, 0, "")
	two.Seq = 120
	if !p.Crash(two) {
		t.Fatal("batch did not fire for pid 2")
	}
}

func TestPlanSeq(t *testing.T) {
	a := &CrashAtOp{PID: 0, OpIndex: 0}
	b := &CrashAtOp{PID: 1, OpIndex: 0}
	seq := PlanSeq{a, b}
	if !seq.Crash(opCtx(0, 0, "")) {
		t.Fatal("component a did not fire")
	}
	if !seq.Crash(opCtx(1, 0, "")) {
		t.Fatal("component b did not fire")
	}
	if seq.Crash(opCtx(2, 0, "")) {
		t.Fatal("seq crashed spuriously")
	}
	seq.Observe(opCtx(2, 0, ""))
}

func TestBatchCrashInRun(t *testing.T) {
	// A batch failure of processes {0,1} mid-run; every request must
	// still be satisfied afterwards.
	plan := &BatchCrash{AtSeq: 30, PIDs: []int{0, 1}}
	res := run(t, Config{N: 3, Model: memory.CC, Requests: 3, Seed: 13, Plan: plan}, newTAS)
	if res.CrashCount() != 2 {
		t.Fatalf("%d crashes, want 2", res.CrashCount())
	}
	if got := len(res.Requests); got != 9 {
		t.Fatalf("%d requests satisfied, want 9", got)
	}
}

func TestUnsafeBudget(t *testing.T) {
	p := &UnsafeBudget{Total: 2}
	rng := rand.New(rand.NewSource(1))
	fas := opCtx(0, 0, "F1:fas")
	fas.Rand = rng
	if p.Crash(fas) {
		t.Fatal("crashed before observing a sensitive instruction")
	}
	p.Observe(fas) // the FAS executes; a crash is now pending for pid 0
	other := opCtx(1, 0, "")
	other.Rand = rng
	if p.Crash(other) {
		t.Fatal("wrong pid crashed")
	}
	next := opCtx(0, 1, "anything")
	next.Rand = rng
	if !p.Crash(next) {
		t.Fatal("did not crash immediately after the sensitive FAS")
	}
	if p.Crash(next) {
		t.Fatal("pending crash fired twice")
	}
	// Non-matching labels never schedule a crash.
	rd := opCtx(2, 0, "not-a-fas")
	rd.Rand = rng
	p.Observe(rd)
	if p.Crash(opCtx(2, 1, "")) {
		t.Fatal("crashed after a non-sensitive instruction")
	}
	// Budget: one strike left.
	fas2 := opCtx(3, 0, "F2:fas")
	fas2.Rand = rng
	p.Observe(fas2)
	if !p.Crash(opCtx(3, 1, "")) {
		t.Fatal("second budgeted crash missing")
	}
	fas3 := opCtx(4, 0, "F1:fas")
	fas3.Rand = rng
	p.Observe(fas3)
	if p.Crash(opCtx(4, 1, "")) {
		t.Fatal("budget exceeded")
	}
}

func TestUnsafeBudgetPerProcessCap(t *testing.T) {
	p := &UnsafeBudget{Total: 5, MaxPerProcess: 1}
	rng := rand.New(rand.NewSource(1))
	fas := opCtx(0, 0, "F1:fas")
	fas.Rand = rng
	fas.ProcCrashes = 1 // pid 0 already crashed once
	p.Observe(fas)
	if p.Crash(opCtx(0, 1, "")) {
		t.Fatal("per-process cap ignored")
	}
}

func TestUnsafeBudgetRate(t *testing.T) {
	// With a tiny rate most observations are skipped; with rate 1 none.
	rng := rand.New(rand.NewSource(7))
	low := &UnsafeBudget{Total: 1000, Rate: 0.01}
	scheduled := 0
	for i := 0; i < 1000; i++ {
		ctx := opCtx(i%8, int64(i), "F1:fas")
		ctx.Rand = rng
		low.Observe(ctx)
		nxt := opCtx(i%8, int64(i)+1, "")
		nxt.Rand = rng
		if low.Crash(nxt) {
			scheduled++
		}
	}
	if scheduled == 0 || scheduled > 100 {
		t.Fatalf("rate 0.01 scheduled %d strikes over 1000 ops", scheduled)
	}
}

package sim_test

// The sweep acceptance tests: single-crash coverage of every declared
// sensitive instruction for the WR-Lock, SA-Lock and BA-Lock under both
// memory models, with every internal/check property holding at every
// placement — and a mechanical cross-check of the dynamic sweep against the
// static rme:sensitive-instructions inventories that cmd/rmevet enforces.
//
// This file lives in package sim_test because it exercises the sweep over
// the real algorithm registry (internal/workload imports internal/sim).

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/workload"
)

// algorithmDirs are the lock-algorithm packages whose files cmd/rmevet
// holds to the rme:sensitive-instructions inventory discipline.
var algorithmDirs = []string{
	"../arbtree", "../bakery", "../core", "../grlock",
	"../mcs", "../reclaim", "../yalock",
}

// siteMatchers maps each source file that declares sensitive instructions
// to a predicate recognizing that site's executions in an instruction
// stream. Adding a new sensitive site to an inventory without extending
// this map fails TestSweepCoversDeclaredSensitiveInstructions, which is
// the point: every declared site must be demonstrably swept.
var siteMatchers = map[string]func(op memory.OpInfo) bool{
	"core/wrlock.go": func(op memory.OpInfo) bool {
		return op.Kind == memory.OpFAS && strings.HasSuffix(op.Label, ":fas")
	},
}

// inventorySite is one source file's sensitive-instruction declaration.
type inventorySite struct {
	file    string // path relative to internal/ (e.g. "core/wrlock.go")
	declare int    // declared count (rme:sensitive-instructions <n>)
	markers int    // trailing rme:sensitive markers found
}

// scanInventories reads the algorithm packages' sources and extracts every
// rme:sensitive-instructions declaration and rme:sensitive marker.
func scanInventories(t *testing.T) []inventorySite {
	t.Helper()
	var out []inventorySite
	for _, dir := range algorithmDirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			site := inventorySite{file: filepath.ToSlash(filepath.Join(filepath.Base(dir), name)), declare: -1}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := sc.Text()
				idx := strings.Index(line, "rme:sensitive")
				if idx < 0 {
					continue
				}
				rest := line[idx+len("rme:sensitive"):]
				if strings.HasPrefix(rest, "-instructions") {
					fields := strings.Fields(rest[len("-instructions"):])
					if len(fields) == 0 {
						t.Fatalf("%s: inventory declaration without a count", path)
					}
					n, err := strconv.Atoi(fields[0])
					if err != nil {
						t.Fatalf("%s: bad inventory count %q", path, fields[0])
					}
					site.declare = n
				} else {
					site.markers++
				}
			}
			f.Close()
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if site.declare >= 0 || site.markers > 0 {
				out = append(out, site)
			}
		}
	}
	return out
}

// TestInventoryMarkersConsistent cross-checks the static side on its own:
// each declaring file's marker count matches its declared count (the same
// invariant cmd/rmevet enforces mechanically at vet time).
func TestInventoryMarkersConsistent(t *testing.T) {
	sites := scanInventories(t)
	if len(sites) == 0 {
		t.Fatal("no rme:sensitive-instructions inventories found — did the algorithm packages move?")
	}
	total := 0
	for _, s := range sites {
		if s.declare < 0 {
			t.Errorf("%s: carries rme:sensitive markers but no inventory declaration", s.file)
			continue
		}
		if s.declare != s.markers {
			t.Errorf("%s: declares %d sensitive instruction(s) but carries %d marker(s)", s.file, s.declare, s.markers)
		}
		total += s.declare
	}
	if total == 0 {
		t.Fatal("inventories declare zero sensitive instructions; the WR-Lock FAS on tail must be declared")
	}
}

// sweptLocks are the layers the mechanical proof obligation runs over.
var sweptLocks = []string{"wr", "sa", "ba-log"}

func planFor(t *testing.T, spec workload.Spec, model memory.Model, horizon int64) *sim.SweepPlan {
	t.Helper()
	plan, err := sim.PlanSweep(sim.SweepConfig{
		Config: sim.Config{N: 3, Model: model, Requests: 1, Seed: 1,
			CSOps: 2, MaxSteps: 2_000_000},
		Horizon: horizon,
	}, spec.New)
	if err != nil {
		t.Fatalf("%s/%v: %v", spec.Name, model, err)
	}
	return plan
}

func checkPlacement(t *testing.T, spec workload.Spec, model memory.Model, plan *sim.SweepPlan, i int) {
	t.Helper()
	res, err := plan.Run(i, spec.New)
	if err != nil {
		t.Fatalf("%s/%v placement %s: %v", spec.Name, model, plan.Placements[i], err)
	}
	var cerr error
	if spec.Strength == workload.Strong {
		cerr = check.Strong(res, 1<<20)
	} else {
		cerr = check.Weak(res)
	}
	if cerr != nil {
		t.Fatalf("%s/%v placement %s: %v", spec.Name, model, plan.Placements[i], cerr)
	}
}

// TestSweepCoversDeclaredSensitiveInstructions is the coverage cross-check
// of the sweep against the static inventories: for WR-Lock, SA-Lock and
// BA-Lock under both CC and DSM, every executed instruction belonging to a
// declared sensitive site must receive a crash placement at the rendezvous
// immediately after it, every declared site must be exercised by at least
// one sweep, and every declared site must have a dynamic matcher here.
func TestSweepCoversDeclaredSensitiveInstructions(t *testing.T) {
	sites := scanInventories(t)
	declared := map[string]int{}
	for _, s := range sites {
		if s.declare > 0 {
			declared[s.file] = s.declare
		}
	}
	for file := range declared {
		if _, ok := siteMatchers[file]; !ok {
			t.Fatalf("%s declares sensitive instructions but has no dynamic matcher in siteMatchers — "+
				"extend the map so the sweep can prove coverage of the new site", file)
		}
	}

	exercised := map[string]int{} // matcher file → covered executions
	for _, name := range sweptLocks {
		spec, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			plan := planFor(t, spec, model, 0)
			for pid, stream := range plan.Streams {
				for k, op := range stream {
					for file, match := range siteMatchers {
						if !match(op) {
							continue
						}
						if !plan.CoversAfter(pid, int64(k)) {
							t.Fatalf("%s/%v: sensitive instruction %s %s at p%d@%d has no after-crash placement",
								name, model, op.Kind, op.Label, pid, k)
						}
						exercised[file]++
					}
				}
			}
		}
	}
	for file := range declared {
		if exercised[file] == 0 {
			t.Errorf("declared sensitive site %s was never executed by any sweep — "+
				"its recovery path has no mechanical coverage", file)
		}
	}
}

// TestSweepAllPlacementsHoldProperties is the full proof-obligation run:
// every single-crash placement (plus the F≥2 after-RMW pairs) of WR-Lock,
// SA-Lock and BA-Lock under CC and DSM satisfies the lock's check battery.
func TestSweepAllPlacementsHoldProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is not short")
	}
	for _, name := range sweptLocks {
		spec, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			plan := planFor(t, spec, model, 0)
			if len(plan.Placements) == 0 {
				t.Fatalf("%s/%v: empty sweep plan", name, model)
			}
			for i := range plan.Placements {
				checkPlacement(t, spec, model, plan, i)
			}
			t.Logf("%s/%v: %d placements ok", name, model, len(plan.Placements))
		}
	}
}

// TestSweepArbtreeAbortPlacements pins the arbitration tree's back-out
// against its sharpest hazard: the tree's port-state words are shared
// between sibling processes (port exclusivity comes from subtree mutual
// exclusion, not ownership), so Abort must release exactly the held
// leaf-to-root prefix — a blanket reverse walk reads a sibling's psInCS
// at a stage the aborter never reached and replays the sibling's release
// with a stale sequence number, handing the node to the wrong successor.
// n = 3 gives the topology of the original violation (two processes
// sharing the root port); every abort placement, after-RMW abort, and
// abort×crash pair must hold the strong battery.
func TestSweepArbtreeAbortPlacements(t *testing.T) {
	if testing.Short() {
		t.Skip("abort sweep is not short")
	}
	spec, err := workload.Lookup("arbtree")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		plan, err := sim.PlanSweep(sim.SweepConfig{
			Config: sim.Config{N: 3, Model: model, Requests: 1, Seed: 1,
				CSOps: 2, MaxSteps: 2_000_000},
			Aborts: true,
		}, spec.New)
		if err != nil {
			t.Fatalf("arbtree/%v: %v", model, err)
		}
		aborts := 0
		for i, pl := range plan.Placements {
			if pl.HasAborts() {
				aborts++
			}
			checkPlacement(t, spec, model, plan, i)
		}
		if aborts == 0 {
			t.Fatalf("arbtree/%v: sweep generated no abort placements", model)
		}
		t.Logf("arbtree/%v: %d placements (%d abort) ok", model, len(plan.Placements), aborts)
	}
}

// TestSweepPairsEscalation drives the F≥2 paths: pairs of crashes placed
// immediately after sensitive FAS instructions, the adversary that forces
// filter escalation past level 1.
func TestSweepPairsEscalation(t *testing.T) {
	spec, err := workload.Lookup("ba-log")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sim.PlanSweep(sim.SweepConfig{
		Config:   sim.Config{N: 3, Model: memory.CC, Requests: 1, Seed: 1, CSOps: 2, MaxSteps: 2_000_000},
		Horizon:  1, // boundary placements are not the point here
		Pairs:    true,
		MaxPairs: 24,
	}, spec.New)
	if err != nil {
		t.Fatal(err)
	}
	ranPairs := 0
	for i, pl := range plan.Placements {
		if len(pl.Points) != 2 {
			continue
		}
		ranPairs++
		checkPlacement(t, spec, memory.CC, plan, i)
	}
	if ranPairs == 0 {
		t.Fatal("no pair placements generated for ba-log")
	}
}

// Sweep smoke tests sized for the -race CI job: a horizon-capped WR-Lock
// and SA-Lock sweep with full property checking.

func sweepSmoke(t *testing.T, lock string) {
	spec, err := workload.Lookup(lock)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		plan := planFor(t, spec, model, 10)
		for i := range plan.Placements {
			checkPlacement(t, spec, model, plan, i)
		}
	}
}

func TestSweepSmokeWR(t *testing.T) { sweepSmoke(t, "wr") }
func TestSweepSmokeSA(t *testing.T) { sweepSmoke(t, "sa") }

package sim

import "math/rand"

// Scheduler decides which parked process advances next. ready is the set of
// parked process identifiers in ascending order and is never empty. The
// scheduler must return an element of ready. Implementations may be
// stateful; a fresh value is used per run.
type Scheduler interface {
	Pick(rng *rand.Rand, ready []int) int
}

// RandomSched picks a uniformly random ready process. Combined with the
// run seed this produces fair, reproducible interleavings.
type RandomSched struct{}

// Pick implements Scheduler.
func (RandomSched) Pick(rng *rand.Rand, ready []int) int {
	return ready[rng.Intn(len(ready))]
}

// RoundRobin cycles through processes in identifier order, advancing the
// lowest ready process after the last one it picked. It produces highly
// regular interleavings that are useful in unit tests.
type RoundRobin struct {
	last int
}

// Pick implements Scheduler.
func (s *RoundRobin) Pick(_ *rand.Rand, ready []int) int {
	for _, pid := range ready {
		if pid > s.last {
			s.last = pid
			return pid
		}
	}
	s.last = ready[0]
	return ready[0]
}

// PrioritySched always advances the ready process for which less returns
// true against every other candidate; ties go to the lower identifier. It
// lets tests build adversarial schedules (e.g. always run the crasher
// first).
type PrioritySched struct {
	// Less reports whether a should run before b.
	Less func(a, b int) bool
}

// Pick implements Scheduler.
func (s PrioritySched) Pick(_ *rand.Rand, ready []int) int {
	best := ready[0]
	for _, pid := range ready[1:] {
		if s.Less(pid, best) {
			best = pid
		}
	}
	return best
}

package sim

import "math/rand"

// Scheduler decides which parked process advances next. ready is the set of
// parked process identifiers in ascending order and is never empty. The
// scheduler must return an element of ready. Implementations may be
// stateful; a fresh value is used per run.
type Scheduler interface {
	Pick(rng *rand.Rand, ready []int) int
}

// RandomSched picks a uniformly random ready process. Combined with the
// run seed this produces fair, reproducible interleavings.
type RandomSched struct{}

// Pick implements Scheduler.
func (RandomSched) Pick(rng *rand.Rand, ready []int) int {
	return ready[rng.Intn(len(ready))]
}

// RoundRobin cycles through processes in identifier order, advancing the
// lowest ready process after the last one it picked. It produces highly
// regular interleavings that are useful in unit tests.
type RoundRobin struct {
	last int
}

// Pick implements Scheduler.
func (s *RoundRobin) Pick(_ *rand.Rand, ready []int) int {
	for _, pid := range ready {
		if pid > s.last {
			s.last = pid
			return pid
		}
	}
	s.last = ready[0]
	return ready[0]
}

// RecordSched wraps another scheduler and records every decision it makes
// as an index into the sorted ready set. Re-running the same configuration
// with a ReplaySched over the recorded decisions reproduces the run
// bit-exactly, because the grant sequence — and therefore every ready set —
// is fully determined by the decisions. internal/repro serializes the
// decision stream into its artifacts.
type RecordSched struct {
	// Inner makes the actual decisions (default RandomSched).
	Inner Scheduler
	// Decisions accumulates one entry per grant.
	Decisions []int32
}

// Pick implements Scheduler.
func (s *RecordSched) Pick(rng *rand.Rand, ready []int) int {
	inner := s.Inner
	if inner == nil {
		inner = RandomSched{}
	}
	pid := inner.Pick(rng, ready)
	idx := 0
	for j, p := range ready {
		if p == pid {
			idx = j
			break
		}
	}
	s.Decisions = append(s.Decisions, int32(idx))
	return pid
}

// ReplaySched replays a decision stream recorded by RecordSched: the i-th
// grant goes to ready[Decisions[i]]. Under the exact configuration the
// stream was recorded from, every ready set matches and the replay is
// bit-exact. When a shrunk or edited artifact diverges (a recorded index
// exceeds the current ready set) the index is clamped, and once the stream
// is exhausted Fallback takes over (default RandomSched), so replay of a
// perturbed artifact still terminates deterministically for a fixed seed.
type ReplaySched struct {
	Decisions []int32
	// Fallback schedules grants beyond the recorded stream (default
	// RandomSched).
	Fallback Scheduler

	pos int
}

// Pick implements Scheduler.
func (s *ReplaySched) Pick(rng *rand.Rand, ready []int) int {
	if s.pos < len(s.Decisions) {
		idx := int(s.Decisions[s.pos])
		s.pos++
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ready) {
			idx = len(ready) - 1
		}
		return ready[idx]
	}
	fb := s.Fallback
	if fb == nil {
		fb = RandomSched{}
	}
	return fb.Pick(rng, ready)
}

// Replayed reports how many recorded decisions have been consumed.
func (s *ReplaySched) Replayed() int { return s.pos }

// PrioritySched always advances the ready process for which less returns
// true against every other candidate; ties go to the lower identifier. It
// lets tests build adversarial schedules (e.g. always run the crasher
// first).
type PrioritySched struct {
	// Less reports whether a should run before b.
	Less func(a, b int) bool
}

// Pick implements Scheduler.
func (s PrioritySched) Pick(_ *rand.Rand, ready []int) int {
	best := ready[0]
	for _, pid := range ready[1:] {
		if s.Less(pid, best) {
			best = pid
		}
	}
	return best
}

package sim

import (
	"reflect"
	"testing"

	"rme/internal/memory"
)

// TestRecordReplayBitExact is the determinism contract the repro subsystem
// rests on: recording a run's scheduler decisions and crash placements and
// replaying them through ReplaySched + CrashSet reproduces the identical
// history, with no dependence on the original failure plan's randomness.
func TestRecordReplayBitExact(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		cfg := Config{N: 4, Model: model, Requests: 3, Seed: 99, RecordOps: true,
			Plan: &RandomFailures{Rate: 0.02, MaxTotal: 4, DuringPassage: true}}
		rec := &RecordSched{}
		cfg.Sched = rec
		r, err := New(cfg, newTAS)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(rec.Decisions)) != orig.Steps {
			t.Fatalf("[%v] recorded %d decisions for %d grants", model, len(rec.Decisions), orig.Steps)
		}

		points := make([]CrashPoint, 0, len(orig.Crashes))
		for _, c := range orig.Crashes {
			points = append(points, CrashPoint{PID: c.PID, OpIndex: c.OpIndex})
		}
		replayCfg := cfg
		replayCfg.Sched = &ReplaySched{Decisions: rec.Decisions}
		replayCfg.Plan = &CrashSet{Points: points}
		r2, err := New(replayCfg, newTAS)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := r2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(orig.Events, replayed.Events) {
			t.Fatalf("[%v] replay diverged from recorded history", model)
		}
		if orig.Steps != replayed.Steps || orig.TotalRMRs != replayed.TotalRMRs ||
			orig.MaxCSOverlap != replayed.MaxCSOverlap {
			t.Fatalf("[%v] replay statistics diverged: steps %d/%d RMRs %d/%d",
				model, orig.Steps, replayed.Steps, orig.TotalRMRs, replayed.TotalRMRs)
		}
	}
}

// TestRecordSchedDelegates verifies the recorder is transparent: the run it
// observes is the run the inner scheduler would have produced alone.
func TestRecordSchedDelegates(t *testing.T) {
	plain := Config{N: 3, Model: memory.CC, Requests: 2, Seed: 5, RecordOps: true}
	res1 := run(t, plain, newTAS)

	recorded := plain
	recorded.Sched = &RecordSched{}
	res2 := run(t, recorded, newTAS)
	if !reflect.DeepEqual(res1.Events, res2.Events) {
		t.Fatal("RecordSched perturbed the schedule it was recording")
	}
}

func TestReplaySchedClampAndFallback(t *testing.T) {
	// Indexes beyond the ready set clamp to the last entry; an exhausted
	// stream falls back (RandomSched by default) instead of panicking.
	s := &ReplaySched{Decisions: []int32{7, -2}}
	ready := []int{0, 1, 2}
	if got := s.Pick(nil, ready); got != 2 {
		t.Fatalf("clamped pick = %d, want 2", got)
	}
	if got := s.Pick(nil, ready); got != 0 {
		t.Fatalf("negative pick = %d, want 0", got)
	}
	s.Fallback = &RoundRobin{last: -1}
	if got := s.Pick(nil, ready); got != 0 {
		t.Fatalf("fallback pick = %d, want 0", got)
	}
	if s.Replayed() != 2 {
		t.Fatalf("Replayed() = %d, want 2", s.Replayed())
	}
}

func TestCrashSetPlan(t *testing.T) {
	cs := &CrashSet{Points: []CrashPoint{{PID: 0, OpIndex: 2}, {PID: 1, OpIndex: 0}}}
	if cs.Crash(opCtx(0, 1, "")) {
		t.Fatal("fired at wrong index")
	}
	if !cs.Crash(opCtx(0, 2, "")) {
		t.Fatal("did not fire at (0,2)")
	}
	// After the crash the process restarts and reaches index 2 again; the
	// point must not re-fire (that would crash-loop forever).
	if cs.Crash(opCtx(0, 2, "")) {
		t.Fatal("point fired twice")
	}
	if !cs.Crash(opCtx(1, 0, "")) {
		t.Fatal("did not fire at (1,0)")
	}
	lifecycle := opCtx(0, 2, "")
	lifecycle.IsOp = false
	cs2 := &CrashSet{Points: []CrashPoint{{PID: 0, OpIndex: 2}}}
	if cs2.Crash(lifecycle) {
		t.Fatal("fired at a lifecycle rendezvous")
	}
}

// TestCrashStatOpIndex pins the coordinate replay depends on: the recorded
// OpIndex is the per-process index of the instruction that was about to
// execute, so a CrashSet at that index reproduces the crash.
func TestCrashStatOpIndex(t *testing.T) {
	plan := &CrashAtOp{PID: 1, OpIndex: 4}
	res := run(t, Config{N: 2, Model: memory.CC, Requests: 2, Seed: 3, Plan: plan}, newTAS)
	if res.CrashCount() != 1 {
		t.Fatalf("%d crashes, want 1", res.CrashCount())
	}
	if c := res.Crashes[0]; c.PID != 1 || c.OpIndex != 4 {
		t.Fatalf("crash recorded at (p%d, op %d), want (p1, op 4)", c.PID, c.OpIndex)
	}
}

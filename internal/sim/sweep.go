package sim

import (
	"fmt"
	"sort"

	"rme/internal/memory"
)

// This file implements the deterministic crash-sweep planner: instead of
// sampling crash placements from a seeded distribution (RandomFailures,
// UnsafeBudget), the sweep enumerates them exhaustively. A first
// instrumented, failure-free pass records every process's instruction
// stream; the planner then emits one Placement per
//
//   - (pid, OpIndex) instruction boundary up to a per-process horizon
//     ("the process fails immediately before this instruction"),
//   - rendezvous immediately after each RMW instruction — the placement
//     that exercises the sensitive window of Definition 3.3/3.4 (a crash
//     between the FAS on tail and persisting its result), and
//   - optionally, pairs of after-RMW placements for the F ≥ 2 escalation
//     paths of the SA/BA filters.
//
// Each placement is a CrashSet, so re-running it is deterministic, and any
// violating placement converts directly into an internal/repro artifact.

// SweepConfig parameterizes a crash-placement sweep.
type SweepConfig struct {
	// Config is the run template (N, Model, Requests, Seed, CSOps,
	// MaxSteps). Plan must be nil: the sweep owns failure injection.
	// Sched must be nil: placements rely on the seeded random scheduler
	// being stateless so that every run draws the same interleaving
	// distribution.
	Config Config
	// Horizon caps the per-process instruction boundaries that receive a
	// single-crash placement (0 = every boundary of the recorded stream).
	// After-RMW placements are always generated for the whole stream,
	// regardless of Horizon, so sensitive-instruction coverage never
	// degrades when the horizon is tightened.
	Horizon int64
	// Pairs adds two-crash placements (pairs of after-RMW points) for the
	// F ≥ 2 escalation paths.
	Pairs bool
	// MaxPairs caps the number of pair placements (default 64). Pairs of
	// labeled, sensitive RMWs (labels ending in ":fas") are generated
	// first; remaining slots go to unlabeled RMW pairs.
	MaxPairs int
	// Aborts adds abort placements: a single abort at every (pid,
	// OpIndex) boundary up to the horizon, at the rendezvous after each
	// RMW (full stream), plus same-pid abort×crash pairs where the crash
	// lands a few instructions after the abort — i.e. during the back-out
	// protocol — exercising crash-during-abort recovery.
	Aborts bool
	// MaxAbortPairs caps the abort×crash pair placements (default 64);
	// pairs derived from sensitive RMWs are generated first.
	MaxAbortPairs int
}

// Placement is one entry of a sweep plan: a deterministic set of crash
// points plus, for each point that targets the rendezvous after an RMW, the
// instruction it follows (zero OpInfo for plain boundary placements).
type Placement struct {
	Points []CrashPoint
	// After[i] is the instruction Points[i] immediately follows, when the
	// point was generated as an after-RMW placement.
	After []memory.OpInfo
	// Aborts are the abort deliveries of the placement, named exactly
	// like crash points; AbortAfter mirrors After for them.
	Aborts     []CrashPoint
	AbortAfter []memory.OpInfo
}

func annotate(s string, pts []CrashPoint, after []memory.OpInfo) string {
	for i, pt := range pts {
		s += fmt.Sprintf(" p%d@%d", pt.PID, pt.OpIndex)
		if i < len(after) && after[i].Kind != 0 {
			s += fmt.Sprintf("(after %s", after[i].Kind)
			if after[i].Label != "" {
				s += " " + after[i].Label
			}
			s += ")"
		}
	}
	return s
}

func (pl Placement) String() string {
	var s string
	if len(pl.Points) > 0 {
		s = annotate("crash", pl.Points, pl.After)
	}
	if len(pl.Aborts) > 0 {
		if s != "" {
			s += " "
		}
		s = annotate(s+"abort", pl.Aborts, pl.AbortAfter)
	}
	if s == "" {
		s = "no-fault"
	}
	return s
}

// HasAborts reports whether the placement delivers any aborts.
func (pl Placement) HasAborts() bool { return len(pl.Aborts) > 0 }

// SweepPlan is the output of PlanSweep: the instrumented pass it was
// derived from, the per-process instruction streams, and the enumerated
// placements.
type SweepPlan struct {
	cfg SweepConfig
	// Trace is the failure-free instrumented pass the plan was derived
	// from.
	Trace *Result
	// Streams[pid][k] is the k-th instruction process pid executed in the
	// instrumented pass; k is exactly the OpIndex a CrashPoint names.
	Streams [][]memory.OpInfo
	// Placements is the enumerated crash plan.
	Placements []Placement

	afterCover map[CrashPoint]bool
}

// PlanSweep runs the instrumented pass for sc and enumerates the sweep's
// crash placements.
func PlanSweep(sc SweepConfig, factory Factory) (*SweepPlan, error) {
	if sc.Config.Plan != nil {
		return nil, fmt.Errorf("sim: SweepConfig.Config.Plan must be nil (the sweep owns failure injection)")
	}
	if sc.Config.Sched != nil {
		return nil, fmt.Errorf("sim: SweepConfig.Config.Sched must be nil (the sweep requires the stateless seeded scheduler)")
	}
	if sc.MaxPairs == 0 {
		sc.MaxPairs = 64
	}
	if sc.MaxAbortPairs == 0 {
		sc.MaxAbortPairs = 64
	}

	probe := sc.Config
	probe.RecordOps = true
	probe.OnEvent = nil
	r, err := New(probe, factory)
	if err != nil {
		return nil, err
	}
	trace, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("sim: sweep instrumented pass failed: %w", err)
	}

	streams := make([][]memory.OpInfo, sc.Config.N)
	for _, ev := range trace.Events {
		if ev.Kind == EvOp {
			streams[ev.PID] = append(streams[ev.PID], ev.Op)
		}
	}

	sp := &SweepPlan{cfg: sc, Trace: trace, Streams: streams, afterCover: map[CrashPoint]bool{}}
	seen := map[CrashPoint]bool{}
	add := func(pt CrashPoint, after memory.OpInfo) {
		if after.Kind != 0 {
			sp.afterCover[pt] = true
		}
		if seen[pt] {
			return
		}
		seen[pt] = true
		sp.Placements = append(sp.Placements, Placement{
			Points: []CrashPoint{pt},
			After:  []memory.OpInfo{after},
		})
	}

	// Single crashes at every instruction boundary up to the horizon.
	for pid, stream := range streams {
		limit := int64(len(stream))
		if sc.Horizon > 0 && sc.Horizon < limit {
			limit = sc.Horizon
		}
		for k := int64(0); k < limit; k++ {
			add(CrashPoint{PID: pid, OpIndex: k}, memory.OpInfo{})
		}
	}

	// The rendezvous immediately after each RMW: a crash before the next
	// instruction. Generated for the full stream so the sensitive FAS
	// window is always swept.
	type afterPt struct {
		pt CrashPoint
		op memory.OpInfo
	}
	var sensitive, otherRMW []afterPt
	for pid, stream := range streams {
		for k, op := range stream {
			if op.Kind != memory.OpFAS && op.Kind != memory.OpCAS {
				continue
			}
			a := afterPt{pt: CrashPoint{PID: pid, OpIndex: int64(k) + 1}, op: op}
			add(a.pt, a.op)
			if isSensitiveLabel(op.Label) {
				sensitive = append(sensitive, a)
			} else {
				otherRMW = append(otherRMW, a)
			}
		}
	}

	if sc.Pairs {
		pool := append(append([]afterPt{}, sensitive...), otherRMW...)
		sort.Slice(pool, func(i, j int) bool {
			a, b := pool[i], pool[j]
			as, bs := isSensitiveLabel(a.op.Label), isSensitiveLabel(b.op.Label)
			if as != bs {
				return as
			}
			if a.pt.PID != b.pt.PID {
				return a.pt.PID < b.pt.PID
			}
			return a.pt.OpIndex < b.pt.OpIndex
		})
		pairs := 0
	pairLoop:
		for i := 0; i < len(pool); i++ {
			for j := i + 1; j < len(pool); j++ {
				a, b := pool[i], pool[j]
				if a.pt == b.pt {
					continue
				}
				// Same-pid pairs need the later point strictly after
				// the earlier one; the restarted process re-executes
				// with its instruction count carried over.
				if a.pt.PID == b.pt.PID && a.pt.OpIndex >= b.pt.OpIndex {
					continue
				}
				sp.Placements = append(sp.Placements, Placement{
					Points: []CrashPoint{a.pt, b.pt},
					After:  []memory.OpInfo{a.op, b.op},
				})
				pairs++
				if pairs >= sc.MaxPairs {
					break pairLoop
				}
			}
		}
	}

	if sc.Aborts {
		seenAbort := map[CrashPoint]bool{}
		addAbort := func(pt CrashPoint, after memory.OpInfo) {
			if seenAbort[pt] {
				return
			}
			seenAbort[pt] = true
			sp.Placements = append(sp.Placements, Placement{
				Aborts:     []CrashPoint{pt},
				AbortAfter: []memory.OpInfo{after},
			})
		}

		// A single abort at every boundary up to the horizon: the process
		// is unwound immediately before its k-th instruction and backs
		// out from exactly that much progress.
		for pid, stream := range streams {
			limit := int64(len(stream))
			if sc.Horizon > 0 && sc.Horizon < limit {
				limit = sc.Horizon
			}
			for k := int64(0); k < limit; k++ {
				addAbort(CrashPoint{PID: pid, OpIndex: k}, memory.OpInfo{})
			}
		}

		// Aborts immediately after each RMW (full stream): the back-out
		// from a just-completed sensitive FAS is the abandon dance's
		// hardest case.
		for pid, stream := range streams {
			for k, op := range stream {
				if op.Kind != memory.OpFAS && op.Kind != memory.OpCAS {
					continue
				}
				addAbort(CrashPoint{PID: pid, OpIndex: int64(k) + 1}, op)
			}
		}

		// Abort×crash pairs: the same process crashes d instructions
		// after its abort was delivered, so the crash lands inside the
		// back-out protocol (or, for larger d, in the retry passage).
		// Sensitive-RMW aborts are paired first.
		pool := append(append([]afterPt{}, sensitive...), otherRMW...)
		sort.Slice(pool, func(i, j int) bool {
			a, b := pool[i], pool[j]
			as, bs := isSensitiveLabel(a.op.Label), isSensitiveLabel(b.op.Label)
			if as != bs {
				return as
			}
			if a.pt.PID != b.pt.PID {
				return a.pt.PID < b.pt.PID
			}
			return a.pt.OpIndex < b.pt.OpIndex
		})
		pairs := 0
	abortPairLoop:
		for _, a := range pool {
			for _, d := range []int64{1, 3, 8} {
				sp.Placements = append(sp.Placements, Placement{
					Aborts:     []CrashPoint{a.pt},
					AbortAfter: []memory.OpInfo{a.op},
					Points:     []CrashPoint{{PID: a.pt.PID, OpIndex: a.pt.OpIndex + d}},
					After:      []memory.OpInfo{{}},
				})
				pairs++
				if pairs >= sc.MaxAbortPairs {
					break abortPairLoop
				}
			}
		}
	}
	return sp, nil
}

// isSensitiveLabel reports whether an instruction label marks a weakly
// recoverable filter's sensitive FAS (the "<instance>:fas" convention used
// throughout internal/core).
func isSensitiveLabel(l string) bool {
	return len(l) > 4 && l[len(l)-4:] == ":fas"
}

// CoversAfter reports whether the plan contains a crash placement at the
// rendezvous immediately after instruction (pid, opIndex) of the
// instrumented pass — i.e. a point at (pid, opIndex+1) generated from an
// RMW. The coverage cross-check against the rme:sensitive-instructions
// inventories is built on this.
func (sp *SweepPlan) CoversAfter(pid int, opIndex int64) bool {
	return sp.afterCover[CrashPoint{PID: pid, OpIndex: opIndex + 1}]
}

// Run executes placement i of the plan under the sweep's run template and
// returns the result. Each call constructs a fresh CrashSet, so placements
// may be run in any order and repeatedly.
func (sp *SweepPlan) Run(i int, factory Factory) (*Result, error) {
	if i < 0 || i >= len(sp.Placements) {
		return nil, fmt.Errorf("sim: placement index %d out of range [0,%d)", i, len(sp.Placements))
	}
	cfg := sp.cfg.Config
	pl := sp.Placements[i]
	if pl.HasAborts() {
		cfg.Plan = &FaultSet{
			Crashes: CrashSet{Points: append([]CrashPoint{}, pl.Points...)},
			Aborts:  AbortSet{Points: append([]CrashPoint{}, pl.Aborts...)},
		}
	} else {
		cfg.Plan = &CrashSet{Points: append([]CrashPoint{}, pl.Points...)}
	}
	r, err := New(cfg, factory)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

package sim

import (
	"fmt"
	"math"
	"sort"

	"rme/internal/memory"
)

// PassageStat records the cost of one passage (Definition 2.1): the steps
// from the start of Recover until Exit completes or the process fails.
type PassageStat struct {
	PID     int
	Request int
	Attempt int
	// RMRs and Ops are the remote memory references and instructions the
	// process spent in this passage (including the CS body's accesses).
	RMRs int64
	Ops  int64
	// Crashed reports whether the passage ended in a failure rather than
	// completing Exit.
	Crashed bool
	// Aborted reports whether the passage ended in a delivered abort: the
	// process backed out of the acquisition (the RMR count includes the
	// back-out protocol) and retried the request later.
	Aborted bool
	// StartSeq and EndSeq delimit the passage in global logical time.
	StartSeq, EndSeq int64
}

// RequestStat records one request (super-passage, Definition 2.3).
type RequestStat struct {
	PID   int
	Index int
	// GenSeq is when the request was generated (process left NCS);
	// SatSeq is when it was satisfied (failure-free passage completed).
	GenSeq, SatSeq int64
	// Passages is the number of passages the super-passage comprised;
	// Crashes = Passages - 1.
	Passages int
	Crashes  int
	// RMRs is the total RMR cost over all passages of the super-passage.
	RMRs int64
}

// CrashStat records one failure.
type CrashStat struct {
	PID int
	Seq int64
	// OpIndex is the per-process instruction index the process was parked
	// at when it crashed (the instruction was never executed). Together
	// with PID it names the crash placement deterministically, which is
	// how internal/repro re-injects the failure on replay.
	OpIndex int64
	// InCS reports whether the process failed inside its critical
	// section.
	InCS bool
	// Op is the instruction the process was about to execute (zero
	// OpInfo when the process crashed at a lifecycle boundary).
	Op memory.OpInfo
}

// AbortStat records one delivered abort. Like CrashStat, (PID, OpIndex)
// names the placement deterministically — the abort lands immediately
// before the process's OpIndex-th instruction, which is never executed —
// so internal/repro can re-inject it on replay.
type AbortStat struct {
	PID int
	Seq int64
	// OpIndex is the per-process instruction index the process was parked
	// at when the abort was delivered.
	OpIndex int64
	// Request and Attempt identify the aborted passage.
	Request int
	Attempt int
	// Op is the instruction the process was about to execute.
	Op memory.OpInfo
}

// Result is the outcome of a simulation run.
type Result struct {
	Config Config
	// Steps is the total number of scheduler grants.
	Steps int64
	// Events is the recorded history (lifecycle events, plus every
	// instruction when Config.RecordOps is set), in global order.
	Events []Event
	// Passages, Requests and Crashes aggregate per-passage, per-request
	// and per-failure statistics.
	Passages []PassageStat
	Requests []RequestStat
	Crashes  []CrashStat
	Aborts   []AbortStat
	// MaxCSOverlap is the maximum number of processes simultaneously in
	// their critical sections at any point of the run. A strongly
	// recoverable lock must keep it at 1.
	MaxCSOverlap int
	// TotalRMRs is the total RMR count over all processes.
	TotalRMRs int64
	// ArenaWords is the number of shared-memory words allocated by the
	// end of the run (space complexity).
	ArenaWords int
}

// Summary condenses a distribution of per-passage (or per-request) RMR
// counts.
type Summary struct {
	Count  int
	Max    int64
	Mean   float64
	P99    int64
	Median int64
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("count=%d max=%d mean=%.1f median=%d p99=%d", s.Count, s.Max, s.Mean, s.Median, s.P99)
}

// SummarizePassageRMRs summarizes RMRs per passage over passages selected
// by keep (all passages when keep is nil).
func (r *Result) SummarizePassageRMRs(keep func(PassageStat) bool) Summary {
	vals := make([]int64, 0, len(r.Passages))
	for _, p := range r.Passages {
		if keep == nil || keep(p) {
			vals = append(vals, p.RMRs)
		}
	}
	return summarize(vals)
}

// SummarizeRequestRMRs summarizes total RMRs per super-passage.
func (r *Result) SummarizeRequestRMRs() Summary {
	vals := make([]int64, 0, len(r.Requests))
	for _, q := range r.Requests {
		vals = append(vals, q.RMRs)
	}
	return summarize(vals)
}

func summarize(vals []int64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var sum int64
	for _, v := range vals {
		sum += v
	}
	idx := func(q float64) int64 {
		i := int(math.Ceil(q*float64(len(vals)))) - 1
		if i < 0 {
			i = 0
		}
		return vals[i]
	}
	return Summary{
		Count:  len(vals),
		Max:    vals[len(vals)-1],
		Mean:   float64(sum) / float64(len(vals)),
		Median: idx(0.5),
		P99:    idx(0.99),
	}
}

// CrashCount returns the number of injected failures.
func (r *Result) CrashCount() int { return len(r.Crashes) }

// AbortCount returns the number of delivered aborts.
func (r *Result) AbortCount() int { return len(r.Aborts) }

// rme:sensitive-instructions 0 — read/write only; no FAS or CAS in this file.
//
// Package grlock provides n-process strongly recoverable locks built by
// arranging the dual-port arbitrator of internal/yalock in a binary
// tournament tree, in the style of Golab and Ramaraju's n-process
// construction from 2-process recoverable locks (Recoverable Mutual
// Exclusion, Distributed Computing 2019).
//
// The tournament is bounded and non-adaptive: every passage costs
// Θ(log n) RMRs whether or not failures occur. In the paper's framework it
// plays the role of the non-adaptive strongly recoverable base lock
// (NA-Lock) with T(n) = O(log n); internal/arbtree provides the
// sub-logarithmic alternative.
package grlock

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/yalock"
)

type stage struct {
	arb  *yalock.Arbitrator
	side yalock.Side
}

// Tournament is an n-process strongly recoverable lock: a complete binary
// tree of dual-port recoverable arbitrators. Process i ascends from its
// leaf to the root, entering each tree node from the side of the subtree
// it came from; subtree mutual exclusion guarantees the arbitrator's
// one-process-per-side contract.
type Tournament struct {
	n     int
	nodes int
	paths [][]stage // per process, leaf → root
}

// NewTournament allocates a tournament lock for n processes in sp.
func NewTournament(sp memory.Space, n int) *Tournament {
	if n < 1 {
		panic(fmt.Sprintf("grlock: NewTournament n = %d", n))
	}
	t := &Tournament{n: n, paths: make([][]stage, n)}
	t.build(sp, 0, n)
	return t
}

func (t *Tournament) build(sp memory.Space, lo, hi int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	t.build(sp, lo, mid)
	t.build(sp, mid, hi)
	arb := yalock.New(sp, t.n)
	t.nodes++
	for pid := lo; pid < mid; pid++ {
		t.paths[pid] = append(t.paths[pid], stage{arb, yalock.Left})
	}
	for pid := mid; pid < hi; pid++ {
		t.paths[pid] = append(t.paths[pid], stage{arb, yalock.Right})
	}
}

// Nodes returns the number of arbitrators in the tree (n-1).
func (t *Tournament) Nodes() int { return t.nodes }

// Height returns the maximum path length from a leaf to the root.
func (t *Tournament) Height() int {
	h := 0
	for _, p := range t.paths {
		if len(p) > h {
			h = len(p)
		}
	}
	return h
}

// Recover is empty: each arbitrator is recovered immediately before its
// Enter, mirroring the composite-lock convention of Algorithm 3.
func (t *Tournament) Recover(p memory.Port) {}

// Enter acquires every arbitrator on the process's leaf-to-root path.
// After a crash the walk is idempotent: nodes already held are re-entered
// through their bounded CS fast path, so recovery is bounded by the path
// length.
func (t *Tournament) Enter(p memory.Port) {
	for _, st := range t.paths[p.PID()] {
		st.arb.Recover(p, st.side)
		st.arb.Enter(p, st.side)
	}
}

// Exit releases the path in reverse (root first). Re-execution after a
// crash is safe: arbitrators released earlier ignore the duplicate exit.
func (t *Tournament) Exit(p memory.Port) {
	path := t.paths[p.PID()]
	for i := len(path) - 1; i >= 0; i-- {
		path[i].arb.Exit(p, path[i].side)
	}
}

// Abort backs the process out after an unwound Enter. The full reverse
// release walk is exactly the right back-out: arbitrators never reached
// ignore the exit (occupant guard), the stage the process was trying
// retracts its doorway (yalock's Exit works from ssTrying), and held
// stages release normally — O(log n) steps, no waiting, and every step is
// one a post-crash Recover+Enter repairs.
func (t *Tournament) Abort(p memory.Port) { t.Exit(p) }

package grlock

import (
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
)

func factory(sp memory.Space, n int) sim.Lock { return NewTournament(sp, n) }

func mustRun(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTournamentShape(t *testing.T) {
	tests := []struct {
		n, nodes, height int
	}{
		{1, 0, 0},
		{2, 1, 1},
		{3, 2, 2},
		{4, 3, 2},
		{7, 6, 3},
		{8, 7, 3},
		{16, 15, 4},
	}
	a := memory.NewArena(memory.CC, 16)
	for _, tt := range tests {
		tr := NewTournament(a, tt.n)
		if tr.Nodes() != tt.nodes {
			t.Errorf("n=%d: nodes = %d, want %d", tt.n, tr.Nodes(), tt.nodes)
		}
		if tr.Height() != tt.height {
			t.Errorf("n=%d: height = %d, want %d", tt.n, tr.Height(), tt.height)
		}
	}
}

func TestTournamentMutualExclusion(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{1, 2, 3, 5, 8} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 4, Seed: int64(n) * 3})
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v n=%d] ME violated: overlap %d", model, n, res.MaxCSOverlap)
			}
			if got := len(res.Requests); got != 4*n {
				t.Fatalf("[%v n=%d] %d requests, want %d", model, n, got, 4*n)
			}
		}
	}
}

func TestTournamentLogarithmicRMRs(t *testing.T) {
	// Non-adaptive: per-passage RMRs grow with log n. Verify the growth
	// is roughly linear in the tree height (and nowhere near linear in n).
	maxAt := func(n int) int64 {
		res := mustRun(t, sim.Config{N: n, Model: memory.DSM, Requests: 3, Seed: 1})
		return res.SummarizePassageRMRs(nil).Max
	}
	m2, m16 := maxAt(2), maxAt(16)
	if m16 < m2 {
		t.Fatalf("RMRs shrank with n: %d → %d", m2, m16)
	}
	// Height quadruples from 1 to 4; cost should scale like height, so
	// allow up to ~6x, and far less than the 8x of linear-in-n growth
	// would give over contended runs.
	if m16 > 6*m2 {
		t.Fatalf("growth 2→16 too steep for O(log n): %d → %d", m2, m16)
	}
}

func TestTournamentCrashSweep(t *testing.T) {
	// Crash a middle process at a sweep of instruction offsets; strong
	// recoverability must preserve ME and progress every time.
	for at := int64(0); at < 60; at += 3 {
		plan := &sim.CrashAtOp{PID: 2, OpIndex: at}
		res := mustRun(t, sim.Config{N: 5, Model: memory.CC, Requests: 2, Seed: 7, Plan: plan})
		if res.MaxCSOverlap != 1 {
			t.Fatalf("at=%d: ME violated: overlap %d", at, res.MaxCSOverlap)
		}
		if got := len(res.Requests); got != 10 {
			t.Fatalf("at=%d: %d requests, want 10", at, got)
		}
	}
}

func TestTournamentRandomCrashes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		plan := &sim.RandomFailures{Rate: 0.01, MaxTotal: 8, DuringPassage: true}
		res := mustRun(t, sim.Config{N: 6, Model: memory.DSM, Requests: 3, Seed: seed, Plan: plan,
			MaxSteps: 5_000_000})
		if res.MaxCSOverlap != 1 {
			t.Fatalf("seed=%d: ME violated with %d crashes", seed, res.CrashCount())
		}
		if got := len(res.Requests); got != 18 {
			t.Fatalf("seed=%d: %d requests, want 18", seed, got)
		}
	}
}

func TestTournamentCrashInCS(t *testing.T) {
	plan := sim.PlanFunc(func(ctx sim.StepCtx) bool {
		return ctx.PID == 3 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 2, Seed: 5, Plan: plan})
	crashSeq := res.Crashes[0].Seq
	for _, ev := range res.Events {
		if ev.Seq > crashSeq && ev.Kind == sim.EvCSEnter {
			if ev.PID != 3 {
				t.Fatalf("process %d entered CS before crashed holder re-entered", ev.PID)
			}
			break
		}
	}
}

func TestTournamentValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewTournament(a, 0)
}

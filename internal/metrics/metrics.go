// Package metrics is the passage-level observability layer: low-overhead
// per-process counters that turn the paper's adaptivity theorems into
// checkable, plottable facts at runtime.
//
// The paper's headline result is quantitative — O(1) RMRs per passage
// when no failures occurred recently, O(√F) when F recent failures have,
// never more than the base lock's T(n) (Theorems 5.17/5.18) — so the
// repository records, per passage:
//
//   - remote memory references on the native backend (exact CC-model
//     classification via memory.CountingPort, not a timing estimate);
//   - splitter fast-vs-slow path outcomes and splitter attempts;
//   - WR-Lock filter acquisitions (the sensitive FAS executions);
//   - the deepest BA-Lock level the passage reached;
//   - crash and recovery counts.
//
// A Recorder holds one cache-line-padded counter block per process
// (mirroring the native arena's home-stripe discipline: no two
// processes' hot counters share a line). The owning goroutine writes its
// block through atomics; Snapshot may be called from any goroutine at
// any time and always reads tear-free values. When metrics are disabled
// the lock takes a nil-Recorder fast path: a single nil check per
// passage boundary and unwrapped ports, so the cost is zero.
//
// The same Snapshot type is produced by the simulator
// (sim.Result.MetricsSnapshot), so logical-step counts from the
// RMR-exact simulator and measured counts from the native backend are
// directly comparable.
package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"rme/internal/memory"
)

const (
	// MaxLevels bounds the level histogram: levels 1..MaxLevels. A
	// BA-Lock for n processes has m+1 = ⌈log₂ n⌉+1 levels (counting the
	// base), so 16 covers every practical n; deeper escalations clamp
	// into the last bucket.
	MaxLevels = 16
	// RMRBuckets is the passage-RMR histogram size: counts 0..RMRBuckets-2
	// are exact, the last bucket collects every passage at or above
	// RMRBuckets-1 RMRs.
	RMRBuckets = 257
)

// proc is one process's counter block. Only the owning goroutine writes
// it; snapshotting goroutines read the atomics. The atomic arrays are
// large enough that blocks of adjacent processes share at most their
// boundary cache lines; the trailing pad removes even that.
type proc struct {
	attempts   atomic.Uint64 // passages started (completed + aborted + crashed)
	passages   atomic.Uint64 // completed (failure-free) passages
	crashes    atomic.Uint64
	crashedAtt atomic.Uint64 // attempts that ended in a crash
	aborted    atomic.Uint64 // attempts that ended in a back-out
	recoveries atomic.Uint64 // passages started with a prior crash pending
	fast       atomic.Uint64 // completed passages that stayed at level 1
	slow       atomic.Uint64 // completed passages that escalated
	tries      atomic.Uint64 // splitter attempts (":try" labels)
	filterFAS  atomic.Uint64 // filter-lock sensitive FAS executions (":fas" labels)
	rmrs       atomic.Uint64 // RMRs over all passages, including crashed ones
	ops        atomic.Uint64 // instructions over all passages, including crashed ones

	levels    [MaxLevels]atomic.Uint64
	hist      [RMRBuckets]atomic.Uint64
	abandoned [MaxLevels]atomic.Uint64  // deepest level of aborted attempts
	abortHist [RMRBuckets]atomic.Uint64 // RMR cost of aborted attempts (incl. back-out)

	// Private in-flight passage state (owner goroutine only).
	port     *memory.CountingPort
	open     bool
	crashed  bool // a crash has happened since the last completed passage
	level    int  // deepest level this passage has committed to
	markRMRs uint64
	markOps  uint64

	_ [8]uint64 // keep neighbouring blocks off this block's last line
}

// Recorder aggregates passage metrics for the n processes of one lock.
// Construct it with NewRecorder, wrap each process's port with
// Recorder.Port, and notify passage boundaries with PassageStart,
// PassageEnd and Crash (rme.Mutex does all of this when the WithMetrics
// option is set).
type Recorder struct {
	n      int
	levels int // total level count (m SALock levels + 1 for the base)
	vt     *memory.VersionTable
	procs  []proc
}

// NewRecorder returns a recorder for n processes of a lock with the
// given total level count (BALock.Levels()+1; use 1 for single-level
// locks), over an arena of the given word capacity.
func NewRecorder(n, levels, arenaCapacity int) *Recorder {
	if n < 1 {
		panic(fmt.Sprintf("metrics: NewRecorder n = %d", n))
	}
	if levels < 1 {
		levels = 1
	}
	if levels > MaxLevels {
		levels = MaxLevels
	}
	return &Recorder{
		n:      n,
		levels: levels,
		vt:     memory.NewVersionTable(arenaCapacity),
		procs:  make([]proc, n),
	}
}

// N returns the process count.
func (r *Recorder) N() int { return r.n }

// Levels returns the level-histogram depth.
func (r *Recorder) Levels() int { return r.levels }

// Port wraps process pid's native port with the counting layer feeding
// this recorder. It must be called once per process, before any
// passage.
func (r *Recorder) Port(inner *memory.NativePort) *memory.CountingPort {
	pid := inner.PID()
	p := r.proc(pid)
	p.port = memory.CountPort(inner, r.vt, func(label string) { r.label(pid, label) })
	return p.port
}

// InvalidateRange marks the words in [lo, hi) as new memory for every
// process: the next read of any of them is classified as an RMR
// regardless of what the process had cached. Keyed lock managers call it
// when a sub-arena region is recycled — the recycled words are a fresh
// lock's state, not stale copies of the old one.
func (r *Recorder) InvalidateRange(lo, hi memory.Addr) { r.vt.Invalidate(lo, hi) }

func (r *Recorder) proc(pid int) *proc {
	if pid < 0 || pid >= r.n {
		panic(fmt.Sprintf("metrics: pid %d out of range [0,%d)", pid, r.n))
	}
	return &r.procs[pid]
}

// SlowLevel interprets an instruction label as a slow-path commitment:
// the core package labels the write committing level k's slow path
// "F<k>:slow", meaning the passage escalates to level k+1. It returns
// that level, or 0 if the label is not a slow-path commitment.
func SlowLevel(l string) int {
	if !strings.HasSuffix(l, ":slow") || !strings.HasPrefix(l, "F") {
		return 0
	}
	k, err := strconv.Atoi(l[1 : len(l)-len(":slow")])
	if err != nil || k < 1 {
		return 0
	}
	return k + 1
}

// IsFilterFAS reports whether the label marks a WR-Lock filter
// acquisition — an execution of the sensitive fetch-and-store.
func IsFilterFAS(l string) bool { return strings.HasSuffix(l, ":fas") }

// IsSplitterTry reports whether the label marks a splitter acquisition
// attempt.
func IsSplitterTry(l string) bool { return strings.HasSuffix(l, ":try") }

// IsHandoff reports whether the label marks a lock handoff — the
// release-side write that passes ownership directly to a waiting
// successor ("mcs:handoff", "F<k>:handoff", ...).
func IsHandoff(l string) bool { return strings.HasSuffix(l, ":handoff") }

// label observes one instruction label of process pid. Escalation labels
// follow the core package's naming: "F<k>:slow" commits level k's slow
// path (the passage has reached level k+1), "<name>:fas" is a filter
// lock's sensitive FAS, "<name>:try" a splitter attempt.
func (r *Recorder) label(pid int, l string) {
	p := &r.procs[pid]
	switch {
	case strings.HasSuffix(l, ":slow"):
		if lvl := SlowLevel(l); lvl != 0 && p.open && lvl > p.level {
			p.level = lvl
		}
	case IsFilterFAS(l):
		p.filterFAS.Add(1)
	case IsSplitterTry(l):
		p.tries.Add(1)
	}
}

// PassageStart marks the beginning of a passage (the start of Recover)
// for process pid. A passage still open from a previous PassageStart —
// possible only when a Lock call was unwound by an injected crash that
// the caller handled without going through Passage — is folded into the
// crash accounting first.
func (r *Recorder) PassageStart(pid int) {
	p := r.proc(pid)
	if p.open {
		r.closeCrashed(p)
	}
	if p.crashed {
		p.crashed = false
		p.recoveries.Add(1)
	}
	p.attempts.Add(1)
	p.open = true
	p.level = 1
	c := p.port.Counts()
	p.markRMRs, p.markOps = c.RMRs, c.Ops
}

// PassageEnd marks the successful completion of a passage (the end of
// Exit): its RMR cost enters the histogram and its deepest level the
// level distribution.
func (r *Recorder) PassageEnd(pid int) {
	p := r.proc(pid)
	if !p.open {
		return
	}
	p.open = false
	c := p.port.Counts()
	rmrs := c.RMRs - p.markRMRs
	p.rmrs.Add(rmrs)
	p.ops.Add(c.Ops - p.markOps)
	b := rmrs
	if b >= RMRBuckets-1 {
		b = RMRBuckets - 1
	}
	p.hist[b].Add(1)
	lvl := p.level
	if lvl > MaxLevels {
		lvl = MaxLevels
	}
	p.levels[lvl-1].Add(1)
	if lvl == 1 {
		p.fast.Add(1)
	} else {
		p.slow.Add(1)
	}
	p.passages.Add(1)
}

// Crash records a failure of process pid. An open passage is closed as
// crashed (its traffic still counts toward the RMR and op totals, but
// not toward the per-passage histogram — it was not a passage, it was a
// fragment of one), and the process's CC cache contents are dropped:
// they are private state and do not survive.
func (r *Recorder) Crash(pid int) {
	p := r.proc(pid)
	if p.open {
		r.closeCrashed(p)
	}
	p.crashes.Add(1)
	p.crashed = true
	p.port.InvalidateCache()
}

func (r *Recorder) closeCrashed(p *proc) {
	p.open = false
	c := p.port.Counts()
	p.rmrs.Add(c.RMRs - p.markRMRs)
	p.ops.Add(c.Ops - p.markOps)
	p.crashedAtt.Add(1)
}

// Abort closes process pid's open passage as aborted: the attempt backed
// out of the acquisition instead of completing it. Its traffic —
// including the back-out protocol's own instructions — enters the
// abort-RMR histogram, and the deepest BA-Lock level the attempt had
// committed to enters the abandoned-level distribution. The per-passage
// RMR histogram is untouched: an aborted attempt is not a passage.
func (r *Recorder) Abort(pid int) {
	p := r.proc(pid)
	if !p.open {
		return
	}
	p.open = false
	c := p.port.Counts()
	rmrs := c.RMRs - p.markRMRs
	p.rmrs.Add(rmrs)
	p.ops.Add(c.Ops - p.markOps)
	b := rmrs
	if b >= RMRBuckets-1 {
		b = RMRBuckets - 1
	}
	p.abortHist[b].Add(1)
	lvl := p.level
	if lvl > MaxLevels {
		lvl = MaxLevels
	}
	p.abandoned[lvl-1].Add(1)
	p.aborted.Add(1)
}

// Snapshot aggregates every process's counters into one tear-free view.
// It may be called from any goroutine while passages are in flight;
// in-flight passages are simply not included yet.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		LevelHist:    make([]uint64, r.levels),
		RMRHist:      Hist{Counts: make([]uint64, RMRBuckets)},
		AbortRMRHist: Hist{Counts: make([]uint64, RMRBuckets)},
	}
	for i := range r.procs {
		p := &r.procs[i]
		s.Attempts += p.attempts.Load()
		s.Passages += p.passages.Load()
		s.Crashes += p.crashes.Load()
		s.CrashedAttempts += p.crashedAtt.Load()
		s.Aborted += p.aborted.Load()
		s.Recoveries += p.recoveries.Load()
		s.FastPath += p.fast.Load()
		s.SlowPath += p.slow.Load()
		s.SplitterTries += p.tries.Load()
		s.FilterFAS += p.filterFAS.Load()
		s.RMRs += p.rmrs.Load()
		s.Ops += p.ops.Load()
		for l := 0; l < MaxLevels; l++ {
			if v := p.levels[l].Load(); v != 0 {
				for len(s.LevelHist) <= l {
					s.LevelHist = append(s.LevelHist, 0)
				}
				s.LevelHist[l] += v
			}
		}
		for l := 0; l < MaxLevels; l++ {
			if v := p.abandoned[l].Load(); v != 0 {
				for len(s.AbandonedHist) <= l {
					s.AbandonedHist = append(s.AbandonedHist, 0)
				}
				s.AbandonedHist[l] += v
			}
		}
		for b := 0; b < RMRBuckets; b++ {
			s.RMRHist.Counts[b] += p.hist[b].Load()
			s.AbortRMRHist.Counts[b] += p.abortHist[b].Load()
		}
	}
	return s
}

package metrics

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestSnapshotJSONFieldsPinned is the wire-format regression test: the
// Snapshot JSON field names are consumed by cmd/rmeserver's /metrics.json
// and /workloads payloads, the BENCH_*.json artifacts, and the CI jq
// gates. Renaming a field (or changing omitempty behaviour for an
// always-present field) must fail here, not silently in a dashboard.
func TestSnapshotJSONFieldsPinned(t *testing.T) {
	s := Snapshot{
		Attempts:        10,
		Passages:        7,
		Crashes:         2,
		CrashedAttempts: 2,
		Aborted:         1,
		Recoveries:      2,
		FastPath:        6,
		SlowPath:        1,
		SplitterTries:   3,
		FilterFAS:       4,
		RMRs:            90,
		Ops:             120,
		LevelHist:       []uint64{6, 1},
		RMRHist:         Hist{Counts: []uint64{0, 3, 4}},
		AbandonedHist:   []uint64{1},
		AbortRMRHist:    Hist{Counts: []uint64{0, 1}},
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := []string{
		"abandoned_hist",
		"abort_rmr_hist",
		"aborted",
		"attempts",
		"crashed_attempts",
		"crashes",
		"fast_path",
		"filter_fas",
		"level_hist",
		"ops",
		"passages",
		"recoveries",
		"rmr_hist",
		"rmrs",
		"slow_path",
		"splitter_tries",
	}
	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("Snapshot JSON fields drifted:\n got %v\nwant %v", keys, want)
	}
	// Hists marshal as {"counts":[...]}.
	hist, ok := got["rmr_hist"].(map[string]any)
	if !ok {
		t.Fatalf("rmr_hist is %T, want object", got["rmr_hist"])
	}
	if _, ok := hist["counts"]; !ok {
		t.Fatalf("rmr_hist missing pinned \"counts\" key: %v", hist)
	}
	// abandoned_hist is omitempty: absent when no aborts escalated.
	raw, err = json.Marshal(Snapshot{})
	if err != nil {
		t.Fatalf("marshal zero: %v", err)
	}
	var zero map[string]any
	if err := json.Unmarshal(raw, &zero); err != nil {
		t.Fatalf("unmarshal zero: %v", err)
	}
	if _, present := zero["abandoned_hist"]; present {
		t.Fatalf("abandoned_hist must be omitempty, got %v", zero)
	}
	// Round trip preserves every counter.
	var back Snapshot
	if err := json.Unmarshal(mustJSON(t, s), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", back, s)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

// TestSnapshotMergeLabeledFailures exercises Merge over snapshots that
// carry the full labeled-failure surface: crashes, crashed attempts,
// aborts with abandoned-level and abort-RMR histograms, recoveries and
// the label-derived counters (splitter tries, filter FAS).
func TestSnapshotMergeLabeledFailures(t *testing.T) {
	a := Snapshot{
		Attempts:        12,
		Passages:        8,
		Crashes:         3,
		CrashedAttempts: 3,
		Aborted:         1,
		Recoveries:      3,
		FastPath:        7,
		SlowPath:        1,
		SplitterTries:   9,
		FilterFAS:       5,
		RMRs:            140,
		Ops:             200,
		LevelHist:       []uint64{7, 1},
		RMRHist:         Hist{Counts: []uint64{0, 2, 6}},
		AbandonedHist:   []uint64{1},
		AbortRMRHist:    Hist{Counts: []uint64{0, 0, 1}},
	}
	b := Snapshot{
		Attempts:        6,
		Passages:        3,
		Crashes:         1,
		CrashedAttempts: 1,
		Aborted:         2,
		Recoveries:      1,
		FastPath:        1,
		SlowPath:        2,
		SplitterTries:   4,
		FilterFAS:       2,
		RMRs:            80,
		Ops:             110,
		LevelHist:       []uint64{1, 1, 1},
		RMRHist:         Hist{Counts: []uint64{0, 1, 1, 1}},
		AbandonedHist:   []uint64{1, 1},
		AbortRMRHist:    Hist{Counts: []uint64{0, 1, 1}},
	}
	m := a.Merge(b)

	if m.Attempts != 18 || m.Passages != 11 || m.Crashes != 4 ||
		m.CrashedAttempts != 4 || m.Aborted != 3 || m.Recoveries != 4 {
		t.Fatalf("failure counters wrong: %+v", m)
	}
	if m.FastPath != 8 || m.SlowPath != 3 || m.SplitterTries != 13 || m.FilterFAS != 7 {
		t.Fatalf("label counters wrong: %+v", m)
	}
	if m.RMRs != 220 || m.Ops != 310 {
		t.Fatalf("traffic counters wrong: %+v", m)
	}
	if want := []uint64{8, 2, 1}; !reflect.DeepEqual(m.LevelHist, want) {
		t.Fatalf("LevelHist = %v, want %v", m.LevelHist, want)
	}
	if want := []uint64{2, 1}; !reflect.DeepEqual(m.AbandonedHist, want) {
		t.Fatalf("AbandonedHist = %v, want %v", m.AbandonedHist, want)
	}
	// a's 3-bucket overflow (6 samples ≥2) re-homes to the merged hist's
	// overflow bucket rather than posing as exact value 2.
	if want := []uint64{0, 3, 1, 7}; !reflect.DeepEqual(m.RMRHist.Counts, want) {
		t.Fatalf("RMRHist = %v, want %v", m.RMRHist.Counts, want)
	}
	if want := []uint64{0, 1, 2}; !reflect.DeepEqual(m.AbortRMRHist.Counts, want) {
		t.Fatalf("AbortRMRHist = %v, want %v", m.AbortRMRHist.Counts, want)
	}
	// The merged identity still holds at quiescence.
	if m.Attempts != m.Passages+m.Aborted+m.CrashedAttempts {
		t.Fatalf("identity broken after merge: %+v", m)
	}
	// Merge must not alias the operands' slices.
	m.LevelHist[0]++
	m.RMRHist.Counts[1]++
	m.AbandonedHist[0]++
	m.AbortRMRHist.Counts[1]++
	if a.LevelHist[0] != 7 || a.RMRHist.Counts[1] != 2 ||
		a.AbandonedHist[0] != 1 || a.AbortRMRHist.Counts[1] != 0 {
		t.Fatalf("Merge aliased operand slices: %+v", a)
	}
}

// TestSnapshotMergeCommutes: Merge over differing hist lengths is
// symmetric, and overflow buckets stay overflow (a short hist's last
// bucket lands in the longer hist's last bucket).
func TestSnapshotMergeCommutes(t *testing.T) {
	a := Snapshot{RMRHist: Hist{Counts: []uint64{1, 2, 5}}} // overflow=5 at index 2
	b := Snapshot{RMRHist: Hist{Counts: []uint64{0, 0, 3, 0, 7}}}
	ab := a.Merge(b).RMRHist
	ba := b.Merge(a).RMRHist
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("Merge not commutative: %v vs %v", ab, ba)
	}
	// a's overflow bucket (5 samples at index 2) must land in the final
	// bucket of the merged 5-bucket hist, not at index 2.
	if want := []uint64{1, 2, 3, 0, 12}; !reflect.DeepEqual(ab.Counts, want) {
		t.Fatalf("overflow merge = %v, want %v", ab.Counts, want)
	}
}

// TestHistPercentiles pins the percentile helper the exporter reuses on
// a full-size 257-bucket histogram (RMRBuckets): p50/p99 by cumulative
// rank, overflow-bucket clamping, and the Sum/Mean lower bounds.
func TestHistPercentiles(t *testing.T) {
	h := Hist{Counts: make([]uint64, RMRBuckets)}
	// 100 samples at value 7, 80 at 9, 19 at 40, 1 in overflow.
	h.Counts[7] = 100
	h.Counts[9] = 80
	h.Counts[40] = 19
	h.Counts[RMRBuckets-1] = 1
	if got := h.Total(); got != 200 {
		t.Fatalf("Total = %d, want 200", got)
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Fatalf("p50 = %d, want 7", got)
	}
	if got := h.Quantile(0.9); got != 9 {
		t.Fatalf("p90 = %d, want 9", got)
	}
	if got := h.Quantile(0.99); got != 40 {
		t.Fatalf("p99 = %d, want 40", got)
	}
	// The very top of the distribution lands in the overflow bucket,
	// whose value is a lower bound.
	if got := h.Quantile(1.0); got != RMRBuckets-1 {
		t.Fatalf("p100 = %d, want %d", got, RMRBuckets-1)
	}
	wantSum := uint64(7*100 + 9*80 + 40*19 + (RMRBuckets - 1))
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
	if got := h.Mean(); got != float64(wantSum)/200 {
		t.Fatalf("Mean = %v, want %v", got, float64(wantSum)/200)
	}

	// Degenerate cases: empty hist and q outside the sample range.
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Sum() != 0 || empty.Mean() != 0 || empty.Total() != 0 {
		t.Fatalf("empty hist helpers must all return 0")
	}
	one := Hist{Counts: []uint64{0, 0, 1}}
	if got := one.Quantile(0); got != 2 {
		t.Fatalf("q=0 with one sample = %d, want 2 (need clamps to 1)", got)
	}
	if got := one.Quantile(1); got != 2 {
		t.Fatalf("q=1 with one sample = %d, want 2", got)
	}
}

package metrics

import (
	"reflect"
	"strings"
	"testing"

	"rme/internal/memory"
)

// rig is a recorder over a fresh native arena with n processes, with all
// ports wrapped.
type rig struct {
	rec   *Recorder
	ports []*memory.CountingPort
	words []memory.Addr
}

func newRig(t *testing.T, n, levels int) *rig {
	t.Helper()
	a := memory.NewNativeArena(n, 256)
	r := NewRecorder(n, levels, a.Capacity())
	g := &rig{rec: r}
	for pid := 0; pid < n; pid++ {
		g.ports = append(g.ports, r.Port(a.Port(pid, nil)))
	}
	for pid := 0; pid < n; pid++ {
		g.words = append(g.words, g.ports[0].Alloc(1, pid))
	}
	return g
}

func TestRecorderFastPassage(t *testing.T) {
	g := newRig(t, 2, 4)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	p.Write(g.words[0], 1) // 1 RMR
	p.Read(g.words[0])     // cached: 0 RMRs
	p.Read(g.words[1])     // miss: 1 RMR
	r.PassageEnd(0)

	s := r.Snapshot()
	if s.Passages != 1 || s.FastPath != 1 || s.SlowPath != 0 {
		t.Fatalf("snapshot %+v, want 1 fast passage", s)
	}
	if s.RMRs != 2 || s.Ops != 3 {
		t.Fatalf("RMRs=%d Ops=%d, want 2/3", s.RMRs, s.Ops)
	}
	if got := s.RMRHist.Counts[2]; got != 1 {
		t.Fatalf("RMR hist bucket 2 = %d, want 1", got)
	}
	if !reflect.DeepEqual(s.LevelHist, []uint64{1, 0, 0, 0}) {
		t.Fatalf("level hist %v, want [1 0 0 0]", s.LevelHist)
	}
	if s.MaxLevel() != 1 {
		t.Fatalf("MaxLevel = %d, want 1", s.MaxLevel())
	}
}

func TestRecorderSlowPassageLevels(t *testing.T) {
	g := newRig(t, 1, 6)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	p.Label("F1:slow") // level 1's slow path → passage reached level 2
	p.Write(g.words[0], 1)
	p.Label("F2:slow") // deeper: level 3
	p.Write(g.words[0], 2)
	p.Label("F1:slow") // shallower than current deepest: ignored
	p.Write(g.words[0], 3)
	r.PassageEnd(0)

	s := r.Snapshot()
	if s.SlowPath != 1 || s.FastPath != 0 {
		t.Fatalf("snapshot %+v, want 1 slow passage", s)
	}
	if s.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d, want 3", s.MaxLevel())
	}
	if s.LevelHist[2] != 1 {
		t.Fatalf("level hist %v, want passage at level 3", s.LevelHist)
	}
}

func TestRecorderLabelKinds(t *testing.T) {
	g := newRig(t, 1, 2)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	p.Label("F0:fas")
	p.FAS(g.words[0], 1)
	p.Label("F0:try")
	p.CAS(g.words[0], 1, 2)
	p.Label("mcs:handoff") // unknown suffix: ignored
	p.Write(g.words[0], 3)
	p.Label("Fx:slow") // malformed level: ignored, not a crash
	p.Write(g.words[0], 4)
	r.PassageEnd(0)

	s := r.Snapshot()
	if s.FilterFAS != 1 || s.SplitterTries != 1 {
		t.Fatalf("FilterFAS=%d SplitterTries=%d, want 1/1", s.FilterFAS, s.SplitterTries)
	}
	if s.MaxLevel() != 1 {
		t.Fatalf("MaxLevel = %d, want 1 (malformed slow label ignored)", s.MaxLevel())
	}
}

func TestRecorderCrashAndRecovery(t *testing.T) {
	g := newRig(t, 1, 2)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	p.Write(g.words[0], 1)
	r.Crash(0) // mid-passage crash: fragment traffic counted, no passage

	s := r.Snapshot()
	if s.Passages != 0 || s.Crashes != 1 || s.RMRs != 1 {
		t.Fatalf("after crash: %+v, want 0 passages, 1 crash, 1 RMR", s)
	}
	if s.RMRHist.Total() != 0 {
		t.Fatalf("crashed fragment entered the RMR histogram: %+v", s.RMRHist)
	}

	r.PassageStart(0) // the recovery passage
	p.Read(g.words[0])
	r.PassageEnd(0)

	s = r.Snapshot()
	if s.Recoveries != 1 || s.Passages != 1 {
		t.Fatalf("after recovery: %+v, want 1 recovery, 1 passage", s)
	}
	// The crash dropped the cache, so the read was an RMR.
	if s.RMRs != 2 {
		t.Fatalf("RMRs = %d, want 2 (post-crash read is a miss)", s.RMRs)
	}
}

func TestRecorderReStartClosesOpenPassage(t *testing.T) {
	g := newRig(t, 1, 2)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	p.Write(g.words[0], 1)
	r.PassageStart(0) // unwound without Crash: folded into totals, no passage
	p.Write(g.words[0], 2)
	r.PassageEnd(0)

	s := r.Snapshot()
	if s.Passages != 1 || s.RMRs != 2 {
		t.Fatalf("snapshot %+v, want 1 passage, 2 RMRs", s)
	}
	if got := s.RMRHist.Counts[1]; got != 1 {
		t.Fatalf("second passage cost bucket: hist %+v", s.RMRHist.Counts[:4])
	}
}

func TestRecorderEndWithoutStartIgnored(t *testing.T) {
	g := newRig(t, 1, 2)
	g.rec.PassageEnd(0)
	if s := g.rec.Snapshot(); s.Passages != 0 {
		t.Fatalf("phantom passage recorded: %+v", s)
	}
}

func TestRecorderHistOverflow(t *testing.T) {
	g := newRig(t, 1, 2)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	for i := 0; i < RMRBuckets+10; i++ {
		p.Write(g.words[0], memory.Word(i))
	}
	r.PassageEnd(0)

	s := r.Snapshot()
	if got := s.RMRHist.Counts[RMRBuckets-1]; got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
	if q := s.RMRHist.Quantile(0.5); q != RMRBuckets-1 {
		t.Fatalf("median = %d, want clamped %d", q, RMRBuckets-1)
	}
}

func TestRecorderClamps(t *testing.T) {
	if r := NewRecorder(1, 0, 8); r.Levels() != 1 {
		t.Fatalf("levels clamp low: %d", r.Levels())
	}
	if r := NewRecorder(1, MaxLevels+5, 8); r.Levels() != MaxLevels {
		t.Fatalf("levels clamp high: %d", r.Levels())
	}
	if r := NewRecorder(3, 2, 8); r.N() != 3 {
		t.Fatalf("N = %d", r.N())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("NewRecorder(0,...) did not panic")
			}
		}()
		NewRecorder(0, 1, 8)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("out-of-range pid did not panic")
			}
		}()
		NewRecorder(1, 1, 8).PassageStart(5)
	}()
}

func TestHistQuantileAndMean(t *testing.T) {
	h := Hist{Counts: []uint64{0, 4, 0, 4, 0}} // values: 1×4, 3×4
	if h.Total() != 8 {
		t.Fatalf("total %d", h.Total())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("median %d, want 1", q)
	}
	if q := h.Quantile(0.99); q != 3 {
		t.Fatalf("p99 %d, want 3", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 %d, want 1 (first sample)", q)
	}
	if m := h.Mean(); m != 2 {
		t.Fatalf("mean %v, want 2", m)
	}
	empty := Hist{}
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty hist quantile/mean not zero")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{
		Passages: 2, Crashes: 1, Recoveries: 1, FastPath: 1, SlowPath: 1,
		SplitterTries: 3, FilterFAS: 2, RMRs: 10, Ops: 20,
		LevelHist: []uint64{1, 1},
		RMRHist:   Hist{Counts: []uint64{0, 1, 1}},
	}
	b := Snapshot{
		Passages: 1, FastPath: 1, RMRs: 4, Ops: 5,
		LevelHist: []uint64{1, 0, 0, 1},
		RMRHist:   Hist{Counts: []uint64{1, 0, 0, 0, 1}},
	}
	m := a.Merge(b)
	if m.Passages != 3 || m.RMRs != 14 || m.Ops != 25 || m.Crashes != 1 {
		t.Fatalf("merged scalars wrong: %+v", m)
	}
	if !reflect.DeepEqual(m.LevelHist, []uint64{2, 1, 0, 1}) {
		t.Fatalf("merged levels %v", m.LevelHist)
	}
	// a's overflow bucket (samples ≥2) must stay overflow after growing.
	if !reflect.DeepEqual(m.RMRHist.Counts, []uint64{1, 1, 0, 0, 2}) {
		t.Fatalf("merged hist %v", m.RMRHist.Counts)
	}
	// a and b themselves are unchanged (Merge copies).
	if !reflect.DeepEqual(a.LevelHist, []uint64{1, 1}) {
		t.Fatalf("Merge mutated its receiver: %v", a.LevelHist)
	}
	// Overflow buckets stay overflow when the destination is wider.
	short := Snapshot{RMRHist: Hist{Counts: []uint64{0, 5}}} // 5 samples ≥ 1
	wide := Snapshot{RMRHist: Hist{Counts: []uint64{0, 0, 0, 0}}}
	if got := wide.Merge(short).RMRHist.Counts; got[3] != 5 {
		t.Fatalf("short overflow landed at %v, want in final bucket", got)
	}
}

func TestSnapshotString(t *testing.T) {
	g := newRig(t, 1, 2)
	r, p := g.rec, g.ports[0]
	r.PassageStart(0)
	p.Label("s:try")
	p.Write(g.words[0], 1)
	r.PassageEnd(0)
	s := r.Snapshot().String()
	for _, want := range []string{"passages=1", "fast=1", "rmr/passage", "max_level=1", "splitter_tries=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if s := (Snapshot{}).String(); !strings.Contains(s, "passages=0") {
		t.Fatalf("empty String() = %q", s)
	}
}

func TestRecorderPerProcIsolation(t *testing.T) {
	g := newRig(t, 3, 2)
	r := g.rec
	for pid := 0; pid < 3; pid++ {
		for i := 0; i <= pid; i++ {
			r.PassageStart(pid)
			g.ports[pid].Write(g.words[pid], 1)
			r.PassageEnd(pid)
		}
	}
	s := r.Snapshot()
	if s.Passages != 6 {
		t.Fatalf("passages = %d, want 6", s.Passages)
	}
	if s.RMRHist.Counts[1] != 6 {
		t.Fatalf("hist %v, want six 1-RMR passages", s.RMRHist.Counts[:4])
	}
}

func TestRecorderAbort(t *testing.T) {
	g := newRig(t, 2, 4)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	p.Write(g.words[0], 1) // 1 RMR of back-out traffic
	r.Abort(0)
	r.Abort(0) // no open passage: ignored

	s := r.Snapshot()
	if s.Attempts != 1 || s.Passages != 0 || s.Aborted != 1 {
		t.Fatalf("snapshot %+v, want 1 attempt, 0 passages, 1 aborted", s)
	}
	if got := s.AbortRMRHist.Total(); got != 1 {
		t.Fatalf("abort hist holds %d samples, want 1", got)
	}
	if got := s.AbortRMRHist.Quantile(0.5); got != 1 {
		t.Fatalf("abort median = %d RMRs, want 1", got)
	}
	if s.RMRHist.Total() != 0 {
		t.Fatal("aborted attempt leaked into the passage histogram")
	}
	if len(s.AbandonedHist) == 0 || s.AbandonedHist[0] != 1 {
		t.Fatalf("abandoned hist %v, want the abort at level 1", s.AbandonedHist)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: %+v", s)
	}
}

func TestRecorderInvalidateRange(t *testing.T) {
	g := newRig(t, 1, 2)
	r, p := g.rec, g.ports[0]

	r.PassageStart(0)
	p.Write(g.words[0], 7) // 1 RMR; the word is now cached
	p.Read(g.words[0])     // cached: free
	r.InvalidateRange(g.words[0], g.words[0]+1)
	p.Read(g.words[0]) // recycled region: a fresh miss, 1 RMR
	r.PassageEnd(0)

	s := r.Snapshot()
	if s.RMRs != 2 {
		t.Fatalf("RMRs = %d, want 2 (write miss + post-invalidate read miss)", s.RMRs)
	}
}

func TestLabelPredicates(t *testing.T) {
	if got := SlowLevel("F2:slow"); got != 3 {
		t.Fatalf("SlowLevel(F2:slow) = %d, want 3", got)
	}
	for _, l := range []string{"slow", "Fx:slow", "F0:slow", "mcs:handoff"} {
		if SlowLevel(l) != 0 {
			t.Fatalf("SlowLevel(%q) != 0", l)
		}
	}
	if !IsHandoff("mcs:handoff") || IsHandoff("F1:slow") {
		t.Fatal("IsHandoff misclassifies")
	}
	if !IsFilterFAS("wr:fas") || IsFilterFAS("wr:try") {
		t.Fatal("IsFilterFAS misclassifies")
	}
	if !IsSplitterTry("sp:try") || IsSplitterTry("sp:fas") {
		t.Fatal("IsSplitterTry misclassifies")
	}
}

func TestSnapshotRMRsPerPassage(t *testing.T) {
	g := newRig(t, 1, 2)
	r, p := g.rec, g.ports[0]
	r.PassageStart(0)
	p.Write(g.words[0], 1)
	r.PassageEnd(0)
	s := r.Snapshot()
	if got := s.RMRsPerPassage(); got != 1 {
		t.Fatalf("RMRsPerPassage = %g, want 1", got)
	}
}

package metrics

import (
	"fmt"
	"strings"
)

// Snapshot is a tear-free aggregate view of passage metrics. Both the
// native backend (Recorder.Snapshot) and the simulator
// (sim.Result.MetricsSnapshot) produce this type, so measured and
// logical numbers are directly comparable.
type Snapshot struct {
	// Attempts counts passages started. At quiescence
	// Attempts == Passages + Aborted + CrashedAttempts (the abort CI gate
	// asserts exactly this identity); while passages are in flight the
	// right side lags by the number of open passages.
	Attempts uint64 `json:"attempts"`
	// Passages counts successfully completed passages
	// (Recover→Enter→CS→Exit with no crash).
	Passages uint64 `json:"passages"`
	// Crashes counts failures (injected or simulated).
	Crashes uint64 `json:"crashes"`
	// CrashedAttempts counts attempts that ended in a crash (one crash can
	// close at most one open attempt, so CrashedAttempts ≤ Crashes).
	CrashedAttempts uint64 `json:"crashed_attempts"`
	// Aborted counts attempts that ended in a back-out: the waiter was
	// cancelled, abandoned its queue position crash-safely and left.
	Aborted uint64 `json:"aborted"`
	// Recoveries counts passages that began with a prior crash pending,
	// i.e. runs of Recover that had cleanup to consider.
	Recoveries uint64 `json:"recoveries"`
	// FastPath counts completed passages that stayed at BA-Lock level 1.
	FastPath uint64 `json:"fast_path"`
	// SlowPath counts completed passages that escalated past level 1.
	SlowPath uint64 `json:"slow_path"`
	// SplitterTries counts splitter acquisition attempts (":try" labels).
	SplitterTries uint64 `json:"splitter_tries"`
	// FilterFAS counts WR-Lock filter acquisitions — executions of the
	// sensitive fetch-and-store (":fas" labels).
	FilterFAS uint64 `json:"filter_fas"`
	// RMRs is the total remote memory references under the CC model,
	// including traffic of crashed passage fragments.
	RMRs uint64 `json:"rmrs"`
	// Ops is the total shared-memory instruction count.
	Ops uint64 `json:"ops"`
	// LevelHist[i] counts completed passages whose deepest BA-Lock level
	// was i+1 (index 0 = level 1, the fast path).
	LevelHist []uint64 `json:"level_hist"`
	// RMRHist is the per-passage RMR cost distribution.
	RMRHist Hist `json:"rmr_hist"`
	// AbandonedHist[i] counts aborted attempts whose deepest BA-Lock level
	// was i+1 when the abort was delivered — the abandoned-level
	// distribution (how deep cancelled waiters had escalated).
	AbandonedHist []uint64 `json:"abandoned_hist,omitempty"`
	// AbortRMRHist is the RMR cost distribution of aborted attempts,
	// including the back-out protocol's own instructions. With no recent
	// failures the back-out touches only the fast-path components, so this
	// distribution staying O(1) is the abortable analogue of the paper's
	// adaptivity claim.
	AbortRMRHist Hist `json:"abort_rmr_hist"`
}

// Hist is a histogram of a per-passage quantity. Counts[i] for
// i < len(Counts)-1 holds the number of passages whose value was exactly
// i; the final bucket collects every passage at or above len(Counts)-1.
type Hist struct {
	Counts []uint64 `json:"counts"`
}

// Total returns the number of samples in the histogram.
func (h Hist) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Quantile returns the smallest bucket value v such that at least
// q·Total() samples are ≤ v, i.e. the q-quantile of the distribution
// (q in [0,1]). With no samples it returns 0. If the quantile lands in
// the overflow bucket the returned value is len(Counts)-1, a lower
// bound.
func (h Hist) Quantile(q float64) int {
	total := h.Total()
	if total == 0 {
		return 0
	}
	need := uint64(q * float64(total))
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= need {
			return i
		}
	}
	return len(h.Counts) - 1
}

// Mean returns the sample mean, counting overflow-bucket samples at the
// bucket's lower bound (so it is a lower bound on the true mean).
func (h Hist) Mean() float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var sum uint64
	for i, c := range h.Counts {
		sum += uint64(i) * c
	}
	return float64(sum) / float64(total)
}

// Sum returns the sum of all samples, counting overflow-bucket samples
// at the bucket's lower bound (so it is a lower bound on the true sum).
// Exporters use it for the Prometheus histogram _sum series.
func (h Hist) Sum() uint64 {
	var sum uint64
	for i, c := range h.Counts {
		sum += uint64(i) * c
	}
	return sum
}

// add merges o into h, growing h as needed; o's overflow bucket lands in
// h's overflow bucket.
func (h *Hist) add(o Hist) {
	if len(o.Counts) == 0 {
		return
	}
	if n := len(h.Counts); n < len(o.Counts) {
		grown := make([]uint64, len(o.Counts))
		copy(grown, h.Counts)
		if n > 0 {
			// h's old overflow bucket must stay overflow after growing.
			grown[len(grown)-1] += grown[n-1]
			grown[n-1] = 0
		}
		h.Counts = grown
	}
	last := len(h.Counts) - 1
	for i, c := range o.Counts {
		if i == len(o.Counts)-1 && i < last {
			// o's overflow must stay overflow.
			h.Counts[last] += c
		} else {
			h.Counts[i] += c
		}
	}
}

// MaxLevel returns the deepest BA-Lock level any completed passage
// reached (1-based), or 0 if no passage completed.
func (s Snapshot) MaxLevel() int {
	for i := len(s.LevelHist) - 1; i >= 0; i-- {
		if s.LevelHist[i] != 0 {
			return i + 1
		}
	}
	return 0
}

// RMRsPerPassage returns the mean RMR cost over completed passages
// (from the histogram, so crashed fragments are excluded).
func (s Snapshot) RMRsPerPassage() float64 { return s.RMRHist.Mean() }

// Merge returns the element-wise sum of s and o, merging histograms.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	m := s
	m.Attempts += o.Attempts
	m.Passages += o.Passages
	m.Crashes += o.Crashes
	m.CrashedAttempts += o.CrashedAttempts
	m.Aborted += o.Aborted
	m.Recoveries += o.Recoveries
	m.FastPath += o.FastPath
	m.SlowPath += o.SlowPath
	m.SplitterTries += o.SplitterTries
	m.FilterFAS += o.FilterFAS
	m.RMRs += o.RMRs
	m.Ops += o.Ops
	m.LevelHist = append([]uint64(nil), s.LevelHist...)
	for len(m.LevelHist) < len(o.LevelHist) {
		m.LevelHist = append(m.LevelHist, 0)
	}
	for i, v := range o.LevelHist {
		m.LevelHist[i] += v
	}
	m.AbandonedHist = append([]uint64(nil), s.AbandonedHist...)
	for len(m.AbandonedHist) < len(o.AbandonedHist) {
		m.AbandonedHist = append(m.AbandonedHist, 0)
	}
	for i, v := range o.AbandonedHist {
		m.AbandonedHist[i] += v
	}
	m.RMRHist = Hist{Counts: append([]uint64(nil), s.RMRHist.Counts...)}
	m.RMRHist.add(o.RMRHist)
	m.AbortRMRHist = Hist{Counts: append([]uint64(nil), s.AbortRMRHist.Counts...)}
	m.AbortRMRHist.add(o.AbortRMRHist)
	return m
}

// String renders a one-paragraph human summary, the form printed by
// cmd/soak and cmd/rmesim.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "passages=%d crashes=%d recoveries=%d fast=%d slow=%d",
		s.Passages, s.Crashes, s.Recoveries, s.FastPath, s.SlowPath)
	if s.Aborted > 0 {
		fmt.Fprintf(&b, " aborted=%d abort_rmr{med=%d p99=%d}",
			s.Aborted, s.AbortRMRHist.Quantile(0.5), s.AbortRMRHist.Quantile(0.99))
	}
	if s.Passages > 0 {
		fmt.Fprintf(&b, " rmr/passage{med=%d p99=%d mean=%.1f}",
			s.RMRHist.Quantile(0.5), s.RMRHist.Quantile(0.99), s.RMRHist.Mean())
		fmt.Fprintf(&b, " max_level=%d", s.MaxLevel())
	}
	fmt.Fprintf(&b, " rmrs=%d ops=%d", s.RMRs, s.Ops)
	if s.SplitterTries > 0 || s.FilterFAS > 0 {
		fmt.Fprintf(&b, " splitter_tries=%d filter_fas=%d", s.SplitterTries, s.FilterFAS)
	}
	return b.String()
}

// Package core implements the contributions of Dhoked & Mittal, "An
// Adaptive Approach to Recoverable Mutual Exclusion" (PODC 2020):
//
//   - WRLock — the optimal weakly recoverable MCS-based queue lock with
//     wait-free exit (Section 4, Algorithm 2). O(1) RMRs per passage in
//     every failure scenario; a crash immediately after its single
//     sensitive instruction (the FAS on the queue tail) may fragment the
//     queue and violate mutual exclusion temporarily and responsively.
//   - Splitter — the biased O(1) try-lock used to route processes onto the
//     fast or slow path (Section 5.1).
//   - SALock — the semi-adaptive framework (Algorithm 3): filter lock →
//     splitter → {fast path | core lock} → dual-port arbitrator.
//   - BALock — the recursive well-bounded super-adaptive lock
//     (Section 5.2): m = T(n) stacked SALock levels over a non-adaptive
//     strongly recoverable base lock, giving O(min{√F, T(n)}) RMRs per
//     passage when the super-passage overlaps F failures.
//
// All locks follow the paper's execution model (Recover, Enter, Exit) and
// keep every per-process mutable variable in shared memory, so they
// tolerate crash–recover failures at any instruction boundary.
package core

import "rme/internal/memory"

// NodeSource supplies queue nodes to WRLock. The paper pairs the lock with
// the memory-reclamation algorithm of Section 7.2 (internal/reclaim), whose
// NewNode is idempotent: repeated calls return the same node until Retire
// is called, which tolerates crashes between obtaining a node and
// persisting the reference.
type NodeSource interface {
	// NewNode returns the address of a 2-word queue node (offset 0:
	// locked flag, offset 1: next pointer) for the calling process.
	NewNode(p memory.Port) memory.Addr
	// Retire declares the calling process done with its current node.
	Retire(p memory.Port)
}

// AllocSource is the trivial NodeSource: every call allocates a fresh node
// and Retire is a no-op. It never reuses memory (space grows with the
// number of passages) but is safe unconditionally; use internal/reclaim
// for the paper's bounded-space pools.
type AllocSource struct{}

// NewNode implements NodeSource.
func (AllocSource) NewNode(p memory.Port) memory.Addr {
	return p.Alloc(qnodeWords, p.PID())
}

// Retire implements NodeSource.
func (AllocSource) Retire(p memory.Port) {}

const (
	qnodeWords = 2
	offLocked  = 0
	offNext    = 1
)

// Process states with respect to a WRLock (Section 4.3). Free is the zero
// value so freshly allocated shared memory is a valid initial state.
// Aborted is this repository's extension (DESIGN §15): it is persisted
// before the back-out dance mutates the queue, so a crash during an abort
// resumes the dance from Recover instead of losing track of the node.
const (
	stateFree memory.Word = iota
	stateInitializing
	stateTrying
	stateInCS
	stateLeaving
	stateAborted
)

// Aborter is implemented by locks that support crash-safe back-out: Abort
// runs after the process's Enter (or Recover) was unwound at an
// instruction boundary and leaves the process holding nothing, using only
// steps that the lock's own Recover can finish if the process crashes
// mid-abort. Abort may wait (e.g. the arbitration-tree base completes an
// in-flight node acquisition before releasing it) but never blocks behind
// an entire passage of another process on the abortable components.
type Aborter interface {
	Abort(p memory.Port)
}

package core

import (
	"testing"

	"rme/internal/grlock"
	"rme/internal/memory"
	"rme/internal/sim"
)

func tournamentBase(sp memory.Space, n int) RecoverableLock {
	return grlock.NewTournament(sp, n)
}

func baFactory(sp memory.Space, n int) sim.Lock {
	return NewBALock(sp, n, DefaultLevels(n), tournamentBase, nil)
}

func TestDefaultLevels(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 1}, {4, 2}, {8, 3}, {16, 4}, {64, 6}, {100, 7},
	}
	for _, tt := range tests {
		if got := DefaultLevels(tt.n); got != tt.want {
			t.Errorf("DefaultLevels(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestSubLogLevels(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {4, 1}, {16, 2}, {64, 3}, {1024, 4},
	}
	for _, tt := range tests {
		if got := SubLogLevels(tt.n); got != tt.want {
			t.Errorf("SubLogLevels(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestBALockStructure(t *testing.T) {
	a := memory.NewArena(memory.CC, 8)
	b := NewBALock(a, 8, 3, tournamentBase, nil)
	if b.Levels() != 3 {
		t.Fatalf("levels = %d, want 3", b.Levels())
	}
	for k := 1; k <= 3; k++ {
		sa := b.Level(k)
		if sa == nil {
			t.Fatalf("level %d missing", k)
		}
		wantName := map[int]string{1: "F1", 2: "F2", 3: "F3"}[k]
		if sa.Name() != wantName {
			t.Fatalf("level %d name = %q, want %q", k, sa.Name(), wantName)
		}
	}
	// Level i's core is level i+1; the last level's core is the base.
	if b.Level(1).Core() != RecoverableLock(b.Level(2)) {
		t.Fatal("level 1 core is not level 2")
	}
	if b.Level(3).Core() != b.Base() {
		t.Fatal("level 3 core is not the base lock")
	}
	labels := b.SlowLabels()
	if len(labels) != 3 || labels[0] != "F1:slow" || labels[2] != "F3:slow" {
		t.Fatalf("slow labels = %v", labels)
	}
	if b.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestBALockFailureFree(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{1, 2, 4, 8} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 3, Seed: int64(n) * 7}, baFactory)
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v n=%d] ME violated: overlap %d", model, n, res.MaxCSOverlap)
			}
			if got := len(res.Requests); got != 3*n {
				t.Fatalf("[%v n=%d] %d requests, want %d", model, n, got, 3*n)
			}
		}
	}
}

func TestBALockConstantRMRsWithoutFailures(t *testing.T) {
	// The headline first scenario of Table 1: O(1) RMRs per passage with
	// no failures, independent of n (and of the number of levels).
	const bound = 45
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		var prev int64
		for _, n := range []int{2, 8, 32} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 4, Seed: 19}, baFactory)
			s := res.SummarizePassageRMRs(nil)
			if s.Max > bound {
				t.Fatalf("[%v n=%d] max failure-free RMRs = %d, want ≤ %d", model, n, s.Max, bound)
			}
			if prev != 0 && s.Max > prev+4 {
				t.Fatalf("[%v] RMRs grew with n: %d → %d", model, prev, s.Max)
			}
			prev = s.Max
		}
	}
}

func TestBALockNeverEscalatesWithoutFailures(t *testing.T) {
	res := mustRun(t, sim.Config{N: 8, Model: memory.CC, Requests: 4, Seed: 23, RecordOps: true}, baFactory)
	for _, ev := range res.Events {
		if ev.Kind != sim.EvOp {
			continue
		}
		switch ev.Op.Label {
		case "F1:slow", "F2:slow", "F3:slow":
			t.Fatalf("escalation (%s) without failures", ev.Op.Label)
		}
	}
}

func TestBALockMEUnderHeavyFailures(t *testing.T) {
	// Strong recoverability of the full stack (Theorem 5.10).
	for seed := int64(0); seed < 6; seed++ {
		plan := &sim.RandomFailures{Rate: 0.01, MaxTotal: 15, DuringPassage: true}
		res := mustRun(t, sim.Config{N: 8, Model: memory.CC, Requests: 3, Seed: seed, Plan: plan,
			MaxSteps: 10_000_000}, baFactory)
		if res.MaxCSOverlap != 1 {
			t.Fatalf("seed=%d: ME violated with %d crashes", seed, res.CrashCount())
		}
		if got := len(res.Requests); got != 24 {
			t.Fatalf("seed=%d: %d requests, want 24", seed, got)
		}
	}
}

func TestBALockCrashSweep(t *testing.T) {
	for at := int64(0); at < 100; at += 5 {
		plan := &sim.CrashAtOp{PID: 1, OpIndex: at}
		res := mustRun(t, sim.Config{N: 4, Model: memory.DSM, Requests: 2, Seed: 31, Plan: plan,
			MaxSteps: 5_000_000}, baFactory)
		if res.MaxCSOverlap != 1 {
			t.Fatalf("at=%d: ME violated", at)
		}
		if got := len(res.Requests); got != 8 {
			t.Fatalf("at=%d: %d requests, want 8", at, got)
		}
	}
}

func TestBALockEscalationRequiresFailures(t *testing.T) {
	// Theorem 5.17 in contrapositive, coarse form: with a single unsafe
	// failure at level 1, processes may reach level 2 but never level 3.
	plan := &sim.CrashOnLabel{PID: 0, Label: "F1:fas", After: true}
	res := mustRun(t, sim.Config{N: 8, Model: memory.CC, Requests: 3, Seed: 37, Plan: plan,
		RecordOps: true, CSOps: 4, MaxSteps: 10_000_000}, baFactory)
	if res.CrashCount() != 1 {
		t.Fatalf("%d crashes, want 1", res.CrashCount())
	}
	deepest := 0
	for _, ev := range res.Events {
		if ev.Kind != sim.EvOp {
			continue
		}
		switch ev.Op.Label {
		case "F1:slow":
			if deepest < 1 {
				deepest = 1
			}
		case "F2:slow":
			if deepest < 2 {
				deepest = 2
			}
		case "F3:slow":
			deepest = 3
		}
	}
	if deepest >= 2 {
		t.Fatalf("a single failure escalated processes to level %d+1", deepest)
	}
	if res.MaxCSOverlap != 1 {
		t.Fatalf("ME violated: overlap %d", res.MaxCSOverlap)
	}
}

func TestBALockValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 2)
	mustPanicCore(t, "n", func() { NewBALock(a, 0, 1, tournamentBase, nil) })
	mustPanicCore(t, "levels", func() { NewBALock(a, 2, 0, tournamentBase, nil) })
	mustPanicCore(t, "base", func() { NewBALock(a, 2, 1, nil, nil) })
	mustPanicCore(t, "nil base", func() {
		NewBALock(a, 2, 1, func(memory.Space, int) RecoverableLock { return nil }, nil)
	})
}

func mustPanicCore(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func baMemoFactory(sp memory.Space, n int) sim.Lock {
	return NewBALockWithMemo(sp, n, DefaultLevels(n), tournamentBase, nil)
}

func TestBALockMemoFailureFree(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		res := mustRun(t, sim.Config{N: 8, Model: model, Requests: 3, Seed: 41}, baMemoFactory)
		if res.MaxCSOverlap != 1 {
			t.Fatalf("[%v] ME violated: overlap %d", model, res.MaxCSOverlap)
		}
		if got := len(res.Requests); got != 24 {
			t.Fatalf("[%v] %d requests, want 24", model, got)
		}
	}
}

func TestBALockMemoCrashSweep(t *testing.T) {
	// The memoized recovery path must preserve strong recoverability at
	// every crash placement (including descent, unwind and exit).
	for at := int64(0); at < 120; at += 3 {
		plan := &sim.CrashAtOp{PID: 1, OpIndex: at}
		res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 2, Seed: 43, Plan: plan,
			MaxSteps: 5_000_000}, baMemoFactory)
		if res.MaxCSOverlap != 1 {
			t.Fatalf("at=%d: ME violated", at)
		}
		if got := len(res.Requests); got != 8 {
			t.Fatalf("at=%d: %d requests, want 8", at, got)
		}
	}
}

func TestBALockMemoHeavyFailures(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		plan := sim.PlanSeq{
			&sim.RandomFailures{Rate: 0.005, MaxTotal: 8, DuringPassage: true},
			&sim.UnsafeBudget{Total: 4, Rate: 0.3, MaxPerProcess: 1},
		}
		res := mustRun(t, sim.Config{N: 8, Model: memory.CC, Requests: 3, Seed: seed, Plan: plan,
			MaxSteps: 10_000_000}, baMemoFactory)
		if res.MaxCSOverlap != 1 {
			t.Fatalf("seed=%d: ME violated with %d crashes", seed, res.CrashCount())
		}
		if got := len(res.Requests); got != 24 {
			t.Fatalf("seed=%d: %d requests, want 24", seed, got)
		}
	}
}

func TestBALockMemoCheaperRecovery(t *testing.T) {
	// A victim that repeatedly crashes while escalated should pay less
	// per super-passage with the memo than without: the memoized walk
	// re-enters only its deepest level.
	victimPlan := func(f0 int) func(int) sim.FailurePlan {
		return func(int) sim.FailurePlan {
			return sim.PlanFunc(func(ctx sim.StepCtx) bool {
				return ctx.PID == 0 && ctx.InPassage && ctx.ProcCrashes < f0 &&
					ctx.Rand.Float64() < 0.08
			})
		}
	}
	run := func(f sim.Factory) int64 {
		var worst int64
		for seed := int64(1); seed <= 3; seed++ {
			r, err := sim.New(sim.Config{N: 8, Model: memory.CC, Requests: 4, Seed: seed,
				Plan: victimPlan(6)(8), MaxSteps: 10_000_000}, f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.MaxCSOverlap != 1 {
				t.Fatal("ME violated")
			}
			if s := res.SummarizeRequestRMRs(); s.Max > worst {
				worst = s.Max
			}
		}
		return worst
	}
	plain := run(baFactory)
	memo := run(baMemoFactory)
	if memo > plain {
		t.Logf("memo did not win on this workload (plain %d vs memo %d); acceptable when escalation is shallow", plain, memo)
	}
}

func TestBALockMemoAccessors(t *testing.T) {
	a := memory.NewArena(memory.CC, 4)
	b := NewBALockWithMemo(a, 4, 2, tournamentBase, nil)
	if !b.MemoEnabled() {
		t.Fatal("memo not enabled")
	}
	b2 := NewBALock(a, 4, 2, tournamentBase, nil)
	if b2.MemoEnabled() {
		t.Fatal("memo unexpectedly enabled")
	}
}

func TestBALockFCFSWithoutFailures(t *testing.T) {
	// Section 1: the target lock is FCFS in the absence of failures —
	// processes enter the target CS in the order of their level-1 filter
	// appends.
	res := mustRun(t, sim.Config{N: 8, Model: memory.CC, Requests: 3, Seed: 47, RecordOps: true}, baFactory)
	var fasOrder, csOrder []int
	for _, ev := range res.Events {
		switch {
		case ev.Kind == sim.EvOp && ev.Op.Label == "F1:fas":
			fasOrder = append(fasOrder, ev.PID)
		case ev.Kind == sim.EvCSEnter:
			csOrder = append(csOrder, ev.PID)
		}
	}
	if len(fasOrder) != len(csOrder) || len(csOrder) != 24 {
		t.Fatalf("%d FAS vs %d CS entries, want 24 each", len(fasOrder), len(csOrder))
	}
	for i := range fasOrder {
		if fasOrder[i] != csOrder[i] {
			t.Fatalf("FCFS violated at %d: doorway %v vs entry %v", i, fasOrder, csOrder)
		}
	}
}

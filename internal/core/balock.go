package core

import (
	"fmt"
	"math"
	"strings"

	"rme/internal/memory"
)

// BaseFactory constructs the non-adaptive strongly recoverable base lock
// (NA-Lock) placed at the bottom of the recursion.
type BaseFactory func(sp memory.Space, n int) RecoverableLock

// SourceFactory constructs a NodeSource for the filter lock at one level
// (nil sources select AllocSource). Each level gets its own source, since
// each filter instance manages its own queue nodes.
type SourceFactory func(sp memory.Space, n int, level int) NodeSource

// BALock is the well-bounded super-adaptive lock of Section 5.2
// (Figure 3): m stacked SALock levels whose core at level i is the SALock
// at level i+1, with the base lock at level m. Escalating to level x
// requires at least x(x-1)/2 recent failures (Theorem 5.17), so a passage
// whose super-passage overlaps at most F failures costs
// O(min{√F, T(n)}) RMRs (Theorem 5.18), where T(n) is the base lock's
// worst-case RMR complexity.
type BALock struct {
	n      int
	levels []*SALock // levels[0] is level 1, the outermost
	base   RecoverableLock

	// memo, when non-nil, holds each process's last known level
	// (Section 7.3): the deepest level it has committed to in its
	// current super-passage. Recovery then resumes directly at that
	// level instead of replaying every shallower level, reducing the
	// worst-case super-passage cost from O(F₀·min{√F, T(n)}) to
	// O(F₀ + min{√F, T(n)}).
	memo []memory.Addr
}

// DefaultLevels returns the paper's choice of recursion depth m = T(n)
// for a base lock of logarithmic RMR complexity: ⌈log₂ n⌉ (at least 1).
func DefaultLevels(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// SubLogLevels returns m = ⌈log n / log log n⌉ (at least 1), matching a
// sub-logarithmic base lock such as the arbitration tree.
func SubLogLevels(n int) int {
	if n <= 4 {
		return 1
	}
	ln := math.Log2(float64(n))
	m := int(math.Ceil(ln / math.Log2(ln)))
	if m < 1 {
		m = 1
	}
	return m
}

// NewBALock builds a super-adaptive lock for n processes with m levels
// over the base lock produced by base. Filters are named "F1".."Fm"
// (outermost first); their sensitive-FAS labels are "F<k>:fas" and their
// slow-path commitment labels "F<k>:slow". src may be nil.
func NewBALock(sp memory.Space, n, m int, base BaseFactory, src SourceFactory) *BALock {
	return newBALock(sp, n, m, base, src, false)
}

// NewBALockWithMemo builds the lock with the last-known-level optimization
// of Section 7.3 enabled.
func NewBALockWithMemo(sp memory.Space, n, m int, base BaseFactory, src SourceFactory) *BALock {
	return newBALock(sp, n, m, base, src, true)
}

func newBALock(sp memory.Space, n, m int, base BaseFactory, src SourceFactory, memo bool) *BALock {
	if n < 1 {
		panic(fmt.Sprintf("core: NewBALock n = %d", n))
	}
	if m < 1 {
		panic(fmt.Sprintf("core: NewBALock levels = %d", m))
	}
	if base == nil {
		panic("core: NewBALock requires a base lock factory")
	}
	b := &BALock{n: n, levels: make([]*SALock, m)}
	b.base = base(sp, n)
	if b.base == nil {
		panic("core: base factory returned nil")
	}
	if memo {
		b.memo = make([]memory.Addr, n)
		for i := 0; i < n; i++ {
			b.memo[i] = sp.Alloc(1, i)
		}
	}
	inner := b.base
	for level := m; level >= 1; level-- {
		var ns NodeSource
		if src != nil {
			ns = src(sp, n, level)
		}
		sa := NewSALock(sp, n, fmt.Sprintf("F%d", level), inner, ns)
		sa.level = level
		if memo && level < m {
			// Committing to the slow path at level k means descending
			// into level k+1: remember it as the last known level.
			deeper := memory.Word(level + 1)
			sa.slowHook = func(p memory.Port) {
				p.Write(b.memo[p.PID()], deeper)
			}
		}
		b.levels[level-1] = sa
		inner = sa
	}
	return b
}

// Levels returns the recursion depth m.
func (b *BALock) Levels() int { return len(b.levels) }

// Level returns the SALock instance at 1-based level k.
func (b *BALock) Level(k int) *SALock { return b.levels[k-1] }

// Base returns the base lock.
func (b *BALock) Base() RecoverableLock { return b.base }

// SetPhaseHook installs h (nil removes it) as the observer of pipeline
// transitions at every level; each level reports with its own 1-based
// level number, so an escalating passage is visible as filter(1),
// splitter(1), core(1), filter(2), ... in the hook's event order.
func (b *BALock) SetPhaseHook(h PhaseHook) {
	for _, sa := range b.levels {
		sa.SetPhaseHook(h)
	}
}

// Recover implements RecoverableLock; per the composite-lock convention
// every component recovers immediately before its Enter.
func (b *BALock) Recover(p memory.Port) {}

// Enter acquires the target lock: the process starts at level 1 and is
// escalated one level per unsafe failure it is entangled with. With level
// memoization, a process recovering from a crash resumes directly at its
// last known level: the filters, splitters and path commitments of every
// shallower level are still held (their state survived the crash), so
// only the memoized level is entered normally and the outer arbitrators
// are re-acquired on the way out.
func (b *BALock) Enter(p memory.Port) {
	if b.memo == nil {
		b.levels[0].Enter(p)
		return
	}
	last := int(p.Read(b.memo[p.PID()]))
	if last < 1 || last > len(b.levels) {
		last = 1
	}
	b.levels[last-1].Enter(p)
	for k := last - 1; k >= 1; k-- {
		b.levels[k-1].AcquireArbitrator(p)
	}
}

// Exit releases the target lock. With level memoization the memo is reset
// first: a crash inside Exit then falls back to the full (slower but
// always safe) level walk, because path commitments are reset during the
// exit and the memoized shortcut would no longer be valid.
func (b *BALock) Exit(p memory.Port) {
	if b.memo != nil {
		p.Write(b.memo[p.PID()], 1)
	}
	b.levels[0].Exit(p)
}

// Abort implements Aborter: the memo is reset first — exactly as in Exit,
// a crash during the back-out must fall back to the full level walk, since
// path commitments dissolve as the abort unwinds — then level 1's Abort
// recursively backs out of every level the process committed to (each
// level's core is the next level, so the recursion follows the persisted
// slow-path commitments down to wherever the process actually was).
func (b *BALock) Abort(p memory.Port) {
	if b.memo != nil {
		p.Write(b.memo[p.PID()], 1)
	}
	b.levels[0].Abort(p)
}

// MemoEnabled reports whether the Section 7.3 optimization is active.
func (b *BALock) MemoEnabled() bool { return b.memo != nil }

// SlowLabels returns the slow-path commitment labels of every level,
// outermost first. A passage's escalation depth is the largest k whose
// label appears among its instructions.
func (b *BALock) SlowLabels() []string {
	out := make([]string, len(b.levels))
	for i, sa := range b.levels {
		out[i] = sa.SlowLabel()
	}
	return out
}

// Describe renders the recursive structure (Figure 3).
func (b *BALock) Describe() string {
	var sb strings.Builder
	for i, sa := range b.levels {
		fmt.Fprintf(&sb, "level %d  %s\n", i+1, sa.Describe())
	}
	fmt.Fprintf(&sb, "base     strongly recoverable non-adaptive lock (T(n))\n")
	return sb.String()
}

package core

import (
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
)

func wrFactory(name string) sim.Factory {
	return func(sp memory.Space, n int) sim.Lock {
		return NewWRLock(sp, n, name, nil)
	}
}

func mustRun(t *testing.T, cfg sim.Config, f sim.Factory) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWRLockFailureFree(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{1, 2, 3, 8} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 4, Seed: int64(n)}, wrFactory("wr"))
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v n=%d] mutual exclusion violated without failures: overlap %d", model, n, res.MaxCSOverlap)
			}
			if got := len(res.Requests); got != 4*n {
				t.Fatalf("[%v n=%d] %d requests satisfied, want %d", model, n, got, 4*n)
			}
		}
	}
}

func TestWRLockConstantRMRs(t *testing.T) {
	// Theorem 4.7: O(1) RMRs per passage under both models. The maximum
	// per-passage RMR count must be a small constant independent of n.
	// Under the write-through CC accounting every write costs one RMR,
	// so the constant is larger than under DSM; what matters is that it
	// does not grow with n.
	const bound = 20
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		var prevMax int64
		for _, n := range []int{2, 8, 32} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 5, Seed: 9}, wrFactory("wr"))
			s := res.SummarizePassageRMRs(nil)
			if s.Max > bound {
				t.Fatalf("[%v n=%d] max RMRs per passage = %d, want ≤ %d", model, n, s.Max, bound)
			}
			if prevMax != 0 && s.Max > prevMax+2 {
				t.Fatalf("[%v] per-passage RMRs grew with n: %d → %d", model, prevMax, s.Max)
			}
			prevMax = s.Max
		}
	}
}

func TestWRLockFCFSWithoutFailures(t *testing.T) {
	// In the absence of failures the lock is FCFS: processes enter the CS
	// in the order their FAS instructions appended them to the queue.
	res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 3, Seed: 4, RecordOps: true}, wrFactory("wr"))
	var fasOrder, csOrder []int
	for _, ev := range res.Events {
		switch {
		case ev.Kind == sim.EvOp && ev.Op.Label == "wr:fas":
			fasOrder = append(fasOrder, ev.PID)
		case ev.Kind == sim.EvCSEnter:
			csOrder = append(csOrder, ev.PID)
		}
	}
	if len(fasOrder) != len(csOrder) || len(fasOrder) != 18 {
		t.Fatalf("event counts: %d FAS, %d CS enters, want 18 each", len(fasOrder), len(csOrder))
	}
	for i := range fasOrder {
		if fasOrder[i] != csOrder[i] {
			t.Fatalf("FCFS violated at %d: FAS order %v, CS order %v", i, fasOrder, csOrder)
		}
	}
}

func TestWRLockSafeCrashesKeepME(t *testing.T) {
	// Failures anywhere except immediately after the FAS are safe
	// (Definition 3.4): mutual exclusion must hold. Crash each process
	// once right before its FAS (the attempt aborts and retries).
	plan := sim.PlanSeq{
		&sim.CrashOnLabel{PID: 0, Label: "wr:fas"},
		&sim.CrashOnLabel{PID: 2, Label: "wr:fas"},
	}
	res := mustRun(t, sim.Config{N: 4, Model: memory.DSM, Requests: 3, Seed: 8, Plan: plan}, wrFactory("wr"))
	if res.CrashCount() != 2 {
		t.Fatalf("%d crashes, want 2", res.CrashCount())
	}
	if res.MaxCSOverlap != 1 {
		t.Fatalf("safe failures violated ME: overlap %d", res.MaxCSOverlap)
	}
	if got := len(res.Requests); got != 12 {
		t.Fatalf("%d requests satisfied, want 12", got)
	}
}

func TestWRLockCrashInCSReentry(t *testing.T) {
	// BCSR (Theorem 4.4): after a crash inside the CS, the process
	// re-enters before anyone else, within a bounded number of steps.
	plan := sim.PlanFunc(func(ctx sim.StepCtx) bool {
		return ctx.PID == 1 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 2, Seed: 17, Plan: &planWrap{plan}}, wrFactory("wr"))
	if res.CrashCount() != 1 {
		t.Fatalf("%d crashes, want 1", res.CrashCount())
	}
	crashSeq := res.Crashes[0].Seq
	for _, ev := range res.Events {
		if ev.Seq <= crashSeq || ev.Kind != sim.EvCSEnter {
			continue
		}
		if ev.PID != 1 {
			t.Fatalf("process %d entered CS before the crashed process re-entered", ev.PID)
		}
		break
	}
	// The re-entry passage is bounded: far fewer steps than a contended
	// acquisition (it only re-evaluates guards).
	var reentry *sim.PassageStat
	for i, p := range res.Passages {
		if p.PID == 1 && p.Attempt == 1 && !p.Crashed {
			reentry = &res.Passages[i]
			break
		}
	}
	if reentry == nil {
		t.Fatal("no re-entry passage recorded")
	}
	if reentry.Ops > 30 {
		t.Fatalf("re-entry passage took %d ops, want bounded (≤ 30)", reentry.Ops)
	}
	if res.MaxCSOverlap != 1 {
		t.Fatalf("ME violated: overlap %d", res.MaxCSOverlap)
	}
}

// planWrap lets PlanFunc-style closures carry state externally when needed.
type planWrap struct{ sim.FailurePlan }

func TestWRLockUnsafeFailureFragmentsQueue(t *testing.T) {
	// Crash two processes immediately after their FAS on tail — the
	// paper's unsafe failure (Figure 1). The queue fragments into
	// sub-queues; mutual exclusion may be violated, but starvation
	// freedom must still hold and fragmentation is bounded by the number
	// of unsafe failures (Proposition 4.1 / Theorem 4.2).
	var lck *WRLock
	factory := func(sp memory.Space, n int) sim.Lock {
		lck = NewWRLock(sp, n, "wr", nil)
		return lck
	}
	plan := sim.PlanSeq{
		&sim.CrashOnLabel{PID: 3, Label: "wr:fas", After: true},
		&sim.CrashOnLabel{PID: 6, Label: "wr:fas", After: true},
	}
	maxFrag := 0
	crashes := 0
	cfg := sim.Config{
		N: 8, Model: memory.CC, Requests: 2, Seed: 21, Plan: plan, CSOps: 6,
		OnEvent: func(ev sim.Event, a *memory.Arena) {
			if ev.Kind == sim.EvCrash {
				crashes++
			}
			if ev.Kind == sim.EvCSEnter || ev.Kind == sim.EvCrash {
				qs := lck.SubQueues(a)
				if len(qs) > maxFrag {
					maxFrag = len(qs)
				}
				if len(qs) > 1+crashes {
					t.Errorf("%d sub-queues with only %d unsafe failures", len(qs), crashes)
				}
			}
		},
	}
	res := mustRun(t, cfg, factory)
	if res.CrashCount() != 2 {
		t.Fatalf("%d crashes, want 2", res.CrashCount())
	}
	if got := len(res.Requests); got != 16 {
		t.Fatalf("%d requests satisfied, want 16 (starvation?)", got)
	}
	if maxFrag < 2 {
		t.Fatalf("queue never fragmented (max %d sub-queues), expected ≥ 2 after unsafe failures", maxFrag)
	}
}

func TestWRLockResponsiveOverlap(t *testing.T) {
	// Theorem 4.2: k+1 simultaneous CS occupants require ≥ k unsafe
	// failures, so overlap can never exceed crashes+1.
	for seed := int64(0); seed < 8; seed++ {
		plan := &sim.RandomFailures{Rate: 0.02, MaxTotal: 6, DuringPassage: true}
		res := mustRun(t, sim.Config{N: 8, Model: memory.DSM, Requests: 3, Seed: seed, Plan: plan}, wrFactory("wr"))
		if res.MaxCSOverlap > res.CrashCount()+1 {
			t.Fatalf("seed %d: overlap %d with %d failures (responsiveness violated)",
				seed, res.MaxCSOverlap, res.CrashCount())
		}
		if got, want := len(res.Requests), 3*8; got != want {
			t.Fatalf("seed %d: %d requests satisfied, want %d", seed, got, want)
		}
	}
}

func TestWRLockStarvationFreedomUnderHeavyFailures(t *testing.T) {
	// Every process crashes several times; all requests must still be
	// satisfied (Theorem 4.3).
	plan := &sim.RandomFailures{Rate: 0.01, MaxPerProcess: 3, DuringPassage: true}
	res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 4, Seed: 33, Plan: plan, MaxSteps: 5_000_000}, wrFactory("wr"))
	if got := len(res.Requests); got != 24 {
		t.Fatalf("%d requests satisfied, want 24", got)
	}
	if res.CrashCount() == 0 {
		t.Fatal("plan injected no failures; test is vacuous")
	}
}

func TestWRLockBoundedRecoveryAndExit(t *testing.T) {
	// BR/BE (Theorem 4.6): Recover and Exit contain no unbounded loops.
	// Run a direct port-level session and count instructions.
	a := memory.NewArena(memory.DSM, 2)
	l := NewWRLock(a, 2, "wr", nil)
	p := a.Port(0, nil)

	before := a.Ops(0)
	l.Recover(p)
	recoverOps := a.Ops(0) - before
	if recoverOps > 10 {
		t.Fatalf("Recover took %d ops, want bounded", recoverOps)
	}
	l.Enter(p)
	before = a.Ops(0)
	l.Exit(p)
	exitOps := a.Ops(0) - before
	if exitOps > 12 {
		t.Fatalf("Exit took %d ops, want bounded", exitOps)
	}
}

func TestWRLockUncontendedSession(t *testing.T) {
	// A single process acquires and releases repeatedly through direct
	// port calls; node allocation keeps the queue consistent.
	a := memory.NewArena(memory.CC, 1)
	l := NewWRLock(a, 1, "wr", nil)
	p := a.Port(0, nil)
	for i := 0; i < 5; i++ {
		l.Recover(p)
		l.Enter(p)
		qs := l.SubQueues(a)
		if len(qs) != 1 || len(qs[0].Owners) != 1 || qs[0].Owners[0] != 0 {
			t.Fatalf("iteration %d: sub-queues = %+v", i, qs)
		}
		if !qs[0].AtTail {
			t.Fatalf("iteration %d: holder's queue not at tail", i)
		}
		l.Exit(p)
		if qs := l.SubQueues(a); len(qs) != 0 {
			t.Fatalf("iteration %d: %d sub-queues after exit", i, len(qs))
		}
	}
}

func TestWRLockAccessors(t *testing.T) {
	a := memory.NewArena(memory.CC, 2)
	l := NewWRLock(a, 2, "filter7", nil)
	if l.Name() != "filter7" {
		t.Fatalf("Name = %q", l.Name())
	}
	if l.FASLabel() != "filter7:fas" {
		t.Fatalf("FASLabel = %q", l.FASLabel())
	}
}

func TestWRLockConstructorValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewWRLock(a, 0, "x", nil)
}

package core

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/yalock"
)

// RecoverableLock is a (strongly or weakly) recoverable mutual exclusion
// algorithm following the paper's execution model. It is structurally
// identical to sim.Lock so locks flow freely between the framework and the
// simulator.
type RecoverableLock interface {
	Recover(p memory.Port)
	Enter(p memory.Port)
	Exit(p memory.Port)
}

// Path types stored in type[i]. Fast is the zero value, matching the
// paper's initialization (type[j] ← FAST).
const (
	pathFast memory.Word = iota
	pathSlow
)

// SALock is the semi-adaptive framework lock of Section 5.1 (Algorithm 3,
// Figure 2). A process first acquires the weakly recoverable filter lock,
// then navigates the splitter: the fast path leads directly to the Left
// port of the arbitrator; losers commit to the slow path, acquire the
// core lock, and enter the arbitrator from the Right.
//
// With a strongly recoverable core lock of worst-case RMR complexity
// T(n), SALock is strongly recoverable with O(1) RMRs per failure-free
// passage and O(T(n)) with failures (Theorems 5.5, 5.6).
type SALock struct {
	n      int
	name   string
	filter *WRLock
	split  *Splitter
	core   RecoverableLock
	arb    *yalock.Arbitrator
	typ    []memory.Addr

	slowLabel string
	// slowHook, when set (by BALock's level memoization), runs right
	// after a process commits to the slow path.
	slowHook func(p memory.Port)

	// level is the 1-based BA-Lock level this instance sits at (1 for a
	// standalone SALock); phase, when set, observes pipeline transitions.
	level int
	phase PhaseHook
}

// NewSALock allocates a semi-adaptive lock named name for n processes.
// core must be a strongly recoverable lock (it guards the arbitrator's
// Right port). src supplies nodes to the filter lock; nil selects
// AllocSource.
func NewSALock(sp memory.Space, n int, name string, core RecoverableLock, src NodeSource) *SALock {
	if core == nil {
		panic("core: NewSALock requires a core lock")
	}
	l := &SALock{
		n:         n,
		name:      name,
		filter:    NewWRLock(sp, n, name, src),
		split:     NewNamedSplitter(sp, name),
		core:      core,
		arb:       yalock.New(sp, n),
		typ:       make([]memory.Addr, n),
		slowLabel: name + ":slow",
		level:     1,
	}
	for i := 0; i < n; i++ {
		l.typ[i] = sp.Alloc(1, i)
	}
	return l
}

// Name returns the instance name (also the filter lock's name).
func (l *SALock) Name() string { return l.name }

// Filter exposes the filter lock (for diagnostics and experiments).
func (l *SALock) Filter() *WRLock { return l.filter }

// Core exposes the core lock.
func (l *SALock) Core() RecoverableLock { return l.core }

// Splitter exposes the splitter.
func (l *SALock) Splitter() *Splitter { return l.split }

// SlowLabel returns the label carried by the instruction that commits a
// process to the slow path; harnesses count it to measure escalation.
func (l *SALock) SlowLabel() string { return l.slowLabel }

// SetPhaseHook installs h (nil removes it) as the observer of this
// instance's pipeline transitions, reported at this lock's level.
func (l *SALock) SetPhaseHook(h PhaseHook) { l.phase = h }

func (l *SALock) enterPhase(pid int, ph PhaseKind) {
	if l.phase != nil {
		l.phase(pid, ph, l.level)
	}
}

func (l *SALock) side(p memory.Port) yalock.Side {
	if p.Read(l.typ[p.PID()]) == pathSlow {
		return yalock.Right
	}
	return yalock.Left
}

// Recover is empty: following Algorithm 3, each component recoverable
// lock runs its Recover segment immediately before its Enter segment.
func (l *SALock) Recover(p memory.Port) {}

// Enter implements the Enter segment of Algorithm 3.
func (l *SALock) Enter(p memory.Port) {
	i := p.PID()

	l.enterPhase(i, PhaseFilter)
	l.filter.Recover(p)
	l.filter.Enter(p)

	l.enterPhase(i, PhaseSplitter)
	if p.Read(l.typ[i]) != pathSlow { // not yet committed to the slow path
		l.split.Try(p) // attempt to take the fast path
	}
	if !l.split.Mine(p) { // unable to take the fast path
		p.Label(l.slowLabel)
		p.Write(l.typ[i], pathSlow) // committed to the slow path
		if l.slowHook != nil {
			l.slowHook(p)
		}
		l.enterPhase(i, PhaseCore)
		l.core.Recover(p)
		l.core.Enter(p)
	} else {
		l.enterPhase(i, PhaseFast)
	}

	l.AcquireArbitrator(p)
}

// AcquireArbitrator runs only the final stage of the Enter segment: the
// arbitrator acquisition from the side the process's path type selects.
// BALock's level-memoized recovery uses it to unwind through levels whose
// filter, splitter and core stages the process still holds from before its
// crash.
func (l *SALock) AcquireArbitrator(p memory.Port) {
	l.enterPhase(p.PID(), PhaseArbitrator)
	side := l.side(p)
	l.arb.Recover(p, side)
	l.arb.Enter(p, side)
}

// Exit implements the Exit segment of Algorithm 3: components are
// released in the reverse order of acquisition.
func (l *SALock) Exit(p memory.Port) {
	i := p.PID()

	l.arb.Exit(p, l.side(p))

	if p.Read(l.typ[i]) == pathSlow {
		l.core.Exit(p)
	} else {
		l.split.Release(p) // the fast path is now empty
	}
	p.Write(l.typ[i], pathFast) // reset the path type to its default

	l.filter.Exit(p)
}

// Abort implements Aborter: it backs the process out of however much of
// the pipeline it holds, in Exit's release order, after its Enter was
// unwound at an instruction boundary (DESIGN §15). Components never
// reached release as no-ops: the arbitrator's Exit returns unless this
// process occupies the side, the splitter is released only when Mine, and
// the filter's Abort handles every state including "never entered".
// Every step is crash-idempotent, so a crash mid-abort is repaired by the
// next passage's normal Recover+Enter (which then re-acquires).
func (l *SALock) Abort(p memory.Port) {
	i := p.PID()

	// The arbitrator releases from the side the path commitment selects;
	// Exit works from ssTrying too (doorway retraction), which is what
	// makes the final pipeline stage abortable without waiting.
	l.arb.Exit(p, l.side(p))

	if p.Read(l.typ[i]) == pathSlow {
		if a, ok := l.core.(Aborter); ok {
			a.Abort(p)
		} else {
			// Non-abortable core: complete the acquisition, then
			// release it (abort degrades to acquire-then-release).
			l.core.Recover(p)
			l.core.Enter(p)
			l.core.Exit(p)
		}
	} else if l.split.Mine(p) {
		// Unlike Exit, the fast path is released only when actually
		// held: an abort can fire before the splitter was won.
		l.split.Release(p)
	}
	p.Write(l.typ[i], pathFast)

	l.filter.Abort(p)
}

// Describe returns a one-line structural description (Figure 2).
func (l *SALock) Describe() string {
	return fmt.Sprintf("%s: filter(WR) → splitter → {fast | core} → arbitrator", l.name)
}

package core

import (
	"testing"

	"rme/internal/grlock"
	"rme/internal/memory"
	"rme/internal/sim"
)

func saFactory(sp memory.Space, n int) sim.Lock {
	return NewSALock(sp, n, "SA", grlock.NewTournament(sp, n), nil)
}

func TestSplitterBasics(t *testing.T) {
	a := memory.NewArena(memory.CC, 3)
	s := NewSplitter(a)
	p0 := a.Port(0, nil)
	p2 := a.Port(2, nil)

	if s.Occupant(a) != -1 {
		t.Fatal("fresh splitter occupied")
	}
	s.Try(p0)
	if !s.Mine(p0) {
		t.Fatal("first Try did not take the fast path")
	}
	s.Try(p2)
	if s.Mine(p2) {
		t.Fatal("splitter admitted two processes to the fast path")
	}
	if s.Occupant(a) != 0 {
		t.Fatalf("occupant = %d, want 0", s.Occupant(a))
	}
	// Try is idempotent for the occupant (crash-retry path).
	s.Try(p0)
	if !s.Mine(p0) {
		t.Fatal("re-Try evicted the occupant")
	}
	s.Release(p0)
	if s.Occupant(a) != -1 {
		t.Fatal("release did not empty the fast path")
	}
	s.Try(p2)
	if !s.Mine(p2) {
		t.Fatal("fast path not reusable after release")
	}
}

func TestSALockFailureFree(t *testing.T) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{1, 2, 4, 8} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 4, Seed: int64(n)}, saFactory)
			if res.MaxCSOverlap != 1 {
				t.Fatalf("[%v n=%d] ME violated: overlap %d", model, n, res.MaxCSOverlap)
			}
			if got := len(res.Requests); got != 4*n {
				t.Fatalf("[%v n=%d] %d requests, want %d", model, n, got, 4*n)
			}
		}
	}
}

func TestSALockConstantRMRsWithoutFailures(t *testing.T) {
	// Theorem 5.6 first half: failure-free passages cost O(1) —
	// independent of n — because every process takes the fast path.
	const bound = 45
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		var prev int64
		for _, n := range []int{2, 8, 32} {
			res := mustRun(t, sim.Config{N: n, Model: model, Requests: 5, Seed: 3}, saFactory)
			s := res.SummarizePassageRMRs(nil)
			if s.Max > bound {
				t.Fatalf("[%v n=%d] max RMRs = %d, want ≤ %d", model, n, s.Max, bound)
			}
			if prev != 0 && s.Max > prev+4 {
				t.Fatalf("[%v] failure-free RMRs grew with n: %d → %d", model, prev, s.Max)
			}
			prev = s.Max
		}
	}
}

func TestSALockNoSlowPathWithoutFailures(t *testing.T) {
	res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 4, Seed: 5, RecordOps: true}, saFactory)
	for _, ev := range res.Events {
		if ev.Kind == sim.EvOp && ev.Op.Label == "SA:slow" {
			t.Fatal("a process took the slow path without any failure")
		}
	}
}

func TestSALockUnsafeFailureDivertsToSlowPath(t *testing.T) {
	// An unsafe failure of the filter lets several processes through; all
	// but one divert to the slow path, and ME of the target lock holds
	// (Theorem 5.1).
	plan := &sim.CrashOnLabel{PID: 1, Label: "SA:fas", After: true}
	res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 3, Seed: 11, Plan: plan, RecordOps: true, CSOps: 4}, saFactory)
	if res.CrashCount() != 1 {
		t.Fatalf("%d crashes, want 1", res.CrashCount())
	}
	if res.MaxCSOverlap != 1 {
		t.Fatalf("ME violated: overlap %d", res.MaxCSOverlap)
	}
	if got := len(res.Requests); got != 18 {
		t.Fatalf("%d requests, want 18", got)
	}
	slow := 0
	for _, ev := range res.Events {
		if ev.Kind == sim.EvOp && ev.Op.Label == "SA:slow" {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("no process took the slow path despite an unsafe failure")
	}
}

func TestSALockCrashSweep(t *testing.T) {
	// Strong recoverability: crash a process at each of a sweep of
	// instruction offsets; ME and progress must survive.
	for _, pid := range []int{0, 2} {
		for at := int64(0); at < 80; at += 2 {
			plan := &sim.CrashAtOp{PID: pid, OpIndex: at}
			res := mustRun(t, sim.Config{N: 4, Model: memory.DSM, Requests: 2, Seed: 13, Plan: plan,
				MaxSteps: 5_000_000}, saFactory)
			if res.MaxCSOverlap != 1 {
				t.Fatalf("pid=%d at=%d: ME violated", pid, at)
			}
			if got := len(res.Requests); got != 8 {
				t.Fatalf("pid=%d at=%d: %d requests, want 8", pid, at, got)
			}
		}
	}
}

func TestSALockRandomCrashes(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		plan := &sim.RandomFailures{Rate: 0.005, MaxTotal: 10, DuringPassage: true}
		res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 3, Seed: seed, Plan: plan,
			MaxSteps: 5_000_000}, saFactory)
		if res.MaxCSOverlap != 1 {
			t.Fatalf("seed=%d: ME violated with %d crashes", seed, res.CrashCount())
		}
		if got := len(res.Requests); got != 18 {
			t.Fatalf("seed=%d: %d requests, want 18", seed, got)
		}
	}
}

func TestSALockCrashInCSReentry(t *testing.T) {
	// BCSR (Theorem 5.3).
	plan := sim.PlanFunc(func(ctx sim.StepCtx) bool {
		return ctx.PID == 2 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 2, Seed: 3, Plan: plan}, saFactory)
	crashSeq := res.Crashes[0].Seq
	for _, ev := range res.Events {
		if ev.Seq > crashSeq && ev.Kind == sim.EvCSEnter {
			if ev.PID != 2 {
				t.Fatalf("process %d entered CS before crashed holder re-entered", ev.PID)
			}
			break
		}
	}
}

func TestSALockAccessors(t *testing.T) {
	a := memory.NewArena(memory.CC, 2)
	l := NewSALock(a, 2, "X", grlock.NewTournament(a, 2), nil)
	if l.Name() != "X" || l.SlowLabel() != "X:slow" {
		t.Fatal("naming broken")
	}
	if l.Filter() == nil || l.Core() == nil || l.Splitter() == nil {
		t.Fatal("component accessors broken")
	}
	if l.Describe() == "" {
		t.Fatal("empty description")
	}
	l.Recover(a.Port(0, nil)) // no-op by construction
}

func TestSALockRequiresCore(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil core")
		}
	}()
	NewSALock(a, 1, "X", nil, nil)
}

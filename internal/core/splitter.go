// rme:sensitive-instructions 0
package core

import "rme/internal/memory"

// Splitter is the biased O(1) path router of Section 5.1: of all processes
// navigating it concurrently (which happens only after an unsafe failure
// of the filter lock), exactly one occupies the fast path; the rest divert
// to the slow path. It is a single word holding the occupant's identifier
// (pid+1) or zero, updated with CAS — a strongly recoverable try-lock.
type Splitter struct {
	owner memory.Addr
	// tryLabel tags the Try CAS ("<name>:try") so metrics harnesses can
	// count splitter attempts; empty for anonymous splitters.
	tryLabel string
}

// NewSplitter allocates an anonymous splitter in sp.
func NewSplitter(sp memory.Space) *Splitter {
	return NewNamedSplitter(sp, "")
}

// NewNamedSplitter allocates a splitter whose Try CAS carries the label
// "<name>:try". SALock names its splitter after itself ("F<k>"), so
// attempt counts attribute to BA-Lock levels.
func NewNamedSplitter(sp memory.Space, name string) *Splitter {
	s := &Splitter{owner: sp.Alloc(1, memory.HomeNone)}
	if name != "" {
		s.tryLabel = name + ":try"
	}
	return s
}

// Try attempts to occupy the fast path (the CAS of Algorithm 3 line
// "CAS(owner, 0, i)"). The caller decides success by a subsequent Mine —
// the CAS outcome itself is deliberately unused so the step is idempotent
// across failures.
func (s *Splitter) Try(p memory.Port) {
	if s.tryLabel != "" {
		p.Label(s.tryLabel)
	}
	p.CAS(s.owner, 0, memory.Word(p.PID()+1)) // rme:nonsensitive(outcome unused; occupancy decided by a later Mine read)
}

// Mine reports whether the calling process currently occupies the fast
// path.
func (s *Splitter) Mine(p memory.Port) bool {
	return p.Read(s.owner) == memory.Word(p.PID()+1)
}

// Release frees the fast path ("owner := 0"). Only the occupant calls it.
func (s *Splitter) Release(p memory.Port) {
	p.Write(s.owner, 0)
}

// Occupant returns the pid currently on the fast path, or -1, from a
// debug snapshot.
func (s *Splitter) Occupant(pk Peeker) int {
	return int(pk.Peek(s.owner)) - 1
}

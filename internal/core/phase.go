package core

// PhaseKind identifies a stage of the SALock pipeline
// filter → splitter → {fast | core} → arbitrator, reported through a
// PhaseHook as a process's passage navigates the lock.
type PhaseKind int

// Pipeline phases, in acquisition order. PhaseFast and PhaseCore are
// mutually exclusive outcomes of the splitter.
const (
	PhaseFilter PhaseKind = iota + 1
	PhaseSplitter
	PhaseFast
	PhaseCore
	PhaseArbitrator
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case PhaseFilter:
		return "filter"
	case PhaseSplitter:
		return "splitter"
	case PhaseFast:
		return "fast"
	case PhaseCore:
		return "core"
	case PhaseArbitrator:
		return "arbitrator"
	}
	return "unknown"
}

// PhaseHook observes pipeline transitions: process pid is entering phase
// ph of the SALock at 1-based BA-Lock level. Hooks are called on the
// process's goroutine, must not issue Port instructions (they observe the
// algorithm, they are not part of it — the flight recorder's tear-freedom
// and zero-RMR arguments rest on this), and must be cheap: they run on
// the failure-free hot path whenever installed.
type PhaseHook func(pid int, ph PhaseKind, level int)

package core

import (
	"fmt"

	"rme/internal/memory"
)

// LockSpec is a reusable recipe for building a BA-Lock: the recursion
// depth plus the base-lock and node-source factories, captured once and
// replayable into any Space. Keyed lock managers hold one spec and
// stamp out a lock per key — first into a sub-sizer to measure the
// region footprint, then into each carved sub-arena — relying on the
// deterministic allocator to reproduce the measured layout every time.
type LockSpec struct {
	// Levels is the recursion depth m (at least 1).
	Levels int
	// Base constructs the strongly recoverable base lock.
	Base BaseFactory
	// Source constructs per-level node sources; nil selects AllocSource.
	Source SourceFactory
	// Memo enables the Section 7.3 last-known-level optimization.
	Memo bool
}

// Build constructs a BA-Lock for n processes from the spec inside sp.
func (s LockSpec) Build(sp memory.Space, n int) *BALock {
	if s.Levels < 1 {
		panic(fmt.Sprintf("core: LockSpec levels = %d", s.Levels))
	}
	if s.Memo {
		return NewBALockWithMemo(sp, n, s.Levels, s.Base, s.Source)
	}
	return NewBALock(sp, n, s.Levels, s.Base, s.Source)
}

// rme:sensitive-instructions 1 — the FAS on tail (Definition 3.3). The
// abort back-out (DESIGN §15) adds two RMWs — the tail-detach CAS and the
// wait-free next marker CAS of the abandon dance — but both are the Exit
// segment's own idempotent instructions re-used under stateAborted, so the
// inventory is unchanged.
package core

import (
	"fmt"

	"rme/internal/memory"
)

// WRLock is the weakly recoverable MCS queue lock of Section 4
// (Algorithm 2). It extends the bounded-exit MCS lock of Dvir and
// Taubenfeld with crash recovery:
//
//   - per-process state (state, mine, pred) lives in shared memory and is
//     advanced only at the end of idempotent blocks, so re-executing a
//     block after a crash is harmless;
//   - the outcomes of the CAS instructions on next fields and on tail are
//     never used — the fields are re-read instead — making those steps
//     idempotent;
//   - the only sensitive instruction (Definition 3.3) is the FAS on tail:
//     a crash between the FAS and persisting its result into pred[i]
//     strands the process's node at the head of a new sub-queue. Recover
//     detects this (pred[i] still equals mine[i]), relinquishes the node
//     via the wait-free exit, and retries with a fresh node.
//
// Every passage — Recover, Enter and Exit together — performs O(1) RMRs
// under both the CC and DSM models, regardless of failures (Theorem 4.7).
type WRLock struct {
	n    int
	name string

	tail  memory.Addr
	state []memory.Addr
	mine  []memory.Addr
	pred  []memory.Addr

	src          NodeSource
	fasLabel     string
	handoffLabel string
	abandonLabel string
}

// NewWRLock allocates a weakly recoverable lock for n processes in sp.
// name distinguishes instances in instruction labels (the sensitive FAS is
// labeled "<name>:fas", which failure plans use to target unsafe
// failures). src supplies queue nodes; nil selects AllocSource.
func NewWRLock(sp memory.Space, n int, name string, src NodeSource) *WRLock {
	if n < 1 {
		panic(fmt.Sprintf("core: NewWRLock n = %d", n))
	}
	if src == nil {
		src = AllocSource{}
	}
	l := &WRLock{
		n:            n,
		name:         name,
		tail:         sp.Alloc(1, memory.HomeNone),
		state:        make([]memory.Addr, n),
		mine:         make([]memory.Addr, n),
		pred:         make([]memory.Addr, n),
		src:          src,
		fasLabel:     name + ":fas",
		handoffLabel: name + ":handoff",
		abandonLabel: name + ":abandon",
	}
	for i := 0; i < n; i++ {
		// Per-process words live in the process's own memory module so
		// that reading one's own state is local under DSM.
		l.state[i] = sp.Alloc(1, i)
		l.mine[i] = sp.Alloc(1, i)
		l.pred[i] = sp.Alloc(1, i)
	}
	return l
}

// Name returns the instance name.
func (l *WRLock) Name() string { return l.name }

// FASLabel returns the label carried by the sensitive FAS instruction.
func (l *WRLock) FASLabel() string { return l.fasLabel }

func locked(node memory.Addr) memory.Addr { return node + offLocked }
func next(node memory.Addr) memory.Addr   { return node + offNext }

// Recover implements the Recover segment of Algorithm 2. It runs a
// bounded number of steps (BR property, Theorem 4.6).
func (l *WRLock) Recover(p memory.Port) {
	i := p.PID()
	switch p.Read(l.state[i]) {
	case stateTrying:
		if p.Read(l.pred[i]) == p.Read(l.mine[i]) {
			// May have failed while performing the FAS: the result
			// was never persisted, so the predecessor is unknown.
			// Abort the attempt (relinquish the node).
			l.Exit(p)
		}
	case stateLeaving:
		// Finish the interrupted Exit segment.
		l.Exit(p)
	case stateAborted:
		// Finish an interrupted abort back-out (DESIGN §15): every step
		// of the abandon dance is idempotent, so re-running it from the
		// top repairs a crash at any boundary inside it.
		l.finishAbandon(p)
	}
	if p.Read(l.state[i]) == stateFree {
		p.Write(l.mine[i], memory.FromAddr(memory.Nil))
		p.Write(l.state[i], stateInitializing)
	}
}

// Enter implements the Enter segment of Algorithm 2.
func (l *WRLock) Enter(p memory.Port) {
	i := p.PID()
	if p.Read(l.state[i]) == stateInitializing {
		if memory.AsAddr(p.Read(l.mine[i])) == memory.Nil {
			node := l.src.NewNode(p)
			p.Write(l.mine[i], memory.FromAddr(node))
		}
		node := memory.AsAddr(p.Read(l.mine[i]))
		p.Write(next(node), memory.FromAddr(memory.Nil))
		p.Write(locked(node), memory.Bool(true))
		// Setting pred[i] = mine[i] lets Recover detect a failure
		// during the FAS step below.
		p.Write(l.pred[i], memory.FromAddr(node))
		p.Write(l.state[i], stateTrying)
	}

	if p.Read(l.state[i]) == stateTrying {
		node := memory.AsAddr(p.Read(l.mine[i]))
		if memory.AsAddr(p.Read(l.pred[i])) == node {
			// Append my node to the queue. This FAS is the single
			// sensitive instruction of the algorithm.
			p.Label(l.fasLabel)
			temp := p.FAS(l.tail, memory.FromAddr(node)) // rme:sensitive
			// Persist the result of the FAS.
			p.Write(l.pred[i], temp)
		}

		pred := memory.AsAddr(p.Read(l.pred[i]))
		if pred != memory.Nil {
			// Create the link to the predecessor. The outcome of the
			// CAS is deliberately ignored; the field is re-read so
			// the step is idempotent across failures.
			p.CAS(next(pred), memory.FromAddr(memory.Nil), memory.FromAddr(node)) // rme:nonsensitive(outcome ignored and field re-read; idempotent across crashes)
			if memory.AsAddr(p.Read(next(pred))) == node {
				// Wait for the predecessor to complete.
				for memory.AsBool(p.Read(locked(node))) {
					p.Pause()
				}
			}
			// Otherwise next(pred) holds the predecessor's own
			// address: the lock was released wait-free and is ours.
		}
		p.Write(l.state[i], stateInCS)
	}
}

// Exit implements the Exit segment of Algorithm 2. It runs a bounded
// number of steps (BE property, Theorem 4.6).
func (l *WRLock) Exit(p memory.Port) {
	i := p.PID()
	p.Write(l.state[i], stateLeaving)
	node := memory.AsAddr(p.Read(l.mine[i]))

	// Remove my node from the queue if it has no successor. The outcome
	// is ignored (idempotent; see Section 4.3).
	p.CAS(l.tail, memory.FromAddr(node), memory.FromAddr(memory.Nil)) // rme:nonsensitive(outcome ignored; repeating the CAS after a crash is a no-op)
	// May have a successor: mark the next field with my own address so a
	// late-linking successor learns the lock is free (wait-free signal).
	p.CAS(next(node), memory.FromAddr(memory.Nil), memory.FromAddr(node)) // rme:nonsensitive(wait-free exit signal; succeeds at most once and re-running it is a no-op)

	if nxt := memory.AsAddr(p.Read(next(node))); nxt != node {
		// The link was already created; tell the successor to stop
		// spinning.
		p.Label(l.handoffLabel)
		p.Write(locked(nxt), memory.Bool(false))
	}

	l.src.Retire(p)
	p.Write(l.state[i], stateFree)
}

// Abort implements Aborter: it backs the process out of the queue after
// its Enter (or Recover) was unwound at an instruction boundary
// (DESIGN §15). The cases mirror Recover's:
//
//   - before the FAS, or with the FAS outcome unpersisted, the node is
//     relinquished exactly like Recover's crash-relinquish (Exit);
//   - queued behind a predecessor, the process abandons mid-queue: it
//     persists stateAborted, detaches the tail if it is last, plants the
//     wait-free marker, hands the filter token to an already-linked
//     successor (the queue stays linked for successors), and retires its
//     node — the predecessor's pending handoff write against it is made
//     harmless by the reclamation pool's epoch delay (see finishAbandon);
//   - holding or leaving the lock, a normal Exit releases it.
//
// Every step is one the next Recover can finish, so a crash at any point
// during Abort recovers cleanly. Like an unsafe failure, a mid-queue
// abandon may briefly leave two filter winners; the framework above the
// filter (splitter, core, arbitrator) preserves mutual exclusion exactly
// as it does after crash-induced queue fragmentation.
func (l *WRLock) Abort(p memory.Port) {
	i := p.PID()
	switch p.Read(l.state[i]) {
	case stateFree, stateInitializing:
		// Nothing is queued: the node (if any) was never shared, and the
		// next Enter reuses or reinitializes it idempotently.
		return
	case stateTrying:
		node := memory.AsAddr(p.Read(l.mine[i]))
		pred := memory.AsAddr(p.Read(l.pred[i]))
		if pred == node || pred == memory.Nil || !memory.AsBool(p.Read(locked(node))) {
			// FAS undecided (relinquish like Recover), queue was empty
			// (the lock is ours), or the handoff already arrived: a
			// plain Exit backs out without touching anyone else's state.
			l.Exit(p)
			return
		}
		// Queued behind a live predecessor: abandon mid-queue. Persist
		// the abort before mutating the queue so a crash inside the
		// dance resumes it from Recover.
		p.Write(l.state[i], stateAborted)
		l.finishAbandon(p)
	case stateInCS, stateLeaving:
		l.Exit(p)
	case stateAborted:
		l.finishAbandon(p)
	}
}

// finishAbandon runs the abandon dance from persisted state (state[i] ==
// stateAborted): the Exit segment's own idempotent instruction sequence,
// ending in an ordinary retire. The abandoned predecessor may still owe
// the node a handoff write (locked ← false), but that stale reference is
// precisely the situation the paper's reclamation algorithm (Section 7.2,
// Algorithm 4) is built for: a slot is reused only after a full epoch
// scan that started after the retire, and that scan waits for every
// request in flight at its start — including the predecessor's hold,
// whose Exit lands the handoff before its own retire. Retiring eagerly
// also keeps the pool live: a deferred retire would leave this process's
// in-counter ahead of its out-counter, and if it never returned, every
// other process's epoch scan would eventually wait on it forever.
func (l *WRLock) finishAbandon(p memory.Port) {
	i := p.PID()
	node := memory.AsAddr(p.Read(l.mine[i]))
	if node == memory.Nil {
		// A previous run of the dance already retired the node and was
		// interrupted between clearing mine and the final state write.
		p.Write(l.state[i], stateFree)
		return
	}
	// Detach from the tail if we are last (idempotent, outcome ignored).
	p.CAS(l.tail, memory.FromAddr(node), memory.FromAddr(memory.Nil)) // rme:nonsensitive(outcome ignored; repeating the detach after a crash is a no-op)
	// Plant the wait-free marker so a successor that has not linked yet
	// learns the head of its fragment is gone.
	p.CAS(next(node), memory.FromAddr(memory.Nil), memory.FromAddr(node)) // rme:nonsensitive(wait-free abandon signal; succeeds at most once and re-running it is a no-op)
	if nxt := memory.AsAddr(p.Read(next(node))); nxt != node {
		// A successor is linked: forward the filter token so the queue
		// behind us keeps moving without waiting for our predecessor.
		p.Label(l.abandonLabel)
		p.Write(locked(nxt), memory.Bool(false))
	}
	// Retire is idempotent (a crash anywhere in the dance re-runs it as a
	// no-op), and the epoch delay above makes the predecessor's pending
	// handoff write against the retired node harmless.
	l.src.Retire(p)
	p.Write(l.mine[i], memory.FromAddr(memory.Nil))
	p.Write(l.state[i], stateFree)
}

// AbandonLabel returns the label carried by the abandon dance's early
// handoff write ("<name>:abandon"); observability layers count it to
// distinguish abort handoffs from exit handoffs.
func (l *WRLock) AbandonLabel() string { return l.abandonLabel }

// SubQueue describes one fragment of the request queue, reconstructed from
// shared memory for diagnostics (Figure 1). Owners lists the processes
// owning the chain's nodes in queue order; AtTail reports whether the
// global tail pointer points into this fragment.
type SubQueue struct {
	Owners []int
	AtTail bool
}

// Peeker reads shared memory without side effects (satisfied by
// *memory.Arena).
type Peeker interface {
	Peek(a memory.Addr) memory.Word
}

// SubQueues reconstructs the current sub-queue structure from shared
// memory, exactly as the paper's Proposition 4.1 argues is possible: each
// in-flight process contributes its node (mine) and its persisted
// predecessor (pred), and explicit next links plus implicit pred links are
// stitched into chains. Fragmentation (more than one sub-queue) appears
// only after unsafe failures.
func (l *WRLock) SubQueues(pk Peeker) []SubQueue {
	type info struct {
		owner int
		prev  memory.Addr // predecessor node (explicit or implicit), Nil if head
	}
	tail := memory.AsAddr(pk.Peek(l.tail))
	nodes := make(map[memory.Addr]*info, l.n)
	for j := 0; j < l.n; j++ {
		st := pk.Peek(l.state[j])
		if st != stateTrying && st != stateInCS && st != stateLeaving {
			continue
		}
		node := memory.AsAddr(pk.Peek(l.mine[j]))
		if node == memory.Nil {
			continue
		}
		// A node is part of the queue only once its FAS has executed:
		// either the owner persisted its predecessor (pred != mine) or
		// the tail still points at the node (FAS done, result lost).
		if memory.AsAddr(pk.Peek(l.pred[j])) == node && tail != node {
			continue
		}
		nodes[node] = &info{owner: j, prev: memory.Nil}
	}
	// Resolve predecessor links: explicit (pred's next == node) or
	// implicit (the persisted pred[j] of a process that has performed
	// its FAS).
	for node, inf := range nodes {
		pr := memory.AsAddr(pk.Peek(l.pred[inf.owner]))
		if pr == memory.Nil || pr == node || memory.AsAddr(pk.Peek(l.mine[inf.owner])) != node {
			continue
		}
		if _, live := nodes[pr]; live {
			inf.prev = pr
		}
	}
	// Build successor map from both explicit next fields and resolved
	// prev links.
	succ := make(map[memory.Addr]memory.Addr, len(nodes))
	hasPred := make(map[memory.Addr]bool, len(nodes))
	for node, inf := range nodes {
		if inf.prev != memory.Nil {
			succ[inf.prev] = node
			hasPred[node] = true
		}
	}
	for node := range nodes {
		nx := memory.AsAddr(pk.Peek(next(node)))
		if nx != memory.Nil && nx != node {
			if _, live := nodes[nx]; live {
				succ[node] = nx
				hasPred[nx] = true
			}
		}
	}
	var out []SubQueue
	for j := 0; j < l.n; j++ { // deterministic order: heads by owner pid
		node := memory.AsAddr(pk.Peek(l.mine[j]))
		inf, ok := nodes[node]
		if !ok || inf.owner != j || hasPred[node] {
			continue
		}
		q := SubQueue{}
		for cur := node; cur != memory.Nil; cur = succ[cur] {
			q.Owners = append(q.Owners, nodes[cur].owner)
			if cur == tail {
				q.AtTail = true
			}
			if succ[cur] == cur {
				break
			}
		}
		out = append(out, q)
	}
	return out
}

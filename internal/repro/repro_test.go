package repro

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
)

// tasLock is a correct strongly recoverable test-and-set lock; runs on it
// record passing artifacts (Property == "").
type tasLock struct{ flag memory.Addr }

func newTAS(sp memory.Space, n int) sim.Lock {
	return &tasLock{flag: sp.Alloc(1, memory.HomeNone)}
}

func (l *tasLock) Recover(p memory.Port) {}

func (l *tasLock) Enter(p memory.Port) {
	me := uint64(p.PID()) + 1
	if p.Read(l.flag) == me {
		return
	}
	for !p.CAS(l.flag, 0, me) {
		p.Pause()
	}
}

func (l *tasLock) Exit(p memory.Port) {
	p.CAS(l.flag, uint64(p.PID())+1, 0)
}

// brokenLock performs no synchronization: the seeded violation every
// record → shrink → replay test drives through the pipeline.
type brokenLock struct{ w memory.Addr }

func newBroken(sp memory.Space, n int) sim.Lock {
	return &brokenLock{w: sp.Alloc(1, memory.HomeNone)}
}

func (l *brokenLock) Recover(p memory.Port) {}
func (l *brokenLock) Enter(p memory.Port)   { p.Read(l.w) }
func (l *brokenLock) Exit(p memory.Port)    { p.Read(l.w) }

func brokenSpec() RunSpec {
	return RunSpec{
		Lock:     "fixture-broken",
		Strength: StrengthStrong,
		Config: sim.Config{N: 4, Model: memory.CC, Requests: 3, Seed: 42,
			CSOps: 2, MaxSteps: 1 << 20,
			Plan: &sim.RandomFailures{Rate: 0.01, MaxTotal: 3, DuringPassage: true}},
		Note: "seeded mutual-exclusion violation fixture",
	}
}

// TestRecordShrinkReplayEndToEnd is the acceptance pipeline: a seeded
// violation is recorded, shrunk strictly smaller, serialized, re-read and
// replayed deterministically to the same verdict.
func TestRecordShrinkReplayEndToEnd(t *testing.T) {
	art, res, err := Record(brokenSpec(), newBroken)
	if err != nil {
		t.Fatal(err)
	}
	if art.Property != check.PropMutualExclusion {
		t.Fatalf("recorded property %q, want %q", art.Property, check.PropMutualExclusion)
	}
	if art.Violation == "" {
		t.Fatal("artifact carries no violation message")
	}
	if int64(len(art.Decisions)) != res.Steps {
		t.Fatalf("%d decisions for %d grants", len(art.Decisions), res.Steps)
	}

	shrunk := Shrink(art, newBroken)
	if shrunk.Cost() >= art.Cost() {
		t.Fatalf("shrink did not reduce cost: %d -> %d", art.Cost(), shrunk.Cost())
	}
	if shrunk.Property != art.Property {
		t.Fatalf("shrink changed property to %q", shrunk.Property)
	}

	path := filepath.Join(t.TempDir(), "repro.json")
	if err := shrunk.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.String() != shrunk.String() || len(loaded.Decisions) != len(shrunk.Decisions) {
		t.Fatalf("round trip changed artifact: %s vs %s", loaded, shrunk)
	}

	rr, err := Replay(loaded, newBroken)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Reproduced(loaded) {
		t.Fatalf("replay observed %q, artifact records %q", rr.Property, loaded.Property)
	}

	// Replaying twice is bit-exact.
	rr2, err := Replay(loaded, newBroken)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Result.Steps != rr2.Result.Steps || rr.Result.CrashCount() != rr2.Result.CrashCount() {
		t.Fatal("second replay diverged")
	}
}

// TestReplayBitExactAgainstRecording: an unshrunk artifact replays the
// recorded run exactly, crashes included.
func TestReplayBitExactAgainstRecording(t *testing.T) {
	spec := brokenSpec()
	spec.Config.RecordOps = true
	art, res, err := Record(spec, newBroken)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(art, newBroken)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Result.Steps != res.Steps || rr.Result.TotalRMRs != res.TotalRMRs ||
		rr.Result.CrashCount() != res.CrashCount() ||
		rr.Result.MaxCSOverlap != res.MaxCSOverlap {
		t.Fatalf("replay diverged from recording: steps %d/%d crashes %d/%d",
			rr.Result.Steps, res.Steps, rr.Result.CrashCount(), res.CrashCount())
	}
}

// TestRecordPassingRun: a correct lock records an artifact with no
// property, and Shrink leaves it untouched.
func TestRecordPassingRun(t *testing.T) {
	spec := brokenSpec()
	spec.Lock = "fixture-tas"
	art, _, err := Record(spec, newTAS)
	if err != nil {
		t.Fatal(err)
	}
	if art.Property != "" || art.Violation != "" {
		t.Fatalf("passing run recorded property %q violation %q", art.Property, art.Violation)
	}
	if got := Shrink(art, newTAS); got != art {
		t.Fatal("Shrink modified a passing artifact")
	}
}

func TestDecodeRejectsBadArtifacts(t *testing.T) {
	good, _, err := Record(brokenSpec(), newBroken)
	if err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		f    func(a *Artifact)
		want string
	}{
		{"format", func(a *Artifact) { a.Format = "tarball" }, "not a repro artifact"},
		{"version", func(a *Artifact) { a.Version = Version + 1 }, "unsupported artifact version"},
		{"n", func(a *Artifact) { a.N = 0 }, "invalid process count"},
		{"strength", func(a *Artifact) { a.Strength = "medium" }, "unknown strength"},
		{"model", func(a *Artifact) { a.Model = "TSO" }, "unknown memory model"},
		{"crash-pid", func(a *Artifact) { a.Crashes = []sim.CrashPoint{{PID: a.N, OpIndex: 1}} }, "out of range"},
		{"crash-op", func(a *Artifact) { a.Crashes = []sim.CrashPoint{{PID: 0, OpIndex: -1}} }, "negative crash op index"},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			bad := clone(good)
			m.f(bad)
			var buf bytes.Buffer
			if err := bad.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			_, err := Decode(&buf)
			if err == nil || !strings.Contains(err.Error(), m.want) {
				t.Fatalf("Decode(%s) = %v, want %q", m.name, err, m.want)
			}
		})
	}
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
}

func TestReplayValidates(t *testing.T) {
	if _, err := Replay(&Artifact{Format: "x"}, newTAS); err == nil {
		t.Fatal("Replay accepted an invalid artifact")
	}
}

package repro

import (
	"reflect"
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
)

// labeledCrashLock is a test-and-set lock whose Enter carries the core
// label vocabulary, so replayed metrics snapshots exercise the
// label-derived fields too.
type labeledCrashLock struct{ flag memory.Addr }

func newLabeledCrash(sp memory.Space, n int) sim.Lock {
	return &labeledCrashLock{flag: sp.Alloc(2, memory.HomeNone)}
}

func (l *labeledCrashLock) Recover(p memory.Port) {}

func (l *labeledCrashLock) Enter(p memory.Port) {
	me := uint64(p.PID()) + 1
	if p.Read(l.flag) == me {
		return
	}
	p.Label("F1:fas")
	p.FAS(l.flag+1, me) // rme:nonsensitive(test fixture; scratch word)
	for !p.CAS(l.flag, 0, me) {
		p.Pause()
	}
	if p.PID()%2 == 1 {
		p.Label("F1:slow")
		p.Write(l.flag, me)
	}
}

func (l *labeledCrashLock) Exit(p memory.Port) {
	p.CAS(l.flag, uint64(p.PID())+1, 0)
}

// TestReplayMetricsDeterministic: two replays of the same artifact
// produce byte-identical metrics snapshots — the property that makes
// metrics usable as a regression signal on repro artifacts.
func TestReplayMetricsDeterministic(t *testing.T) {
	spec := RunSpec{
		Lock:     "fixture-labeled",
		Strength: StrengthStrong,
		Config: sim.Config{N: 4, Model: memory.CC, Requests: 3, Seed: 99,
			CSOps: 2, MaxSteps: 1 << 20, RecordOps: true,
			Plan: &sim.RandomFailures{Rate: 0.01, MaxTotal: 4, DuringPassage: true}},
		Note: "metrics determinism fixture",
	}
	art, res, err := Record(spec, newLabeledCrash)
	if err != nil {
		t.Fatal(err)
	}
	recorded := res.MetricsSnapshot(2)
	if recorded.Crashes == 0 {
		t.Fatal("fixture injected no crashes; determinism under failures untested")
	}

	rr1, err := Replay(art, newLabeledCrash)
	if err != nil {
		t.Fatal(err)
	}
	rr2, err := Replay(art, newLabeledCrash)
	if err != nil {
		t.Fatal(err)
	}
	s1 := rr1.Result.MetricsSnapshot(2)
	s2 := rr2.Result.MetricsSnapshot(2)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("replayed snapshots diverge:\n%+v\n%+v", s1, s2)
	}

	// The replay also matches the recording on everything the replay can
	// observe. Replay does not set RecordOps, so the label-derived fields
	// are empty there; compare the op-independent core.
	if s1.Passages != recorded.Passages || s1.Crashes != recorded.Crashes ||
		s1.RMRs != recorded.RMRs || s1.Ops != recorded.Ops {
		t.Fatalf("replayed core diverges from recording:\nreplay   %+v\nrecorded %+v", s1, recorded)
	}
	if !reflect.DeepEqual(s1.RMRHist, recorded.RMRHist) {
		t.Fatal("replayed RMR histogram diverges from recording")
	}
}

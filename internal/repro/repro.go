// Package repro records, replays and shrinks failure reproductions.
//
// A violation found by a randomized campaign (cmd/soak) or a crash-placement
// sweep (cmd/rmesweep) is captured as a versioned, self-contained Artifact:
// the run configuration, the seed, every scheduler decision, and the exact
// crash placements. Because the simulator serializes execution through the
// scheduler and crashes are named by (pid, instruction index), replaying the
// artifact re-executes the run bit-exactly and re-derives the same
// internal/check verdict — "soak printed a seed once" becomes a regression
// corpus entry that cmd/rmesim -repro can re-check forever.
//
// Shrink applies delta debugging over the artifact's dimensions (crash set,
// schedule-decision prefix, process count, requests) while preserving the
// violated property, so the committed repro is the smallest found variant,
// not the original haystack.
package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
)

// Format and Version identify the artifact encoding. Version bumps when
// the JSON schema or replay semantics change; Decode rejects artifacts from
// a newer version. Version 2 added the abort placements dimension (the
// Aborts field); version-1 artifacts decode as abort-free runs.
const (
	Format  = "rme-repro"
	Version = 2
)

// Strength values stored in artifacts, selecting the internal/check
// battery replayed against the result.
const (
	StrengthStrong = "strong"
	StrengthWeak   = "weak"
)

// Artifact is one recorded failure reproduction. It is self-contained: no
// field refers to anything outside the artifact except the lock's registry
// name (resolved by the caller into a sim.Factory).
type Artifact struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	// Lock names the algorithm under test (a workload registry key, or a
	// fixture name for locks supplied directly to Replay).
	Lock string `json:"lock"`
	// Strength selects the check battery: "strong" or "weak".
	Strength string `json:"strength"`
	// BCSRMaxOps is the bound passed to check.Strong (ignored for weak).
	BCSRMaxOps int64 `json:"bcsr_max_ops,omitempty"`

	// Run configuration.
	N        int    `json:"n"`
	Model    string `json:"model"` // "CC" or "DSM"
	Requests int    `json:"requests"`
	CSOps    int    `json:"cs_ops"`
	Seed     int64  `json:"seed"`
	MaxSteps int64  `json:"max_steps"`

	// Decisions is the recorded scheduler stream (index into the sorted
	// ready set, one per grant). Replay beyond the stream falls back to
	// the seeded random scheduler.
	Decisions []int32 `json:"decisions"`
	// Crashes are the deterministic crash placements.
	Crashes []sim.CrashPoint `json:"crashes"`
	// Aborts are the deterministic abort placements (version ≥ 2); they
	// reuse the (pid, op-index) point naming of crashes.
	Aborts []sim.CrashPoint `json:"aborts,omitempty"`

	// Property is the check.Property name this artifact reproduces.
	Property string `json:"property"`
	// Violation is the human-readable message observed when the artifact
	// was recorded (informational; replay re-derives the verdict).
	Violation string `json:"violation,omitempty"`
	// Note carries free-form provenance ("soak seed 17", "sweep p2@14").
	Note string `json:"note,omitempty"`
}

// RunSpec describes a run to record: the configuration (including the
// original, possibly randomized failure plan and scheduler) plus the
// metadata the artifact needs to stay self-contained.
type RunSpec struct {
	Lock       string
	Strength   string // StrengthStrong or StrengthWeak
	BCSRMaxOps int64  // 0 defaults to 1 << 20
	Config     sim.Config
	Note       string
}

func parseModel(s string) (memory.Model, error) {
	switch s {
	case "CC":
		return memory.CC, nil
	case "DSM":
		return memory.DSM, nil
	}
	return 0, fmt.Errorf("repro: unknown memory model %q", s)
}

// battery replays the check battery for the artifact's strength.
func battery(strength string, bcsrMaxOps int64, res *sim.Result, runErr error) (string, error) {
	if runErr != nil {
		return check.PropStarvation, runErr
	}
	if bcsrMaxOps == 0 {
		bcsrMaxOps = 1 << 20
	}
	var err error
	switch strength {
	case StrengthStrong:
		err = check.Strong(res, bcsrMaxOps)
	case StrengthWeak:
		err = check.Weak(res)
	default:
		return "", fmt.Errorf("repro: unknown strength %q", strength)
	}
	return check.Property(err), err
}

// Record re-executes spec.Config while recording every scheduler decision
// and crash placement, then checks the result and captures the verdict.
// Because the recording scheduler delegates to the original one and
// consumes randomness identically, the recorded run reproduces the run the
// caller just observed (given a fresh but identical failure plan in
// spec.Config.Plan).
//
// The returned artifact has Property == "" when the run satisfied every
// property; violating artifacts carry the violated property name.
func Record(spec RunSpec, factory sim.Factory) (*Artifact, *sim.Result, error) {
	cfg := spec.Config
	rec := &sim.RecordSched{Inner: cfg.Sched}
	cfg.Sched = rec
	r, err := sim.New(cfg, factory)
	if err != nil {
		return nil, nil, err
	}
	res, runErr := r.Run()

	prop, verr := battery(spec.Strength, spec.BCSRMaxOps, res, runErr)
	if prop == "" && verr != nil {
		return nil, nil, verr
	}
	a := &Artifact{
		Format:     Format,
		Version:    Version,
		Lock:       spec.Lock,
		Strength:   spec.Strength,
		BCSRMaxOps: spec.BCSRMaxOps,
		N:          res.Config.N,
		Model:      res.Config.Model.String(),
		Requests:   res.Config.Requests,
		CSOps:      res.Config.CSOps,
		Seed:       res.Config.Seed,
		MaxSteps:   res.Config.MaxSteps,
		Decisions:  rec.Decisions,
		Property:   prop,
		Note:       spec.Note,
	}
	if verr != nil {
		a.Violation = verr.Error()
	}
	for _, c := range res.Crashes {
		a.Crashes = append(a.Crashes, sim.CrashPoint{PID: c.PID, OpIndex: c.OpIndex})
	}
	for _, ab := range res.Aborts {
		a.Aborts = append(a.Aborts, sim.CrashPoint{PID: ab.PID, OpIndex: ab.OpIndex})
	}
	return a, res, nil
}

// ReplayResult is the outcome of replaying an artifact.
type ReplayResult struct {
	// Result is the replayed history.
	Result *sim.Result
	// Property is the violated property observed on replay ("" if every
	// property held).
	Property string
	// CheckErr is the violation (or run error) behind Property.
	CheckErr error
}

// Reproduced reports whether the replay observed the same violated
// property the artifact was recorded with.
func (rr *ReplayResult) Reproduced(a *Artifact) bool {
	return a.Property != "" && rr.Property == a.Property
}

// Replay re-executes an artifact through the serialized scheduler: the
// recorded decision stream drives every grant and a CrashSet reproduces
// every crash placement, so an unmodified artifact re-runs bit-exactly.
// The check battery named by the artifact is then re-applied.
func Replay(a *Artifact, factory sim.Factory) (*ReplayResult, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	model, err := parseModel(a.Model)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		N:        a.N,
		Model:    model,
		Requests: a.Requests,
		CSOps:    a.CSOps,
		Seed:     a.Seed,
		MaxSteps: a.MaxSteps,
		Sched:    &sim.ReplaySched{Decisions: a.Decisions},
		Plan: &sim.FaultSet{
			Crashes: sim.CrashSet{Points: append([]sim.CrashPoint{}, a.Crashes...)},
			Aborts:  sim.AbortSet{Points: append([]sim.CrashPoint{}, a.Aborts...)},
		},
	}
	r, err := sim.New(cfg, factory)
	if err != nil {
		return nil, err
	}
	res, runErr := r.Run()
	prop, verr := battery(a.Strength, a.BCSRMaxOps, res, runErr)
	return &ReplayResult{Result: res, Property: prop, CheckErr: verr}, nil
}

// Validate checks an artifact's structural invariants.
func (a *Artifact) Validate() error {
	if a.Format != Format {
		return fmt.Errorf("repro: not a repro artifact (format %q)", a.Format)
	}
	if a.Version < 1 || a.Version > Version {
		return fmt.Errorf("repro: unsupported artifact version %d (this build reads ≤ %d)", a.Version, Version)
	}
	if a.N < 1 {
		return fmt.Errorf("repro: invalid process count %d", a.N)
	}
	if a.Strength != StrengthStrong && a.Strength != StrengthWeak {
		return fmt.Errorf("repro: unknown strength %q", a.Strength)
	}
	if _, err := parseModel(a.Model); err != nil {
		return err
	}
	for _, c := range a.Crashes {
		if c.PID < 0 || c.PID >= a.N {
			return fmt.Errorf("repro: crash point pid %d out of range [0,%d)", c.PID, a.N)
		}
		if c.OpIndex < 0 {
			return fmt.Errorf("repro: negative crash op index %d", c.OpIndex)
		}
	}
	for _, ab := range a.Aborts {
		if ab.PID < 0 || ab.PID >= a.N {
			return fmt.Errorf("repro: abort point pid %d out of range [0,%d)", ab.PID, a.N)
		}
		if ab.OpIndex < 0 {
			return fmt.Errorf("repro: negative abort op index %d", ab.OpIndex)
		}
	}
	return nil
}

// Cost is the shrink objective: a weighted size of the artifact's search
// dimensions. Shrink only accepts strictly cost-decreasing variants.
func (a *Artifact) Cost() int64 {
	return int64(len(a.Decisions)) + 64*int64(len(a.Crashes)) + 64*int64(len(a.Aborts)) +
		4096*int64(a.N) + 1024*int64(a.Requests)
}

// String summarizes the artifact.
func (a *Artifact) String() string {
	return fmt.Sprintf("%s/%s n=%d requests=%d seed=%d crashes=%d aborts=%d decisions=%d property=%s",
		a.Lock, a.Model, a.N, a.Requests, a.Seed, len(a.Crashes), len(a.Aborts), len(a.Decisions), a.Property)
}

// Encode writes the artifact as indented JSON.
func (a *Artifact) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// Decode reads and validates an artifact.
func Decode(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("repro: decoding artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads an artifact from path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

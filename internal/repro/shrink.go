package repro

import "rme/internal/sim"

// Shrink delta-debugs an artifact: it searches for strictly smaller
// variants (fewer crash points, fewer abort points, a shorter
// schedule-decision prefix, fewer processes, fewer requests) whose replay
// still violates the same property,
// and returns the smallest one found. The input artifact is not modified;
// if nothing smaller reproduces, the result is the input itself.
//
// Shrinking is deterministic: candidate order is fixed and each candidate
// is judged by a deterministic replay, so a given artifact always shrinks
// to the same variant.
func Shrink(a *Artifact, factory sim.Factory) *Artifact {
	if a.Property == "" {
		return a
	}
	best := a
	reproduces := func(cand *Artifact) bool {
		rr, err := Replay(cand, factory)
		return err == nil && rr.Property == a.Property
	}

	const maxRounds = 24
	for round := 0; round < maxRounds; round++ {
		improved := false
		for _, gen := range []func(*Artifact) []*Artifact{
			dropCrashCandidates,
			dropAbortCandidates,
			requestCandidates,
			processCandidates,
			decisionCandidates,
		} {
			for _, cand := range gen(best) {
				if cand.Cost() < best.Cost() && reproduces(cand) {
					best = cand
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return best
}

func clone(a *Artifact) *Artifact {
	c := *a
	c.Decisions = append([]int32{}, a.Decisions...)
	c.Crashes = append([]sim.CrashPoint{}, a.Crashes...)
	c.Aborts = append([]sim.CrashPoint{}, a.Aborts...)
	return &c
}

// dropCrashCandidates removes halves first (classic ddmin step), then
// single points.
func dropCrashCandidates(a *Artifact) []*Artifact {
	n := len(a.Crashes)
	if n == 0 {
		return nil
	}
	var out []*Artifact
	if n > 1 {
		half := clone(a)
		half.Crashes = half.Crashes[:n/2]
		out = append(out, half)
		other := clone(a)
		other.Crashes = other.Crashes[n/2:]
		out = append(out, other)
	}
	for i := 0; i < n; i++ {
		c := clone(a)
		c.Crashes = append(c.Crashes[:i], c.Crashes[i+1:]...)
		out = append(out, c)
	}
	return out
}

// dropAbortCandidates mirrors dropCrashCandidates over the abort points.
func dropAbortCandidates(a *Artifact) []*Artifact {
	n := len(a.Aborts)
	if n == 0 {
		return nil
	}
	var out []*Artifact
	if n > 1 {
		half := clone(a)
		half.Aborts = half.Aborts[:n/2]
		out = append(out, half)
		other := clone(a)
		other.Aborts = other.Aborts[n/2:]
		out = append(out, other)
	}
	for i := 0; i < n; i++ {
		c := clone(a)
		c.Aborts = append(c.Aborts[:i], c.Aborts[i+1:]...)
		out = append(out, c)
	}
	return out
}

func requestCandidates(a *Artifact) []*Artifact {
	var out []*Artifact
	for _, r := range []int{1, a.Requests / 2, a.Requests - 1} {
		if r >= 1 && r < a.Requests {
			c := clone(a)
			c.Requests = r
			out = append(out, c)
		}
	}
	return out
}

func processCandidates(a *Artifact) []*Artifact {
	minN := 1
	for _, cp := range a.Crashes {
		if cp.PID+1 > minN {
			minN = cp.PID + 1
		}
	}
	for _, ap := range a.Aborts {
		if ap.PID+1 > minN {
			minN = ap.PID + 1
		}
	}
	var out []*Artifact
	for _, n := range []int{minN, a.N / 2, a.N - 1} {
		if n >= minN && n >= 1 && n < a.N {
			c := clone(a)
			c.N = n
			out = append(out, c)
		}
	}
	return out
}

// decisionCandidates truncates the recorded schedule to a prefix; the
// replay scheduler falls back to the seeded random scheduler beyond it.
func decisionCandidates(a *Artifact) []*Artifact {
	n := len(a.Decisions)
	if n == 0 {
		return nil
	}
	var out []*Artifact
	for _, keep := range []int{0, n / 4, n / 2, 3 * n / 4, n - 1} {
		if keep >= 0 && keep < n {
			c := clone(a)
			c.Decisions = c.Decisions[:keep]
			out = append(out, c)
		}
	}
	return out
}

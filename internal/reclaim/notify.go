package reclaim

import "rme/internal/memory"

// The polling Pool is the paper's Algorithm 4 as written "for the CC
// model": the epoch's wait loop re-reads another process's out-counter,
// which is cached under CC but costs one RMR per poll under DSM. The
// paper notes that "a similar memory reclamation algorithm can be
// implemented for the DSM model using a notification based system"; this
// file is that system.
//
// A waiter that must wait for process j's out-counter to reach a
// threshold T registers the threshold in j's memory module (want[j][i] =
// T) and then spins on a word in its own module (ack[i][j]). Every Retire
// by j — unconditionally, so a crashed retire re-runs the scan — reads
// j's own want row (local under DSM) and acknowledges each satisfied
// registration with a single remote write. The waiter therefore performs
// O(1) RMRs per wait (register, one re-check to close the race with a
// retire that has already happened, local spin) instead of one per poll.
//
// Crash safety follows the usual discipline: registrations and
// acknowledgements are idempotent, stale acknowledgements are absorbed by
// re-checking the condition after every wake-up, and the unconditional
// scan in Retire guarantees a notification even if a previous retire
// crashed between advancing out and scanning.

// NotifyPool is the reclamation pool with DSM-friendly notification-based
// waiting. Allocation, retirement and epoch structure are identical to
// Pool; only the wait discipline differs.
type NotifyPool struct {
	Pool
	want [][]memory.Addr // want[j][i]: threshold i waits on j for (home j)
	ack  [][]memory.Addr // ack[i][j]: j's acknowledgement to i (home i)
}

// NewNotifyPool allocates notification-based reclamation state for n
// processes in sp.
func NewNotifyPool(sp memory.Space, n int) *NotifyPool {
	r := &NotifyPool{Pool: *NewPool(sp, n)}
	r.want = make([][]memory.Addr, n)
	r.ack = make([][]memory.Addr, n)
	for j := 0; j < n; j++ {
		r.want[j] = make([]memory.Addr, n)
		for i := 0; i < n; i++ {
			r.want[j][i] = sp.Alloc(1, j)
		}
	}
	for i := 0; i < n; i++ {
		r.ack[i] = make([]memory.Addr, n)
		for j := 0; j < n; j++ {
			r.ack[i][j] = sp.Alloc(1, i)
		}
	}
	return r
}

// NewNode implements core.NodeSource; see Pool.NewNode.
func (r *NotifyPool) NewNode(p memory.Port) memory.Addr {
	i := p.PID()
	if p.Read(r.in[i]) == p.Read(r.out[i]) {
		r.epochNotify(p)
		p.Write(r.in[i], p.Read(r.in[i])+1)
	}
	slot := int(p.Read(r.out[i])) % (2 * r.n)
	half := int(p.Read(r.poolIdx[i])) & 1
	return r.nodes[i][half][slot]
}

// Retire implements core.NodeSource. Unlike the polling pool it always
// scans this process's registration row, so a retire interrupted between
// the counter bump and the scan still notifies after recovery.
func (r *NotifyPool) Retire(p memory.Port) {
	i := p.PID()
	if p.Read(r.in[i]) != p.Read(r.out[i]) {
		p.Write(r.out[i], p.Read(r.out[i])+1)
	}
	out := p.Read(r.out[i])
	for w := 0; w < r.n; w++ {
		if w == i {
			continue
		}
		t := p.Read(r.want[i][w]) // local read under DSM
		if t != 0 && t <= out {
			p.Write(r.want[i][w], 0)
			p.Write(r.ack[w][i], 1) // one remote write per ready waiter
		}
	}
}

// epochNotify is Pool.epoch with the wait loop replaced by registration
// and a local spin.
func (r *NotifyPool) epochNotify(p memory.Port) {
	i := p.PID()
	if p.Read(r.sw[i]) == swCompleted {
		if p.Read(r.mode[i]) == modeScan {
			idx := int(p.Read(r.index[i]))
			p.Write(r.snapshot[i][idx], p.Read(r.in[idx]))
			if idx < r.n-1 {
				p.Write(r.index[i], memory.Word(idx+1))
			} else {
				p.Write(r.mode[i], modeWait)
			}
		}
		if p.Read(r.mode[i]) == modeWait {
			idx := int(p.Read(r.index[i]))
			r.await(p, idx)
			if idx > 0 {
				p.Write(r.index[i], memory.Word(idx-1))
			} else {
				p.Write(r.sw[i], swStarted)
			}
		}
	}
	if p.Read(r.sw[i]) == swStarted {
		if p.Read(r.poolIdx[i]) == p.Read(r.confirm[i]) {
			p.Write(r.poolIdx[i], 1-p.Read(r.poolIdx[i]))
		}
		p.Write(r.sw[i], swInProgress)
	}
	if p.Read(r.sw[i]) == swInProgress {
		if p.Read(r.poolIdx[i]) != p.Read(r.confirm[i]) {
			p.Write(r.confirm[i], p.Read(r.poolIdx[i]))
		}
		p.Write(r.mode[i], modeScan)
		p.Write(r.sw[i], swCompleted)
	}
}

// await blocks until out[idx] has caught up with the snapshot, spinning
// only on a word in the waiter's own module.
func (r *NotifyPool) await(p memory.Port, idx int) {
	i := p.PID()
	t := p.Read(r.snapshot[i][idx])
	if idx == i || t == 0 {
		return
	}
	// rme:rmw-loop(the want registration re-runs only after a stale ack from an earlier registration, at most once per outstanding retire, so the Write retry is bounded)
	for {
		if p.Read(r.out[idx]) >= t {
			return
		}
		p.Write(r.want[idx][i], t)
		// Close the race with a retire that ran before the
		// registration became visible to it.
		if p.Read(r.out[idx]) >= t {
			p.Write(r.want[idx][i], 0)
			return
		}
		for p.Read(r.ack[i][idx]) == 0 {
			p.Pause()
		}
		p.Write(r.ack[i][idx], 0)
		// A stale acknowledgement from an earlier registration may have
		// woken us; loop to re-check the condition.
	}
}

package reclaim

import (
	"testing"

	"rme/internal/core"
	"rme/internal/memory"
	"rme/internal/sim"
)

func TestNotifyPoolBasics(t *testing.T) {
	a := memory.NewArena(memory.DSM, 3)
	r := NewNotifyPool(a, 3)
	p := a.Port(0, nil)

	n1 := r.NewNode(p)
	n2 := r.NewNode(p)
	if n1 != n2 {
		t.Fatal("NewNode not idempotent")
	}
	r.Retire(p)
	r.Retire(p) // idempotent
	if got := a.Peek(r.out[0]); got != 1 {
		t.Fatalf("out = %d", got)
	}
	if n3 := r.NewNode(p); n3 == n1 {
		t.Fatal("retired node handed out again immediately")
	}
}

func TestNotifyPoolWaitsAndWakes(t *testing.T) {
	// Process 1 holds a node; process 0's epoch must block on it — with
	// a registration and a local spin — until process 1 retires, whose
	// scan must acknowledge and unblock process 0.
	const n = 2
	a := memory.NewArena(memory.DSM, n)
	r := NewNotifyPool(a, n)

	p1 := a.Port(1, nil)
	r.NewNode(p1) // pending request of process 1

	alloc := func() (blocked bool) {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(fuseBlown); !ok {
					panic(e)
				}
				blocked = true
			}
		}()
		gp := a.Port(0, &fuseGate{left: 400})
		r.NewNode(gp)
		r.Retire(gp)
		return false
	}
	blocked := false
	for k := 0; k < 6*n+6 && !blocked; k++ {
		blocked = alloc()
	}
	if !blocked {
		t.Fatal("epoch never waited for the pending request")
	}
	// The waiter registered its threshold in process 1's module.
	if got := a.Peek(r.want[1][0]); got == 0 {
		t.Fatal("no registration recorded")
	}
	// Retire by process 1 scans, clears the registration and acks.
	r.Retire(p1)
	if got := a.Peek(r.want[1][0]); got != 0 {
		t.Fatal("registration not cleared by retire scan")
	}
	if got := a.Peek(r.ack[0][1]); got != 1 {
		t.Fatal("acknowledgement not written")
	}
	// The waiter completes promptly now.
	gp := a.Port(0, &fuseGate{left: 400})
	r.NewNode(gp)
	r.Retire(gp)
}

func TestNotifyPoolLocalSpinUnderDSM(t *testing.T) {
	// While blocked, the waiter must accumulate almost no RMRs: its spin
	// word lives in its own module. Drive the waiter into the blocked
	// state and measure the RMR delta over a long spin.
	const n = 2
	a := memory.NewArena(memory.DSM, n)
	r := NewNotifyPool(a, n)
	p1 := a.Port(1, nil)
	r.NewNode(p1)

	spinGate := &fuseGate{left: 1_000}
	gp := a.Port(0, spinGate)
	before := a.RMRs(0)
	func() {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(fuseBlown); !ok {
					panic(e)
				}
			}
		}()
		for k := 0; k < 3*n+3; k++ {
			r.NewNode(gp)
			r.Retire(gp)
		}
	}()
	rmrs := a.RMRs(0) - before
	// ~1000 instructions executed, the tail of them a blocked spin; the
	// RMR count must stay far below the instruction count (a polling
	// pool would pay ~1 RMR per poll under DSM).
	if rmrs > 200 {
		t.Fatalf("waiter spent %d RMRs over ~1000 instructions; spin is not local", rmrs)
	}
	r.Retire(p1)
}

func wrWithNotifyPool(sp memory.Space, n int) sim.Lock {
	return core.NewWRLock(sp, n, "wr", NewNotifyPool(sp, n))
}

func TestWRLockWithNotifyPoolBoundedSpace(t *testing.T) {
	r, err := sim.New(sim.Config{N: 4, Model: memory.DSM, Requests: 30, Seed: 3}, wrWithNotifyPool)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Arena().Size()
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ArenaWords != before {
		t.Fatalf("arena grew from %d to %d words", before, res.ArenaWords)
	}
	if res.MaxCSOverlap != 1 {
		t.Fatalf("ME violated: overlap %d", res.MaxCSOverlap)
	}
	if got := len(res.Requests); got != 120 {
		t.Fatalf("%d requests, want 120", got)
	}
}

func TestWRLockWithNotifyPoolUnderFailures(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		plan := &sim.RandomFailures{Rate: 0.01, MaxTotal: 6, DuringPassage: true}
		r, err := sim.New(sim.Config{N: 4, Model: memory.DSM, Requests: 12, Seed: seed, Plan: plan,
			MaxSteps: 10_000_000}, wrWithNotifyPool)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(res.Requests); got != 48 {
			t.Fatalf("seed %d: %d requests, want 48", seed, got)
		}
		if res.MaxCSOverlap > res.CrashCount()+1 {
			t.Fatalf("seed %d: overlap %d with %d crashes", seed, res.MaxCSOverlap, res.CrashCount())
		}
	}
}

func TestNotifyPoolCrashAroundRetireScan(t *testing.T) {
	// Crash processes at assorted instruction offsets while using the
	// notify pool; the unconditional retire scan must keep waiters live.
	for at := int64(0); at < 80; at += 4 {
		plan := &sim.CrashAtOp{PID: 1, OpIndex: at}
		r, err := sim.New(sim.Config{N: 3, Model: memory.DSM, Requests: 10, Seed: 9, Plan: plan,
			MaxSteps: 10_000_000}, wrWithNotifyPool)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("at=%d: %v", at, err)
		}
		if got := len(res.Requests); got != 30 {
			t.Fatalf("at=%d: %d requests, want 30", at, got)
		}
	}
}

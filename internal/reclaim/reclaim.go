// rme:sensitive-instructions 0 — read/write only; no FAS or CAS in this file.
//
// Package reclaim implements the paper's memory-reclamation algorithm
// (Section 7.2, Algorithm 4) for the queue nodes of the weakly recoverable
// lock.
//
// A failure can leave other processes holding references to a node long
// after its owner finished with it, so nodes cannot be reused immediately.
// Each process therefore owns two pools (active and reserve) of 2n nodes.
// Allocation walks the active pool; every allocation also advances an
// incremental epoch: the process snapshots the in-counter of one other
// process per allocation, then waits, one process per allocation, for the
// matching out-counter to catch up — proof that every request that was
// in flight when the scan started has finished and dropped its references.
// After a full scan the pools swap. A slot is thus reused only after 4n
// allocations and a completed scan, by which time no process can still
// reference it.
//
// All bookkeeping lives in shared memory; NewNode is idempotent (repeated
// calls return the same node until Retire), which tolerates a crash
// between obtaining a node and persisting the reference — the property
// Algorithm 2 relies on.
package reclaim

import (
	"fmt"

	"rme/internal/core"
	"rme/internal/memory"
)

// Switch states (Algorithm 4). Completed is the zero value, matching the
// paper's initialization.
const (
	swCompleted memory.Word = iota
	swStarted
	swInProgress
)

// Scan modes. Scan is the zero value, matching the paper's initialization.
const (
	modeScan memory.Word = iota
	modeWait
)

const nodeWords = 2 // matches core's queue node layout

// Pool is one lock instance's reclamation state: for every process, two
// pools of 2n nodes plus the epoch bookkeeping of Algorithm 4.
type Pool struct {
	n int

	// nodes[i][h][s] is the address of slot s of half h of process i's
	// pool.
	nodes [][2][]memory.Addr

	in       []memory.Addr // nodes logically allocated by process i
	out      []memory.Addr // nodes logically retired by process i
	sw       []memory.Addr // switch state
	mode     []memory.Addr // scan / wait
	index    []memory.Addr // scan cursor over processes
	poolIdx  []memory.Addr // active half
	confirm  []memory.Addr // confirmed half (for idempotent flips)
	snapshot [][]memory.Addr
}

var _ core.NodeSource = (*Pool)(nil)

// NewPool allocates reclamation state for n processes in sp. It reserves
// 2 pools × 2n nodes × 2 words per process — the O(n²) words per lock
// instance that yield the paper's overall O(n²·T(n)) space bound.
func NewPool(sp memory.Space, n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("reclaim: NewPool n = %d", n))
	}
	r := &Pool{
		n:        n,
		nodes:    make([][2][]memory.Addr, n),
		in:       make([]memory.Addr, n),
		out:      make([]memory.Addr, n),
		sw:       make([]memory.Addr, n),
		mode:     make([]memory.Addr, n),
		index:    make([]memory.Addr, n),
		poolIdx:  make([]memory.Addr, n),
		confirm:  make([]memory.Addr, n),
		snapshot: make([][]memory.Addr, n),
	}
	for i := 0; i < n; i++ {
		for h := 0; h < 2; h++ {
			r.nodes[i][h] = make([]memory.Addr, 2*n)
			for s := 0; s < 2*n; s++ {
				r.nodes[i][h][s] = sp.Alloc(nodeWords, i)
			}
		}
		r.in[i] = sp.Alloc(1, i)
		r.out[i] = sp.Alloc(1, i)
		r.sw[i] = sp.Alloc(1, i)
		r.mode[i] = sp.Alloc(1, i)
		r.index[i] = sp.Alloc(1, i)
		r.poolIdx[i] = sp.Alloc(1, i)
		r.confirm[i] = sp.Alloc(1, i)
		r.snapshot[i] = make([]memory.Addr, n)
		for j := 0; j < n; j++ {
			r.snapshot[i][j] = sp.Alloc(1, i)
		}
	}
	return r
}

// NewNode implements core.NodeSource ("new node()" of Algorithm 4).
// Repeated calls return the same node until Retire is called.
func (r *Pool) NewNode(p memory.Port) memory.Addr {
	i := p.PID()
	if p.Read(r.in[i]) == p.Read(r.out[i]) {
		r.epoch(p)
		p.Write(r.in[i], p.Read(r.in[i])+1)
	}
	slot := int(p.Read(r.out[i])) % (2 * r.n)
	half := int(p.Read(r.poolIdx[i])) & 1
	return r.nodes[i][half][slot]
}

// Retire implements core.NodeSource ("retire node()" of Algorithm 4).
func (r *Pool) Retire(p memory.Port) {
	i := p.PID()
	if p.Read(r.in[i]) != p.Read(r.out[i]) {
		p.Write(r.out[i], p.Read(r.out[i])+1)
	}
}

// epoch advances the incremental scan/wait/flip state machine by one
// allocation's worth of work ("Epoch()" of Algorithm 4). Every step is
// idempotent, so re-execution after a crash is harmless.
func (r *Pool) epoch(p memory.Port) {
	i := p.PID()
	if p.Read(r.sw[i]) == swCompleted {
		if p.Read(r.mode[i]) == modeScan {
			idx := int(p.Read(r.index[i]))
			p.Write(r.snapshot[i][idx], p.Read(r.in[idx]))
			if idx < r.n-1 {
				p.Write(r.index[i], memory.Word(idx+1))
			} else {
				p.Write(r.mode[i], modeWait)
			}
		}
		if p.Read(r.mode[i]) == modeWait {
			idx := int(p.Read(r.index[i]))
			// Wait until the request that was in flight at snapshot
			// time has retired its node.
			for p.Read(r.snapshot[i][idx]) > p.Read(r.out[idx]) {
				p.Pause()
			}
			if idx > 0 {
				p.Write(r.index[i], memory.Word(idx-1))
			} else {
				p.Write(r.sw[i], swStarted)
			}
		}
	}
	if p.Read(r.sw[i]) == swStarted {
		if p.Read(r.poolIdx[i]) == p.Read(r.confirm[i]) {
			p.Write(r.poolIdx[i], 1-p.Read(r.poolIdx[i]))
		}
		p.Write(r.sw[i], swInProgress)
	}
	if p.Read(r.sw[i]) == swInProgress {
		if p.Read(r.poolIdx[i]) != p.Read(r.confirm[i]) {
			p.Write(r.confirm[i], p.Read(r.poolIdx[i]))
		}
		p.Write(r.mode[i], modeScan)
		p.Write(r.sw[i], swCompleted)
	}
}

// Words returns the number of shared-memory words the pool occupies —
// the space-bound figure (O(n²) per lock instance).
func (r *Pool) Words() int {
	perProc := 2*2*r.n*nodeWords + 7 + r.n
	return r.n * perProc
}

// Outstanding reports, from a debug snapshot, how many nodes process i
// has allocated but not retired (0 or 1 under Algorithm 2's single-node
// discipline).
func (r *Pool) Outstanding(pk interface{ Peek(memory.Addr) memory.Word }, i int) int {
	return int(pk.Peek(r.in[i]) - pk.Peek(r.out[i]))
}

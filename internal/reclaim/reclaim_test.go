package reclaim

import (
	"testing"

	"rme/internal/core"
	"rme/internal/memory"
	"rme/internal/sim"
)

func TestNewNodeIdempotent(t *testing.T) {
	a := memory.NewArena(memory.CC, 3)
	r := NewPool(a, 3)
	p := a.Port(0, nil)

	n1 := r.NewNode(p)
	n2 := r.NewNode(p) // crash-retry before Retire: same node
	if n1 != n2 {
		t.Fatalf("NewNode not idempotent: %d then %d", n1, n2)
	}
	if got := r.Outstanding(a, 0); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
	r.Retire(p)
	if got := r.Outstanding(a, 0); got != 0 {
		t.Fatalf("Outstanding after retire = %d, want 0", got)
	}
	n3 := r.NewNode(p)
	if n3 == n1 {
		t.Fatal("next allocation returned the just-retired node")
	}
}

func TestRetireIdempotent(t *testing.T) {
	a := memory.NewArena(memory.CC, 2)
	r := NewPool(a, 2)
	p := a.Port(0, nil)
	r.NewNode(p)
	r.Retire(p)
	r.Retire(p) // crash-retry of Exit: no double retire
	if got := a.Peek(r.out[0]); got != 1 {
		t.Fatalf("out = %d, want 1", got)
	}
	if got := a.Peek(r.in[0]); got != 1 {
		t.Fatalf("in = %d, want 1", got)
	}
}

func TestNodesDistinctWithinWindow(t *testing.T) {
	// Consecutive allocations (with retires) must hand out 2n distinct
	// nodes before any slot can recur, and a recurrence must never be
	// closer than 2n allocations apart.
	const n = 4
	a := memory.NewArena(memory.CC, n)
	r := NewPool(a, n)
	p := a.Port(0, nil)

	seen := map[memory.Addr]int{}
	for k := 0; k < 10*n; k++ {
		node := r.NewNode(p)
		if prev, ok := seen[node]; ok && k-prev < 2*n {
			t.Fatalf("slot %d reused after only %d allocations", node, k-prev)
		}
		seen[node] = k
		r.Retire(p)
	}
}

func TestPoolFlips(t *testing.T) {
	const n = 2
	a := memory.NewArena(memory.CC, n)
	r := NewPool(a, n)
	p := a.Port(0, nil)

	flips := 0
	last := a.Peek(r.poolIdx[0])
	for k := 0; k < 20*n; k++ {
		r.NewNode(p)
		r.Retire(p)
		if cur := a.Peek(r.poolIdx[0]); cur != last {
			flips++
			last = cur
		}
	}
	if flips < 2 {
		t.Fatalf("pool halves flipped %d times over %d allocations, want ≥ 2", flips, 20*n)
	}
}

// fuseGate aborts (panics) after a fixed number of instructions; tests use
// it to prove a call would block without actually blocking the test.
type fuseGate struct{ left int }

type fuseBlown struct{}

func (g *fuseGate) Step(pid int, op memory.OpInfo) {
	g.left--
	if g.left < 0 {
		panic(fuseBlown{})
	}
}

func TestEpochWaitsForPendingRequest(t *testing.T) {
	// Process 1 holds an un-retired node. Once process 0's epoch scan
	// has snapshotted it and reached Wait mode on index 1, process 0's
	// next allocation must spin until process 1 retires.
	const n = 2
	a := memory.NewArena(memory.CC, n)
	r := NewPool(a, n)

	p1 := a.Port(1, nil)
	r.NewNode(p1) // pending request of process 1

	// Drive process 0's allocations with a step fuse: once the scan has
	// snapshotted process 1's pending request and enters Wait mode on
	// it, the allocation spins and the fuse blows.
	alloc := func() (blocked bool) {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(fuseBlown); !ok {
					panic(e)
				}
				blocked = true
			}
		}()
		gp := a.Port(0, &fuseGate{left: 300})
		r.NewNode(gp)
		r.Retire(gp)
		return false
	}
	blocked := false
	for k := 0; k < 6*n+6 && !blocked; k++ {
		blocked = alloc()
	}
	if !blocked {
		t.Fatal("epoch never waited for the pending request")
	}
	if a.Peek(r.snapshot[0][1]) <= a.Peek(r.out[1]) {
		t.Fatal("blocked, but not on process 1's pending request")
	}
	// Still blocked on retry (the wait is real, not transient).
	if !alloc() {
		t.Fatal("epoch stopped waiting while the request is still pending")
	}

	// After process 1 retires, the allocation completes promptly.
	r.Retire(p1)
	gp := a.Port(0, &fuseGate{left: 200})
	r.NewNode(gp)
	r.Retire(gp)
}

func TestWords(t *testing.T) {
	a := memory.NewArena(memory.CC, 4)
	r := NewPool(a, 4)
	if r.Words() <= 0 {
		t.Fatal("non-positive word count")
	}
	// The arena must have allocated at least the pool nodes.
	if a.Size() < 4*2*8*2 {
		t.Fatalf("arena size %d smaller than pool nodes", a.Size())
	}
}

func TestPoolValidation(t *testing.T) {
	a := memory.NewArena(memory.CC, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewPool(a, 0)
}

// wrWithPool builds the weakly recoverable lock over the reclamation pool,
// the combination the paper describes in Section 7.2.
func wrWithPool(sp memory.Space, n int) sim.Lock {
	return core.NewWRLock(sp, n, "wr", NewPool(sp, n))
}

func TestWRLockWithPoolBoundedSpace(t *testing.T) {
	// With reclamation the arena must not grow during the run: all nodes
	// come from the pre-allocated pools.
	r, err := sim.New(sim.Config{N: 4, Model: memory.CC, Requests: 30, Seed: 3}, wrWithPool)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Arena().Size()
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ArenaWords != before {
		t.Fatalf("arena grew from %d to %d words despite reclamation", before, res.ArenaWords)
	}
	if res.MaxCSOverlap != 1 {
		t.Fatalf("ME violated: overlap %d", res.MaxCSOverlap)
	}
	if got := len(res.Requests); got != 120 {
		t.Fatalf("%d requests, want 120", got)
	}
}

func TestWRLockWithPoolUnderFailures(t *testing.T) {
	// Node reuse must stay safe under crashes, including unsafe ones at
	// the FAS (relinquished nodes may be referenced long after abandonment).
	for seed := int64(0); seed < 8; seed++ {
		plan := &sim.RandomFailures{Rate: 0.01, MaxTotal: 6, DuringPassage: true}
		r, err := sim.New(sim.Config{N: 4, Model: memory.DSM, Requests: 12, Seed: seed, Plan: plan,
			MaxSteps: 10_000_000}, wrWithPool)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(res.Requests); got != 48 {
			t.Fatalf("seed %d: %d requests, want 48", seed, got)
		}
		if res.MaxCSOverlap > res.CrashCount()+1 {
			t.Fatalf("seed %d: overlap %d with %d crashes (node corruption?)",
				seed, res.MaxCSOverlap, res.CrashCount())
		}
	}
}

func TestWRLockWithPoolTargetedUnsafeFailures(t *testing.T) {
	plan := sim.PlanSeq{
		&sim.CrashOnLabel{PID: 1, Label: "wr:fas", After: true},
		&sim.CrashOnLabel{PID: 2, Label: "wr:fas", After: true},
	}
	r, err := sim.New(sim.Config{N: 4, Model: memory.CC, Requests: 10, Seed: 5, Plan: plan,
		MaxSteps: 10_000_000}, wrWithPool)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashCount() != 2 {
		t.Fatalf("%d crashes, want 2", res.CrashCount())
	}
	if got := len(res.Requests); got != 40 {
		t.Fatalf("%d requests, want 40", got)
	}
}

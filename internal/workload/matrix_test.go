package workload

import (
	"testing"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
)

// TestCrashMatrix is the repository's heaviest integration test: for every
// recoverable lock in the registry, on both memory models, it crashes a
// process at a sweep of instruction offsets and verifies the lock's full
// property contract each time. It exhaustively exercises recovery at
// every phase of every algorithm.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is expensive; skipped with -short")
	}
	const (
		n        = 4
		requests = 2
		maxAt    = 90
		stride   = 3
	)
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Strength == NonRecoverable {
			continue
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			for _, pid := range []int{0, 2} {
				for at := int64(0); at < maxAt; at += stride {
					plan := &sim.CrashAtOp{PID: pid, OpIndex: at}
					r, err := sim.New(sim.Config{N: n, Model: model, Requests: requests,
						Seed: 29, Plan: plan, MaxSteps: 10_000_000}, spec.New)
					if err != nil {
						t.Fatalf("%s/%v: %v", name, model, err)
					}
					res, err := r.Run()
					if err != nil {
						t.Fatalf("%s/%v pid=%d at=%d: %v", name, model, pid, at, err)
					}
					if got := len(res.Requests); got != n*requests {
						t.Fatalf("%s/%v pid=%d at=%d: %d requests, want %d",
							name, model, pid, at, got, n*requests)
					}
					switch spec.Strength {
					case Strong:
						if err := check.Strong(res, 1<<20); err != nil {
							t.Fatalf("%s/%v pid=%d at=%d: %v", name, model, pid, at, err)
						}
					case Weak:
						if err := check.Weak(res); err != nil {
							t.Fatalf("%s/%v pid=%d at=%d: %v", name, model, pid, at, err)
						}
					}
				}
			}
		}
	}
}

// TestUnsafeMatrix hammers every strong lock with the unsafe-FAS adversary
// across several seeds; mutual exclusion must hold unconditionally.
func TestUnsafeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("unsafe matrix is expensive; skipped with -short")
	}
	for _, name := range []string{"sa", "ba-log", "ba-sublog", "ba-memo", "ba-pool"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 5; seed++ {
			plan := &sim.UnsafeBudget{Total: 6, Rate: 0.3, MaxPerProcess: 1}
			r, err := sim.New(sim.Config{N: 8, Model: memory.CC, Requests: 3, Seed: seed,
				Plan: plan, MaxSteps: 20_000_000, CSOps: 4}, spec.New)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if err := check.Strong(res, 1<<20); err != nil {
				t.Fatalf("%s seed=%d (%d crashes): %v", name, seed, res.CrashCount(), err)
			}
		}
	}
}

// TestSegmentBoundsMatrix verifies bounded recovery and bounded exit for
// every recoverable lock under failures. Exit of the composed locks walks
// the whole structure, so the budget scales with the lock's worst-case
// cost rather than being a single universal constant.
func TestSegmentBoundsMatrix(t *testing.T) {
	bounds := map[string][2]int64{ // {maxRecover, maxExit}
		"wr":         {12, 12},
		"wr-pool":    {24, 24},
		"wr-notify":  {40, 40}, // the retire scan is O(n) instructions
		"bakery":     {8, 8},
		"tournament": {4, 60},
		"arbtree":    {4, 60},
		"sa-bakery":  {4, 120},
		"sa":         {4, 160},
		"ba-log":     {4, 400},
		"ba-sublog":  {4, 400},
		"ba-memo":    {4, 400},
		"ba-pool":    {4, 400},
	}
	for name, b := range bounds {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		plan := &sim.RandomFailures{Rate: 0.005, MaxTotal: 4, DuringPassage: true}
		r, err := sim.New(sim.Config{N: 6, Model: memory.CC, Requests: 3, Seed: 15, Plan: plan,
			RecordOps: true, MaxSteps: 10_000_000}, spec.New)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := check.SegmentBounds(res, b[0], b[1]); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

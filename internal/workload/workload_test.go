package workload

import (
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, name := range []string{"mcs", "mcs-dt", "wr", "wr-pool", "wr-notify", "bakery",
		"tournament", "arbtree", "sa", "sa-bakery", "ba-log", "ba-sublog", "ba-memo", "ba-pool"} {
		s, ok := reg[name]
		if !ok {
			t.Fatalf("missing %q", name)
		}
		if s.Name != name || s.New == nil || s.Paper == "" {
			t.Fatalf("incomplete spec %+v", s)
		}
		if s.Strength != Weak && s.Strength != Strong && s.Strength != NonRecoverable {
			t.Fatalf("%s: bad strength", name)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != len(Registry()) {
		t.Fatal("Names() incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("wr"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestEveryLockRunsCleanly(t *testing.T) {
	// Smoke: every registered lock completes a small contended run with
	// a few failures, on both models.
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			var plan sim.FailurePlan
			if spec.Strength != NonRecoverable {
				plan = &sim.RandomFailures{Rate: 0.005, MaxTotal: 3, DuringPassage: true}
			}
			r, err := sim.New(sim.Config{N: 5, Model: model, Requests: 2, Seed: 4, Plan: plan,
				MaxSteps: 10_000_000}, spec.New)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, model, err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatalf("%s/%v: %v", name, model, err)
			}
			if got := len(res.Requests); got != 10 {
				t.Fatalf("%s/%v: %d requests, want 10", name, model, got)
			}
			if spec.Strength == Strong && res.MaxCSOverlap != 1 {
				t.Fatalf("%s/%v: ME violated", name, model)
			}
		}
	}
}

func TestSlowLabels(t *testing.T) {
	spec, _ := Lookup("ba-log")
	labels := spec.SlowLabels(16)
	if len(labels) != spec.Levels(16) {
		t.Fatalf("labels %v vs levels %d", labels, spec.Levels(16))
	}
	if labels[0] != "F1:slow" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestScenarios(t *testing.T) {
	sc := Scenarios(7)
	if len(sc) != 3 {
		t.Fatalf("%d scenarios", len(sc))
	}
	if sc[0].Plan != nil {
		t.Fatal("first scenario must be failure-free")
	}
	if sc[1].Plan(4) == nil || sc[2].Plan(4) == nil {
		t.Fatal("failure scenarios returned nil plans")
	}
}

func TestUnsafeAtLevelAndBatch(t *testing.T) {
	p := UnsafeAtLevel(2, 3, 1)
	cl, ok := p.(*sim.CrashOnLabel)
	if !ok || cl.Label != "F3:fas" || !cl.After || cl.PID != 2 || cl.Occurrence != 1 {
		t.Fatalf("plan = %+v", p)
	}
	b := Batch(50, []int{1, 2})
	if bc, ok := b.(*sim.BatchCrash); !ok || bc.AtSeq != 50 || len(bc.PIDs) != 2 {
		t.Fatalf("batch = %+v", b)
	}
}

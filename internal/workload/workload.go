// Package workload catalogs the lock implementations and failure
// scenarios that the experiment harness sweeps over. It is the single
// registry both cmd/rmebench and the benchmarks draw from, so every table
// row names its algorithm the same way.
package workload

import (
	"fmt"
	"sort"

	"rme/internal/arbtree"
	"rme/internal/bakery"
	"rme/internal/core"
	"rme/internal/grlock"
	"rme/internal/mcs"
	"rme/internal/memory"
	"rme/internal/reclaim"
	"rme/internal/sim"
)

// Strength classifies a lock's recoverability.
type Strength int

// Lock strengths.
const (
	// NonRecoverable locks tolerate no failures at all; they exist as
	// ablation baselines and must only run under failure-free plans.
	NonRecoverable Strength = iota + 1
	// Weak locks may violate mutual exclusion inside failure consequence
	// intervals (Definition 3.2) but must be responsive.
	Weak
	// Strong locks satisfy mutual exclusion unconditionally.
	Strong
)

// Spec describes one registered lock implementation.
type Spec struct {
	// Name is the registry key (also used in reports).
	Name string
	// Paper identifies the row of Table 1 the lock corresponds to.
	Paper string
	// Strength classifies recoverability.
	Strength Strength
	// New constructs the lock.
	New sim.Factory
	// SlowLabels returns the escalation labels for depth measurements
	// (nil for non-recursive locks).
	SlowLabels func(n int) []string
	// Levels returns the recursion depth for n processes (0 for
	// non-recursive locks).
	Levels func(n int) int
}

func tournamentBase(sp memory.Space, n int) core.RecoverableLock {
	return grlock.NewTournament(sp, n)
}

func arbtreeBase(sp memory.Space, n int) core.RecoverableLock {
	return arbtree.New(sp, n, 0)
}

func poolSource(sp memory.Space, n, level int) core.NodeSource {
	return reclaim.NewPool(sp, n)
}

func slowLabels(levels func(int) int) func(int) []string {
	return func(n int) []string {
		m := levels(n)
		out := make([]string, m)
		for i := range out {
			out[i] = fmt.Sprintf("F%d:slow", i+1)
		}
		return out
	}
}

// Registry returns the lock catalog.
func Registry() map[string]Spec {
	return map[string]Spec{
		"mcs": {
			Name:     "mcs",
			Paper:    "Mellor-Crummey–Scott queue lock (non-recoverable ablation baseline)",
			Strength: NonRecoverable,
			New: func(sp memory.Space, n int) sim.Lock {
				return mcs.New(sp, n)
			},
		},
		"mcs-dt": {
			Name:     "mcs-dt",
			Paper:    "MCS with Dvir–Taubenfeld bounded exit (non-recoverable ablation baseline)",
			Strength: NonRecoverable,
			New: func(sp memory.Space, n int) sim.Lock {
				return mcs.NewBoundedExit(sp, n)
			},
		},
		"wr": {
			Name:     "wr",
			Paper:    "WR-Lock (Section 4, Algorithm 2): weakly recoverable MCS, O(1) everywhere",
			Strength: Weak,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewWRLock(sp, n, "wr", nil)
			},
		},
		"wr-pool": {
			Name:     "wr-pool",
			Paper:    "WR-Lock with Section 7.2 memory reclamation (bounded space)",
			Strength: Weak,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewWRLock(sp, n, "wr", reclaim.NewPool(sp, n))
			},
		},
		"bakery": {
			Name:     "bakery",
			Paper:    "recoverable Lamport bakery: read/write only, non-adaptive, T(n)=Θ(n) (CC)",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return bakery.New(sp, n)
			},
		},
		"sa-bakery": {
			Name:     "sa-bakery",
			Paper:    "SA-Lock over the bakery core: the shape of Golab–Ramaraju §4.2 in Table 1 — O(1)/O(n)/O(n)",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewSALock(sp, n, "F1", bakery.New(sp, n), nil)
			},
			SlowLabels: slowLabels(func(int) int { return 1 }),
			Levels:     func(int) int { return 1 },
		},
		"wr-notify": {
			Name:     "wr-notify",
			Paper:    "WR-Lock with the DSM notification-based reclamation variant (§7.2, last paragraph)",
			Strength: Weak,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewWRLock(sp, n, "wr", reclaim.NewNotifyPool(sp, n))
			},
		},
		"tournament": {
			Name:     "tournament",
			Paper:    "Golab–Ramaraju style tournament of recoverable 2-process locks: non-adaptive, T(n)=O(log n)",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return grlock.NewTournament(sp, n)
			},
		},
		"arbtree": {
			Name:     "arbtree",
			Paper:    "Δ-ary arbitration tree (JJJ shape): non-adaptive, T(n)=O(log n/log log n) (CC)",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return arbtree.New(sp, n, 0)
			},
		},
		"sa": {
			Name:     "sa",
			Paper:    "SA-Lock (Section 5.1, Algorithm 3) over the tournament core: semi-adaptive",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewSALock(sp, n, "F1", grlock.NewTournament(sp, n), nil)
			},
			SlowLabels: slowLabels(func(int) int { return 1 }),
			Levels:     func(int) int { return 1 },
		},
		"ba-log": {
			Name:     "ba-log",
			Paper:    "BA-Lock (Section 5.2) over the tournament base: super-adaptive, O(min{√F, log n})",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewBALock(sp, n, core.DefaultLevels(n), tournamentBase, nil)
			},
			SlowLabels: slowLabels(core.DefaultLevels),
			Levels:     core.DefaultLevels,
		},
		"ba-sublog": {
			Name:     "ba-sublog",
			Paper:    "BA-Lock over the arbitration-tree base: well-bounded super-adaptive, O(min{√F, log n/log log n})",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewBALock(sp, n, core.SubLogLevels(n), arbtreeBase, nil)
			},
			SlowLabels: slowLabels(core.SubLogLevels),
			Levels:     core.SubLogLevels,
		},
		"ba-memo": {
			Name:     "ba-memo",
			Paper:    "BA-Lock with the Section 7.3 last-known-level optimization: super-passage O(F0 + √F)",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewBALockWithMemo(sp, n, core.DefaultLevels(n), tournamentBase, nil)
			},
			SlowLabels: slowLabels(core.DefaultLevels),
			Levels:     core.DefaultLevels,
		},
		"ba-pool": {
			Name:     "ba-pool",
			Paper:    "BA-Lock over the tournament base with reclamation pools at every level (bounded space)",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewBALock(sp, n, core.DefaultLevels(n), tournamentBase, poolSource)
			},
			SlowLabels: slowLabels(core.DefaultLevels),
			Levels:     core.DefaultLevels,
		},
		"ba-sublog-pool": {
			Name:     "ba-sublog-pool",
			Paper:    "BA-Lock over the arbitration-tree base with reclamation pools at every level — the exact recipe of the native rme.New(WithBase(BaseArbTree)) lock",
			Strength: Strong,
			New: func(sp memory.Space, n int) sim.Lock {
				return core.NewBALock(sp, n, core.SubLogLevels(n), arbtreeBase, poolSource)
			},
			SlowLabels: slowLabels(core.SubLogLevels),
			Levels:     core.SubLogLevels,
		},
	}
}

// Names returns the registry keys in sorted order.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the spec for name.
func Lookup(name string) (Spec, error) {
	s, ok := Registry()[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown lock %q (have %v)", name, Names())
	}
	return s, nil
}

// Scenario names a failure-injection pattern for the three columns of
// Table 1.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Plan builds a fresh failure plan for a run over n processes; nil
	// Plans inject nothing.
	Plan func(n int) sim.FailurePlan
}

// Scenarios returns the three Table 1 failure regimes plus targeted and
// batch extras. failures parameterizes the "F failures" column.
func Scenarios(failures int) []Scenario {
	return []Scenario{
		{Name: "no failures", Plan: nil},
		{Name: fmt.Sprintf("%d failures", failures), Plan: func(n int) sim.FailurePlan {
			return &sim.FailureBudget{Total: failures, Rate: 0.02}
		}},
		{Name: "heavy failures", Plan: func(n int) sim.FailurePlan {
			return &sim.RandomFailures{Rate: 0.01, MaxPerProcess: 4, DuringPassage: true}
		}},
	}
}

// UnsafeAtLevel builds a plan that crashes pid immediately after the
// sensitive FAS of the level-k filter ("F<k>:fas") — the paper's unsafe
// failure, used to force escalation deterministically.
func UnsafeAtLevel(pid, level, occurrence int) sim.FailurePlan {
	return &sim.CrashOnLabel{
		PID:        pid,
		Label:      fmt.Sprintf("F%d:fas", level),
		Occurrence: occurrence,
		After:      true,
	}
}

// Batch builds a batch-failure plan (Section 7.1): all pids crash at
// their first instruction after global time atSeq.
func Batch(atSeq int64, pids []int) sim.FailurePlan {
	return &sim.BatchCrash{AtSeq: atSeq, PIDs: pids}
}

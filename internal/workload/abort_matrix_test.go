package workload

import (
	"testing"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/repro"
	"rme/internal/sim"
)

// abortable reports whether a registry lock implements the sim.Aborter
// back-out protocol (probed on a throwaway instance).
func abortable(spec Spec, n int) bool {
	l := spec.New(memory.NewArena(memory.CC, n), n)
	_, ok := l.(sim.Aborter)
	return ok
}

// verify runs the lock's property battery for its declared strength.
func verify(t *testing.T, spec Spec, res *sim.Result, ctx string) {
	t.Helper()
	switch spec.Strength {
	case Strong:
		if err := check.Strong(res, 1<<20); err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
	case Weak:
		if err := check.Weak(res); err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
	}
}

// TestAbortMatrix delivers an abort at a sweep of instruction offsets to
// every abortable lock in the registry, on both memory models, and
// verifies the lock's full property contract each time: the abort backs
// the process out, the process re-acquires, and mutual exclusion,
// satisfaction and BCSR all survive the abandon protocol.
func TestAbortMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("abort matrix is expensive; skipped with -short")
	}
	const (
		n        = 4
		requests = 2
		maxAt    = 60
		stride   = 4
	)
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Strength == NonRecoverable || !abortable(spec, n) {
			continue
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			for _, pid := range []int{0, 2} {
				for at := int64(0); at < maxAt; at += stride {
					plan := &sim.AbortSet{Points: []sim.CrashPoint{{PID: pid, OpIndex: at}}}
					r, err := sim.New(sim.Config{N: n, Model: model, Requests: requests,
						Seed: 29, Plan: plan, MaxSteps: 10_000_000}, spec.New)
					if err != nil {
						t.Fatalf("%s/%v: %v", name, model, err)
					}
					res, err := r.Run()
					if err != nil {
						t.Fatalf("%s/%v pid=%d at=%d: %v", name, model, pid, at, err)
					}
					if got := len(res.Requests); got != n*requests {
						t.Fatalf("%s/%v pid=%d at=%d: %d requests, want %d",
							name, model, pid, at, got, n*requests)
					}
					verify(t, spec, res, name+"/"+model.String())
				}
			}
		}
	}
}

// TestAbortCrashMatrix crashes a process while it is running the back-out
// protocol itself: an abort at offset k followed by a crash a few
// instructions later on the same process. Recovery after a crash
// mid-abandon must still uphold the full contract.
func TestAbortCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("abort×crash matrix is expensive; skipped with -short")
	}
	const (
		n        = 4
		requests = 2
		maxAt    = 48
		stride   = 6
	)
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Strength == NonRecoverable || !abortable(spec, n) {
			continue
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			for at := int64(0); at < maxAt; at += stride {
				for _, d := range []int64{1, 3} {
					plan := &sim.FaultSet{
						Aborts:  sim.AbortSet{Points: []sim.CrashPoint{{PID: 1, OpIndex: at}}},
						Crashes: sim.CrashSet{Points: []sim.CrashPoint{{PID: 1, OpIndex: at + d}}},
					}
					r, err := sim.New(sim.Config{N: n, Model: model, Requests: requests,
						Seed: 31, Plan: plan, MaxSteps: 10_000_000}, spec.New)
					if err != nil {
						t.Fatalf("%s/%v: %v", name, model, err)
					}
					res, err := r.Run()
					if err != nil {
						t.Fatalf("%s/%v at=%d d=%d: %v", name, model, at, d, err)
					}
					verify(t, spec, res, name+"/"+model.String())
				}
			}
		}
	}
}

// TestRandomAbortsMatrix hammers every abortable lock with a randomized
// mix of aborts and crashes across seeds, asserting the contract holds and
// aborts were actually delivered somewhere in the batch.
func TestRandomAbortsMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("random abort matrix is expensive; skipped with -short")
	}
	const (
		n        = 4
		requests = 3
	)
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Strength == NonRecoverable || !abortable(spec, n) {
			continue
		}
		delivered := 0
		for seed := int64(1); seed <= 4; seed++ {
			r, err := sim.New(sim.Config{N: n, Model: memory.CC, Requests: requests,
				Seed: seed, MaxSteps: 10_000_000,
				Plan: sim.PlanSeq{
					&sim.RandomAborts{Rate: 0.02, MaxTotal: 4},
					&sim.RandomFailures{Rate: 0.002, MaxTotal: 2, DuringPassage: true},
				}}, spec.New)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			delivered += res.AbortCount()
			verify(t, spec, res, name)
		}
		if delivered == 0 {
			t.Fatalf("%s: no aborts delivered across seeds", name)
		}
	}
}

// TestArbtreeAbortPrefixRepro replays a checked-in violation artifact
// from the abort campaign that found the tree back-out bug: two aborts
// to one process, no crashes, mutual exclusion broken. The tree's
// port-state words are shared between sibling processes, so Abort must
// release exactly the held leaf-to-root prefix; the original blanket
// Tree.Exit read the sibling's psInCS at the shared root port, replayed
// its release with a stale sequence number, and handed the node to the
// wrong successor. The replay is bit-exact (decision stream + abort
// placements), so this test fails the moment that back-out regresses.
func TestArbtreeAbortPrefixRepro(t *testing.T) {
	art, err := repro.ReadFile("testdata/arbtree_abort_prefix.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Lookup(art.Lock)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := repro.Replay(art, spec.New)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Reproduced(art) {
		t.Fatalf("recorded mutual-exclusion violation reproduced: %v", rr.CheckErr)
	}
	if rr.Property != "" {
		t.Fatalf("replay violated %s: %v", rr.Property, rr.CheckErr)
	}
	if rr.Result.AbortCount() != len(art.Aborts) {
		t.Fatalf("replay delivered %d aborts, artifact has %d", rr.Result.AbortCount(), len(art.Aborts))
	}
}

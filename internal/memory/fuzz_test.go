package memory

import "testing"

// FuzzArenaOps feeds random instruction streams to the simulated arena and
// checks the accounting invariants that every experiment relies on:
// RMRs never exceed instructions, reads return the last written value, and
// crash-induced cache invalidation never affects stored values.
func FuzzArenaOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(2), false)
	f.Add([]byte{9, 9, 9, 0, 0, 0}, uint8(1), true)
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1}, uint8(4), true)

	f.Fuzz(func(t *testing.T, script []byte, nproc uint8, dsm bool) {
		n := int(nproc%8) + 1
		model := CC
		if dsm {
			model = DSM
		}
		a := NewArena(model, n)
		const words = 8
		base := a.Alloc(words, HomeNone)
		local := make([]Addr, n)
		ports := make([]*ArenaPort, n)
		for i := 0; i < n; i++ {
			local[i] = a.Alloc(1, i)
			ports[i] = a.Port(i, nil)
		}

		// Shadow model of memory contents.
		shadow := map[Addr]Word{}
		read := func(p *ArenaPort, addr Addr) {
			if got := p.Read(addr); got != shadow[addr] {
				t.Fatalf("read %d = %d, shadow %d", addr, got, shadow[addr])
			}
		}

		for k, b := range script {
			pid := int(b) % n
			p := ports[pid]
			addr := base + Addr(int(b>>3)%words)
			if b%16 == 0 {
				addr = local[pid]
			}
			v := Word(k + 1)
			switch (b >> 1) % 4 {
			case 0:
				read(p, addr)
			case 1:
				p.Write(addr, v)
				shadow[addr] = v
			case 2:
				if old := p.FAS(addr, v); old != shadow[addr] {
					t.Fatalf("FAS old = %d, shadow %d", old, shadow[addr])
				}
				shadow[addr] = v
			case 3:
				old := shadow[addr]
				if ok := p.CAS(addr, old, v); !ok {
					t.Fatalf("CAS with correct old failed")
				}
				shadow[addr] = v
			}
			if b%32 == 5 {
				a.InvalidateCache(pid) // simulated crash: values unaffected
			}
		}
		var totalOps int64
		for i := 0; i < n; i++ {
			if a.RMRs(i) > a.Ops(i) {
				t.Fatalf("process %d: RMRs %d > ops %d", i, a.RMRs(i), a.Ops(i))
			}
			if a.RMRs(i) < 0 {
				t.Fatalf("negative RMRs")
			}
			totalOps += a.Ops(i)
		}
		if totalOps != int64(len(script)) {
			t.Fatalf("ops %d, want %d", totalOps, len(script))
		}
		for addr, want := range shadow {
			if got := a.Peek(addr); got != want {
				t.Fatalf("final Peek(%d) = %d, shadow %d", addr, got, want)
			}
		}
	})
}

package memory

import (
	"strings"
	"testing"
)

// replayAllocs runs a fixed mixed allocation sequence (striped words,
// multi-word blocks, HomeNone lines) and returns every address.
func replayAllocs(sp Space, n int) []Addr {
	var out []Addr
	for pid := 0; pid < n; pid++ {
		out = append(out, sp.Alloc(1, pid))
		out = append(out, sp.Alloc(3, pid))
	}
	out = append(out, sp.Alloc(1, HomeNone))
	out = append(out, sp.Alloc(LineWords+1, HomeNone))
	for pid := 0; pid < n; pid++ {
		out = append(out, sp.Alloc(2, pid))
	}
	return out
}

// TestSubArenaDeterminism pins the translation invariance the keyed lock
// manager relies on: a sequence replayed against a sub-sizer predicts
// the exact relative addresses the same sequence produces in any carved
// region, and every carved region reproduces the same relative layout.
func TestSubArenaDeterminism(t *testing.T) {
	const n = 4
	szr := NewSubSizer(n)
	want := replayAllocs(szr, n)
	lines := szr.Lines()
	if lines < 1 {
		t.Fatalf("Lines() = %d", lines)
	}

	arena := NewNativeArena(n, (1+3*lines)*LineWords)
	subs := []*SubArena{arena.Carve(lines), arena.Carve(lines), arena.Carve(lines)}
	for si, sub := range subs {
		lo, hi := sub.Bounds()
		got := replayAllocs(sub, n)
		for i, a := range got {
			if rel := a - lo; rel != want[i] {
				t.Fatalf("sub %d alloc %d: relative address %d, sizer predicted %d", si, i, rel, want[i])
			}
			if a < lo || a >= hi {
				t.Fatalf("sub %d alloc %d: address %d outside region [%d,%d)", si, i, a, lo, hi)
			}
		}
		if sub.Words() > sub.Lines()*LineWords {
			t.Fatalf("sub %d: Words() = %d exceeds region %d", si, sub.Words(), sub.Lines()*LineWords)
		}
	}
	// Regions are disjoint.
	for i := 0; i < len(subs); i++ {
		for j := i + 1; j < len(subs); j++ {
			ilo, ihi := subs[i].Bounds()
			jlo, jhi := subs[j].Bounds()
			if ilo < jhi && jlo < ihi {
				t.Fatalf("regions %d [%d,%d) and %d [%d,%d) overlap", i, ilo, ihi, j, jlo, jhi)
			}
		}
	}
}

// TestSubArenaReset checks the recycle contract: after Reset the region
// reads all-zero, the allocator restarts, and a replayed construction
// lands on the same addresses as the first.
func TestSubArenaReset(t *testing.T) {
	const n = 2
	szr := NewSubSizer(n)
	replayAllocs(szr, n)
	lines := szr.Lines()

	arena := NewNativeArena(n, (1+lines)*LineWords)
	sub := arena.Carve(lines)
	first := replayAllocs(sub, n)
	p := arena.Port(0, nil)
	for _, a := range first {
		p.Write(a, Word(a)+7)
	}
	sub.Reset()
	lo, hi := sub.Bounds()
	for a := lo; a < hi; a++ {
		if v := arena.Peek(a); v != 0 {
			t.Fatalf("word %d = %d after Reset, want 0", a, v)
		}
	}
	second := replayAllocs(sub, n)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("alloc %d: address %d after Reset, was %d", i, second[i], first[i])
		}
	}
}

// TestSubArenaExhausted pins the region-specific exhaustion diagnostic:
// overflowing a region must blame the region, not suggest resizing the
// whole arena.
func TestSubArenaExhausted(t *testing.T) {
	arena := NewNativeArena(1, 4*LineWords)
	sub := arena.Carve(1)
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("overflowing a 1-line region did not panic")
		}
		msg, ok := e.(string)
		if !ok || !strings.Contains(msg, "sub-arena region exhausted") {
			t.Fatalf("panic = %v, want a sub-arena exhaustion message", e)
		}
	}()
	sub.Alloc(LineWords+1, HomeNone)
}

// TestCarveRequiresPadding: the dense legacy layout has no line
// discipline, so carving from it must fail loudly.
func TestCarveRequiresPadding(t *testing.T) {
	arena := NewNativeArena(1, 64, Unpadded())
	defer func() {
		if recover() == nil {
			t.Fatal("Carve on an unpadded arena did not panic")
		}
	}()
	arena.Carve(1)
}

// TestVersionTableInvalidate: after a region recycle, a port that had
// the old words cached must pay an RMR on its next read (the CC model's
// view of fresh memory), which Invalidate forces by bumping versions.
func TestVersionTableInvalidate(t *testing.T) {
	arena := NewNativeArena(1, 4*LineWords)
	sub := arena.Carve(2)
	a := sub.Alloc(1, 0)
	vt := NewVersionTable(arena.Capacity())
	cp := CountPort(arena.Port(0, nil), vt, nil)
	cp.Read(a)
	before := cp.Counts()
	cp.Read(a) // cached: no RMR
	if got := cp.Counts().RMRs; got != before.RMRs {
		t.Fatalf("cached re-read charged an RMR (%d -> %d)", before.RMRs, got)
	}
	sub.Reset()
	lo, hi := sub.Bounds()
	vt.Invalidate(lo, hi)
	cp.Read(a)
	if got := cp.Counts().RMRs; got != before.RMRs+1 {
		t.Fatalf("post-recycle read charged %d RMRs, want exactly 1", got-before.RMRs)
	}
}

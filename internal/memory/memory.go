// Package memory provides the shared-memory substrate that every lock in
// this repository is written against.
//
// The paper (Dhoked & Mittal, PODC 2020) analyzes recoverable mutual
// exclusion algorithms on an asynchronous shared-memory multiprocessor in
// which shared variables survive crashes (NVRAM) while private variables do
// not, and measures cost in remote memory references (RMRs) under the two
// standard models:
//
//   - Cache-coherent (CC): every process has a cache; a read costs an RMR
//     only when the location is not validly cached, a write or RMW always
//     costs an RMR and invalidates all other cached copies.
//   - Distributed shared memory (DSM): every location lives in exactly one
//     process's memory module; an operation costs an RMR iff the location
//     is remote to the process performing it.
//
// Two interchangeable backends implement this substrate:
//
//   - Arena (arena.go): a deterministic simulated memory with exact RMR
//     accounting and a step gate through which a scheduler can interleave
//     processes and inject crashes at instruction boundaries.
//   - NativeArena (native.go): a sync/atomic backed memory for running the
//     same lock code under real goroutine concurrency.
//
// Lock algorithms see only the Port interface, so identical algorithm code
// runs on both backends.
package memory

import "fmt"

// Word is the unit of shared storage. Addresses, booleans, counters and
// process identifiers are all encoded into words.
type Word = uint64

// Addr names one word of shared memory. The zero Addr is never allocated
// and doubles as the null reference, mirroring the paper's use of "null".
type Addr uint32

// Nil is the null address. Reading or writing Nil is a programming error
// and panics (a lock following the paper never dereferences null).
const Nil Addr = 0

// Model selects the RMR accounting model.
type Model int

// Supported memory models.
const (
	// CC is the cache-coherent model.
	CC Model = iota + 1
	// DSM is the distributed shared-memory model.
	DSM
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case CC:
		return "CC"
	case DSM:
		return "DSM"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// HomeNone marks a location that is remote to every process under the DSM
// model (for example the queue tail pointer, which no process owns).
const HomeNone = -1

// OpKind identifies the kind of a shared-memory instruction.
type OpKind uint8

// Shared-memory instruction kinds. These are exactly the instructions the
// paper assumes the hardware provides (Section 2.6).
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpFAS
	OpCAS
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFAS:
		return "FAS"
	case OpCAS:
		return "CAS"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// OpInfo describes one shared-memory instruction about to be executed by a
// process. Schedulers receive it at the step gate and failure plans match
// on the Label to target sensitive instructions (Definition 3.3).
type OpInfo struct {
	Kind  OpKind
	Addr  Addr
	Label string
}

// Gate is the hook a scheduler installs on a simulated port. Step is called
// on the process's goroutine immediately before each shared-memory
// instruction; it may block (to serialize the simulation) and may panic
// with a crash sentinel to make the process fail at this exact boundary.
type Gate interface {
	Step(pid int, op OpInfo)
}

// Space allocates shared memory. home is the owning process under the DSM
// model (or HomeNone); it is ignored under CC accounting but recorded so
// the same layout works under both models.
type Space interface {
	// Alloc reserves nwords consecutive words, zero initialized, and
	// returns the address of the first.
	Alloc(nwords int, home int) Addr
}

// Port is one process's view of shared memory. All lock algorithms in this
// repository are written against Port so that they run unchanged on the
// simulator and on the native backend.
//
// A Port is bound to a single process and must only be used from that
// process's goroutine.
type Port interface {
	Space

	// PID returns the identifier of the process bound to this port,
	// in [0, N).
	PID() int
	// N returns the number of processes sharing the memory.
	N() int

	// Read returns the current contents of a.
	Read(a Addr) Word
	// Write stores v into a.
	Write(a Addr, v Word)
	// FAS atomically stores v into a and returns the previous contents
	// (fetch-and-store, Section 2.6).
	FAS(a Addr, v Word) Word
	// CAS atomically compares the contents of a with old and, if equal,
	// stores new. It reports whether the store happened (Section 2.6).
	CAS(a Addr, old, new Word) bool

	// Label tags the next instruction issued through this port. Labels
	// let failure plans crash a process at a specific instruction, e.g.
	// the sensitive FAS of the weakly recoverable lock.
	Label(l string)

	// Pause is a hint inserted in busy-wait loops. The native backend
	// yields the processor; the simulator treats it as a no-op because
	// every instruction already passes through the scheduler.
	Pause()
}

// Bool encodes a boolean into a word.
func Bool(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// AsBool decodes a word written by Bool.
func AsBool(w Word) bool { return w != 0 }

// FromAddr encodes an address into a word so references can be stored in
// shared memory.
func FromAddr(a Addr) Word { return Word(a) }

// AsAddr decodes a word written by FromAddr.
func AsAddr(w Word) Addr { return Addr(w) }

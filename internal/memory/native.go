package memory

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// NativeArena is the sync/atomic backed shared memory. It runs the same
// lock algorithms as Arena but under real goroutine concurrency, standing
// in for NVRAM: its contents survive simulated process crashes (a crashed
// worker abandons its private state and later re-runs Recover against the
// untouched arena).
//
// The arena is a fixed-capacity array of atomic words with a bump
// allocator; all operations on allocated words are safe for concurrent use.
// RMR accounting is not available on this backend (real cache behaviour is
// up to the hardware) — use Arena for RMR experiments.
type NativeArena struct {
	n     int
	words []atomic.Uint64
	next  atomic.Int64
}

// NewNativeArena returns a native arena for n processes with capacity for
// the given number of words. Word 0 is reserved as null.
func NewNativeArena(n, capacity int) *NativeArena {
	if n <= 0 {
		panic(fmt.Sprintf("memory: invalid process count %d", n))
	}
	if capacity < 1 {
		capacity = 1
	}
	a := &NativeArena{n: n, words: make([]atomic.Uint64, capacity)}
	a.next.Store(1) // reserve null
	return a
}

// N returns the number of processes.
func (a *NativeArena) N() int { return a.n }

// Alloc implements Space. home is accepted for layout compatibility with
// the simulated arena and otherwise ignored.
func (a *NativeArena) Alloc(nwords int, home int) Addr {
	if nwords <= 0 {
		panic(fmt.Sprintf("memory: Alloc(%d)", nwords))
	}
	_ = home
	base := a.next.Add(int64(nwords)) - int64(nwords)
	if base+int64(nwords) > int64(len(a.words)) {
		panic(fmt.Sprintf("memory: native arena exhausted (capacity %d words); size it with rme.WithCapacity", len(a.words)))
	}
	return Addr(base)
}

// Size returns the number of words allocated so far.
func (a *NativeArena) Size() int { return int(a.next.Load()) }

// Peek reads a word without synchronizing with concurrent writers beyond
// the atomicity of the load. Debug use only.
func (a *NativeArena) Peek(addr Addr) Word { return a.words[addr].Load() }

// FailFunc decides whether the process should crash immediately before the
// instruction it is about to execute. It is the native counterpart of the
// simulator's failure plans and is called on the process's goroutine.
type FailFunc func(pid int, op OpInfo) bool

// ErrCrash is the sentinel panic value used to unwind a native process when
// a fail point fires. Harnesses recover it at the passage boundary.
type ErrCrash struct {
	PID int
	Op  OpInfo
}

// Error implements error.
func (e ErrCrash) Error() string {
	return fmt.Sprintf("process %d crashed at %s %d", e.PID, e.Op.Kind, e.Op.Addr)
}

// Port returns process pid's port onto the native arena. fail may be nil.
// The port must be used by one goroutine at a time (the goroutine currently
// impersonating process pid).
func (a *NativeArena) Port(pid int, fail FailFunc) *NativePort {
	if pid < 0 || pid >= a.n {
		panic(fmt.Sprintf("memory: pid %d out of range [0,%d)", pid, a.n))
	}
	return &NativePort{arena: a, pid: pid, fail: fail}
}

// NativePort is a process's view of a NativeArena.
type NativePort struct {
	arena *NativeArena
	pid   int
	fail  FailFunc
	label string
}

var _ Port = (*NativePort)(nil)

// PID implements Port.
func (p *NativePort) PID() int { return p.pid }

// N implements Port.
func (p *NativePort) N() int { return p.arena.n }

// Alloc implements Port.
func (p *NativePort) Alloc(nwords int, home int) Addr { return p.arena.Alloc(nwords, home) }

// Label implements Port.
func (p *NativePort) Label(l string) { p.label = l }

// Pause implements Port. Busy-wait loops yield so that spinners make
// progress even on GOMAXPROCS=1.
func (p *NativePort) Pause() { runtime.Gosched() }

func (p *NativePort) step(k OpKind, addr Addr) {
	if addr == Nil || int64(addr) >= p.arena.next.Load() {
		panic(fmt.Sprintf("memory: access to invalid address %d", addr))
	}
	label := p.label
	p.label = ""
	if p.fail != nil {
		op := OpInfo{Kind: k, Addr: addr, Label: label}
		if p.fail(p.pid, op) {
			panic(ErrCrash{PID: p.pid, Op: op})
		}
	}
}

// Read implements Port.
func (p *NativePort) Read(a Addr) Word {
	p.step(OpRead, a)
	return p.arena.words[a].Load()
}

// Write implements Port.
func (p *NativePort) Write(a Addr, v Word) {
	p.step(OpWrite, a)
	p.arena.words[a].Store(v)
}

// FAS implements Port.
func (p *NativePort) FAS(a Addr, v Word) Word {
	p.step(OpFAS, a)
	return p.arena.words[a].Swap(v)
}

// CAS implements Port.
func (p *NativePort) CAS(a Addr, old, new Word) bool {
	p.step(OpCAS, a)
	return p.arena.words[a].CompareAndSwap(old, new)
}

// Words returns an atomic-per-word copy of the allocated arena contents
// (index 0 is the reserved null word). Used for NVRAM-style snapshots.
func (a *NativeArena) Words() []Word {
	size := a.next.Load()
	out := make([]Word, size)
	for i := int64(1); i < size; i++ {
		out[i] = a.words[i].Load()
	}
	return out
}

// SetWords overwrites the allocated arena contents from a snapshot taken
// by Words on an identically laid-out arena. It fails if the snapshot does
// not match the arena's allocation size.
func (a *NativeArena) SetWords(ws []Word) error {
	if int64(len(ws)) != a.next.Load() {
		return fmt.Errorf("memory: snapshot has %d words, arena has %d allocated", len(ws), a.next.Load())
	}
	for i := 1; i < len(ws); i++ {
		a.words[i].Store(ws[i])
	}
	return nil
}

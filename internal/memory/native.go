package memory

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// LineWords is the number of 8-byte words per 64-byte cache line, the unit
// of false sharing on the hardware the native backend runs on.
const LineWords = 8

// NativeArena is the sync/atomic backed shared memory. It runs the same
// lock algorithms as Arena but under real goroutine concurrency, standing
// in for NVRAM: its contents survive simulated process crashes (a crashed
// worker abandons its private state and later re-runs Recover against the
// untouched arena).
//
// Unlike the simulated Arena, which only *accounts* remote memory
// references, the native arena actually pays them, so its layout is
// cache-line aware by default:
//
//   - Allocations with a home process land in that process's region
//     (stripe), and stripes are composed of whole cache lines, so two
//     processes' locally-spun words never share a 64-byte line. This is
//     the DSM discipline made physical: a process's spin words are on
//     lines nobody else's spin words live on.
//   - Allocations with HomeNone (tail pointers and other truly shared
//     words) each get their own cache line(s), so unrelated shared words
//     never false-share either.
//   - Each stripe bump-allocates privately and grabs whole lines from a
//     single line counter, so Alloc is not one contended word counter.
//   - Word 0 is the reserved null word; its entire line is left unused.
//
// The Unpadded option selects the pre-optimization dense layout (single
// bump allocator, home ignored, per-instruction bounds check against the
// shared counter) so benchmarks can measure the padded layout's win
// instead of asserting it.
//
// RMR accounting is not available on this backend (real cache behaviour is
// up to the hardware) — use Arena for RMR experiments.
type NativeArena struct {
	nativeAlloc
	words []atomic.Uint64

	// snapshotHook, when non-nil, runs between the two scans of
	// SnapshotWords. Test seam for deterministic torn-snapshot coverage.
	snapshotHook func()
}

// nativeAlloc is the allocation state shared by NativeArena and
// NativeSizer, so capacity measurement replays exactly the allocator the
// real arena uses.
type nativeAlloc struct {
	n      int
	padded bool
	region bool  // a sub-arena region: exhaustion blames the region, not the arena
	limit  int64 // physical capacity in words; 0 = unbounded (sizer)

	// Padded layout: whole cache lines are handed out by nextLine, then
	// sub-allocated per home stripe.
	nextLine atomic.Int64
	stripes  []stripe

	// Unpadded legacy layout: a single bump pointer.
	next atomic.Int64
}

// stripe is one home region's private bump allocator. Padded to a cache
// line so concurrent allocations in different stripes do not false-share
// the allocator state itself.
type stripe struct {
	mu       sync.Mutex
	cur, end int64 // current line span: next free word, first word past it
	_        [5]uint64
}

// NativeOption configures NewNativeArena.
type NativeOption func(*nativeAlloc)

// Unpadded selects the legacy dense layout: one contiguous word array, a
// single shared bump allocator, the home hint ignored, and the bounds
// check re-read from the shared counter on every instruction. It exists so
// benchmarks can compare the cache-line-aware layout against the layout
// this repository used before it (see BENCH_native.json); production
// callers want the default.
func Unpadded() NativeOption { return func(al *nativeAlloc) { al.padded = false } }

// NewNativeArena returns a native arena for n processes with capacity for
// the given number of physical words. Word 0 is reserved as null. Under
// the default padded layout the capacity is rounded up to whole cache
// lines (minimum two: the null line plus one allocatable line), and
// allocations consume whole lines per the layout rules above — size
// arenas with NewNativeSizer, or via rme.WithCapacity at the API level.
func NewNativeArena(n, capacity int, opts ...NativeOption) *NativeArena {
	if n <= 0 {
		panic(fmt.Sprintf("memory: invalid process count %d", n))
	}
	if capacity < 1 {
		capacity = 1
	}
	a := &NativeArena{}
	a.initAlloc(n, opts...)
	if a.padded {
		lines := (int64(capacity) + LineWords - 1) / LineWords
		if lines < 2 {
			lines = 2
		}
		a.limit = lines * LineWords
	} else {
		a.limit = int64(capacity)
	}
	a.words = make([]atomic.Uint64, a.limit)
	return a
}

func (al *nativeAlloc) initAlloc(n int, opts ...NativeOption) {
	al.n = n
	al.padded = true
	for _, o := range opts {
		o(al)
	}
	if al.padded {
		al.nextLine.Store(1) // line 0 holds the reserved null word
		al.stripes = make([]stripe, n)
	} else {
		al.next.Store(1) // reserve null
	}
}

// grabLines reserves k whole cache lines and returns the word address of
// the first. The CAS loop never overcommits, so every address below
// bound() is backed by real memory.
func (al *nativeAlloc) grabLines(k int64) int64 {
	for {
		line := al.nextLine.Load()
		end := line + k
		if al.limit > 0 && end*LineWords > al.limit {
			if al.region {
				panic(fmt.Sprintf("memory: sub-arena region exhausted (capacity %d words); carve a larger region", al.limit))
			}
			panic(fmt.Sprintf("memory: native arena exhausted (capacity %d words); size it with rme.WithCapacity", al.limit))
		}
		if al.nextLine.CompareAndSwap(line, end) {
			return line * LineWords
		}
	}
}

// alloc implements the layout policy for both the arena and the sizer.
func (al *nativeAlloc) alloc(nwords, home int) Addr {
	if nwords <= 0 {
		panic(fmt.Sprintf("memory: Alloc(%d)", nwords))
	}
	if home != HomeNone && (home < 0 || home >= al.n) {
		panic(fmt.Sprintf("memory: Alloc home %d out of range [0,%d)", home, al.n))
	}
	if !al.padded {
		base := al.next.Add(int64(nwords)) - int64(nwords)
		if al.limit > 0 && base+int64(nwords) > al.limit {
			panic(fmt.Sprintf("memory: native arena exhausted (capacity %d words); size it with rme.WithCapacity", al.limit))
		}
		return Addr(base)
	}
	lines := (int64(nwords) + LineWords - 1) / LineWords
	if home == HomeNone {
		// Truly shared words get exclusive lines: no two HomeNone
		// allocations (nor any home stripe) ever share one.
		return Addr(al.grabLines(lines))
	}
	s := &al.stripes[home]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end-s.cur < int64(nwords) {
		base := al.grabLines(lines)
		s.cur = base
		s.end = base + lines*LineWords
	}
	addr := s.cur
	s.cur += int64(nwords)
	return Addr(addr)
}

// bound returns the first invalid word address: everything below it is
// allocated (or padding within an allocated line) and safely addressable.
func (al *nativeAlloc) bound() int64 {
	if !al.padded {
		return al.next.Load()
	}
	return al.nextLine.Load() * LineWords
}

// N returns the number of processes.
func (a *NativeArena) N() int { return a.n }

// Padded reports whether the arena uses the cache-line-aware layout.
func (a *NativeArena) Padded() bool { return a.padded }

// Alloc implements Space. Under the padded layout home selects the owning
// process's stripe (HomeNone words get exclusive cache lines); under the
// legacy Unpadded layout it is accepted and ignored.
func (a *NativeArena) Alloc(nwords int, home int) Addr { return a.alloc(nwords, home) }

// Size returns the arena's physical footprint in words: everything handed
// out so far, including the reserved null line and cache-line padding
// under the default layout.
func (a *NativeArena) Size() int { return int(a.bound()) }

// Capacity returns the arena's fixed physical capacity in words — the
// upper bound on every address it can ever hand out. VersionTables for
// CC-exact RMR accounting are sized with it.
func (a *NativeArena) Capacity() int { return int(a.limit) }

// Peek reads a word without synchronizing with concurrent writers beyond
// the atomicity of the load. Debug use only.
func (a *NativeArena) Peek(addr Addr) Word { return a.words[addr].Load() }

// NativeSizer measures the physical capacity a NativeArena needs for an
// allocation sequence: it implements Space by replaying the arena's exact
// layout policy without backing memory. Replay the construction against a
// sizer, then create the real arena with the measured word count — the
// identical allocation sequence then yields the identical layout.
type NativeSizer struct {
	nativeAlloc
}

// NewNativeSizer returns a sizer for n processes. padded selects the
// layout to measure (matching the arena the result will size).
func NewNativeSizer(n int, padded bool) *NativeSizer {
	if n <= 0 {
		panic(fmt.Sprintf("memory: invalid process count %d", n))
	}
	s := &NativeSizer{}
	var opts []NativeOption
	if !padded {
		opts = append(opts, Unpadded())
	}
	s.initAlloc(n, opts...)
	return s
}

// Alloc implements Space.
func (s *NativeSizer) Alloc(nwords int, home int) Addr { return s.alloc(nwords, home) }

// Words returns the physical capacity consumed so far, in words.
func (s *NativeSizer) Words() int { return int(s.bound()) }

// FailFunc decides whether the process should crash immediately before the
// instruction it is about to execute. It is the native counterpart of the
// simulator's failure plans and is called on the process's goroutine.
type FailFunc func(pid int, op OpInfo) bool

// ErrCrash is the sentinel panic value used to unwind a native process when
// a fail point fires. Harnesses recover it at the passage boundary.
type ErrCrash struct {
	PID int
	Op  OpInfo
}

// Error implements error.
func (e ErrCrash) Error() string {
	return fmt.Sprintf("process %d crashed at %s %d", e.PID, e.Op.Kind, e.Op.Addr)
}

// AbortFunc is consulted by Pause: returning true makes the waiting process
// unwind with ErrAbort so the harness can back it out of the acquisition.
// Unlike FailFunc it is only polled while the process is spinning — the
// failure-free fast path never pays for it, and the flag it reads lives
// outside the arena (abort intent is ephemeral private state: a crash
// legitimately loses it).
type AbortFunc func(pid int) bool

// ErrAbort is the sentinel panic value used to unwind a native process out
// of a spin loop when its abort flag is raised. Harnesses recover it and
// run the lock's crash-safe back-out (core.Aborter).
type ErrAbort struct {
	PID int
}

// Error implements error.
func (e ErrAbort) Error() string {
	return fmt.Sprintf("process %d aborted while waiting", e.PID)
}

// Port returns process pid's port onto the native arena. fail may be nil.
// The port must be used by one goroutine at a time (the goroutine currently
// impersonating process pid).
func (a *NativeArena) Port(pid int, fail FailFunc) *NativePort {
	if pid < 0 || pid >= a.n {
		panic(fmt.Sprintf("memory: pid %d out of range [0,%d)", pid, a.n))
	}
	return &NativePort{arena: a, pid: pid, fail: fail}
}

// NativePort is a process's view of a NativeArena.
type NativePort struct {
	arena   *NativeArena
	pid     int
	fail    FailFunc
	abort   AbortFunc
	label   string
	onLabel func(label string)

	// bound caches the arena's allocation bound so the hot path validates
	// addresses with a register compare instead of re-reading the shared
	// counter on every instruction; refreshed on miss (the arena only
	// grows). Meaningful only under the padded layout — the legacy layout
	// keeps its original per-instruction load for faithful A/B numbers.
	bound int64
	// spin is the Pause backoff ladder position.
	spin uint8
}

var _ Port = (*NativePort)(nil)

// PID implements Port.
func (p *NativePort) PID() int { return p.pid }

// N implements Port.
func (p *NativePort) N() int { return p.arena.n }

// Alloc implements Port.
func (p *NativePort) Alloc(nwords int, home int) Addr { return p.arena.Alloc(nwords, home) }

// Label implements Port.
func (p *NativePort) Label(l string) { p.label = l }

// SetAbortHook installs the abort poll consulted by Pause (nil removes
// it). The hook runs on the port's goroutine; when it returns true, Pause
// panics with ErrAbort{PID} instead of backing off, unwinding the spin so
// the harness can run the lock's back-out protocol. Ports without a hook
// pay a single nil comparison per Pause.
func (p *NativePort) SetAbortHook(h AbortFunc) { p.abort = h }

// SetLabelHook installs a callback observing the label of every labeled
// instruction the port executes, invoked just before the instruction's
// memory effect (and before any fail-point decision, matching the
// CountingPort's observation order). The hook runs on the port's
// goroutine; nil removes it. Observers such as the flight recorder hang
// off this seam so the unlabeled hot path stays a nil comparison.
func (p *NativePort) SetLabelHook(h func(label string)) { p.onLabel = h }

// pauseSpinMax bounds the busy-wait ladder: 1<<0 .. 1<<pauseSpinMax empty
// iterations (63 total) before the port yields the processor and the
// ladder resets. Brief spinning lets a waiter catch a release without a
// scheduler round trip; the bound keeps heavily oversubscribed runs live,
// where yielding is the only way forward.
const pauseSpinMax = 6

// pauseCanSpin reports whether busy-waiting can ever pay off: on a single
// processor the awaited writer cannot run concurrently, so every spin
// iteration is wasted and Pause should go straight to the scheduler (the
// same multicore gate sync.Mutex applies to its spinning).
func pauseCanSpin() bool { return runtime.GOMAXPROCS(0) > 1 }

// Pause implements Port: bounded spin-then-yield exponential backoff on
// multicore, a plain yield on a uniprocessor. Under the legacy Unpadded
// layout it yields unconditionally — the pre-optimization backend's
// behaviour — so the padded/unpadded benchmark compares the complete old
// and new execution paths.
func (p *NativePort) Pause() {
	if p.abort != nil && p.abort(p.pid) {
		panic(ErrAbort{PID: p.pid})
	}
	if !p.arena.padded || !pauseCanSpin() {
		runtime.Gosched()
		return
	}
	if p.spin < pauseSpinMax {
		for i := 0; i < 1<<p.spin; i++ {
			// Busy-wait. The gc compiler does not elide empty loops.
		}
		p.spin++
		return
	}
	p.spin = 0
	runtime.Gosched()
}

func (p *NativePort) step(k OpKind, addr Addr) {
	if p.arena.padded {
		if addr == Nil || int64(addr) >= p.bound {
			p.refreshBound(addr)
		}
	} else {
		// Legacy layout: validate against the shared counter every time,
		// exactly as the pre-optimization backend did.
		if addr == Nil || int64(addr) >= p.arena.next.Load() {
			panic(fmt.Sprintf("memory: access to invalid address %d", addr))
		}
	}
	label := p.label
	p.label = ""
	if label != "" && p.onLabel != nil {
		p.onLabel(label)
	}
	if p.fail != nil {
		op := OpInfo{Kind: k, Addr: addr, Label: label}
		if p.fail(p.pid, op) {
			panic(ErrCrash{PID: p.pid, Op: op})
		}
	}
}

// refreshBound reloads the cached allocation bound (the arena may have
// grown since it was cached) and panics if addr is still invalid.
func (p *NativePort) refreshBound(addr Addr) {
	if addr != Nil {
		p.bound = p.arena.bound()
		if int64(addr) < p.bound {
			return
		}
	}
	panic(fmt.Sprintf("memory: access to invalid address %d", addr))
}

// Read implements Port.
func (p *NativePort) Read(a Addr) Word {
	p.step(OpRead, a)
	return p.arena.words[a].Load()
}

// Write implements Port.
func (p *NativePort) Write(a Addr, v Word) {
	p.step(OpWrite, a)
	p.arena.words[a].Store(v)
}

// FAS implements Port.
func (p *NativePort) FAS(a Addr, v Word) Word {
	p.step(OpFAS, a)
	return p.arena.words[a].Swap(v)
}

// CAS implements Port.
func (p *NativePort) CAS(a Addr, old, new Word) bool {
	p.step(OpCAS, a)
	return p.arena.words[a].CompareAndSwap(old, new)
}

// ErrTornSnapshot is returned by SnapshotWords when the arena was mutated
// (written or grown) while the snapshot was being taken. Snapshots are
// only meaningful at a quiescent point; a torn one must never be restored
// as if it were consistent.
var ErrTornSnapshot = errors.New("memory: arena mutated during snapshot (quiescence violated)")

// Words returns an atomic-per-word copy of the arena's physical contents
// (index 0 is the reserved null word; under the padded layout the copy
// includes cache-line padding holes). It does not detect concurrent
// writers — debug use only; snapshots that may be restored must use
// SnapshotWords.
func (a *NativeArena) Words() []Word {
	size := a.bound()
	out := make([]Word, size)
	for i := int64(1); i < size; i++ {
		out[i] = a.words[i].Load()
	}
	return out
}

// SnapshotWords returns a copy of the arena's physical contents, verifying
// the quiescence contract: the scan is performed twice and any word that
// changed between the scans — or any allocation that grew the arena —
// yields ErrTornSnapshot instead of a silently inconsistent snapshot.
// (A writer that races the scans without changing any scanned value is
// indistinguishable from quiescence and harmless by the same token.)
func (a *NativeArena) SnapshotWords() ([]Word, error) {
	size := a.bound()
	out := make([]Word, size)
	for i := int64(1); i < size; i++ {
		out[i] = a.words[i].Load()
	}
	if a.snapshotHook != nil {
		a.snapshotHook()
	}
	for i := int64(1); i < size; i++ {
		if a.words[i].Load() != out[i] {
			return nil, fmt.Errorf("%w: word %d changed mid-scan", ErrTornSnapshot, i)
		}
	}
	if a.bound() != size {
		return nil, fmt.Errorf("%w: arena grew mid-scan", ErrTornSnapshot)
	}
	return out, nil
}

// SetWords overwrites the arena contents from a snapshot taken by
// SnapshotWords on an identically laid-out arena (same process count,
// options and allocation sequence — layouts are deterministic, so a
// freshly constructed arena of the same configuration qualifies). It fails
// if the snapshot does not match the arena's physical footprint. Like
// SnapshotWords, it requires quiescence: no port may operate concurrently.
func (a *NativeArena) SetWords(ws []Word) error {
	if int64(len(ws)) != a.bound() {
		return fmt.Errorf("memory: snapshot has %d words, arena has %d allocated", len(ws), a.bound())
	}
	for i := 1; i < len(ws); i++ {
		a.words[i].Store(ws[i])
	}
	return nil
}

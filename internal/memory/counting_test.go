package memory

import "testing"

// countingPair returns two counting ports over a fresh 2-process native
// arena sharing one version table, plus a word address allocated for the
// test.
func countingPair(t *testing.T, capacity int) (*CountingPort, *CountingPort, Addr) {
	t.Helper()
	a := NewNativeArena(2, capacity)
	vt := NewVersionTable(a.Capacity())
	p0 := CountPort(a.Port(0, nil), vt, nil)
	p1 := CountPort(a.Port(1, nil), vt, nil)
	w := p0.Alloc(1, HomeNone)
	return p0, p1, w
}

func TestCountingReadCaching(t *testing.T) {
	p0, _, w := countingPair(t, 64)

	// First read: miss.
	p0.Read(w)
	if c := p0.Counts(); c.Ops != 1 || c.RMRs != 1 {
		t.Fatalf("after first read: %+v, want Ops=1 RMRs=1", c)
	}
	// Repeat reads: hits.
	for i := 0; i < 5; i++ {
		p0.Read(w)
	}
	if c := p0.Counts(); c.Ops != 6 || c.RMRs != 1 {
		t.Fatalf("after cached reads: %+v, want Ops=6 RMRs=1", c)
	}
}

func TestCountingWriteInvalidates(t *testing.T) {
	p0, p1, w := countingPair(t, 64)

	p0.Read(w) // p0 caches w
	p1.Read(w) // p1 caches w
	p1.Write(w, 7)
	// p1 retains a valid copy after its own write.
	p1.Read(w)
	if c := p1.Counts(); c.Ops != 3 || c.RMRs != 2 {
		t.Fatalf("writer counts %+v, want Ops=3 RMRs=2 (read miss, write, read hit)", c)
	}
	// p0's copy was invalidated by p1's write.
	p0.Read(w)
	if c := p0.Counts(); c.Ops != 2 || c.RMRs != 2 {
		t.Fatalf("invalidated reader counts %+v, want Ops=2 RMRs=2", c)
	}
}

func TestCountingRMWAlwaysRemote(t *testing.T) {
	p0, p1, w := countingPair(t, 64)

	p0.Write(w, 1)
	p0.FAS(w, 2) // RMW is an RMR even with a valid local copy
	if !p0.CAS(w, 2, 3) {
		t.Fatalf("CAS(2,3) failed")
	}
	if p0.CAS(w, 99, 4) {
		t.Fatalf("CAS(99,4) succeeded")
	}
	if c := p0.Counts(); c.Ops != 4 || c.RMRs != 4 {
		t.Fatalf("RMW counts %+v, want Ops=4 RMRs=4 (failed CAS still charged)", c)
	}
	// The failed CAS still invalidated p1 — and before that p1 never
	// cached w, so its first read misses either way; use two reads
	// bracketing another p0 RMW to observe invalidation specifically.
	p1.Read(w)
	p0.FAS(w, 5)
	p1.Read(w)
	if c := p1.Counts(); c.Ops != 2 || c.RMRs != 2 {
		t.Fatalf("reader counts %+v, want Ops=2 RMRs=2 (FAS invalidated)", c)
	}
}

func TestCountingInvalidateCache(t *testing.T) {
	p0, _, w := countingPair(t, 64)

	p0.Read(w)
	p0.InvalidateCache() // models a crash: private cache state is lost
	p0.Read(w)
	if c := p0.Counts(); c.Ops != 2 || c.RMRs != 2 {
		t.Fatalf("counts %+v, want Ops=2 RMRs=2 after cache drop", c)
	}
}

func TestCountingLabelHook(t *testing.T) {
	a := NewNativeArena(1, 64)
	vt := NewVersionTable(a.Capacity())
	var got []string
	p := CountPort(a.Port(0, nil), vt, func(l string) { got = append(got, l) })
	w := p.Alloc(1, 0)
	p.Label("x:fas")
	p.FAS(w, 1)
	p.Label("") // empty labels are not observed
	p.Write(w, 2)
	if len(got) != 1 || got[0] != "x:fas" {
		t.Fatalf("observed labels %q, want [x:fas]", got)
	}
}

func TestCountingLabelForwardsToFailHook(t *testing.T) {
	// The label must reach the inner port before the instruction runs, so
	// label-targeted failure injection still works through the wrapper.
	a := NewNativeArena(1, 64)
	var seen string
	port := a.Port(0, func(pid int, op OpInfo) bool {
		seen = op.Label
		return false
	})
	vt := NewVersionTable(a.Capacity())
	p := CountPort(port, vt, nil)
	w := p.Alloc(1, 0)
	p.Label("probe:fas")
	p.FAS(w, 1)
	if seen != "probe:fas" {
		t.Fatalf("fail hook saw label %q, want probe:fas", seen)
	}
}

func TestCountingCrashAbortedOpNotCounted(t *testing.T) {
	a := NewNativeArena(1, 64)
	fire := false
	port := a.Port(0, func(pid int, op OpInfo) bool { return fire })
	vt := NewVersionTable(a.Capacity())
	p := CountPort(port, vt, nil)
	w := p.Alloc(1, 0)
	p.Write(w, 1)
	fire = true
	func() {
		defer func() {
			if _, ok := recover().(ErrCrash); !ok {
				t.Fatalf("expected ErrCrash panic")
			}
		}()
		p.Write(w, 2)
	}()
	if c := p.Counts(); c.Ops != 1 || c.RMRs != 1 {
		t.Fatalf("counts %+v, want Ops=1 RMRs=1 (aborted write uncounted)", c)
	}
}

func TestCountingPortForwards(t *testing.T) {
	a := NewNativeArena(3, 64)
	vt := NewVersionTable(a.Capacity())
	p := CountPort(a.Port(2, nil), vt, nil)
	if p.PID() != 2 || p.N() != 3 {
		t.Fatalf("PID/N = %d/%d, want 2/3", p.PID(), p.N())
	}
	p.Pause() // must not panic
	if vt.Words() != a.Capacity() {
		t.Fatalf("vt.Words() = %d, want %d", vt.Words(), a.Capacity())
	}
}

func TestCountingConstructorPanics(t *testing.T) {
	a := NewNativeArena(1, 64)
	vt := NewVersionTable(a.Capacity())
	for name, f := range map[string]func(){
		"nil inner": func() { CountPort(nil, vt, nil) },
		"nil table": func() { CountPort(a.Port(0, nil), nil, nil) },
		"zero vt":   func() { NewVersionTable(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

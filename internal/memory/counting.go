package memory

import (
	"fmt"
	"sync/atomic"
)

// This file is the native backend's RMR observability hook: a counting
// wrapper around NativePort that classifies every shared-memory
// instruction under the cache-coherent (CC) model, exactly as the
// simulated Arena does, instead of estimating remoteness from timing.
//
// The CC rule (Section 2.6 of the paper, mirrored from Arena.charge):
//
//   - a write or RMW always goes to main memory: it is an RMR, it
//     invalidates every other process's cached copy, and the writer
//     retains a valid copy;
//   - a read is an RMR iff the word is not validly cached, after which
//     the reader holds a valid copy.
//
// A VersionTable holds one monotonically increasing write version per
// word; each CountingPort privately remembers the version it last
// cached per word. A read is a cache hit iff the remembered version is
// still current. Version bumps are atomic but are issued separately
// from the data instruction itself, so when two processes race on the
// same word a read racing a write may be classified against the
// version an instant before or after the write — either order is a
// legal linearization of the CC model, and the op and RMR counters
// themselves are never torn. Under the serialized schedules of tests
// and the quiescent phases of benchmarks the classification is exact.

// VersionTable tracks per-word write versions for CC-model RMR
// classification on the native backend. One table is shared by all
// CountingPorts of an arena; size it with NativeArena.Capacity.
type VersionTable struct {
	ver []atomic.Uint64
}

// NewVersionTable returns a table covering words addresses [0, words).
func NewVersionTable(words int) *VersionTable {
	if words < 1 {
		panic(fmt.Sprintf("memory: NewVersionTable(%d)", words))
	}
	return &VersionTable{ver: make([]atomic.Uint64, words)}
}

// Words returns the number of word addresses the table covers.
func (t *VersionTable) Words() int { return len(t.ver) }

// OpCounts aggregates the classified shared-memory traffic of one
// process. Counters only grow; an instruction aborted by an injected
// crash (the crash fires immediately before execution) is not counted,
// matching the simulator's accounting.
type OpCounts struct {
	// Ops is the number of shared-memory instructions executed.
	Ops uint64
	// RMRs is the number of those instructions that were remote under
	// the CC model.
	RMRs uint64
}

// CountingPort wraps a NativePort with exact CC-model RMR accounting
// and label observation. It implements Port; like the port it wraps, it
// must only be used from the goroutine currently impersonating the
// process.
type CountingPort struct {
	inner *NativePort
	vt    *VersionTable
	// seen[a] is ver[a]+1 at the time a was last cached; 0 = invalid.
	seen   []Word
	counts OpCounts
	// onLabel, when non-nil, observes every non-empty label issued
	// through the port (before it is forwarded to the inner port, so
	// failure injection still sees it on the instruction).
	onLabel func(label string)
}

var _ Port = (*CountingPort)(nil)

// CountPort wraps inner with CC-exact accounting against vt. onLabel
// may be nil. vt must cover the arena's full capacity (use
// NativeArena.Capacity), so that every address the arena can ever hand
// out is classifiable.
func CountPort(inner *NativePort, vt *VersionTable, onLabel func(string)) *CountingPort {
	if inner == nil {
		panic("memory: CountPort(nil)")
	}
	if vt == nil {
		panic("memory: CountPort requires a version table")
	}
	return &CountingPort{
		inner:   inner,
		vt:      vt,
		seen:    make([]Word, vt.Words()),
		onLabel: onLabel,
	}
}

// Counts returns the traffic recorded so far. It must be called from
// the owning goroutine (or at quiescence); harnesses that publish the
// numbers across goroutines copy them into atomics at passage
// boundaries.
func (c *CountingPort) Counts() OpCounts { return c.counts }

// InvalidateCache drops every cached word. Harnesses call it when the
// process crashes: cache contents are private state and do not survive
// a failure, exactly as Arena.InvalidateCache models.
func (c *CountingPort) InvalidateCache() {
	clear(c.seen)
}

// PID implements Port.
func (c *CountingPort) PID() int { return c.inner.PID() }

// N implements Port.
func (c *CountingPort) N() int { return c.inner.N() }

// Alloc implements Port.
func (c *CountingPort) Alloc(nwords, home int) Addr { return c.inner.Alloc(nwords, home) }

// Pause implements Port.
func (c *CountingPort) Pause() { c.inner.Pause() }

// Label implements Port.
func (c *CountingPort) Label(l string) {
	if c.onLabel != nil && l != "" {
		c.onLabel(l)
	}
	c.inner.Label(l)
}

// write classifies a write-class instruction on a: always an RMR; every
// other cached copy is invalidated and the writer retains a valid one.
func (c *CountingPort) write(a Addr) {
	c.counts.Ops++
	c.counts.RMRs++
	c.seen[a] = Word(c.vt.ver[a].Add(1)) + 1
}

// Read implements Port.
func (c *CountingPort) Read(a Addr) Word {
	w := c.inner.Read(a)
	c.counts.Ops++
	if v := Word(c.vt.ver[a].Load()) + 1; c.seen[a] != v {
		c.counts.RMRs++
		c.seen[a] = v
	}
	return w
}

// Write implements Port.
func (c *CountingPort) Write(a Addr, v Word) {
	c.inner.Write(a, v)
	c.write(a)
}

// FAS implements Port.
func (c *CountingPort) FAS(a Addr, v Word) Word {
	old := c.inner.FAS(a, v)
	c.write(a)
	return old
}

// CAS implements Port. Like the simulated arena, a failed CAS is still
// charged as an RMR and still invalidates other copies: the RMW goes to
// main memory regardless of its outcome.
func (c *CountingPort) CAS(a Addr, old, new Word) bool {
	ok := c.inner.CAS(a, old, new)
	c.write(a)
	return ok
}

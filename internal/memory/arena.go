package memory

import "fmt"

// Arena is the simulated shared memory. It is deterministic and not safe
// for concurrent use: the simulation scheduler guarantees that at most one
// process executes an instruction at a time (instructions are atomic in the
// paper's model, so serializing them loses no behaviour — every interleaving
// of atomic steps is reachable by scheduler choice).
//
// The arena counts RMRs exactly under the configured model and exposes the
// counters per process so the harness can attribute cost to passages.
type Arena struct {
	model Model
	n     int

	words []Word
	home  []int32
	// cache[w] is a bitset over processes that hold word w validly cached
	// (CC model only). cache[w] is nil until some process caches w.
	cache [][]uint64

	rmr []int64 // RMRs per process
	ops []int64 // instructions per process

	maskWords int // words per cache bitset
}

// NewArena returns a simulated shared memory for n processes under the
// given model. The arena grows on demand; word 0 is reserved so that the
// zero Addr acts as null.
func NewArena(model Model, n int) *Arena {
	if model != CC && model != DSM {
		panic(fmt.Sprintf("memory: invalid model %d", model))
	}
	if n <= 0 {
		panic(fmt.Sprintf("memory: invalid process count %d", n))
	}
	a := &Arena{
		model:     model,
		n:         n,
		words:     make([]Word, 1, 1024),
		home:      make([]int32, 1, 1024),
		cache:     make([][]uint64, 1, 1024),
		rmr:       make([]int64, n),
		ops:       make([]int64, n),
		maskWords: (n + 63) / 64,
	}
	a.home[0] = HomeNone
	return a
}

// Model returns the arena's memory model.
func (a *Arena) Model() Model { return a.model }

// N returns the number of processes.
func (a *Arena) N() int { return a.n }

// Alloc implements Space.
func (a *Arena) Alloc(nwords int, home int) Addr {
	if nwords <= 0 {
		panic(fmt.Sprintf("memory: Alloc(%d)", nwords))
	}
	if home != HomeNone && (home < 0 || home >= a.n) {
		panic(fmt.Sprintf("memory: Alloc home %d out of range [0,%d)", home, a.n))
	}
	base := Addr(len(a.words))
	for i := 0; i < nwords; i++ {
		a.words = append(a.words, 0)
		a.home = append(a.home, int32(home))
		a.cache = append(a.cache, nil)
	}
	return base
}

// Size returns the number of allocated words (including the reserved null
// word).
func (a *Arena) Size() int { return len(a.words) }

// RMRs returns the cumulative RMR count charged to process pid.
func (a *Arena) RMRs(pid int) int64 { return a.rmr[pid] }

// Ops returns the cumulative instruction count of process pid.
func (a *Arena) Ops(pid int) int64 { return a.ops[pid] }

// TotalRMRs returns the cumulative RMR count over all processes.
func (a *Arena) TotalRMRs() int64 {
	var t int64
	for _, v := range a.rmr {
		t += v
	}
	return t
}

// InvalidateCache drops every cache line held by pid. The simulator calls
// it when pid crashes: cache contents are private state and do not survive
// a failure.
func (a *Arena) InvalidateCache(pid int) {
	if a.model != CC {
		return
	}
	w, b := pid/64, uint(pid%64)
	for _, set := range a.cache {
		if set != nil {
			set[w] &^= 1 << b
		}
	}
}

// Peek reads a word without charging an RMR or touching caches. It exists
// for harnesses and debuggers (e.g. reconstructing the MCS sub-queues of
// Figure 1) and must not be used by lock algorithms.
func (a *Arena) Peek(addr Addr) Word {
	a.check(addr)
	return a.words[addr]
}

// Home returns the DSM home of addr (HomeNone if unowned).
func (a *Arena) Home(addr Addr) int {
	a.check(addr)
	return int(a.home[addr])
}

func (a *Arena) check(addr Addr) {
	if addr == Nil || int(addr) >= len(a.words) {
		panic(fmt.Sprintf("memory: access to invalid address %d (arena size %d)", addr, len(a.words)))
	}
}

// charge updates RMR accounting for one instruction of kind k by pid on
// addr and reports whether the instruction was remote.
func (a *Arena) charge(pid int, k OpKind, addr Addr) bool {
	a.ops[pid]++
	remote := false
	switch a.model {
	case DSM:
		remote = int(a.home[addr]) != pid
	case CC:
		w, b := pid/64, uint(pid%64)
		set := a.cache[addr]
		switch k {
		case OpRead:
			// A read is local iff the word is validly cached.
			if set == nil || set[w]&(1<<b) == 0 {
				remote = true
				if set == nil {
					set = make([]uint64, a.maskWords)
					a.cache[addr] = set
				}
				set[w] |= 1 << b
			}
		default:
			// Writes and RMWs go to main memory and invalidate all
			// other cached copies; the writer retains a valid copy.
			remote = true
			if set == nil {
				set = make([]uint64, a.maskWords)
				a.cache[addr] = set
			}
			for i := range set {
				set[i] = 0
			}
			set[w] |= 1 << b
		}
	}
	if remote {
		a.rmr[pid]++
	}
	return remote
}

// Port returns process pid's port onto the arena. gate may be nil, in
// which case instructions execute without scheduler interposition (useful
// in unit tests).
func (a *Arena) Port(pid int, gate Gate) *ArenaPort {
	if pid < 0 || pid >= a.n {
		panic(fmt.Sprintf("memory: pid %d out of range [0,%d)", pid, a.n))
	}
	return &ArenaPort{arena: a, pid: pid, gate: gate}
}

// ArenaPort is a process's view of an Arena.
type ArenaPort struct {
	arena *Arena
	pid   int
	gate  Gate
	label string
}

var _ Port = (*ArenaPort)(nil)

// PID implements Port.
func (p *ArenaPort) PID() int { return p.pid }

// N implements Port.
func (p *ArenaPort) N() int { return p.arena.n }

// Alloc implements Port.
func (p *ArenaPort) Alloc(nwords int, home int) Addr { return p.arena.Alloc(nwords, home) }

// Label implements Port.
func (p *ArenaPort) Label(l string) { p.label = l }

// Pause implements Port. The simulator serializes instructions, so there
// is nothing to yield.
func (p *ArenaPort) Pause() {}

func (p *ArenaPort) step(k OpKind, addr Addr) {
	p.arena.check(addr)
	if p.gate != nil {
		op := OpInfo{Kind: k, Addr: addr, Label: p.label}
		p.label = ""
		p.gate.Step(p.pid, op)
	} else {
		p.label = ""
	}
}

// Read implements Port.
func (p *ArenaPort) Read(a Addr) Word {
	p.step(OpRead, a)
	p.arena.charge(p.pid, OpRead, a)
	return p.arena.words[a]
}

// Write implements Port.
func (p *ArenaPort) Write(a Addr, v Word) {
	p.step(OpWrite, a)
	p.arena.charge(p.pid, OpWrite, a)
	p.arena.words[a] = v
}

// FAS implements Port.
func (p *ArenaPort) FAS(a Addr, v Word) Word {
	p.step(OpFAS, a)
	p.arena.charge(p.pid, OpFAS, a)
	old := p.arena.words[a]
	p.arena.words[a] = v
	return old
}

// CAS implements Port.
func (p *ArenaPort) CAS(a Addr, old, new Word) bool {
	p.step(OpCAS, a)
	p.arena.charge(p.pid, OpCAS, a)
	if p.arena.words[a] != old {
		return false
	}
	p.arena.words[a] = new
	return true
}

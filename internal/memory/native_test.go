package memory

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func line(a Addr) int64 { return int64(a) / LineWords }

// TestPaddedLayoutSeparatesHomes is the core false-sharing guarantee: under
// the padded layout, no two processes' home allocations — the words they
// spin on locally — ever share a 64-byte cache line, no matter how the
// allocations interleave. HomeNone words get exclusive lines of their own.
func TestPaddedLayoutSeparatesHomes(t *testing.T) {
	const n = 8
	a := NewNativeArena(n, 64*LineWords)

	// Interleave allocations across homes the way real lock constructors
	// do (per-process state arrays allocated home by home, round-robin).
	owner := map[int64]int{} // line -> home that owns it (n = HomeNone)
	claim := func(addr Addr, nwords, home int) {
		t.Helper()
		for w := int64(addr); w < int64(addr)+int64(nwords); w++ {
			l := w / LineWords
			if prev, taken := owner[l]; taken && prev != home {
				t.Fatalf("line %d shared between home %d and home %d", l, prev, home)
			}
			owner[l] = home
		}
	}
	for round := 0; round < 3; round++ {
		for home := 0; home < n; home++ {
			claim(a.Alloc(1, home), 1, home)
		}
		claim(a.Alloc(1, HomeNone), 1, n)
	}
	// Multi-word allocations respect the same separation.
	for home := 0; home < n; home++ {
		claim(a.Alloc(3, home), 3, home)
	}
	claim(a.Alloc(LineWords+1, HomeNone), LineWords+1, n)

	// HomeNone allocations must be line-exclusive even against each other:
	// the last two claims above went to stripe "n" collectively, so check
	// pairwise directly.
	x := a.Alloc(1, HomeNone)
	y := a.Alloc(1, HomeNone)
	if line(x) == line(y) {
		t.Fatalf("two HomeNone allocations share line %d", line(x))
	}
}

// TestPaddedSameHomePacks verifies the flip side: a single process's words
// pack densely within its own lines (no 8x blowup for per-process state).
func TestPaddedSameHomePacks(t *testing.T) {
	a := NewNativeArena(2, 16*LineWords)
	first := a.Alloc(1, 0)
	for i := 1; i < LineWords; i++ {
		got := a.Alloc(1, 0)
		if int64(got) != int64(first)+int64(i) {
			t.Fatalf("alloc %d of home 0 = %d, want %d (dense packing)", i, got, int64(first)+int64(i))
		}
	}
}

func TestPaddedNullLineReserved(t *testing.T) {
	a := NewNativeArena(1, 8*LineWords)
	got := a.Alloc(1, 0)
	if got == Nil {
		t.Fatal("Alloc returned null")
	}
	if line(got) == 0 {
		t.Fatalf("allocation %d landed on the reserved null line", got)
	}
}

func TestNativeHomeValidation(t *testing.T) {
	a := NewNativeArena(2, 8*LineWords)
	mustPanic(t, "home too big", func() { a.Alloc(1, 2) })
	mustPanic(t, "home negative", func() { a.Alloc(1, -2) })
	u := NewNativeArena(2, 64, Unpadded())
	mustPanic(t, "home too big (unpadded)", func() { u.Alloc(1, 7) })
}

func TestUnpaddedLegacyLayout(t *testing.T) {
	a := NewNativeArena(4, 64, Unpadded())
	if a.Padded() {
		t.Fatal("Unpadded arena reports Padded")
	}
	// Dense, home-blind, sequential: the pre-optimization layout.
	if got := a.Alloc(3, 2); got != 1 {
		t.Fatalf("first alloc = %d, want 1", got)
	}
	if got := a.Alloc(1, HomeNone); got != 4 {
		t.Fatalf("second alloc = %d, want 4", got)
	}
	if got := a.Size(); got != 5 {
		t.Fatalf("Size = %d, want 5", got)
	}
}

// TestNativeSizerMatchesArena: replaying an allocation sequence against the
// sizer predicts the arena's physical footprint and addresses exactly —
// the property rme.New's capacity measurement depends on.
func TestNativeSizerMatchesArena(t *testing.T) {
	for _, padded := range []bool{true, false} {
		sizer := NewNativeSizer(4, padded)
		seq := []struct{ nwords, home int }{
			{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, HomeNone}, {4, 0}, {2, HomeNone},
			{1, 1}, {9, 2}, {1, 0}, {1, HomeNone}, {3, 3},
		}
		var want []Addr
		for _, s := range seq {
			want = append(want, sizer.Alloc(s.nwords, s.home))
		}
		var opts []NativeOption
		if !padded {
			opts = append(opts, Unpadded())
		}
		a := NewNativeArena(4, sizer.Words(), opts...)
		for i, s := range seq {
			got := a.Alloc(s.nwords, s.home)
			if got != want[i] {
				t.Fatalf("padded=%v alloc %d: arena %d, sizer %d", padded, i, got, want[i])
			}
		}
		if a.Size() != sizer.Words() {
			t.Fatalf("padded=%v footprint %d, sizer %d", padded, a.Size(), sizer.Words())
		}
	}
}

// TestCachedBoundRefreshes: a port created before later allocations must
// still accept their addresses (the cached bound refreshes on miss), and
// must still reject addresses beyond the arena.
func TestCachedBoundRefreshes(t *testing.T) {
	a := NewNativeArena(1, 32*LineWords)
	p := a.Port(0, nil)
	x := a.Alloc(1, 0)
	p.Write(x, 1) // first op: bound cached
	y := a.Alloc(1, HomeNone)
	p.Write(y, 2) // beyond the cached bound: must refresh, not panic
	if p.Read(y) != 2 {
		t.Fatal("read after refresh broken")
	}
	mustPanic(t, "still invalid after refresh", func() { p.Read(Addr(31 * LineWords)) })
	mustPanic(t, "nil", func() { p.Read(Nil) })
}

func TestPauseBackoffLadder(t *testing.T) {
	// Force the multicore path so the ladder is exercised even on a
	// single-CPU machine (where Pause skips spinning entirely).
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	a := NewNativeArena(1, 8*LineWords)
	p := a.Port(0, nil)
	// The ladder must cycle (spin, spin, ..., yield, reset) without
	// wedging; 1000 pauses cross the reset boundary many times.
	sawTop := false
	for i := 0; i < 1000; i++ {
		p.Pause()
		if p.spin > pauseSpinMax {
			t.Fatalf("spin ladder escaped its bound: %d", p.spin)
		}
		if p.spin == pauseSpinMax {
			sawTop = true
		}
	}
	if !sawTop {
		t.Fatal("spin ladder never reached its top rung")
	}

	// Uniprocessor (and legacy-layout) ports must not spin at all.
	runtime.GOMAXPROCS(1)
	q := a.Port(0, nil)
	for i := 0; i < 10; i++ {
		q.Pause()
	}
	if q.spin != 0 {
		t.Fatalf("uniprocessor Pause advanced the spin ladder to %d", q.spin)
	}
}

// TestSnapshotWordsQuiescent: with no concurrent writers the verified
// snapshot equals the debug copy and restores bit for bit.
func TestSnapshotWordsQuiescent(t *testing.T) {
	a := NewNativeArena(2, 8*LineWords)
	x := a.Alloc(1, 0)
	y := a.Alloc(1, 1)
	p := a.Port(0, nil)
	p.Write(x, 7)
	p.Write(y, 9)

	ws, err := a.SnapshotWords()
	if err != nil {
		t.Fatalf("quiescent snapshot failed: %v", err)
	}
	if ws[x] != 7 || ws[y] != 9 {
		t.Fatalf("snapshot contents wrong: %v", ws)
	}
	debug := a.Words()
	if len(debug) != len(ws) {
		t.Fatalf("Words/SnapshotWords disagree on size: %d vs %d", len(debug), len(ws))
	}

	b := NewNativeArena(2, 8*LineWords)
	b.Alloc(1, 0)
	b.Alloc(1, 1)
	if err := b.SetWords(ws); err != nil {
		t.Fatalf("SetWords: %v", err)
	}
	if b.Peek(x) != 7 || b.Peek(y) != 9 {
		t.Fatal("restore lost values")
	}
	// Mismatched layout is rejected, not silently misapplied.
	c := NewNativeArena(2, 8*LineWords)
	if err := c.SetWords(ws); err == nil {
		t.Fatal("SetWords accepted a snapshot for a differently-sized arena")
	}
}

// TestSnapshotWordsDetectsWrite: a write landing between the two scans —
// the torn-snapshot hazard — is detected deterministically via the test
// seam.
func TestSnapshotWordsDetectsWrite(t *testing.T) {
	a := NewNativeArena(1, 8*LineWords)
	x := a.Alloc(1, 0)
	p := a.Port(0, nil)
	p.Write(x, 1)
	a.snapshotHook = func() { p.Write(x, 2) }
	if _, err := a.SnapshotWords(); !errors.Is(err, ErrTornSnapshot) {
		t.Fatalf("err = %v, want ErrTornSnapshot", err)
	}
	// And an allocation growing the arena mid-scan is torn too. (A
	// same-home alloc can fit inside the stripe's current line without
	// moving the bound — that is harmless by construction, since the
	// fresh words are zero and unwritten — so grow with a line-grabbing
	// HomeNone alloc.)
	a.snapshotHook = func() { a.Alloc(1, HomeNone) }
	if _, err := a.SnapshotWords(); !errors.Is(err, ErrTornSnapshot) {
		t.Fatalf("grow: err = %v, want ErrTornSnapshot", err)
	}
	a.snapshotHook = nil
	if _, err := a.SnapshotWords(); err != nil {
		t.Fatalf("arena unusable after torn snapshots: %v", err)
	}
}

// TestSnapshotWordsUnderRacingWriter: with a live concurrent writer,
// SnapshotWords either reports a torn snapshot or returns a copy — it must
// never panic or race (this test is meaningful under -race).
func TestSnapshotWordsUnderRacingWriter(t *testing.T) {
	a := NewNativeArena(1, 8*LineWords)
	x := a.Alloc(1, 0)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := a.Port(0, nil)
		for i := Word(0); !stop.Load(); i++ {
			p.Write(x, i)
		}
	}()
	for i := 0; i < 100; i++ {
		ws, err := a.SnapshotWords()
		if err == nil && int64(len(ws)) != a.bound() {
			t.Fatal("successful snapshot with wrong size")
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestNativeConcurrentAlloc: the striped allocator hands out disjoint
// memory under concurrent allocation from many goroutines (run with -race).
func TestNativeConcurrentAlloc(t *testing.T) {
	const n = 8
	const perProc = 64
	a := NewNativeArena(n, n*perProc*2*LineWords)
	var mu sync.Mutex
	got := map[Addr]int{}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				home := pid
				if i%8 == 3 {
					home = HomeNone
				}
				addr := a.Alloc(2, home)
				mu.Lock()
				for w := addr; w < addr+2; w++ {
					if prev, dup := got[w]; dup {
						t.Errorf("word %d allocated to both %d and %d", w, prev, pid)
					}
					got[w] = pid
				}
				mu.Unlock()
			}
		}(pid)
	}
	wg.Wait()
}

package memory

import (
	"testing"
	"testing/quick"
)

func TestModelString(t *testing.T) {
	tests := []struct {
		m    Model
		want string
	}{
		{CC, "CC"},
		{DSM, "DSM"},
		{Model(9), "Model(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Model(%d).String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	tests := []struct {
		k    OpKind
		want string
	}{
		{OpRead, "read"},
		{OpWrite, "write"},
		{OpFAS, "FAS"},
		{OpCAS, "CAS"},
		{OpKind(0), "OpKind(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("OpKind.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEncodingHelpers(t *testing.T) {
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Fatal("Bool encoding broken")
	}
	if !AsBool(1) || AsBool(0) {
		t.Fatal("AsBool decoding broken")
	}
	if AsAddr(FromAddr(42)) != 42 {
		t.Fatal("Addr round trip broken")
	}
	if AsAddr(FromAddr(Nil)) != Nil {
		t.Fatal("Nil round trip broken")
	}
}

func TestAllocReservesNull(t *testing.T) {
	a := NewArena(CC, 2)
	addr := a.Alloc(3, HomeNone)
	if addr == Nil {
		t.Fatal("Alloc returned the null address")
	}
	if addr != 1 {
		t.Fatalf("first Alloc = %d, want 1", addr)
	}
	if got := a.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
}

func TestAllocPanics(t *testing.T) {
	a := NewArena(CC, 2)
	mustPanic(t, "zero words", func() { a.Alloc(0, HomeNone) })
	mustPanic(t, "bad home", func() { a.Alloc(1, 7) })
	mustPanic(t, "bad home negative", func() { a.Alloc(1, -2) })
}

func TestInvalidAccessPanics(t *testing.T) {
	a := NewArena(CC, 1)
	p := a.Port(0, nil)
	mustPanic(t, "nil read", func() { p.Read(Nil) })
	mustPanic(t, "oob write", func() { p.Write(Addr(999), 1) })
	mustPanic(t, "bad pid", func() { a.Port(5, nil) })
	mustPanic(t, "bad model", func() { NewArena(Model(0), 1) })
	mustPanic(t, "bad n", func() { NewArena(CC, 0) })
}

func TestBasicReadWrite(t *testing.T) {
	for _, m := range []Model{CC, DSM} {
		a := NewArena(m, 2)
		x := a.Alloc(1, 0)
		p0 := a.Port(0, nil)
		p1 := a.Port(1, nil)

		if got := p0.Read(x); got != 0 {
			t.Fatalf("[%v] fresh word = %d, want 0", m, got)
		}
		p0.Write(x, 7)
		if got := p1.Read(x); got != 7 {
			t.Fatalf("[%v] read after write = %d, want 7", m, got)
		}
		if old := p1.FAS(x, 9); old != 7 {
			t.Fatalf("[%v] FAS returned %d, want 7", m, old)
		}
		if got := p0.Read(x); got != 9 {
			t.Fatalf("[%v] read after FAS = %d, want 9", m, got)
		}
		if p0.CAS(x, 8, 10) {
			t.Fatalf("[%v] CAS with wrong old succeeded", m)
		}
		if !p0.CAS(x, 9, 10) {
			t.Fatalf("[%v] CAS with right old failed", m)
		}
		if got := p1.Read(x); got != 10 {
			t.Fatalf("[%v] read after CAS = %d, want 10", m, got)
		}
	}
}

func TestDSMAccounting(t *testing.T) {
	a := NewArena(DSM, 3)
	local := a.Alloc(1, 1)  // owned by process 1
	remote := a.Alloc(1, 0) // owned by process 0
	shared := a.Alloc(1, HomeNone)
	p := a.Port(1, nil)

	p.Read(local)
	p.Write(local, 1)
	p.FAS(local, 2)
	p.CAS(local, 2, 3)
	if got := a.RMRs(1); got != 0 {
		t.Fatalf("local ops cost %d RMRs, want 0", got)
	}

	p.Read(remote)
	p.Write(remote, 1)
	p.Read(shared)
	if got := a.RMRs(1); got != 3 {
		t.Fatalf("remote ops cost %d RMRs, want 3", got)
	}
	if got := a.Ops(1); got != 7 {
		t.Fatalf("Ops = %d, want 7", got)
	}
}

func TestCCAccountingReadCaching(t *testing.T) {
	a := NewArena(CC, 2)
	x := a.Alloc(1, HomeNone)
	p0 := a.Port(0, nil)
	p1 := a.Port(1, nil)

	p0.Read(x) // miss
	p0.Read(x) // hit
	p0.Read(x) // hit
	if got := a.RMRs(0); got != 1 {
		t.Fatalf("read-spin cost %d RMRs, want 1", got)
	}

	p1.Write(x, 5) // invalidates p0's copy, costs p1 one RMR
	if got := a.RMRs(1); got != 1 {
		t.Fatalf("write cost %d RMRs, want 1", got)
	}

	p0.Read(x) // miss again after invalidation
	p0.Read(x) // hit
	if got := a.RMRs(0); got != 2 {
		t.Fatalf("read after invalidation cost %d total RMRs, want 2", got)
	}
}

func TestCCWriterRetainsCopy(t *testing.T) {
	a := NewArena(CC, 2)
	x := a.Alloc(1, HomeNone)
	p0 := a.Port(0, nil)

	p0.Write(x, 1)
	p0.Read(x) // writer's copy is still valid
	if got := a.RMRs(0); got != 1 {
		t.Fatalf("write+read cost %d RMRs, want 1", got)
	}
}

func TestCCRMWAlwaysRemote(t *testing.T) {
	a := NewArena(CC, 2)
	x := a.Alloc(1, HomeNone)
	p := a.Port(0, nil)
	p.Read(x)
	p.FAS(x, 1)
	p.CAS(x, 1, 2)
	p.CAS(x, 99, 3) // failed CAS still goes to memory
	if got := a.RMRs(0); got != 4 {
		t.Fatalf("RMW sequence cost %d RMRs, want 4", got)
	}
}

func TestCrashInvalidatesCache(t *testing.T) {
	a := NewArena(CC, 2)
	x := a.Alloc(1, HomeNone)
	p := a.Port(0, nil)
	p.Read(x)
	a.InvalidateCache(0)
	p.Read(x) // miss again: cache was lost in the crash
	if got := a.RMRs(0); got != 2 {
		t.Fatalf("RMRs = %d, want 2", got)
	}
}

func TestCrashInvalidateDSMNoop(t *testing.T) {
	a := NewArena(DSM, 2)
	x := a.Alloc(1, 0)
	a.InvalidateCache(0) // must not panic with nil cache structures
	p := a.Port(0, nil)
	p.Read(x)
	if got := a.RMRs(0); got != 0 {
		t.Fatalf("RMRs = %d, want 0", got)
	}
}

func TestCCManyProcesses(t *testing.T) {
	// Exercise the multi-word cache bitsets (n > 64).
	const n = 130
	a := NewArena(CC, n)
	x := a.Alloc(1, HomeNone)
	for pid := 0; pid < n; pid++ {
		p := a.Port(pid, nil)
		p.Read(x)
		p.Read(x)
		if got := a.RMRs(pid); got != 1 {
			t.Fatalf("process %d: RMRs = %d, want 1", pid, got)
		}
	}
	// One write invalidates all 130 cached copies.
	w := a.Port(0, nil)
	w.Write(x, 1)
	for pid := 1; pid < n; pid++ {
		p := a.Port(pid, nil)
		p.Read(x)
		if got := a.RMRs(pid); got != 2 {
			t.Fatalf("process %d after invalidation: RMRs = %d, want 2", pid, got)
		}
	}
}

func TestTotalRMRs(t *testing.T) {
	a := NewArena(DSM, 2)
	x := a.Alloc(1, 0)
	a.Port(0, nil).Read(x)
	a.Port(1, nil).Read(x)
	if got := a.TotalRMRs(); got != 1 {
		t.Fatalf("TotalRMRs = %d, want 1", got)
	}
}

func TestPeekAndHome(t *testing.T) {
	a := NewArena(DSM, 2)
	x := a.Alloc(1, 1)
	a.Port(0, nil).Write(x, 77)
	before := a.RMRs(0)
	if got := a.Peek(x); got != 77 {
		t.Fatalf("Peek = %d, want 77", got)
	}
	if got := a.RMRs(0); got != before {
		t.Fatal("Peek charged an RMR")
	}
	if got := a.Home(x); got != 1 {
		t.Fatalf("Home = %d, want 1", got)
	}
}

type recordingGate struct {
	steps []OpInfo
	pids  []int
}

func (g *recordingGate) Step(pid int, op OpInfo) {
	g.steps = append(g.steps, op)
	g.pids = append(g.pids, pid)
}

func TestGateSeesLabels(t *testing.T) {
	a := NewArena(CC, 1)
	x := a.Alloc(1, HomeNone)
	g := &recordingGate{}
	p := a.Port(0, g)

	p.Label("fas:tail")
	p.FAS(x, 1)
	p.Read(x) // label must not leak to the next op

	if len(g.steps) != 2 {
		t.Fatalf("gate saw %d steps, want 2", len(g.steps))
	}
	if g.steps[0].Label != "fas:tail" || g.steps[0].Kind != OpFAS {
		t.Fatalf("first step = %+v", g.steps[0])
	}
	if g.steps[1].Label != "" {
		t.Fatalf("label leaked to second op: %+v", g.steps[1])
	}
	if g.pids[0] != 0 {
		t.Fatalf("gate pid = %d, want 0", g.pids[0])
	}
}

func TestPortIdentity(t *testing.T) {
	a := NewArena(CC, 3)
	p := a.Port(2, nil)
	if p.PID() != 2 || p.N() != 3 {
		t.Fatalf("PID/N = %d/%d, want 2/3", p.PID(), p.N())
	}
	p.Pause() // must be a no-op
}

func TestFASCASSemanticsQuick(t *testing.T) {
	// Property: a FAS followed by a read observes the stored value, and a
	// CAS succeeds iff old matches, regardless of value patterns.
	f := func(v1, v2, v3 Word) bool {
		a := NewArena(DSM, 1)
		x := a.Alloc(1, 0)
		p := a.Port(0, nil)
		p.Write(x, v1)
		if p.FAS(x, v2) != v1 {
			return false
		}
		if ok := p.CAS(x, v2, v3); !ok {
			return false
		}
		if v3 != v2 {
			if p.CAS(x, v2, v1) {
				return false // stale old must fail
			}
		}
		return p.Read(x) == v3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocDisjointQuick(t *testing.T) {
	// Property: allocations never overlap and never return null.
	f := func(sizes []uint8) bool {
		a := NewArena(CC, 1)
		var end Addr = 1
		for _, s := range sizes {
			n := int(s%16) + 1
			got := a.Alloc(n, HomeNone)
			if got == Nil || got != end {
				return false
			}
			end += Addr(n)
		}
		return a.Size() == int(end)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNativeArenaBasics(t *testing.T) {
	a := NewNativeArena(2, 64)
	x := a.Alloc(2, HomeNone)
	p0 := a.Port(0, nil)
	p1 := a.Port(1, nil)

	p0.Write(x, 3)
	if got := p1.Read(x); got != 3 {
		t.Fatalf("read = %d, want 3", got)
	}
	if old := p1.FAS(x, 4); old != 3 {
		t.Fatalf("FAS = %d, want 3", old)
	}
	if !p0.CAS(x, 4, 5) || p0.CAS(x, 4, 6) {
		t.Fatal("CAS semantics broken")
	}
	if a.N() != 2 || p0.N() != 2 || p0.PID() != 0 {
		t.Fatal("identity accessors broken")
	}
	if got := a.Peek(x); got != 5 {
		t.Fatalf("Peek = %d, want 5", got)
	}
	p0.Pause()
}

func TestNativeArenaExhaustion(t *testing.T) {
	// Legacy layout: capacity is exact, word for word.
	a := NewNativeArena(1, 4, Unpadded())
	a.Alloc(3, HomeNone)
	mustPanic(t, "exhaustion", func() { a.Alloc(2, HomeNone) })
	mustPanic(t, "zero alloc", func() { a.Alloc(0, HomeNone) })
	mustPanic(t, "bad pid", func() { a.Port(1, nil) })
	mustPanic(t, "bad n", func() { NewNativeArena(0, 4) })

	// Padded layout: capacity rounds up to whole cache lines, line 0 is
	// reserved, and exhaustion still panics rather than overlapping.
	p := NewNativeArena(1, 2*LineWords)
	p.Alloc(LineWords, HomeNone) // consumes the one allocatable line
	mustPanic(t, "padded exhaustion", func() { p.Alloc(1, HomeNone) })
}

func TestNativeFailPoint(t *testing.T) {
	a := NewNativeArena(1, 16)
	x := a.Alloc(1, HomeNone)
	calls := 0
	p := a.Port(0, func(pid int, op OpInfo) bool {
		calls++
		return op.Label == "boom"
	})

	p.Write(x, 1) // no crash
	func() {
		defer func() {
			e := recover()
			crash, ok := e.(ErrCrash)
			if !ok {
				t.Fatalf("recovered %v, want ErrCrash", e)
			}
			if crash.PID != 0 || crash.Op.Label != "boom" {
				t.Fatalf("crash = %+v", crash)
			}
			if crash.Error() == "" {
				t.Fatal("empty error string")
			}
		}()
		p.Label("boom")
		p.Write(x, 2)
	}()
	if got := a.Peek(x); got != 1 {
		t.Fatalf("crashed write took effect: %d", got)
	}
	if calls != 2 {
		t.Fatalf("fail func called %d times, want 2", calls)
	}
}

func TestNativeInvalidAccess(t *testing.T) {
	a := NewNativeArena(1, 16)
	p := a.Port(0, nil)
	mustPanic(t, "nil", func() { p.Read(Nil) })
	mustPanic(t, "unallocated", func() { p.Read(Addr(9)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

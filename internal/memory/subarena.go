package memory

import "fmt"

// This file generalizes the native arena from "one fixed deterministic
// layout per lock" to "many small deterministic sub-arenas": a SubArena
// is a region of whole cache lines carved out of a parent NativeArena,
// with its own private allocator running the parent's exact layout
// policy (home stripes of whole lines, exclusive lines for HomeNone
// words). A lock constructed inside a sub-arena therefore keeps the
// padding discipline — no word of one region ever shares a line with
// another region, and within the region no two processes' spin words
// share a line — while the backing words, and the ports that access
// them, remain the parent's. Keyed lock managers (rme.Map) build one
// small lock per key this way and recycle the regions as keys churn.
//
// Layouts are translation invariant: the allocator deals exclusively in
// line-granular offsets, so replaying an allocation sequence against a
// sub-sizer (NewSubSizer, which starts at relative line 0) predicts the
// exact addresses the same sequence produces in a carved region, shifted
// by the region's base. Measure once, then carve every region with the
// measured line count.

// SubArena is a region allocator over a contiguous span of whole cache
// lines owned by a parent NativeArena. It implements Space; ports are
// not created from it — the parent arena's ports address the region's
// words directly (every carved address is below the parent's allocation
// bound).
type SubArena struct {
	parent   *NativeArena
	baseLine int64 // first line of the region in the parent
	lines    int64 // region length in lines
	alloc    nativeAlloc
}

var _ Space = (*SubArena)(nil)

// Carve reserves lines whole cache lines from the arena and returns the
// sub-arena spanning them. The span is permanent — a sub-arena is
// recycled with Reset, never returned to the parent. Carving requires
// the padded layout: the dense legacy layout has no line discipline for
// a region to inherit.
func (a *NativeArena) Carve(lines int) *SubArena {
	if !a.padded {
		panic("memory: Carve requires the padded arena layout")
	}
	if lines < 1 {
		panic(fmt.Sprintf("memory: Carve(%d)", lines))
	}
	s := &SubArena{
		parent:   a,
		baseLine: a.grabLines(int64(lines)) / LineWords,
		lines:    int64(lines),
	}
	s.resetAlloc()
	return s
}

// resetAlloc (re)initializes the region's private allocator: fresh home
// stripes, the line counter at the region base, and the limit at the
// region end. The parent's line 0 holds the global null word and every
// region starts at line 1 or later, so no region address is ever Nil.
func (s *SubArena) resetAlloc() {
	s.alloc = nativeAlloc{n: s.parent.n, padded: true, region: true}
	s.alloc.limit = (s.baseLine + s.lines) * LineWords
	s.alloc.stripes = make([]stripe, s.parent.n)
	s.alloc.nextLine.Store(s.baseLine)
}

// N returns the number of processes.
func (s *SubArena) N() int { return s.alloc.n }

// Alloc implements Space with the parent's layout policy, confined to
// the region; it panics when the region is exhausted.
func (s *SubArena) Alloc(nwords int, home int) Addr { return s.alloc.alloc(nwords, home) }

// Bounds returns the region's word-address range [lo, hi).
func (s *SubArena) Bounds() (lo, hi Addr) {
	return Addr(s.baseLine * LineWords), Addr((s.baseLine + s.lines) * LineWords)
}

// Lines returns the region length in cache lines.
func (s *SubArena) Lines() int { return int(s.lines) }

// Words returns the region's physical footprint in words (every line
// handed out by the region allocator, including padding).
func (s *SubArena) Words() int { return int(s.alloc.bound() - s.baseLine*LineWords) }

// Reset zeroes the region's words and reinitializes its allocator, so
// the next construction replayed into the region lands on the same
// relative addresses with all-zero initial state — exactly a freshly
// carved region. The caller must guarantee quiescence: no port may be
// reading or writing the region, and no process may hold a recoverable
// claim (a queue node, a filter slot, a lock) inside it. Callers doing
// CC-exact RMR accounting must also invalidate the region's address
// range in their VersionTable: the zeroed words are new memory, not
// cached copies.
func (s *SubArena) Reset() {
	lo, hi := s.baseLine*LineWords, (s.baseLine+s.lines)*LineWords
	for i := lo; i < hi; i++ {
		s.parent.words[i].Store(0)
	}
	s.resetAlloc()
}

// NewSubSizer returns a sizer measuring the region footprint of an
// allocation sequence under the padded layout: it starts at relative
// line 0 (a region reserves no null line — the parent's line 0 serves
// every region), so Lines() after replaying a construction is exactly
// the line count to pass to Carve, and the construction replayed into
// the carved region lands on the measured addresses shifted by the
// region base.
func NewSubSizer(n int) *NativeSizer {
	if n <= 0 {
		panic(fmt.Sprintf("memory: invalid process count %d", n))
	}
	s := &NativeSizer{}
	s.initAlloc(n)
	s.region = true
	s.nextLine.Store(0)
	return s
}

// Lines returns the whole cache lines consumed so far. For a sizer made
// by NewNativeSizer this includes the reserved null line; for a
// NewSubSizer it is the exact region length to Carve.
func (s *NativeSizer) Lines() int { return int(s.nextLine.Load()) }

// Invalidate bumps the write version of every word in [lo, hi), making
// every CountingPort treat its next read of those words as uncached — an
// RMR. Recyclers call it after SubArena.Reset: the region's words are
// new memory under the CC model, whatever copies a port cached before
// the recycle are gone.
func (t *VersionTable) Invalidate(lo, hi Addr) {
	if hi > Addr(len(t.ver)) {
		hi = Addr(len(t.ver))
	}
	for a := lo; a < hi; a++ {
		t.ver[a].Add(1)
	}
}

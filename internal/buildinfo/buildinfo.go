// Package buildinfo identifies the binary: a VCS revision injected at
// link time plus the Go toolchain version. Every long-running entry
// point (rmeserver, soak, rmebench) exposes it behind a -version flag,
// and the Prometheus exporter surfaces it as the rme_build_info gauge so
// dashboards can correlate metric shifts with deploys.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// revision is stamped by the build:
//
//	go build -ldflags "-X rme/internal/buildinfo.revision=$(git rev-parse --short HEAD)"
//
// When unset we fall back to the module build info (set for
// `go build` inside a VCS checkout), then to "dev".
var revision string

// Revision returns the VCS revision of this binary, "dev" if unknown.
func Revision() string {
	if revision != "" {
		return revision
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "dev"
}

// GoVersion returns the toolchain that built this binary.
func GoVersion() string { return runtime.Version() }

// String renders the one-line form printed by -version flags.
func String(binary string) string {
	return fmt.Sprintf("%s revision=%s %s", binary, Revision(), GoVersion())
}

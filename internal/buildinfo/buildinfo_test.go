package buildinfo

import (
	"strings"
	"testing"
)

func TestRevisionLdflagsOverride(t *testing.T) {
	old := revision
	defer func() { revision = old }()
	revision = "abc1234"
	if got := Revision(); got != "abc1234" {
		t.Fatalf("Revision = %q, want ldflags value", got)
	}
	if got := String("rmeserver"); !strings.HasPrefix(got, "rmeserver revision=abc1234 go") {
		t.Fatalf("String = %q", got)
	}
}

func TestRevisionFallbackNonEmpty(t *testing.T) {
	old := revision
	defer func() { revision = old }()
	revision = ""
	if got := Revision(); got == "" {
		t.Fatalf("Revision must never be empty")
	}
	if got := GoVersion(); !strings.HasPrefix(got, "go") {
		t.Fatalf("GoVersion = %q", got)
	}
}

// Package flight is the native path's flight recorder: an always-available,
// near-zero-overhead-when-off event capture layer that turns "what was
// process 3 doing when the soak run tripped" from archaeology into a file.
//
// Each process owns a cache-line-padded, fixed-size ring of compact binary
// events — passage begin/end, the SALock phase trajectory
// filter → splitter → {fast | core} → arbitrator with its BA-Lock level,
// CS enter/exit, crash/recover, and lock handoffs — stamped with a
// strictly monotone per-process nanosecond timestamp. Recording is enabled
// with rme.WithTracing; when the recorder is absent the lock pays one nil
// check per emit site, and when present but disabled a single atomic flag
// load.
//
// Why recording never adds a remote memory reference in the CC cost model:
// the rings live in ordinary Go memory outside the word arena and are
// written without issuing a single memory.Port instruction, so the exact
// RMR accounting of internal/metrics (and the paper's complexity claims it
// checks) cannot observe the recorder at all. Emits are plain Go calls,
// not shared-memory steps, so they also introduce no new crash points for
// failure plans.
//
// Tear freedom: each ring slot is a two-word seqlock. The owner publishes
// an event by zeroing the packed word, storing the timestamp word, then
// storing the packed word (sequence, kind, level, valid bit) — all
// sequentially consistent atomics. A snapshotting goroutine reads packed,
// timestamp, packed-again and keeps the event only if both packed reads
// agree, are valid, and carry the sequence number the ring index implies.
// Any slot being overwritten mid-read fails one of those checks and is
// dropped (counted in Recording.Dropped), so a snapshot never contains a
// torn event, and per-process streams are strictly ordered by construction.
package flight

import (
	"fmt"
	"sync/atomic"
	"time"

	"rme/internal/metrics"
)

// Kind identifies a flight-recorder event.
type Kind uint8

// Event kinds. The phase kinds carry the 1-based BA-Lock level of the
// SALock instance the process is navigating.
const (
	// KindPassageBegin marks the start of a passage (the Recover segment).
	KindPassageBegin Kind = iota + 1
	// KindRecover marks a passage that begins with a prior crash pending:
	// its Recover segment has real cleanup to consider.
	KindRecover
	// KindPhaseFilter marks entry into a level's weakly recoverable
	// filter lock.
	KindPhaseFilter
	// KindPhaseSplitter marks a splitter acquisition attempt.
	KindPhaseSplitter
	// KindPhaseFast marks winning the splitter: the passage takes the
	// fast path to the arbitrator.
	KindPhaseFast
	// KindPhaseCore marks committing to the slow path: the passage
	// descends into the level's core lock (the next SALock level, or the
	// base lock at the innermost level).
	KindPhaseCore
	// KindPhaseArbitrator marks entry into a level's dual-port arbitrator.
	KindPhaseArbitrator
	// KindCSEnter marks completion of Enter: the process is in its CS.
	KindCSEnter
	// KindCSExit marks the process leaving its CS for the Exit segment.
	KindCSExit
	// KindPassageEnd marks completion of Exit: a failure-free passage.
	KindPassageEnd
	// KindCrash marks a failure of the process.
	KindCrash
	// KindHandoff marks a lock handoff observed via a ":handoff"
	// instruction label: the release-side write that passes ownership
	// directly to a waiting successor.
	KindHandoff
	// KindAbort marks an aborted passage: the waiter was cancelled and
	// completed its crash-safe back-out (the event is emitted when the
	// back-out finishes, closing the passage).
	KindAbort

	kindMax = KindAbort
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPassageBegin:
		return "passage-begin"
	case KindRecover:
		return "recover"
	case KindPhaseFilter:
		return "filter"
	case KindPhaseSplitter:
		return "splitter"
	case KindPhaseFast:
		return "fast"
	case KindPhaseCore:
		return "core"
	case KindPhaseArbitrator:
		return "arbitrator"
	case KindCSEnter:
		return "cs-enter"
	case KindCSExit:
		return "cs-exit"
	case KindPassageEnd:
		return "passage-end"
	case KindCrash:
		return "crash"
	case KindHandoff:
		return "handoff"
	case KindAbort:
		return "abort"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsPhase reports whether the kind is one of the SALock pipeline phases
// (filter, splitter, fast, core, arbitrator).
func (k Kind) IsPhase() bool {
	return k >= KindPhaseFilter && k <= KindPhaseArbitrator
}

// KindFromString inverts Kind.String for every valid kind.
func KindFromString(s string) (Kind, bool) {
	for k := Kind(1); k <= kindMax; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the per-process event index, counted from zero over the
	// process's lifetime (not just the ring's current window).
	Seq uint64 `json:"seq"`
	// TS is the event timestamp: nanoseconds since the recorder was
	// created on the native backend (strictly monotone per process), or
	// logical scheduler steps for recordings converted from a simulation.
	TS int64 `json:"ts"`
	// Kind is the event kind.
	Kind Kind `json:"kind"`
	// Level is the 1-based BA-Lock level for phase events, 0 otherwise.
	Level int `json:"level,omitempty"`
}

// slot is one seqlock-protected ring entry: ts holds the timestamp,
// packed holds valid|kind|level|seq (see pack).
type slot struct {
	ts     atomic.Uint64
	packed atomic.Uint64
}

const (
	packValid = uint64(1) << 63
	// Field layout of packed: kind in bits 48..55, level in bits 32..47,
	// the low 32 bits of the per-process sequence number in bits 0..31.
	packKindShift  = 48
	packLevelShift = 32
)

func pack(seq uint64, k Kind, level int) uint64 {
	return packValid |
		uint64(k)<<packKindShift |
		uint64(uint16(level))<<packLevelShift |
		seq&0xffffffff
}

func unpack(w uint64) (seq32 uint64, k Kind, level int) {
	return w & 0xffffffff, Kind(w >> packKindShift & 0xff), int(uint16(w >> packLevelShift))
}

// ring is one process's event buffer plus its owner-private span state.
// Only the owning goroutine writes; snapshotting goroutines read the
// atomics. The trailing pad keeps neighbouring rings' hot words (head,
// span state) off each other's cache lines, mirroring the arena's
// home-stripe discipline.
type ring struct {
	head  atomic.Uint64 // events ever emitted by this process
	slots []slot

	// Owner-private state (no concurrent readers).
	lastTS     int64
	open       bool  // a passage is in flight
	crashed    bool  // a crash happened since the last completed passage
	curPhase   Kind  // current profile phase (0 = none)
	phaseStart int64 // TS at which curPhase began
	curLevel   int   // level of curPhase
	deepest    int   // deepest level this passage has reached

	prof *procProfile

	_ [8]uint64
}

// Recorder captures flight events for the n processes of one lock.
// Construct it with NewRecorder; rme.Mutex drives it when the WithTracing
// option is set. All emit methods must be called from the goroutine
// currently impersonating the process; Snapshot and Profile may be called
// from any goroutine at any time.
type Recorder struct {
	n       int
	size    int // ring capacity (power of two)
	mask    uint64
	enabled atomic.Bool
	epoch   time.Time
	rings   []ring
}

// DefaultRingSize is the per-process ring capacity used when the caller
// does not choose one.
const DefaultRingSize = 1024

// NewRecorder returns an enabled recorder for n processes with the given
// per-process ring capacity (rounded up to a power of two; values < 2
// select DefaultRingSize).
func NewRecorder(n, ringSize int) *Recorder {
	if n < 1 {
		panic(fmt.Sprintf("flight: NewRecorder n = %d", n))
	}
	if ringSize < 2 {
		ringSize = DefaultRingSize
	}
	size := 1
	for size < ringSize {
		size <<= 1
	}
	r := &Recorder{
		n:     n,
		size:  size,
		mask:  uint64(size - 1),
		epoch: time.Now(),
		rings: make([]ring, n),
	}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, size)
		r.rings[i].prof = newProcProfile()
	}
	r.enabled.Store(true)
	return r
}

// N returns the process count.
func (r *Recorder) N() int { return r.n }

// RingSize returns the per-process ring capacity in events.
func (r *Recorder) RingSize() int { return r.size }

// SetEnabled starts or stops recording. Disabling mid-passage is safe:
// events are simply not emitted while disabled, and the next passage
// boundary resets the phase-span state. The recorder-off cost at every
// emit site is this flag's atomic load.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether recording is active.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

func (r *Recorder) ring(pid int) *ring {
	if pid < 0 || pid >= r.n {
		panic(fmt.Sprintf("flight: pid %d out of range [0,%d)", pid, r.n))
	}
	return &r.rings[pid]
}

// now returns the recorder-relative timestamp for pid, strictly greater
// than any timestamp previously returned for the same process (the
// monotonic clock may be coarser than one event).
func (r *Recorder) now(rg *ring) int64 {
	ts := time.Since(r.epoch).Nanoseconds()
	if ts <= rg.lastTS {
		ts = rg.lastTS + 1
	}
	rg.lastTS = ts
	return ts
}

// emit publishes one event into pid's ring. See the package comment for
// the seqlock publication protocol.
func (rg *ring) emit(mask uint64, ts int64, k Kind, level int) {
	h := rg.head.Load() // the owner is the only writer of head
	s := &rg.slots[h&mask]
	s.packed.Store(0)
	s.ts.Store(uint64(ts))
	s.packed.Store(pack(h, k, level))
	rg.head.Store(h + 1)
}

// closePhase records the latency of the current profile span, if any.
func (rg *ring) closePhase(ts int64) {
	if rg.curPhase != 0 {
		rg.prof.record(rg.curPhase, rg.curLevel, ts-rg.phaseStart)
		rg.curPhase = 0
	}
}

// startPhase opens a profile span of kind k at level lvl.
func (rg *ring) startPhase(ts int64, k Kind, lvl int) {
	rg.closePhase(ts)
	rg.curPhase, rg.curLevel, rg.phaseStart = k, lvl, ts
	if lvl > rg.deepest {
		rg.deepest = lvl
	}
}

// PassageBegin marks the start of a passage (the Recover segment). If a
// prior crash is pending a KindRecover event follows the begin event.
func (r *Recorder) PassageBegin(pid int) {
	if !r.enabled.Load() {
		return
	}
	rg := r.ring(pid)
	ts := r.now(rg)
	rg.curPhase = 0 // a dangling span (crash, disable window) never closes
	rg.open = true
	rg.deepest = 1
	rg.emit(r.mask, ts, KindPassageBegin, 0)
	if rg.crashed {
		rg.crashed = false
		rg.emit(r.mask, r.now(rg), KindRecover, 0)
	}
}

// Phase marks a SALock pipeline transition at the 1-based level lvl.
// k must be one of the phase kinds.
func (r *Recorder) Phase(pid int, k Kind, lvl int) {
	if !r.enabled.Load() {
		return
	}
	if !k.IsPhase() {
		panic(fmt.Sprintf("flight: Phase(%v) is not a phase kind", k))
	}
	rg := r.ring(pid)
	ts := r.now(rg)
	rg.startPhase(ts, k, lvl)
	rg.emit(r.mask, ts, k, lvl)
}

// CSEnter marks completion of Enter. The critical-section span is
// attributed to the deepest level the passage reached.
func (r *Recorder) CSEnter(pid int) {
	if !r.enabled.Load() {
		return
	}
	rg := r.ring(pid)
	ts := r.now(rg)
	rg.startPhase(ts, phaseCS, rg.deepest)
	rg.emit(r.mask, ts, KindCSEnter, 0)
}

// CSExit marks the start of the Exit segment.
func (r *Recorder) CSExit(pid int) {
	if !r.enabled.Load() {
		return
	}
	rg := r.ring(pid)
	ts := r.now(rg)
	rg.startPhase(ts, phaseExit, rg.deepest)
	rg.emit(r.mask, ts, KindCSExit, 0)
}

// PassageEnd marks completion of Exit: a failure-free passage.
func (r *Recorder) PassageEnd(pid int) {
	if !r.enabled.Load() {
		return
	}
	rg := r.ring(pid)
	ts := r.now(rg)
	rg.closePhase(ts)
	rg.open = false
	rg.emit(r.mask, ts, KindPassageEnd, 0)
}

// Abort records the completion of process pid's back-out: the passage is
// closed as aborted. The current phase span is abandoned — an aborted
// span is a fragment, not a latency sample — but, unlike Crash, no
// recover is pending: the back-out left shared state consistent.
func (r *Recorder) Abort(pid int) {
	if !r.enabled.Load() {
		return
	}
	rg := r.ring(pid)
	ts := r.now(rg)
	rg.curPhase = 0
	rg.open = false
	rg.emit(r.mask, ts, KindAbort, 0)
}

// Crash records a failure of process pid. The current phase span is
// abandoned (a crashed span is a fragment, not a latency sample).
func (r *Recorder) Crash(pid int) {
	if !r.enabled.Load() {
		return
	}
	rg := r.ring(pid)
	ts := r.now(rg)
	rg.curPhase = 0
	rg.open = false
	rg.crashed = true
	rg.emit(r.mask, ts, KindCrash, 0)
}

// ObserveLabel inspects an instruction label issued by pid and records
// the events derivable from the label taxonomy (currently ":handoff").
// It is installed as the native port's label hook.
func (r *Recorder) ObserveLabel(pid int, label string) {
	if !r.enabled.Load() {
		return
	}
	if metrics.IsHandoff(label) {
		rg := r.ring(pid)
		rg.emit(r.mask, r.now(rg), KindHandoff, 0)
	}
}

// Snapshot copies every process's ring into a Recording. It may be called
// from any goroutine while recording is in flight; events overwritten
// mid-read are dropped (never torn) and counted in Dropped alongside
// events that aged out of the ring before the snapshot.
func (r *Recorder) Snapshot() *Recording {
	rec := &Recording{
		Schema:  RecordingSchema,
		N:       r.n,
		Source:  SourceNative,
		Clock:   ClockNanos,
		Dropped: make([]uint64, r.n),
		Procs:   make([][]Event, r.n),
	}
	for pid := range r.rings {
		rg := &r.rings[pid]
		h := rg.head.Load()
		lo := uint64(0)
		if h > uint64(r.size) {
			lo = h - uint64(r.size)
		}
		events := make([]Event, 0, h-lo)
		for i := lo; i < h; i++ {
			s := &rg.slots[i&r.mask]
			p1 := s.packed.Load()
			ts := s.ts.Load()
			p2 := s.packed.Load()
			if p1 != p2 || p1&packValid == 0 {
				continue // being overwritten mid-read
			}
			seq32, k, lvl := unpack(p1)
			if seq32 != i&0xffffffff {
				continue // the owner lapped this slot during the scan
			}
			events = append(events, Event{Seq: i, TS: int64(ts), Kind: k, Level: lvl})
		}
		rec.Procs[pid] = events
		rec.Dropped[pid] = h - uint64(len(events))
	}
	return rec
}

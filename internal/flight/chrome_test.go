package flight

import (
	"encoding/json"
	"testing"
)

func chromeFixture(t *testing.T) *Recording {
	t.Helper()
	r := NewRecorder(2, 64)
	drive(r, 0)
	r.PassageBegin(1)
	r.Phase(1, KindPhaseFilter, 1)
	r.ObserveLabel(1, "F1:handoff")
	r.Crash(1)
	r.PassageBegin(1)
	r.Phase(1, KindPhaseFilter, 1) // unterminated: passage still in flight
	return r.Snapshot()
}

func TestChromeTraceStructure(t *testing.T) {
	rec := chromeFixture(t)
	tr, err := Chrome(rec)
	if err != nil {
		t.Fatalf("Chrome: %v", err)
	}
	var (
		spans, instants, meta int
		names                 = map[string]int{}
	)
	for _, ev := range tr.TraceEvents {
		names[ev.Name]++
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Errorf("span %q has negative duration %v", ev.Name, ev.Dur)
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Errorf("instant %q scope = %q, want thread", ev.Name, ev.S)
			}
		case "M":
			meta++
		default:
			t.Errorf("unknown trace phase %q", ev.Ph)
		}
		if ev.PID != chromePID {
			t.Errorf("event %q pid = %d", ev.Name, ev.PID)
		}
		if ev.TS < 0 {
			t.Errorf("event %q ts = %v", ev.Name, ev.TS)
		}
	}
	// p0's complete fast passage: passage + filter + splitter + fast +
	// arbitrator + cs + exit spans.
	if spans != 7 {
		t.Errorf("spans = %d, want 7 (p1's unterminated spans must be dropped)", spans)
	}
	// p1: handoff + crash + recover instants.
	if instants != 3 {
		t.Errorf("instants = %d, want 3", instants)
	}
	// process_name plus one thread_name per process.
	if meta != 3 {
		t.Errorf("metadata events = %d, want 3", meta)
	}
	for _, want := range []string{"passage", "filter", "splitter", "fast",
		"arbitrator", "cs", "exit", "crash", "recover", "handoff"} {
		if names[want] == 0 {
			t.Errorf("no %q event in trace", want)
		}
	}
}

// TestChromeTraceSchema validates the JSON against the trace-event
// format's required shape: a traceEvents array whose entries all carry
// name/ph/ts/pid/tid, with dur on complete events.
func TestChromeTraceSchema(t *testing.T) {
	tr, err := Chrome(chromeFixture(t))
	if err != nil {
		t.Fatalf("Chrome: %v", err)
	}
	data, err := tr.MarshalIndent()
	if err != nil {
		t.Fatalf("MarshalIndent: %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace.json is not a JSON object: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("trace.json lacks traceEvents")
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(doc["traceEvents"], &events); err != nil {
		t.Fatalf("traceEvents is not an array of objects: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("traceEvents is empty")
	}
	for i, ev := range events {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event %d lacks required field %q", i, field)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatalf("event %d ph: %v", i, err)
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event %d lacks dur", i)
			}
			fallthrough
		case "i":
			if _, ok := ev["ts"]; !ok {
				t.Errorf("event %d lacks ts", i)
			}
		case "M":
			// metadata: args.name required
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev["args"], &args); err != nil || args.Name == "" {
				t.Errorf("metadata event %d lacks args.name", i)
			}
		default:
			t.Errorf("event %d has unexpected ph %q", i, ph)
		}
	}
}

func TestChromeStepsClock(t *testing.T) {
	rec := &Recording{
		Schema: RecordingSchema, N: 1, Source: SourceSim, Clock: ClockSteps,
		Dropped: []uint64{0},
		Procs: [][]Event{{
			{Seq: 0, TS: 10, Kind: KindPassageBegin},
			{Seq: 1, TS: 12, Kind: KindCSEnter},
			{Seq: 2, TS: 15, Kind: KindCSExit},
			{Seq: 3, TS: 20, Kind: KindPassageEnd},
		}},
	}
	tr, err := Chrome(rec)
	if err != nil {
		t.Fatalf("Chrome: %v", err)
	}
	for _, ev := range tr.TraceEvents {
		if ev.Name == "passage" {
			if ev.TS != 10 || ev.Dur != 10 {
				t.Errorf("steps clock passage = ts %v dur %v, want 10/10 (1 step = 1 µs)", ev.TS, ev.Dur)
			}
			return
		}
	}
	t.Fatal("no passage span emitted")
}

func TestChromeRejectsInvalidRecording(t *testing.T) {
	if _, err := Chrome(&Recording{Schema: "bogus"}); err == nil {
		t.Error("Chrome accepted an invalid recording")
	}
}

package flight

// Chrome trace-event conversion: turns a Recording into the JSON object
// format understood by chrome://tracing and by Perfetto's legacy importer
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Each rme process becomes a thread of a single synthetic "rme" process;
// passages, SALock phases, and critical sections become complete ("X")
// duration events nested by Perfetto's stack builder, while crash,
// recover, and handoff become thread-scoped instant ("i") events.

import (
	"encoding/json"
	"fmt"
)

// ChromeEvent is one entry of the trace-event array. Fields follow the
// trace-event format's wire names; Dur and Args are optional by phase.
type ChromeEvent struct {
	Name string `json:"name"`
	// Ph is the event phase: "X" complete, "i" instant, "M" metadata.
	Ph  string  `json:"ph"`
	TS  float64 `json:"ts"`            // microseconds
	Dur float64 `json:"dur,omitempty"` // microseconds, "X" only
	PID int     `json:"pid"`
	TID int     `json:"tid"`
	// S is the instant-event scope ("t" = thread), set for "i" events.
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
	Cat  string         `json:"cat,omitempty"`
}

// ChromeTrace is the top-level trace.json object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromePID is the synthetic process id grouping all rme threads.
const chromePID = 1

// toMicros converts a recording timestamp to trace microseconds. For the
// steps clock one scheduler step is rendered as one microsecond, which
// keeps logical traces readable at Perfetto's default zoom.
func toMicros(rec *Recording, ts int64) float64 {
	if rec.Clock == ClockSteps {
		return float64(ts)
	}
	return float64(ts) / 1e3
}

// openSpan tracks an unterminated "X" event under construction.
type openSpan struct {
	name  string
	cat   string
	start int64
	args  map[string]any
}

// Chrome converts a validated recording to a Chrome trace. Spans that
// never terminate inside the recorded window (e.g. the ring aged out the
// closing event) are dropped rather than emitted with a guessed duration,
// so every produced event is well-formed.
func Chrome(rec *Recording) (*ChromeTrace, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	tr := &ChromeTrace{DisplayTimeUnit: "ns", TraceEvents: []ChromeEvent{}}
	tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": fmt.Sprintf("rme (%s clock)", rec.Clock)},
	})
	for pid, events := range rec.Procs {
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: pid,
			Args: map[string]any{"name": fmt.Sprintf("p%d", pid)},
		})
		var passage, phase, cs *openSpan
		closeSpan := func(sp **openSpan, end int64) {
			if *sp == nil {
				return
			}
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: (*sp).name, Ph: "X", Cat: (*sp).cat,
				TS:  toMicros(rec, (*sp).start),
				Dur: toMicros(rec, end) - toMicros(rec, (*sp).start),
				PID: chromePID, TID: pid, Args: (*sp).args,
			})
			*sp = nil
		}
		instant := func(name string, ts int64) {
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: name, Ph: "i", Cat: "flight", S: "t",
				TS: toMicros(rec, ts), PID: chromePID, TID: pid,
			})
		}
		abandon := func() { passage, phase, cs = nil, nil, nil }
		for _, ev := range events {
			switch {
			case ev.Kind == KindPassageBegin:
				abandon() // previous end event may have aged out
				passage = &openSpan{name: "passage", cat: "passage", start: ev.TS}
			case ev.Kind == KindRecover:
				instant("recover", ev.TS)
			case ev.Kind.IsPhase():
				closeSpan(&phase, ev.TS)
				phase = &openSpan{
					name: ev.Kind.String(), cat: "phase", start: ev.TS,
					args: map[string]any{"level": ev.Level},
				}
			case ev.Kind == KindCSEnter:
				closeSpan(&phase, ev.TS)
				cs = &openSpan{name: "cs", cat: "cs", start: ev.TS}
			case ev.Kind == KindCSExit:
				closeSpan(&cs, ev.TS)
				phase = &openSpan{name: "exit", cat: "phase", start: ev.TS}
			case ev.Kind == KindPassageEnd:
				closeSpan(&phase, ev.TS)
				closeSpan(&cs, ev.TS)
				closeSpan(&passage, ev.TS)
			case ev.Kind == KindCrash:
				instant("crash", ev.TS)
				abandon()
			case ev.Kind == KindHandoff:
				instant("handoff", ev.TS)
			}
		}
	}
	return tr, nil
}

// MarshalIndent renders the trace as indented JSON ready to load into
// chrome://tracing or ui.perfetto.dev.
func (tr *ChromeTrace) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// RecordingSchema identifies the on-disk recording format.
const RecordingSchema = "rme-flight/v1"

// Recording sources: a native-backend flight recorder, or a conversion
// from a simulator run's event history.
const (
	SourceNative = "native"
	SourceSim    = "sim"
)

// Recording clocks: nanoseconds since the recorder epoch, or logical
// scheduler steps (simulator conversions).
const (
	ClockNanos = "ns"
	ClockSteps = "steps"
)

// Recording is a dumped flight recording: one event stream per process,
// each strictly ordered by (Seq, TS). It is the interchange format between
// the recorder (or the sim converter), cmd/soak post-mortem dumps, and
// cmd/rmetrace.
type Recording struct {
	Schema string `json:"schema"`
	N      int    `json:"n"`
	// Source is "native" or "sim"; Clock is "ns" or "steps".
	Source string `json:"source"`
	Clock  string `json:"clock"`
	// Note is free-form context (e.g. the soak violation that triggered
	// the dump).
	Note string `json:"note,omitempty"`
	// Dropped[p] counts process p's events that are not in Procs[p]:
	// aged out of the ring before the snapshot, or skipped mid-overwrite.
	Dropped []uint64 `json:"dropped"`
	// Procs[p] is process p's surviving event stream, oldest first.
	Procs [][]Event `json:"procs"`
}

// Validate checks the structural invariants rmetrace and the renderers
// rely on: schema/source/clock tags, per-process stream shapes, strictly
// increasing Seq and TS, and known kinds.
func (rec *Recording) Validate() error {
	if rec.Schema != RecordingSchema {
		return fmt.Errorf("flight: schema %q, want %q", rec.Schema, RecordingSchema)
	}
	if rec.Source != SourceNative && rec.Source != SourceSim {
		return fmt.Errorf("flight: unknown source %q", rec.Source)
	}
	if rec.Clock != ClockNanos && rec.Clock != ClockSteps {
		return fmt.Errorf("flight: unknown clock %q", rec.Clock)
	}
	if rec.N < 1 || len(rec.Procs) != rec.N || len(rec.Dropped) != rec.N {
		return fmt.Errorf("flight: n=%d with %d proc streams and %d dropped counters",
			rec.N, len(rec.Procs), len(rec.Dropped))
	}
	for pid, events := range rec.Procs {
		for i, ev := range events {
			if ev.Kind < 1 || ev.Kind > kindMax {
				return fmt.Errorf("flight: p%d event %d has unknown kind %d", pid, i, ev.Kind)
			}
			if i > 0 {
				if ev.Seq <= events[i-1].Seq {
					return fmt.Errorf("flight: p%d seq not increasing at event %d (%d after %d)",
						pid, i, ev.Seq, events[i-1].Seq)
				}
				if ev.TS <= events[i-1].TS {
					return fmt.Errorf("flight: p%d timestamps not strictly monotone at event %d (%d after %d)",
						pid, i, ev.TS, events[i-1].TS)
				}
			}
		}
	}
	return nil
}

// Tail returns a copy of the recording trimmed to at most n events per
// process (the most recent ones), adjusting Dropped accordingly. n <= 0
// returns the recording unchanged.
func (rec *Recording) Tail(n int) *Recording {
	if n <= 0 {
		return rec
	}
	out := *rec
	out.Dropped = append([]uint64(nil), rec.Dropped...)
	out.Procs = make([][]Event, len(rec.Procs))
	for pid, events := range rec.Procs {
		if cut := len(events) - n; cut > 0 {
			events = events[cut:]
			out.Dropped[pid] += uint64(cut)
		}
		out.Procs[pid] = append([]Event(nil), events...)
	}
	return &out
}

// Events returns the total event count across all processes.
func (rec *Recording) Events() int {
	total := 0
	for _, events := range rec.Procs {
		total += len(events)
	}
	return total
}

// MarshalJSON renders the kind as its string name ("passage-begin", ...)
// so dumps are greppable without the Go source at hand.
func (e Event) MarshalJSON() ([]byte, error) {
	type wire struct {
		Seq   uint64 `json:"seq"`
		TS    int64  `json:"ts"`
		Kind  string `json:"kind"`
		Level int    `json:"level,omitempty"`
	}
	return json.Marshal(wire{e.Seq, e.TS, e.Kind.String(), e.Level})
}

// UnmarshalJSON inverts MarshalJSON.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w struct {
		Seq   uint64 `json:"seq"`
		TS    int64  `json:"ts"`
		Kind  string `json:"kind"`
		Level int    `json:"level"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	k, ok := KindFromString(w.Kind)
	if !ok {
		return fmt.Errorf("flight: unknown event kind %q", w.Kind)
	}
	*e = Event{Seq: w.Seq, TS: w.TS, Kind: k, Level: w.Level}
	return nil
}

// marshal validates and renders the recording as indented JSON with a
// trailing newline — the exact bytes WriteFile and WriteTo emit.
func (rec *Recording) marshal() ([]byte, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteTo streams the recording to w in the same validated JSON form as
// WriteFile; HTTP handlers serve dumps through it without a temp file.
func (rec *Recording) WriteTo(w io.Writer) (int64, error) {
	data, err := rec.marshal()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// WriteFile writes the recording as indented JSON.
func (rec *Recording) WriteFile(path string) error {
	data, err := rec.marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile reads and validates a recording written by WriteFile.
func ReadFile(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Recording
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("flight: parsing %s: %w", path, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("flight: %s: %w", path, err)
	}
	return &rec, nil
}

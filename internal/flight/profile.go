package flight

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"rme/internal/metrics"
)

// Profile phases. The five SALock pipeline phases reuse their event kinds;
// the critical-section and exit spans are profile-only pseudo-phases (they
// are bounded by CSEnter/CSExit/PassageEnd events, not phase events).
const (
	phaseCS   Kind = kindMax + 1
	phaseExit Kind = kindMax + 2
)

// profilePhases enumerates every profiled span kind in display order.
var profilePhases = [numProfilePhases]Kind{
	KindPhaseFilter, KindPhaseSplitter, KindPhaseFast,
	KindPhaseCore, KindPhaseArbitrator, phaseCS, phaseExit,
}

const numProfilePhases = 7

func phaseName(k Kind) string {
	switch k {
	case phaseCS:
		return "cs"
	case phaseExit:
		return "exit"
	default:
		return k.String()
	}
}

func phaseIndex(k Kind) int {
	for i, p := range profilePhases {
		if p == k {
			return i
		}
	}
	panic(fmt.Sprintf("flight: %v is not a profiled phase", k))
}

// profileBuckets is the number of log2 latency buckets: bucket i holds
// durations d with bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i). 64
// buckets cover every possible int64 nanosecond duration.
const profileBuckets = 64

// procProfile is one process's phase-latency accumulator. The owning
// process adds samples; Profile() reads the atomics from any goroutine.
// A sample that straddles a snapshot can at worst be counted with its sum
// not yet added (or vice versa) for one reading — quantiles come from the
// bucket counts alone, so they are never torn.
type procProfile struct {
	counts [numProfilePhases][metrics.MaxLevels][profileBuckets]atomic.Uint64
	sums   [numProfilePhases][metrics.MaxLevels]atomic.Uint64
}

func newProcProfile() *procProfile { return &procProfile{} }

// record adds one span sample of d nanoseconds (or scheduler steps) for
// phase k at 1-based level lvl.
func (pp *procProfile) record(k Kind, lvl int, d int64) {
	if d < 0 {
		d = 0
	}
	if lvl < 1 {
		lvl = 1
	}
	if lvl > metrics.MaxLevels {
		lvl = metrics.MaxLevels
	}
	pi := phaseIndex(k)
	pp.counts[pi][lvl-1][bits.Len64(uint64(d))].Add(1)
	pp.sums[pi][lvl-1].Add(uint64(d))
}

// PhaseStats summarizes the latency distribution of one (phase, level)
// pair. Quantiles are lower bounds of log2 buckets, so they are exact to
// within a factor of two — enough to separate "tens of nanoseconds" from
// "a preemption happened".
type PhaseStats struct {
	// Phase is the span name: filter, splitter, fast, core, arbitrator,
	// cs, or exit.
	Phase string `json:"phase"`
	// Level is the 1-based BA-Lock level the span was attributed to.
	Level int `json:"level"`
	// Count is the number of completed spans (crashed spans are not
	// samples).
	Count uint64 `json:"count"`
	// P50NS and P99NS are log2-bucket lower-bound quantiles in
	// nanoseconds.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// MeanNS is the exact arithmetic mean in nanoseconds.
	MeanNS float64 `json:"mean_ns"`
}

// Profile is the phase-latency companion to metrics.Snapshot: where the
// metrics recorder counts RMRs exactly, the profile answers "where did
// passages spend wall-clock time, per phase and per escalation level".
type Profile struct {
	// Phases holds one entry per (phase, level) pair with at least one
	// sample, ordered by pipeline position then level.
	Phases []PhaseStats `json:"phases"`
}

// quantile returns the lower bound of the bucket containing the q-th
// sample quantile (0 < q <= 1) of a log2 bucket histogram.
func quantile(buckets *[profileBuckets]uint64, total uint64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range buckets {
		seen += c
		if seen > rank {
			if i <= 1 {
				return 0 // bucket 0 = d==0, bucket 1 = d==1
			}
			return int64(1) << (i - 1)
		}
	}
	return 0
}

// Profile aggregates every process's phase-latency histograms into a
// Profile. It may be called at any time, including while recording.
func (r *Recorder) Profile() Profile {
	var out Profile
	for pi, ph := range profilePhases {
		for lvl := 0; lvl < metrics.MaxLevels; lvl++ {
			var merged [profileBuckets]uint64
			var total, sum uint64
			for p := range r.rings {
				pp := r.rings[p].prof
				for b := 0; b < profileBuckets; b++ {
					c := pp.counts[pi][lvl][b].Load()
					merged[b] += c
					total += c
				}
				sum += pp.sums[pi][lvl].Load()
			}
			if total == 0 {
				continue
			}
			out.Phases = append(out.Phases, PhaseStats{
				Phase:  phaseName(ph),
				Level:  lvl + 1,
				Count:  total,
				P50NS:  quantile(&merged, total, 0.50),
				P99NS:  quantile(&merged, total, 0.99),
				MeanNS: float64(sum) / float64(total),
			})
		}
	}
	return out
}

// String renders the profile as an aligned table, one row per
// (phase, level) pair.
func (pr Profile) String() string {
	if len(pr.Phases) == 0 {
		return "(no samples)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %5s %10s %12s %12s %12s\n",
		"phase", "level", "count", "p50_ns", "p99_ns", "mean_ns")
	rows := append([]PhaseStats(nil), pr.Phases...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Phase != rows[j].Phase {
			return phaseOrder(rows[i].Phase) < phaseOrder(rows[j].Phase)
		}
		return rows[i].Level < rows[j].Level
	})
	for _, s := range rows {
		fmt.Fprintf(&b, "%-10s %5d %10d %12d %12d %12.1f\n",
			s.Phase, s.Level, s.Count, s.P50NS, s.P99NS, s.MeanNS)
	}
	return strings.TrimRight(b.String(), "\n")
}

func phaseOrder(name string) int {
	for i, p := range profilePhases {
		if phaseName(p) == name {
			return i
		}
	}
	return len(profilePhases)
}

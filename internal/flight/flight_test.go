package flight

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// drive runs one synthetic fast-path passage for pid.
func drive(r *Recorder, pid int) {
	r.PassageBegin(pid)
	r.Phase(pid, KindPhaseFilter, 1)
	r.Phase(pid, KindPhaseSplitter, 1)
	r.Phase(pid, KindPhaseFast, 1)
	r.Phase(pid, KindPhaseArbitrator, 1)
	r.CSEnter(pid)
	r.CSExit(pid)
	r.PassageEnd(pid)
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(2, 64)
	drive(r, 0)
	r.PassageBegin(1)
	r.Phase(1, KindPhaseFilter, 1)
	r.Crash(1)
	r.PassageBegin(1) // recovery passage

	rec := r.Snapshot()
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantP0 := []Kind{KindPassageBegin, KindPhaseFilter, KindPhaseSplitter,
		KindPhaseFast, KindPhaseArbitrator, KindCSEnter, KindCSExit, KindPassageEnd}
	if got := kinds(rec.Procs[0]); !equalKinds(got, wantP0) {
		t.Errorf("p0 kinds = %v, want %v", got, wantP0)
	}
	wantP1 := []Kind{KindPassageBegin, KindPhaseFilter, KindCrash,
		KindPassageBegin, KindRecover}
	if got := kinds(rec.Procs[1]); !equalKinds(got, wantP1) {
		t.Errorf("p1 kinds = %v, want %v", got, wantP1)
	}
	if rec.Dropped[0] != 0 || rec.Dropped[1] != 0 {
		t.Errorf("dropped = %v, want zeros", rec.Dropped)
	}
}

func kinds(events []Event) []Kind {
	out := make([]Kind, len(events))
	for i, ev := range events {
		out[i] = ev.Kind
	}
	return out
}

func equalKinds(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecorderRingOverwriteCountsDropped(t *testing.T) {
	r := NewRecorder(1, 4) // tiny ring: 4 slots
	for i := 0; i < 10; i++ {
		drive(r, 0) // 8 events per passage
	}
	rec := r.Snapshot()
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(rec.Procs[0]) != 4 {
		t.Errorf("kept %d events, want ring size 4", len(rec.Procs[0]))
	}
	if rec.Dropped[0] != 80-4 {
		t.Errorf("dropped = %d, want %d", rec.Dropped[0], 80-4)
	}
	// The survivors are the newest events, with their lifetime Seq.
	if rec.Procs[0][len(rec.Procs[0])-1].Seq != 79 {
		t.Errorf("last seq = %d, want 79", rec.Procs[0][len(rec.Procs[0])-1].Seq)
	}
}

func TestRecorderDisabledEmitsNothing(t *testing.T) {
	r := NewRecorder(1, 16)
	r.SetEnabled(false)
	if r.Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	drive(r, 0)
	if got := r.Snapshot().Events(); got != 0 {
		t.Errorf("%d events recorded while disabled", got)
	}
	r.SetEnabled(true)
	drive(r, 0)
	if got := r.Snapshot().Events(); got != 8 {
		t.Errorf("%d events after re-enable, want 8", got)
	}
}

func TestRecorderCrashAbandonsPhaseSample(t *testing.T) {
	r := NewRecorder(1, 32)
	r.PassageBegin(0)
	r.Phase(0, KindPhaseFilter, 1)
	r.Crash(0)
	for _, s := range r.Profile().Phases {
		if s.Phase == "filter" {
			t.Errorf("crashed filter span became a sample: %+v", s)
		}
	}
	drive(r, 0)
	prof := r.Profile()
	var phases []string
	for _, s := range prof.Phases {
		phases = append(phases, s.Phase)
		if s.Count != 1 {
			t.Errorf("%s count = %d, want 1", s.Phase, s.Count)
		}
		if s.Level != 1 {
			t.Errorf("%s level = %d, want 1", s.Phase, s.Level)
		}
	}
	want := []string{"filter", "splitter", "fast", "arbitrator", "cs", "exit"}
	if len(phases) != len(want) {
		t.Fatalf("profile phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("profile phases = %v, want %v", phases, want)
		}
	}
	if prof.String() == "(no samples)" {
		t.Error("String() reported no samples")
	}
}

func TestProfileQuantiles(t *testing.T) {
	pp := newProcProfile()
	// 99 samples at ~16ns (bucket lower bound 8), 1 at ~2^20.
	for i := 0; i < 99; i++ {
		pp.record(KindPhaseFilter, 1, 16)
	}
	pp.record(KindPhaseFilter, 1, 1<<20)
	r := NewRecorder(1, 2)
	r.rings[0].prof = pp
	prof := r.Profile()
	if len(prof.Phases) != 1 {
		t.Fatalf("phases = %+v", prof.Phases)
	}
	s := prof.Phases[0]
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.P50NS != 16 {
		t.Errorf("p50 = %d, want 16 (log2 bucket lower bound)", s.P50NS)
	}
	if s.P99NS != 1<<20 {
		t.Errorf("p99 = %d, want %d", s.P99NS, 1<<20)
	}
	wantMean := (99*16.0 + float64(uint64(1)<<20)) / 100
	if s.MeanNS != wantMean {
		t.Errorf("mean = %v, want %v", s.MeanNS, wantMean)
	}
}

func TestRecordingWriteReadFile(t *testing.T) {
	r := NewRecorder(2, 32)
	drive(r, 0)
	r.PassageBegin(1)
	r.Crash(1)
	rec := r.Snapshot()
	rec.Note = "test dump"

	path := filepath.Join(t.TempDir(), "flight.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Note != "test dump" || got.N != 2 || got.Source != SourceNative || got.Clock != ClockNanos {
		t.Errorf("round-trip header mismatch: %+v", got)
	}
	if !equalKinds(kinds(got.Procs[0]), kinds(rec.Procs[0])) {
		t.Errorf("p0 events changed across round trip")
	}
	for pid := range rec.Procs {
		for i := range rec.Procs[pid] {
			if got.Procs[pid][i] != rec.Procs[pid][i] {
				t.Fatalf("p%d event %d: %+v != %+v", pid, i, got.Procs[pid][i], rec.Procs[pid][i])
			}
		}
	}
}

func TestRecordingWriteToMatchesWriteFile(t *testing.T) {
	r := NewRecorder(2, 32)
	drive(r, 0)
	rec := r.Snapshot()

	path := filepath.Join(t.TempDir(), "flight.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) || !bytes.Equal(buf.Bytes(), onDisk) {
		t.Fatalf("WriteTo wrote %d bytes that differ from WriteFile's %d", n, len(onDisk))
	}
	// WriteTo validates before emitting anything.
	bad := &Recording{Schema: "bogus"}
	if _, err := bad.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo accepted an invalid recording")
	}
}

func TestRecordingValidateRejectsCorruption(t *testing.T) {
	mk := func() *Recording {
		r := NewRecorder(1, 16)
		drive(r, 0)
		return r.Snapshot()
	}
	cases := []struct {
		name   string
		break_ func(*Recording)
	}{
		{"schema", func(rec *Recording) { rec.Schema = "bogus" }},
		{"source", func(rec *Recording) { rec.Source = "martian" }},
		{"clock", func(rec *Recording) { rec.Clock = "furlongs" }},
		{"shape", func(rec *Recording) { rec.Dropped = nil }},
		{"kind", func(rec *Recording) { rec.Procs[0][0].Kind = 99 }},
		{"seq", func(rec *Recording) { rec.Procs[0][1].Seq = rec.Procs[0][0].Seq }},
		{"ts", func(rec *Recording) { rec.Procs[0][1].TS = rec.Procs[0][0].TS }},
	}
	for _, tc := range cases {
		rec := mk()
		tc.break_(rec)
		if err := rec.Validate(); err == nil {
			t.Errorf("%s corruption passed Validate", tc.name)
		}
	}
}

func TestRecordingTail(t *testing.T) {
	r := NewRecorder(2, 64)
	drive(r, 0)
	drive(r, 0) // 16 events on p0
	drive(r, 1) // 8 on p1
	rec := r.Snapshot()
	tail := rec.Tail(10)
	if got := len(tail.Procs[0]); got != 10 {
		t.Errorf("p0 tail = %d events, want 10", got)
	}
	if got := len(tail.Procs[1]); got != 8 {
		t.Errorf("p1 tail = %d events, want 8 (untrimmed)", got)
	}
	if tail.Dropped[0] != 6 || tail.Dropped[1] != 0 {
		t.Errorf("tail dropped = %v, want [6 0]", tail.Dropped)
	}
	if err := tail.Validate(); err != nil {
		t.Errorf("tail Validate: %v", err)
	}
	// The original is untouched, and Tail(0) is the identity.
	if len(rec.Procs[0]) != 16 || rec.Dropped[0] != 0 {
		t.Error("Tail mutated its receiver")
	}
	if rec.Tail(0) != rec {
		t.Error("Tail(0) copied")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(1); k <= kindMax; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Error("KindFromString accepted nonsense")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty String")
	}
}

// TestRaceStressSnapshotTearFreedom is the acceptance-criterion stress:
// every process records passages flat out while snapshotters race them;
// every snapshot must validate (strictly monotone per-process timestamps,
// increasing seqs, known kinds) — i.e. no torn event ever survives.
// Run with -race.
func TestRaceStressSnapshotTearFreedom(t *testing.T) {
	const (
		procs     = 4
		passages  = 400
		snapshots = 50
		ringSlots = 64 // small ring: constant overwriting under the readers
	)
	r := NewRecorder(procs, ringSlots)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < passages; i++ {
				drive(r, pid)
				if i%16 == 0 {
					r.PassageBegin(pid)
					r.Crash(pid)
				}
			}
		}(pid)
	}
	errs := make(chan error, snapshots)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshots; i++ {
			rec := r.Snapshot()
			if err := rec.Validate(); err != nil {
				errs <- err
				return
			}
			_ = r.Profile()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent snapshot: %v", err)
	}
	// Quiescent final snapshot: nothing in flight, so nothing may be torn
	// and only ring aging may account for drops.
	rec := r.Snapshot()
	if err := rec.Validate(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	for pid, events := range rec.Procs {
		if len(events) != ringSlots {
			t.Errorf("p%d kept %d events at quiescence, want full ring %d",
				pid, len(events), ringSlots)
		}
	}
}

package check

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rme/internal/core"
	"rme/internal/grlock"
	"rme/internal/memory"
	"rme/internal/sim"
)

func wr(sp memory.Space, n int) sim.Lock { return core.NewWRLock(sp, n, "wr", nil) }

func tournament(sp memory.Space, n int) sim.Lock { return grlock.NewTournament(sp, n) }

func ba(sp memory.Space, n int) sim.Lock {
	return core.NewBALock(sp, n, core.DefaultLevels(n),
		func(sp memory.Space, n int) core.RecoverableLock { return grlock.NewTournament(sp, n) }, nil)
}

func mustRun(t *testing.T, cfg sim.Config, f sim.Factory) *sim.Result {
	t.Helper()
	r, err := sim.New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: 5, End: 10}
	for _, tt := range []struct {
		t    int64
		want bool
	}{{4, false}, {5, true}, {7, true}, {10, true}, {11, false}} {
		if got := iv.Contains(tt.t); got != tt.want {
			t.Errorf("Contains(%d) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestStrongBatteryOnTournament(t *testing.T) {
	plan := &sim.RandomFailures{Rate: 0.01, MaxTotal: 6, DuringPassage: true}
	res := mustRun(t, sim.Config{N: 6, Model: memory.CC, Requests: 3, Seed: 2, Plan: plan,
		MaxSteps: 5_000_000}, tournament)
	if err := Strong(res, 500); err != nil {
		t.Fatal(err)
	}
}

func TestWeakBatteryOnWRLock(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		plan := &sim.RandomFailures{Rate: 0.02, MaxTotal: 8, DuringPassage: true}
		res := mustRun(t, sim.Config{N: 8, Model: memory.DSM, Requests: 3, Seed: seed, Plan: plan}, wr)
		if err := Weak(res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestResponsivenessCatchesBrokenLock(t *testing.T) {
	// A lock with no synchronization violates responsiveness (overlap
	// without any failures).
	res := mustRun(t, sim.Config{N: 4, Model: memory.CC, Requests: 10, Seed: 3, CSOps: 5}, noLockFactory)
	if res.MaxCSOverlap < 2 {
		t.Skip("schedule produced no overlap; cannot exercise the checker")
	}
	if err := Responsiveness(res); err == nil {
		t.Fatal("responsiveness checker accepted an unsynchronized lock")
	}
	if err := MutualExclusion(res); err == nil {
		t.Fatal("ME checker accepted an unsynchronized lock")
	}
}

type noLock struct{ w memory.Addr }

func noLockFactory(sp memory.Space, n int) sim.Lock {
	return &noLock{w: sp.Alloc(1, memory.HomeNone)}
}

func (l *noLock) Recover(p memory.Port) {}
func (l *noLock) Enter(p memory.Port)   { p.Read(l.w) }
func (l *noLock) Exit(p memory.Port)    { p.Read(l.w) }

func TestConsequenceIntervals(t *testing.T) {
	plan := &sim.CrashAtOp{PID: 0, OpIndex: 3}
	res := mustRun(t, sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 5, Plan: plan}, wr)
	ivs := ConsequenceIntervals(res)
	if len(ivs) != 1 {
		t.Fatalf("%d intervals, want 1", len(ivs))
	}
	iv := ivs[0]
	if iv.Start != res.Crashes[0].Seq {
		t.Fatalf("interval start %d, want crash seq %d", iv.Start, res.Crashes[0].Seq)
	}
	if iv.End < iv.Start {
		t.Fatalf("inverted interval %+v", iv)
	}
	// The crashed process's own request was generated before the failure
	// and satisfied after it, so the interval must extend at least to
	// that satisfaction.
	for _, q := range res.Requests {
		if q.PID == 0 && q.Index == 0 && iv.End < q.SatSeq {
			t.Fatalf("interval ends at %d before the pending request was satisfied at %d", iv.End, q.SatSeq)
		}
	}
}

func TestSatisfactionDetectsStarvation(t *testing.T) {
	// Manufacture a truncated history: request generated, never satisfied.
	res := &sim.Result{Events: []sim.Event{
		{Seq: 1, PID: 0, Kind: sim.EvRequest, Request: 0},
		{Seq: 2, PID: 1, Kind: sim.EvRequest, Request: 0},
		{Seq: 9, PID: 1, Kind: sim.EvSatisfied, Request: 0},
	}}
	err := Satisfaction(res)
	if err == nil || !strings.Contains(err.Error(), "never satisfied") {
		t.Fatalf("err = %v", err)
	}
}

func TestBCSRChecker(t *testing.T) {
	plan := sim.PlanFunc(func(ctx sim.StepCtx) bool {
		return ctx.PID == 2 && ctx.InCS && ctx.ProcCrashes == 0
	})
	res := mustRun(t, sim.Config{N: 5, Model: memory.CC, Requests: 2, Seed: 7, Plan: plan}, tournament)
	if err := BCSR(res, 500); err != nil {
		t.Fatal(err)
	}
	// An absurdly small bound must trip the step check.
	if err := BCSR(res, 1); err == nil {
		t.Fatal("BCSR accepted a 1-op bound for a multi-op re-entry")
	}
}

func TestBCSRCheckerCatchesViolation(t *testing.T) {
	res := &sim.Result{
		Crashes: []sim.CrashStat{{PID: 0, Seq: 10, InCS: true}},
		Events: []sim.Event{
			{Seq: 10, PID: 0, Kind: sim.EvCrash},
			{Seq: 12, PID: 1, Kind: sim.EvCSEnter},
			{Seq: 20, PID: 0, Kind: sim.EvCSEnter},
		},
	}
	if err := BCSR(res, 100); err == nil {
		t.Fatal("BCSR checker missed an interloper")
	}
}

func TestBCSRAbortDischargesReentry(t *testing.T) {
	// The crashed process's recovery attempt receives an abort before
	// anyone else enters: the back-out renounces the re-entry claim, so
	// a later entry by another process is a handoff, not a violation.
	res := &sim.Result{
		Crashes: []sim.CrashStat{{PID: 0, Seq: 10, InCS: true}},
		Events: []sim.Event{
			{Seq: 10, PID: 0, Kind: sim.EvCrash},
			{Seq: 14, PID: 0, Kind: sim.EvAbort},
			{Seq: 16, PID: 1, Kind: sim.EvCSEnter}, // release lands mid-back-out
			{Seq: 18, PID: 0, Kind: sim.EvAborted},
		},
	}
	if err := BCSR(res, 100); err != nil {
		t.Fatalf("BCSR rejected an abort-discharged re-entry: %v", err)
	}
	// An abort delivered to a *different* process discharges nothing.
	res.Events[1].PID = 2
	if err := BCSR(res, 100); err == nil {
		t.Fatal("BCSR accepted an interloper after an unrelated abort")
	}
	// An abort delivered only after the interloper's entry is too late.
	res.Events[1] = sim.Event{Seq: 16, PID: 1, Kind: sim.EvCSEnter}
	res.Events[2] = sim.Event{Seq: 17, PID: 0, Kind: sim.EvAbort}
	if err := BCSR(res, 100); err == nil {
		t.Fatal("BCSR accepted an entry that preceded the abort delivery")
	}
}

func TestFCFSChecker(t *testing.T) {
	res := mustRun(t, sim.Config{N: 5, Model: memory.CC, Requests: 3, Seed: 9, RecordOps: true}, wr)
	if err := FCFS(res, "wr:fas"); err != nil {
		t.Fatal(err)
	}
	if err := FCFS(res, "nonexistent:label"); err == nil {
		t.Fatal("FCFS accepted a label that never occurs")
	}
	// FCFS refuses histories with failures.
	plan := &sim.CrashAtOp{PID: 0, OpIndex: 2}
	res2 := mustRun(t, sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 9, Plan: plan, RecordOps: true}, wr)
	if err := FCFS(res2, "wr:fas"); err == nil {
		t.Fatal("FCFS accepted a history with crashes")
	}
}

func TestMaxDepth(t *testing.T) {
	labels := []string{"F1:slow", "F2:slow", "F3:slow"}
	res := &sim.Result{Events: []sim.Event{
		{Kind: sim.EvOp, Op: memory.OpInfo{Label: "F1:slow"}},
		{Kind: sim.EvOp, Op: memory.OpInfo{Label: "F2:slow"}},
	}}
	if got := MaxDepth(res, labels); got != 3 {
		t.Fatalf("MaxDepth = %d, want 3", got)
	}
	if got := MaxDepth(&sim.Result{}, labels); got != 1 {
		t.Fatalf("empty history MaxDepth = %d, want 1", got)
	}
}

func TestMaxDepthOnBALock(t *testing.T) {
	res := mustRun(t, sim.Config{N: 8, Model: memory.CC, Requests: 3, Seed: 11, RecordOps: true}, ba)
	labels := []string{"F1:slow", "F2:slow", "F3:slow"}
	if got := MaxDepth(res, labels); got != 1 {
		t.Fatalf("failure-free BA run reached depth %d, want 1", got)
	}
}

func TestSegmentBounds(t *testing.T) {
	plan := &sim.RandomFailures{Rate: 0.01, MaxTotal: 4, DuringPassage: true}
	res := mustRun(t, sim.Config{N: 5, Model: memory.CC, Requests: 3, Seed: 6, Plan: plan,
		RecordOps: true, MaxSteps: 5_000_000}, wr)
	// WR-Lock: Recover and Exit are short straight-line code.
	if err := SegmentBounds(res, 12, 12); err != nil {
		t.Fatal(err)
	}
	// An absurd bound must trip.
	if err := SegmentBounds(res, 0, 0); err == nil {
		t.Fatal("zero bounds accepted")
	}
	// Histories without ops are rejected.
	res2 := mustRun(t, sim.Config{N: 2, Model: memory.CC, Requests: 1, Seed: 1}, wr)
	if err := SegmentBounds(res2, 100, 100); err == nil {
		t.Fatal("accepted a history without RecordOps")
	}
}

func TestViolationPropertyNames(t *testing.T) {
	if got := Property(nil); got != "" {
		t.Fatalf("Property(nil) = %q", got)
	}
	v := &Violation{Property: PropMutualExclusion, Err: errors.New("overlap at step 7")}
	if !strings.Contains(v.Error(), PropMutualExclusion) || !strings.Contains(v.Error(), "overlap") {
		t.Fatalf("Violation message: %q", v.Error())
	}
	if got := Property(fmt.Errorf("wrapped: %w", error(v))); got != PropMutualExclusion {
		t.Fatalf("Property(wrapped violation) = %q", got)
	}
	if got := Property(errors.New("anonymous failure")); got != "unknown" {
		t.Fatalf("Property(plain error) = %q", got)
	}
	if !errors.Is(v, v.Err) && errors.Unwrap(v) != v.Err {
		t.Fatal("Violation does not unwrap to its cause")
	}
}

// TestBatteriesNameViolatedProperty: the strong battery tags failures with
// the machine-readable property the repro subsystem keys on.
func TestBatteriesNameViolatedProperty(t *testing.T) {
	res := mustRun(t, sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 11}, noLockFactory)
	err := Strong(res, 1<<20)
	if err == nil {
		t.Fatal("strong battery passed a broken lock")
	}
	if got := Property(err); got != PropMutualExclusion && got != PropResponsiveness {
		t.Fatalf("violated property %q not named", got)
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("battery error %T is not a *Violation", err)
	}
}

// Package check validates the paper's correctness properties (Section 2.4,
// Section 3) against simulation histories recorded by internal/sim:
//
//   - mutual exclusion (ME) for strongly recoverable locks;
//   - responsiveness (Definition 3.5 / Theorem 4.2) for weakly recoverable
//     locks: k+1 simultaneous critical-section occupants must overlap the
//     consequence intervals (Definition 3.1) of at least k failures;
//   - bounded critical-section re-entry (BCSR);
//   - starvation freedom, observed as satisfaction of every request;
//   - FCFS in failure-free histories (via doorway instruction labels).
//
// The checkers work on the lifecycle events that every run records; only
// FCFS and escalation-depth extraction require Config.RecordOps.
package check

import (
	"errors"
	"fmt"

	"rme/internal/sim"
)

// Property names for Violation classification. internal/repro stores the
// violated property in its artifacts and Shrink preserves it, so the names
// are part of the repro format and must stay stable.
const (
	PropMutualExclusion = "mutual-exclusion"
	PropSatisfaction    = "satisfaction"
	PropBCSR            = "bcsr"
	PropResponsiveness  = "responsiveness"
	// PropStarvation classifies a run that exhausted its step budget
	// (livelock or starvation) rather than failing a history check.
	PropStarvation = "starvation"
)

// Violation wraps a check failure with the stable name of the violated
// property. The battery entry points (Strong, Weak) return Violations so
// that harnesses can classify failures without parsing messages.
type Violation struct {
	Property string
	Err      error
}

// Error implements error, prefixing the cause with the stable property
// name so printed verdicts classify themselves.
func (v *Violation) Error() string {
	return fmt.Sprintf("[%s] %s", v.Property, v.Err)
}

// Unwrap supports errors.Is/As chains.
func (v *Violation) Unwrap() error { return v.Err }

// Property returns the stable property name carried by err ("" for nil,
// "unknown" for errors that are not Violations).
func Property(err error) string {
	if err == nil {
		return ""
	}
	var v *Violation
	if errors.As(err, &v) {
		return v.Property
	}
	return "unknown"
}

// reqKey identifies one request (super-passage) of a process.
type reqKey struct {
	pid int
	idx int
}

// Interval is a half-open interval of global logical time.
type Interval struct {
	Start, End int64
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int64) bool { return iv.Start <= t && t <= iv.End }

// MutualExclusion verifies that at most one process was in its critical
// section at any time. Use it for strongly recoverable locks.
func MutualExclusion(res *sim.Result) error {
	if res.MaxCSOverlap > 1 {
		return fmt.Errorf("check: mutual exclusion violated: %d processes in CS simultaneously", res.MaxCSOverlap)
	}
	return nil
}

// Satisfaction verifies that every generated request was satisfied — the
// observable form of starvation freedom in a finite history.
func Satisfaction(res *sim.Result) error {
	gen := map[reqKey]bool{}
	for _, ev := range res.Events {
		switch ev.Kind {
		case sim.EvRequest:
			gen[reqKey{ev.PID, ev.Request}] = true
		case sim.EvSatisfied:
			delete(gen, reqKey{ev.PID, ev.Request})
		}
	}
	if len(gen) > 0 {
		return fmt.Errorf("check: %d requests generated but never satisfied", len(gen))
	}
	return nil
}

// ConsequenceIntervals computes the consequence interval of every failure
// in the history (Definition 3.1): from the failure until every request
// generated before it has been satisfied (or the history ends). Delivered
// aborts are included as failure-like events: a mid-queue back-out hands
// the filter token to its successor wait-free while the aborter may still
// be draining out, so — exactly like a crash — an abort can fragment a
// weakly recoverable filter's queue, and its disturbance window is the
// same consequence-interval formula.
func ConsequenceIntervals(res *sim.Result) []Interval {
	var last int64
	if n := len(res.Events); n > 0 {
		last = res.Events[n-1].Seq
	}
	type reqTimes struct{ gen, sat int64 }
	reqs := make([]reqTimes, 0, len(res.Requests))
	sat := make(map[reqKey]int64, len(res.Requests))
	for _, ev := range res.Events {
		if ev.Kind == sim.EvSatisfied {
			sat[reqKey{ev.PID, ev.Request}] = ev.Seq
		}
	}
	for _, ev := range res.Events {
		if ev.Kind != sim.EvRequest {
			continue
		}
		s, ok := sat[reqKey{ev.PID, ev.Request}]
		if !ok {
			s = last // unsatisfied: the interval extends to history end
		}
		reqs = append(reqs, reqTimes{gen: ev.Seq, sat: s})
	}
	interval := func(seq int64) Interval {
		end := seq
		for _, r := range reqs {
			if r.gen < seq && r.sat > end {
				end = r.sat
			}
		}
		return Interval{Start: seq, End: end}
	}
	out := make([]Interval, 0, len(res.Crashes)+len(res.Aborts))
	for _, c := range res.Crashes {
		out = append(out, interval(c.Seq))
	}
	for _, a := range res.Aborts {
		out = append(out, interval(a.Seq))
	}
	return out
}

// Responsiveness verifies Definition 3.5 (as instantiated by Theorem 4.2):
// whenever k+1 processes were in their critical sections simultaneously,
// that moment overlaps the consequence intervals of at least k
// failure-like events (crashes and delivered aborts — see
// ConsequenceIntervals for why aborts count).
func Responsiveness(res *sim.Result) error {
	ivs := ConsequenceIntervals(res)
	occ := 0
	for _, ev := range res.Events {
		switch ev.Kind {
		case sim.EvCSEnter:
			occ++
			if occ > 1 {
				k := occ - 1
				cover := 0
				for _, iv := range ivs {
					if iv.Contains(ev.Seq) {
						cover++
					}
				}
				if cover < k {
					return fmt.Errorf("check: responsiveness violated at seq %d: %d processes in CS but only %d overlapping failure consequence intervals",
						ev.Seq, occ, cover)
				}
			}
		case sim.EvCSExit:
			occ--
		case sim.EvCrash:
			// A process that crashes inside its CS leaves it.
			if inCSCrash(res, ev) {
				occ--
			}
		}
	}
	return nil
}

func inCSCrash(res *sim.Result, ev sim.Event) bool {
	for _, c := range res.Crashes {
		if c.Seq == ev.Seq {
			return c.InCS
		}
	}
	return false
}

// BCSR verifies bounded critical-section re-entry for strongly recoverable
// locks: after a process crashes inside its CS, no other process enters a
// CS before the crashed process re-enters, and the re-entry passage is
// bounded by maxOps instructions.
//
// An abortable lock adds one way to discharge the obligation: if an abort
// is delivered to the crashed process's recovery attempt (EvAbort before
// any other process's CS entry), the claim is renounced at that instant —
// the back-out releases the lock (DESIGN §15), so entries by other
// processes after delivery are ordinary handoffs, not violations, and the
// re-entry bound no longer applies to that crash. Delivery, not back-out
// completion, is the discharge point: the release lands mid-back-out, so
// a successor can legitimately enter before EvAborted closes the passage
// (and a crash during the back-out suppresses EvAborted entirely while
// still relinquishing via the persisted aborted state).
func BCSR(res *sim.Result, maxOps int64) error {
	for _, c := range res.Crashes {
		if !c.InCS {
			continue
		}
		discharged := false
		for _, ev := range res.Events {
			if ev.Seq <= c.Seq {
				continue
			}
			if ev.Kind == sim.EvAbort && ev.PID == c.PID {
				discharged = true
				break
			}
			if ev.Kind != sim.EvCSEnter {
				continue
			}
			if ev.PID != c.PID {
				return fmt.Errorf("check: BCSR violated: process %d entered CS at seq %d before crashed process %d re-entered",
					ev.PID, ev.Seq, c.PID)
			}
			break
		}
		if discharged {
			continue
		}
		for _, p := range res.Passages {
			if p.PID == c.PID && p.StartSeq > c.Seq && !p.Crashed {
				if p.Ops > maxOps {
					return fmt.Errorf("check: BCSR re-entry of process %d took %d ops, bound %d", c.PID, p.Ops, maxOps)
				}
				break
			}
		}
	}
	return nil
}

// FCFS verifies first-come-first-served order in a failure-free history:
// processes enter their critical sections in the order of their doorway
// instructions, identified by label (e.g. the queue-append FAS). Requires
// Config.RecordOps.
func FCFS(res *sim.Result, doorwayLabel string) error {
	if len(res.Crashes) > 0 {
		return fmt.Errorf("check: FCFS only applies to failure-free histories (%d crashes)", len(res.Crashes))
	}
	var doorway, entries []int
	for _, ev := range res.Events {
		switch {
		case ev.Kind == sim.EvOp && ev.Op.Label == doorwayLabel:
			doorway = append(doorway, ev.PID)
		case ev.Kind == sim.EvCSEnter:
			entries = append(entries, ev.PID)
		}
	}
	if len(doorway) == 0 {
		return fmt.Errorf("check: no doorway instructions labeled %q (RecordOps off, or wrong label?)", doorwayLabel)
	}
	if len(doorway) != len(entries) {
		return fmt.Errorf("check: %d doorway instructions but %d CS entries", len(doorway), len(entries))
	}
	for i := range doorway {
		if doorway[i] != entries[i] {
			return fmt.Errorf("check: FCFS violated at position %d: doorway order %v, entry order %v", i, doorway, entries)
		}
	}
	return nil
}

// Strong runs the full battery for strongly recoverable locks. A failure
// is returned as a *Violation naming the property.
func Strong(res *sim.Result, bcsrMaxOps int64) error {
	if err := MutualExclusion(res); err != nil {
		return &Violation{Property: PropMutualExclusion, Err: err}
	}
	if err := Satisfaction(res); err != nil {
		return &Violation{Property: PropSatisfaction, Err: err}
	}
	if err := BCSR(res, bcsrMaxOps); err != nil {
		return &Violation{Property: PropBCSR, Err: err}
	}
	return nil
}

// Weak runs the battery for weakly recoverable locks: starvation freedom
// plus responsiveness in place of unconditional mutual exclusion. A
// failure is returned as a *Violation naming the property.
func Weak(res *sim.Result) error {
	if err := Satisfaction(res); err != nil {
		return &Violation{Property: PropSatisfaction, Err: err}
	}
	if err := Responsiveness(res); err != nil {
		return &Violation{Property: PropResponsiveness, Err: err}
	}
	return nil
}

// MaxDepth returns the deepest BA-Lock level any passage escalated to,
// given the slow-path commitment labels (outermost first, from
// BALock.SlowLabels). Depth 1 means no process ever left the outermost
// fast path; a slow commitment at level k (label index k-1) means depth
// k+1 was reached. Requires Config.RecordOps.
func MaxDepth(res *sim.Result, slowLabels []string) int {
	idx := make(map[string]int, len(slowLabels))
	for i, l := range slowLabels {
		idx[l] = i + 1
	}
	depth := 1
	for _, ev := range res.Events {
		if ev.Kind != sim.EvOp || ev.Op.Label == "" {
			continue
		}
		if d, ok := idx[ev.Op.Label]; ok && d+1 > depth {
			depth = d + 1
		}
	}
	return depth
}

// SegmentBounds verifies the bounded-recovery (BR) and bounded-exit (BE)
// properties empirically: in a history recorded with Config.RecordOps, no
// execution of the Recover segment (passage-start → enter-start) or the
// Exit segment (cs-exit → passage-end) may exceed the given instruction
// budgets. Crashed segment executions are excluded (they are unbounded by
// definition only in the sense that they end early).
func SegmentBounds(res *sim.Result, maxRecover, maxExit int64) error {
	type segState struct {
		inRecover bool
		inExit    bool
		count     int64
	}
	procs := map[int]*segState{}
	get := func(pid int) *segState {
		s, ok := procs[pid]
		if !ok {
			s = &segState{}
			procs[pid] = s
		}
		return s
	}
	sawOps := false
	for _, ev := range res.Events {
		s := get(ev.PID)
		switch ev.Kind {
		case sim.EvOp:
			sawOps = true
			if s.inRecover || s.inExit {
				s.count++
			}
		case sim.EvPassageStart:
			s.inRecover, s.count = true, 0
		case sim.EvEnterStart:
			if s.inRecover && s.count > maxRecover {
				return fmt.Errorf("check: BR violated: process %d spent %d ops in Recover (bound %d)",
					ev.PID, s.count, maxRecover)
			}
			s.inRecover = false
		case sim.EvCSExit:
			s.inExit, s.count = true, 0
		case sim.EvPassageEnd:
			if s.inExit && s.count > maxExit {
				return fmt.Errorf("check: BE violated: process %d spent %d ops in Exit (bound %d)",
					ev.PID, s.count, maxExit)
			}
			s.inExit = false
		case sim.EvCrash, sim.EvAbort:
			// The back-out after an abort is not part of the Recover
			// segment's bound, just as a crashed segment never finishes.
			s.inRecover, s.inExit = false, false
		}
	}
	if !sawOps {
		return fmt.Errorf("check: SegmentBounds requires a history recorded with RecordOps")
	}
	return nil
}

package rme_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rme"
	"rme/internal/flight"
)

// TestTracingDisabledNoop pins the WithTracing-off contract: no recording
// or profile is available, and SetTracing is a harmless no-op.
func TestTracingDisabledNoop(t *testing.T) {
	m, err := rme.New(2)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTracing(true) // no-op: tracing is wired only at New time
	m.Lock(0)
	m.Unlock(0)
	if _, ok := m.FlightRecording(); ok {
		t.Fatal("FlightRecording reported a recording without WithTracing")
	}
	if _, ok := m.FlightProfile(); ok {
		t.Fatal("FlightProfile reported a profile without WithTracing")
	}
	if m.TracingEnabled() {
		t.Fatal("TracingEnabled without WithTracing")
	}
}

// TestTracingFailureFree pins the recorded trajectory of failure-free
// passages on the real lock: every passage contributes a begin → filter →
// splitter → {fast|core} → arbitrator → cs-enter → cs-exit → end stream,
// nothing escalates past level 1, and the profile has samples for every
// pipeline phase that ran.
func TestTracingFailureFree(t *testing.T) {
	const n, per = 4, 25
	m, err := rme.New(n, rme.WithTracing(rme.TracingOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if !m.TracingEnabled() {
		t.Fatal("tracing not enabled by WithTracing")
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				m.Lock(pid)
				m.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()

	rec, ok := m.FlightRecording()
	if !ok {
		t.Fatal("no recording")
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for pid, events := range rec.Procs {
		counts := map[flight.Kind]int{}
		for _, ev := range events {
			counts[ev.Kind]++
			if ev.Kind.IsPhase() && ev.Level != 1 {
				t.Errorf("p%d reached level %d without failures", pid, ev.Level)
			}
		}
		if counts[flight.KindCrash] != 0 || counts[flight.KindRecover] != 0 {
			t.Errorf("p%d recorded failures in a failure-free run", pid)
		}
		// The default ring (1024) holds all 25 passages' events.
		for _, k := range []flight.Kind{flight.KindPassageBegin, flight.KindPhaseFilter,
			flight.KindPhaseSplitter, flight.KindPhaseArbitrator, flight.KindCSEnter,
			flight.KindCSExit, flight.KindPassageEnd} {
			if counts[k] != per {
				t.Errorf("p%d %v count = %d, want %d", pid, k, counts[k], per)
			}
		}
		if counts[flight.KindPhaseFast]+counts[flight.KindPhaseCore] != per {
			t.Errorf("p%d fast %d + core %d != %d passages", pid,
				counts[flight.KindPhaseFast], counts[flight.KindPhaseCore], per)
		}
	}

	prof, ok := m.FlightProfile()
	if !ok || len(prof.Phases) == 0 {
		t.Fatalf("profile empty: %+v", prof)
	}
	var sawCS bool
	for _, s := range prof.Phases {
		if s.Level != 1 {
			t.Errorf("profile has level-%d samples without failures: %+v", s.Level, s)
		}
		if s.Phase == "cs" {
			sawCS = true
			if s.Count != n*per {
				t.Errorf("cs span count = %d, want %d", s.Count, n*per)
			}
		}
	}
	if !sawCS {
		t.Error("profile has no critical-section samples")
	}
}

// TestTracingRuntimeToggle pins SetTracing: recording stops and resumes
// without rebuilding the lock.
func TestTracingRuntimeToggle(t *testing.T) {
	m, err := rme.New(1, rme.WithTracing(rme.TracingOptions{RingSize: 64, Disabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	if m.TracingEnabled() {
		t.Fatal("Disabled option ignored")
	}
	m.Lock(0)
	m.Unlock(0)
	if rec, _ := m.FlightRecording(); rec.Events() != 0 {
		t.Fatalf("%d events recorded while disabled", rec.Events())
	}
	m.SetTracing(true)
	m.Lock(0)
	m.Unlock(0)
	rec, _ := m.FlightRecording()
	if rec.Events() == 0 {
		t.Fatal("no events after SetTracing(true)")
	}
	m.SetTracing(false)
	before := rec.Events()
	m.Lock(0)
	m.Unlock(0)
	if rec, _ := m.FlightRecording(); rec.Events() != before {
		t.Fatal("events recorded after SetTracing(false)")
	}
}

// TestTracingWithMetricsAndFailures pins the full stack: tracing composed
// with WithMetrics (the label hook must observe through the counting
// port), failures recorded as crash events, and the recovery passage
// marked with a recover event.
func TestTracingWithMetricsAndFailures(t *testing.T) {
	fired := false
	hook := func(pid int, label string) bool {
		if !fired && label == "F1:fas" {
			fired = true
			return true
		}
		return false
	}
	m, err := rme.New(2, rme.WithMetrics(), rme.WithLabeledFailures(hook),
		rme.WithTracing(rme.TracingOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	for !m.Passage(0, func() {}) {
	}
	if !fired {
		t.Fatal("labeled hook never fired")
	}
	rec, _ := m.FlightRecording()
	counts := map[flight.Kind]int{}
	for _, ev := range rec.Procs[0] {
		counts[ev.Kind]++
	}
	if counts[flight.KindCrash] != 1 {
		t.Fatalf("crash events = %d, want 1", counts[flight.KindCrash])
	}
	if counts[flight.KindRecover] != 1 {
		t.Fatalf("recover events = %d, want 1", counts[flight.KindRecover])
	}
	if counts[flight.KindPassageEnd] != 1 {
		t.Fatalf("passage-end events = %d, want 1", counts[flight.KindPassageEnd])
	}
	s, _ := m.MetricsSnapshot()
	if s.Crashes != 1 || s.Passages != 1 {
		t.Fatalf("metrics disagree with flight events: %+v", s)
	}
}

// TestTracingHandoffObserved forces a WR-Lock handoff — process 1 queues
// behind process 0's held lock, so 0's release passes ownership directly —
// and checks the label hook surfaces it as a flight event attributed to
// the releasing process.
func TestTracingHandoffObserved(t *testing.T) {
	m, err := rme.New(2, rme.WithTracing(rme.TracingOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	handoffs := func() int {
		rec, _ := m.FlightRecording()
		total := 0
		for _, events := range rec.Procs {
			for _, ev := range events {
				if ev.Kind == flight.KindHandoff {
					total++
				}
			}
		}
		return total
	}
	// The handoff write happens only if the successor linked before the
	// release; yields give process 1 time to park in the spin loop. On a
	// uniprocessor one round is already deterministic, elsewhere retry.
	for attempt := 0; attempt < 20 && handoffs() == 0; attempt++ {
		m.Lock(0)
		done := make(chan struct{})
		go func() {
			m.Lock(1)
			m.Unlock(1)
			close(done)
		}()
		for i := 0; i < 5000; i++ {
			runtime.Gosched()
		}
		m.Unlock(0)
		<-done
	}
	if handoffs() == 0 {
		t.Error("no handoff events after 20 forced-queueing rounds")
	}
}

// TestConcurrentTracingSnapshots is the tracing acceptance stress, run
// under -race in CI alongside TestRaceStress: all workers record passages
// with injected failures while samplers concurrently snapshot the rings
// and profile. Every snapshot must validate — tear-free streams with
// strictly monotone per-process timestamps — and the final event counts
// must be consistent with the work done.
func TestConcurrentTracingSnapshots(t *testing.T) {
	n := 8
	passages := 300
	maxInjected := int64(200)
	if testing.Short() {
		passages = 50
		maxInjected = 30
	}
	var injected atomic.Int64
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i) + 404))
	}
	fail := func(pid int) bool {
		if injected.Load() >= maxInjected {
			return false
		}
		if rngs[pid].Float64() < 0.01 {
			injected.Add(1)
			return true
		}
		return false
	}
	// Small rings force constant overwriting under the samplers.
	m, err := rme.New(n, rme.WithTracing(rme.TracingOptions{RingSize: 128}),
		rme.WithFailures(fail))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec, _ := m.FlightRecording()
			if err := rec.Validate(); err != nil {
				t.Errorf("mid-flight snapshot: %v", err)
				return
			}
			_, _ = m.FlightProfile()
		}
	}()

	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < passages; k++ {
				for !m.Passage(pid, func() {}) {
				}
			}
		}(pid)
	}
	wg.Wait()
	close(stop)
	<-samplerDone

	rec, _ := m.FlightRecording()
	if err := rec.Validate(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	for pid, events := range rec.Procs {
		// At quiescence the last event of every process closes its final
		// passage.
		if len(events) == 0 {
			t.Fatalf("p%d recorded nothing", pid)
		}
		if last := events[len(events)-1].Kind; last != flight.KindPassageEnd {
			t.Errorf("p%d last event = %v, want passage-end", pid, last)
		}
	}
}

package rme

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotRestoreIdle(t *testing.T) {
	m, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 4; pid++ {
		if !m.Passage(pid, func() {}) {
			t.Fatal("passage failed")
		}
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.N() != 4 || m2.Footprint() != m.Footprint() {
		t.Fatalf("restored mutex shape differs: n=%d footprint=%d vs %d",
			m2.N(), m2.Footprint(), m.Footprint())
	}
	for pid := 0; pid < 4; pid++ {
		if !m2.Passage(pid, func() {}) {
			t.Fatal("restored mutex passage failed")
		}
	}
}

func TestSnapshotRestoreWhileHeld(t *testing.T) {
	// Power failure while process 2 holds the lock: the snapshot captures
	// the held state; after restore, process 2's Lock recovers (bounded
	// re-entry) and everyone proceeds.
	m, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	m.Lock(2)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The previous lifetime is gone; in the new one, process 2 recovers
	// first (BCSR), then releases, then others acquire.
	m2.Lock(2)
	m2.Unlock(2)
	for pid := 0; pid < 3; pid++ {
		if !m2.Passage(pid, func() {}) {
			t.Fatalf("process %d stuck after restore", pid)
		}
	}
}

func TestSnapshotRestoreMidAcquisitionCrash(t *testing.T) {
	// A worker crashes mid-acquisition (injected); the system then dies
	// and is restored; the worker's recovery completes in the new life.
	hits := 0
	m, err := New(2, WithFailures(func(pid int) bool {
		if pid == 0 {
			hits++
			return hits == 5 // crash process 0 at its 5th instruction
		}
		return false
	}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Passage(0, func() {}) {
		t.Fatal("expected the injected crash")
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Passage(0, func() {}) {
		t.Fatal("recovery after restore failed")
	}
	if !m2.Passage(1, func() {}) {
		t.Fatal("other process stuck after restore")
	}
}

func TestSnapshotRoundTripPreservesOptions(t *testing.T) {
	m, err := New(5, WithBase(BaseArbTree), WithLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Footprint() != m.Footprint() {
		t.Fatalf("layout mismatch: %d vs %d words", m2.Footprint(), m.Footprint())
	}
}

func TestSnapshotWithoutReclamationRefused(t *testing.T) {
	m, err := New(2, WithoutReclamation())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(&bytes.Buffer{}); err != ErrSnapshotUnsupported {
		t.Fatalf("err = %v, want ErrSnapshotUnsupported", err)
	}
}

func TestSnapshotUnpaddedRefused(t *testing.T) {
	m, err := New(2, WithUnpaddedArena())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(&bytes.Buffer{}); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("err = %v, want ErrSnapshotUnsupported", err)
	}
}

// TestSnapshotDetectsConcurrentMutation: Snapshot under live passages must
// never silently serialize a torn image — each attempt either succeeds (it
// raced with no write) or returns ErrSnapshotConcurrent; successful streams
// must restore. A quiescent snapshot afterwards must succeed.
func TestSnapshotDetectsConcurrentMutation(t *testing.T) {
	const n = 4
	m, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for !stop.Load() {
				m.Passage(pid, func() {})
			}
		}(pid)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		err := m.Snapshot(&buf)
		switch {
		case err == nil:
			if _, rerr := Restore(bytes.NewReader(buf.Bytes()), nil); rerr != nil {
				t.Fatalf("verified snapshot failed to restore: %v", rerr)
			}
		case errors.Is(err, ErrSnapshotConcurrent):
			// Detected the racing writers — the contract.
		default:
			t.Fatalf("unexpected snapshot error: %v", err)
		}
	}
	stop.Store(true)
	wg.Wait()
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatalf("quiescent snapshot after contention failed: %v", err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
		// The dense-layout v1 format is a different physical layout;
		// restoring it as v2 would scatter words, so it must be refused.
		"old format": "RMESNAP1\x01\x00\x00\x00\x00\x00\x00\x00",
		"truncated":  "RMESNAP2\x01\x00\x00\x00\x00\x00\x00\x00",
	}
	for name, s := range cases {
		if _, err := Restore(strings.NewReader(s), nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Implausible header values.
	var buf bytes.Buffer
	buf.WriteString("RMESNAP2")
	for _, v := range []uint64{0, 1, 1, 0, 10} { // n = 0
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		buf.Write(b[:])
	}
	if _, err := Restore(&buf, nil); err == nil {
		t.Error("accepted n=0 header")
	}
}

func TestRestoreWithFailureInjection(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	calls := 0
	m2, err := Restore(&buf, func(pid int) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	m2.Lock(0)
	m2.Unlock(0)
	if calls == 0 {
		t.Fatal("failure hook not installed on restore")
	}
}

// limitWriter fails with a torn write after limit bytes, simulating a
// crash partway through persisting a snapshot to stable storage.
type limitWriter struct {
	buf   bytes.Buffer
	limit int
}

func (w *limitWriter) Write(p []byte) (int, error) {
	room := w.limit - w.buf.Len()
	if room <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > room {
		w.buf.Write(p[:room])
		return room, errors.New("disk full")
	}
	return w.buf.Write(p)
}

// TestRestoreRejectsTornWrite: a snapshot cut off at every possible byte
// length — mid-header, mid-body, mid-footer — must never restore; the
// integrity footer turns torn writes into ErrBadSnapshot, not a mutex
// silently rebuilt from partial state.
func TestRestoreRejectsTornWrite(t *testing.T) {
	m, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := m.Snapshot(&full); err != nil {
		t.Fatal(err)
	}
	for limit := 0; limit < full.Len(); limit++ {
		w := &limitWriter{limit: limit}
		if err := m.Snapshot(w); err == nil {
			t.Fatalf("Snapshot succeeded against a %d-byte device", limit)
		}
		if _, err := Restore(bytes.NewReader(w.buf.Bytes()), nil); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("torn snapshot at %d/%d bytes restored: err=%v", limit, full.Len(), err)
		}
	}
}

// TestRestoreRejectsCorruption: flipping any single byte of the stream is
// caught by the CRC-64 footer.
func TestRestoreRejectsCorruption(t *testing.T) {
	m, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	for i := range snap {
		bad := append([]byte{}, snap...)
		bad[i] ^= 0x40
		if _, err := Restore(bytes.NewReader(bad), nil); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("corruption at byte %d restored: err=%v", i, err)
		}
	}
	// The pristine stream still restores.
	if _, err := Restore(bytes.NewReader(snap), nil); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

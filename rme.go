// Package rme provides recoverable mutual exclusion for Go programs,
// implementing Dhoked & Mittal, "An Adaptive Approach to Recoverable
// Mutual Exclusion" (PODC 2020).
//
// A Mutex is an n-process lock whose entire state lives in a persistent
// word arena (the stand-in for NVRAM): a process — a worker goroutine
// holding a process identifier — can fail at any instruction boundary
// while acquiring, holding or releasing the lock, lose all of its private
// state, and later recover by simply calling Lock again. Mutual exclusion,
// starvation freedom, and bounded critical-section re-entry hold across
// such failures.
//
// The lock is the paper's BA-Lock: a stack of semi-adaptive filter levels
// over a strongly recoverable base lock. Acquiring it costs O(1) remote
// memory references when no failures have occurred recently, O(√F) when F
// recent failures have, and never more than the base lock's O(log n) (or
// O(log n / log log n) with the arbitration-tree base).
//
// The companion packages under internal/ run the same algorithms on an
// RMR-exact simulator; cmd/rmebench regenerates the paper's tables and
// figures from them.
package rme

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"rme/internal/arbtree"
	"rme/internal/core"
	"rme/internal/flight"
	"rme/internal/grlock"
	"rme/internal/memory"
	"rme/internal/metrics"
	"rme/internal/reclaim"
)

// Base selects the non-adaptive strongly recoverable lock placed at the
// bottom of the recursion.
type Base int

// Base locks.
const (
	// BaseTournament is the binary tournament of recoverable 2-process
	// locks: T(n) = O(log n) under both CC and DSM.
	BaseTournament Base = iota + 1
	// BaseArbTree is the Δ-ary arbitration tree:
	// T(n) = O(log n / log log n) under CC.
	BaseArbTree
)

type config struct {
	base        Base
	levels      int
	reclamation bool
	slack       int
	capacity    int
	unpadded    bool
	metrics     bool
	tracing     bool
	tracingOpts TracingOptions
	fail        FailFunc
	labelFail   LabeledFailFunc
	shards      int // Map only
	segSlots    int // Map only
}

// lockSpec resolves the configured base, levels and node sourcing into a
// reusable build recipe (filling in the paper's default depth for the
// base), shared by New (one lock, one arena) and NewMap (one lock per
// key, stamped into sub-arenas).
func (cfg *config) lockSpec(n int) (core.LockSpec, error) {
	levels := cfg.levels
	if levels == 0 {
		switch cfg.base {
		case BaseArbTree:
			levels = core.SubLogLevels(n)
		default:
			levels = core.DefaultLevels(n)
		}
	}
	if levels < 1 {
		return core.LockSpec{}, fmt.Errorf("rme: invalid level count %d", levels)
	}
	spec := core.LockSpec{Levels: levels}
	switch cfg.base {
	case BaseTournament:
		spec.Base = func(sp memory.Space, n int) core.RecoverableLock {
			return grlock.NewTournament(sp, n)
		}
	case BaseArbTree:
		spec.Base = func(sp memory.Space, n int) core.RecoverableLock {
			return arbtree.New(sp, n, 0)
		}
	default:
		return core.LockSpec{}, fmt.Errorf("rme: unknown base lock %d", cfg.base)
	}
	if cfg.reclamation {
		spec.Source = func(sp memory.Space, n, level int) core.NodeSource {
			return reclaim.NewPool(sp, n)
		}
	}
	return spec, nil
}

// Option configures New.
type Option func(*config)

// WithBase selects the base lock (default BaseTournament).
func WithBase(b Base) Option { return func(c *config) { c.base = b } }

// WithLevels overrides the recursion depth m (default: the paper's
// m = T(n) choice for the selected base).
func WithLevels(m int) Option { return func(c *config) { c.levels = m } }

// WithoutReclamation disables the Section 7.2 node pools. Queue nodes are
// then allocated fresh from the arena, whose extra capacity must be sized
// with WithSlack; memory use grows with the number of passages.
func WithoutReclamation() Option { return func(c *config) { c.reclamation = false } }

// WithSlack reserves extra arena words beyond the lock's measured
// footprint (needed only with WithoutReclamation).
func WithSlack(words int) Option { return func(c *config) { c.slack = words } }

// WithCapacity sets a floor on the arena's physical capacity in words.
// The arena is always at least large enough for the lock's measured
// footprint plus any slack; use this to pre-size for workloads known to
// allocate more (only meaningful with WithoutReclamation).
func WithCapacity(words int) Option { return func(c *config) { c.capacity = words } }

// WithUnpaddedArena selects the dense legacy arena layout: allocations
// are packed contiguously with no cache-line padding or home striping,
// and ports re-check the arena bound on every instruction. This is the
// pre-optimization execution path, kept for A/B benchmarking of the
// cache-line-aware default; it is strictly slower under contention.
// Snapshot is not supported on unpadded mutexes.
func WithUnpaddedArena() Option { return func(c *config) { c.unpadded = true } }

// WithShards sets a Map's shard count (default 8, rounded up to a power
// of two). Keys hash over shards; each shard serializes only its own
// key-table bookkeeping, never passages. Map only — New rejects it.
func WithShards(k int) Option { return func(c *config) { c.shards = k } }

// WithSegmentSlots sets how many per-key lock regions one of a Map
// shard's arena segments holds (default 64). Smaller segments bound the
// footprint growth granularity; larger ones amortize arena bookkeeping.
// Map only — New rejects it.
func WithSegmentSlots(k int) Option { return func(c *config) { c.segSlots = k } }

// FailFunc is a failure-injection hook for tests and demonstrations: it is
// consulted before every shared-memory instruction of the lock, with the
// process identifier; returning true makes that process crash there (the
// lock call panics with a crash sentinel that Passage converts into a
// normal return).
type FailFunc func(pid int) bool

// WithFailures installs a failure-injection hook.
func WithFailures(f FailFunc) Option { return func(c *config) { c.fail = f } }

// LabeledFailFunc is a failure-injection hook that also sees the label of
// the instruction about to execute ("" for unlabeled instructions).
// Labels mark the algorithm's interesting steps — "F<k>:fas" is level k's
// sensitive filter fetch-and-store, "F<k>:slow" commits its slow path —
// so a labeled hook can place crashes at precise algorithmic positions
// (e.g. immediately after a sensitive FAS, the paper's unsafe failure).
type LabeledFailFunc func(pid int, label string) bool

// WithLabeledFailures installs a label-aware failure-injection hook. It
// composes with WithFailures: either hook returning true crashes the
// process.
func WithLabeledFailures(f LabeledFailFunc) Option {
	return func(c *config) { c.labelFail = f }
}

// WithMetrics enables the passage metrics layer: every port is wrapped
// with exact CC-model RMR accounting (see internal/metrics) and
// MetricsSnapshot reports per-passage RMR and level distributions. When
// the option is absent the lock keeps its unwrapped ports and the only
// residual cost is one nil check per Lock/Unlock.
func WithMetrics() Option { return func(c *config) { c.metrics = true } }

// TracingOptions configures the flight recorder (see WithTracing).
type TracingOptions struct {
	// RingSize is the per-process ring capacity in events, rounded up to
	// a power of two; 0 selects flight.DefaultRingSize. Older events are
	// overwritten once the ring is full — the recorder is a flight
	// recorder, not an unbounded log.
	RingSize int
	// Disabled constructs the recorder in the disabled state; enable it
	// later with SetTracing(true). The instrumentation is wired either
	// way, so toggling costs nothing but the per-emit flag check.
	Disabled bool
}

// WithTracing enables the flight recorder: each process gets a
// cache-line-padded ring buffer capturing its passage trajectory
// (passage begin/end, filter→splitter→{fast|core}→arbitrator phase
// transitions with their BA-Lock level, CS enter/exit, crash/recover,
// handoffs) with strictly monotone nanosecond timestamps, plus
// per-phase latency histograms. Inspect with FlightRecording (dump for
// cmd/rmetrace) and FlightProfile. When the option is absent every
// instrumentation site costs one nil check; when present but disabled
// via SetTracing(false), one atomic flag load. Recording itself never
// issues shared-memory instructions, so it adds no RMRs in the CC cost
// model and no crash points.
func WithTracing(opts TracingOptions) Option {
	return func(c *config) { c.tracing = true; c.tracingOpts = opts }
}

// Mutex is a recoverable mutual exclusion lock for n processes.
//
// Process identifiers are 0..n-1. At any moment at most one goroutine may
// act as a given process; beyond that, all methods are safe for concurrent
// use. A process that "crashes" (a Passage that returns false, or an
// application-level failure) recovers by calling Lock — or Passage —
// again with the same identifier.
type Mutex struct {
	n      int
	cfg    config
	arena  *memory.NativeArena
	lock   core.RecoverableLock
	ports  []memory.Port
	rec    *metrics.Recorder // nil unless WithMetrics
	fr     *flight.Recorder  // nil unless WithTracing
	aborts []abortFlag       // per-process cancellation flags (LockCtx)
}

// abortFlag is one process's cancellation flag, padded so neighbouring
// processes' flags never share a cache line. The flag lives outside the
// arena on purpose: it is private, ephemeral state — a crash is supposed
// to lose it — and polling it from the spin-loop Pause hook costs no
// shared-memory instruction, so the failure-free passage's RMR count is
// untouched.
type abortFlag struct {
	v atomic.Bool
	_ [56]byte
}

// New creates a recoverable mutex for n processes.
func New(n int, opts ...Option) (*Mutex, error) {
	if n < 1 {
		return nil, fmt.Errorf("rme: New(%d): need at least one process", n)
	}
	cfg := config{base: BaseTournament, reclamation: true}
	for _, o := range opts {
		o(&cfg)
	}
	spec, err := cfg.lockSpec(n)
	if err != nil {
		return nil, err
	}
	cfg.levels = spec.Levels

	if cfg.capacity < 0 {
		return nil, fmt.Errorf("rme: negative capacity %d", cfg.capacity)
	}
	if cfg.slack < 0 {
		// A negative slack would shrink the arena below the measured
		// footprint and corrupt the deterministic layout.
		return nil, fmt.Errorf("rme: negative slack %d", cfg.slack)
	}
	if cfg.shards != 0 || cfg.segSlots != 0 {
		return nil, fmt.Errorf("rme: WithShards/WithSegmentSlots apply to NewMap, not New")
	}

	// Measure the exact physical footprint by replaying the allocation
	// sequence against a sizer with the same layout policy, then build
	// for real. Construction is deterministic, so the real arena lands
	// every allocation exactly where the sizer predicted.
	sizer := memory.NewNativeSizer(n, !cfg.unpadded)
	spec.Build(sizer, n)
	capacity := sizer.Words() + cfg.slack
	if !cfg.reclamation {
		if cfg.slack == 0 {
			capacity += 1 << 16 // room for dynamically allocated queue nodes
		} else if !cfg.unpadded {
			// Padded arenas round dynamic allocations up to whole lines
			// per home; leave headroom so the requested slack is usable.
			capacity += (n + 1) * memory.LineWords
		}
	}
	if cfg.capacity > capacity {
		capacity = cfg.capacity
	}

	var aopts []memory.NativeOption
	if cfg.unpadded {
		aopts = append(aopts, memory.Unpadded())
	}
	arena := memory.NewNativeArena(n, capacity, aopts...)
	bal := spec.Build(arena, n)
	m := &Mutex{
		n:     n,
		cfg:   cfg,
		arena: arena,
		lock:  bal,
		ports: make([]memory.Port, n),
	}
	var fail memory.FailFunc
	if cfg.fail != nil || cfg.labelFail != nil {
		plain, labeled := cfg.fail, cfg.labelFail
		fail = func(pid int, op memory.OpInfo) bool {
			if plain != nil && plain(pid) {
				return true
			}
			return labeled != nil && labeled(pid, op.Label)
		}
	}
	if cfg.metrics {
		// cfg.levels SALock filters plus the base lock itself.
		m.rec = metrics.NewRecorder(n, cfg.levels+1, arena.Capacity())
	}
	if cfg.tracing {
		m.fr = flight.NewRecorder(n, cfg.tracingOpts.RingSize)
		if cfg.tracingOpts.Disabled {
			m.fr.SetEnabled(false)
		}
		fr := m.fr
		bal.SetPhaseHook(func(pid int, ph core.PhaseKind, level int) {
			fr.Phase(pid, flightPhaseKind(ph), level)
		})
	}
	m.aborts = make([]abortFlag, n)
	for i := 0; i < n; i++ {
		np := arena.Port(i, fail)
		flag := &m.aborts[i].v
		np.SetAbortHook(func(int) bool { return flag.Load() })
		if m.fr != nil {
			pid, fr := i, m.fr
			np.SetLabelHook(func(l string) { fr.ObserveLabel(pid, l) })
		}
		if m.rec != nil {
			m.ports[i] = m.rec.Port(np)
		} else {
			m.ports[i] = np
		}
	}
	return m, nil
}

// flightPhaseKind maps a core pipeline phase to its flight event kind.
func flightPhaseKind(ph core.PhaseKind) flight.Kind {
	switch ph {
	case core.PhaseFilter:
		return flight.KindPhaseFilter
	case core.PhaseSplitter:
		return flight.KindPhaseSplitter
	case core.PhaseFast:
		return flight.KindPhaseFast
	case core.PhaseCore:
		return flight.KindPhaseCore
	case core.PhaseArbitrator:
		return flight.KindPhaseArbitrator
	}
	panic(fmt.Sprintf("rme: unknown phase %v", ph))
}

// N returns the number of processes.
func (m *Mutex) N() int { return m.n }

// Footprint returns the number of shared-memory words the lock occupies.
func (m *Mutex) Footprint() int { return m.arena.Size() }

func (m *Mutex) port(pid int) memory.Port {
	if pid < 0 || pid >= m.n {
		panic(fmt.Sprintf("rme: pid %d out of range [0,%d)", pid, m.n))
	}
	return m.ports[pid]
}

// MetricsSnapshot returns the passage metrics accumulated so far. It may
// be called from any goroutine while passages are in flight (in-flight
// passages are not included yet). The second result is false when the
// mutex was built without WithMetrics.
func (m *Mutex) MetricsSnapshot() (metrics.Snapshot, bool) {
	if m.rec == nil {
		return metrics.Snapshot{}, false
	}
	return m.rec.Snapshot(), true
}

// SetTracing starts or stops flight recording at runtime. It is a no-op
// on a mutex built without WithTracing (tracing cannot be enabled after
// construction: the instrumentation is wired at New time).
func (m *Mutex) SetTracing(on bool) {
	if m.fr != nil {
		m.fr.SetEnabled(on)
	}
}

// TracingEnabled reports whether flight recording is currently active.
func (m *Mutex) TracingEnabled() bool {
	return m.fr != nil && m.fr.Enabled()
}

// FlightRecording snapshots the flight recorder's ring buffers into a
// dumpable Recording (see cmd/rmetrace for rendering it). It may be
// called from any goroutine while passages are in flight; concurrently
// overwritten events are dropped, never torn. The second result is false
// when the mutex was built without WithTracing.
func (m *Mutex) FlightRecording() (*flight.Recording, bool) {
	if m.fr == nil {
		return nil, false
	}
	return m.fr.Snapshot(), true
}

// FlightProfile returns the phase-latency profile accumulated so far
// (wall-clock histograms per pipeline phase and BA-Lock level). The
// second result is false when the mutex was built without WithTracing.
func (m *Mutex) FlightProfile() (flight.Profile, bool) {
	if m.fr == nil {
		return flight.Profile{}, false
	}
	return m.fr.Profile(), true
}

// Lock acquires the mutex as process pid, running the Recover and Enter
// segments of the paper's execution model. It is the correct call both
// for first acquisition and for recovery after a failure: all recovery
// state lives in the arena.
//
// With failure injection enabled, Lock panics with an ErrCrash sentinel
// at injected failures; use Passage for loop-free handling.
func (m *Mutex) Lock(pid int) {
	p := m.port(pid)
	if m.rec != nil {
		m.rec.PassageStart(pid)
	}
	if m.fr != nil {
		m.fr.PassageBegin(pid)
	}
	m.lock.Recover(p)
	m.lock.Enter(p)
	if m.fr != nil {
		m.fr.CSEnter(pid)
	}
}

// Unlock releases the mutex as process pid (the Exit segment).
func (m *Mutex) Unlock(pid int) {
	if m.fr != nil {
		m.fr.CSExit(pid)
	}
	m.lock.Exit(m.port(pid))
	if m.rec != nil {
		m.rec.PassageEnd(pid)
	}
	if m.fr != nil {
		m.fr.PassageEnd(pid)
	}
}

// Passage runs one passage: Recover, Enter, the critical section cs, and
// Exit. It reports false if an injected failure interrupted the passage
// (including a Crash called inside cs), in which case the caller should
// retry — exactly the paper's model of a process restarting after a
// crash. The critical section should be idempotent if failures inside it
// are possible (the BCSR property guarantees re-entry before any other
// process gets in).
//
// Only this process's own crash sentinel is converted into a false return:
// an ErrCrash carrying a different PID (a Crash(otherPid) raised inside cs,
// or a nested mutex's injected failure unwinding through this one) is not
// this passage's failure and propagates as a panic.
func (m *Mutex) Passage(pid int, cs func()) (ok bool) {
	defer func() {
		e := recover()
		if e == nil {
			return
		}
		if crash, crashed := e.(memory.ErrCrash); crashed && crash.PID == pid {
			if m.rec != nil {
				m.rec.Crash(pid)
			}
			if m.fr != nil {
				m.fr.Crash(pid)
			}
			ok = false
			return
		}
		panic(e)
	}()
	m.Lock(pid)
	cs()
	m.Unlock(pid)
	return true
}

// LockCtx acquires the mutex as process pid, giving up when ctx is
// cancelled or its deadline passes. It returns nil on acquisition and
// ctx.Err() on cancellation, after backing the process out of the lock
// crash-safely: the abandoned queue state is persisted first, so even a
// crash in the middle of the back-out is repaired by the next Lock. A
// cancelled LockCtx leaves the process holding nothing — unlike a crash,
// no recovery is pending and other processes observe at most one
// wait-free "abandoned" handoff.
//
// Cancellation is polled from the spin-loop pause hook on a per-process
// Go-level flag, so the failure-free path executes no extra
// shared-memory instructions (its RMR cost is identical to Lock); an
// attempt that acquires without ever spinning notices cancellation at
// the post-acquisition check and releases before returning ctx.Err().
// Every cancelled attempt — pre-cancelled, mid-spin, or at the
// post-acquisition check — is recorded as exactly one aborted attempt,
// never as a passage.
//
// With failure injection enabled, LockCtx panics with the ErrCrash
// sentinel exactly like Lock — including when the crash lands during the
// back-out; use PassageCtx for loop-free handling of both.
func (m *Mutex) LockCtx(ctx context.Context, pid int) error {
	p := m.port(pid)
	if err := ctx.Err(); err != nil {
		// Already cancelled: the lock is never touched, but the attempt
		// still counts — and closes as aborted — so abort-rate
		// denominators match the cancelled-mid-spin path (a TryLockFor
		// with a non-positive deadline lands here on every call).
		if m.rec != nil {
			m.rec.PassageStart(pid)
			m.rec.Abort(pid)
		}
		if m.fr != nil {
			m.fr.PassageBegin(pid)
			m.fr.Abort(pid)
		}
		return err
	}

	w := watchCtx(ctx, &m.aborts[pid].v)
	defer w.Stop()

	if m.rec != nil {
		m.rec.PassageStart(pid)
	}
	if m.fr != nil {
		m.fr.PassageBegin(pid)
	}
	if enterAborted(m.lock, p, pid) {
		w.Stop()
		m.lock.(core.Aborter).Abort(p)
		if m.rec != nil {
			m.rec.Abort(pid)
		}
		if m.fr != nil {
			m.fr.Abort(pid)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// The flag was set by a previous LockCtx's watcher losing the
		// race to Stop — impossible for a correctly serialized process,
		// but fail closed rather than report a phantom cancel.
		return context.Canceled
	}
	if err := ctx.Err(); err != nil {
		// Cancelled in the instant between the last spin and holding the
		// lock: the caller never gets the critical section, so release
		// and account the attempt as aborted — not as a passage, and
		// with no phantom CS enter/exit in the flight recording. The
		// watcher is stopped first so Exit's own Pause calls cannot
		// re-panic off the raised flag.
		w.Stop()
		m.lock.Exit(p)
		if m.rec != nil {
			m.rec.Abort(pid)
		}
		if m.fr != nil {
			m.fr.Abort(pid)
		}
		return err
	}
	if m.fr != nil {
		m.fr.CSEnter(pid)
	}
	return nil
}

// ctxWatcher mirrors a context's cancellation into a process's abort
// flag from a side goroutine, so the spin-loop Pause hook can poll a
// plain atomic instead of the context.
type ctxWatcher struct {
	flag    *atomic.Bool
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// watchCtx starts the watcher. The caller must Stop it — and thereby
// consume the flag — before any back-out runs (so the back-out's own
// Pause calls cannot re-panic) and before returning (so a stale flag
// cannot abort the process's next acquisition).
func watchCtx(ctx context.Context, flag *atomic.Bool) *ctxWatcher {
	w := &ctxWatcher{flag: flag, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		select {
		case <-ctx.Done():
			flag.Store(true)
		case <-w.stop:
		}
	}()
	return w
}

// Stop terminates the watcher, waits it out, and lowers the flag.
// Idempotent; single-goroutine use only.
func (w *ctxWatcher) Stop() {
	if w.stopped {
		return
	}
	w.stopped = true
	close(w.stop)
	<-w.done
	w.flag.Store(false)
}

// enterAborted runs Recover+Enter, converting the process's own ErrAbort
// unwind (raised by Pause when the abort flag is up) into a true return.
// Any other panic — including ErrCrash — propagates.
func enterAborted(lk core.RecoverableLock, p memory.Port, pid int) (aborted bool) {
	defer func() {
		e := recover()
		if e == nil {
			return
		}
		if ab, ok := e.(memory.ErrAbort); ok && ab.PID == pid {
			aborted = true
			return
		}
		panic(e)
	}()
	lk.Recover(p)
	lk.Enter(p)
	return false
}

// TryLockFor acquires the mutex as process pid, giving up after d. It
// reports whether the lock was acquired; on false the process has backed
// out crash-safely and holds nothing. A non-positive d never touches the
// lock but still counts one aborted attempt, keeping abort-rate
// denominators consistent with deadlines that expire while queued.
func (m *Mutex) TryLockFor(pid int, d time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return m.LockCtx(ctx, pid) == nil
}

// PassageCtx runs one abortable passage: LockCtx, the critical section
// cs, and Unlock. Like Passage it reports ok=false (with a nil error)
// when an injected failure interrupted the passage — including a crash
// during the cancellation back-out — in which case the caller should
// retry. A cancellation is reported as (false, ctx.Err()); the process
// then holds nothing and no recovery is pending.
func (m *Mutex) PassageCtx(ctx context.Context, pid int, cs func()) (ok bool, err error) {
	defer func() {
		e := recover()
		if e == nil {
			return
		}
		if crash, crashed := e.(memory.ErrCrash); crashed && crash.PID == pid {
			if m.rec != nil {
				m.rec.Crash(pid)
			}
			if m.fr != nil {
				m.fr.Crash(pid)
			}
			ok, err = false, nil
			return
		}
		panic(e)
	}()
	if err := m.LockCtx(ctx, pid); err != nil {
		return false, err
	}
	cs()
	m.Unlock(pid)
	return true, nil
}

// Crash simulates a failure of process pid at the current point — for use
// inside a Passage critical section to model a crash while holding the
// lock. It panics with the crash sentinel that Passage recovers.
func Crash(pid int) {
	panic(memory.ErrCrash{PID: pid})
}

// No external dependencies, on purpose (see README "Stdlib only").
// In particular cmd/rmevet does NOT require golang.org/x/tools: its
// analyzers are built on the stdlib-only framework in internal/analysis,
// which mirrors the x/tools go/analysis API so a future migration is an
// import swap rather than a rewrite.
module rme

go 1.22

module rme

go 1.22

// Package rme_test holds the root benchmarks in an external test package:
// internal/bench imports rme (for the native wall-clock runner), so an
// in-package test file importing internal/bench would be a cycle.
package rme_test

// One benchmark per artifact of the paper's evaluation (see DESIGN.md's
// experiment index). The simulator-backed benchmarks report model-exact
// RMR metrics via b.ReportMetric; the native benchmarks report wall-clock
// throughput of the same algorithms under real goroutine concurrency.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"rme"
	"rme/internal/bench"
	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/workload"
)

// --- Native throughput (wall clock) ---------------------------------------

func BenchmarkNativeUncontended(b *testing.B) {
	for _, tc := range []struct {
		name string
		base rme.Base
	}{
		{"ba-tournament", rme.BaseTournament},
		{"ba-arbtree", rme.BaseArbTree},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, err := rme.New(1, rme.WithBase(tc.base))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Lock(0)
				m.Unlock(0)
			}
		})
	}
	// Reference: the standard library's (non-recoverable) mutex.
	b.Run("sync.Mutex", func(b *testing.B) {
		var mu sync.Mutex
		for i := 0; i < b.N; i++ {
			mu.Lock()
			mu.Unlock() //nolint:staticcheck // benchmark shape mirrors the others
		}
	})
}

func BenchmarkNativeContended(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m, err := rme.New(workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / workers
			for pid := 0; pid < workers; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m.Lock(pid)
						m.Unlock(pid)
					}
				}(pid)
			}
			wg.Wait()
		})
	}
}

// --- Table 1: RMRs per passage under the three failure scenarios ----------

func BenchmarkTable1(b *testing.B) {
	for _, lock := range []string{"wr", "tournament", "arbtree", "sa", "ba-log", "ba-sublog"} {
		for _, sc := range workload.Scenarios(8) {
			b.Run(fmt.Sprintf("%s/%s", lock, sc.Name), func(b *testing.B) {
				var last bench.Metrics
				for i := 0; i < b.N; i++ {
					m, err := bench.Run(bench.Point{
						Lock: lock, N: 8, Model: memory.CC, Requests: 3,
						Seed: int64(i + 1), Plan: sc.Plan,
					})
					if err != nil {
						b.Fatal(err)
					}
					if m.CheckErr != nil {
						b.Fatal(m.CheckErr)
					}
					last = m
				}
				b.ReportMetric(last.FFMean, "RMRs/passage")
				b.ReportMetric(float64(last.AllMax), "RMRs/passage-max")
				b.ReportMetric(float64(last.Crashes), "crashes")
			})
		}
	}
}

// --- Figure 1: fragmentation ----------------------------------------------

func BenchmarkFigure1Fragmentation(b *testing.B) {
	plan := func(n int) sim.FailurePlan {
		return sim.PlanSeq{
			&sim.CrashOnLabel{PID: 3, Label: "wr:fas", After: true},
			&sim.CrashOnLabel{PID: 6, Label: "wr:fas", After: true},
		}
	}
	var last bench.Metrics
	for i := 0; i < b.N; i++ {
		m, err := bench.Run(bench.Point{Lock: "wr", N: 8, Model: memory.CC, Requests: 2,
			Seed: 21, Plan: plan, CSOps: 8})
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.ReportMetric(float64(last.Crashes), "unsafe-failures")
	b.ReportMetric(float64(last.Overlap), "max-CS-occupancy")
}

// --- Theorems 5.17/5.18: adaptivity and escalation -------------------------

func BenchmarkAdaptivity(b *testing.B) {
	for _, f := range []int{0, 4, 16, 64} {
		b.Run(fmt.Sprintf("F=%d", f), func(b *testing.B) {
			var plan func(int) sim.FailurePlan
			if f > 0 {
				ff := f
				plan = func(n int) sim.FailurePlan {
					return &sim.UnsafeBudget{Total: ff, Rate: 0.3, MaxPerProcess: (ff + n - 1) / n}
				}
			}
			var last bench.Metrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(bench.Point{Lock: "ba-log", N: 16, Model: memory.CC,
					Requests: 4 + f/8, Seed: int64(i + 11), Plan: plan, RecordOps: true})
				if err != nil {
					b.Fatal(err)
				}
				if m.CheckErr != nil {
					b.Fatal(m.CheckErr)
				}
				last = m
			}
			b.ReportMetric(last.AffMean, "RMRs/affected-passage")
			b.ReportMetric(float64(last.AffMax), "RMRs/affected-passage-max")
			b.ReportMetric(float64(last.MaxDepth), "escalation-depth")
		})
	}
}

// --- Theorem 7.1: batch failures -------------------------------------------

func BenchmarkBatchFailures(b *testing.B) {
	for _, k := range []int{2, 8} {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
			kk := k
			plan := func(n int) sim.FailurePlan {
				pids := make([]int, kk)
				for i := range pids {
					pids[i] = i % n
				}
				return workload.Batch(60, pids)
			}
			var last bench.Metrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(bench.Point{Lock: "ba-log", N: 16, Model: memory.CC,
					Requests: 4, Seed: int64(i + 1), Plan: plan, RecordOps: true})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.MaxDepth), "escalation-depth")
			b.ReportMetric(last.FFMean, "RMRs/passage")
		})
	}
}

// --- Theorem 4.7: O(1) components -------------------------------------------

func BenchmarkComponents(b *testing.B) {
	for _, model := range []memory.Model{memory.CC, memory.DSM} {
		for _, n := range []int{2, 32} {
			b.Run(fmt.Sprintf("wr/%v/n=%d", model, n), func(b *testing.B) {
				var last bench.Metrics
				for i := 0; i < b.N; i++ {
					m, err := bench.Run(bench.Point{Lock: "wr", N: n, Model: model,
						Requests: 4, Seed: int64(i + 1)})
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				b.ReportMetric(float64(last.FFMax), "RMRs/passage-max")
			})
		}
	}
}

// --- Section 7.2: reclamation space bound -----------------------------------

func BenchmarkReclaimSpace(b *testing.B) {
	for _, lock := range []string{"wr", "wr-pool"} {
		b.Run(lock, func(b *testing.B) {
			var last bench.Metrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(bench.Point{Lock: lock, N: 8, Model: memory.CC,
					Requests: 30, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.Arena), "arena-words")
		})
	}
}

// --- Section 7.3: super-passage cost under repeated self-crashes ------------

func BenchmarkSuperPassage(b *testing.B) {
	for _, f0 := range []int{0, 4} {
		b.Run(fmt.Sprintf("F0=%d", f0), func(b *testing.B) {
			var plan func(int) sim.FailurePlan
			if f0 > 0 {
				ff := f0
				plan = func(n int) sim.FailurePlan {
					return &sim.RandomFailures{Rate: 0.05, MaxTotal: ff, MaxPerProcess: ff, DuringPassage: true}
				}
			}
			var last bench.Metrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(bench.Point{Lock: "ba-log", N: 8, Model: memory.CC,
					Requests: 4, Seed: int64(i + 1), Plan: plan})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.ReqMax), "RMRs/super-passage-max")
		})
	}
}
